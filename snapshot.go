package psbox

import (
	"fmt"
	"sort"
	"strings"

	"psbox/internal/snapshot"
)

// registry assembles the system's checkpoint sections in a fixed order:
// the simulation engine first (clock, queue shape, randomness), then
// hardware bottom-up, kernel drivers, meter, psbox service, fault and
// accounting layers, and finally any extra snapshotters registered by the
// embedding program (e.g. a userspace daemon).
func (s *System) registry() *snapshot.Registry {
	reg := snapshot.NewRegistry()
	reg.Add("sim", s.Eng)
	c := s.Kernel.CPU()
	reg.AddFuncs("hw/cpu", c.Snapshot, c.RestoreSnapshot)
	for _, name := range s.Kernel.AccelNames() {
		dev := s.Kernel.Accel(name).Device()
		reg.AddFuncs("hw/"+name, dev.Snapshot, dev.RestoreSnapshot)
	}
	if nd := s.Kernel.Net(); nd != nil {
		n := nd.NIC()
		reg.AddFuncs("hw/wifi", n.Snapshot, n.RestoreSnapshot)
	}
	if d := s.Kernel.Display(); d != nil {
		reg.Add("hw/display", d)
	}
	if g := s.Kernel.GPS(); g != nil {
		reg.Add("hw/gps", g)
	}
	if d := s.Kernel.DRAM(); d != nil {
		reg.Add("hw/dram", d)
	}
	reg.Add("kernel", s.Kernel)
	reg.Add("kernel/sched", s.Kernel.Scheduler())
	for _, name := range s.Kernel.AccelNames() {
		reg.Add("kernel/accel/"+name, s.Kernel.Accel(name))
	}
	if nd := s.Kernel.Net(); nd != nil {
		reg.Add("kernel/net", nd)
	}
	reg.Add("meter", s.Meter)
	reg.Add("core", s.Sandbox)
	if s.Invariants != nil {
		reg.Add("core/invariants", s.Invariants)
	}
	if s.Faults != nil {
		reg.Add("faults", s.Faults)
	}
	reg.Add("obs", s.Trace)
	if s.Profile.Armed() {
		// The profiler's section exists only once a scenario has enabled
		// profiling, so the checkpoint wire format of pre-existing
		// scenarios is unchanged.
		reg.Add("obs/profile", s.Profile)
	}
	snapRecorders := func(enc *snapshot.Encoder) {
		names := make([]string, 0, len(s.Recorders))
		for name := range s.Recorders {
			names = append(names, name)
		}
		sort.Strings(names)
		enc.Len(len(names))
		for _, name := range names {
			enc.Str(name)
			s.Recorders[name].Snapshot(enc)
		}
	}
	reg.AddFuncs("account", snapRecorders, snapshot.VerifyFunc(snapRecorders))
	if s.sandboxes != nil {
		// The session manager's section exists only in scenarios that use
		// it, so the checkpoint wire format of pre-existing scenarios is
		// unchanged.
		reg.Add("sandbox", s.sandboxes)
	}
	for _, ex := range s.extraSnaps {
		reg.Add(ex.label, ex.s)
	}
	return reg
}

type extraSnap struct {
	label string
	s     snapshot.Snapshotter
}

// RegisterSnapshotter appends a scenario-level layer (e.g. a userspace
// daemon) to the system's checkpoint, after all built-in sections.
func (s *System) RegisterSnapshotter(label string, snap snapshot.Snapshotter) {
	for _, ex := range s.extraSnaps {
		if ex.label == label {
			panic(fmt.Sprintf("psbox: snapshotter %q already registered", label))
		}
	}
	s.extraSnaps = append(s.extraSnaps, extraSnap{label: label, s: snap})
}

// Snapshot captures the whole simulated stack as one versioned,
// CRC-protected checkpoint. Byte-identical across identically-constructed,
// identically-driven systems.
func (s *System) Snapshot() []byte { return s.registry().Checkpoint() }

// Restore verifies a checkpoint against this system under the replay-twin
// contract: the system must have been rebuilt from the same scenario and
// deterministically replayed to the checkpoint instant. Every layer
// re-encodes its live state and byte-compares it against the checkpoint;
// the first divergence is reported with its section and offset. State is
// never overwritten — a restore that silently patched state would mask
// replay divergence instead of exposing it.
func (s *System) Restore(data []byte) error { return s.registry().Restore(data) }

// SetAuditEvery arms a recurring mid-run invariant audit every period of
// simulated time, in addition to the audit System.Run performs at each
// horizon. The periodic event is scheduled immediately (and re-arms
// itself), so two systems built from the same scenario schedule identical
// event sequences whether or not a run is later cut short by a crash. A
// violation panics at the offending instant rather than at the end of the
// run. Calling it again replaces the previous cadence; period 0 disables.
func (s *System) SetAuditEvery(period Duration) {
	if s.auditStop != nil {
		s.auditStop()
		s.auditStop = nil
	}
	if period <= 0 {
		return
	}
	s.auditStop = s.Eng.Every(period, func(Time) {
		s.audits++
		if s.Invariants == nil {
			return
		}
		if v := s.Invariants.Check(); len(v) > 0 {
			panic("psbox: invariant violation (periodic audit):\n  " + strings.Join(v, "\n  "))
		}
	})
}

// Audits reports how many periodic invariant audits have fired.
func (s *System) Audits() uint64 { return s.audits }
