package psbox_test

import (
	"math"
	"testing"

	psbox "psbox"
	"psbox/internal/workload"
)

func TestNexus6PlatformShape(t *testing.T) {
	sys := psbox.NewNexus6(1)
	if sys.Kernel.CPU().Cores() != 4 {
		t.Fatalf("cores = %d", sys.Kernel.CPU().Cores())
	}
	if !sys.Meter.HasRail("gpu") || sys.Meter.HasRail("dsp") {
		t.Fatal("Nexus 6 has a GPU and no DSP")
	}
	dev := sys.Kernel.Accel("gpu").Device()
	if dev.ExecWidth() != 4 {
		t.Fatalf("Adreno exec width = %d", dev.ExecWidth())
	}
}

// Spatial balloons must hold across a four-core shootdown.
func TestNexus6QuadCoreExclusivity(t *testing.T) {
	sys := psbox.NewNexus6(2)
	victim := sys.Kernel.NewApp("victim")
	for c := 0; c < 4; c++ {
		victim.Spawn("t", c, psbox.Loop(
			psbox.Compute{Cycles: 2e6},
			psbox.Sleep{D: 4 * psbox.Millisecond},
		))
	}
	noise := sys.Kernel.NewApp("noise")
	for c := 0; c < 4; c++ {
		noise.Spawn("h", c, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	}
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Run(1 * psbox.Second)
	if box.Read() <= 0 {
		t.Fatal("no observation")
	}
	if victim.Counter("x") != 0 { // sanity on counters API
		t.Fatal("unexpected counter")
	}
	// All four victim threads progressed inside balloons.
	for _, tk := range victim.Tasks() {
		if tk.CPUTime() == 0 {
			t.Fatal("a victim thread starved")
		}
	}
	if sys.Kernel.Scheduler().Shootdowns() == 0 {
		t.Fatal("no shootdowns on a 4-core balloon")
	}
}

// The Fig. 6 GPU-insulation property must hold on the second GPU platform
// too (§5: "the two GPUs belong to different families").
func TestNexus6GPUInsulation(t *testing.T) {
	measure := func(co bool) float64 {
		sys := psbox.NewNexus6(3)
		victim := workload.Install(sys.Kernel, workload.BrowserGPU(4, false))
		if co {
			workload.Install(sys.Kernel, workload.Triangle(4, true))
		}
		box := sys.Sandbox.MustCreate(victim, psbox.HWGPU)
		box.Enter()
		sys.Run(2 * psbox.Second)
		return box.Read()
	}
	alone, co := measure(false), measure(true)
	if diff := math.Abs(co-alone) / alone; diff > 0.05 {
		t.Fatalf("Adreno observation shifted %.1f%% under triangle", diff*100)
	}
}

func TestNexus6FourCoreFairness(t *testing.T) {
	sys := psbox.NewNexus6(4)
	var apps [4]*psbox.App
	for i := range apps {
		apps[i] = sys.Kernel.NewApp("hog")
		for c := 0; c < 4; c++ {
			apps[i].Spawn("t", c, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		}
	}
	sys.Run(500 * psbox.Millisecond)
	box := sys.Sandbox.MustCreate(apps[0], psbox.HWCPU)
	box.Enter()
	var base [4]float64
	for i, a := range apps {
		base[i] = a.CPUTime().Seconds()
	}
	sys.Run(2 * psbox.Second)
	boxedGain := apps[0].CPUTime().Seconds() - base[0]
	for i := 1; i < 4; i++ {
		gain := apps[i].CPUTime().Seconds() - base[i]
		// Co-runners must not lose relative to their pre-box rate (1 core
		// each over 2s = 2 core-seconds).
		if gain < 1.9 {
			t.Fatalf("co-runner %d got %v core-seconds of 2", i, gain)
		}
		if boxedGain > gain {
			t.Fatalf("boxed app out-ran co-runner %d: %v vs %v", i, boxedGain, gain)
		}
	}
}
