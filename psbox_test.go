package psbox_test

import (
	"math"
	"testing"
	"testing/quick"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/workload"
)

func TestAM57PlatformShape(t *testing.T) {
	sys := psbox.NewAM57(1)
	if got := sys.Kernel.CPU().Cores(); got != 2 {
		t.Fatalf("cores = %d", got)
	}
	for _, rail := range []string{"cpu", "gpu", "dsp"} {
		if !sys.Meter.HasRail(rail) {
			t.Fatalf("missing rail %s", rail)
		}
		if _, ok := sys.Recorders[rail]; !ok {
			t.Fatalf("missing recorder %s", rail)
		}
	}
	if sys.Meter.HasRail("wifi") {
		t.Fatal("AM57 should not have WiFi")
	}
	if sys.Kernel.Net() != nil {
		t.Fatal("AM57 should not have a packet scheduler")
	}
	names := sys.Kernel.AccelNames()
	if len(names) != 2 || names[0] != "dsp" || names[1] != "gpu" {
		t.Fatalf("accels = %v", names)
	}
}

func TestBeagleBonePlatformShape(t *testing.T) {
	sys := psbox.NewBeagleBone(1)
	if got := sys.Kernel.CPU().Cores(); got != 1 {
		t.Fatalf("cores = %d", got)
	}
	if !sys.Meter.HasRail("wifi") || sys.Kernel.Net() == nil {
		t.Fatal("BeagleBone needs WiFi")
	}
	if len(sys.Kernel.AccelNames()) != 0 {
		t.Fatal("BeagleBone has no accelerators")
	}
}

func TestMobilePlatformShape(t *testing.T) {
	sys := psbox.NewMobile(1)
	for _, rail := range []string{"cpu", "gpu", "dsp", "wifi", "display", "gps", "dram"} {
		if !sys.Meter.HasRail(rail) {
			t.Fatalf("missing rail %s", rail)
		}
	}
	if sys.Kernel.Display() == nil || sys.Kernel.GPS() == nil || sys.Kernel.DRAM() == nil {
		t.Fatal("extension devices missing")
	}
}

func TestRunAdvancesClock(t *testing.T) {
	sys := psbox.NewAM57(1)
	sys.Run(123 * psbox.Millisecond)
	if sys.Now() != psbox.Time(123*psbox.Millisecond) {
		t.Fatalf("now = %v", sys.Now())
	}
}

func TestWholeSystemDeterminism(t *testing.T) {
	run := func() (float64, float64, float64) {
		sys := psbox.NewAM57(77)
		victim := workload.Install(sys.Kernel, workload.Calib3D(2, false))
		workload.Install(sys.Kernel, workload.Bodytrack(2, false))
		workload.Install(sys.Kernel, workload.Magic(2, false))
		box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
		box.Enter()
		sys.Run(1 * psbox.Second)
		return box.Read(),
			sys.Meter.Energy("cpu", 0, sys.Now()),
			sys.Meter.Energy("gpu", 0, sys.Now())
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%v,%v) vs (%v,%v,%v)", a1, b1, c1, a2, b2, c2)
	}
}

func TestSeedsChangeBehaviour(t *testing.T) {
	energy := func(seed uint64) float64 {
		sys := psbox.NewAM57(seed)
		workload.Install(sys.Kernel, workload.Bodytrack(2, false))
		sys.Run(1 * psbox.Second)
		return sys.Meter.Energy("cpu", 0, sys.Now())
	}
	if energy(1) == energy(2) {
		t.Fatal("different seeds should perturb jittered workloads")
	}
}

func TestAccountantUnknownRailPanics(t *testing.T) {
	sys := psbox.NewAM57(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.Accountant("npu", account.PolicyUsageShare)
}

func TestAccountantSharesAreConsistent(t *testing.T) {
	sys := psbox.NewAM57(5)
	a := workload.Install(sys.Kernel, workload.Calib3D(2, false))
	b := workload.Install(sys.Kernel, workload.Dedup(2, false))
	sys.Run(1 * psbox.Second)
	acc := sys.Accountant("cpu", account.PolicyUsageShare)
	shares := acc.Shares(0, sys.Now())
	total := shares[a.ID] + shares[b.ID]
	rail := sys.Meter.Energy("cpu", 0, sys.Now())
	if total <= 0 || total > rail+1e-9 {
		t.Fatalf("shares %v exceed rail energy %v", total, rail)
	}
}

// Property: a sandbox's reading never exceeds its rail's total energy, for
// arbitrary workload mixes.
func TestQuickBoxNeverExceedsRail(t *testing.T) {
	f := func(seed uint64, burstRaw, restRaw uint8) bool {
		burst := float64(burstRaw%50+1) * 1e5
		rest := psbox.Duration(restRaw%20+1) * psbox.Millisecond
		sys := psbox.NewAM57(seed)
		app := sys.Kernel.NewApp("a")
		app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: burst}, psbox.Sleep{D: rest}))
		other := sys.Kernel.NewApp("b")
		other.Spawn("t", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		box.Enter()
		sys.Run(300 * psbox.Millisecond)
		return box.Read() <= sys.Meter.Energy("cpu", 0, sys.Now())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: entering and leaving a box never loses energy monotonicity —
// Read() is non-decreasing over time.
func TestQuickBoxReadMonotone(t *testing.T) {
	f := func(seed uint64, toggles uint8) bool {
		sys := psbox.NewAM57(seed)
		app := sys.Kernel.NewApp("a")
		app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 5e5}, psbox.Sleep{D: 2 * psbox.Millisecond}))
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		last := 0.0
		n := int(toggles%6) + 2
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				box.Enter()
			} else {
				box.Leave()
			}
			sys.Run(30 * psbox.Millisecond)
			if v := box.Read(); v+1e-12 < last {
				return false
			} else {
				last = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLoopAndSequenceHelpers(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	tk := app.Spawn("seq", 0, psbox.Sequence(
		psbox.Compute{Cycles: 1e6},
		psbox.Compute{Cycles: 1e6},
	))
	sys.Run(100 * psbox.Millisecond)
	if !tk.Dead() {
		t.Fatal("sequence should exit after its actions")
	}
	want := 2e6 / (sys.Kernel.CPU().FreqMHz() * 1e6)
	if math.Abs(tk.CPUTime().Seconds()-want) > want*0.5 {
		t.Fatalf("cpu time %v", tk.CPUTime())
	}
}

func TestBatteryRailIsExactComponentSum(t *testing.T) {
	sys := psbox.NewAM57(12)
	workload.Install(sys.Kernel, workload.Calib3D(2, false))
	workload.Install(sys.Kernel, workload.Magic(2, false))
	workload.Install(sys.Kernel, workload.SGEMM(2, false))
	sys.Run(1 * psbox.Second)
	var sum float64
	for _, rail := range sys.Meter.Rails() {
		if rail == "battery" {
			continue
		}
		sum += sys.Meter.Energy(rail, 0, sys.Now())
	}
	bat := sys.Meter.Energy("battery", 0, sys.Now())
	if math.Abs(bat-sum) > 1e-9 {
		t.Fatalf("battery %v J != component sum %v J", bat, sum)
	}
	if bat <= 0 {
		t.Fatal("battery rail empty")
	}
}
