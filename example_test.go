package psbox_test

import (
	"fmt"

	psbox "psbox"
	"psbox/internal/account"
)

// Example reproduces Listing 1 of the paper: create a sandbox, enter it,
// sample and read the virtual power meter, leave.
func Example() {
	sys := psbox.NewAM57(42)
	app := sys.Kernel.NewApp("vision")
	app.Spawn("worker", 0, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.Sleep{D: 10 * psbox.Millisecond},
	))

	box := sys.Sandbox.MustCreate(app, psbox.HWCPU) // psbox_create(HW_CPU)
	box.Enter()                                     // psbox_enter
	sys.Run(100 * psbox.Millisecond)
	samples := box.Sample(psbox.HWCPU, 4) // psbox_sample(buf, n)
	box.Leave()                           // psbox_leave

	for _, s := range samples {
		fmt.Printf("t=%v %.2fW\n", s.T, s.W)
	}
	// The first two ticks show cluster-idle power; the worker then lands
	// on core 0 and its active power appears.
	// Output:
	// t=0.000000s 1.04W
	// t=0.000010s 1.04W
	// t=0.000020s 1.47W
	// t=0.000030s 1.47W
}

// Example_insulation shows the paper's core property: the sandboxed app's
// observation is invariant to a co-runner, while the baseline accounting
// share is not.
func Example_insulation() {
	observe := func(withNoise bool) (boxMJ, baselineMJ float64) {
		sys := psbox.NewAM57(7)
		app := sys.Kernel.NewApp("victim")
		app.Spawn("t", 0, psbox.Loop(
			psbox.Compute{Cycles: 3e6},
			psbox.Sleep{D: 6 * psbox.Millisecond},
		))
		if withNoise {
			noise := sys.Kernel.NewApp("noise")
			noise.Spawn("h0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
			noise.Spawn("h1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		}
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		box.Enter()
		sys.Run(1 * psbox.Second)
		acc := sys.Accountant("cpu", account.PolicyUsageShare)
		return box.Read() * 1000, acc.AppEnergy(app.ID, 0, sys.Now()) * 1000
	}
	aloneBox, _ := observe(false)
	noisyBox, _ := observe(true)
	shift := (noisyBox - aloneBox) / aloneBox * 100
	fmt.Printf("psbox observation shifts by less than 5%%: %v\n", shift < 5 && shift > -5)
	// Output:
	// psbox observation shifts by less than 5%: true
}

// Example_payAsYouGo shows the intended usage pattern: enter the box only
// around interesting phases; outside it the app runs at full speed.
func Example_payAsYouGo() {
	sys := psbox.NewAM57(3)
	app := sys.Kernel.NewApp("worker")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)

	// Observe a 50 ms phase.
	box.Enter()
	sys.Run(50 * psbox.Millisecond)
	phase := box.Read()
	box.Leave()

	// Run unobserved: no overhead, no accumulation.
	sys.Run(500 * psbox.Millisecond)
	after := box.Read()

	fmt.Printf("phase energy recorded: %v\n", phase > 0)
	fmt.Printf("no accumulation outside the box: %v\n", after == phase)
	// Output:
	// phase energy recorded: true
	// no accumulation outside the box: true
}
