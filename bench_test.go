// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §3 maps IDs to paper artifacts), plus the ablation
// studies and micro-benchmarks of the simulation substrates.
//
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports domain-specific metrics (deviations,
// losses, success rates) via b.ReportMetric, so a bench run doubles as a
// compact reproduction report.
package psbox_test

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	psbox "psbox"
	"psbox/internal/dtw"
	"psbox/internal/experiments"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFig3aSpatialEntanglement(b *testing.B) {
	var r experiments.Fig3aResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3a(uint64(i + 1))
	}
	b.ReportMetric(r.OverestimatePct, "overestimate_%")
}

func BenchmarkFig3bRequestBoundary(b *testing.B) {
	var r experiments.Fig3bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3b(uint64(i + 1))
	}
	b.ReportMetric(r.DurationSkewPct, "same_kind_skew_%")
}

func BenchmarkFig3cLingeringState(b *testing.B) {
	var r experiments.Fig3cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3c(uint64(i + 1))
	}
	b.ReportMetric(r.ExtraPct, "after_busy_extra_%")
}

func BenchmarkFig5Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig5().Rows) != 13 {
			b.Fatal("inventory incomplete")
		}
	}
}

func BenchmarkFig6Insulation(b *testing.B) {
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(uint64(i + 1))
	}
	var worstPS, worstBase float64
	for _, row := range r.Rows {
		if row.MaxPSBoxDevPct > worstPS {
			worstPS = row.MaxPSBoxDevPct
		}
		if row.MaxBaselineDevPct > worstBase {
			worstBase = row.MaxBaselineDevPct
		}
	}
	b.ReportMetric(worstPS, "psbox_worst_dev_%")
	b.ReportMetric(worstBase, "baseline_worst_dev_%")
}

func BenchmarkFig7Balloons(b *testing.B) {
	var r experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(uint64(i + 1))
	}
	b.ReportMetric(r.CPUOverlapUnboxedMs, "cpu_overlap_unboxed_ms")
	b.ReportMetric(r.CPUOverlapBoxedMs, "cpu_overlap_boxed_ms")
	b.ReportMetric(r.DSPOverlapUnboxedMs, "dsp_overlap_unboxed_ms")
	b.ReportMetric(r.DSPOverlapBoxedMs, "dsp_overlap_boxed_ms")
}

func BenchmarkTab62Overheads(b *testing.B) {
	var r experiments.Tab62Result
	for i := 0; i < b.N; i++ {
		r = experiments.Tab62(uint64(i + 1))
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.LatencyDelta.Milliseconds(), row.Domain+"_lat_delta_ms")
		b.ReportMetric(row.TotalLossPct, row.Domain+"_total_loss_%")
	}
}

func BenchmarkFig8Confinement(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(uint64(i + 1))
	}
	for _, d := range r.Domains {
		b.ReportMetric(d.BoxedLossPct, d.Domain+"_boxed_loss_%")
		b.ReportMetric(-d.WorstOtherLoss, d.Domain+"_other_change_%")
	}
}

func BenchmarkTab63Robustness(b *testing.B) {
	var r experiments.Tab63Result
	for i := 0; i < b.N; i++ {
		r = experiments.Tab63(uint64(i + 1))
	}
	b.ReportMetric(r.BrowserDropFactor, "browser_drop_x")
	b.ReportMetric(r.TriangleChangePct, "triangle_change_%")
}

func BenchmarkFig9VRAdaptation(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(uint64(i + 1))
	}
	b.ReportMetric(r.DynamicRange, "dynamic_range_x")
}

func BenchmarkSec25SideChannel(b *testing.B) {
	var r experiments.Sec25Result
	for i := 0; i < b.N; i++ {
		r = experiments.Sec25(uint64(i + 1))
	}
	b.ReportMetric(r.Unrestricted.SuccessRate*100, "unrestricted_success_%")
	b.ReportMetric(r.PSBox.SuccessRate*100, "psbox_success_%")
}

// --- Ablations (DESIGN.md §3) --------------------------------------------

func BenchmarkAblationLoans(b *testing.B) {
	var r experiments.AblLoansResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblLoans(uint64(i + 1))
	}
	b.ReportMetric(r.BoxedLossWithPct, "boxed_loss_with_%")
	b.ReportMetric(r.BoxedLossWithoutPct, "boxed_loss_without_%")
}

func BenchmarkAblationStateVirt(b *testing.B) {
	var r experiments.AblStateVirtResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblStateVirt(uint64(i + 1))
	}
	b.ReportMetric(r.LeakWithPct, "leak_with_%")
	b.ReportMetric(r.LeakWithoutPct, "leak_without_%")
}

func BenchmarkAblationDrainBilling(b *testing.B) {
	var r experiments.AblDrainBillingResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblDrainBilling(uint64(i + 1))
	}
	b.ReportMetric(r.OtherLossFullPct, "other_loss_full_%")
	b.ReportMetric(r.OtherLossIdlePct, "other_loss_idle_%")
}

func BenchmarkAblationMeterRate(b *testing.B) {
	var r experiments.AblMeterRateResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblMeterRate(uint64(i + 1))
	}
	if len(r.DevPct) > 0 {
		b.ReportMetric(r.DevPct[len(r.DevPct)-1], "dev_at_10us_%")
	}
}

func BenchmarkExt7Scopes(b *testing.B) {
	var r experiments.Ext7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Ext7(uint64(i + 1))
	}
	worst := 0.0
	for _, d := range r.DevPct {
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst_scope_dev_%")
}

func BenchmarkLimCellular(b *testing.B) {
	var r experiments.LimCellularResult
	for i := 0; i < b.N; i++ {
		r = experiments.LimCellular(uint64(i + 1))
	}
	b.ReportMetric(r.DevPct, "entanglement_%")
	b.ReportMetric(r.ColdFirstByteMs, "cold_first_byte_ms")
}

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkSimEngineEvents measures raw event throughput of the
// discrete-event core.
func BenchmarkSimEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func(sim.Time)
	tick = func(sim.Time) {
		n++
		eng.After(1000, tick)
	}
	eng.After(1000, tick)
	b.ResetTimer()
	eng.Run(sim.Time(int64(b.N) * 1000))
	if n < b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkSchedulerSecond measures how much host time one simulated
// second of a contended dual-core scheduler costs.
func BenchmarkSchedulerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := psbox.NewAM57(uint64(i + 1))
		for j := 0; j < 3; j++ {
			workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Run(1 * psbox.Second)
	}
}

// BenchmarkBoxedSchedulerSecond is the same with one app sandboxed —
// the simulator-side cost of balloons.
func BenchmarkBoxedSchedulerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := psbox.NewAM57(uint64(i + 1))
		var app *psbox.App
		for j := 0; j < 3; j++ {
			app = workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Sandbox.MustCreate(app, psbox.HWCPU).Enter()
		sys.Run(1 * psbox.Second)
	}
}

// tracedWorkload drives the observability-bench scenario: a contended
// dual-core AM57 with one sandboxed app, matching the canonical traced
// scenario shape.
func tracedWorkload(seed uint64, traced bool, d psbox.Duration) *psbox.System {
	sys := psbox.NewAM57(seed)
	if traced {
		sys.EnableTracing()
	}
	var app *psbox.App
	for j := 0; j < 3; j++ {
		app = workload.Install(sys.Kernel, workload.Calib3D(2, true))
	}
	sys.Sandbox.MustCreate(app, psbox.HWCPU).Enter()
	sys.Run(d)
	return sys
}

// BenchmarkTracingOffSecond is the no-bus baseline for the tracing
// overhead budget (< 10%, see BenchmarkTracingOnSecond).
func BenchmarkTracingOffSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tracedWorkload(uint64(i+1), false, 1*psbox.Second)
	}
}

// BenchmarkTracingOnSecond is the same simulated second with every
// emission site live. Compare against BenchmarkTracingOffSecond: full
// tracing must stay under 10% wall-clock overhead.
func BenchmarkTracingOnSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tracedWorkload(uint64(i+1), true, 1*psbox.Second)
	}
}

// TestTracingOverheadBudget enforces the overhead acceptance bound in the
// regular test run: full tracing must cost < 10% wall-clock over the same
// run with the bus disabled. Wall-clock timing on a loaded host is noisy,
// so the two variants run strictly interleaved (off/on pairs, so CPU
// frequency and cache drift hit both equally), the fastest of each is
// compared, and the whole measurement retries before failing.
func TestTracingOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("the race detector multiplies per-event instrumentation cost; " +
			"the 10% budget is a production-build claim")
	}
	const rounds = 8
	horizon := 1 * psbox.Second
	tracedWorkload(1, true, horizon) // warm up both paths once
	tracedWorkload(1, false, horizon)
	measure := func() (off, on time.Duration) {
		off, on = math.MaxInt64, math.MaxInt64
		for r := 0; r < rounds; r++ {
			start := time.Now()
			tracedWorkload(uint64(r+1), false, horizon)
			if d := time.Since(start); d < off {
				off = d
			}
			start = time.Now()
			tracedWorkload(uint64(r+1), true, horizon)
			if d := time.Since(start); d < on {
				on = d
			}
		}
		return off, on
	}
	var off, on time.Duration
	for attempt := 1; ; attempt++ {
		off, on = measure()
		t.Logf("attempt %d: tracing off %v, on %v (%+.2f%% overhead)",
			attempt, off, on, 100*(float64(on)/float64(off)-1))
		if float64(on) <= float64(off)*1.10 {
			return
		}
		if attempt == 3 {
			t.Fatalf("tracing overhead %.2f%% exceeds the 10%% budget (off=%v on=%v)",
				100*(float64(on)/float64(off)-1), off, on)
		}
	}
}

// TestDisabledTracingZeroDrift proves the disabled bus changes nothing
// observable: the same seeded scenario with and without tracing yields
// byte-identical simulation outcomes (fault log, rail energies, app CPU
// time). Only the trace itself may differ.
func TestDisabledTracingZeroDrift(t *testing.T) {
	digest := func(traced bool) string {
		sys := tracedWorkload(7, traced, 200*psbox.Millisecond)
		var b strings.Builder
		b.WriteString(sys.Faults.FormatLog())
		for _, rail := range sys.Meter.Rails() {
			fmt.Fprintf(&b, "%s=%.12f\n", rail, sys.Meter.Energy(rail, 0, sys.Now()))
		}
		for _, a := range sys.Kernel.Apps() {
			fmt.Fprintf(&b, "%s=%d\n", a.Name, int64(a.CPUTime()))
		}
		for _, bx := range sys.Sandbox.Boxes() {
			fmt.Fprintf(&b, "box=%.12f\n", bx.Read())
		}
		return b.String()
	}
	on, off := digest(true), digest(false)
	if on != off {
		t.Fatalf("tracing perturbed the simulation:\nwith tracing:\n%s\nwithout:\n%s", on, off)
	}
	if sys := tracedWorkload(7, false, 200*psbox.Millisecond); sys.Trace.Total() != 0 {
		t.Fatalf("disabled bus recorded %d events", sys.Trace.Total())
	}
}

// TestDisabledProfilingZeroDrift proves the energy profiler is free when
// off: the same traced scenario with and without profiling (including
// mid-run FoldProfile calls) yields byte-identical simulation outcomes,
// and a never-enabled profiler accumulates nothing even when FoldProfile
// is called.
func TestDisabledProfilingZeroDrift(t *testing.T) {
	digest := func(profiled bool) string {
		sys := psbox.NewAM57(7)
		if profiled {
			sys.EnableProfiling()
		} else {
			sys.EnableTracing()
		}
		var app *psbox.App
		for j := 0; j < 3; j++ {
			app = workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Sandbox.MustCreate(app, psbox.HWCPU).Enter()
		sys.Run(100 * psbox.Millisecond)
		sys.FoldProfile() // no-op when profiling is off
		sys.Run(100 * psbox.Millisecond)
		sys.FoldProfile()
		var b strings.Builder
		b.WriteString(sys.Faults.FormatLog())
		for _, rail := range sys.Meter.Rails() {
			fmt.Fprintf(&b, "%s=%.12f\n", rail, sys.Meter.Energy(rail, 0, sys.Now()))
		}
		for _, a := range sys.Kernel.Apps() {
			fmt.Fprintf(&b, "%s=%d\n", a.Name, int64(a.CPUTime()))
		}
		for _, bx := range sys.Sandbox.Boxes() {
			fmt.Fprintf(&b, "box=%.12f\n", bx.Read())
		}
		fmt.Fprintf(&b, "trace=%d\n", sys.Trace.Total())
		return b.String()
	}
	on, off := digest(true), digest(false)
	if on != off {
		t.Fatalf("profiling perturbed the simulation:\nwith profiling:\n%s\nwithout:\n%s", on, off)
	}
	sys := tracedWorkload(7, true, 100*psbox.Millisecond)
	sys.FoldProfile() // profiler never enabled: folds must not accumulate
	if sys.Profile.Windows() != 0 || len(sys.Profile.Entries()) != 0 {
		t.Fatalf("disabled profiler folded %d windows", sys.Profile.Windows())
	}
	if sys.Profile.Armed() {
		t.Fatal("disabled profiler reports armed; checkpoint format would change")
	}
}

// TestProfileFoldAccumulates sanity-checks the wired-up fold: a profiled
// run yields a non-empty tree whose total tracks the non-battery rail
// energy, the watermark advances, and repeated folds don't double-count.
func TestProfileFoldAccumulates(t *testing.T) {
	sys := psbox.NewAM57(7)
	sys.EnableProfiling()
	var app *psbox.App
	for j := 0; j < 3; j++ {
		app = workload.Install(sys.Kernel, workload.Calib3D(2, true))
	}
	sys.Sandbox.MustCreate(app, psbox.HWCPU).Enter()
	sys.Run(200 * psbox.Millisecond)
	sys.FoldProfile()
	entries := sys.Profile.Entries()
	if len(entries) == 0 {
		t.Fatal("profiled run produced an empty tree")
	}
	var total float64
	for _, e := range entries {
		total += e.J
	}
	if total <= 0 {
		t.Fatalf("profile total = %v J", total)
	}
	if sys.Profile.Through() != sys.Now() {
		t.Fatalf("watermark %v, want %v", sys.Profile.Through(), sys.Now())
	}
	before := sys.Profile.Windows()
	sys.FoldProfile() // nothing new to fold
	if sys.Profile.Windows() != before {
		t.Fatalf("refold double-counted: %d -> %d windows", before, sys.Profile.Windows())
	}
	// The armed profiler joins the checkpoint, and a replay twin verifies.
	snap := sys.Snapshot()
	twin := psbox.NewAM57(7)
	twin.EnableProfiling()
	var tapp *psbox.App
	for j := 0; j < 3; j++ {
		tapp = workload.Install(twin.Kernel, workload.Calib3D(2, true))
	}
	twin.Sandbox.MustCreate(tapp, psbox.HWCPU).Enter()
	twin.Run(200 * psbox.Millisecond)
	twin.FoldProfile()
	twin.FoldProfile()
	if err := twin.Restore(snap); err != nil {
		t.Fatalf("profiled twin restore: %v", err)
	}
}

// BenchmarkVirtualMeterRead measures psbox_read over a long residency
// history.
func BenchmarkVirtualMeterRead(b *testing.B) {
	sys := psbox.NewAM57(9)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.Sleep{D: 2 * psbox.Millisecond},
	))
	hog := sys.Kernel.NewApp("hog")
	hog.Spawn("h", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	sys.Run(2 * psbox.Second)
	b.ResetTimer()
	var e float64
	for i := 0; i < b.N; i++ {
		e = box.Read()
	}
	_ = e
}

// BenchmarkDTWClassify measures the §2.5 attacker's classification step.
func BenchmarkDTWClassify(b *testing.B) {
	r := sim.NewRand(5)
	mk := func() []float64 {
		s := make([]float64, 300)
		for i := range s {
			s[i] = r.Float64()
		}
		return s
	}
	training := make([][]float64, 10)
	for i := range training {
		training[i] = mk()
	}
	probe := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.Classify(probe, training, 30)
	}
}

// BenchmarkAccounting measures the baseline accountant's window walk over
// one simulated second at the paper's 10 µs granularity.
func BenchmarkAccounting(b *testing.B) {
	sys := psbox.NewAM57(11)
	victim := workload.Install(sys.Kernel, workload.Calib3D(2, false))
	workload.Install(sys.Kernel, workload.Bodytrack(2, false))
	sys.Run(1 * psbox.Second)
	acc := sys.Accountant("cpu", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AppEnergy(victim.ID, 0, sys.Now())
	}
}
