// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §3 maps IDs to paper artifacts), plus the ablation
// studies and micro-benchmarks of the simulation substrates.
//
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports domain-specific metrics (deviations,
// losses, success rates) via b.ReportMetric, so a bench run doubles as a
// compact reproduction report.
package psbox_test

import (
	"testing"

	psbox "psbox"
	"psbox/internal/dtw"
	"psbox/internal/experiments"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkFig3aSpatialEntanglement(b *testing.B) {
	var r experiments.Fig3aResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3a(uint64(i + 1))
	}
	b.ReportMetric(r.OverestimatePct, "overestimate_%")
}

func BenchmarkFig3bRequestBoundary(b *testing.B) {
	var r experiments.Fig3bResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3b(uint64(i + 1))
	}
	b.ReportMetric(r.DurationSkewPct, "same_kind_skew_%")
}

func BenchmarkFig3cLingeringState(b *testing.B) {
	var r experiments.Fig3cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig3c(uint64(i + 1))
	}
	b.ReportMetric(r.ExtraPct, "after_busy_extra_%")
}

func BenchmarkFig5Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig5().Rows) != 13 {
			b.Fatal("inventory incomplete")
		}
	}
}

func BenchmarkFig6Insulation(b *testing.B) {
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(uint64(i + 1))
	}
	var worstPS, worstBase float64
	for _, row := range r.Rows {
		if row.MaxPSBoxDevPct > worstPS {
			worstPS = row.MaxPSBoxDevPct
		}
		if row.MaxBaselineDevPct > worstBase {
			worstBase = row.MaxBaselineDevPct
		}
	}
	b.ReportMetric(worstPS, "psbox_worst_dev_%")
	b.ReportMetric(worstBase, "baseline_worst_dev_%")
}

func BenchmarkFig7Balloons(b *testing.B) {
	var r experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7(uint64(i + 1))
	}
	b.ReportMetric(r.CPUOverlapUnboxedMs, "cpu_overlap_unboxed_ms")
	b.ReportMetric(r.CPUOverlapBoxedMs, "cpu_overlap_boxed_ms")
	b.ReportMetric(r.DSPOverlapUnboxedMs, "dsp_overlap_unboxed_ms")
	b.ReportMetric(r.DSPOverlapBoxedMs, "dsp_overlap_boxed_ms")
}

func BenchmarkTab62Overheads(b *testing.B) {
	var r experiments.Tab62Result
	for i := 0; i < b.N; i++ {
		r = experiments.Tab62(uint64(i + 1))
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.LatencyDelta.Milliseconds(), row.Domain+"_lat_delta_ms")
		b.ReportMetric(row.TotalLossPct, row.Domain+"_total_loss_%")
	}
}

func BenchmarkFig8Confinement(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(uint64(i + 1))
	}
	for _, d := range r.Domains {
		b.ReportMetric(d.BoxedLossPct, d.Domain+"_boxed_loss_%")
		b.ReportMetric(-d.WorstOtherLoss, d.Domain+"_other_change_%")
	}
}

func BenchmarkTab63Robustness(b *testing.B) {
	var r experiments.Tab63Result
	for i := 0; i < b.N; i++ {
		r = experiments.Tab63(uint64(i + 1))
	}
	b.ReportMetric(r.BrowserDropFactor, "browser_drop_x")
	b.ReportMetric(r.TriangleChangePct, "triangle_change_%")
}

func BenchmarkFig9VRAdaptation(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(uint64(i + 1))
	}
	b.ReportMetric(r.DynamicRange, "dynamic_range_x")
}

func BenchmarkSec25SideChannel(b *testing.B) {
	var r experiments.Sec25Result
	for i := 0; i < b.N; i++ {
		r = experiments.Sec25(uint64(i + 1))
	}
	b.ReportMetric(r.Unrestricted.SuccessRate*100, "unrestricted_success_%")
	b.ReportMetric(r.PSBox.SuccessRate*100, "psbox_success_%")
}

// --- Ablations (DESIGN.md §3) --------------------------------------------

func BenchmarkAblationLoans(b *testing.B) {
	var r experiments.AblLoansResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblLoans(uint64(i + 1))
	}
	b.ReportMetric(r.BoxedLossWithPct, "boxed_loss_with_%")
	b.ReportMetric(r.BoxedLossWithoutPct, "boxed_loss_without_%")
}

func BenchmarkAblationStateVirt(b *testing.B) {
	var r experiments.AblStateVirtResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblStateVirt(uint64(i + 1))
	}
	b.ReportMetric(r.LeakWithPct, "leak_with_%")
	b.ReportMetric(r.LeakWithoutPct, "leak_without_%")
}

func BenchmarkAblationDrainBilling(b *testing.B) {
	var r experiments.AblDrainBillingResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblDrainBilling(uint64(i + 1))
	}
	b.ReportMetric(r.OtherLossFullPct, "other_loss_full_%")
	b.ReportMetric(r.OtherLossIdlePct, "other_loss_idle_%")
}

func BenchmarkAblationMeterRate(b *testing.B) {
	var r experiments.AblMeterRateResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblMeterRate(uint64(i + 1))
	}
	if len(r.DevPct) > 0 {
		b.ReportMetric(r.DevPct[len(r.DevPct)-1], "dev_at_10us_%")
	}
}

func BenchmarkExt7Scopes(b *testing.B) {
	var r experiments.Ext7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Ext7(uint64(i + 1))
	}
	worst := 0.0
	for _, d := range r.DevPct {
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worst_scope_dev_%")
}

func BenchmarkLimCellular(b *testing.B) {
	var r experiments.LimCellularResult
	for i := 0; i < b.N; i++ {
		r = experiments.LimCellular(uint64(i + 1))
	}
	b.ReportMetric(r.DevPct, "entanglement_%")
	b.ReportMetric(r.ColdFirstByteMs, "cold_first_byte_ms")
}

// --- Substrate micro-benchmarks ------------------------------------------

// BenchmarkSimEngineEvents measures raw event throughput of the
// discrete-event core.
func BenchmarkSimEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func(sim.Time)
	tick = func(sim.Time) {
		n++
		eng.After(1000, tick)
	}
	eng.After(1000, tick)
	b.ResetTimer()
	eng.Run(sim.Time(int64(b.N) * 1000))
	if n < b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkSchedulerSecond measures how much host time one simulated
// second of a contended dual-core scheduler costs.
func BenchmarkSchedulerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := psbox.NewAM57(uint64(i + 1))
		for j := 0; j < 3; j++ {
			workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Run(1 * psbox.Second)
	}
}

// BenchmarkBoxedSchedulerSecond is the same with one app sandboxed —
// the simulator-side cost of balloons.
func BenchmarkBoxedSchedulerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := psbox.NewAM57(uint64(i + 1))
		var app *psbox.App
		for j := 0; j < 3; j++ {
			app = workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Sandbox.MustCreate(app, psbox.HWCPU).Enter()
		sys.Run(1 * psbox.Second)
	}
}

// BenchmarkVirtualMeterRead measures psbox_read over a long residency
// history.
func BenchmarkVirtualMeterRead(b *testing.B) {
	sys := psbox.NewAM57(9)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.Sleep{D: 2 * psbox.Millisecond},
	))
	hog := sys.Kernel.NewApp("hog")
	hog.Spawn("h", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	sys.Run(2 * psbox.Second)
	b.ResetTimer()
	var e float64
	for i := 0; i < b.N; i++ {
		e = box.Read()
	}
	_ = e
}

// BenchmarkDTWClassify measures the §2.5 attacker's classification step.
func BenchmarkDTWClassify(b *testing.B) {
	r := sim.NewRand(5)
	mk := func() []float64 {
		s := make([]float64, 300)
		for i := range s {
			s[i] = r.Float64()
		}
		return s
	}
	training := make([][]float64, 10)
	for i := range training {
		training[i] = mk()
	}
	probe := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtw.Classify(probe, training, 30)
	}
}

// BenchmarkAccounting measures the baseline accountant's window walk over
// one simulated second at the paper's 10 µs granularity.
func BenchmarkAccounting(b *testing.B) {
	sys := psbox.NewAM57(11)
	victim := workload.Install(sys.Kernel, workload.Calib3D(2, false))
	workload.Install(sys.Kernel, workload.Bodytrack(2, false))
	sys.Run(1 * psbox.Second)
	acc := sys.Accountant("cpu", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AppEnergy(victim.ID, 0, sys.Now())
	}
}
