package psbox_test

import (
	"fmt"
	"testing"

	psbox "psbox"
	"psbox/internal/faults"
)

// faultScenario is a compressed psbox-faults run: a GPU pipeline and an
// uplink streamer in sandboxes, one fixed fault of each kind, and a seeded
// random campaign. It returns a full textual trace of everything a fault
// could perturb.
func faultScenario(seed uint64) string {
	sys := psbox.NewMobile(seed)
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	visionBox := sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU)
	visionBox.Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 5e5},
		psbox.Send{Socket: sock, Bytes: 12_000},
		psbox.AwaitNet{MaxBacklog: 24_000},
		psbox.Sleep{D: 5 * psbox.Millisecond},
	))
	streamBox := sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi)
	streamBox.Enter()

	const horizon = 400 * psbox.Millisecond
	sys.Faults.HangAccelAt(psbox.Time(horizon/10), "gpu")
	sys.Faults.FlapLinkAt(psbox.Time(horizon/4), "wifi", 10*psbox.Millisecond)
	sys.Faults.StallDVFSAt(psbox.Time(2*horizon/5), "cpu", 15*psbox.Millisecond)
	sys.Faults.DropMeterAt(psbox.Time(horizon/2), "gpu", 25*psbox.Millisecond)
	sys.Faults.Randomize(faults.Campaign{
		Horizon:       horizon,
		AccelHangs:    1,
		NICFlaps:      1,
		DVFSStalls:    1,
		MeterDropouts: 2,
	})

	sys.Run(horizon)

	out := sys.Faults.FormatLog()
	for _, name := range sys.Kernel.AccelNames() {
		d := sys.Kernel.Accel(name)
		out += fmt.Sprintf("%s resets=%d resubmits=%d dropped=%d\n",
			name, d.WatchdogResets(), d.Resubmits(), d.DroppedCommands())
	}
	out += fmt.Sprintf("net flaps=%d retries=%d\n",
		sys.Kernel.Net().NIC().Flaps(), sys.Kernel.Net().LinkRetries())
	for _, b := range []*psbox.Box{visionBox, streamBox} {
		direct, est, gaps := b.ReadDetail()
		out += fmt.Sprintf("%s direct=%.12f est=%.12f gaps=%d\n",
			b.App().Name, direct, est, gaps)
	}
	out += fmt.Sprintf("battery=%.12f\n", sys.Meter.Energy("battery", 0, sys.Now()))
	return out
}

// TestFaultScenarioDeterministic is the in-tree version of the CI
// determinism job: one seed, two fresh systems, byte-identical traces.
func TestFaultScenarioDeterministic(t *testing.T) {
	a, b := faultScenario(7), faultScenario(7)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if c := faultScenario(8); c == a {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestFaultScenarioRecovers asserts every recovery path actually engaged:
// the watchdog reset the hung GPU, the packet scheduler retransmitted over
// the flap, and the vision box's reading went degraded over the DAQ gap —
// all while System.Run's invariant audit (energy conservation, balloon
// exclusivity, non-negative backlogs, monotone readings) stayed silent.
func TestFaultScenarioRecovers(t *testing.T) {
	sys := psbox.NewMobile(3)
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	visionBox := sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU)
	visionBox.Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Send{Socket: sock, Bytes: 12_000},
		psbox.AwaitNet{MaxBacklog: 12_000},
		psbox.Sleep{D: 3 * psbox.Millisecond},
	))

	sys.Faults.HangAccelAt(psbox.Time(50*psbox.Millisecond), "gpu")
	sys.Faults.FlapLinkAt(psbox.Time(100*psbox.Millisecond), "wifi", 10*psbox.Millisecond)
	sys.Faults.DropMeterAt(psbox.Time(200*psbox.Millisecond), "gpu", 20*psbox.Millisecond)

	sys.Run(400 * psbox.Millisecond)

	gpu := sys.Kernel.Accel("gpu")
	if gpu.WatchdogResets() == 0 || gpu.Resubmits() == 0 {
		t.Fatalf("gpu hang never recovered: resets=%d resubmits=%d",
			gpu.WatchdogResets(), gpu.Resubmits())
	}
	if sys.Kernel.Net().LinkRetries() == 0 {
		t.Fatal("link flap never forced a retransmission")
	}
	if !visionBox.Degraded() {
		t.Fatal("vision box should report a degraded reading over the DAQ gap")
	}
	if _, est, gaps := visionBox.ReadDetail(); gaps == 0 || est <= 0 {
		t.Fatalf("degraded detail: est=%v gaps=%d", est, gaps)
	}
	if gpu.Completed(vision.ID) == 0 {
		t.Fatal("vision made no progress through the faults")
	}
}
