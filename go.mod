module psbox

go 1.22
