package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestReportMatchesGolden regenerates both seeded reports in-process and
// compares them byte-for-byte against the goldens committed under
// testdata/ at the module root. CI additionally re-runs the binary under
// -race on the second seed; any divergence — across runs, seeds, or
// toolchains — is a determinism bug, never a flake.
func TestReportMatchesGolden(t *testing.T) {
	cases := []struct {
		seed   uint64
		ms     int64
		golden string
	}{
		{42, 2000, "psbox-faults-seed42-ms2000.golden"},
		{7, 1000, "psbox-faults-seed7-ms1000.golden"},
	}
	for _, c := range cases {
		want, err := os.ReadFile(filepath.Join("..", "..", "testdata", c.golden))
		if err != nil {
			t.Fatalf("golden missing (regenerate with `go run ./cmd/psbox-faults -seed %d -ms %d > testdata/%s`): %v",
				c.seed, c.ms, c.golden, err)
		}
		got := buildReport(c.seed, c.ms)
		if got != string(want) {
			t.Errorf("seed=%d ms=%d: report diverged from %s\ngot:\n%s", c.seed, c.ms, c.golden, got)
		}
	}
}

// TestReportRepeatable runs the same seed twice in one process: the two
// reports must be identical even without the golden as referee.
func TestReportRepeatable(t *testing.T) {
	a := buildReport(3, 500)
	b := buildReport(3, 500)
	if a != b {
		t.Fatal("two runs with the same seed diverged within one process")
	}
}
