// Command psbox-faults runs a seeded fault-injection scenario and prints a
// deterministic report: the fault log, the recovery counters of every
// layer, and the sandboxes' final observations. Two runs with the same
// seed must print byte-identical output — the CI determinism job runs it
// twice (once under -race), diffs the runs, and diffs both seeds against
// the golden reports committed under testdata/.
//
// Usage:
//
//	psbox-faults [-seed N] [-ms D]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"psbox"
	"psbox/internal/faults"
	"psbox/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed")
	ms := flag.Int64("ms", 2000, "simulated duration in milliseconds")
	flag.Parse()
	if *ms <= 0 {
		fmt.Fprintln(os.Stderr, "psbox-faults: -ms must be positive")
		os.Exit(2)
	}
	fmt.Print(buildReport(*seed, *ms))
}

// buildReport runs the canonical fault scenario and renders the full
// report. It is the unit the determinism harness snapshots: the golden
// files under testdata/ hold its output verbatim for two (seed, ms) pairs.
func buildReport(seed uint64, ms int64) string {
	sys := psbox.NewMobile(seed)
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	// A GPU-bound vision pipeline in a sandbox over cpu+gpu.
	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	visionBox := sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU)
	visionBox.Enter()

	// A streaming uploader in a sandbox over cpu+wifi.
	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 8e5},
		psbox.Send{Socket: sock, Bytes: 24_000},
		psbox.AwaitNet{MaxBacklog: 48_000},
		psbox.Sleep{D: 6 * psbox.Millisecond},
	))
	streamBox := sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi)
	streamBox.Enter()

	// An unsandboxed competitor keeping the DSP and CPU entangled.
	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("grind", 1, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.SubmitAccel{Dev: "dsp", Kind: "fft", Work: 4e4, DynW: 0.5},
		psbox.Sleep{D: 9 * psbox.Millisecond},
	))

	// The fixed fault schedule: one of each kind at staggered instants,
	// plus a seeded random campaign over the remaining horizon.
	horizon := sim.Duration(ms) * psbox.Millisecond
	at := func(frac float64) psbox.Time { return psbox.Time(float64(horizon) * frac) }
	sys.Faults.HangAccelAt(at(0.10), "gpu")
	sys.Faults.FlapLinkAt(at(0.25), "wifi", 15*psbox.Millisecond)
	sys.Faults.StallDVFSAt(at(0.40), "cpu", 25*psbox.Millisecond)
	sys.Faults.DropMeterAt(at(0.55), "gpu", 30*psbox.Millisecond)
	sys.Faults.Randomize(faults.Campaign{
		Horizon:       horizon,
		AccelHangs:    2,
		NICFlaps:      2,
		DVFSStalls:    2,
		MeterDropouts: 3,
	})

	sys.Run(horizon)

	var b strings.Builder
	fmt.Fprintln(&b, "== fault log ==")
	b.WriteString(sys.Faults.FormatLog())

	fmt.Fprintln(&b, "== recovery ==")
	for _, name := range sys.Kernel.AccelNames() {
		d := sys.Kernel.Accel(name)
		fmt.Fprintf(&b, "%-6s watchdog resets=%d resubmits=%d dropped=%d\n",
			name, d.WatchdogResets(), d.Resubmits(), d.DroppedCommands())
	}
	fmt.Fprintf(&b, "net    flaps=%d retries=%d\n", sys.Kernel.Net().NIC().Flaps(), sys.Kernel.Net().LinkRetries())

	fmt.Fprintln(&b, "== observations ==")
	for _, bx := range []*psbox.Box{visionBox, streamBox} {
		direct, est, gaps := bx.ReadDetail()
		fmt.Fprintf(&b, "%-7s read=%.9f J direct=%.9f J estimated=%.9f J gaps=%d degraded=%v\n",
			bx.App().Name, direct+est, direct, est, gaps, bx.Degraded())
	}
	fmt.Fprintf(&b, "battery=%.9f J\n", sys.Meter.Energy("battery", 0, sys.Now()))
	fmt.Fprintln(&b, "invariants: ok")
	return b.String()
}
