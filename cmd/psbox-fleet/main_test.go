//psbox:allow-noconcurrency exercises the concurrent supervisor through the CLI
//psbox:allow-nowallclock golden runs shrink the watchdog's host-side stall deadline for speed

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenAcrossWorkers runs the CI fleet-soak configuration at one
// worker and at four and byte-compares both merged reports against the
// committed golden: the report must not depend on parallelism,
// completion order, or which retry attempt succeeded. The _obs variants
// append every observability rendering (metrics rollup, folded stacks,
// top table, Prometheus exposition), extending the same contract to the
// whole fleet-observability surface — including the noretry run, where
// quarantined shards must drop out of the rollup identically at any
// worker count. Set UPDATE_GOLDEN=1 to regenerate.
func TestGoldenAcrossWorkers(t *testing.T) {
	base := []string{"-chaos", "-seed", "42", "-shards", "8", "-ms", "100",
		"-quanta", "20", "-ckpt-every", "5", "-stall", "500ms"}
	obs := []string{"-metrics", "-profile", "-top", "5", "-expo"}
	for _, tc := range []struct {
		golden  string
		retries string
		extra   []string
	}{
		{"fleet_chaos.golden", "2", nil},
		{"fleet_chaos_noretry.golden", "0", nil},
		{"fleet_obs.golden", "2", obs},
		{"fleet_obs_noretry.golden", "0", obs},
	} {
		path := filepath.Join("testdata", tc.golden)
		for _, workers := range []string{"1", "4"} {
			args := append(append([]string{}, base...), "-retries", tc.retries, "-workers", workers)
			args = append(args, tc.extra...)
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("%s workers=%s: exit %d, stderr: %s", tc.golden, workers, code, stderr.String())
			}
			if workers == "1" && os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("%s workers=%s: report deviates from golden\n--- got ---\n%s",
					tc.golden, workers, stdout.String())
			}
		}
	}
}

// TestProgressStderrDoesNotPerturbStdout: -progress writes wall-clock
// lines to stderr only; the deterministic report bytes must be identical
// with and without it.
func TestProgressStderrDoesNotPerturbStdout(t *testing.T) {
	base := []string{"-seed", "7", "-shards", "3", "-ms", "50", "-quanta", "10",
		"-ckpt-every", "2", "-retries", "1", "-metrics", "-expo"}
	var plain, progress, stderr bytes.Buffer
	if code := run(base, &plain, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(append(append([]string{}, base...), "-progress"), &progress, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !bytes.Equal(plain.Bytes(), progress.Bytes()) {
		t.Error("-progress changed stdout")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("3/3 shards done")) {
		t.Errorf("progress reporter missing final line:\n%s", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-ms", "0"},
		{"-shards", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want usage exit 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
