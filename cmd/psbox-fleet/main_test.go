//psbox:allow-noconcurrency exercises the concurrent supervisor through the CLI
//psbox:allow-nowallclock golden runs shrink the watchdog's host-side stall deadline for speed

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenAcrossWorkers runs the CI fleet-soak configuration at one
// worker and at four and byte-compares both merged reports against the
// committed golden: the report must not depend on parallelism,
// completion order, or which retry attempt succeeded.
func TestGoldenAcrossWorkers(t *testing.T) {
	base := []string{"-chaos", "-seed", "42", "-shards", "8", "-ms", "100",
		"-quanta", "20", "-ckpt-every", "5", "-stall", "500ms"}
	for _, tc := range []struct {
		golden  string
		retries string
	}{
		{"fleet_chaos.golden", "2"},
		{"fleet_chaos_noretry.golden", "0"},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []string{"1", "4"} {
			args := append(append([]string{}, base...), "-retries", tc.retries, "-workers", workers)
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("%s workers=%s: exit %d, stderr: %s", tc.golden, workers, code, stderr.String())
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("%s workers=%s: report deviates from golden\n--- got ---\n%s",
					tc.golden, workers, stdout.String())
			}
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-ms", "0"},
		{"-shards", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want usage exit 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
