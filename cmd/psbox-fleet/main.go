// Command psbox-fleet runs a fleet of independently-seeded device
// simulations across a worker pool under the fault-tolerant supervisor
// (internal/fleet): per-shard panic isolation, a hung-shard watchdog,
// retry-with-resume from PSBX checkpoints, and quarantine with explicit
// coverage accounting. The merged report on stdout is deterministic for a
// fixed (seed, shards, ms, quanta, retries, chaos) regardless of -workers,
// completion order, or which retry attempt succeeded — the CI fleet-soak
// job byte-compares it across worker counts and against goldens.
//
// With -chaos, a seeded schedule of shard kills, hangs, and checkpoint
// corruption exercises the whole supervision path reproducibly.
//
// Usage:
//
//	psbox-fleet [-seed N] [-shards N] [-workers N] [-ms D] [-quanta N]
//	            [-ckpt-every N] [-retries N] [-stall D] [-chaos]
//
// Exit status: 0 on a complete or chaos-degraded fleet, 1 when shards
// were quarantined without chaos (an unexpected failure), 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"psbox/internal/fleet"
	"psbox/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "fleet seed; shard i simulates with ShardSeed(seed, i)")
	shards := fs.Int("shards", 8, "number of device simulations")
	workers := fs.Int("workers", 0, "worker goroutines (0 = NumCPU); never affects the report")
	ms := fs.Int64("ms", 200, "per-shard simulated horizon in milliseconds")
	quanta := fs.Int("quanta", 20, "sim steps per shard (heartbeat granularity)")
	ckptEvery := fs.Int("ckpt-every", 5, "checkpoint every this many quanta")
	retries := fs.Int("retries", 2, "retries per shard after the first attempt (0 disables retry)")
	stall := fs.Duration("stall", 30*time.Second, "hung-shard watchdog: wall time without sim progress before cancellation")
	chaos := fs.Bool("chaos", false, "inject the seeded chaos schedule (kills, hangs, checkpoint corruption)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ms <= 0 {
		fmt.Fprintln(stderr, "psbox-fleet: -ms must be positive")
		return 2
	}

	cfg := fleet.Config{
		Shards:          *shards,
		Workers:         *workers,
		Horizon:         sim.Duration(*ms) * sim.Millisecond,
		Seed:            *seed,
		Quanta:          *quanta,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *retries,
		StallTimeout:    *stall,
	}
	if *chaos {
		cfg.Chaos = fleet.NewPlan(*seed, *shards, *quanta, *ckptEvery, *retries+1)
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-fleet:", err)
		return 2
	}
	fmt.Fprint(stdout, res.Format())
	if !*chaos {
		for _, sh := range res.Shards {
			if sh.Quarantined {
				return 1
			}
		}
	}
	return 0
}
