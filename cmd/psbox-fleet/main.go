// Command psbox-fleet runs a fleet of independently-seeded device
// simulations across a worker pool under the fault-tolerant supervisor
// (internal/fleet): per-shard panic isolation, a hung-shard watchdog,
// retry-with-resume from PSBX checkpoints, and quarantine with explicit
// coverage accounting. The merged report on stdout is deterministic for a
// fixed (seed, shards, ms, quanta, retries, chaos) regardless of -workers,
// completion order, or which retry attempt succeeded — the CI fleet-soak
// job byte-compares it across worker counts and against goldens.
//
// With -chaos, a seeded schedule of shard kills, hangs, and checkpoint
// corruption exercises the whole supervision path reproducibly.
//
// The observability flags append further deterministic renderings of the
// same run to stdout, in fixed order after the merged report: -metrics
// (the cross-shard metrics rollup with the per-device energy distribution
// and blame-share outliers), -profile (the fleet energy profile as
// flamegraph-collapsed stacks), -top N (the heaviest N stacks as a
// table), and -expo (Prometheus text exposition). -progress reports
// shards done/quarantined and a wall-clock ETA on stderr; it reads host
// time but never touches sim state, so stdout stays byte-identical with
// or without it.
//
// Usage:
//
//	psbox-fleet [-seed N] [-shards N] [-workers N] [-ms D] [-quanta N]
//	            [-ckpt-every N] [-retries N] [-stall D] [-chaos]
//	            [-metrics] [-profile] [-top N] [-expo] [-progress]
//
// Exit status: 0 on a complete or chaos-degraded fleet, 1 when shards
// were quarantined without chaos (an unexpected failure), 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"psbox/internal/fleet"
	"psbox/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "fleet seed; shard i simulates with ShardSeed(seed, i)")
	shards := fs.Int("shards", 8, "number of device simulations")
	workers := fs.Int("workers", 0, "worker goroutines (0 = NumCPU); never affects the report")
	ms := fs.Int64("ms", 200, "per-shard simulated horizon in milliseconds")
	quanta := fs.Int("quanta", 20, "sim steps per shard (heartbeat granularity)")
	ckptEvery := fs.Int("ckpt-every", 5, "checkpoint every this many quanta")
	retries := fs.Int("retries", 2, "retries per shard after the first attempt (0 disables retry)")
	stall := fs.Duration("stall", 30*time.Second, "hung-shard watchdog: wall time without sim progress before cancellation")
	chaos := fs.Bool("chaos", false, "inject the seeded chaos schedule (kills, hangs, checkpoint corruption)")
	metrics := fs.Bool("metrics", false, "append the fleet metrics rollup (registry, device energy distribution, outliers)")
	prof := fs.Bool("profile", false, "append the fleet energy profile as flamegraph-collapsed stacks")
	topN := fs.Int("top", 0, "append the heaviest N energy stacks as a table (0 disables)")
	expo := fs.Bool("expo", false, "append the rollup in Prometheus text exposition format")
	progress := fs.Bool("progress", false, "report shards done/quarantined and a wall-clock ETA on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ms <= 0 {
		fmt.Fprintln(stderr, "psbox-fleet: -ms must be positive")
		return 2
	}
	if *topN < 0 {
		fmt.Fprintln(stderr, "psbox-fleet: -top must be non-negative")
		return 2
	}

	cfg := fleet.Config{
		Shards:          *shards,
		Workers:         *workers,
		Horizon:         sim.Duration(*ms) * sim.Millisecond,
		Seed:            *seed,
		Quanta:          *quanta,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *retries,
		StallTimeout:    *stall,
	}
	if *chaos {
		cfg.Chaos = fleet.NewPlan(*seed, *shards, *quanta, *ckptEvery, *retries+1)
	}
	if *progress {
		// Wall-clock supervision reporting lives here in the CLI, outside
		// the deterministic core: it writes only to stderr and feeds
		// nothing back into the run.
		start := time.Now()
		cfg.Progress = func(done, quarantined, total int) {
			elapsed := time.Since(start)
			line := fmt.Sprintf("psbox-fleet: %d/%d shards done, %d quarantined, elapsed %v",
				done, total, quarantined, elapsed.Round(time.Millisecond))
			if done < total {
				eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
				line += fmt.Sprintf(", eta %v", eta.Round(time.Millisecond))
			}
			fmt.Fprintln(stderr, line)
		}
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-fleet:", err)
		return 2
	}
	fmt.Fprint(stdout, res.Format())
	if *metrics || *prof || *topN > 0 || *expo {
		ru := res.Rollup()
		render := func(section string, write func() error) error {
			if _, err := fmt.Fprintf(stdout, "== %s ==\n", section); err != nil {
				return err
			}
			return write()
		}
		var werr error
		if *metrics {
			werr = render("fleet metrics", func() error { return ru.WriteMetrics(stdout) })
		}
		if werr == nil && *prof {
			werr = render("fleet energy profile (folded stacks)", func() error { return ru.WriteFolded(stdout) })
		}
		if werr == nil && *topN > 0 {
			werr = render("fleet energy profile (top stacks)", func() error { return ru.WriteTop(stdout, *topN) })
		}
		if werr == nil && *expo {
			werr = render("prometheus exposition", func() error { return ru.WriteProm(stdout) })
		}
		if werr != nil {
			fmt.Fprintln(stderr, "psbox-fleet:", werr)
			return 2
		}
	}
	if !*chaos {
		for _, sh := range res.Shards {
			if sh.Quarantined {
				return 1
			}
		}
	}
	return 0
}
