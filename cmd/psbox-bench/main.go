// Command psbox-bench regenerates the paper's tables and figures, and
// carries the repo's performance baseline.
//
// Usage:
//
//	psbox-bench -list
//	psbox-bench -run all
//	psbox-bench -run fig6,fig8 -seed 7
//	psbox-bench -perf -json        # microbenchmark baseline (BENCH_1.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"psbox/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "comma-separated experiment IDs, 'all' (paper), 'extra' (ablations + §7), or 'everything'")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit machine-readable results (one JSON object per experiment)")
	perf := flag.Bool("perf", false, "run the hot-path microbenchmarks (engine heap, meter sampling) instead of experiments")
	flag.Parse()

	if *perf {
		runPerf(*asJSON, os.Stdout)
		return
	}

	if *list {
		fmt.Println("Paper experiments (DESIGN.md §3):")
		for _, e := range experiments.All() {
			fmt.Printf("  %-13s %s\n", e.ID, e.Title)
		}
		fmt.Println("Ablations and §7 extensions:")
		for _, e := range experiments.Extra() {
			fmt.Printf("  %-13s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch *run {
	case "all":
		selected = experiments.All()
	case "extra":
		selected = experiments.Extra()
	case "everything":
		selected = append(experiments.All(), experiments.Extra()...)
	default:
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	for _, e := range selected {
		start := time.Now()
		result := e.Run(*seed)
		if *asJSON {
			if err := enc.Encode(map[string]any{
				"id":     e.ID,
				"title":  e.Title,
				"seed":   *seed,
				"result": result,
			}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(result)
		fmt.Printf("[%s completed in %v of host time]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
