// The -perf mode: microbenchmarks over the simulator's hottest paths —
// the engine's event heap, the meter's sample retrieval, a whole-repo
// psbox-lint pass, the sandbox manager's session lifecycle, and the
// observability joins (blame attribution and the energy profiler's fold)
// — rendered as events/sec, ns/event, and allocs/event. The committed
// BENCH_1.json (engine/meter), BENCH_2.json (adds the lint pass),
// BENCH_3.json (adds sandbox churn), BENCH_4.json (adds the obs joins),
// and BENCH_5.json (adds the concurrency-contract lint subset) are the
// baselines these numbers regress against; rerun with
//
//	go run ./cmd/psbox-bench -perf -json
//
// on comparable hardware before comparing. The workloads under
// measurement are deterministic (fixed seed, fixed event mix, fixed
// source tree); only the host timings vary.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"psbox"
	"psbox/internal/analysis"
	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/obs/profile"
	"psbox/internal/sandbox"
	"psbox/internal/sim"
)

// perfResult is one benchmark's summary. "Event" means one fired engine
// event for the heap benchmarks, one retrieved DAQ sample for the meter
// benchmark, and one whole-repo lint pass for the lint benchmark.
type perfResult struct {
	Bench          string  `json:"bench"`
	Events         int     `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// TypechecksPerEvent is reported only by lint/whole-repo: package
	// type-checks per lint pass. Zero is the expected (and meaningful)
	// value — the loader's content-hash cache revalidates by hashing alone
	// when sources are unchanged — so the field is a pointer rather than
	// omitempty-on-zero.
	TypechecksPerEvent *float64 `json:"typechecks_per_event,omitempty"`
}

func runPerf(asJSON bool, out io.Writer) {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"engine/heap-churn", benchEngineHeapChurn},
		{"engine/heap-mixed-horizon", benchEngineHeapMixed},
		{"meter/sampling", benchMeterSampling},
		{"lint/whole-repo", benchLintWholeRepo},
		{"lint/concurrency", benchLintConcurrency},
		{"sandbox/churn", benchSandboxChurn},
		{"obs/blame-join", benchObsBlameJoin},
		{"obs/profile-fold", benchObsProfileFold},
	}
	enc := json.NewEncoder(out)
	if asJSON {
		host := map[string]any{
			"schema": "psbox-perf/1",
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		}
		if err := enc.Encode(host); err != nil {
			panic(err)
		}
	}
	for _, b := range benches {
		r := testing.Benchmark(b.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := perfResult{
			Bench:          b.name,
			Events:         r.N,
			EventsPerSec:   1e9 / ns,
			NsPerEvent:     ns,
			AllocsPerEvent: float64(r.AllocsPerOp()),
			BytesPerEvent:  float64(r.AllocedBytesPerOp()),
		}
		if tc, ok := r.Extra["typechecks/op"]; ok {
			res.TypechecksPerEvent = &tc
		}
		if asJSON {
			if err := enc.Encode(res); err != nil {
				panic(err)
			}
			continue
		}
		fmt.Fprintf(out, "%-26s %12.0f events/sec  %8.1f ns/event  %5.1f allocs/event  %7.1f B/event  (n=%d)",
			res.Bench, res.EventsPerSec, res.NsPerEvent, res.AllocsPerEvent, res.BytesPerEvent, res.Events)
		if res.TypechecksPerEvent != nil {
			fmt.Fprintf(out, "  %.2f typechecks/event", *res.TypechecksPerEvent)
		}
		fmt.Fprintln(out)
	}
}

// benchEngineHeapChurn measures the heap's steady-state churn: a fixed
// fan-out of self-rescheduling events with co-prime periods, so pops and
// pushes interleave at every heap depth. One op = one fired event.
func benchEngineHeapChurn(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	const fanout = 512
	for i := 0; i < fanout; i++ {
		d := sim.Duration(i%97+1) * sim.Microsecond
		var ev sim.Event
		ev = func(sim.Time) { eng.After(d, ev) }
		eng.After(d, ev)
	}
	b.ResetTimer()
	eng.Drain(uint64(b.N))
}

// benchEngineHeapMixed adds the other scheduling shapes the kernel uses —
// absolute At, periodic Every, and cancellation — to the churn mix.
func benchEngineHeapMixed(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	const fanout = 256
	for i := 0; i < fanout; i++ {
		d := sim.Duration(i%89+1) * sim.Microsecond
		var ev sim.Event
		ev = func(now sim.Time) {
			h := eng.At(now.Add(2*d), func(sim.Time) {})
			if i%3 == 0 {
				eng.Cancel(h)
			}
			eng.After(d, ev)
		}
		eng.After(d, ev)
	}
	for i := 0; i < 32; i++ {
		eng.Every(sim.Duration(i%13+1)*sim.Microsecond, func(sim.Time) {})
	}
	b.ResetTimer()
	eng.Drain(uint64(b.N))
}

// benchLintWholeRepo measures one full psbox-lint pass over this module:
// load (revalidated against the loader's content-hash cache) plus every
// in-scope analyzer on every package. A warm-up pass outside the timer
// pays the one-time parse + type-check of the tree and its transitive
// standard library, so the timed op is the steady state an editor or
// watch loop sees; typechecks/event staying at zero is the cache's
// correctness showing (any non-zero value means a package re-typechecked
// with unchanged sources). One op = one whole-repo lint run.
func benchLintWholeRepo(b *testing.B) {
	root := benchModuleRoot(b)
	lintPass := func() {
		loader, err := analysis.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		prog := analysis.NewProgram(pkgs)
		for _, pkg := range pkgs {
			var suite []*analysis.Analyzer
			for _, a := range analysis.All() {
				if analysis.InScope(a, pkg.Path) {
					suite = append(suite, a)
				}
			}
			if n := len(analysis.RunAnalyzersProgram(prog, pkg, suite)); n != 0 {
				b.Fatalf("lint found %d finding(s) in %s; the benchmark tree must be clean", n, pkg.Path)
			}
		}
	}
	lintPass()
	b.ReportAllocs()
	before := analysis.TypeCheckCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lintPass()
	}
	b.StopTimer()
	b.ReportMetric(float64(analysis.TypeCheckCount()-before)/float64(b.N), "typechecks/op")
}

// benchModuleRoot walks up from the working directory to the enclosing
// go.mod — the tree the lint benchmarks run over.
func benchModuleRoot(b *testing.B) string {
	cwd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			return root
		}
		parent := filepath.Dir(root)
		if parent == root {
			b.Fatalf("no go.mod found above %s", cwd)
		}
		root = parent
	}
}

// benchLintConcurrency measures the concurrency-contract subset — the
// goroutineconfine spawn/capture model plus locksetatomic's lockset
// inference — the way CI's `-run goroutineconfine,locksetatomic` job runs
// it: the whole module loaded (revalidated against the loader's
// content-hash cache, warmed outside the timer), only the two analyzers
// executed. One op = one subset pass over every package.
func benchLintConcurrency(b *testing.B) {
	root := benchModuleRoot(b)
	suite := []*analysis.Analyzer{analysis.GoroutineConfine, analysis.LockSetAtomic}
	lintPass := func() {
		loader, err := analysis.NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		prog := analysis.NewProgram(pkgs)
		for _, pkg := range pkgs {
			if n := len(analysis.RunAnalyzersProgram(prog, pkg, suite)); n != 0 {
				b.Fatalf("concurrency lint found %d finding(s) in %s; the benchmark tree must be clean", n, pkg.Path)
			}
		}
	}
	lintPass()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lintPass()
	}
}

// benchSandboxChurn measures the session manager's lifecycle machinery:
// one op = one complete session lifecycle — admission (headroom check,
// app + sandbox registration, program spawn), a crash kill, and the
// circuit breaker's quarantine (BreakerN=1, so the first kill is
// terminal). A huge monitor window keeps the budget ladder out of the
// measurement. The manager keeps terminal sessions for its report, so the
// system is rotated every 256 ops to hold the session list — and with it
// the per-op cost — constant; the rotation rides inside the timer and
// amortizes to noise. One op = one lifecycle.
func benchSandboxChurn(b *testing.B) {
	b.ReportAllocs()
	const batch = 256
	var mgr *sandbox.Manager
	newBatch := func() {
		sys := psbox.NewAM57(1)
		mgr = sys.Sandboxes()
		cfg := sandbox.DefaultConfig(1e6)
		cfg.Window = 1 << 40
		cfg.BreakerN = 1
		mgr.SetConfig(cfg)
	}
	newBatch()
	start := func(app *psbox.App) {
		app.Spawn("idle", 0, psbox.Loop(psbox.Sleep{D: psbox.Second}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%batch == 0 && i > 0 {
			newBatch()
		}
		name := fmt.Sprintf("s%d", i%batch)
		s, err := mgr.Launch(sandbox.Spec{Name: name, BudgetW: 1, Start: start})
		if err != nil {
			b.Fatal(err)
		}
		if !mgr.InjectCrash(name) {
			b.Fatal("no live session to crash")
		}
		if s.State() != sandbox.StateQuarantined {
			b.Fatalf("state %v after breaker-1 kill", s.State())
		}
	}
}

// benchTracedRail drives the traced mobile render scenario for 250 ms of
// sim time and extracts the cpu rail's attribution inputs: DAQ samples,
// activity spans, dropout gaps, and owner names — the shared setup for
// the observability-join benchmarks.
func benchTracedRail(b *testing.B) (sys *psbox.System, samples []power.Sample, period sim.Duration, gaps []obs.Gap) {
	sys = psbox.NewMobile(1)
	sys.EnableTracing()
	app := sys.Kernel.NewApp("bench")
	app.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Faults.DropMeterAt(sim.Time(100*sim.Millisecond), "cpu", 2*sim.Millisecond)
	sys.Run(250 * psbox.Millisecond)
	samples = sys.Meter.Samples("cpu", 0, sys.Now())
	if len(samples) == 0 {
		b.Fatal("traced scenario produced no cpu samples")
	}
	for _, w := range sys.Meter.Dropouts("cpu", 0, sys.Now()) {
		gaps = append(gaps, obs.Gap{From: w.From, To: w.To})
	}
	return sys, samples, sys.Meter.Period(), gaps
}

// benchObsBlameJoin measures the attribution joiner: one op = one DAQ
// sample window joined against the full span timeline (occupancy split,
// union coverage, dropout check), rotating over the traced run's
// precomputed samples.
func benchObsBlameJoin(b *testing.B) {
	sys, samples, period, gaps := benchTracedRail(b)
	intervals := obs.IntervalsFromEvents(sys.Trace.Events(), "cpu")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(samples)
		_ = obs.Attribute(samples[j:j+1], period, intervals, gaps)
	}
}

// benchObsProfileFold measures the energy profiler's fold: one op = one
// sample window folded into the weighted app → component → rail tree
// (span selection, per-component occupancy, idle remainder), rotating
// over the same precomputed samples as obs/blame-join so the two rows
// compare like for like.
func benchObsProfileFold(b *testing.B) {
	sys, samples, period, gaps := benchTracedRail(b)
	events := sys.Trace.Events()
	p := profile.New()
	p.Enable()
	ownerName := func(id int) string {
		if id == 0 {
			return "kernel"
		}
		return "bench"
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(samples)
		p.FoldRail("cpu", samples[j:j+1], period, events, gaps, ownerName)
	}
}

// benchMeterSampling measures DAQ sample retrieval over a realistic rail
// history: the mobile platform runs a render loop for 250 ms of sim time,
// then the benchmark slides a one-period window across the battery rail.
// One op = one retrieved sample.
func benchMeterSampling(b *testing.B) {
	sys := psbox.NewMobile(1)
	app := sys.Kernel.NewApp("bench")
	app.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Run(250 * psbox.Millisecond)
	m := sys.Meter
	period := sim.Duration(int64(m.Period()))
	horizon := sys.Now()
	b.ReportAllocs()
	b.ResetTimer()
	var t sim.Time
	for i := 0; i < b.N; i++ {
		to := t.Add(period)
		if to > horizon {
			t, to = 0, sim.Time(int64(period))
		}
		_ = m.Samples("battery", t, to)
		t = to
	}
}
