// Command psbox-sim runs a declarative simulation scenario from JSON.
//
// Usage:
//
//	psbox-sim -example                # print a sample scenario
//	psbox-sim scenario.json           # run a scenario file
//	psbox-sim -json scenario.json     # machine-readable report
//	echo '{...}' | psbox-sim -        # read from stdin
//	psbox-sim -trace t.json s.json    # also write the run's Perfetto trace
//	psbox-sim -metrics m.txt s.json   # also write the run's metrics report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	psbox "psbox"
	"psbox/internal/obs"
	"psbox/internal/scenario"
)

const example = `{
  "platform": "am57",
  "seed": 42,
  "duration_ms": 2000,
  "apps": [
    {"workload": "calib3d", "box": ["cpu"]},
    {"workload": "bodytrack"},
    {"workload": "magic", "count": 2, "saturate": true}
  ]
}`

// writeFile streams fn's output into path.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	showExample := flag.Bool("example", false, "print a sample scenario and exit")
	tracePath := flag.String("trace", "", "write the run's event-stream trace to this file")
	traceFormat := flag.String("trace-format", "perfetto", "trace format: perfetto, csv, or ascii")
	metricsPath := flag.String("metrics", "", "write the run's canonical metrics report to this file")
	flag.Parse()

	if *showExample {
		fmt.Println(example)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psbox-sim [-json] <scenario.json | ->")
		os.Exit(2)
	}
	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	spec, err := scenario.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tracing := *tracePath != "" || *metricsPath != ""
	var setup func(*psbox.System)
	if tracing {
		setup = func(sys *psbox.System) { sys.EnableTracing() }
	}
	report, sys, err := scenario.RunWithSystem(spec, setup)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tracePath != "" {
		enc, err := obs.EncoderFor(*traceFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbox-sim:", err)
			os.Exit(2)
		}
		d := sys.Trace.Dump()
		if err := writeFile(*tracePath, func(w io.Writer) error { return enc.Encode(w, d) }); err != nil {
			fmt.Fprintln(os.Stderr, "psbox-sim:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, sys.Trace.WriteMetrics); err != nil {
			fmt.Fprintln(os.Stderr, "psbox-sim:", err)
			os.Exit(1)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	report.Render(os.Stdout)
}
