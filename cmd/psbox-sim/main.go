// Command psbox-sim runs a declarative simulation scenario from JSON.
//
// Usage:
//
//	psbox-sim -example                # print a sample scenario
//	psbox-sim scenario.json           # run a scenario file
//	psbox-sim -json scenario.json     # machine-readable report
//	echo '{...}' | psbox-sim -        # read from stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"psbox/internal/scenario"
)

const example = `{
  "platform": "am57",
  "seed": 42,
  "duration_ms": 2000,
  "apps": [
    {"workload": "calib3d", "box": ["cpu"]},
    {"workload": "bodytrack"},
    {"workload": "magic", "count": 2, "saturate": true}
  ]
}`

func main() {
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	showExample := flag.Bool("example", false, "print a sample scenario and exit")
	flag.Parse()

	if *showExample {
		fmt.Println(example)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psbox-sim [-json] <scenario.json | ->")
		os.Exit(2)
	}
	in := os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	spec, err := scenario.Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	report.Render(os.Stdout)
}
