//psbox:allow-noconcurrency exit-code tests drive the watchdog path, which is concurrent by design
//psbox:allow-nowallclock the timeout table entry needs a real wall-clock deadline to trip the watchdog

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes tables every documented exit status. The restore-failure
// and divergence rows use the package's test seams to corrupt,
// respectively, the checkpoint bytes read back from disk and a resumed
// run's report — each exercising the full protocol around the injected
// fault.
func TestExitCodes(t *testing.T) {
	mangleCkpt := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[len(out)/2] ^= 0x01
		return out
	}
	mangleRep := func(s string) string { return strings.Replace(s, "battery=", "battery=9", 1) }

	tests := []struct {
		name       string
		args       []string
		ckpt       func([]byte) []byte
		report     func(string) string
		want       int
		wantStdout string // "" skips the check
		wantStderr string
	}{
		{
			name: "ok", args: []string{"-seed", "7", "-ms", "100"},
			want: exitOK, wantStdout: "verdict: ok",
		},
		{
			name: "divergence", args: []string{"-seed", "7", "-ms", "100"},
			report: mangleRep,
			want:   exitDivergence, wantStdout: "resumed report diverges from golden",
		},
		{
			name: "restore failure", args: []string{"-seed", "7", "-ms", "100"},
			ckpt: mangleCkpt,
			want: exitRestore, wantStdout: "FAIL: restore verification",
		},
		{
			// Both classes at once: restore failure must win the exit code.
			name: "restore failure outranks divergence", args: []string{"-seed", "7", "-ms", "100"},
			ckpt: mangleCkpt, report: mangleRep,
			want: exitRestore,
		},
		{
			name: "timeout", args: []string{"-seed", "7", "-ms", "60000", "-timeout", "50ms"},
			want: exitTimeout, wantStderr: "no verdict after 50ms; run presumed hung",
		},
		{
			name: "usage: bad flag", args: []string{"-no-such-flag"},
			want: exitUsage,
		},
		{
			name: "usage: non-positive horizon", args: []string{"-ms", "0"},
			want: exitUsage, wantStderr: "-ms must be positive",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mangleCheckpoint, mangleReport = tc.ckpt, tc.report
			defer func() { mangleCheckpoint, mangleReport = nil, nil }()
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Errorf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// TestVerdictCode pins the precedence fold directly.
func TestVerdictCode(t *testing.T) {
	for _, tc := range []struct {
		restoreFail, diverged bool
		want                  int
	}{
		{false, false, exitOK},
		{false, true, exitDivergence},
		{true, false, exitRestore},
		{true, true, exitRestore},
	} {
		if got := verdictCode(tc.restoreFail, tc.diverged); got != tc.want {
			t.Errorf("verdictCode(%v, %v) = %d, want %d", tc.restoreFail, tc.diverged, got, tc.want)
		}
	}
}
