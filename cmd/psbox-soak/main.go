//psbox:allow-noconcurrency the hung-run watchdog runs the soak in a goroutine and races it against a wall-clock deadline; the simulation itself stays single-threaded

// Command psbox-soak is the crash-and-resume soak harness: it runs the
// canonical fault scenario under periodic checkpointing, kills the run at
// seeded crash points (25/50/75% of the horizon), restores from the last
// checkpoint (rebuild + deterministic replay + byte-verification, the
// replay-twin contract of internal/snapshot), runs each resumed copy to
// the horizon, and byte-compares its final report against the
// uninterrupted golden run's. It also runs two restored replicas in
// lockstep, comparing full system snapshots every quantum and reporting
// the first divergence.
//
// All output is deterministic for a (seed, ms) pair; the CI soak job
// diffs it against the goldens under testdata/.
//
// Usage:
//
//	psbox-soak [-seed N] [-ms D] [-timeout D]
//
// Exit status distinguishes the failure classes so CI and the fleet
// supervisor can react without parsing the transcript:
//
//	0  every resumed report matched the golden and the replicas stayed in
//	   lockstep
//	1  divergence: a resumed report or a lockstep replica deviated from
//	   the golden run
//	2  restore failure: a checkpoint was missing, unreadable, or failed
//	   replay verification (takes precedence over divergence)
//	3  timeout: the soak produced no verdict within -timeout wall time
//	   and is presumed hung
//	4  usage error
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"psbox"
	"psbox/internal/faults"
	"psbox/internal/obs"
	"psbox/internal/sim"
	"psbox/internal/snapshot"
)

// Exit codes. Restore failures outrank divergence: an unverifiable
// checkpoint makes the divergence comparison itself meaningless.
const (
	exitOK         = 0
	exitDivergence = 1
	exitRestore    = 2
	exitTimeout    = 3
	exitUsage      = 4
)

// Test seams, nil in production: mangleCheckpoint corrupts the bytes read
// back from disk (forcing the restore-failure path), mangleReport
// corrupts a resumed run's report (forcing the divergence path).
var (
	mangleCheckpoint func([]byte) []byte
	mangleReport     func(string) string
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-soak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "simulation seed")
	ms := fs.Int64("ms", 2000, "simulated duration in milliseconds")
	timeout := fs.Duration("timeout", 0, "hung-run watchdog: wall time to a verdict before exiting 3 (0 disables)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *ms <= 0 {
		fmt.Fprintln(stderr, "psbox-soak: -ms must be positive")
		return exitUsage
	}

	type verdict struct {
		out  string
		code int
	}
	// The watchdog races the soak against the deadline. The soak goroutine
	// owns a private System and the buffered channel lets it finish and be
	// collected even after the watchdog has given up on it.
	done := make(chan verdict, 1)
	go func() {
		out, code := soak(*seed, *ms)
		done <- verdict{out, code}
	}()
	var deadline <-chan time.Time
	if *timeout > 0 {
		deadline = time.After(*timeout)
	}
	select {
	case v := <-done:
		fmt.Fprint(stdout, v.out)
		return v.code
	case <-deadline:
		fmt.Fprintf(stderr, "psbox-soak: no verdict after %v; run presumed hung\n", *timeout)
		return exitTimeout
	}
}

// build constructs the soak scenario — the psbox-faults scenario plus a
// periodic invariant audit and checkpoint events every horizon/10. The
// checkpoint events are scheduled at construction at fixed absolute
// times in every run (golden, crashed, resumed, lockstep replicas), so
// all runs allocate identical engine event sequences; only the callback
// body differs per run.
func build(seed uint64, horizon sim.Duration, onCkpt func(*psbox.System, psbox.Time)) *psbox.System {
	sys := psbox.NewMobile(seed)
	sys.EnableTracing()
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU).Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 8e5},
		psbox.Send{Socket: sock, Bytes: 24_000},
		psbox.AwaitNet{MaxBacklog: 48_000},
		psbox.Sleep{D: 6 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi).Enter()

	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("grind", 1, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.SubmitAccel{Dev: "dsp", Kind: "fft", Work: 4e4, DynW: 0.5},
		psbox.Sleep{D: 9 * psbox.Millisecond},
	))

	at := func(frac float64) psbox.Time { return psbox.Time(float64(horizon) * frac) }
	sys.Faults.HangAccelAt(at(0.10), "gpu")
	sys.Faults.FlapLinkAt(at(0.25), "wifi", 15*psbox.Millisecond)
	sys.Faults.StallDVFSAt(at(0.40), "cpu", 25*psbox.Millisecond)
	sys.Faults.DropMeterAt(at(0.55), "gpu", 30*psbox.Millisecond)
	sys.Faults.Randomize(faults.Campaign{
		Horizon:       horizon,
		AccelHangs:    2,
		NICFlaps:      2,
		DVFSStalls:    2,
		MeterDropouts: 3,
	})

	sys.SetAuditEvery(horizon / 20)

	every := horizon / 10
	for t := psbox.Time(int64(every)); t <= psbox.Time(int64(horizon)); t = t.Add(every) {
		tt := t
		sys.Eng.At(tt, func(psbox.Time) {
			// The checkpoint instant rides the trace in EVERY run — golden,
			// crashed, resumed, lockstep — before any run-specific callback,
			// so traces stay byte-identical across the crash protocol.
			sys.Trace.Instant(obs.CatCkpt, "checkpoint", 0, int64(tt), "", "")
			if onCkpt != nil {
				onCkpt(sys, tt)
			}
		})
	}
	return sys
}

// report renders the scenario's final state: fault log, recovery
// counters, observations, and the audit count.
func report(sys *psbox.System) string {
	var b strings.Builder
	fmt.Fprintln(&b, "-- fault log --")
	b.WriteString(sys.Faults.FormatLog())
	fmt.Fprintln(&b, "-- recovery --")
	for _, name := range sys.Kernel.AccelNames() {
		d := sys.Kernel.Accel(name)
		fmt.Fprintf(&b, "%-6s watchdog resets=%d resubmits=%d dropped=%d\n",
			name, d.WatchdogResets(), d.Resubmits(), d.DroppedCommands())
	}
	fmt.Fprintf(&b, "net    flaps=%d retries=%d\n",
		sys.Kernel.Net().NIC().Flaps(), sys.Kernel.Net().LinkRetries())
	fmt.Fprintln(&b, "-- observations --")
	for _, bx := range sys.Sandbox.Boxes() {
		direct, est, gaps := bx.ReadDetail()
		fmt.Fprintf(&b, "%-10s read=%.9f J direct=%.9f J estimated=%.9f J gaps=%d degraded=%v\n",
			bx.App().Name, direct+est, direct, est, gaps, bx.Degraded())
	}
	fmt.Fprintf(&b, "battery=%.9f J audits=%d\n",
		sys.Meter.Energy("battery", 0, sys.Now()), sys.Audits())
	fmt.Fprintln(&b, "-- trace --")
	fmt.Fprintf(&b, "events=%d retained=%d dropped=%d\n",
		sys.Trace.Total(), sys.Trace.Len(), sys.Trace.Dropped())
	if dr := sys.Trace.Dropped(); dr > 0 {
		fmt.Fprintf(&b, "WARNING: trace ring dropped %d events (oldest first); raise the bus capacity to keep them\n", dr)
	}
	d := sys.Trace.Dump()
	for _, format := range []string{"perfetto", "csv", "ascii"} {
		enc, err := obs.EncoderFor(format)
		if err != nil {
			panic(err)
		}
		h := sha256.New()
		if err := enc.Encode(h, d); err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-8s sha256=%x\n", format, h.Sum(nil)[:8])
	}
	h := sha256.New()
	if err := sys.Trace.WriteMetrics(h); err != nil {
		panic(err)
	}
	fmt.Fprintf(&b, "%-8s sha256=%x\n", "metrics", h.Sum(nil)[:8])
	return b.String()
}

// verdictCode folds the two failure classes into one exit code; restore
// failures win because they invalidate the comparison divergence is
// judged by.
func verdictCode(restoreFail, diverged bool) int {
	switch {
	case restoreFail:
		return exitRestore
	case diverged:
		return exitDivergence
	default:
		return exitOK
	}
}

// soak runs the full crash-and-resume protocol and renders its
// deterministic transcript plus the exit code for what it found.
func soak(seed uint64, ms int64) (string, int) {
	horizon := sim.Duration(ms) * psbox.Millisecond
	var restoreFail, diverged bool
	var b strings.Builder
	fmt.Fprintf(&b, "psbox-soak seed=%d ms=%d checkpoints=every %d ms\n\n", seed, ms, ms/10)

	golden := build(seed, horizon, nil)
	golden.Run(horizon)
	goldenReport := report(golden)
	fmt.Fprintln(&b, "== golden ==")
	b.WriteString(goldenReport)

	tmp, err := os.MkdirTemp("", "psbox-soak-")
	if err != nil {
		fmt.Fprintf(&b, "FAIL: checkpoint scratch dir: %v\n", err)
		return b.String(), exitRestore
	}
	defer os.RemoveAll(tmp)

	var midCkpt []byte
	var midAt psbox.Time
	for _, frac := range []float64{0.25, 0.50, 0.75} {
		crashAt := sim.Duration(float64(horizon) * frac)
		fmt.Fprintf(&b, "\n== crash at %d%% ==\n", int(frac*100))

		// The crashed run: killed at the crash point; only the last
		// checkpoint survives, round-tripped through a file to exercise
		// the CRC-validated persistence path.
		var lastBytes []byte
		var lastAt psbox.Time
		crashed := build(seed, horizon, func(s *psbox.System, at psbox.Time) {
			lastBytes, lastAt = s.Snapshot(), at
		})
		crashed.Run(crashAt)
		if lastBytes == nil {
			fmt.Fprintln(&b, "FAIL: no checkpoint before the crash point")
			restoreFail = true
			continue
		}
		path := filepath.Join(tmp, fmt.Sprintf("ckpt-%d.psbx", int(frac*100)))
		if err := snapshot.WriteFile(path, lastBytes); err != nil {
			fmt.Fprintln(&b, "FAIL: write checkpoint:", err)
			restoreFail = true
			continue
		}
		restoredBytes, err := snapshot.ReadFile(path)
		if err != nil {
			fmt.Fprintln(&b, "FAIL: read checkpoint:", err)
			restoreFail = true
			continue
		}
		if mangleCheckpoint != nil {
			restoredBytes = mangleCheckpoint(restoredBytes)
		}
		fmt.Fprintf(&b, "checkpoint at %d ms (%d bytes, crc ok)\n",
			int64(lastAt)/int64(psbox.Millisecond), len(restoredBytes))

		// The resumed run: rebuild, replay, byte-verify at the checkpoint
		// instant, run to the horizon.
		var restoreErr error
		restored := false
		resumed := build(seed, horizon, func(s *psbox.System, at psbox.Time) {
			if at == lastAt && !restored {
				restoreErr = s.Restore(restoredBytes)
				restored = true
			}
		})
		resumed.Run(horizon)
		switch {
		case !restored:
			fmt.Fprintln(&b, "FAIL: resume never reached the checkpoint instant")
			restoreFail = true
		case restoreErr != nil:
			fmt.Fprintf(&b, "FAIL: restore verification: %v\n", restoreErr)
			restoreFail = true
		default:
			fmt.Fprintln(&b, "restore verified")
		}
		got := report(resumed)
		if mangleReport != nil {
			got = mangleReport(got)
		}
		if got != goldenReport {
			fmt.Fprintln(&b, "FAIL: resumed report diverges from golden:")
			b.WriteString(diffLines(goldenReport, got))
			diverged = true
		} else {
			fmt.Fprintln(&b, "resumed report identical to golden")
		}
		if frac == 0.50 {
			midCkpt, midAt = restoredBytes, lastAt
		}
	}

	if midCkpt != nil {
		fmt.Fprintln(&b, "\n== lockstep replicas ==")
		steps, err := lockstep(seed, horizon, midCkpt, midAt)
		switch {
		case errors.As(err, new(restoreError)):
			fmt.Fprintf(&b, "FAIL: %v\n", err)
			restoreFail = true
		case err != nil:
			fmt.Fprintf(&b, "FAIL: %v\n", err)
			diverged = true
		default:
			fmt.Fprintf(&b, "two replicas resumed at %d ms, stepped %d quanta to the horizon: no divergence\n",
				int64(midAt)/int64(psbox.Millisecond), steps)
		}
	}

	code := verdictCode(restoreFail, diverged)
	if code == exitOK {
		fmt.Fprintln(&b, "\nverdict: ok")
	} else {
		fmt.Fprintln(&b, "\nverdict: FAIL")
	}
	return b.String(), code
}

// restoreError marks a lockstep failure as a restore-path failure rather
// than replica divergence.
type restoreError struct{ err error }

func (e restoreError) Error() string { return e.err.Error() }
func (e restoreError) Unwrap() error { return e.err }

// lockstep rebuilds two replicas, restores both from the checkpoint, and
// steps them to the horizon in fixed quanta, comparing full system
// snapshots after every step. It reports the first divergence with the
// section-qualified diff — this is the detector the soak run arms against
// nondeterminism that per-report comparison could smear over.
func lockstep(seed uint64, horizon sim.Duration, ckpt []byte, at psbox.Time) (int, error) {
	replicas := [2]*psbox.System{}
	for i := range replicas {
		var restoreErr error
		sys := build(seed, horizon, func(s *psbox.System, t psbox.Time) {
			if t == at && restoreErr == nil {
				restoreErr = s.Restore(ckpt)
			}
		})
		sys.Run(sim.Duration(int64(at)))
		if restoreErr != nil {
			return 0, restoreError{fmt.Errorf("lockstep replica %d restore: %w", i, restoreErr)}
		}
		replicas[i] = sys
	}
	quantum := horizon / 50
	steps := 0
	for replicas[0].Now() < psbox.Time(int64(horizon)) {
		for _, r := range replicas {
			r.Run(quantum)
		}
		steps++
		a, c := replicas[0].Snapshot(), replicas[1].Snapshot()
		if d := snapshot.Diff(a, c); d != "" {
			return steps, fmt.Errorf("replicas diverged at %v (step %d): %s",
				replicas[0].Now(), steps, d)
		}
	}
	return steps, nil
}

// diffLines renders a compact first-divergence view of two reports.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			fmt.Fprintf(&b, "  line %d:\n  - %s\n  + %s\n", i+1, lw, lg)
		}
	}
	return b.String()
}
