// Command psbox-trace dumps Fig. 7-style multiplexing timelines and power
// traces, Fig. 6-style observation curves, CSV for external plotting, and
// — through the observability bus — the canonical event-stream trace in
// Perfetto (Chrome trace-event JSON), CSV, or ASCII form, plus the
// metrics report and the power-attribution (blame) timeline.
//
// Usage:
//
//	psbox-trace                       # ASCII panels (Fig. 7)
//	psbox-trace -fig6                 # Fig. 6-style psbox-vs-baseline curves
//	psbox-trace -csv cpu.csv          # also write the CPU-scenario power trace
//	psbox-trace -format=perfetto      # event-stream trace, load in ui.perfetto.dev
//	psbox-trace -format=csv           # the same events as CSV rows
//	psbox-trace -format=ascii         # the same events as an ASCII gantt
//	psbox-trace -metrics              # canonical metrics report
//	psbox-trace -blame cpu            # per-sample power attribution on a rail
//
// The -format/-metrics/-blame modes drive one deterministic traced
// scenario (calib3d sandboxed on the CPU co-running with bodytrack on an
// AM57, one injected DAQ dropout); the same seed always yields
// byte-identical output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/experiments"
	"psbox/internal/obs"
	"psbox/internal/sim"
	"psbox/internal/trace"
	"psbox/internal/workload"
)

// fig6Curves renders the paper's Fig. 6 visual: the victim's power as seen
// through its psbox against the share the baseline accounting attributes
// to it, co-running with a noisy neighbour.
func fig6Curves(seed uint64) {
	sys := psbox.NewAM57(seed)
	victim := workload.Install(sys.Kernel, workload.Catalog()["calib3d"](2, false))
	workload.Install(sys.Kernel, workload.Catalog()["bodytrack"](2, false))
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Run(1500 * psbox.Millisecond)

	from, to := sim.Time(500*sim.Millisecond), sys.Now()
	step := 10 * sim.Millisecond
	acc := sys.Accountant("cpu", account.PolicyUsageShare)
	fmt.Println("Fig. 6-style curves — calib3d co-running with bodytrack (CPU rail)")
	fmt.Println(trace.Plot([]trace.Series{
		{Name: "psbox virtual meter", Samples: trace.DownsampleSamples(
			box.SamplesBetween(psbox.HWCPU, from, to), from, to, sys.Meter.Period(), step)},
		{Name: "baseline attributed share", Samples: acc.Series(victim.ID, from, to, step)},
		{Name: "whole rail", Samples: trace.DownsampleRail(sys.Meter.Rail("cpu"), from, to, step)},
	}, from, to, 100, 12))
}

// tracedRun drives the canonical observability scenario with the bus
// armed from t=0: calib3d sandboxed on the CPU co-running with bodytrack
// on an AM57, plus one injected DAQ dropout at 2/5 of the horizon so the
// degraded-metering path shows on the timeline.
func tracedRun(seed uint64, horizon psbox.Duration) *psbox.System {
	sys := psbox.NewAM57(seed)
	sys.EnableTracing()
	victim := workload.Install(sys.Kernel, workload.Catalog()["calib3d"](2, false))
	workload.Install(sys.Kernel, workload.Catalog()["bodytrack"](2, false))
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Faults.DropMeterAt(sim.Time(horizon*2/5), "cpu", horizon/100)
	sys.Run(horizon)
	return sys
}

// ringSummary reports the trace ring's accounting on w (stderr in the
// CLI, so the deterministic stdout views stay byte-stable): how many
// events were emitted, how many the ring retained, and the exact count
// the ring dropped once full. A non-zero dropped count means the
// timeline's oldest events were truncated — rerun with a longer ring or
// a shorter horizon if the missing prefix matters.
func ringSummary(w io.Writer, b *obs.Bus) {
	fmt.Fprintf(w, "psbox-trace: %d events emitted, %d retained, %d dropped (ring overflow)\n",
		b.Total(), b.Len(), b.Dropped())
}

// emitTraced renders the requested views of one traced run onto w.
func emitTraced(w io.Writer, sys *psbox.System, format string, metrics bool, blameRail string, blameFrom, blameLen psbox.Duration) error {
	if format != "" {
		enc, err := obs.EncoderFor(format)
		if err != nil {
			return err
		}
		if err := enc.Encode(w, sys.Trace.Dump()); err != nil {
			return err
		}
	}
	if metrics {
		if err := sys.Trace.WriteMetrics(w); err != nil {
			return err
		}
	}
	if blameRail != "" {
		from := sim.Time(blameFrom)
		blames := sys.Blame(blameRail, from, from.Add(blameLen))
		owners := make(map[int]string)
		for _, a := range sys.Kernel.Apps() {
			owners[a.ID] = a.Name
		}
		if err := obs.WriteBlame(w, blameRail, blames, owners); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	fig6 := flag.Bool("fig6", false, "render Fig. 6-style observation curves instead of Fig. 7 panels")
	csvPath := flag.String("csv", "", "write the boxed-CPU scenario's power trace as CSV")
	format := flag.String("format", "", "emit the traced scenario's event stream: perfetto, csv, or ascii")
	metrics := flag.Bool("metrics", false, "emit the traced scenario's canonical metrics report")
	blame := flag.String("blame", "", "emit the power-attribution timeline for this rail (e.g. cpu)")
	ms := flag.Int("ms", 500, "traced scenario horizon in milliseconds (with -format/-metrics/-blame)")
	blameFromMS := flag.Int("blame-from-ms", 100, "attribution window start, in milliseconds")
	blameMS := flag.Int("blame-ms", 2, "attribution window length, in milliseconds")
	outPath := flag.String("o", "", "write -format/-metrics/-blame output to this file instead of stdout")
	flag.Parse()

	if *format != "" || *metrics || *blame != "" {
		if *ms <= 0 {
			fmt.Fprintln(os.Stderr, "psbox-trace: -ms must be positive")
			os.Exit(2)
		}
		sys := tracedRun(*seed, psbox.Duration(*ms)*psbox.Millisecond)
		w := io.Writer(os.Stdout)
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		err := emitTraced(w, sys, *format, *metrics, *blame,
			psbox.Duration(*blameFromMS)*psbox.Millisecond, psbox.Duration(*blameMS)*psbox.Millisecond)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psbox-trace:", err)
			os.Exit(1)
		}
		ringSummary(os.Stderr, sys.Trace)
		return
	}

	if *fig6 {
		fig6Curves(*seed)
		return
	}
	fmt.Println(experiments.Fig7(*seed))

	if *csvPath == "" {
		return
	}
	sys := psbox.NewAM57(*seed)
	victim := workload.Install(sys.Kernel, workload.Catalog()["calib3d"](2, false))
	workload.Install(sys.Kernel, workload.Catalog()["bodytrack"](2, false))
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Run(2 * psbox.Second)
	f, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	step := 1 * psbox.Millisecond
	err = trace.WriteCSV(f, []trace.Series{
		{Name: "cpu_rail", Samples: trace.DownsampleRail(sys.Meter.Rail("cpu"), 0, sys.Now(), step)},
		{Name: "victim_psbox", Samples: trace.DownsampleSamples(
			box.SamplesBetween(psbox.HWCPU, 0, sys.Now()), 0, sys.Now(), sys.Meter.Period(), step)},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *csvPath)
}
