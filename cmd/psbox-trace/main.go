// Command psbox-trace dumps Fig. 7-style multiplexing timelines and power
// traces, Fig. 6-style observation curves, and optional CSV for external
// plotting.
//
// Usage:
//
//	psbox-trace                 # ASCII panels (Fig. 7)
//	psbox-trace -fig6           # Fig. 6-style psbox-vs-baseline curves
//	psbox-trace -csv cpu.csv    # also write the CPU-scenario power trace
package main

import (
	"flag"
	"fmt"
	"os"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/experiments"
	"psbox/internal/sim"
	"psbox/internal/trace"
	"psbox/internal/workload"
)

// fig6Curves renders the paper's Fig. 6 visual: the victim's power as seen
// through its psbox against the share the baseline accounting attributes
// to it, co-running with a noisy neighbour.
func fig6Curves(seed uint64) {
	sys := psbox.NewAM57(seed)
	victim := workload.Install(sys.Kernel, workload.Catalog()["calib3d"](2, false))
	workload.Install(sys.Kernel, workload.Catalog()["bodytrack"](2, false))
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Run(1500 * psbox.Millisecond)

	from, to := sim.Time(500*sim.Millisecond), sys.Now()
	step := 10 * sim.Millisecond
	acc := sys.Accountant("cpu", account.PolicyUsageShare)
	fmt.Println("Fig. 6-style curves — calib3d co-running with bodytrack (CPU rail)")
	fmt.Println(trace.Plot([]trace.Series{
		{Name: "psbox virtual meter", Samples: trace.DownsampleSamples(
			box.SamplesBetween(psbox.HWCPU, from, to), from, to, sys.Meter.Period(), step)},
		{Name: "baseline attributed share", Samples: acc.Series(victim.ID, from, to, step)},
		{Name: "whole rail", Samples: trace.DownsampleRail(sys.Meter.Rail("cpu"), from, to, step)},
	}, from, to, 100, 12))
}

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	fig6 := flag.Bool("fig6", false, "render Fig. 6-style observation curves instead of Fig. 7 panels")
	csvPath := flag.String("csv", "", "write the boxed-CPU scenario's power trace as CSV")
	flag.Parse()

	if *fig6 {
		fig6Curves(*seed)
		return
	}
	fmt.Println(experiments.Fig7(*seed))

	if *csvPath == "" {
		return
	}
	sys := psbox.NewAM57(*seed)
	victim := workload.Install(sys.Kernel, workload.Catalog()["calib3d"](2, false))
	workload.Install(sys.Kernel, workload.Catalog()["bodytrack"](2, false))
	box := sys.Sandbox.MustCreate(victim, psbox.HWCPU)
	box.Enter()
	sys.Run(2 * psbox.Second)
	f, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	step := 1 * psbox.Millisecond
	err = trace.WriteCSV(f, []trace.Series{
		{Name: "cpu_rail", Samples: trace.DownsampleRail(sys.Meter.Rail("cpu"), 0, sys.Now(), step)},
		{Name: "victim_psbox", Samples: trace.DownsampleSamples(
			box.SamplesBetween(psbox.HWCPU, 0, sys.Now()), 0, sys.Now(), sys.Meter.Period(), step)},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *csvPath)
}
