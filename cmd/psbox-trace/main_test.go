package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	psbox "psbox"
)

// goldenPath resolves a file under the module-root testdata directory.
func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", name)
}

// render runs the canonical seed-7 traced scenario and emits one view.
func render(t *testing.T, format string, metrics bool) []byte {
	t.Helper()
	sys := tracedRun(7, 500*psbox.Millisecond)
	var buf bytes.Buffer
	if err := emitTraced(&buf, sys, format, metrics, "", 0, 0); err != nil {
		t.Fatalf("emitTraced: %v", err)
	}
	return buf.Bytes()
}

// TestTracedGoldens pins the seed-7 Perfetto trace and metrics report to
// the committed goldens. CI runs this under -race, so a pass also proves
// byte-identical output on the instrumented build. Regenerate with
// UPDATE_GOLDEN=1 after an intentional change.
func TestTracedGoldens(t *testing.T) {
	cases := []struct {
		golden  string
		format  string
		metrics bool
	}{
		{"psbox-trace-seed7.perfetto.golden", "perfetto", false},
		{"psbox-trace-seed7.metrics.golden", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			got := render(t, tc.format, tc.metrics)
			path := goldenPath(t, tc.golden)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output drifted from %s (%d bytes got, %d want); "+
					"rerun with UPDATE_GOLDEN=1 if the change is intentional",
					path, len(got), len(want))
			}
		})
	}
}

// TestTracedRunIsRepeatable re-renders the same seed back-to-back and
// demands byte equality, the in-process form of the CLI's determinism
// promise.
func TestTracedRunIsRepeatable(t *testing.T) {
	for _, format := range []string{"perfetto", "csv", "ascii"} {
		a := render(t, format, true)
		b := render(t, format, true)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s output differs across identical runs", format)
		}
	}
}
