package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	psbox "psbox"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// goldenPath resolves a file under the module-root testdata directory.
func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", name)
}

// render runs the canonical seed-7 traced scenario and emits one view.
func render(t *testing.T, format string, metrics bool) []byte {
	t.Helper()
	sys := tracedRun(7, 500*psbox.Millisecond)
	var buf bytes.Buffer
	if err := emitTraced(&buf, sys, format, metrics, "", 0, 0); err != nil {
		t.Fatalf("emitTraced: %v", err)
	}
	return buf.Bytes()
}

// TestTracedGoldens pins the seed-7 Perfetto trace and metrics report to
// the committed goldens. CI runs this under -race, so a pass also proves
// byte-identical output on the instrumented build. Regenerate with
// UPDATE_GOLDEN=1 after an intentional change.
func TestTracedGoldens(t *testing.T) {
	cases := []struct {
		golden  string
		format  string
		metrics bool
	}{
		{"psbox-trace-seed7.perfetto.golden", "perfetto", false},
		{"psbox-trace-seed7.metrics.golden", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			got := render(t, tc.format, tc.metrics)
			path := goldenPath(t, tc.golden)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output drifted from %s (%d bytes got, %d want); "+
					"rerun with UPDATE_GOLDEN=1 if the change is intentional",
					path, len(got), len(want))
			}
		})
	}
}

// TestRingSummaryExactCounts: the stderr summary must surface the ring's
// exact accounting, including a non-zero dropped count once the ring
// overflows — truncation is visible, never silent.
func TestRingSummaryExactCounts(t *testing.T) {
	sys := tracedRun(7, 500*psbox.Millisecond)
	var buf bytes.Buffer
	ringSummary(&buf, sys.Trace)
	want := fmt.Sprintf("psbox-trace: %d events emitted, %d retained, %d dropped (ring overflow)\n",
		sys.Trace.Total(), sys.Trace.Len(), sys.Trace.Dropped())
	if buf.String() != want {
		t.Fatalf("summary = %q, want %q", buf.String(), want)
	}
	if sys.Trace.Total() == 0 {
		t.Fatal("traced run emitted no events")
	}

	// A deliberately tiny ring drops: emitted − retained must be reported
	// exactly.
	b := obs.NewBus(sim.NewEngine(), 4)
	b.Enable()
	for i := 0; i < 10; i++ {
		b.Instant(obs.CatSim, "tick", 0, int64(i), "", "")
	}
	buf.Reset()
	ringSummary(&buf, b)
	if got, want := buf.String(), "psbox-trace: 10 events emitted, 4 retained, 6 dropped (ring overflow)\n"; got != want {
		t.Fatalf("overflow summary = %q, want %q", got, want)
	}
}

// TestTracedRunIsRepeatable re-renders the same seed back-to-back and
// demands byte equality, the in-process form of the CLI's determinism
// promise.
func TestTracedRunIsRepeatable(t *testing.T) {
	for _, format := range []string{"perfetto", "csv", "ascii"} {
		a := render(t, format, true)
		b := render(t, format, true)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s output differs across identical runs", format)
		}
	}
}
