// Command psbox-sidechan runs the §2.5 GPU power side-channel attack end
// to end, under both observation regimes, and prints the confusion
// matrices.
package main

import (
	"flag"
	"fmt"

	"psbox/internal/sidechannel"
)

func main() {
	sites := flag.Int("sites", 10, "number of synthetic websites")
	trials := flag.Int("trials", 3, "co-running trials per site")
	seed := flag.Uint64("seed", 1234, "simulation seed")
	confusion := flag.Bool("confusion", false, "print confusion matrices")
	flag.Parse()

	for _, obs := range []sidechannel.Observation{
		sidechannel.ObserveUnrestricted,
		sidechannel.ObservePSBox,
	} {
		cfg := sidechannel.DefaultConfig(obs)
		cfg.Sites = *sites
		cfg.Trials = *trials
		cfg.Seed = *seed
		res := sidechannel.Run(cfg)
		fmt.Printf("%-13s success %3d/%3d = %5.1f%% (random %.1f%%, advantage %.1f×, leakage %.2f of %.2f bits)\n",
			obs.String()+":", res.Correct, res.Total, res.SuccessRate*100,
			res.RandomGuess*100, res.SuccessRate/res.RandomGuess,
			res.LeakageBits(), res.MaxLeakageBits())
		if *confusion {
			fmt.Println("  confusion (rows: actual site, cols: guess):")
			for i, row := range res.Confusion {
				fmt.Printf("  site%02d:", i)
				for _, v := range row {
					fmt.Printf(" %2d", v)
				}
				fmt.Println()
			}
		}
	}
}
