package main

import (
	"bytes"
	"strings"
	"testing"

	"psbox"
	"psbox/internal/sandbox"
)

// TestReportDeterminism: the flood report is byte-identical across runs
// at the same seed (the -race CI job re-checks this under the detector).
func TestReportDeterminism(t *testing.T) {
	for _, seed := range []string{"7", "42"} {
		var a, b bytes.Buffer
		if code := run([]string{"-seed", seed, "-ms", "600"}, &a, &strings.Builder{}); code != 0 {
			t.Fatalf("seed %s: exit %d", seed, code)
		}
		if code := run([]string{"-seed", seed, "-ms", "600"}, &b, &strings.Builder{}); code != 0 {
			t.Fatalf("seed %s: exit %d", seed, code)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("seed %s: two runs differ:\n--- a ---\n%s\n--- b ---\n%s",
				seed, a.String(), b.String())
		}
	}
}

// TestEnforcementVerdicts drives the flood and checks the acceptance
// behaviors session by session: every admitted hog was throttled and then
// killed, every admitted crash-looper ended quarantined with its
// preserve_data counters carried, and every admitted leaker was killed on
// the backlog bound.
func TestEnforcementVerdicts(t *testing.T) {
	horizon := 1000 * psbox.Millisecond
	f := build(42, horizon, nil)
	f.sys.Run(horizon)

	kinds := map[string]int{}
	for _, s := range f.mgr.Sessions() {
		kind := s.Name()[:strings.IndexByte(s.Name(), '-')]
		kinds[kind]++
		switch kind {
		case "hog":
			if s.Throttles() == 0 {
				t.Errorf("%s: never throttled", s.Name())
			}
			if s.Kills() == 0 {
				t.Errorf("%s: never killed", s.Name())
			}
		case "crashloop":
			if s.State() != sandbox.StateQuarantined {
				t.Errorf("%s: state %v, want quarantined", s.Name(), s.State())
			}
			if s.Preserved()["iters"] <= 0 {
				t.Errorf("%s: no preserved iters across restarts", s.Name())
			}
		case "leaker":
			if s.Kills() == 0 {
				t.Errorf("%s: never killed on the backlog bound", s.Name())
			}
		}
	}
	for _, kind := range []string{"steady", "pulse", "hog", "crashloop", "leaker"} {
		if kinds[kind] == 0 {
			t.Errorf("no %s session admitted; enforcement checks vacuous", kind)
		}
	}
	st := f.mgr.Stats()
	if st.Rejected == 0 {
		t.Error("admission control never rejected an arrival")
	}
	if st.ReclaimedJ <= 0 {
		t.Errorf("no energy reclaimed from throttling: %+v", st)
	}
	if st.Retired == 0 {
		t.Error("no finite session retired")
	}
}

// TestSoakRestoreEquivalence is the restore-equivalence gate: kill the
// flood mid-churn at three points, restore from the last checkpoint, and
// demand every resumed report byte-match the golden. Run under -race in
// CI.
func TestSoakRestoreEquivalence(t *testing.T) {
	ms := int64(800)
	if testing.Short() {
		ms = 400
	}
	out, code := soak(42, ms)
	if code != exitOK {
		t.Fatalf("soak exit %d:\n%s", code, out)
	}
	if n := strings.Count(out, "resumed report identical to golden"); n != 3 {
		t.Errorf("%d/3 resumed reports matched:\n%s", n, out)
	}
	if n := strings.Count(out, "restore verified"); n != 3 {
		t.Errorf("%d/3 restores verified:\n%s", n, out)
	}
}

// TestChurnFreesHeadroom: quarantines and retirements release budget, so
// a flood that starts overcommitted admits late arrivals.
func TestChurnFreesHeadroom(t *testing.T) {
	horizon := 1000 * psbox.Millisecond
	f := build(42, horizon, nil)
	f.sys.Run(horizon)
	var late bool
	for _, a := range f.plan {
		if a.at == 0 {
			continue
		}
		for _, s := range f.mgr.Sessions() {
			if s.Name() == a.name {
				late = true
			}
		}
	}
	if !late {
		t.Error("no late arrival was ever admitted: churn freed no headroom")
	}
	if got := f.mgr.Headroom(); got <= 0 || got > capacityW {
		t.Errorf("headroom %v out of range (0, %v]", got, capacityW)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-ms", "0"},
	} {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, exitUsage)
		}
	}
}
