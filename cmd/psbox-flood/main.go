// Command psbox-flood is the sandbox-manager load generator: from one
// seed it derives a schedule of session arrivals — finite steadies that
// retire, bursty pulses, budget hogs, crash-loopers, and accelerator
// leakers — launches them against a fixed power capacity, and lets the
// manager's enforcement ladder (admit → run → throttle → kill → restart →
// retire/quarantine) churn through them to the horizon. The end-of-run
// report (admission plan, per-session verdicts, enforcement tallies,
// energy reclaimed) is byte-stable for a (seed, ms) pair.
//
// With -soak it additionally runs the crash-and-resume protocol of
// cmd/psbox-soak: kill the run at 25/50/75% of the horizon, restore from
// the last periodic checkpoint (rebuild + deterministic replay +
// byte-verification), run each resumed copy to the horizon, and
// byte-compare its report against the uninterrupted golden's. The CI
// flood-soak job diffs the -soak transcript against the goldens under
// testdata/.
//
// Usage:
//
//	psbox-flood [-seed N] [-ms D] [-soak]
//
// Exit status (matching psbox-soak so the fleet supervisor can reuse its
// triage):
//
//	0  report produced; with -soak, every resumed report matched
//	1  divergence: a resumed report deviated from the golden run
//	2  restore failure: a checkpoint was missing or failed verification
//	4  usage error
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"psbox"
	"psbox/internal/obs"
	"psbox/internal/sandbox"
	"psbox/internal/sim"
	"psbox/internal/snapshot"
)

const (
	exitOK         = 0
	exitDivergence = 1
	exitRestore    = 2
	exitUsage      = 4
)

// capacityW is the flood's admittable power: low enough that the derived
// arrival schedule overcommits it and admission control has rejections to
// make.
const capacityW = 6.0

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-flood", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 42, "simulation seed")
	ms := fs.Int64("ms", 2000, "simulated duration in milliseconds")
	soakMode := fs.Bool("soak", false, "run the crash-and-resume protocol and report restore equivalence")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *ms <= 0 {
		fmt.Fprintln(stderr, "psbox-flood: -ms must be positive")
		return exitUsage
	}
	if *soakMode {
		out, code := soak(*seed, *ms)
		fmt.Fprint(stdout, out)
		return code
	}
	horizon := sim.Duration(*ms) * psbox.Millisecond
	f := build(*seed, horizon, nil)
	f.sys.Run(horizon)
	fmt.Fprintf(stdout, "psbox-flood seed=%d ms=%d capacity=%.1f W\n\n", *seed, *ms, capacityW)
	fmt.Fprint(stdout, report(f))
	return exitOK
}

// prng is a splitmix64 stream: the flood's only randomness, wholly
// derived from the seed so the arrival plan is a pure function of it.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// arrival is one planned session launch.
type arrival struct {
	at     psbox.Time
	kind   string
	name   string
	budget float64
}

// flood is one constructed scenario: the system, its session manager, and
// the arrival plan the seed derived.
type flood struct {
	sys  *psbox.System
	mgr  *sandbox.Manager
	plan []arrival
}

// specFor builds the Spec for an arrival. Kinds:
//
//	steady    finite well-behaved worker; retires on its own
//	pulse     infinite bursty worker; stays under budget
//	hog       spins flat out under a tiny budget; climbs the whole ladder
//	crashloop preserve_data worker crashed repeatedly by the fault layer
//	          until the circuit breaker quarantines it
//	leaker    floods the GPU queue without awaiting; killed on the
//	          backlog bound, then breaker-quarantined for recidivism
func specFor(a arrival, reps int) sandbox.Spec {
	spec := sandbox.Spec{Name: a.name, BudgetW: a.budget}
	switch a.kind {
	case "steady":
		var seq []psbox.Action
		for i := 0; i < reps; i++ {
			seq = append(seq, psbox.Compute{Cycles: 3e5}, psbox.Sleep{D: 6 * psbox.Millisecond})
		}
		spec.Start = func(app *psbox.App) {
			app.Spawn("work", 0, psbox.Sequence(seq...))
		}
	case "pulse":
		spec.Start = func(app *psbox.App) {
			app.Spawn("burst", 0, psbox.Loop(
				psbox.Compute{Cycles: 2e6},
				psbox.Sleep{D: 30 * psbox.Millisecond},
			))
		}
	case "hog":
		spec.Start = func(app *psbox.App) {
			app.Spawn("spin", 0, psbox.Loop(psbox.Compute{Cycles: 5e5}))
		}
	case "crashloop":
		spec.PreserveData = true
		spec.Start = func(app *psbox.App) {
			app.Spawn("work", 0, psbox.ProgramFunc(func(env *psbox.Env) psbox.Action {
				env.Count("iters", 1)
				return psbox.Sleep{D: 5 * psbox.Millisecond}
			}))
		}
	case "leaker":
		spec.MaxBacklog = 8
		spec.Start = func(app *psbox.App) {
			app.Spawn("leak", 0, psbox.Loop(
				psbox.SubmitAccel{Dev: "gpu", Kind: "leak", Work: 5e5, DynW: 0.5},
				psbox.Sleep{D: psbox.Millisecond},
			))
		}
	default:
		panic("psbox-flood: unknown kind " + a.kind)
	}
	return spec
}

// build constructs the flood scenario: the session manager over an AM57
// system, the seed-derived arrival plan (launches scheduled at fixed
// absolute times), fault-layer crash campaigns against the crash-loopers,
// and checkpoint events every horizon/10. As in psbox-soak, the
// checkpoint instants ride the trace in every run — golden, crashed,
// resumed — so traces stay byte-identical across the crash protocol.
func build(seed uint64, horizon sim.Duration, onCkpt func(*psbox.System, psbox.Time)) *flood {
	sys := psbox.NewAM57(seed)
	sys.EnableTracing()
	mgr := sys.Sandboxes()
	cfg := sandbox.DefaultConfig(capacityW)
	mgr.SetConfig(cfg)

	// The arrival plan. One resident of every kind anchors the load at
	// t=0 — enforcement demonstrably fires on each misbehavior class
	// regardless of how the random arrivals land. The rest arrive spread
	// over the first half of the horizon, so each has the tail end to be
	// enforced against; their budgets overcommit the capacity and
	// admission control arbitrates as residents retire or get
	// quarantined.
	rnd := &prng{s: seed}
	kinds := []struct {
		kind   string
		budget float64
	}{
		{"steady", 1.0}, {"steady", 1.0}, {"pulse", 0.8},
		{"hog", 0.3}, {"crashloop", 0.8}, {"leaker", 0.8},
	}
	n := int(8 + int64(horizon)/int64(200*psbox.Millisecond))
	plan := []arrival{
		{at: 0, kind: "steady", name: "steady-0", budget: 1.0},
		{at: 0, kind: "pulse", name: "pulse-0", budget: 0.8},
		{at: 0, kind: "hog", name: "hog-0", budget: 0.3},
		{at: 0, kind: "crashloop", name: "crashloop-0", budget: 0.8},
		{at: 0, kind: "leaker", name: "leaker-0", budget: 0.8},
	}
	span := int64(float64(horizon) * 0.5)
	for i := 0; i < n; i++ {
		k := kinds[rnd.intn(len(kinds))]
		at := psbox.Time(int64(i+1)*span/int64(n+1) + int64(rnd.intn(7))*int64(psbox.Millisecond))
		plan = append(plan, arrival{at: at, kind: k.kind,
			name: fmt.Sprintf("%s-%d", k.kind, i+1), budget: k.budget})
	}

	for _, a := range plan {
		a := a
		reps := 25 + rnd.intn(30) // finite steadies live ~150-330 ms
		spec := specFor(a, reps)
		launch := func(psbox.Time) { _, _ = mgr.Launch(spec) }
		if a.at == 0 {
			launch(0)
		} else {
			sys.Eng.At(a.at, launch)
		}
		if a.kind == "crashloop" {
			// Four crashes starting shortly after arrival, 70 ms apart:
			// the first three land inside the 500 ms breaker window and
			// quarantine the session; the fourth finds it dead.
			for j := 0; j < 4; j++ {
				sys.Faults.CrashSessionAt(a.at.Add(sim.Duration(50+70*j)*psbox.Millisecond), a.name)
			}
		}
	}

	sys.SetAuditEvery(horizon / 20)

	every := horizon / 10
	for t := psbox.Time(int64(every)); t <= psbox.Time(int64(horizon)); t = t.Add(every) {
		tt := t
		sys.Eng.At(tt, func(psbox.Time) {
			sys.Trace.Instant(obs.CatCkpt, "checkpoint", 0, int64(tt), "", "")
			if onCkpt != nil {
				onCkpt(sys, tt)
			}
		})
	}
	return &flood{sys: sys, mgr: mgr, plan: plan}
}

// report renders the end-of-run state: the arrival plan, each session's
// verdict and tallies, the manager's aggregate enforcement counts, the
// fault log, and trace digests.
func report(f *flood) string {
	var b strings.Builder
	fmt.Fprintln(&b, "-- plan --")
	for _, a := range f.plan {
		fmt.Fprintf(&b, "t=%4d ms  %-12s budget=%.1f W\n",
			int64(a.at)/int64(psbox.Millisecond), a.name, a.budget)
	}
	fmt.Fprintln(&b, "-- sessions --")
	for _, s := range f.mgr.Sessions() {
		fmt.Fprintf(&b, "%-12s %-11s throttles=%d kills=%d restarts=%d",
			s.Name(), s.State(), s.Throttles(), s.Kills(), s.Restarts())
		if iters, ok := s.Preserved()["iters"]; ok {
			fmt.Fprintf(&b, " preserved-iters=%.0f", iters)
		}
		fmt.Fprintln(&b)
	}
	st := f.mgr.Stats()
	fmt.Fprintln(&b, "-- enforcement --")
	fmt.Fprintf(&b, "admitted=%d rejected=%d throttled=%d killed=%d restarted=%d quarantined=%d retired=%d\n",
		st.Admitted, st.Rejected, st.Throttles, st.Kills, st.Restarts, st.Quarantined, st.Retired)
	fmt.Fprintf(&b, "energy reclaimed=%.9f J headroom=%.2f W\n", st.ReclaimedJ, f.mgr.Headroom())
	fmt.Fprintln(&b, "-- fault log --")
	b.WriteString(f.sys.Faults.FormatLog())
	fmt.Fprintln(&b, "-- energy --")
	fmt.Fprintf(&b, "battery=%.9f J audits=%d\n",
		f.sys.Meter.Energy("battery", 0, f.sys.Now()), f.sys.Audits())
	fmt.Fprintln(&b, "-- trace --")
	fmt.Fprintf(&b, "events=%d retained=%d dropped=%d\n",
		f.sys.Trace.Total(), f.sys.Trace.Len(), f.sys.Trace.Dropped())
	d := f.sys.Trace.Dump()
	for _, format := range []string{"perfetto", "csv"} {
		enc, err := obs.EncoderFor(format)
		if err != nil {
			panic(err)
		}
		h := sha256.New()
		if err := enc.Encode(h, d); err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-8s sha256=%x\n", format, h.Sum(nil)[:8])
	}
	return b.String()
}

// soak runs the flood under the crash-and-resume protocol and renders a
// deterministic transcript: the golden report, then for each crash point
// the checkpoint round-trip, the restore verdict, and the byte-comparison
// of the resumed report against the golden.
func soak(seed uint64, ms int64) (string, int) {
	horizon := sim.Duration(ms) * psbox.Millisecond
	var restoreFail, diverged bool
	var b strings.Builder
	fmt.Fprintf(&b, "psbox-flood seed=%d ms=%d capacity=%.1f W soak: checkpoints=every %d ms\n\n",
		seed, ms, capacityW, ms/10)

	golden := build(seed, horizon, nil)
	golden.sys.Run(horizon)
	goldenReport := report(golden)
	fmt.Fprintln(&b, "== golden ==")
	b.WriteString(goldenReport)

	tmp, err := os.MkdirTemp("", "psbox-flood-")
	if err != nil {
		fmt.Fprintf(&b, "FAIL: checkpoint scratch dir: %v\n", err)
		return b.String(), exitRestore
	}
	defer os.RemoveAll(tmp)

	for _, frac := range []float64{0.25, 0.50, 0.75} {
		crashAt := sim.Duration(float64(horizon) * frac)
		fmt.Fprintf(&b, "\n== crash at %d%% ==\n", int(frac*100))

		// The crashed run: killed mid-churn; only the last checkpoint
		// survives, round-tripped through a file to exercise the
		// CRC-validated persistence path.
		var lastBytes []byte
		var lastAt psbox.Time
		crashed := build(seed, horizon, func(s *psbox.System, at psbox.Time) {
			lastBytes, lastAt = s.Snapshot(), at
		})
		crashed.sys.Run(crashAt)
		if lastBytes == nil {
			fmt.Fprintln(&b, "FAIL: no checkpoint before the crash point")
			restoreFail = true
			continue
		}
		path := filepath.Join(tmp, fmt.Sprintf("ckpt-%d.psbx", int(frac*100)))
		if err := snapshot.WriteFile(path, lastBytes); err != nil {
			fmt.Fprintln(&b, "FAIL: write checkpoint:", err)
			restoreFail = true
			continue
		}
		restoredBytes, err := snapshot.ReadFile(path)
		if err != nil {
			fmt.Fprintln(&b, "FAIL: read checkpoint:", err)
			restoreFail = true
			continue
		}
		fmt.Fprintf(&b, "checkpoint at %d ms (%d bytes, crc ok)\n",
			int64(lastAt)/int64(psbox.Millisecond), len(restoredBytes))

		// The resumed run: rebuild, replay, byte-verify at the
		// checkpoint instant, run to the horizon.
		var restoreErr error
		restored := false
		resumed := build(seed, horizon, func(s *psbox.System, at psbox.Time) {
			if at == lastAt && !restored {
				restoreErr = s.Restore(restoredBytes)
				restored = true
			}
		})
		resumed.sys.Run(horizon)
		switch {
		case !restored:
			fmt.Fprintln(&b, "FAIL: resume never reached the checkpoint instant")
			restoreFail = true
		case restoreErr != nil:
			fmt.Fprintf(&b, "FAIL: restore verification: %v\n", restoreErr)
			restoreFail = true
		default:
			fmt.Fprintln(&b, "restore verified")
		}
		if got := report(resumed); got != goldenReport {
			fmt.Fprintln(&b, "FAIL: resumed report diverges from golden:")
			b.WriteString(diffLines(goldenReport, got))
			diverged = true
		} else {
			fmt.Fprintln(&b, "resumed report identical to golden")
		}
	}

	code := exitOK
	verdict := "ok"
	switch {
	case restoreFail:
		code, verdict = exitRestore, "FAIL"
	case diverged:
		code, verdict = exitDivergence, "FAIL"
	}
	fmt.Fprintf(&b, "\nverdict: %s\n", verdict)
	return b.String(), code
}

// diffLines renders a compact first-divergence view of two reports.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			fmt.Fprintf(&b, "  line %d:\n  - %s\n  + %s\n", i+1, lw, lg)
		}
	}
	return b.String()
}
