// Command psbox-lint runs psbox's determinism and energy-accounting
// analyzers and exits non-zero on any finding. It is the static half of
// the determinism contract: the CI determinism job catches divergence
// after the fact; psbox-lint rejects the constructs that cause it before
// they merge.
//
// Usage:
//
//	go run ./cmd/psbox-lint [-json] [packages]
//
// Package patterns (./..., ./internal/..., ./cmd/psbox-lint) select which
// packages' findings are reported. The whole module containing the working
// directory is always loaded and analyzed regardless — the interprocedural
// analyzers need the full call graph — so narrowing the patterns narrows
// the report, not the analysis. With no patterns, ./... is assumed. The
// analyzers' package scopes (below) are fixed by DESIGN.md, not by the
// command line.
//
// With -json, each finding is printed to stdout as one JSON object per
// line with the fields file, line, col, analyzer, and message.
//
// Scopes:
//
//	nowallclock    — psbox/internal/... (cmd tools may report host time)
//	nomathrand     — every package (internal/sim/rand.go itself exempt)
//	noconcurrency  — every package (escape: //psbox:allow-noconcurrency)
//	maporder       — every package
//	energyaccum    — every package (internal/meter, core/vmeter.go exempt)
//	snapshotstate  — every package (escape: //psbox:allow-snapshotstate)
//	obsdeterminism — instrumented internal subtrees (sim, kernel, hw,
//	                 meter, faults, core); report via the obs bus instead
//	walltaint      — psbox/internal/... (whole-program taint)
//	unbilledenergy — psbox/internal/... (whole-program pairing)
//	maporderflow   — every package (whole-program dataflow)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"psbox/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding instead of text lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}

	match, err := compilePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}

	prog := analysis.NewProgram(pkgs)
	total := 0
	for _, pkg := range pkgs {
		if !match(pkg.Dir) {
			continue
		}
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if !analysis.InScope(a, pkg.Path) {
				continue
			}
			suite = append(suite, a)
		}
		for _, d := range analysis.RunAnalyzersProgram(prog, pkg, suite) {
			printDiag(stdout, root, d, *jsonOut)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "psbox-lint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// compilePatterns turns go-style package patterns, resolved against the
// working directory, into a directory matcher.
func compilePatterns(cwd string, patterns []string) (func(dir string) bool, error) {
	type rule struct {
		base    string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			return nil, fmt.Errorf("flag %s must precede package patterns", p)
		}
		rest, subtree := strings.CutSuffix(p, "/...")
		if rest == "" {
			rest = "."
		}
		base := rest
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		rules = append(rules, rule{base: filepath.Clean(base), subtree: subtree})
	}
	return func(dir string) bool {
		dir = filepath.Clean(dir)
		for _, r := range rules {
			if dir == r.base {
				return true
			}
			if r.subtree && strings.HasPrefix(dir, r.base+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printDiag(w io.Writer, root string, d analysis.Diagnostic, asJSON bool) {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	if asJSON {
		b, err := json.Marshal(jsonDiag{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		if err != nil {
			panic(err) // a flat struct of strings and ints cannot fail
		}
		fmt.Fprintf(w, "%s\n", b)
		return
	}
	d.Pos.Filename = file
	fmt.Fprintln(w, d.String())
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
