// Command psbox-lint runs psbox's determinism and energy-accounting
// analyzers over the whole module and exits non-zero on any finding. It is
// the static half of the determinism contract: the CI determinism job
// catches divergence after the fact; psbox-lint rejects the constructs
// that cause it before they merge.
//
// Usage:
//
//	go run ./cmd/psbox-lint ./...
//
// The package patterns are accepted for familiarity but the tool always
// analyzes the entire module containing the working directory; the
// analyzers' package scopes (below) are fixed by DESIGN.md, not by the
// command line.
//
// Scopes:
//
//	nowallclock    — psbox/internal/... (cmd tools may report host time)
//	nomathrand     — every package (internal/sim/rand.go itself exempt)
//	noconcurrency  — every package (escape: //psbox:allow-noconcurrency)
//	maporder       — every package
//	energyaccum    — every package (internal/meter, core/vmeter.go exempt)
//	snapshotstate  — every package (escape: //psbox:allow-snapshotstate)
//	obsdeterminism — instrumented internal subtrees (sim, kernel, hw,
//	                 meter, faults, core); report via the obs bus instead
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"psbox/internal/analysis"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbox-lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbox-lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "psbox-lint:", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if !analysis.InScope(a, pkg.Path) {
				continue
			}
			suite = append(suite, a)
		}
		for _, d := range analysis.RunAnalyzers(pkg, suite) {
			fmt.Println(relativize(root, d))
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "psbox-lint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relativize shortens diagnostic paths to module-relative form.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
