// Command psbox-lint runs psbox's determinism and energy-accounting
// analyzers and exits non-zero on any finding. It is the static half of
// the determinism contract: the CI determinism job catches divergence
// after the fact; psbox-lint rejects the constructs that cause it before
// they merge.
//
// Usage:
//
//	go run ./cmd/psbox-lint [-json] [-fix] [-diff] [-run <analyzer,...>] [-staleallows=false] [packages]
//
// Package patterns (./..., ./internal/..., ./cmd/psbox-lint) select which
// packages' findings are reported. The whole module containing the working
// directory is always loaded and analyzed regardless — the interprocedural
// analyzers need the full call graph — so narrowing the patterns narrows
// the report, not the analysis. With no patterns, ./... is assumed. The
// analyzers' package scopes (below) are fixed by DESIGN.md, not by the
// command line.
//
// With -json, each finding is printed to stdout as one JSON object per
// line with the fields file, line, col, analyzer, message, and — when the
// analyzer attached machine-applicable remediations — fixes, an array of
// {message, edits:[{file, start, end, new}]} with byte-offset edits.
//
// Suggested fixes are applied with -fix (edits the files in place; a
// second run is a no-op) or previewed with -diff (prints only the unified
// diff the fixes would apply, byte-stable across runs, nothing when there
// is no fix to apply — which makes it a CI gate: non-empty output means a
// mechanically fixable finding was merged).
//
// -run restricts the suite to a comma-separated subset of analyzer names
// (suite order is preserved regardless of the order given), so CI and
// local loops can run just one pass — e.g. the concurrency contracts:
//
//	go run ./cmd/psbox-lint -run goroutineconfine,locksetatomic ./internal/... ./cmd/...
//
// An unknown name is an error (exit 2) listing the known analyzers.
//
// The staleallows audit runs by default: after the full suite, any
// //psbox:allow-* directive that suppressed no finding is itself reported
// (its fix deletes the dead directive). -staleallows=false disables the
// audit for runs whose narrowed report would make it noisy; a -run subset
// disables it too, since staleness is only meaningful against the full
// suite's findings.
//
// Scopes:
//
//	nowallclock    — psbox/internal/... (cmd tools may report host time)
//	nomathrand     — every package (internal/sim/rand.go itself exempt)
//	noconcurrency  — every package (escape: //psbox:allow-noconcurrency)
//	maporder       — every package
//	energyaccum    — every package (internal/meter, core/vmeter.go exempt)
//	snapshotstate  — every package (escape: //psbox:allow-snapshotstate)
//	obsdeterminism — instrumented internal subtrees (sim, kernel, hw,
//	                 meter, faults, core); report via the obs bus instead
//	walltaint      — psbox/internal/... (whole-program taint)
//	unbilledenergy — psbox/internal/... (whole-program pairing)
//	maporderflow   — every package (whole-program dataflow)
//	goroutineconfine — every package (whole-program spawn/capture model)
//	locksetatomic  — every package that uses host concurrency (goroutines
//	                 or the sync packages); pure sim packages are exempt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"psbox/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psbox-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding instead of text lines")
	applyFix := fs.Bool("fix", false, "apply suggested fixes to the source files in place")
	diffOut := fs.Bool("diff", false, "print only the unified diff the suggested fixes would apply")
	stale := fs.Bool("staleallows", true, "audit //psbox:allow-* directives that no longer suppress anything")
	runSel := fs.String("run", "", "comma-separated analyzer subset to run (default: the full suite)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite := analysis.All()
	if *runSel != "" {
		selected, err := selectAnalyzers(suite, *runSel)
		if err != nil {
			fmt.Fprintln(stderr, "psbox-lint:", err)
			return 2
		}
		suite = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}

	match, err := compilePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}

	prog := analysis.NewProgram(pkgs)
	var report []analysis.Diagnostic
	for _, pkg := range pkgs {
		if !match(pkg.Dir) {
			continue
		}
		var pkgSuite []*analysis.Analyzer
		for _, a := range suite {
			if !analysis.InScope(a, pkg.Path) {
				continue
			}
			pkgSuite = append(pkgSuite, a)
		}
		if *stale && *runSel == "" {
			// Staleness is judged against the findings of this same run, so
			// the audit must be last in the suite — and only a full-suite
			// run can judge it: under a -run subset every other analyzer's
			// directives would look dead.
			pkgSuite = append(pkgSuite, analysis.StaleAllows)
		}
		report = append(report, analysis.RunAnalyzersProgram(prog, pkg, pkgSuite)...)
	}

	if *diffOut || *applyFix {
		if code := emitFixes(report, root, *diffOut, *applyFix, stdout, stderr); code != 0 {
			return code
		}
	}
	if !*diffOut {
		for _, d := range report {
			printDiag(stdout, root, d, *jsonOut)
		}
	}
	if len(report) > 0 {
		fmt.Fprintf(stderr, "psbox-lint: %d finding(s)\n", len(report))
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -run value against the full
// suite, preserving suite order regardless of the order given.
func selectAnalyzers(all []*analysis.Analyzer, sel string) ([]*analysis.Analyzer, error) {
	want := make(map[string]bool)
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var subset []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			subset = append(subset, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown, known []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		for _, a := range all {
			known = append(known, a.Name)
		}
		return nil, fmt.Errorf("unknown analyzer %q (known: %s)", unknown[0], strings.Join(known, ", "))
	}
	if len(subset) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return subset, nil
}

// emitFixes applies (or previews) every suggested fix of the report. Files
// are visited in sorted order so -diff output is byte-stable.
func emitFixes(report []analysis.Diagnostic, root string, diff, apply bool, stdout, stderr io.Writer) int {
	fixed, notes, err := analysis.ApplyFixes(report, os.ReadFile)
	if err != nil {
		fmt.Fprintln(stderr, "psbox-lint:", err)
		return 2
	}
	for _, n := range notes {
		fmt.Fprintln(stderr, "psbox-lint:", n)
	}
	var names []string
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		orig, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(stderr, "psbox-lint:", err)
			return 2
		}
		if diff {
			fmt.Fprint(stdout, analysis.UnifiedDiff(relTo(root, name), orig, fixed[name]))
		}
		if apply {
			if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
				fmt.Fprintln(stderr, "psbox-lint:", err)
				return 2
			}
		}
	}
	if apply && len(names) > 0 {
		fmt.Fprintf(stderr, "psbox-lint: fixed %d file(s)\n", len(names))
	}
	return 0
}

// compilePatterns turns go-style package patterns, resolved against the
// working directory, into a directory matcher.
func compilePatterns(cwd string, patterns []string) (func(dir string) bool, error) {
	type rule struct {
		base    string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			return nil, fmt.Errorf("flag %s must precede package patterns", p)
		}
		rest, subtree := strings.CutSuffix(p, "/...")
		if rest == "" {
			rest = "."
		}
		base := rest
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		rules = append(rules, rule{base: filepath.Clean(base), subtree: subtree})
	}
	return func(dir string) bool {
		dir = filepath.Clean(dir)
		for _, r := range rules {
			if dir == r.base {
				return true
			}
			if r.subtree && strings.HasPrefix(dir, r.base+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string                  `json:"file"`
	Line     int                     `json:"line"`
	Col      int                     `json:"col"`
	Analyzer string                  `json:"analyzer"`
	Message  string                  `json:"message"`
	Fixes    []analysis.SuggestedFix `json:"fixes,omitempty"`
}

// relTo renders a path relative to the module root when it lies inside.
func relTo(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

func printDiag(w io.Writer, root string, d analysis.Diagnostic, asJSON bool) {
	file := relTo(root, d.Pos.Filename)
	if asJSON {
		// Fix edit paths are relativized like the finding itself, so the
		// artifact is stable across checkouts.
		fixes := make([]analysis.SuggestedFix, len(d.Fixes))
		for i, f := range d.Fixes {
			edits := make([]analysis.TextEdit, len(f.Edits))
			for j, e := range f.Edits {
				e.File = relTo(root, e.File)
				edits[j] = e
			}
			fixes[i] = analysis.SuggestedFix{Message: f.Message, Edits: edits}
		}
		b, err := json.Marshal(jsonDiag{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixes:    fixes,
		})
		if err != nil {
			panic(err) // a struct of strings and ints cannot fail
		}
		fmt.Fprintf(w, "%s\n", b)
		return
	}
	d.Pos.Filename = file
	fmt.Fprintln(w, d.String())
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
