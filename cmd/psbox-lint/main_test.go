package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// lintFixture lays out a throwaway module with one known violation and one
// clean package and chdirs into it for the duration of the test.
func lintFixture(t *testing.T) {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module psbox\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Now() int64 { return time.Now().UnixNano() }
`,
		"internal/ok/ok.go": `package ok

func Add(a, b int) int { return a + b }
`,
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const (
	wantTextLine = "internal/clock/clock.go:5:27: nowallclock: time.Now reads the host wall clock; use the sim engine's virtual clock (Engine.Now/After/At)\n"
	wantJSONLine = `{"file":"internal/clock/clock.go","line":5,"col":27,"analyzer":"nowallclock","message":"time.Now reads the host wall clock; use the sim engine's virtual clock (Engine.Now/After/At)"}` + "\n"
)

func TestTextOutputGolden(t *testing.T) {
	lintFixture(t)
	var out, errs bytes.Buffer
	if code := run([]string{"./..."}, &out, &errs); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errs.String())
	}
	if out.String() != wantTextLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantTextLine)
	}
	if errs.String() != "psbox-lint: 1 finding(s)\n" {
		t.Errorf("stderr = %q", errs.String())
	}
}

func TestNoArgsMatchesExplicitAll(t *testing.T) {
	lintFixture(t)
	var a, b bytes.Buffer
	codeA := run(nil, &a, new(bytes.Buffer))
	codeB := run([]string{"./..."}, &b, new(bytes.Buffer))
	if codeA != codeB || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("bare invocation must be byte-identical to ./...: %q vs %q", a.String(), b.String())
	}
}

func TestJSONOutputGolden(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if out.String() != wantJSONLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantJSONLine)
	}
}

func TestPatternsNarrowTheReport(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"./internal/ok"}, &out, new(bytes.Buffer)); code != 0 {
		t.Fatalf("clean package selected, exit code = %d, want 0; out: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout = %q, want empty", out.String())
	}
	out.Reset()
	if code := run([]string{"./internal/..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("subtree with violation, exit code = %d, want 1", code)
	}
	if out.String() != wantTextLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantTextLine)
	}
}

func TestFlagAfterPatternRejected(t *testing.T) {
	lintFixture(t)
	var errs bytes.Buffer
	if code := run([]string{"./...", "-json"}, new(bytes.Buffer), &errs); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errs.String())
	}
}
