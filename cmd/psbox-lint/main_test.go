package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// lintFixture lays out a throwaway module with one known violation and one
// clean package and chdirs into it for the duration of the test.
func lintFixture(t *testing.T) {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module psbox\n\ngo 1.22\n",
		"internal/clock/clock.go": `package clock

import "time"

func Now() int64 { return time.Now().UnixNano() }
`,
		"internal/ok/ok.go": `package ok

func Add(a, b int) int { return a + b }
`,
	}
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const (
	wantTextLine = "internal/clock/clock.go:5:27: nowallclock: time.Now reads the host wall clock; use the sim engine's virtual clock (Engine.Now/After/At)\n"
	wantJSONLine = `{"file":"internal/clock/clock.go","line":5,"col":27,"analyzer":"nowallclock","message":"time.Now reads the host wall clock; use the sim engine's virtual clock (Engine.Now/After/At)","fixes":[{"message":"add a reasoned //psbox:allow-nowallclock directive","edits":[{"file":"internal/clock/clock.go","start":30,"end":30,"new":"//psbox:allow-nowallclock TODO: justify this exception\n"}]}]}` + "\n"
)

func TestTextOutputGolden(t *testing.T) {
	lintFixture(t)
	var out, errs bytes.Buffer
	if code := run([]string{"./..."}, &out, &errs); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errs.String())
	}
	if out.String() != wantTextLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantTextLine)
	}
	if errs.String() != "psbox-lint: 1 finding(s)\n" {
		t.Errorf("stderr = %q", errs.String())
	}
}

func TestNoArgsMatchesExplicitAll(t *testing.T) {
	lintFixture(t)
	var a, b bytes.Buffer
	codeA := run(nil, &a, new(bytes.Buffer))
	codeB := run([]string{"./..."}, &b, new(bytes.Buffer))
	if codeA != codeB || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("bare invocation must be byte-identical to ./...: %q vs %q", a.String(), b.String())
	}
}

func TestJSONOutputGolden(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if out.String() != wantJSONLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantJSONLine)
	}
}

func TestPatternsNarrowTheReport(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"./internal/ok"}, &out, new(bytes.Buffer)); code != 0 {
		t.Fatalf("clean package selected, exit code = %d, want 0; out: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout = %q, want empty", out.String())
	}
	out.Reset()
	if code := run([]string{"./internal/..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("subtree with violation, exit code = %d, want 1", code)
	}
	if out.String() != wantTextLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantTextLine)
	}
}

func TestRunSubsetTextGolden(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"-run", "nowallclock", "./..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if out.String() != wantTextLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantTextLine)
	}
	// A subset that excludes the violating analyzer reports nothing.
	out.Reset()
	if code := run([]string{"-run", "nomathrand,goroutineconfine", "./..."}, &out, new(bytes.Buffer)); code != 0 {
		t.Fatalf("exit code = %d, want 0; out: %s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout = %q, want empty", out.String())
	}
}

func TestRunSubsetJSONGolden(t *testing.T) {
	lintFixture(t)
	var out bytes.Buffer
	if code := run([]string{"-json", "-run", "nowallclock", "./..."}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if out.String() != wantJSONLine {
		t.Errorf("stdout = %q, want %q", out.String(), wantJSONLine)
	}
}

func TestRunUnknownAnalyzerRejected(t *testing.T) {
	lintFixture(t)
	var errs bytes.Buffer
	if code := run([]string{"-run", "nosuch", "./..."}, new(bytes.Buffer), &errs); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errs.String())
	}
	if !bytes.Contains(errs.Bytes(), []byte(`unknown analyzer "nosuch" (known: nowallclock,`)) {
		t.Errorf("stderr = %q, want unknown-analyzer error listing the suite", errs.String())
	}
}

func TestRunSubsetSkipsStaleAudit(t *testing.T) {
	lintFixture(t)
	waiver := filepath.Join("internal", "ok", "waiver.go")
	src := `package ok

func Mul(a, b int) int {
	//psbox:allow-maporder no map loop here anymore
	return a * b
}
`
	if err := os.WriteFile(waiver, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Under a -run subset every other analyzer's directives would look
	// dead, so the audit must not run even though it defaults on.
	var out bytes.Buffer
	if code := run([]string{"-run", "maporder", "./internal/ok"}, &out, new(bytes.Buffer)); code != 0 || out.Len() != 0 {
		t.Errorf("subset run: exit=%d stdout=%q, want clean with no stale audit", code, out.String())
	}
}

func TestFlagAfterPatternRejected(t *testing.T) {
	lintFixture(t)
	var errs bytes.Buffer
	if code := run([]string{"./...", "-json"}, new(bytes.Buffer), &errs); code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, errs.String())
	}
}

func TestDiffPreviewIsByteStableAndNonMutating(t *testing.T) {
	lintFixture(t)
	before, err := os.ReadFile("internal/clock/clock.go")
	if err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	run([]string{"-diff", "./..."}, &first, new(bytes.Buffer))
	run([]string{"-diff", "./..."}, &second, new(bytes.Buffer))
	if first.Len() == 0 {
		t.Fatal("diff preview is empty; the nowallclock fix should produce one")
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("diff preview not byte-stable:\n%q\nvs\n%q", first.String(), second.String())
	}
	if !bytes.Contains(first.Bytes(), []byte("+//psbox:allow-nowallclock TODO: justify this exception")) {
		t.Errorf("diff missing inserted directive:\n%s", first.String())
	}
	after, err := os.ReadFile("internal/clock/clock.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("-diff must not modify files on disk")
	}
}

func TestFixAppliesAndIsIdempotent(t *testing.T) {
	lintFixture(t)
	var errs bytes.Buffer
	if code := run([]string{"-fix", "./..."}, new(bytes.Buffer), &errs); code != 1 {
		t.Fatalf("first -fix run: exit code = %d, want 1 (the finding existed); stderr: %s", code, errs.String())
	}
	fixedOnce, err := os.ReadFile("internal/clock/clock.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fixedOnce, []byte("//psbox:allow-nowallclock TODO: justify this exception\nfunc Now()")) {
		t.Fatalf("directive stub not inserted:\n%s", fixedOnce)
	}
	// The stub now suppresses the finding (and is marked used, so the
	// stale audit stays quiet): the second run must find nothing and
	// change nothing.
	var out bytes.Buffer
	if code := run([]string{"-fix", "./..."}, &out, new(bytes.Buffer)); code != 0 {
		t.Fatalf("second -fix run: exit code = %d, want 0; out: %s", code, out.String())
	}
	fixedTwice, err := os.ReadFile("internal/clock/clock.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixedOnce, fixedTwice) {
		t.Error("-fix is not idempotent")
	}
}

func TestStaleDirectiveReportedAndFixed(t *testing.T) {
	lintFixture(t)
	waiver := filepath.Join("internal", "ok", "waiver.go")
	src := `package ok

func Mul(a, b int) int {
	//psbox:allow-maporder no map loop here anymore
	return a * b
}
`
	if err := os.WriteFile(waiver, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"./internal/ok"}, &out, new(bytes.Buffer)); code != 1 {
		t.Fatalf("exit code = %d, want 1; out: %s", code, out.String())
	}
	wantStale := "internal/ok/waiver.go:4:2: staleallows: //psbox:allow-maporder directive suppresses nothing; remove it\n"
	if out.String() != wantStale {
		t.Errorf("stdout = %q, want %q", out.String(), wantStale)
	}
	// The audit is optional for narrowed runs.
	out.Reset()
	if code := run([]string{"-staleallows=false", "./internal/ok"}, &out, new(bytes.Buffer)); code != 0 || out.Len() != 0 {
		t.Errorf("with -staleallows=false: exit=%d stdout=%q, want clean", code, out.String())
	}
	// Its fix deletes the dead directive line.
	if code := run([]string{"-fix", "./internal/ok"}, new(bytes.Buffer), new(bytes.Buffer)); code != 1 {
		t.Fatal("fix run should still report the pre-fix finding")
	}
	got, err := os.ReadFile(waiver)
	if err != nil {
		t.Fatal(err)
	}
	want := `package ok

func Mul(a, b int) int {
	return a * b
}
`
	if string(got) != want {
		t.Errorf("after fix:\n%s\nwant:\n%s", got, want)
	}
}
