package psbox_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"psbox"
	"psbox/internal/snapshot"
)

// buildCrashSystem constructs the restore-equivalence scenario: the mobile
// platform, a GPU-bound sandbox and a WiFi sandbox, one fault of the given
// kind striking at 0.4×horizon (lasting 0.2×horizon where the kind has a
// duration), a periodic invariant audit, and checkpoint events every
// horizon/8. The checkpoint events are scheduled at construction, at fixed
// absolute times, in every run — golden, crashed, and resumed — so all
// runs allocate identical event sequences; only the callback body differs.
func buildCrashSystem(seed uint64, horizon psbox.Duration, kind string,
	onCkpt func(*psbox.System, psbox.Time)) *psbox.System {
	sys := psbox.NewMobile(seed)
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU).Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 8e5},
		psbox.Send{Socket: sock, Bytes: 24_000},
		psbox.AwaitNet{MaxBacklog: 48_000},
		psbox.Sleep{D: 6 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi).Enter()

	at := psbox.Time(float64(horizon) * 0.4)
	dur := psbox.Duration(float64(horizon) * 0.2)
	switch kind {
	case "accel-hang":
		sys.Faults.HangAccelAt(at, "gpu")
	case "nic-flap":
		sys.Faults.FlapLinkAt(at, "wifi", dur)
	case "dvfs-stall":
		sys.Faults.StallDVFSAt(at, "cpu", dur)
	case "meter-dropout":
		sys.Faults.DropMeterAt(at, "gpu", dur)
	default:
		panic("unknown fault kind " + kind)
	}

	sys.SetAuditEvery(horizon / 20)

	every := horizon / 8
	for t := psbox.Time(int64(every)); t <= psbox.Time(int64(horizon)); t = t.Add(every) {
		tt := t
		sys.Eng.At(tt, func(psbox.Time) {
			if onCkpt != nil {
				onCkpt(sys, tt)
			}
		})
	}
	return sys
}

// crashReport renders the scenario's final state deterministically.
func crashReport(sys *psbox.System) string {
	var b strings.Builder
	b.WriteString(sys.Faults.FormatLog())
	for _, name := range sys.Kernel.AccelNames() {
		d := sys.Kernel.Accel(name)
		fmt.Fprintf(&b, "%-6s resets=%d resubmits=%d dropped=%d completed=%d\n",
			name, d.WatchdogResets(), d.Resubmits(), d.DroppedCommands(), d.Completed(0))
	}
	fmt.Fprintf(&b, "net flaps=%d retries=%d\n",
		sys.Kernel.Net().NIC().Flaps(), sys.Kernel.Net().LinkRetries())
	for _, app := range sys.Kernel.Apps() {
		fmt.Fprintf(&b, "%-10s frames=%.0f cpu=%d\n", app.Name, app.Counter("frames"), int64(app.CPUTime()))
	}
	for _, bx := range sys.Sandbox.Boxes() {
		direct, est, gaps := bx.ReadDetail()
		fmt.Fprintf(&b, "%-10s read=%.9f direct=%.9f est=%.9f gaps=%d\n",
			bx.App().Name, direct+est, direct, est, gaps)
	}
	fmt.Fprintf(&b, "battery=%.9f J audits=%d\n",
		sys.Meter.Energy("battery", 0, sys.Now()), sys.Audits())
	return b.String()
}

// TestRestoreEquivalenceUnderFaults is the satellite-3 contract: for each
// fault kind, crash the run mid-fault, resume from the last checkpoint
// (rebuild + deterministic replay + byte-verify), run to the horizon, and
// require the resumed final report to be byte-identical to the
// uninterrupted golden run's.
func TestRestoreEquivalenceUnderFaults(t *testing.T) {
	const seed = 42
	horizon := 400 * psbox.Millisecond
	crashAt := psbox.Duration(float64(horizon) * 0.55) // mid-fault: fault spans [0.4h, 0.6h)

	for _, kind := range []string{"accel-hang", "nic-flap", "dvfs-stall", "meter-dropout"} {
		t.Run(kind, func(t *testing.T) {
			// Uninterrupted golden run, capturing checkpoints along the way.
			goldenCkpts := map[psbox.Time][]byte{}
			golden := buildCrashSystem(seed, horizon, kind, func(s *psbox.System, at psbox.Time) {
				goldenCkpts[at] = s.Snapshot()
			})
			golden.Run(horizon)
			goldenReport := crashReport(golden)

			// Crashed run: stops mid-fault; keeps only the last checkpoint,
			// like a process kill would.
			var lastBytes []byte
			var lastAt psbox.Time
			crashed := buildCrashSystem(seed, horizon, kind, func(s *psbox.System, at psbox.Time) {
				lastBytes, lastAt = s.Snapshot(), at
			})
			crashed.Run(crashAt)
			if lastBytes == nil {
				t.Fatal("crashed run captured no checkpoint")
			}
			if want := psbox.Time(0).Add(horizon / 2); lastAt != want {
				t.Fatalf("last checkpoint at %v, want %v", lastAt, want)
			}
			// Checkpoint bytes are a pure function of (scenario, instant):
			// the crashed run's capture must equal the golden run's.
			if d := snapshot.Diff(goldenCkpts[lastAt], lastBytes); d != "" {
				t.Fatalf("checkpoint diverges between golden and crashed run: %s", d)
			}

			// Resumed run: rebuild the scenario, replay deterministically;
			// at the checkpoint instant, Restore byte-verifies the live
			// state against the crashed run's checkpoint; then run to the
			// horizon.
			var restoreErr error
			restored := false
			resumed := buildCrashSystem(seed, horizon, kind, func(s *psbox.System, at psbox.Time) {
				if at == lastAt {
					restoreErr = s.Restore(lastBytes)
					restored = true
				}
			})
			resumed.Run(horizon)
			if !restored {
				t.Fatal("resumed run never reached the checkpoint instant")
			}
			if restoreErr != nil {
				t.Fatalf("restore verification failed: %v", restoreErr)
			}
			if got := crashReport(resumed); got != goldenReport {
				t.Errorf("resumed report diverges from golden\n-- golden --\n%s\n-- resumed --\n%s",
					goldenReport, got)
			}
		})
	}
}

// TestSnapshotDeterminism: two identically-built systems produce
// byte-identical checkpoints, and Restore accepts its own snapshot;
// a different seed must be rejected with a section-qualified error.
func TestSnapshotDeterminism(t *testing.T) {
	horizon := 100 * psbox.Millisecond
	a := buildCrashSystem(7, horizon, "accel-hang", nil)
	b := buildCrashSystem(7, horizon, "accel-hang", nil)
	a.Run(horizon)
	b.Run(horizon)
	sa, sb := a.Snapshot(), b.Snapshot()
	if !bytes.Equal(sa, sb) {
		t.Fatalf("identical systems diverge: %s", snapshot.Diff(sa, sb))
	}
	if err := a.Restore(sb); err != nil {
		t.Fatalf("restore of twin snapshot failed: %v", err)
	}

	c := buildCrashSystem(8, horizon, "accel-hang", nil)
	c.Run(horizon)
	if err := c.Restore(sa); err == nil {
		t.Fatal("restore accepted a checkpoint from a different seed")
	}
}

// TestAuditCadence: the periodic invariant audit fires on schedule.
func TestAuditCadence(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("worker")
	app.Spawn("spin", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.Sleep{D: 2 * psbox.Millisecond},
	))
	sys.SetAuditEvery(10 * psbox.Millisecond)
	sys.Run(100 * psbox.Millisecond)
	if got := sys.Audits(); got != 10 {
		t.Fatalf("audits = %d, want 10", got)
	}
	sys.SetAuditEvery(0) // disable
	sys.Run(50 * psbox.Millisecond)
	if got := sys.Audits(); got != 10 {
		t.Fatalf("audits after disable = %d, want 10", got)
	}
}
