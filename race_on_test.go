//go:build race

package psbox_test

// raceEnabled reports that this test binary was built with the race
// detector, whose memory-access instrumentation invalidates wall-clock
// timing budgets.
const raceEnabled = true
