package account

import (
	"math"
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

const ms = sim.Millisecond

func setup(t *testing.T, initial power.Watts) (*sim.Engine, *power.Rail, *Recorder) {
	e := sim.NewEngine()
	r := power.NewRail(e, "rail", initial)
	return e, r, &Recorder{}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestExclusiveUsageFullyAttributed(t *testing.T) {
	e, rail, rec := setup(t, 2.0)
	e.Run(sim.Time(100 * ms))
	rec.Record(1, 0, sim.Time(40*ms))
	rec.Record(2, sim.Time(40*ms), sim.Time(100*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	shares := acc.Shares(0, sim.Time(100*ms))
	if !almost(shares[1], 2.0*0.040) || !almost(shares[2], 2.0*0.060) {
		t.Fatalf("shares = %v", shares)
	}
}

func TestOverlappingUsageSplitsByOccupancy(t *testing.T) {
	e, rail, rec := setup(t, 3.0)
	e.Run(sim.Time(100 * ms))
	// App 1 occupies one core the whole time; app 2 a second core the
	// whole time: even split of the entangled rail.
	rec.Record(1, 0, sim.Time(100*ms))
	rec.Record(2, 0, sim.Time(100*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	shares := acc.Shares(0, sim.Time(100*ms))
	if !almost(shares[1], 0.15) || !almost(shares[2], 0.15) {
		t.Fatalf("shares = %v", shares)
	}
}

func TestProportionalSplit(t *testing.T) {
	e, rail, rec := setup(t, 1.0)
	e.Run(sim.Time(10 * ms))
	// Within every window, app 1 uses 2 "cores" and app 2 uses 1.
	rec.Record(1, 0, sim.Time(10*ms))
	rec.Record(1, 0, sim.Time(10*ms))
	rec.Record(2, 0, sim.Time(10*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	shares := acc.Shares(0, sim.Time(10*ms))
	if !almost(shares[1], 2.0/3*0.010) || !almost(shares[2], 1.0/3*0.010) {
		t.Fatalf("shares = %v", shares)
	}
}

func TestIdleWindowsUnattributedByDefault(t *testing.T) {
	e, rail, rec := setup(t, 1.0)
	e.Run(sim.Time(100 * ms))
	rec.Record(1, 0, sim.Time(10*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	shares := acc.Shares(0, sim.Time(100*ms))
	if !almost(shares[1], 0.010) {
		t.Fatalf("shares = %v", shares)
	}
	var total float64
	for _, s := range shares {
		total += s
	}
	if !almost(total, 0.010) {
		t.Fatalf("idle energy leaked into shares: %v", shares)
	}
}

func TestTailPolicyChargesLastUser(t *testing.T) {
	e, rail, rec := setup(t, 1.0)
	e.Run(sim.Time(100 * ms))
	rec.Record(1, 0, sim.Time(10*ms))
	rec.Record(2, sim.Time(20*ms), sim.Time(30*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShareTail}
	shares := acc.Shares(0, sim.Time(100*ms))
	// App 1: its 10ms + the 10ms idle gap it "caused". App 2: its 10ms +
	// the 70ms trailing idle.
	if !almost(shares[1], 0.020) || !almost(shares[2], 0.080) {
		t.Fatalf("shares = %v", shares)
	}
}

func TestEvenSplitPolicy(t *testing.T) {
	e, rail, rec := setup(t, 2.0)
	e.Run(sim.Time(10 * ms))
	rec.Record(1, 0, sim.Time(10*ms))
	rec.Record(1, 0, sim.Time(10*ms)) // heavy user
	rec.Record(2, 0, sim.Time(10*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyEvenSplit}
	shares := acc.Shares(0, sim.Time(10*ms))
	if !almost(shares[1], 0.010) || !almost(shares[2], 0.010) {
		t.Fatalf("even split wrong: %v", shares)
	}
}

// The paper's core claim about the baseline: the attributed share of one
// app changes with co-runner behaviour even though the app itself did not
// change — entanglement survives any division heuristic.
func TestEntanglementSurvivesDivision(t *testing.T) {
	run := func(coRunner bool) power.Joules {
		e, rail, rec := setup(t, 1.0)
		// App 1 busy the whole 100ms: alone the rail draws 2 W; with a
		// co-runner on the second core it draws 3 W (not 2×2 W — shared
		// base).
		if coRunner {
			rail.Set(3.0)
		} else {
			rail.Set(2.0)
		}
		e.Run(sim.Time(100 * ms))
		rec.Record(1, 0, sim.Time(100*ms))
		if coRunner {
			rec.Record(2, 0, sim.Time(100*ms))
		}
		acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
		return acc.AppEnergy(1, 0, sim.Time(100*ms))
	}
	alone, entangled := run(false), run(true)
	diff := math.Abs(entangled-alone) / alone
	if diff < 0.2 {
		t.Fatalf("expected a large attribution shift, got %.1f%%", diff*100)
	}
}

func TestSeriesBuckets(t *testing.T) {
	e, rail, rec := setup(t, 1.0)
	e.Run(sim.Time(20 * ms))
	rec.Record(1, 0, sim.Time(10*ms))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	s := acc.Series(1, 0, sim.Time(20*ms), 5*ms)
	if len(s) != 4 {
		t.Fatalf("buckets = %d", len(s))
	}
	if !almost(s[0].W, 1.0) || !almost(s[1].W, 1.0) || !almost(s[2].W, 0) || !almost(s[3].W, 0) {
		t.Fatalf("series = %v", s)
	}
}

func TestRecorderDropsEmptySpans(t *testing.T) {
	rec := &Recorder{}
	rec.Record(1, 10, 10)
	rec.Record(1, 10, 5)
	if rec.Len() != 0 {
		t.Fatal("empty spans should be dropped")
	}
	rec.Record(1, 5, 10)
	if rec.Len() != 1 {
		t.Fatal("valid span dropped")
	}
}

func TestWindowClippingAtRangeEnd(t *testing.T) {
	// A range that is not a multiple of the window must not over-count.
	e, rail, rec := setup(t, 1.0)
	e.Run(sim.Time(105 * sim.Microsecond))
	rec.Record(1, 0, sim.Time(105*sim.Microsecond))
	acc := &Accountant{Rail: rail, Rec: rec, Window: 10 * sim.Microsecond, Policy: PolicyUsageShare}
	if got := acc.AppEnergy(1, 0, sim.Time(105*sim.Microsecond)); !almost(got, 105e-6) {
		t.Fatalf("energy = %v", got)
	}
}
