// Package account implements the evaluation's baseline comparator: the
// classic two-step approach to app power awareness (§2, §6.1), in which the
// OS meters system power and divides each sample among concurrent apps by
// a heuristic. Per the paper's favorable setup, hardware usage is tracked
// at the lowest software level at 10 µs granularity.
//
// The point of this package is to be *inadequate* in exactly the way the
// paper demonstrates: no division heuristic can undo power entanglement
// that already happened on the shared rail.
package account

import (
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Policy selects the division heuristic.
type Policy int

const (
	// PolicyUsageShare divides each sample in proportion to each app's
	// hardware occupancy within the sampling interval (AppScope-style,
	// ref [96]); intervals with no usage are unattributed.
	PolicyUsageShare Policy = iota
	// PolicyUsageShareTail is PolicyUsageShare, but idle intervals are
	// attributed to the app that used the hardware most recently — the
	// Eprof-style tail heuristic (ref [70]) needed for WiFi tail energy.
	PolicyUsageShareTail
	// PolicyEvenSplit divides each busy sample evenly among the apps
	// active in the interval, regardless of how much each used.
	PolicyEvenSplit
)

// Span is one occupancy interval of one app on the metered hardware (a
// core occupancy, a command execution, a frame airtime). Spans of
// different owners may overlap — that overlap is the entanglement.
type Span struct {
	Owner      int
	Start, End sim.Time
}

// Recorder accumulates occupancy spans for one rail. Drivers feed it via
// their usage callbacks.
type Recorder struct {
	spans []Span
}

// Record appends a span; zero- or negative-length spans are dropped.
func (r *Recorder) Record(owner int, start, end sim.Time) {
	if end <= start {
		return
	}
	r.spans = append(r.spans, Span{Owner: owner, Start: start, End: end})
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int { return len(r.spans) }

// Spans returns the recorded spans (shared slice; callers must not
// mutate). Trace rendering uses this to draw multiplexing timelines.
func (r *Recorder) Spans() []Span { return r.spans }

// Accountant divides one rail's metered power among apps.
type Accountant struct {
	Rail   *power.Rail
	Rec    *Recorder
	Window sim.Duration // sampling interval; 10 µs in the paper's setup
	Policy Policy
}

type edge struct {
	at    sim.Time
	owner int
	delta int
}

// Shares returns each app's attributed energy over [from, to).
func (a *Accountant) Shares(from, to sim.Time) map[int]power.Joules {
	out := make(map[int]power.Joules)
	a.walk(from, to, func(owner int, e power.Joules) { out[owner] += e })
	return out
}

// AppEnergy returns one app's attributed energy over [from, to).
func (a *Accountant) AppEnergy(owner int, from, to sim.Time) power.Joules {
	var total power.Joules
	a.walk(from, to, func(o int, e power.Joules) {
		if o == owner {
			total += e
		}
	})
	return total
}

// Series returns one app's attributed power, averaged over step-sized
// buckets, for trace plotting.
func (a *Accountant) Series(owner int, from, to sim.Time, step sim.Duration) []power.Sample {
	if step <= 0 {
		step = a.Window
	}
	nBuckets := int((to.Sub(from) + step - 1) / step)
	if nBuckets <= 0 {
		return nil
	}
	energy := make([]power.Joules, nBuckets)
	a.walkWindows(from, to, func(wStart sim.Time, shares map[int]power.Joules) {
		e, ok := shares[owner]
		if !ok {
			return
		}
		b := int(wStart.Sub(from) / step)
		if b >= 0 && b < nBuckets {
			//psbox:allow-energyaccum summing already-integrated window shares in deterministic replay order, not raw power×dt
			energy[b] += e
		}
	})
	out := make([]power.Sample, nBuckets)
	for i := range energy {
		out[i] = power.Sample{
			T: from.Add(sim.Duration(i) * step),
			W: energy[i] / step.Seconds(),
		}
	}
	return out
}

func (a *Accountant) walk(from, to sim.Time, emit func(owner int, e power.Joules)) {
	a.walkWindows(from, to, func(_ sim.Time, shares map[int]power.Joules) {
		// Emit in sorted-owner order so callers that fold the stream into
		// order-sensitive state (float totals, output) stay deterministic.
		owners := make([]int, 0, len(shares))
		for o := range shares {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		for _, o := range owners {
			emit(o, shares[o])
		}
	})
}

// walkWindows replays the recorded spans window by window, dividing each
// window's rail energy by the active policy.
func (a *Accountant) walkWindows(from, to sim.Time, emit func(wStart sim.Time, shares map[int]power.Joules)) {
	if to <= from {
		return
	}
	w := a.Window
	if w <= 0 {
		w = 10 * sim.Microsecond
	}
	// Build the span edge list once, sorted by time.
	edges := make([]edge, 0, 2*len(a.Rec.spans))
	for _, s := range a.Rec.spans {
		edges = append(edges, edge{at: s.Start, owner: s.Owner, delta: +1})
		edges = append(edges, edge{at: s.End, owner: s.Owner, delta: -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	active := make(map[int]int)    // owner → overlapping span count
	usage := make(map[int]float64) // per-window usage seconds
	ei := 0
	lastUser := -1
	// Fast-forward edges before `from`, maintaining active set and last
	// user.
	for ei < len(edges) && edges[ei].at <= from {
		e := edges[ei]
		active[e.owner] += e.delta
		if active[e.owner] <= 0 {
			delete(active, e.owner)
			lastUser = e.owner
		}
		ei++
	}
	for wStart := from; wStart < to; wStart = wStart.Add(w) {
		wEnd := wStart.Add(w)
		if wEnd > to {
			wEnd = to
		}
		for o := range usage {
			delete(usage, o)
		}
		cursor := wStart
		for ei < len(edges) && edges[ei].at < wEnd {
			e := edges[ei]
			dt := e.at.Sub(cursor).Seconds()
			if dt > 0 {
				for o, n := range active {
					if n > 0 {
						usage[o] += dt * float64(n)
					}
				}
				cursor = e.at
			}
			active[e.owner] += e.delta
			if active[e.owner] <= 0 {
				delete(active, e.owner)
				lastUser = e.owner
			}
			ei++
		}
		if dt := wEnd.Sub(cursor).Seconds(); dt > 0 {
			for o, n := range active {
				if n > 0 {
					usage[o] += dt * float64(n)
				}
			}
		}
		energy := a.Rail.EnergyBetween(wStart, wEnd)
		if energy <= 0 {
			continue
		}
		shares := a.divide(energy, usage, lastUser)
		if len(shares) > 0 {
			emit(wStart, shares)
		}
	}
}

func (a *Accountant) divide(energy power.Joules, usage map[int]float64, lastUser int) map[int]power.Joules {
	switch a.Policy {
	case PolicyEvenSplit:
		if len(usage) == 0 {
			return nil
		}
		per := energy / float64(len(usage))
		out := make(map[int]power.Joules, len(usage))
		for o := range usage {
			out[o] = per
		}
		return out
	case PolicyUsageShareTail:
		if len(usage) == 0 {
			if lastUser < 0 {
				return nil
			}
			return map[int]power.Joules{lastUser: energy}
		}
		return a.usageShares(energy, usage)
	default: // PolicyUsageShare
		if len(usage) == 0 {
			return nil
		}
		return a.usageShares(energy, usage)
	}
}

func (a *Accountant) usageShares(energy power.Joules, usage map[int]float64) map[int]power.Joules {
	// Sum in sorted-owner order: float addition is not associative, so a
	// map-order sum would make each app's share depend on iteration order
	// and two seeded runs would differ in the last bits.
	owners := make([]int, 0, len(usage))
	for o := range usage {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	var total float64
	for _, o := range owners {
		total += usage[o]
	}
	out := make(map[int]power.Joules, len(usage))
	for _, o := range owners {
		out[o] = energy * usage[o] / total
	}
	return out
}
