package account

import "psbox/internal/snapshot"

// Snapshot encodes the recorder's occupancy spans in insertion order (the
// drivers' usage callbacks fire deterministically, so the order is stable
// across replays).
func (r *Recorder) Snapshot(enc *snapshot.Encoder) {
	enc.Len(len(r.spans))
	for _, s := range r.spans {
		enc.I64(int64(s.Owner))
		enc.I64(int64(s.Start))
		enc.I64(int64(s.End))
	}
}

// Restore verifies the live recorder against a checkpoint section.
func (r *Recorder) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, r.Snapshot) }
