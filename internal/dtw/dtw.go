// Package dtw implements dynamic time warping, the time-series similarity
// measure the paper's §2.5 attacker uses to match observed GPU power
// traces against its training set (ref [2]).
package dtw

import (
	"math"
)

// Distance computes the DTW distance between two series with a
// Sakoe-Chiba band of the given half-width. A non-positive window means
// unconstrained. Empty inputs yield +Inf.
func Distance(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = max(n, m)
	}
	// The band must be at least |n−m| wide to admit any path.
	if d := n - m; d < 0 {
		if window < -d {
			window = -d
		}
	} else if window < d {
		window = d
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - window
		if lo < 1 {
			lo = 1
		}
		hi := i + window
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

// Normalize z-scores a series in place-copy: zero mean, unit variance.
// Constant series normalize to all zeros.
func Normalize(s []float64) []float64 {
	out := make([]float64, len(s))
	if len(s) == 0 {
		return out
	}
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	var variance float64
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(s))
	sd := math.Sqrt(variance)
	if sd < 1e-12 {
		return out
	}
	for i, v := range s {
		out[i] = (v - mean) / sd
	}
	return out
}

// Classify returns the index of the training series nearest to the probe
// under normalized DTW, and the winning distance.
func Classify(probe []float64, training [][]float64, window int) (int, float64) {
	p := Normalize(probe)
	best, bestD := -1, math.Inf(1)
	for i, tr := range training {
		d := Distance(p, Normalize(tr), window)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
