package dtw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdenticalSeriesZero(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	if d := Distance(a, a, 0); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestEmptyIsInfinite(t *testing.T) {
	if !math.IsInf(Distance(nil, []float64{1}, 0), 1) {
		t.Fatal("empty should be +Inf")
	}
}

func TestSymmetry(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4, 3, 2}
	b := []float64{0, 0, 1, 3, 4, 4, 2, 1}
	if d1, d2 := Distance(a, b, 0), Distance(b, a, 0); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestWarpingToleratesShift(t *testing.T) {
	// A pulse at different positions: DTW distance should be far smaller
	// than the pointwise (Euclidean) distance.
	pulse := func(pos int) []float64 {
		s := make([]float64, 50)
		for i := pos; i < pos+5 && i < 50; i++ {
			s[i] = 1
		}
		return s
	}
	a, b := pulse(10), pulse(20)
	var euclid float64
	for i := range a {
		euclid += (a[i] - b[i]) * (a[i] - b[i])
	}
	euclid = math.Sqrt(euclid)
	if d := Distance(a, b, 0); d >= euclid/2 {
		t.Fatalf("dtw %v not much better than euclid %v", d, euclid)
	}
}

func TestDifferentLengths(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	if d := Distance(a, b, 0); d != 0 {
		t.Fatalf("time-stretched copy should be distance 0, got %v", d)
	}
}

func TestWindowAdmitsLengthDifference(t *testing.T) {
	a := make([]float64, 10)
	b := make([]float64, 30)
	d := Distance(a, b, 1) // band narrower than the length gap: must widen
	if math.IsInf(d, 1) || math.IsNaN(d) {
		t.Fatalf("banded distance = %v", d)
	}
}

func TestNormalize(t *testing.T) {
	s := Normalize([]float64{2, 4, 6})
	var mean, variance float64
	for _, v := range s {
		mean += v
	}
	mean /= 3
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	variance /= 3
	if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-9 {
		t.Fatalf("normalize: mean=%v var=%v", mean, variance)
	}
	flat := Normalize([]float64{5, 5, 5})
	for _, v := range flat {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Fatal("empty normalize")
	}
}

func TestClassifyPicksNearest(t *testing.T) {
	training := [][]float64{
		{0, 0, 1, 1, 0, 0},
		{1, 0, 1, 0, 1, 0},
		{1, 1, 1, 0, 0, 0},
	}
	probe := []float64{0.1, 0, 0.9, 1.1, 0.05, 0}
	idx, d := Classify(probe, training, 2)
	if idx != 0 {
		t.Fatalf("classified as %d (d=%v)", idx, d)
	}
}

func TestQuickDistanceNonNegativeAndSymmetric(t *testing.T) {
	f := func(ar, br []uint8) bool {
		if len(ar) == 0 || len(br) == 0 {
			return true
		}
		a := make([]float64, len(ar))
		b := make([]float64, len(br))
		for i, v := range ar {
			a[i] = float64(v)
		}
		for i, v := range br {
			b[i] = float64(v)
		}
		d1 := Distance(a, b, 5)
		d2 := Distance(b, a, 5)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Triangle-inequality-ish sanity: distance to a perturbed copy is smaller
// than to an unrelated series.
func TestQuickPerturbationCloserThanRandom(t *testing.T) {
	f := func(seed uint8) bool {
		n := 40
		a := make([]float64, n)
		for i := range a {
			a[i] = math.Sin(float64(i)/4 + float64(seed))
		}
		near := make([]float64, n)
		far := make([]float64, n)
		for i := range a {
			near[i] = a[i] + 0.01*float64(i%3)
			far[i] = float64((i*int(seed+7))%5) - 2
		}
		return Distance(a, near, 5) <= Distance(a, far, 5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
