package fleet

import (
	"fmt"
	"sort"
	"strings"

	"psbox/internal/sim"
)

// Injection is one planned chaos fault against a specific (shard, attempt).
type Injection struct {
	Attempt int
	Kind    FailureKind // FailPanic (kill) or FailHang
	Quantum int         // the fault fires just before this quantum (1-based)
	Corrupt bool        // additionally bit-flip the stored checkpoint after this attempt fails
}

// Plan is a deterministic chaos schedule: which shards fail, on which
// attempts, how. A pure function of its seed and shape parameters, so a
// chaos run is exactly as reproducible as a clean one.
type Plan struct {
	seed    uint64
	byShard map[int][]Injection
}

// NewPlan draws a chaos schedule over a fleet: roughly 40% of shards (at
// least one, at most all) are afflicted, cycling through the taxonomy —
// kill, hang, kill-then-corrupt-checkpoint — so every supervision path is
// exercised whenever at least three shards are afflicted. Each afflicted
// shard fails its first 1..maxFailures attempts at seeded-random quantum
// boundaries and succeeds after (or quarantines, if the supervisor's
// retry budget runs out first). A corrupt-checkpoint shard plans exactly
// one kill, placed after the first checkpoint instant (ckptEvery), so a
// checkpoint provably exists to corrupt: its arc is kill → corrupt
// detected on resume → restart from zero.
func NewPlan(seed uint64, shards, quanta, ckptEvery, maxFailures int) *Plan {
	if shards < 1 || quanta < 2 {
		panic(fmt.Sprintf("fleet: chaos plan needs shards >= 1 and quanta >= 2, have %d/%d", shards, quanta))
	}
	if ckptEvery < 1 || ckptEvery >= quanta {
		ckptEvery = quanta / 2
	}
	if maxFailures < 1 {
		maxFailures = 1
	}
	p := &Plan{seed: seed, byShard: make(map[int][]Injection)}
	r := sim.NewRand(seed ^ 0xc4a05f1ee7)

	afflicted := (2 * shards) / 5
	if afflicted < 1 {
		afflicted = 1
	}
	// Seeded partial Fisher-Yates: pick `afflicted` distinct shards.
	perm := make([]int, shards)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < afflicted; i++ {
		j := i + r.Intn(shards-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	picked := append([]int(nil), perm[:afflicted]...)
	sort.Ints(picked)

	kinds := []FailureKind{FailPanic, FailHang, FailPanic}
	for i, shard := range picked {
		kind := kinds[i%len(kinds)]
		corrupt := i%len(kinds) == 2
		if corrupt {
			span := quanta - ckptEvery - 1
			if span < 1 {
				span = 1
			}
			p.byShard[shard] = append(p.byShard[shard], Injection{
				Attempt: 0,
				Kind:    kind,
				Quantum: ckptEvery + 1 + r.Intn(span),
				Corrupt: true,
			})
			continue
		}
		fails := 1 + r.Intn(maxFailures)
		for a := 0; a < fails; a++ {
			p.byShard[shard] = append(p.byShard[shard], Injection{
				Attempt: a,
				Kind:    kind,
				Quantum: 1 + r.Intn(quanta-1),
			})
		}
	}
	return p
}

// PlanFromInjections builds an explicit plan — the unit tests' precision
// tool.
func PlanFromInjections(seed uint64, byShard map[int][]Injection) *Plan {
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	m := make(map[int][]Injection, len(byShard))
	for _, s := range shards {
		m[s] = append([]Injection(nil), byShard[s]...)
	}
	return &Plan{seed: seed, byShard: m}
}

// injectionFor returns the planned fault for (shard, attempt), nil when
// the attempt is meant to succeed. Nil-safe: a nil plan injects nothing.
func (p *Plan) injectionFor(shard, attempt int) *Injection {
	if p == nil {
		return nil
	}
	for i := range p.byShard[shard] {
		if p.byShard[shard][i].Attempt == attempt {
			return &p.byShard[shard][i]
		}
	}
	return nil
}

// Describe renders the plan in the stable form embedded in the merged
// fleet report, shards in ascending order.
func (p *Plan) Describe() string {
	if p == nil {
		return "chaos: off\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d afflicted=%d shards\n", p.seed, len(p.byShard))
	shards := make([]int, 0, len(p.byShard))
	for s := range p.byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		var parts []string
		for _, inj := range p.byShard[s] {
			part := fmt.Sprintf("attempt %d %s@q%d", inj.Attempt, chaosVerb(inj.Kind), inj.Quantum)
			if inj.Corrupt {
				part += "+corrupt-checkpoint"
			}
			parts = append(parts, part)
		}
		fmt.Fprintf(&b, "  shard %d: %s\n", s, strings.Join(parts, "; "))
	}
	return b.String()
}

func chaosVerb(k FailureKind) string {
	switch k {
	case FailPanic:
		return "kill"
	case FailHang:
		return "hang"
	default:
		return string(k)
	}
}
