//psbox:allow-nowallclock hung-shard watchdog deadlines and retry backoff are host-side supervision; no wall-clock value flows into simulated state or the merged report

// Package fleet is the fault-tolerant fleet supervisor: it runs N
// independently-seeded device simulations (shards) across a worker pool
// and makes the fleet robust to shard failure (DESIGN.md §"Fleet
// supervision").
//
// Each shard's *psbox.System stays single-threaded — the noconcurrency
// contract holds inside a shard — while the supervisor provides, around
// it:
//
//   - panic isolation: a recovered panic becomes a typed Failure, never a
//     process crash;
//   - a hung-shard watchdog: shards heartbeat their sim-time progress
//     after every quantum, and a shard that stalls past StallTimeout of
//     wall time is cancelled (cooperatively when it is blocked on the
//     cancel channel, by abandonment when it is wedged inside the event
//     loop);
//   - retry with capped exponential backoff that resumes from the shard's
//     last PSBX checkpoint — the psbox-soak replay-twin path: rebuild the
//     scenario, replay, byte-verify at the checkpoint instant — instead of
//     restarting from zero;
//   - graceful degradation: a shard that exhausts its retries is
//     quarantined, and the merged fleet report stays deterministic
//     regardless of completion order, worker count, or which retry attempt
//     succeeded, with quarantined shards listed and their absence
//     explicitly accounted as a coverage fraction (never silently
//     renormalized).
//
// A seeded chaos plan (Plan) injects shard kills, hangs, and checkpoint
// corruption deterministically, so the whole supervision path is itself
// reproducible and golden-testable.
package fleet

import (
	"fmt"
	"runtime"
	//psbox:allow-noconcurrency worker-pool WaitGroup and the Progress mutex; shard Systems never cross the pool boundary (goroutineconfine proves it)
	"sync"
	//psbox:allow-noconcurrency watchdog heartbeat is a typed atomic written by the attempt goroutine and polled by its supervisor
	"sync/atomic"
	"time"

	"psbox"
	"psbox/internal/sim"
)

// FailureKind classifies one shard failure (the taxonomy of DESIGN.md
// §"Fleet supervision").
type FailureKind string

const (
	// FailPanic is a recovered panic inside the shard's attempt: an
	// invariant violation, a model bug, or an injected chaos kill.
	FailPanic FailureKind = "panic"

	// FailHang is a watchdog cancellation: the shard made no sim-time
	// progress for StallTimeout of wall time.
	FailHang FailureKind = "hang"

	// FailCheckpointCorrupt covers both a checkpoint that fails CRC/framing
	// validation before a resume and a resume whose replay-twin
	// verification diverges from the checkpoint bytes. Either way the
	// checkpoint is discarded and the next attempt restarts from zero.
	FailCheckpointCorrupt FailureKind = "checkpoint-corrupt"
)

// Failure is one typed shard failure, recorded at the sim-time progress
// point the shard had deterministically reached.
type Failure struct {
	Shard   int
	Attempt int
	Kind    FailureKind
	At      sim.Time // sim-time progress when the attempt failed
	Msg     string
}

// String renders the failure in the stable one-line form the merged
// report uses.
func (f Failure) String() string {
	return fmt.Sprintf("shard %d attempt %d %s at %v: %s", f.Shard, f.Attempt, f.Kind, f.At, f.Msg)
}

// Builder constructs one shard's scenario: a fully-wired System ready to
// Run. It must be a pure function of (shard, seed, horizon) — every
// attempt of a shard rebuilds through it, and the replay-twin resume
// contract requires identical event sequences across attempts.
type Builder func(shard int, seed uint64, horizon sim.Duration) *psbox.System

// Config parameterizes one fleet run.
type Config struct {
	Shards  int          // number of device simulations
	Workers int          // worker goroutines; <=0 means NumCPU
	Horizon sim.Duration // per-shard simulated horizon
	Seed    uint64       // fleet seed; shard i runs with ShardSeed(Seed, i)

	// Quanta is how many sim-time steps a shard's horizon is cut into: the
	// heartbeat (and chaos-injection) granularity. Default 20.
	Quanta int

	// CheckpointEvery takes a PSBX checkpoint every this many quanta.
	// Default 5.
	CheckpointEvery int

	// MaxRetries bounds retries after the first attempt; 0 disables
	// retry, so any failure quarantines the shard immediately.
	MaxRetries int

	// BackoffBase is the host-side delay before the first retry of a
	// shard; it doubles per retry, capped at BackoffCap. Defaults
	// 10ms/500ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// StallTimeout is the hung-shard watchdog deadline: wall time without
	// sim-time progress before the attempt is cancelled. Default 30s.
	// PollEvery is the watchdog's check cadence (default StallTimeout/10).
	StallTimeout time.Duration
	PollEvery    time.Duration

	// Grace is how long a cancelled attempt gets to acknowledge the
	// cancellation before it is abandoned (its goroutine leaked, its
	// results discarded). Default 5s.
	Grace time.Duration

	// Build constructs shard scenarios; nil means DefaultScenario.
	Build Builder

	// Chaos, when non-nil, injects the plan's deterministic shard kills,
	// hangs, and checkpoint corruption.
	Chaos *Plan

	// Progress, when non-nil, is called after each shard reaches its
	// terminal outcome with the counts so far. Calls are serialized but
	// arrive in completion order — host-timing territory — so Progress is
	// for wall-clock reporting (progress bars, ETAs) only and must never
	// feed anything back into the run.
	Progress func(done, quarantined, total int)
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Quanta <= 0 {
		cfg.Quanta = 20
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 5
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffCap < cfg.BackoffBase {
		cfg.BackoffCap = 500 * time.Millisecond
		if cfg.BackoffCap < cfg.BackoffBase {
			cfg.BackoffCap = cfg.BackoffBase
		}
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = cfg.StallTimeout / 10
		if cfg.PollEvery < time.Millisecond {
			cfg.PollEvery = time.Millisecond
		}
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 5 * time.Second
	}
	if cfg.Build == nil {
		cfg.Build = DefaultScenario
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Shards < 1 {
		return fmt.Errorf("fleet: need at least one shard, have %d", cfg.Shards)
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("fleet: horizon must be positive, have %v", cfg.Horizon)
	}
	if cfg.Quanta < 2 {
		return fmt.Errorf("fleet: need at least 2 quanta, have %d", cfg.Quanta)
	}
	if cfg.CheckpointEvery > cfg.Quanta {
		return fmt.Errorf("fleet: CheckpointEvery %d exceeds Quanta %d: shards would never checkpoint", cfg.CheckpointEvery, cfg.Quanta)
	}
	return nil
}

// ShardSeed derives shard i's simulation seed from the fleet seed with a
// splitmix64 finalizer, so neighbouring shards get uncorrelated streams.
func ShardSeed(fleet uint64, shard int) uint64 {
	z := fleet + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ShardOutcome is one shard's terminal state: either a report (possibly
// after overcoming failures) or quarantine.
type ShardOutcome struct {
	Shard       int
	Seed        uint64
	Attempts    int
	Quarantined bool
	Failures    []Failure

	// ResumedFrom is the checkpoint instant the successful attempt
	// resumed from (0 when it ran from scratch). Meaningless when
	// quarantined.
	ResumedFrom sim.Time

	// Report holds the shard's deterministic summary; nil when
	// quarantined.
	Report *ShardReport
}

// Result is the whole fleet's outcome, ready for deterministic merging.
type Result struct {
	Cfg    Config
	Shards []ShardOutcome // indexed by shard ID
}

// Run executes the fleet: shards are dealt to Workers goroutines, each
// shard supervised through panic isolation, the hung-shard watchdog, and
// retry-with-resume. The returned Result is a pure function of the
// config's deterministic fields (seed, shards, horizon, quanta, retries,
// chaos plan) — never of Workers, completion order, or host timing.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{Cfg: cfg, Shards: make([]ShardOutcome, cfg.Shards)}
	//psbox:allow-noconcurrency shard IDs are dealt to the worker pool over this channel; the shard work itself stays single-threaded
	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done, quarantined := 0, 0
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		//psbox:allow-noconcurrency one worker goroutine per pool slot; each builds its shards' Systems inside runShard, sharing nothing but the jobs channel
		go func() {
			defer wg.Done()
			//psbox:allow-noconcurrency draining the job channel is how a worker claims shards; it closes when all IDs are dealt
			for shard := range jobs {
				// Each worker writes only its own shard's slot.
				res.Shards[shard] = runShard(cfg, shard)
				if cfg.Progress != nil {
					progressMu.Lock()
					done++
					if res.Shards[shard].Quarantined {
						quarantined++
					}
					cfg.Progress(done, quarantined, cfg.Shards)
					progressMu.Unlock()
				}
			}
		}()
	}
	for shard := 0; shard < cfg.Shards; shard++ {
		//psbox:allow-noconcurrency dealing plain shard IDs, not simulator state; ownership of anything confined never moves here
		jobs <- shard
	}
	close(jobs)
	wg.Wait()
	return res, nil
}

// shardCtl is the supervision channel between a worker and the attempt
// goroutine it watches.
type shardCtl struct {
	cancel    chan struct{} // closed by the watchdog to cancel the attempt
	heartbeat atomic.Int64  // sim-time (ns) of the last completed quantum
}

// superviseAttempt runs one attempt under the hung-shard watchdog. The
// attempt executes in its own goroutine; the worker polls its sim-time
// heartbeat and, once it stalls past StallTimeout, closes the cancel
// channel, waits Grace for the attempt to acknowledge, and otherwise
// abandons the goroutine (its System is private, so nothing it still
// touches is shared). The synthesized hang failure records the sim-time
// progress point — a quantum boundary, deterministic for a fixed chaos
// plan — never any wall-clock value.
func superviseAttempt(cfg Config, st *shardState, attempt int, resume *checkpointRec) attemptResult {
	//psbox:allow-noconcurrency the cancel channel is the watchdog's only signal into the attempt; closing it is the cooperative cancellation protocol
	ctl := &shardCtl{cancel: make(chan struct{})}
	//psbox:allow-noconcurrency buffered size 1 so an abandoned attempt's final send never blocks its goroutine forever
	done := make(chan attemptResult, 1)
	//psbox:allow-noconcurrency the attempt goroutine builds and owns its own System; only the attemptResult crosses back, via the done channel
	go func() { done <- st.runAttempt(attempt, resume, ctl) }()

	lastHB := ctl.heartbeat.Load()
	lastProgress := time.Now()
	for {
		//psbox:allow-noconcurrency watchdog poll loop: wait on the attempt result or the next heartbeat check, whichever is ready first
		select {
		//psbox:allow-noconcurrency receiving the attempt's result transfers it (and any checkpoint) back to the supervising worker
		case r := <-done:
			return r
		//psbox:allow-noconcurrency host-side poll tick; the watchdog deadline is supervision, not simulated time
		case <-time.After(cfg.PollEvery):
			hb := ctl.heartbeat.Load()
			if hb >= int64(cfg.Horizon) {
				// The sim clock has reached the horizon: there is no more
				// sim-time progress to watch for, only the deterministic
				// summarize step. Cancelling now would fabricate a hang out
				// of a slow host (e.g. under the race detector), so stop
				// watching and wait the attempt out.
				//psbox:allow-noconcurrency horizon reached: block for the attempt's deterministic summarize step
				return <-done
			}
			if hb != lastHB {
				lastHB, lastProgress = hb, time.Now()
				continue
			}
			if time.Since(lastProgress) < cfg.StallTimeout {
				continue
			}
			close(ctl.cancel)
			hung := attemptResult{failure: &Failure{
				Shard:   st.shard,
				Attempt: attempt,
				Kind:    FailHang,
				At:      sim.Time(lastHB),
				Msg:     fmt.Sprintf("no sim-time progress past %v; shard cancelled", sim.Time(lastHB)),
			}}
			//psbox:allow-noconcurrency post-cancel race: the attempt either acknowledges within Grace or is abandoned
			select {
			//psbox:allow-noconcurrency acknowledgment path: adopt the cancelled attempt's checkpoint for the retry
			case r := <-done:
				// The attempt acknowledged the cancel: keep any checkpoint
				// it took before stalling so the retry resumes, not
				// restarts. The hang failure still supersedes its result.
				hung.ckpt = r.ckpt
			//psbox:allow-noconcurrency grace deadline for a wedged attempt; after it the goroutine is abandoned
			case <-time.After(cfg.Grace):
				// Wedged inside the event loop: abandon the goroutine. Its
				// eventual send lands in the buffered channel and is never
				// read, so none of its state is observed.
			}
			return hung
		}
	}
}

// runShard drives one shard to a terminal outcome: attempts run under
// supervision, failures accumulate, retries back off (capped doubling,
// the same shape as the accel watchdog and netsched retransmission
// schedules) and resume from the last validated checkpoint, and a shard
// that exhausts MaxRetries is quarantined.
func runShard(cfg Config, shard int) ShardOutcome {
	st := &shardState{cfg: cfg, shard: shard, seed: ShardSeed(cfg.Seed, shard)}
	out := ShardOutcome{Shard: shard, Seed: st.seed}
	backoff := cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		out.Attempts = attempt + 1

		// The resume-not-restart rule: a retry resumes from the last
		// checkpoint when one exists and validates; a checkpoint that
		// fails CRC/framing is this attempt's typed failure, and the
		// checkpoint is discarded so the next attempt restarts from zero.
		resume, failure := st.validatedResume(attempt)
		var res attemptResult
		if failure != nil {
			res = attemptResult{failure: failure}
		} else {
			res = superviseAttempt(cfg, st, attempt, resume)
		}
		if res.ckpt != nil && (st.last == nil || res.ckpt.At > st.last.At) {
			st.last = res.ckpt
		}
		if res.failure == nil {
			out.Report = res.report
			out.ResumedFrom = res.resumedFrom
			return out
		}
		out.Failures = append(out.Failures, *res.failure)
		if res.failure.Kind == FailCheckpointCorrupt {
			// Both corruption flavours — bad CRC before the attempt, replay
			// divergence during it — discard the checkpoint: the next
			// attempt restarts from zero rather than resuming from state
			// that cannot be trusted.
			st.last = nil
		}
		if inj := cfg.Chaos.injectionFor(shard, attempt); inj != nil && inj.Corrupt && st.last != nil {
			// Chaos checkpoint corruption: replace (never mutate — an
			// abandoned attempt may still hold the old bytes) the stored
			// checkpoint with a bit-flipped copy.
			st.last = &checkpointRec{At: st.last.At, Bytes: corruptCopy(st.last.Bytes)}
		}
		if attempt >= cfg.MaxRetries {
			out.Quarantined = true
			return out
		}
		time.Sleep(backoff)
		if backoff < cfg.BackoffCap {
			backoff *= 2
			if backoff > cfg.BackoffCap {
				backoff = cfg.BackoffCap
			}
		}
	}
}

// corruptCopy returns data with one mid-buffer bit flipped — enough to
// fail the PSBX CRC.
func corruptCopy(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) > 0 {
		out[len(out)/2] ^= 0x40
	}
	return out
}
