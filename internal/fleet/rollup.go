package fleet

import (
	"fmt"
	"io"
	"sort"

	"psbox/internal/obs"
	"psbox/internal/obs/profile"
	"psbox/internal/sim"
)

// Rollup is the fleet observability aggregate over completed shards: the
// merged metrics registries, the merged energy profile, the per-device
// battery-energy distribution, and blame-share outlier flags. Like the
// merged report it is a pure function of the per-shard reports, folded in
// ascending shard-ID order — never of Workers or completion order — so
// every rendering below byte-compares across worker counts. Quarantined
// shards are absent from every aggregate (coverage, not renormalization).
type Rollup struct {
	Merged  *Merged
	Shards  int
	Metrics *obs.MetricsDump

	// Profile is the fleet-wide folded energy tree in canonical order.
	Profile         []profile.Entry
	ProfileWindows  uint64
	ProfileDegraded uint64

	// EnergyDist is the distribution of per-device battery energy, one
	// observation per completed shard at 1 histogram tick ≡ 1 µJ (so
	// DeviceEnergyJ(ru.EnergyDist.P50()) is the median device's joules).
	EnergyDist *obs.Hist

	// Outliers flags devices whose blame share for some principal
	// deviates anomalously from the fleet, by median absolute deviation:
	// robust sigma = 1.4826 × MAD, flag when |share − median| > 3.5 σ.
	// A degenerate fleet (σ = 0) flags nothing. Sorted by (App, Shard).
	Outliers []Outlier
}

// Outlier is one flagged (device, principal) blame share.
type Outlier struct {
	Shard  int
	App    string
	Share  float64 // this device's share of its own blamed energy
	Median float64 // fleet median share for this principal
	Sigma  float64 // robust sigma (1.4826 × MAD) of the fleet's shares
}

// energyTick converts one device's battery joules into the histogram's
// tick domain (1 tick ≡ 1 µJ).
func energyTick(j float64) sim.Duration { return sim.Duration(int64(j*1e6 + 0.5)) }

// DeviceEnergyJ converts an EnergyDist quantile back to joules.
func DeviceEnergyJ(tick sim.Duration) float64 { return float64(tick) / 1e6 }

// madParams computes the median and robust sigma (1.4826 × MAD) of vals.
func madParams(vals []float64) (median, sigma float64) {
	med := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		n := len(s)
		if n%2 == 1 {
			return s[n/2]
		}
		return (s[n/2-1] + s[n/2]) / 2
	}
	median = med(vals)
	dev := make([]float64, len(vals))
	for i, v := range vals {
		if v >= median {
			dev[i] = v - median
		} else {
			dev[i] = median - v
		}
	}
	return median, 1.4826 * med(dev)
}

// Rollup folds the per-shard reports into the fleet observability
// aggregate, in ascending shard-ID order throughout.
func (r *Result) Rollup() *Rollup {
	ru := &Rollup{
		Merged:  r.Merge(),
		Shards:  len(r.Shards),
		Metrics: obs.NewMetricsDump(),
	}

	var profiles [][]profile.Entry
	type shardShare struct {
		shard int
		share float64
	}
	shares := make(map[string][]shardShare) // app → completed shards' blame shares
	var hist obs.Hist
	for _, sh := range r.Shards {
		if sh.Quarantined || sh.Report == nil {
			continue
		}
		rep := sh.Report
		if rep.Metrics != nil {
			ru.Metrics.Merge(rep.Metrics)
		}
		profiles = append(profiles, rep.Profile)
		ru.ProfileWindows += rep.ProfileWindows
		ru.ProfileDegraded += rep.ProfileDegraded
		hist.Observe(energyTick(rep.BatteryJ))

		var blamed float64
		for _, bl := range rep.Blame {
			blamed += bl.J
		}
		if blamed > 0 {
			for _, bl := range rep.Blame {
				shares[bl.App] = append(shares[bl.App], shardShare{sh.Shard, bl.J / blamed})
			}
		}
	}
	ru.Profile = profile.MergeEntries(profiles...)
	ru.EnergyDist = &hist

	apps := make([]string, 0, len(shares))
	for app := range shares {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		ss := shares[app]
		if len(ss) < 3 {
			// With fewer than three devices every share is its own median
			// neighbourhood; outlier flagging would be noise.
			continue
		}
		vals := make([]float64, len(ss))
		for i, s := range ss {
			vals[i] = s.share
		}
		median, sigma := madParams(vals)
		if sigma == 0 {
			continue
		}
		for _, s := range ss {
			dev := s.share - median
			if dev < 0 {
				dev = -dev
			}
			if dev > 3.5*sigma {
				ru.Outliers = append(ru.Outliers, Outlier{
					Shard: s.shard, App: app, Share: s.share, Median: median, Sigma: sigma,
				})
			}
		}
	}
	return ru
}

// WriteMetrics renders the rollup's canonical text form: the merged
// metrics registry, the per-device energy distribution, and the outlier
// flags.
func (ru *Rollup) WriteMetrics(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "-- fleet metrics rollup: %d/%d shards --\n",
		ru.Merged.Completed, ru.Shards); err != nil {
		return err
	}
	if err := ru.Metrics.Write(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "-- device energy distribution (battery J per completed shard) --\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "devices=%d p50=%.6f p95=%.6f p99=%.6f J\n",
		ru.EnergyDist.Count,
		DeviceEnergyJ(ru.EnergyDist.P50()),
		DeviceEnergyJ(ru.EnergyDist.P95()),
		DeviceEnergyJ(ru.EnergyDist.P99())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "-- blame-share outliers (|share-median| > 3.5 x 1.4826 x MAD) --\n"); err != nil {
		return err
	}
	if len(ru.Outliers) == 0 {
		if _, err := fmt.Fprintln(w, "(none)"); err != nil {
			return err
		}
	}
	for _, o := range ru.Outliers {
		if _, err := fmt.Fprintf(w, "shard %d app=%s share=%.6f median=%.6f sigma=%.6f\n",
			o.Shard, o.App, o.Share, o.Median, o.Sigma); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "-- profile: windows=%d degraded=%d stacks=%d --\n",
		ru.ProfileWindows, ru.ProfileDegraded, len(ru.Profile))
	return err
}

// WriteFolded writes the fleet profile as flamegraph-collapsed stacks.
func (ru *Rollup) WriteFolded(w io.Writer) error { return profile.WriteFolded(w, ru.Profile) }

// WriteTop writes the fleet profile's deterministic top-N table.
func (ru *Rollup) WriteTop(w io.Writer, n int) error { return profile.WriteTop(w, ru.Profile, n) }

// WriteProm renders the rollup in Prometheus text exposition format:
// fleet-level series first (shard counts, coverage, energy totals, the
// per-device energy distribution as a quantile summary, outlier and
// profile-window counts), then the merged metrics registry.
func (ru *Rollup) WriteProm(w io.Writer) error {
	m := ru.Merged
	p := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	steps := []func() error{
		func() error { return p("# TYPE psbox_fleet_shards gauge\npsbox_fleet_shards %d\n", ru.Shards) },
		func() error {
			return p("# TYPE psbox_fleet_shards_completed gauge\npsbox_fleet_shards_completed %d\n", m.Completed)
		},
		func() error {
			return p("# TYPE psbox_fleet_shards_quarantined gauge\npsbox_fleet_shards_quarantined %d\n",
				len(m.Quarantined))
		},
		func() error { return p("# TYPE psbox_fleet_coverage gauge\npsbox_fleet_coverage %.9g\n", m.Coverage) },
		func() error {
			return p("# TYPE psbox_fleet_battery_joules gauge\npsbox_fleet_battery_joules %.9g\n", m.BatteryJ)
		},
		func() error {
			if err := p("# TYPE psbox_fleet_blame_joules gauge\n"); err != nil {
				return err
			}
			for _, bl := range m.Blame {
				if err := p("psbox_fleet_blame_joules{app=\"%s\"} %.9g\n", bl.App, bl.J); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			if err := p("# TYPE psbox_fleet_device_energy_joules summary\n"); err != nil {
				return err
			}
			for _, q := range []struct {
				label string
				v     sim.Duration
			}{
				{"0.5", ru.EnergyDist.P50()},
				{"0.95", ru.EnergyDist.P95()},
				{"0.99", ru.EnergyDist.P99()},
			} {
				if err := p("psbox_fleet_device_energy_joules{quantile=\"%s\"} %.9g\n",
					q.label, DeviceEnergyJ(q.v)); err != nil {
					return err
				}
			}
			if err := p("psbox_fleet_device_energy_joules_sum %.9g\n", m.BatteryJ); err != nil {
				return err
			}
			return p("psbox_fleet_device_energy_joules_count %d\n", ru.EnergyDist.Count)
		},
		func() error {
			return p("# TYPE psbox_fleet_blame_outliers gauge\npsbox_fleet_blame_outliers %d\n", len(ru.Outliers))
		},
		func() error {
			return p("# TYPE psbox_fleet_profile_windows_total counter\npsbox_fleet_profile_windows_total %d\n",
				ru.ProfileWindows)
		},
		func() error {
			return p("# TYPE psbox_fleet_profile_degraded_windows_total counter\npsbox_fleet_profile_degraded_windows_total %d\n",
				ru.ProfileDegraded)
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return ru.Metrics.WriteProm(w)
}
