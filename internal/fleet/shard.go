package fleet

import (
	"fmt"

	"psbox"
	"psbox/internal/obs"
	"psbox/internal/sim"
	"psbox/internal/snapshot"
)

// checkpointRec is one saved PSBX checkpoint: the canonical bytes and the
// sim instant they were taken at.
type checkpointRec struct {
	At    sim.Time
	Bytes []byte
}

// attemptResult is everything one attempt hands back to its supervisor.
// Exactly one of report/failure is set. ckpt is the newest checkpoint the
// attempt took (nil if none) — the supervisor adopts it so later retries
// resume from the furthest validated point, even when this attempt
// ultimately failed.
type attemptResult struct {
	report      *ShardReport
	failure     *Failure
	ckpt        *checkpointRec
	resumedFrom sim.Time // checkpoint instant a successful resume verified at; 0 = ran from zero
}

// shardState is one shard's supervision state. It is owned by the worker
// goroutine driving the shard; attempt goroutines receive immutable
// arguments (the resume record) and report back only through their result.
type shardState struct {
	cfg   Config
	shard int
	seed  uint64
	last  *checkpointRec // newest validated (or chaos-corrupted) checkpoint
}

// validatedResume picks the attempt's resume point. A stored checkpoint
// that fails PSBX framing/CRC validation produces a typed
// checkpoint-corrupt failure (consuming this attempt) and is discarded, so
// the next attempt restarts from zero — corruption degrades the resume, it
// never crashes the fleet or silently resumes from garbage.
func (st *shardState) validatedResume(attempt int) (*checkpointRec, *Failure) {
	if st.last == nil {
		return nil, nil
	}
	if _, err := snapshot.Parse(st.last.Bytes); err != nil {
		f := &Failure{
			Shard:   st.shard,
			Attempt: attempt,
			Kind:    FailCheckpointCorrupt,
			At:      st.last.At,
			Msg:     fmt.Sprintf("stored checkpoint rejected (%v); discarding it, next attempt restarts from zero", err),
		}
		st.last = nil
		return nil, f
	}
	return st.last, nil
}

// runAttempt executes one attempt of the shard: rebuild the scenario,
// schedule the checkpoint cadence, step the horizon in quanta (reporting
// sim-time progress after each), and summarize the final state. A resume
// follows the psbox-soak replay-twin path: replay to the checkpoint
// instant, byte-verify the rebuilt state against the checkpoint, continue.
// Any panic — a chaos kill, an invariant violation, a model bug — is
// recovered into a typed failure; the process never crashes.
func (st *shardState) runAttempt(attempt int, resume *checkpointRec, ctl *shardCtl) (res attemptResult) {
	var latest *checkpointRec
	defer func() {
		if r := recover(); r != nil {
			res = attemptResult{
				failure: &Failure{
					Shard:   st.shard,
					Attempt: attempt,
					Kind:    FailPanic,
					At:      sim.Time(ctl.heartbeat.Load()),
					Msg:     fmt.Sprint(r),
				},
				ckpt: latest,
			}
		}
	}()

	inj := st.cfg.Chaos.injectionFor(st.shard, attempt)
	sys := st.cfg.Build(st.shard, st.seed, st.cfg.Horizon)

	// Checkpoint events are scheduled at fixed absolute instants before
	// any Run, so every attempt of the shard — fresh, crashed, resumed —
	// allocates the identical engine event sequence; only the callback
	// body differs per attempt (save vs. verify). The trace instant rides
	// every attempt, keeping traces byte-identical across the retry
	// protocol (the psbox-soak discipline).
	quantum := st.cfg.Horizon / sim.Duration(st.cfg.Quanta)
	var verifyErr error
	restored := resume == nil
	for q := st.cfg.CheckpointEvery; q <= st.cfg.Quanta; q += st.cfg.CheckpointEvery {
		tt := sim.Time(int64(quantum) * int64(q))
		sys.Eng.At(tt, func(sim.Time) {
			sys.Trace.Instant(obs.CatCkpt, "checkpoint", 0, int64(tt), "", "")
			switch {
			case resume != nil && tt == resume.At:
				verifyErr = sys.Restore(resume.Bytes)
				restored = true
			case resume == nil || tt > resume.At:
				latest = &checkpointRec{At: tt, Bytes: sys.Snapshot()}
			}
		})
	}

	for q := 1; q <= st.cfg.Quanta; q++ {
		if inj != nil && inj.Quantum == q {
			switch inj.Kind {
			case FailPanic:
				panic(fmt.Sprintf("chaos: shard %d attempt %d killed before quantum %d/%d",
					st.shard, attempt, q, st.cfg.Quanta))
			case FailHang:
				// Cooperative chaos hang: stall (no heartbeat progress)
				// until the watchdog cancels us. The supervisor synthesizes
				// the hang failure; whatever we return is superseded, but
				// the checkpoints we took before stalling ride along.
				//psbox:allow-noconcurrency chaos hang blocks on the supervisor's cancel channel until the watchdog fires
				<-ctl.cancel
				return attemptResult{
					failure: &Failure{Shard: st.shard, Attempt: attempt, Kind: FailHang,
						At: sim.Time(ctl.heartbeat.Load()), Msg: "chaos hang cancelled"},
					ckpt: latest,
				}
			}
		}
		//psbox:allow-noconcurrency non-blocking cancellation check between quanta; the default arm keeps the attempt single-threaded and running
		select {
		//psbox:allow-noconcurrency cooperative cancellation: the watchdog closed the channel, so stop at this quantum boundary
		case <-ctl.cancel:
			return attemptResult{
				failure: &Failure{Shard: st.shard, Attempt: attempt, Kind: FailHang,
					At: sim.Time(ctl.heartbeat.Load()), Msg: "cancelled by watchdog"},
				ckpt: latest,
			}
		default:
		}
		sys.Run(quantum)
		ctl.heartbeat.Store(int64(sys.Now()))
		if verifyErr != nil {
			return attemptResult{
				failure: &Failure{Shard: st.shard, Attempt: attempt, Kind: FailCheckpointCorrupt,
					At: resume.At, Msg: fmt.Sprintf("resume verification failed: %v; discarding checkpoint", verifyErr)},
				ckpt: nil,
			}
		}
	}
	// Integer division can leave a sub-quantum remainder before the
	// horizon; run it so every attempt ends at exactly Horizon.
	if rem := st.cfg.Horizon - quantum*sim.Duration(st.cfg.Quanta); rem > 0 {
		sys.Run(rem)
		ctl.heartbeat.Store(int64(sys.Now()))
	}
	if !restored {
		return attemptResult{
			failure: &Failure{Shard: st.shard, Attempt: attempt, Kind: FailCheckpointCorrupt,
				At: resume.At, Msg: "resume never reached the checkpoint instant (cadence mismatch); discarding checkpoint"},
			ckpt: nil,
		}
	}
	res = attemptResult{report: Summarize(sys, psbox.Time(0), sys.Now()), ckpt: latest}
	if resume != nil {
		res.resumedFrom = resume.At
	}
	return res
}
