//psbox:allow-noconcurrency tests exercise the host-side supervisor, which is concurrent by design
//psbox:allow-nowallclock tests tune the watchdog's host-side deadlines to keep hang scenarios fast

package fleet

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"psbox/internal/sim"
)

// testConfig is a small, fast fleet: 4 shards, 50 ms horizon, 10 quanta,
// checkpoints every 2 quanta, snappy watchdog tuning.
func testConfig(shards int) Config {
	return Config{
		Shards:          shards,
		Horizon:         50 * sim.Millisecond,
		Seed:            42,
		Quanta:          10,
		CheckpointEvery: 2,
		MaxRetries:      2,
		BackoffBase:     time.Millisecond,
		BackoffCap:      2 * time.Millisecond,
		StallTimeout:    150 * time.Millisecond,
		PollEvery:       10 * time.Millisecond,
		Grace:           2 * time.Second,
	}
}

// chaosAllKinds afflicts three of four shards, one per taxonomy kind:
// shard 1 killed once (after its first checkpoint, so it resumes), shard
// 2 hung once, shard 3 killed with checkpoint corruption.
func chaosAllKinds() *Plan {
	return PlanFromInjections(1, map[int][]Injection{
		1: {{Attempt: 0, Kind: FailPanic, Quantum: 7}},
		2: {{Attempt: 0, Kind: FailHang, Quantum: 5}},
		3: {{Attempt: 0, Kind: FailPanic, Quantum: 6, Corrupt: true}},
	})
}

func TestShardSeedStable(t *testing.T) {
	// The shard seeds are part of the merged report's wire stability;
	// changing the mixing function invalidates every fleet golden.
	want := []uint64{13679457532755275413, 2949826092126892291, 5139283748462763858}
	for i, w := range want {
		if got := ShardSeed(42, i); got != w {
			t.Errorf("ShardSeed(42, %d) = %d, want %d", i, got, w)
		}
	}
	if ShardSeed(42, 0) == ShardSeed(43, 0) {
		t.Error("different fleet seeds produced the same shard seed")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Shards: 0, Horizon: sim.Millisecond}); err == nil {
		t.Error("Run accepted zero shards")
	}
	if _, err := Run(Config{Shards: 1, Horizon: 0}); err == nil {
		t.Error("Run accepted a zero horizon")
	}
	if _, err := Run(Config{Shards: 1, Horizon: sim.Millisecond, Quanta: 4, CheckpointEvery: 9}); err == nil {
		t.Error("Run accepted CheckpointEvery > Quanta")
	}
}

// TestDeterministicAcrossWorkers is the acceptance core: the same chaos
// fleet must render byte-identically at one worker and at several.
func TestDeterministicAcrossWorkers(t *testing.T) {
	var reports []string
	for _, workers := range []int{1, 4} {
		cfg := testConfig(4)
		cfg.Workers = workers
		cfg.Chaos = chaosAllKinds()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, res.Format())
	}
	if reports[0] != reports[1] {
		t.Errorf("merged report differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s",
			reports[0], reports[1])
	}
}

// TestChaosRecoveryMatchesClean checks the resume-not-restart contract
// end to end: when every afflicted shard recovers within its retry
// budget, the chaos fleet's rollup is bit-identical to the clean fleet's
// — retries and resumes leave no residue in the merged accounting.
func TestChaosRecoveryMatchesClean(t *testing.T) {
	clean, err := Run(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	cfg.Chaos = chaosAllKinds()
	chaos, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chaos.Shards {
		if chaos.Shards[i].Quarantined {
			t.Fatalf("shard %d quarantined; plan meant every shard to recover: %v",
				i, chaos.Shards[i].Failures)
		}
		if !reflect.DeepEqual(clean.Shards[i].Report, chaos.Shards[i].Report) {
			t.Errorf("shard %d report differs between clean and recovered-chaos runs", i)
		}
	}
	if !reflect.DeepEqual(clean.Merge(), chaos.Merge()) {
		t.Error("merged rollup differs between clean and recovered-chaos fleets")
	}
}

// TestKillResumesFromCheckpoint: a shard killed after its first
// checkpoint must retry, resume from that checkpoint (not zero), and
// report a recovered panic.
func TestKillResumesFromCheckpoint(t *testing.T) {
	cfg := testConfig(2)
	cfg.Chaos = PlanFromInjections(1, map[int][]Injection{
		1: {{Attempt: 0, Kind: FailPanic, Quantum: 7}},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Shards[1]
	if sh.Attempts != 2 || sh.Quarantined || sh.Report == nil {
		t.Fatalf("shard 1: attempts=%d quarantined=%v report=%v", sh.Attempts, sh.Quarantined, sh.Report != nil)
	}
	if len(sh.Failures) != 1 || sh.Failures[0].Kind != FailPanic {
		t.Fatalf("shard 1 failures = %v, want one recovered panic", sh.Failures)
	}
	// Kill before quantum 7; checkpoints every 2 quanta of 5 ms → the
	// newest checkpoint at the kill is quantum 6 = 30 ms.
	if want := sim.Time(30 * int64(sim.Millisecond)); sh.ResumedFrom != want {
		t.Errorf("resumed from %v, want %v", sh.ResumedFrom, want)
	}
	if !strings.Contains(sh.Failures[0].Msg, "chaos: shard 1 attempt 0 killed") {
		t.Errorf("panic message not propagated: %q", sh.Failures[0].Msg)
	}
}

// TestHangWatchdog: a chaos hang must be cancelled by the watchdog at a
// deterministic sim-time progress point and retried to success.
func TestHangWatchdog(t *testing.T) {
	cfg := testConfig(2)
	cfg.Chaos = PlanFromInjections(1, map[int][]Injection{
		0: {{Attempt: 0, Kind: FailHang, Quantum: 5}},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Shards[0]
	if sh.Quarantined || sh.Report == nil || len(sh.Failures) != 1 {
		t.Fatalf("shard 0: quarantined=%v failures=%v", sh.Quarantined, sh.Failures)
	}
	f := sh.Failures[0]
	if f.Kind != FailHang {
		t.Fatalf("failure kind = %s, want hang", f.Kind)
	}
	// Hang before quantum 5 → the shard last heartbeat at quantum 4 of a
	// 5 ms quantum = 20 ms. The watchdog's record must carry that sim
	// progress point, never a wall-clock value.
	if want := sim.Time(20 * int64(sim.Millisecond)); f.At != want {
		t.Errorf("hang recorded at %v, want %v", f.At, want)
	}
}

// TestCorruptCheckpointArc: a kill with checkpoint corruption must
// produce the full degradation arc — panic, then a typed
// checkpoint-corrupt failure on the resume attempt, then success from
// zero — and still converge to the clean report.
func TestCorruptCheckpointArc(t *testing.T) {
	cfg := testConfig(2)
	cfg.Chaos = PlanFromInjections(1, map[int][]Injection{
		1: {{Attempt: 0, Kind: FailPanic, Quantum: 7, Corrupt: true}},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := res.Shards[1]
	if sh.Quarantined || sh.Report == nil {
		t.Fatalf("shard 1 did not recover: %v", sh.Failures)
	}
	if sh.Attempts != 3 || len(sh.Failures) != 2 {
		t.Fatalf("attempts=%d failures=%v, want 3 attempts with panic + checkpoint-corrupt", sh.Attempts, sh.Failures)
	}
	if sh.Failures[0].Kind != FailPanic || sh.Failures[1].Kind != FailCheckpointCorrupt {
		t.Fatalf("failure kinds = %s, %s; want panic then checkpoint-corrupt", sh.Failures[0].Kind, sh.Failures[1].Kind)
	}
	if sh.ResumedFrom != 0 {
		t.Errorf("final attempt resumed from %v, want a from-zero restart after discarding the corrupt checkpoint", sh.ResumedFrom)
	}
	clean, err := Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Shards[1].Report, sh.Report) {
		t.Error("report after the corrupt-checkpoint arc differs from the clean run's")
	}
}

// TestQuarantineCoverage: a shard that fails every attempt is
// quarantined, excluded from the rollup, and accounted as reduced
// coverage — the survivors' numbers must match a clean fleet's minus
// exactly that shard.
func TestQuarantineCoverage(t *testing.T) {
	cfg := testConfig(3)
	cfg.Chaos = PlanFromInjections(1, map[int][]Injection{
		2: {
			{Attempt: 0, Kind: FailPanic, Quantum: 3},
			{Attempt: 1, Kind: FailPanic, Quantum: 3},
			{Attempt: 2, Kind: FailPanic, Quantum: 3},
		},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shards[2].Quarantined || res.Shards[2].Report != nil {
		t.Fatalf("shard 2 should be quarantined without a report: %+v", res.Shards[2])
	}
	m := res.Merge()
	if m.Completed != 2 || len(m.Quarantined) != 1 || m.Quarantined[0] != 2 {
		t.Fatalf("merge: completed=%d quarantined=%v", m.Completed, m.Quarantined)
	}
	if want := 2.0 / 3.0; m.Coverage != want {
		t.Errorf("coverage = %v, want %v", m.Coverage, want)
	}
	clean, err := Run(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	want := clean.Shards[0].Report.BatteryJ + clean.Shards[1].Report.BatteryJ
	if m.BatteryJ != want {
		t.Errorf("rollup battery = %v J, want the two survivors' %v J (no renormalization)", m.BatteryJ, want)
	}
	if !strings.Contains(res.Format(), "quarantined: [2]") {
		t.Error("merged report does not list the quarantined shard")
	}
}

// TestRetriesDisabledDegrades: with retry off, every afflicted shard
// quarantines immediately, and the fleet still completes and reports
// deterministically.
func TestRetriesDisabledDegrades(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(4)
		cfg.MaxRetries = 0
		cfg.Workers = 3
		cfg.Chaos = chaosAllKinds()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	m := res.Merge()
	if want := []int{1, 2, 3}; !reflect.DeepEqual(m.Quarantined, want) {
		t.Fatalf("quarantined = %v, want %v", m.Quarantined, want)
	}
	for _, sh := range res.Shards {
		if sh.Attempts != 1 {
			t.Errorf("shard %d ran %d attempts with retries disabled", sh.Shard, sh.Attempts)
		}
	}
	if res.Format() != run().Format() {
		t.Error("degraded fleet report is not reproducible")
	}
}

// TestNewPlanDeterministic: the drawn chaos schedule is a pure function
// of its seed, covers all three taxonomy kinds at sufficient fleet size,
// and places corrupt kills after the first checkpoint.
func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(7, 10, 20, 5, 3)
	b := NewPlan(7, 10, 20, 5, 3)
	if a.Describe() != b.Describe() {
		t.Error("same seed drew different chaos plans")
	}
	if NewPlan(8, 10, 20, 5, 3).Describe() == a.Describe() {
		t.Error("different seeds drew identical chaos plans")
	}
	kinds := map[string]bool{}
	corrupt := 0
	for shard, injs := range a.byShard {
		for _, inj := range injs {
			kinds[chaosVerb(inj.Kind)] = true
			if inj.Corrupt {
				corrupt++
				if inj.Quantum <= 5 {
					t.Errorf("shard %d corrupt kill at quantum %d, before the first checkpoint (q5)", shard, inj.Quantum)
				}
			}
		}
	}
	if !kinds["kill"] || !kinds["hang"] || corrupt == 0 {
		t.Errorf("plan misses taxonomy coverage: kinds=%v corrupt=%d\n%s", kinds, corrupt, a.Describe())
	}
	if p := (*Plan)(nil); p.injectionFor(0, 0) != nil || p.Describe() != "chaos: off\n" {
		t.Error("nil plan must inject nothing and describe as off")
	}
}

// TestChurnScenarioDeterministicAcrossWorkers runs the sandbox-churn
// workload — session admission, throttling, kills, restarts, and
// quarantine live on every shard — under the all-kinds chaos plan at one
// worker and at four. Shard resume replays through the session manager's
// checkpoint section, so any nondeterminism in its snapshot or its
// enforcement schedule surfaces as a merged-report mismatch.
func TestChurnScenarioDeterministicAcrossWorkers(t *testing.T) {
	var reports []string
	for _, workers := range []int{1, 4} {
		cfg := testConfig(4)
		cfg.Workers = workers
		cfg.Build = ChurnScenario
		cfg.Chaos = chaosAllKinds()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		reports = append(reports, res.Format())
	}
	if reports[0] != reports[1] {
		t.Errorf("churn merged report differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s",
			reports[0], reports[1])
	}
}
