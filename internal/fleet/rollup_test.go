//psbox:allow-noconcurrency tests exercise the host-side supervisor, which is concurrent by design
//psbox:allow-nowallclock tests tune the watchdog's host-side deadlines to keep hang scenarios fast

package fleet

import (
	"strings"
	"testing"

	"psbox/internal/obs"
	"psbox/internal/obs/profile"
)

// renderRollup captures every rollup rendering in one string, the full
// surface the worker-count determinism contract covers.
func renderRollup(t *testing.T, res *Result) string {
	t.Helper()
	ru := res.Rollup()
	var b strings.Builder
	if err := ru.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if err := ru.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if err := ru.WriteTop(&b, 10); err != nil {
		t.Fatal(err)
	}
	if err := ru.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRollupDeterministicAcrossWorkers extends the acceptance core to the
// observability rollup: metrics, folded stacks, top table, and Prometheus
// exposition must render byte-identically at one worker and at four, with
// chaos in play.
func TestRollupDeterministicAcrossWorkers(t *testing.T) {
	var renders []string
	for _, workers := range []int{1, 4} {
		cfg := testConfig(4)
		cfg.Workers = workers
		cfg.Chaos = chaosAllKinds()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		renders = append(renders, renderRollup(t, res))
	}
	if renders[0] != renders[1] {
		t.Errorf("rollup differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s",
			renders[0], renders[1])
	}
	// The profiled scenario must actually produce a tree and metrics.
	if !strings.Contains(renders[0], ";cpu ") {
		t.Errorf("rollup has no cpu stacks:\n%s", renders[0])
	}
	if !strings.Contains(renders[0], "psbox_fleet_coverage 1\n") {
		t.Errorf("rollup missing full coverage:\n%s", renders[0])
	}
}

// TestRollupExcludesQuarantined: with retries disabled, afflicted shards
// quarantine and must vanish from every aggregate — device count,
// coverage, profile windows — rather than skew them.
func TestRollupExcludesQuarantined(t *testing.T) {
	cfg := testConfig(4)
	cfg.MaxRetries = 0
	cfg.Chaos = chaosAllKinds()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ru := res.Rollup()
	if got := len(ru.Merged.Quarantined); got != 3 {
		t.Fatalf("quarantined = %v, want 3 shards", ru.Merged.Quarantined)
	}
	if ru.EnergyDist.Count != uint64(ru.Merged.Completed) {
		t.Errorf("energy distribution has %d devices, want %d completed",
			ru.EnergyDist.Count, ru.Merged.Completed)
	}
	single, err := Run(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := single.Shards[0].Report.ProfileWindows; ru.ProfileWindows != want {
		t.Errorf("rollup profile windows = %d, want the lone completed shard's %d",
			ru.ProfileWindows, want)
	}
}

// report builds a minimal hand-rolled shard report for outlier tests.
func report(batteryJ float64, blame map[string]float64) *ShardReport {
	rep := &ShardReport{BatteryJ: batteryJ, Metrics: obs.NewMetricsDump()}
	apps := make([]string, 0, len(blame))
	for app := range blame {
		apps = append(apps, app)
	}
	// Sorted like Summarize produces it.
	for i := 0; i < len(apps); i++ {
		for j := i + 1; j < len(apps); j++ {
			if apps[j] < apps[i] {
				apps[i], apps[j] = apps[j], apps[i]
			}
		}
	}
	for _, app := range apps {
		rep.Blame = append(rep.Blame, AppBlame{App: app, J: blame[app]})
	}
	return rep
}

// TestRollupOutlierFlagging: nine conforming devices and one whose blame
// share for "rogue" quadruples; MAD flagging must name exactly that
// (device, principal) pair — and a uniform fleet (sigma 0) flags nothing.
func TestRollupOutlierFlagging(t *testing.T) {
	res := &Result{}
	for i := 0; i < 10; i++ {
		rogue := 0.1 + float64(i%3)*0.01 // mild conforming jitter
		if i == 7 {
			rogue = 0.4
		}
		res.Shards = append(res.Shards, ShardOutcome{
			Shard:  i,
			Report: report(0.5, map[string]float64{"rogue": rogue, "base": 1 - rogue}),
		})
	}
	ru := res.Rollup()
	if len(ru.Outliers) != 2 {
		t.Fatalf("outliers = %+v, want shard 7 flagged for both principals", ru.Outliers)
	}
	for _, o := range ru.Outliers {
		if o.Shard != 7 {
			t.Errorf("flagged shard %d app=%s, want only shard 7", o.Shard, o.App)
		}
	}

	uniform := &Result{}
	for i := 0; i < 10; i++ {
		uniform.Shards = append(uniform.Shards, ShardOutcome{
			Shard:  i,
			Report: report(0.5, map[string]float64{"a": 0.25, "b": 0.75}),
		})
	}
	if ru := uniform.Rollup(); len(ru.Outliers) != 0 {
		t.Errorf("uniform fleet flagged outliers: %+v", ru.Outliers)
	}

	tiny := &Result{}
	for i := 0; i < 2; i++ {
		tiny.Shards = append(tiny.Shards, ShardOutcome{
			Shard:  i,
			Report: report(0.5, map[string]float64{"a": 0.1 + 0.8*float64(i)}),
		})
	}
	if ru := tiny.Rollup(); len(ru.Outliers) != 0 {
		t.Errorf("two-device fleet flagged outliers: %+v", ru.Outliers)
	}
}

func TestMadParams(t *testing.T) {
	med, sigma := madParams([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Errorf("median = %v, want 3", med)
	}
	if want := 1.4826 * 1; sigma != want {
		t.Errorf("sigma = %v, want %v", sigma, want)
	}
	if _, sigma := madParams([]float64{5, 5, 5, 5}); sigma != 0 {
		t.Errorf("uniform sigma = %v, want 0", sigma)
	}
}

// TestRollupEnergyDistQuantiles: per-device battery joules land in the
// 1 tick ≡ 1 µJ domain, so quantiles convert back to joules in the right
// bucket neighbourhood.
func TestRollupEnergyDistQuantiles(t *testing.T) {
	res := &Result{}
	for i := 0; i < 20; i++ {
		res.Shards = append(res.Shards, ShardOutcome{
			Shard:  i,
			Report: report(0.05, nil), // 50 mJ → 50_000 ticks → le100us bucket
		})
	}
	ru := res.Rollup()
	p50 := DeviceEnergyJ(ru.EnergyDist.P50())
	if p50 <= 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %v J, want within the 50 mJ observation's bucket (10 mJ, 100 mJ]", p50)
	}
	if ru.EnergyDist.Count != 20 {
		t.Errorf("device count = %d, want 20", ru.EnergyDist.Count)
	}
}

// TestProgressCallback: the hook fires once per terminal shard with
// monotone counts, serialized by the supervisor, and sees the final
// tallies on its last call.
func TestProgressCallback(t *testing.T) {
	cfg := testConfig(4)
	cfg.Workers = 4
	cfg.MaxRetries = 0
	cfg.Chaos = chaosAllKinds()
	var dones, quars []int
	cfg.Progress = func(done, quarantined, total int) {
		if total != 4 {
			t.Errorf("total = %d, want 4", total)
		}
		dones = append(dones, done)
		quars = append(quars, quarantined)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 4 {
		t.Fatalf("progress fired %d times, want 4", len(dones))
	}
	for i := range dones {
		if dones[i] != i+1 {
			t.Fatalf("done sequence %v not monotone", dones)
		}
	}
	if quars[3] != 3 {
		t.Errorf("final quarantined = %d, want 3", quars[3])
	}
}

// TestRollupMergesShardMetricsAndProfiles: hand-built reports with known
// metrics and profile entries sum across shards in ascending order.
func TestRollupMergesShardMetricsAndProfiles(t *testing.T) {
	mkRep := func(n int64) *ShardReport {
		rep := report(0.1, nil)
		rep.Metrics.Counters[obs.Key{Name: "sched.switches"}] = n
		rep.Profile = []profile.Entry{{App: "vision", Comp: "sched", Rail: "cpu", J: float64(n)}}
		rep.ProfileWindows = uint64(n)
		return rep
	}
	res := &Result{Shards: []ShardOutcome{
		{Shard: 0, Report: mkRep(2)},
		{Shard: 1, Quarantined: true}, // must not contribute
		{Shard: 2, Report: mkRep(3)},
	}}
	ru := res.Rollup()
	if got := ru.Metrics.Counters[obs.Key{Name: "sched.switches"}]; got != 5 {
		t.Errorf("merged counter = %d, want 5", got)
	}
	if len(ru.Profile) != 1 || ru.Profile[0].J != 5 {
		t.Errorf("merged profile = %+v, want one 5 J stack", ru.Profile)
	}
	if ru.ProfileWindows != 5 {
		t.Errorf("profile windows = %d, want 5", ru.ProfileWindows)
	}
}
