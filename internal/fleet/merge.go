package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Merged is the fleet-level rollup over completed shards. Quarantined
// shards are excluded and surfaced as reduced coverage — the JetsonLEAP
// discipline of bounded-error measurement under partial data: an absent
// shard makes the totals explicitly partial, it never silently inflates
// the survivors' shares.
type Merged struct {
	Completed   int
	Quarantined []int // shard IDs, ascending
	Coverage    float64

	BatteryJ    float64
	Blame       []AppBlame // summed over completed shards, sorted by name
	Boxes       []MergedBox
	Degraded    int
	Faults      int
	Audits      uint64
	TraceEvents uint64
}

// MergedBox aggregates one app's sandbox reads across completed shards.
type MergedBox struct {
	App      string
	DirectJ  float64
	EstJ     float64
	Gaps     int
	Degraded int // shards in which this box went degraded
}

// Merge folds the per-shard outcomes into the fleet rollup. Iteration is
// by ascending shard ID and sorted app name throughout, so the result —
// including every float sum — is independent of completion order and
// worker count.
func (r *Result) Merge() *Merged {
	m := &Merged{}
	blame := make(map[string]float64)
	boxes := make(map[string]*MergedBox)
	for _, sh := range r.Shards {
		if sh.Quarantined || sh.Report == nil {
			m.Quarantined = append(m.Quarantined, sh.Shard)
			continue
		}
		m.Completed++
		rep := sh.Report
		m.BatteryJ += rep.BatteryJ
		m.Degraded += rep.Degraded
		m.Faults += rep.Faults
		m.Audits += rep.Audits
		m.TraceEvents += rep.TraceEvents
		for _, bl := range rep.Blame {
			blame[bl.App] += bl.J
		}
		for _, bx := range rep.Boxes {
			mb := boxes[bx.App]
			if mb == nil {
				mb = &MergedBox{App: bx.App}
				boxes[bx.App] = mb
			}
			mb.DirectJ += bx.DirectJ
			mb.EstJ += bx.EstJ
			mb.Gaps += bx.Gaps
			if bx.Degraded {
				mb.Degraded++
			}
		}
	}
	if len(r.Shards) > 0 {
		m.Coverage = float64(m.Completed) / float64(len(r.Shards))
	}
	names := make([]string, 0, len(blame))
	for name := range blame {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Blame = append(m.Blame, AppBlame{App: name, J: blame[name]})
	}
	names = names[:0]
	for name := range boxes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Boxes = append(m.Boxes, *boxes[name])
	}
	return m
}

// Format renders the canonical merged fleet report. It is deterministic
// for a fixed (seed, shards, horizon, quanta, retries, chaos plan): it
// contains only simulated quantities and typed failure records — never
// worker count, wall-clock time, or completion order — so byte comparison
// across worker counts IS the parallel-determinism check.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "psbox-fleet seed=%d shards=%d horizon=%v quanta=%d ckpt-every=%d retries=%d\n",
		r.Cfg.Seed, r.Cfg.Shards, r.Cfg.Horizon, r.Cfg.Quanta, r.Cfg.CheckpointEvery, r.Cfg.MaxRetries)
	b.WriteString(r.Cfg.Chaos.Describe())

	fmt.Fprintln(&b, "-- shards --")
	for _, sh := range r.Shards {
		switch {
		case sh.Quarantined:
			fmt.Fprintf(&b, "shard %d seed=%d QUARANTINED attempts=%d\n", sh.Shard, sh.Seed, sh.Attempts)
		case sh.ResumedFrom > 0:
			fmt.Fprintf(&b, "shard %d seed=%d ok attempts=%d resumed@%v\n", sh.Shard, sh.Seed, sh.Attempts, sh.ResumedFrom)
		default:
			fmt.Fprintf(&b, "shard %d seed=%d ok attempts=%d\n", sh.Shard, sh.Seed, sh.Attempts)
		}
	}

	fmt.Fprintln(&b, "-- failures --")
	any := false
	for _, sh := range r.Shards {
		for _, f := range sh.Failures {
			fmt.Fprintf(&b, "%s\n", f)
			any = true
		}
	}
	if !any {
		fmt.Fprintln(&b, "(none)")
	}

	m := r.Merge()
	fmt.Fprintf(&b, "-- rollup: %d/%d shards completed, coverage %.6f --\n",
		m.Completed, len(r.Shards), m.Coverage)
	if m.Completed > 0 {
		fmt.Fprintf(&b, "battery total=%.9f J mean-per-shard=%.9f J\n",
			m.BatteryJ, m.BatteryJ/float64(m.Completed))
		for _, bl := range m.Blame {
			fmt.Fprintf(&b, "blame %-8s %.9f J\n", bl.App, bl.J)
		}
		for _, bx := range m.Boxes {
			fmt.Fprintf(&b, "box   %-8s direct=%.9f J estimated=%.9f J gaps=%d degraded=%d/%d shards\n",
				bx.App, bx.DirectJ, bx.EstJ, bx.Gaps, bx.Degraded, m.Completed)
		}
		fmt.Fprintf(&b, "degraded-windows=%d faults=%d audits=%d trace-events=%d\n",
			m.Degraded, m.Faults, m.Audits, m.TraceEvents)
	}
	if len(m.Quarantined) > 0 {
		ids := make([]string, len(m.Quarantined))
		for i, id := range m.Quarantined {
			ids[i] = fmt.Sprint(id)
		}
		fmt.Fprintf(&b, "quarantined: [%s] — excluded from every total above; their energy is missing coverage, not renormalized blame\n",
			strings.Join(ids, " "))
	}
	return b.String()
}
