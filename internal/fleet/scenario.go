package fleet

import (
	"sort"

	"psbox"
	"psbox/internal/faults"
	"psbox/internal/obs"
	"psbox/internal/obs/profile"
	"psbox/internal/sandbox"
	"psbox/internal/sim"
)

// DefaultScenario is the fleet's canonical per-shard workload: the mobile
// platform (CPU + GPU + DSP + WiFi + display + GPS + DRAM) under the
// three-app mix of the soak harness — a sandboxed GPU renderer, a
// sandboxed uplink streamer, an unsandboxed background grinder — plus a
// shard-seeded randomized fault campaign, tracing, accel watchdogs, and a
// periodic invariant audit. A pure function of (seed, horizon): every
// attempt of a shard rebuilds the identical event sequence.
func DefaultScenario(shard int, seed uint64, horizon sim.Duration) *psbox.System {
	sys := psbox.NewMobile(seed)
	sys.EnableProfiling()
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU).Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 8e5},
		psbox.Send{Socket: sock, Bytes: 24_000},
		psbox.AwaitNet{MaxBacklog: 48_000},
		psbox.Sleep{D: 6 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi).Enter()

	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("grind", 1, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.SubmitAccel{Dev: "dsp", Kind: "fft", Work: 4e4, DynW: 0.5},
		psbox.Sleep{D: 9 * psbox.Millisecond},
	))

	sys.Faults.Randomize(faults.Campaign{
		Horizon:       horizon,
		AccelHangs:    1,
		NICFlaps:      1,
		DVFSStalls:    1,
		MeterDropouts: 2,
	})
	sys.SetAuditEvery(horizon / 10)
	return sys
}

// ChurnScenario is the fleet's sandbox-churn workload: every shard hosts
// a runtime session manager driving live session churn — a finite steady
// that retires, a bursty pulse, a budget hog that climbs the throttle →
// kill → restart ladder, and a crash-looper the fault layer kills until
// the circuit breaker quarantines it — plus late arrivals (one of them
// over-budget, so admission control has a rejection to make). The
// enforcement cadence scales with the horizon so the whole lifecycle
// fits any shard length. A pure function of (seed, horizon), like
// DefaultScenario: every attempt of a shard, clean or resumed from a
// checkpoint, rebuilds the identical event sequence.
func ChurnScenario(shard int, seed uint64, horizon sim.Duration) *psbox.System {
	sys := psbox.NewMobile(seed)
	sys.EnableProfiling()
	mgr := sys.Sandboxes()
	cfg := sandbox.DefaultConfig(6)
	cfg.Window = horizon / 20
	cfg.ThrottleAfter = 2
	cfg.KillAfter = 2
	cfg.BackoffBase = horizon / 50
	cfg.BackoffCap = horizon / 10
	cfg.BreakerWindow = horizon / 2
	mgr.SetConfig(cfg)

	steady := func(name string, budget float64) sandbox.Spec {
		step := horizon / 40
		var seq []psbox.Action
		for i := 0; i < 10; i++ {
			seq = append(seq, psbox.Compute{Cycles: 3e5}, psbox.Sleep{D: step})
		}
		return sandbox.Spec{Name: name, BudgetW: budget,
			Start: func(app *psbox.App) { app.Spawn("work", 0, psbox.Sequence(seq...)) }}
	}
	mustLaunch := func(spec sandbox.Spec) {
		if _, err := mgr.Launch(spec); err != nil {
			panic("fleet: churn resident rejected: " + err.Error())
		}
	}
	mustLaunch(steady("steady-0", 1.0))
	mustLaunch(sandbox.Spec{Name: "pulse-0", BudgetW: 0.8,
		Start: func(app *psbox.App) {
			app.Spawn("burst", 0, psbox.Loop(
				psbox.Compute{Cycles: 2e6},
				psbox.Sleep{D: horizon / 8},
			))
		}})
	mustLaunch(sandbox.Spec{Name: "hog-0", BudgetW: 0.3,
		Start: func(app *psbox.App) {
			app.Spawn("spin", 0, psbox.Loop(psbox.Compute{Cycles: 5e5}))
		}})
	mustLaunch(sandbox.Spec{Name: "crashloop-0", BudgetW: 0.8, PreserveData: true,
		Start: func(app *psbox.App) {
			app.Spawn("work", 0, psbox.ProgramFunc(func(env *psbox.Env) psbox.Action {
				env.Count("iters", 1)
				return psbox.Sleep{D: horizon / 100}
			}))
		}})

	// Session churn: a late steady (admitted as the first retires), and an
	// over-budget arrival admission control must reject. The seed jitters
	// the late arrival's instant so shards don't churn in lockstep.
	at := func(frac float64) psbox.Time {
		return psbox.Time(int64(float64(horizon)*frac) + int64(seed%5)*int64(horizon/200))
	}
	late := steady("steady-1", 1.0)
	sys.Eng.At(at(0.55), func(psbox.Time) { _, _ = mgr.Launch(late) })
	greedy := steady("greedy", 9.0)
	sys.Eng.At(at(0.60), func(psbox.Time) { _, _ = mgr.Launch(greedy) })

	// The crash campaign: three kills inside the breaker window quarantine
	// the crash-looper on the third.
	for _, frac := range []float64{0.30, 0.40, 0.48} {
		sys.Faults.CrashSessionAt(at(frac), "crashloop-0")
	}

	sys.SetAuditEvery(horizon / 10)
	return sys
}

// BoxRead is one sandbox's observed energy in a shard report.
type BoxRead struct {
	App      string
	DirectJ  float64
	EstJ     float64
	Gaps     int
	Degraded bool
}

// AppBlame is one principal's attributed battery energy over a shard's
// horizon ("kernel" collects kernel activity and the idle floor).
type AppBlame struct {
	App string
	J   float64
}

// ShardReport is one completed shard's deterministic summary: the rollup
// currency the fleet merge aggregates. It contains only simulated
// quantities — never wall-clock time, worker identity, or attempt count —
// so a shard's report is byte-identical whether it ran clean, resumed
// from a checkpoint, or succeeded on its last retry.
type ShardReport struct {
	BatteryJ    float64
	Boxes       []BoxRead  // sorted by app name
	Blame       []AppBlame // sorted by principal name
	Degraded    int        // attribution windows overlapping meter dropouts
	Faults      int        // injected faults that fired
	Audits      uint64     // periodic invariant audits
	TraceEvents uint64     // total events emitted on the obs bus

	// Metrics is the shard's metrics-registry dump (counters, gauges,
	// sim-time histograms); the fleet rollup merges these bucket-wise.
	Metrics *obs.MetricsDump

	// Profile is the shard's folded energy tree in canonical order, with
	// its window accounting; empty when the scenario never enabled
	// profiling.
	Profile         []profile.Entry
	ProfileWindows  uint64
	ProfileDegraded uint64
}

// Summarize renders a finished system into its shard report: sandbox
// reads, the battery rail's energy, and the power-attribution rollup
// (per-principal joules from the obs blame timeline) over [from, to).
func Summarize(sys *psbox.System, from, to sim.Time) *ShardReport {
	rep := &ShardReport{
		BatteryJ:    float64(sys.Meter.Energy("battery", from, to)),
		Faults:      len(sys.Faults.Log()),
		Audits:      sys.Audits(),
		TraceEvents: sys.Trace.Total(),
		Metrics:     sys.Trace.DumpMetrics(),
	}
	// Fold whatever the profiler hasn't seen yet, then capture the tree.
	// FoldProfile is a no-op for scenarios that never enabled profiling.
	sys.FoldProfile()
	rep.Profile = sys.Profile.Entries()
	rep.ProfileWindows = sys.Profile.Windows()
	rep.ProfileDegraded = sys.Profile.Degraded()
	for _, bx := range sys.Sandbox.Boxes() {
		direct, est, gaps := bx.ReadDetail()
		rep.Boxes = append(rep.Boxes, BoxRead{
			App:      bx.App().Name,
			DirectJ:  direct,
			EstJ:     est,
			Gaps:     gaps,
			Degraded: bx.Degraded(),
		})
	}
	sort.Slice(rep.Boxes, func(i, j int) bool { return rep.Boxes[i].App < rep.Boxes[j].App })

	names := map[int]string{0: "kernel"}
	for _, a := range sys.Kernel.Apps() {
		names[a.ID] = a.Name
	}
	// Attribution runs per component rail — spans are tagged with the rail
	// they drew on; the battery rail is the sum and carries no spans of its
	// own. Rails iterate in meter registration order, fixed at
	// construction, so the float accumulation order is deterministic.
	period := sys.Meter.Period().Seconds()
	joules := make(map[string]float64)
	for _, rail := range sys.Meter.Rails() {
		if rail == "battery" {
			continue
		}
		for _, bl := range sys.Blame(rail, from, to) {
			if bl.Degraded {
				rep.Degraded++
			}
			for _, sh := range bl.Shares {
				name, ok := names[sh.Owner]
				if !ok {
					name = "unknown"
				}
				//psbox:allow-energyaccum summing already-integrated attribution windows (share × sampled W × meter period) in fixed rail-then-window order, not raw power×dt
				joules[name] += sh.Frac * float64(bl.W) * period
			}
		}
	}
	blamed := make([]string, 0, len(joules))
	for name := range joules {
		blamed = append(blamed, name)
	}
	sort.Strings(blamed)
	for _, name := range blamed {
		rep.Blame = append(rep.Blame, AppBlame{App: name, J: joules[name]})
	}
	return rep
}
