package fleet

import (
	"sort"

	"psbox"
	"psbox/internal/faults"
	"psbox/internal/sim"
)

// DefaultScenario is the fleet's canonical per-shard workload: the mobile
// platform (CPU + GPU + DSP + WiFi + display + GPS + DRAM) under the
// three-app mix of the soak harness — a sandboxed GPU renderer, a
// sandboxed uplink streamer, an unsandboxed background grinder — plus a
// shard-seeded randomized fault campaign, tracing, accel watchdogs, and a
// periodic invariant audit. A pure function of (seed, horizon): every
// attempt of a shard rebuilds the identical event sequence.
func DefaultScenario(shard int, seed uint64, horizon sim.Duration) *psbox.System {
	sys := psbox.NewMobile(seed)
	sys.EnableTracing()
	sys.EnableAccelWatchdogs(psbox.DefaultWatchdogConfig())

	vision := sys.Kernel.NewApp("vision")
	vision.Spawn("render", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 3e4, DynW: 0.9},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 2},
		psbox.Sleep{D: 4 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(vision, psbox.HWCPU, psbox.HWGPU).Enter()

	stream := sys.Kernel.NewApp("stream")
	sock := stream.OpenSocket()
	stream.Spawn("uplink", 1, psbox.Loop(
		psbox.Compute{Cycles: 8e5},
		psbox.Send{Socket: sock, Bytes: 24_000},
		psbox.AwaitNet{MaxBacklog: 48_000},
		psbox.Sleep{D: 6 * psbox.Millisecond},
	))
	sys.Sandbox.MustCreate(stream, psbox.HWCPU, psbox.HWWiFi).Enter()

	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("grind", 1, psbox.Loop(
		psbox.Compute{Cycles: 3e6},
		psbox.SubmitAccel{Dev: "dsp", Kind: "fft", Work: 4e4, DynW: 0.5},
		psbox.Sleep{D: 9 * psbox.Millisecond},
	))

	sys.Faults.Randomize(faults.Campaign{
		Horizon:       horizon,
		AccelHangs:    1,
		NICFlaps:      1,
		DVFSStalls:    1,
		MeterDropouts: 2,
	})
	sys.SetAuditEvery(horizon / 10)
	return sys
}

// BoxRead is one sandbox's observed energy in a shard report.
type BoxRead struct {
	App      string
	DirectJ  float64
	EstJ     float64
	Gaps     int
	Degraded bool
}

// AppBlame is one principal's attributed battery energy over a shard's
// horizon ("kernel" collects kernel activity and the idle floor).
type AppBlame struct {
	App string
	J   float64
}

// ShardReport is one completed shard's deterministic summary: the rollup
// currency the fleet merge aggregates. It contains only simulated
// quantities — never wall-clock time, worker identity, or attempt count —
// so a shard's report is byte-identical whether it ran clean, resumed
// from a checkpoint, or succeeded on its last retry.
type ShardReport struct {
	BatteryJ    float64
	Boxes       []BoxRead  // sorted by app name
	Blame       []AppBlame // sorted by principal name
	Degraded    int        // attribution windows overlapping meter dropouts
	Faults      int        // injected faults that fired
	Audits      uint64     // periodic invariant audits
	TraceEvents uint64     // total events emitted on the obs bus
}

// Summarize renders a finished system into its shard report: sandbox
// reads, the battery rail's energy, and the power-attribution rollup
// (per-principal joules from the obs blame timeline) over [from, to).
func Summarize(sys *psbox.System, from, to sim.Time) *ShardReport {
	rep := &ShardReport{
		BatteryJ:    float64(sys.Meter.Energy("battery", from, to)),
		Faults:      len(sys.Faults.Log()),
		Audits:      sys.Audits(),
		TraceEvents: sys.Trace.Total(),
	}
	for _, bx := range sys.Sandbox.Boxes() {
		direct, est, gaps := bx.ReadDetail()
		rep.Boxes = append(rep.Boxes, BoxRead{
			App:      bx.App().Name,
			DirectJ:  direct,
			EstJ:     est,
			Gaps:     gaps,
			Degraded: bx.Degraded(),
		})
	}
	sort.Slice(rep.Boxes, func(i, j int) bool { return rep.Boxes[i].App < rep.Boxes[j].App })

	names := map[int]string{0: "kernel"}
	for _, a := range sys.Kernel.Apps() {
		names[a.ID] = a.Name
	}
	// Attribution runs per component rail — spans are tagged with the rail
	// they drew on; the battery rail is the sum and carries no spans of its
	// own. Rails iterate in meter registration order, fixed at
	// construction, so the float accumulation order is deterministic.
	period := sys.Meter.Period().Seconds()
	joules := make(map[string]float64)
	for _, rail := range sys.Meter.Rails() {
		if rail == "battery" {
			continue
		}
		for _, bl := range sys.Blame(rail, from, to) {
			if bl.Degraded {
				rep.Degraded++
			}
			for _, sh := range bl.Shares {
				name, ok := names[sh.Owner]
				if !ok {
					name = "unknown"
				}
				//psbox:allow-energyaccum summing already-integrated attribution windows (share × sampled W × meter period) in fixed rail-then-window order, not raw power×dt
				joules[name] += sh.Frac * float64(bl.W) * period
			}
		}
	}
	blamed := make([]string, 0, len(joules))
	for name := range joules {
		blamed = append(blamed, name)
	}
	sort.Strings(blamed)
	for _, name := range blamed {
		rep.Blame = append(rep.Blame, AppBlame{App: name, J: joules[name]})
	}
	return rep
}
