package meter

import (
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

func TestMeterBasics(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 0)
	if m.Period() != DefaultPeriod {
		t.Fatalf("period = %v", m.Period())
	}
	r := power.NewRail(e, "cpu", 1.0)
	m.AddRail(r)
	if !m.HasRail("cpu") || m.HasRail("gpu") {
		t.Fatal("HasRail wrong")
	}
	if len(m.Rails()) != 1 || m.Rails()[0] != "cpu" {
		t.Fatalf("rails = %v", m.Rails())
	}
	e.Run(sim.Time(1 * sim.Millisecond))
	s := m.Samples("cpu", 0, sim.Time(1*sim.Millisecond))
	if len(s) != 100 {
		t.Fatalf("samples = %d, want 100 at 100kHz over 1ms", len(s))
	}
	if got := m.Energy("cpu", 0, sim.Time(1*sim.Millisecond)); got != 0.001 {
		t.Fatalf("energy = %v", got)
	}
}

func TestMeterTimestampsMonotone(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 25*sim.Microsecond)
	r := power.NewRail(e, "gpu", 0.3)
	m.AddRail(r)
	e.Run(sim.Time(10 * sim.Millisecond))
	s := m.Samples("gpu", sim.Time(1*sim.Millisecond), sim.Time(9*sim.Millisecond))
	for i := 1; i < len(s); i++ {
		if s[i].T != s[i-1].T.Add(25*sim.Microsecond) {
			t.Fatalf("samples not evenly spaced at %d", i)
		}
	}
}

func TestMeterDuplicateRailPanics(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 0)
	m.AddRail(power.NewRail(e, "cpu", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddRail(power.NewRail(e, "cpu", 1))
}

func TestMeterUnknownRailPanics(t *testing.T) {
	e := sim.NewEngine()
	m := New(e, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Rail("nope")
}
