// Package meter models the platforms' in-situ power metering (§5): a DAQ
// sampling each hardware power rail at a configurable rate (100 kHz on the
// paper's prototypes, i.e. one timestamped sample every 10 µs), with
// timestamps drawn from the same clock the apps see.
package meter

import (
	"fmt"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// DefaultPeriod is the paper's 100 kHz sampling interval.
const DefaultPeriod = 10 * sim.Microsecond

// Window is one half-open span [From, To) of simulated time.
type Window struct {
	From, To sim.Time
}

// Meter is the DAQ: a set of rails sampled at one rate.
type Meter struct {
	eng    *sim.Engine
	period sim.Duration
	rails  map[string]*power.Rail
	names  []string

	// drops holds per-rail sample-dropout windows (fault injection: a DAQ
	// buffer overrun, a flaky sense line). Sorted, non-overlapping.
	drops map[string][]Window

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes DAQ sample-window events (dropouts) to a bus.
func (m *Meter) SetBus(b *obs.Bus) { m.bus = b }

// New builds a meter. A non-positive period falls back to DefaultPeriod.
func New(eng *sim.Engine, period sim.Duration) *Meter {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Meter{eng: eng, period: period, rails: make(map[string]*power.Rail),
		drops: make(map[string][]Window)}
}

// Period reports the sampling interval.
func (m *Meter) Period() sim.Duration { return m.period }

// AddRail attaches a metering scope.
func (m *Meter) AddRail(r *power.Rail) {
	if _, dup := m.rails[r.Name()]; dup {
		panic(fmt.Sprintf("meter: rail %q already attached", r.Name()))
	}
	m.rails[r.Name()] = r
	m.names = append(m.names, r.Name())
	sort.Strings(m.names)
}

// Rail returns an attached rail by name.
func (m *Meter) Rail(name string) *power.Rail {
	r, ok := m.rails[name]
	if !ok {
		panic(fmt.Sprintf("meter: no rail %q", name))
	}
	return r
}

// HasRail reports whether a scope is attached.
func (m *Meter) HasRail(name string) bool {
	_, ok := m.rails[name]
	return ok
}

// Rails lists attached scopes in stable order.
func (m *Meter) Rails() []string { return m.names }

// Samples returns the DAQ samples of one rail over [from, to). Samples
// inside injected dropout windows are missing, exactly as a DAQ overrun
// loses them.
func (m *Meter) Samples(rail string, from, to sim.Time) []power.Sample {
	all := m.Rail(rail).SamplesBetween(from, to, m.period, nil)
	drops := m.drops[rail]
	if len(drops) == 0 {
		return all
	}
	kept := all[:0]
	for _, s := range all {
		if !m.dropped(rail, s.T) {
			kept = append(kept, s)
		}
	}
	return kept
}

// Energy integrates one rail exactly over [from, to).
func (m *Meter) Energy(rail string, from, to sim.Time) power.Joules {
	return m.Rail(rail).EnergyBetween(from, to)
}

// InjectDropout marks [from, to) of one rail's sample stream as lost.
// Overlapping or adjacent windows merge. The window must not start in the
// past: samples already delivered cannot be un-delivered, and consumers
// (the virtual meters) rely on closed history staying immutable.
func (m *Meter) InjectDropout(rail string, from, to sim.Time) {
	m.Rail(rail) // validate
	if to <= from {
		panic(fmt.Sprintf("meter: dropout window [%v, %v) is empty", from, to))
	}
	if from < m.eng.Now() {
		panic(fmt.Sprintf("meter: dropout window [%v, %v) starts in the past (now %v)",
			from, to, m.eng.Now()))
	}
	m.bus.Instant(obs.CatMeter, "dropout", 0, int64(to.Sub(from)), rail, rail)
	m.bus.Count("meter.dropouts", 0, rail, 1)
	ws := append(m.drops[rail], Window{From: from, To: to})
	sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if w.From <= last.To {
			if w.To > last.To {
				last.To = w.To
			}
			continue
		}
		merged = append(merged, w)
	}
	m.drops[rail] = merged
}

// Dropouts returns the dropout windows of one rail overlapping [from, to),
// clipped to that span.
func (m *Meter) Dropouts(rail string, from, to sim.Time) []Window {
	var out []Window
	for _, w := range m.drops[rail] {
		if w.To <= from || w.From >= to {
			continue
		}
		if w.From < from {
			w.From = from
		}
		if w.To > to {
			w.To = to
		}
		out = append(out, w)
	}
	return out
}

// dropped reports whether instant t falls inside a dropout window of rail.
func (m *Meter) dropped(rail string, t sim.Time) bool {
	ws := m.drops[rail]
	i := sort.Search(len(ws), func(i int) bool { return ws[i].To > t })
	return i < len(ws) && ws[i].From <= t
}
