// Package meter models the platforms' in-situ power metering (§5): a DAQ
// sampling each hardware power rail at a configurable rate (100 kHz on the
// paper's prototypes, i.e. one timestamped sample every 10 µs), with
// timestamps drawn from the same clock the apps see.
package meter

import (
	"fmt"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// DefaultPeriod is the paper's 100 kHz sampling interval.
const DefaultPeriod = 10 * sim.Microsecond

// Meter is the DAQ: a set of rails sampled at one rate.
type Meter struct {
	eng    *sim.Engine
	period sim.Duration
	rails  map[string]*power.Rail
	names  []string
}

// New builds a meter. A non-positive period falls back to DefaultPeriod.
func New(eng *sim.Engine, period sim.Duration) *Meter {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Meter{eng: eng, period: period, rails: make(map[string]*power.Rail)}
}

// Period reports the sampling interval.
func (m *Meter) Period() sim.Duration { return m.period }

// AddRail attaches a metering scope.
func (m *Meter) AddRail(r *power.Rail) {
	if _, dup := m.rails[r.Name()]; dup {
		panic(fmt.Sprintf("meter: rail %q already attached", r.Name()))
	}
	m.rails[r.Name()] = r
	m.names = append(m.names, r.Name())
	sort.Strings(m.names)
}

// Rail returns an attached rail by name.
func (m *Meter) Rail(name string) *power.Rail {
	r, ok := m.rails[name]
	if !ok {
		panic(fmt.Sprintf("meter: no rail %q", name))
	}
	return r
}

// HasRail reports whether a scope is attached.
func (m *Meter) HasRail(name string) bool {
	_, ok := m.rails[name]
	return ok
}

// Rails lists attached scopes in stable order.
func (m *Meter) Rails() []string { return m.names }

// Samples returns the DAQ samples of one rail over [from, to).
func (m *Meter) Samples(rail string, from, to sim.Time) []power.Sample {
	return m.Rail(rail).SamplesBetween(from, to, m.period, nil)
}

// Energy integrates one rail exactly over [from, to).
func (m *Meter) Energy(rail string, from, to sim.Time) power.Joules {
	return m.Rail(rail).EnergyBetween(from, to)
}
