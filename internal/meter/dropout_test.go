package meter

import (
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

func dropFixture(t *testing.T) (*sim.Engine, *Meter) {
	t.Helper()
	e := sim.NewEngine()
	m := New(e, 0) // 10 µs period
	m.AddRail(power.NewRail(e, "cpu", 1.0))
	return e, m
}

func TestDropoutHidesSamples(t *testing.T) {
	e, m := dropFixture(t)
	m.InjectDropout("cpu", sim.Time(300*sim.Microsecond), sim.Time(500*sim.Microsecond))
	e.Run(sim.Time(1 * sim.Millisecond))
	s := m.Samples("cpu", 0, sim.Time(1*sim.Millisecond))
	// 100 samples at 100 kHz over 1 ms, minus the 20 inside [300, 500) µs.
	if len(s) != 80 {
		t.Fatalf("samples = %d, want 80", len(s))
	}
	for _, smp := range s {
		if smp.T >= sim.Time(300*sim.Microsecond) && smp.T < sim.Time(500*sim.Microsecond) {
			t.Fatalf("sample at %v leaked out of the dropout window", smp.T)
		}
	}
	// Exact integration is unaffected: the DAQ lost samples, not the rail.
	if got := m.Energy("cpu", 0, sim.Time(1*sim.Millisecond)); got != 0.001 {
		t.Fatalf("energy = %v", got)
	}
}

func TestDropoutWindowsMerge(t *testing.T) {
	_, m := dropFixture(t)
	us := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }
	m.InjectDropout("cpu", us(100), us(200))
	m.InjectDropout("cpu", us(400), us(500))
	m.InjectDropout("cpu", us(150), us(400)) // bridges both
	ws := m.Dropouts("cpu", 0, us(1000))
	if len(ws) != 1 || ws[0].From != us(100) || ws[0].To != us(500) {
		t.Fatalf("windows = %v, want one [100µs, 500µs)", ws)
	}
	m.InjectDropout("cpu", us(500), us(600)) // adjacent: merges too
	ws = m.Dropouts("cpu", 0, us(1000))
	if len(ws) != 1 || ws[0].To != us(600) {
		t.Fatalf("adjacent window did not merge: %v", ws)
	}
}

func TestDropoutsClipToQuery(t *testing.T) {
	_, m := dropFixture(t)
	us := func(n int64) sim.Time { return sim.Time(sim.Duration(n) * sim.Microsecond) }
	m.InjectDropout("cpu", us(100), us(300))
	m.InjectDropout("cpu", us(700), us(900))
	ws := m.Dropouts("cpu", us(200), us(800))
	if len(ws) != 2 {
		t.Fatalf("windows = %v, want 2", ws)
	}
	if ws[0].From != us(200) || ws[0].To != us(300) {
		t.Fatalf("first window not clipped: %v", ws[0])
	}
	if ws[1].From != us(700) || ws[1].To != us(800) {
		t.Fatalf("second window not clipped: %v", ws[1])
	}
	if got := m.Dropouts("cpu", us(300), us(700)); len(got) != 0 {
		t.Fatalf("query between windows returned %v", got)
	}
}

func TestDropoutRejectsPastAndEmptyWindows(t *testing.T) {
	e, m := dropFixture(t)
	e.Run(sim.Time(1 * sim.Millisecond))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("past", func() {
		m.InjectDropout("cpu", sim.Time(500*sim.Microsecond), sim.Time(2*sim.Millisecond))
	})
	mustPanic("empty", func() {
		m.InjectDropout("cpu", sim.Time(2*sim.Millisecond), sim.Time(2*sim.Millisecond))
	})
	mustPanic("unknown rail", func() {
		m.InjectDropout("nope", sim.Time(2*sim.Millisecond), sim.Time(3*sim.Millisecond))
	})
}
