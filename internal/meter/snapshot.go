package meter

import (
	"sort"

	"psbox/internal/snapshot"
)

// Snapshot encodes the DAQ: sampling period, every attached rail's power
// history (stable name order), and the injected dropout windows (sorted
// by rail name).
func (m *Meter) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(m.period))
	enc.Len(len(m.names))
	for _, name := range m.names {
		m.rails[name].Snapshot(enc)
	}
	dropNames := make([]string, 0, len(m.drops))
	for name := range m.drops {
		dropNames = append(dropNames, name)
	}
	sort.Strings(dropNames)
	enc.Len(len(dropNames))
	for _, name := range dropNames {
		enc.Str(name)
		ws := m.drops[name]
		enc.Len(len(ws))
		for _, w := range ws {
			enc.I64(int64(w.From))
			enc.I64(int64(w.To))
		}
	}
}

// Restore verifies the live meter against a checkpoint section.
func (m *Meter) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, m.Snapshot) }
