package core

import (
	"sort"

	"psbox/internal/snapshot"
)

func (v *VirtualMeter) snapshot(enc *snapshot.Encoder) {
	enc.F64(float64(v.idleW))
	enc.I64(int64(v.period))
	enc.Bool(v.entered)
	enc.Bool(v.resident)
	enc.I64(int64(v.segStart))
	enc.Len(len(v.segs))
	for _, s := range v.segs {
		enc.I64(int64(s.start))
		enc.I64(int64(s.end))
		enc.Bool(s.resident)
	}
	enc.I64(int64(v.accIdx))
	enc.F64(float64(v.accJ))
	enc.F64(float64(v.accEstJ))
	enc.I64(int64(v.accGaps))
	enc.I64(int64(v.sampleCursor))
}

func (b *Box) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(b.app.ID))
	enc.Len(len(b.hw))
	for _, h := range b.hw {
		enc.Str(string(h))
	}
	enc.Bool(b.entered)
	enc.U64(b.enters)
	enc.I64(int64(b.cpuState.FreqIdx))
	enc.Bool(b.cpuResident)
	enc.I64(int64(b.cpuResSince))
	enc.I64(int64(b.cpuResAccum))
	enc.U64(b.cpuGovArm.Seq())
	enc.I64(int64(b.cpuLastDemand))
	hws := make([]string, 0, len(b.vmeters))
	for h := range b.vmeters {
		hws = append(hws, string(h))
	}
	sort.Strings(hws)
	enc.Len(len(hws))
	for _, h := range hws {
		enc.Str(h)
		b.vmeters[HW(h)].snapshot(enc)
	}
}

// Snapshot encodes the psbox service: the shared CPU power state, the
// residency map (sorted by scope), the pending exclusivity-violation log,
// and every sandbox (sorted by app ID) with its virtual meters.
func (mgr *Manager) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(mgr.othersCPUState.FreqIdx))
	enc.Bool(mgr.cpuSaved)
	enc.Bool(mgr.DisableStateVirt)
	scopes := make([]string, 0, len(mgr.resident))
	for h := range mgr.resident {
		scopes = append(scopes, string(h))
	}
	sort.Strings(scopes)
	enc.Len(len(scopes))
	for _, h := range scopes {
		enc.Str(h)
		enc.I64(int64(mgr.resident[HW(h)]))
	}
	enc.Len(len(mgr.exclViolations))
	for _, v := range mgr.exclViolations {
		enc.Str(v)
	}
	ids := make([]int, 0, len(mgr.boxes))
	for id := range mgr.boxes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		mgr.boxes[id].snapshot(enc)
	}
}

// Restore verifies the live psbox service against a checkpoint section.
func (mgr *Manager) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, mgr.Snapshot) }

// Snapshot encodes the invariant checker's incremental cursor and the
// per-box monotone-read watermarks (sorted by app ID).
func (c *Checker) Snapshot(enc *snapshot.Encoder) {
	enc.Str(c.battery)
	enc.I64(int64(c.lastCheck))
	ids := make([]int, 0, len(c.lastRead))
	for id := range c.lastRead {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		enc.I64(int64(id))
		enc.F64(float64(c.lastRead[id]))
	}
}

// Restore verifies the live checker against a checkpoint section.
func (c *Checker) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, c.Snapshot) }
