package core_test

import (
	"math"
	"testing"

	psbox "psbox"
)

// §7(1): a sandbox bound to the display observes exactly its own pixel
// contribution, regardless of what other apps draw.
func TestDisplayScopeExactAttribution(t *testing.T) {
	sys := psbox.NewMobile(31)
	app := sys.Kernel.NewApp("ui")
	app.Spawn("draw", 0, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.SetDisplayRegion{Pixels: 200000, Luminance: 0.5},
		psbox.Sleep{D: 10 * psbox.Second},
	))
	other := sys.Kernel.NewApp("video")
	other.Spawn("draw", 1, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.SetDisplayRegion{Pixels: 800000, Luminance: 0.9},
		psbox.Sleep{D: 10 * psbox.Second},
	))
	box := sys.Sandbox.MustCreate(app, psbox.HWDisplay)
	box.Enter()
	start := sys.Now()
	sys.Run(1 * psbox.Second)
	observed := box.Read()

	// Expected: the app's exact contribution over ~1 s (region set within
	// the first millisecond).
	want := sys.Kernel.Display().AppPower(app.ID) * sys.Now().Sub(start).Seconds()
	if math.Abs(observed-want)/want > 0.01 {
		t.Fatalf("observed %v J want ≈%v J", observed, want)
	}
	// And invariant to the other app's huge region: rail is dominated by
	// the video app but the box never sees it.
	rail := sys.Meter.Energy("display", start, sys.Now())
	if observed > rail/3 {
		t.Fatalf("box observation %v suspiciously close to whole rail %v", observed, rail)
	}
}

func TestDisplayScopeInvariantToCoRunner(t *testing.T) {
	measure := func(withOther bool) float64 {
		sys := psbox.NewMobile(32)
		app := sys.Kernel.NewApp("ui")
		app.Spawn("draw", 0, psbox.Sequence(
			psbox.Compute{Cycles: 1e5},
			psbox.SetDisplayRegion{Pixels: 150000, Luminance: 0.4},
			psbox.Sleep{D: 10 * psbox.Second},
		))
		if withOther {
			other := sys.Kernel.NewApp("video")
			other.Spawn("draw", 1, psbox.Sequence(
				psbox.Compute{Cycles: 1e5},
				psbox.SetDisplayRegion{Pixels: 900000, Luminance: 1},
				psbox.Sleep{D: 10 * psbox.Second},
			))
		}
		box := sys.Sandbox.MustCreate(app, psbox.HWDisplay)
		box.Enter()
		sys.Run(1 * psbox.Second)
		return box.Read()
	}
	alone, co := measure(false), measure(true)
	if math.Abs(co-alone)/alone > 0.02 {
		t.Fatalf("display observation shifted: alone %v vs co %v", alone, co)
	}
}

// §7(2): a sandbox bound to the GPS sees the true operating power but not
// other apps' off/suspended transitions.
func TestGPSScopeHidesOthersUsage(t *testing.T) {
	sys := psbox.NewMobile(33)
	cfg := sys.Kernel.GPS().Config()

	watcher := sys.Kernel.NewApp("watcher")
	watcher.Spawn("idle", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e5},
		psbox.Sleep{D: 50 * psbox.Millisecond},
	))
	box := sys.Sandbox.MustCreate(watcher, psbox.HWGPS)
	box.Enter()

	// Another app acquires the GPS; during acquisition the watcher's view
	// must remain at off power (no usage side channel).
	navigator := sys.Kernel.NewApp("nav")
	navigator.Spawn("nav", 1, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.AcquireGPS{},
		psbox.Sleep{D: 60 * psbox.Second},
	))
	sys.Run(5 * psbox.Second) // mid-acquisition (TTFF 28 s)
	samples := box.SamplesBetween(psbox.HWGPS, 0, sys.Now())
	for _, s := range samples {
		if s.W != cfg.OffW {
			t.Fatalf("watcher saw %v W during another app's acquisition", s.W)
		}
	}
	// After lock, operating power is revealed to everyone.
	sys.Run(30 * psbox.Second)
	tail := box.SamplesBetween(psbox.HWGPS, sys.Now()-psbox.Time(psbox.Second), sys.Now())
	if len(tail) == 0 || tail[len(tail)-1].W != cfg.OperatingW {
		t.Fatalf("operating power not revealed: %v", tail[len(tail)-1].W)
	}
}

func TestGPSScopeHolderSeesAcquisition(t *testing.T) {
	sys := psbox.NewMobile(34)
	cfg := sys.Kernel.GPS().Config()
	nav := sys.Kernel.NewApp("nav")
	nav.Spawn("nav", 0, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.AcquireGPS{},
		psbox.Sleep{D: 60 * psbox.Second},
	))
	box := sys.Sandbox.MustCreate(nav, psbox.HWGPS)
	box.Enter()
	sys.Run(5 * psbox.Second)
	samples := box.SamplesBetween(psbox.HWGPS, psbox.Time(psbox.Second), sys.Now())
	if len(samples) == 0 || samples[len(samples)-1].W != cfg.AcquireW {
		t.Fatal("holder should observe its own acquisition power")
	}
}

func TestMobilePlatformScopes(t *testing.T) {
	sys := psbox.NewMobile(35)
	app := sys.Kernel.NewApp("a")
	b, err := sys.Sandbox.Create(app, psbox.HWCPU, psbox.HWGPU, psbox.HWDSP,
		psbox.HWWiFi, psbox.HWDisplay, psbox.HWGPS)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HW()) != 6 {
		t.Fatalf("scopes = %v", b.HW())
	}
	// AM57 has neither display nor GPS.
	sys2 := psbox.NewAM57(35)
	app2 := sys2.Kernel.NewApp("a")
	if _, err := sys2.Sandbox.Create(app2, psbox.HWDisplay); err == nil {
		t.Fatal("display scope should fail on AM57")
	}
	if _, err := sys2.Sandbox.Create(app2, psbox.HWGPS); err == nil {
		t.Fatal("gps scope should fail on AM57")
	}
}

func TestGPSReleaseAction(t *testing.T) {
	sys := psbox.NewMobile(36)
	nav := sys.Kernel.NewApp("nav")
	nav.Spawn("nav", 0, psbox.Sequence(
		psbox.Compute{Cycles: 1e5},
		psbox.AcquireGPS{},
		psbox.Sleep{D: 2 * psbox.Second},
		psbox.ReleaseGPS{},
		psbox.Sleep{D: 10 * psbox.Second},
	))
	sys.Run(1 * psbox.Second)
	if !sys.Kernel.GPS().Holds(nav.ID) {
		t.Fatal("acquire action did not register")
	}
	sys.Run(3 * psbox.Second)
	if sys.Kernel.GPS().Holds(nav.ID) {
		t.Fatal("release action did not drop the hold")
	}
	if sys.Kernel.GPS().State().String() != "off" {
		t.Fatalf("device should power off, state=%v", sys.Kernel.GPS().State())
	}
}
