package core_test

import (
	"math"
	"testing"

	psbox "psbox"
)

// deadlinePaced builds a frame-rate-limited program: burst, then sleep the
// residual of the period, so scheduling delays eat slack rather than
// stretching the rate — the structure of the paper's periodic benchmarks.
func deadlinePaced(cycles float64, period psbox.Duration) psbox.Program {
	step := 0
	var start psbox.Time
	return psbox.ProgramFunc(func(env *psbox.Env) psbox.Action {
		step++
		if step%2 == 1 {
			start = env.Now()
			return psbox.Compute{Cycles: cycles}
		}
		if spent := env.Now().Sub(start); spent < period {
			return psbox.Sleep{D: period - spent}
		}
		return psbox.Compute{Cycles: 1}
	})
}

// §3's validity claim: "After the app leaves the psbox, its decisions
// remain valid, since the OS preserves the app's vertical environment."
// Concretely: the power an app observes for a behaviour inside its sandbox
// predicts the power that behaviour actually draws outside it (running
// alone), because the sandbox showed the app its own vertical slice, not
// an entangled mixture. The app must be rate-paced with slack — as the
// paper's periodic benchmarks are — so contention shifts work within the
// period instead of stretching it.
func TestObservationsPredictUnboxedPower(t *testing.T) {
	// Phase 1: the app observes two candidate behaviours inside its box
	// while a noisy neighbour co-runs.
	observe := func(cycles float64, period psbox.Duration) float64 {
		sys := psbox.NewAM57(81)
		app := sys.Kernel.NewApp("adaptive")
		app.Spawn("t", 0, deadlinePaced(cycles, period))
		noise := sys.Kernel.NewApp("noise")
		noise.Spawn("h0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		noise.Spawn("h1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		box.Enter()
		sys.Run(2 * psbox.Second)
		return box.Read() / 2 // average watts
	}
	// Phase 2: ground truth — the same behaviours alone, no sandbox.
	actual := func(cycles float64, period psbox.Duration) float64 {
		sys := psbox.NewAM57(82)
		app := sys.Kernel.NewApp("adaptive")
		app.Spawn("t", 0, deadlinePaced(cycles, period))
		sys.Run(2 * psbox.Second)
		return sys.Meter.Energy("cpu", 0, sys.Now()) / 2
	}

	type candidate struct {
		cycles float64
		period psbox.Duration
	}
	// Duty cycles clear of the governor's hysteresis band.
	low := candidate{1e6, 30 * psbox.Millisecond}  // ≈5% duty
	high := candidate{9e6, 44 * psbox.Millisecond} // ≈34% duty

	obsLow := observe(low.cycles, low.period)
	obsHigh := observe(high.cycles, high.period)
	actLow := actual(low.cycles, low.period)
	actHigh := actual(high.cycles, high.period)

	// The observed ordering and rough magnitudes transfer to the unboxed
	// world — the adaptation decision made inside the box stays valid.
	if (obsHigh > obsLow) != (actHigh > actLow) {
		t.Fatalf("ordering flipped: observed %v/%v vs actual %v/%v",
			obsLow, obsHigh, actLow, actHigh)
	}
	for _, pair := range [][2]float64{{obsLow, actLow}, {obsHigh, actHigh}} {
		if diff := math.Abs(pair[0]-pair[1]) / pair[1]; diff > 0.10 {
			t.Fatalf("observation %v W vs actual %v W (%.1f%% apart)", pair[0], pair[1], diff*100)
		}
	}
}

// The converse: the baseline's attributed share, observed under the same
// noise, does NOT predict the unboxed power — that is why accounting
// heuristics cannot support adaptation (§2.4).
func TestBaselineSharesDoNotPredict(t *testing.T) {
	share := func() float64 {
		sys := psbox.NewAM57(83)
		app := sys.Kernel.NewApp("adaptive")
		app.Spawn("t", 0, psbox.Loop(
			psbox.Compute{Cycles: 9e6},
			psbox.Sleep{D: 6 * psbox.Millisecond},
		))
		noise := sys.Kernel.NewApp("noise")
		noise.Spawn("h0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		noise.Spawn("h1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		sys.Run(2 * psbox.Second)
		return sys.Accountant("cpu", 0).AppEnergy(app.ID, 0, sys.Now()) / 2
	}
	actual := func() float64 {
		sys := psbox.NewAM57(84)
		app := sys.Kernel.NewApp("adaptive")
		app.Spawn("t", 0, psbox.Loop(
			psbox.Compute{Cycles: 9e6},
			psbox.Sleep{D: 6 * psbox.Millisecond},
		))
		sys.Run(2 * psbox.Second)
		return sys.Meter.Energy("cpu", 0, sys.Now()) / 2
	}
	s, a := share(), actual()
	if diff := math.Abs(s-a) / a; diff < 0.15 {
		t.Fatalf("baseline share %v W unexpectedly predicts actual %v W (%.1f%%)", s, a, diff*100)
	}
}
