package core_test

import (
	"testing"

	psbox "psbox"
)

// The virtual DVFS governor must reconstruct the utilization of the box's
// own vertical environment: a saturating sandboxed app reaches the top
// operating point even when the scheduler grants it little CPU, and a
// low-duty one stays at the floor even when co-runners keep the machine
// hot.

func TestVirtualGovernorRampsForSaturatingBox(t *testing.T) {
	sys := psbox.NewAM57(91)
	app := sys.Kernel.NewApp("hungry")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	for i := 0; i < 2; i++ {
		noise := sys.Kernel.NewApp("noise")
		noise.Spawn("h0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		noise.Spawn("h1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	}
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	// Sample the frequency whenever the box is resident.
	var atTop, total int
	resident := false
	sys.Kernel.OnCPUResident(func(id int, r bool) {
		if id == app.ID {
			resident = r
		}
	})
	var poll func(psbox.Time)
	poll = func(psbox.Time) {
		if resident {
			total++
			if sys.Kernel.CPU().FreqIdx() == sys.Kernel.CPU().TopFreqIdx() {
				atTop++
			}
		}
		sys.Eng.After(500*psbox.Microsecond, poll)
	}
	sys.Eng.After(500*psbox.Microsecond, poll)
	sys.Run(2 * psbox.Second)
	if total == 0 {
		t.Fatal("box never resident")
	}
	// After warmup the box should run at its solo operating point — the
	// top one, since alone it would saturate a core.
	if frac := float64(atTop) / float64(total); frac < 0.7 {
		t.Fatalf("box at top frequency only %.0f%% of its residency", frac*100)
	}
}

func TestVirtualGovernorStaysLowForLightBox(t *testing.T) {
	sys := psbox.NewAM57(92)
	app := sys.Kernel.NewApp("light")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.Sleep{D: 15 * psbox.Millisecond},
	))
	noise := sys.Kernel.NewApp("noise")
	noise.Spawn("h0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	noise.Spawn("h1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	var aboveFloor, total, sharedTop, sharedTotal int
	resident := false
	sys.Kernel.OnCPUResident(func(id int, r bool) {
		if id == app.ID {
			resident = r
		}
	})
	var poll func(psbox.Time)
	poll = func(psbox.Time) {
		if resident {
			total++
			if sys.Kernel.CPU().FreqIdx() != 0 {
				aboveFloor++
			}
		} else {
			sharedTotal++
			if sys.Kernel.CPU().FreqIdx() == sys.Kernel.CPU().TopFreqIdx() {
				sharedTop++
			}
		}
		sys.Eng.After(200*psbox.Microsecond, poll)
	}
	sys.Eng.After(200*psbox.Microsecond, poll)
	sys.Run(2 * psbox.Second)
	if total == 0 {
		t.Fatal("box never resident")
	}
	// The co-runners keep the shared state at the top OPP; the box's own
	// residency must still run at the floor (its solo operating point).
	if frac := float64(aboveFloor) / float64(total); frac > 0.1 {
		t.Fatalf("light box ran above the floor %.0f%% of its residency", frac*100)
	}
	if frac := float64(sharedTop) / float64(sharedTotal); frac < 0.8 {
		t.Fatalf("co-runners held the top OPP only %.0f%% of shared time", frac*100)
	}
}
