package core

import (
	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// vseg is one span of the virtual meter's timeline: while resident the
// sandbox observes the real rail; otherwise it is fed idle power.
type vseg struct {
	start, end sim.Time
	resident   bool
}

// VirtualMeter is the per-(box, rail) virtual power meter of §3: it
// reveals the metered hardware power only while the box's resource balloon
// is resident on that hardware, and synthesizes idle-power samples for all
// other entered time. Concurrent apps therefore contribute at most periods
// of idle power to the observation.
type VirtualMeter struct {
	rail   *power.Rail
	idleW  power.Watts
	period sim.Duration

	entered  bool
	resident bool
	segStart sim.Time
	segs     []vseg

	sampleCursor sim.Time // next sample tick for drain-style reads
}

func newVirtualMeter(rail *power.Rail, idleW power.Watts, period sim.Duration) *VirtualMeter {
	return &VirtualMeter{rail: rail, idleW: idleW, period: period}
}

func (v *VirtualMeter) enter(now sim.Time) {
	if v.entered {
		return
	}
	v.entered = true
	v.resident = false
	v.segStart = now
	if v.sampleCursor < now {
		v.sampleCursor = now
	}
}

func (v *VirtualMeter) leave(now sim.Time) {
	if !v.entered {
		return
	}
	v.closeSeg(now)
	v.entered = false
	v.resident = false
}

func (v *VirtualMeter) setResident(now sim.Time, r bool) {
	if !v.entered || v.resident == r {
		return
	}
	v.closeSeg(now)
	v.resident = r
	v.segStart = now
}

func (v *VirtualMeter) closeSeg(now sim.Time) {
	if now > v.segStart {
		v.segs = append(v.segs, vseg{start: v.segStart, end: now, resident: v.resident})
	}
	v.segStart = now
}

// forEachSeg visits closed segments plus the open one (clipped to now).
func (v *VirtualMeter) forEachSeg(now sim.Time, fn func(vseg)) {
	for _, s := range v.segs {
		fn(s)
	}
	if v.entered && now > v.segStart {
		fn(vseg{start: v.segStart, end: now, resident: v.resident})
	}
}

// Energy reports the accumulated virtual-meter energy over all entered
// time up to now.
func (v *VirtualMeter) Energy(now sim.Time) power.Joules {
	var e power.Joules
	v.forEachSeg(now, func(s vseg) {
		if s.resident {
			e += v.rail.EnergyBetween(s.start, s.end)
		} else {
			e += v.idleW * s.end.Sub(s.start).Seconds()
		}
	})
	return e
}

// SamplesBetween synthesizes the virtual meter's timestamped samples over
// [from, to): real rail samples inside residency, idle power elsewhere in
// entered spans. Time outside entered spans yields no samples — the app may
// only observe power from inside its sandbox.
func (v *VirtualMeter) SamplesBetween(from, to sim.Time, dst []power.Sample) []power.Sample {
	v.forEachSeg(to, func(s vseg) {
		lo, hi := s.start, s.end
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo {
			return
		}
		if s.resident {
			dst = v.rail.SamplesBetween(lo, hi, v.period, dst)
			return
		}
		first := (int64(lo) + int64(v.period) - 1) / int64(v.period) * int64(v.period)
		for t := sim.Time(first); t < hi; t = t.Add(v.period) {
			dst = append(dst, power.Sample{T: t, W: v.idleW})
		}
	})
	return dst
}

// Drain returns up to max new samples since the previous Drain, advancing
// the cursor — the psbox_sample(buf, n) continuous-collection interface.
func (v *VirtualMeter) Drain(now sim.Time, max int) []power.Sample {
	if max <= 0 {
		return nil
	}
	out := v.SamplesBetween(v.sampleCursor, now, nil)
	if len(out) > max {
		out = out[:max]
	}
	if len(out) > 0 {
		v.sampleCursor = out[len(out)-1].T.Add(v.period)
	} else {
		v.sampleCursor = now
	}
	return out
}
