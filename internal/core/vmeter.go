package core

import (
	"psbox/internal/hw/power"
	"psbox/internal/meter"
	"psbox/internal/sim"
)

// vseg is one span of the virtual meter's timeline: while resident the
// sandbox observes the real rail; otherwise it is fed idle power.
type vseg struct {
	start, end sim.Time
	resident   bool
}

// VirtualMeter is the per-(box, rail) virtual power meter of §3: it
// reveals the metered hardware power only while the box's resource balloon
// is resident on that hardware, and synthesizes idle-power samples for all
// other entered time. Concurrent apps therefore contribute at most periods
// of idle power to the observation.
//
// When the DAQ loses samples (an injected dropout window), the meter runs
// in degraded mode over the gap: instead of silently under-reporting, it
// holds the last DAQ-visible power across the gap as a model-based
// estimate, flags the gap, and keeps the energy observation monotone.
type VirtualMeter struct {
	rail   *power.Rail
	idleW  power.Watts
	period sim.Duration

	// gaps reports DAQ dropout windows overlapping a span; nil when the
	// observation path has no sampled DAQ behind it.
	gaps func(a, b sim.Time) []meter.Window

	entered  bool
	resident bool
	segStart sim.Time
	segs     []vseg

	// Closed segments never change and dropouts cannot be injected
	// retroactively, so their energy folds into a running total; Energy is
	// then O(new segments), which keeps the per-Run invariant audit cheap.
	accIdx  int
	accJ    power.Joules
	accEstJ power.Joules
	accGaps int

	sampleCursor sim.Time // next sample tick for drain-style reads
}

func newVirtualMeter(rail *power.Rail, idleW power.Watts, period sim.Duration,
	gaps func(a, b sim.Time) []meter.Window) *VirtualMeter {
	return &VirtualMeter{rail: rail, idleW: idleW, period: period, gaps: gaps}
}

func (v *VirtualMeter) enter(now sim.Time) {
	if v.entered {
		return
	}
	v.entered = true
	v.resident = false
	v.segStart = now
	if v.sampleCursor < now {
		v.sampleCursor = now
	}
}

func (v *VirtualMeter) leave(now sim.Time) {
	if !v.entered {
		return
	}
	v.closeSeg(now)
	v.entered = false
	v.resident = false
}

func (v *VirtualMeter) setResident(now sim.Time, r bool) {
	if !v.entered || v.resident == r {
		return
	}
	v.closeSeg(now)
	v.resident = r
	v.segStart = now
}

func (v *VirtualMeter) closeSeg(now sim.Time) {
	if now > v.segStart {
		v.segs = append(v.segs, vseg{start: v.segStart, end: now, resident: v.resident})
	}
	v.segStart = now
}

// forEachSeg visits closed segments plus the open one (clipped to now).
func (v *VirtualMeter) forEachSeg(now sim.Time, fn func(vseg)) {
	for _, s := range v.segs {
		fn(s)
	}
	if v.entered && now > v.segStart {
		fn(vseg{start: v.segStart, end: now, resident: v.resident})
	}
}

// segEnergy integrates one segment, splitting resident spans around DAQ
// dropout gaps: direct is DAQ-backed (or synthesized-idle) energy, est is
// the sample-and-hold estimate over gaps.
func (v *VirtualMeter) segEnergy(s vseg) (direct, est power.Joules, gaps int) {
	span := s.end.Sub(s.start).Seconds()
	if !s.resident {
		return v.idleW * span, 0, 0
	}
	if v.gaps == nil {
		return v.rail.EnergyBetween(s.start, s.end), 0, 0
	}
	cur := s.start
	for _, w := range v.gaps(s.start, s.end) {
		if w.From > cur {
			direct += v.rail.EnergyBetween(cur, w.From)
		}
		est += v.holdPower(w.From) * w.To.Sub(w.From).Seconds()
		gaps++
		cur = w.To
	}
	if cur < s.end {
		direct += v.rail.EnergyBetween(cur, s.end)
	}
	return direct, est, gaps
}

// holdPower is the degraded-mode estimate over a gap starting at t: the
// last power the DAQ delivered before the samples stopped.
func (v *VirtualMeter) holdPower(t sim.Time) power.Watts {
	if t > 0 {
		t = t.Add(-sim.Nanosecond)
	}
	return v.rail.PowerAt(t)
}

// fold accumulates all closed segments into the running totals.
func (v *VirtualMeter) fold() {
	for ; v.accIdx < len(v.segs); v.accIdx++ {
		d, e, g := v.segEnergy(v.segs[v.accIdx])
		v.accJ += d
		v.accEstJ += e
		v.accGaps += g
	}
}

// Energy reports the accumulated virtual-meter energy over all entered
// time up to now, estimated gap energy included.
func (v *VirtualMeter) Energy(now sim.Time) power.Joules {
	d, e, _ := v.EnergyDetail(now)
	return d + e
}

// EnergyDetail splits the accumulated observation into DAQ-backed energy,
// estimated (dropout-gap) energy, and the number of gaps estimated across.
func (v *VirtualMeter) EnergyDetail(now sim.Time) (direct, est power.Joules, gaps int) {
	v.fold()
	direct, est, gaps = v.accJ, v.accEstJ, v.accGaps
	if v.entered && now > v.segStart {
		d, e, g := v.segEnergy(vseg{start: v.segStart, end: now, resident: v.resident})
		direct += d
		est += e
		gaps += g
	}
	return direct, est, gaps
}

// SamplesBetween synthesizes the virtual meter's timestamped samples over
// [from, to): real rail samples inside residency, idle power elsewhere in
// entered spans, and sample-and-hold estimates inside DAQ dropout gaps.
// Time outside entered spans yields no samples — the app may only observe
// power from inside its sandbox.
func (v *VirtualMeter) SamplesBetween(from, to sim.Time, dst []power.Sample) []power.Sample {
	v.forEachSeg(to, func(s vseg) {
		lo, hi := s.start, s.end
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo {
			return
		}
		if !s.resident {
			dst = v.synthSamples(lo, hi, v.idleW, dst)
			return
		}
		if v.gaps == nil {
			dst = v.rail.SamplesBetween(lo, hi, v.period, dst)
			return
		}
		cur := lo
		for _, w := range v.gaps(lo, hi) {
			if w.From > cur {
				dst = v.rail.SamplesBetween(cur, w.From, v.period, dst)
			}
			dst = v.synthSamples(w.From, w.To, v.holdPower(w.From), dst)
			cur = w.To
		}
		if cur < hi {
			dst = v.rail.SamplesBetween(cur, hi, v.period, dst)
		}
	})
	return dst
}

// synthSamples appends constant-power samples on the DAQ tick grid over
// [lo, hi).
func (v *VirtualMeter) synthSamples(lo, hi sim.Time, w power.Watts, dst []power.Sample) []power.Sample {
	first := (int64(lo) + int64(v.period) - 1) / int64(v.period) * int64(v.period)
	for t := sim.Time(first); t < hi; t = t.Add(v.period) {
		dst = append(dst, power.Sample{T: t, W: w})
	}
	return dst
}

// Drain returns up to max new samples since the previous Drain, advancing
// the cursor — the psbox_sample(buf, n) continuous-collection interface.
func (v *VirtualMeter) Drain(now sim.Time, max int) []power.Sample {
	if max <= 0 {
		return nil
	}
	out := v.SamplesBetween(v.sampleCursor, now, nil)
	if len(out) > max {
		out = out[:max]
	}
	if len(out) > 0 {
		v.sampleCursor = out[len(out)-1].T.Add(v.period)
	} else {
		v.sampleCursor = now
	}
	return out
}
