package core

import (
	"fmt"
	"math"
	"sort"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

// Checker audits the runtime invariants the psbox design promises, so that
// every simulated run — fault-free or under injection — doubles as a
// correctness audit:
//
//  1. Energy conservation: the battery rail's energy over each audited
//     window equals the sum of the component rails' energies.
//  2. Balloon exclusivity: at most one app is resident on any scope at any
//     instant (the whole point of a resource balloon).
//  3. Backlogs never go negative, even across watchdog resets and link-flap
//     retries that rewind inflight accounting.
//  4. Box observations are monotone: psbox_read never decreases, even when
//     part of the observation is a degraded-mode estimate.
//
// Check is incremental — each call audits the window since the previous
// call — so running it after every System.Run is cheap.
type Checker struct {
	mgr     *Manager
	battery string

	lastCheck sim.Time
	lastRead  map[int]power.Joules
}

// NewChecker builds an invariant checker over a psbox manager; battery
// names the aggregate rail whose energy must equal the component sum.
func NewChecker(mgr *Manager, battery string) *Checker {
	return &Checker{
		mgr:       mgr,
		battery:   battery,
		lastCheck: mgr.k.Engine().Now(),
		lastRead:  make(map[int]power.Joules),
	}
}

// Check audits the window since the previous Check and returns the
// violations found (nil when all invariants hold).
func (c *Checker) Check() []string {
	var out []string
	now := c.mgr.k.Engine().Now()

	// (1) Energy conservation on the battery rail.
	if c.mgr.m.HasRail(c.battery) && now > c.lastCheck {
		bat := c.mgr.m.Energy(c.battery, c.lastCheck, now)
		var sum power.Joules
		for _, name := range c.mgr.m.Rails() {
			if name == c.battery {
				continue
			}
			sum += c.mgr.m.Energy(name, c.lastCheck, now)
		}
		tol := 1e-5*math.Abs(bat) + 1e-9
		if math.Abs(bat-sum) > tol {
			out = append(out, fmt.Sprintf(
				"energy conservation: battery %.12g J != component sum %.12g J over [%v, %v)",
				bat, sum, c.lastCheck, now))
		}
	}

	// (2) Balloon exclusivity violations recorded as they happened.
	out = append(out, c.mgr.takeExclusivityViolations()...)

	// (3) Non-negative backlogs for every app on every queueing scope.
	for _, app := range c.mgr.k.Apps() {
		for _, name := range c.mgr.k.AccelNames() {
			if b := c.mgr.k.Accel(name).Backlog(app.ID); b < 0 {
				out = append(out, fmt.Sprintf("backlog: app %d has %d on %s", app.ID, b, name))
			}
		}
		if n := c.mgr.k.Net(); n != nil {
			if b := n.Backlog(app.ID); b < 0 {
				out = append(out, fmt.Sprintf("backlog: app %d has %d bytes on net", app.ID, b))
			}
		}
	}

	// (4) Monotone box observations.
	ids := make([]int, 0, len(c.mgr.boxes))
	for id := range c.mgr.boxes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := c.mgr.boxes[id].Read()
		if prev, seen := c.lastRead[id]; seen && r < prev-1e-9 {
			out = append(out, fmt.Sprintf(
				"monotonicity: box of app %d read %.12g J after %.12g J", id, r, prev))
		}
		c.lastRead[id] = r
	}

	c.lastCheck = now
	return out
}
