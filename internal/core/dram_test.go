package core_test

import (
	"math"
	"testing"

	psbox "psbox"
)

// memoryHeavy builds a paced workload streaming DRAM bandwidth during its
// bursts.
func memoryHeavy(cycles, gbs float64, rest psbox.Duration) psbox.Program {
	return psbox.Loop(
		psbox.Compute{Cycles: cycles, MemGBs: gbs},
		psbox.Sleep{D: rest},
	)
}

func TestDRAMScopeRequiresCPUScope(t *testing.T) {
	sys := psbox.NewMobile(41)
	app := sys.Kernel.NewApp("a")
	if _, err := sys.Sandbox.Create(app, psbox.HWDRAM); err == nil {
		t.Fatal("dram scope alone should be rejected")
	}
	if _, err := sys.Sandbox.Create(app, psbox.HWCPU, psbox.HWDRAM); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMScopeUnavailableWithoutChannel(t *testing.T) {
	sys := psbox.NewAM57(41)
	app := sys.Kernel.NewApp("a")
	if _, err := sys.Sandbox.Create(app, psbox.HWCPU, psbox.HWDRAM); err == nil {
		t.Fatal("AM57 has no DRAM channel; binding should fail")
	}
}

// §7(4): the sandbox's DRAM observation tracks its own access stream and
// is insulated from a memory-thrashing co-runner.
func TestDRAMObservationInsulated(t *testing.T) {
	measure := func(coRunner bool) float64 {
		sys := psbox.NewMobile(42)
		app := sys.Kernel.NewApp("victim")
		app.Spawn("t", 0, memoryHeavy(3e6, 1.5, 8*psbox.Millisecond))
		if coRunner {
			other := sys.Kernel.NewApp("thrash")
			other.Spawn("t0", 0, memoryHeavy(1e6, 4.0, 0))
			other.Spawn("t1", 1, memoryHeavy(1e6, 4.0, 0))
		}
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU, psbox.HWDRAM)
		box.Enter()
		sys.Run(2 * psbox.Second)
		return box.ReadScope(psbox.HWDRAM)
	}
	alone := measure(false)
	co := measure(true)
	if alone <= 0 {
		t.Fatal("no DRAM energy observed")
	}
	if diff := math.Abs(co-alone) / alone; diff > 0.05 {
		t.Fatalf("DRAM observation shifted %.1f%% under a thrashing co-runner", diff*100)
	}
}

func TestDRAMRailEntangledWithoutBox(t *testing.T) {
	// Sanity: the raw DIMM rail *is* entangled — that is what the scope
	// insulates against.
	measure := func(coRunner bool) float64 {
		sys := psbox.NewMobile(43)
		app := sys.Kernel.NewApp("victim")
		app.Spawn("t", 0, memoryHeavy(3e6, 1.5, 8*psbox.Millisecond))
		if coRunner {
			other := sys.Kernel.NewApp("thrash")
			other.Spawn("t1", 1, memoryHeavy(1e6, 4.0, 0))
		}
		sys.Run(2 * psbox.Second)
		return sys.Meter.Energy("dram", 0, sys.Now())
	}
	alone, co := measure(false), measure(true)
	if co < alone*1.5 {
		t.Fatalf("rail should be entangled: alone %v vs co %v", alone, co)
	}
}
