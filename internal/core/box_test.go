package core_test

import (
	"math"
	"testing"

	psbox "psbox"
	"psbox/internal/sim"
)

// periodicCPU builds a rate-limited CPU workload: burst cycles, then sleep
// until the next period.
func periodicCPU(cycles float64, period sim.Duration) psbox.Program {
	return psbox.Loop(
		psbox.Compute{Cycles: cycles},
		psbox.Sleep{D: period},
	)
}

func TestCreateValidation(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	if _, err := sys.Sandbox.Create(app); err == nil {
		t.Fatal("empty scope list should fail")
	}
	if _, err := sys.Sandbox.Create(app, psbox.HWWiFi); err == nil {
		t.Fatal("AM57 has no WiFi; binding should fail")
	}
	if _, err := sys.Sandbox.Create(app, psbox.HWCPU, psbox.HWCPU); err == nil {
		t.Fatal("duplicate scope should fail")
	}
	b, err := sys.Sandbox.Create(app, psbox.HWCPU, psbox.HWGPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.HW()) != 2 {
		t.Fatalf("scopes = %v", b.HW())
	}
	if _, err := sys.Sandbox.Create(app, psbox.HWCPU); err == nil {
		t.Fatal("second box for the same app should fail")
	}
	if sys.Sandbox.Box(app.ID) != b {
		t.Fatal("Box lookup failed")
	}
}

func TestEnterLeaveIdempotent(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, periodicCPU(1e6, 5*psbox.Millisecond))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	b.Enter()
	if b.Enters() != 1 || !b.Entered() {
		t.Fatal("double enter should be a no-op")
	}
	sys.Run(50 * psbox.Millisecond)
	b.Leave()
	b.Leave()
	if b.Entered() {
		t.Fatal("leave failed")
	}
}

func TestBoxObservesOwnPowerAlone(t *testing.T) {
	// A box enclosing the only app sees the true rail energy.
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	start := sys.Now()
	sys.Run(500 * psbox.Millisecond)
	observed := b.Read()
	actual := sys.Meter.Energy("cpu", start, sys.Now())
	if math.Abs(observed-actual)/actual > 0.02 {
		t.Fatalf("observed %v J vs actual %v J", observed, actual)
	}
}

// The paper's headline (Fig. 6): a boxed app's energy observation is
// nearly invariant to what co-runs with it.
func TestObservationInsulatedFromCoRunners(t *testing.T) {
	run := func(coRunner int) float64 {
		sys := psbox.NewAM57(7)
		app := sys.Kernel.NewApp("victim")
		app.Spawn("t", 0, periodicCPU(3e6, 6*psbox.Millisecond))
		switch coRunner {
		case 1:
			other := sys.Kernel.NewApp("hog")
			other.Spawn("t0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
			other.Spawn("t1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		case 2:
			other := sys.Kernel.NewApp("periodic")
			other.Spawn("t", 1, periodicCPU(8e6, 3*psbox.Millisecond))
		}
		b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		b.Enter()
		sys.Run(2 * psbox.Second)
		return b.Read()
	}
	alone := run(0)
	withHog := run(1)
	withPeriodic := run(2)
	for _, v := range []float64{withHog, withPeriodic} {
		diff := math.Abs(v-alone) / alone
		if diff > 0.05 {
			t.Fatalf("observation shifted %.1f%% under co-run (alone %v, co %v)", diff*100, alone, v)
		}
	}
}

func TestIdleFillWhenScheduledOut(t *testing.T) {
	// While the box app waits for its balloon, its meter reads idle power —
	// not the co-runners' activity.
	sys := psbox.NewAM57(3)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, periodicCPU(1e6, 20*psbox.Millisecond))
	hog := sys.Kernel.NewApp("hog")
	hog.Spawn("t0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	hog.Spawn("t1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	sys.Run(1 * psbox.Second)
	samples := b.SamplesBetween(psbox.HWCPU, 0, sys.Now())
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	idle := sys.Kernel.CPU().IdlePower()
	idleCount := 0
	for _, s := range samples {
		if s.W == idle {
			idleCount++
		}
	}
	// The box runs ~1e6 cycles per 20ms: the vast majority of samples are
	// idle fill despite both cores being saturated by the hog.
	if frac := float64(idleCount) / float64(len(samples)); frac < 0.5 {
		t.Fatalf("idle-fill fraction = %v", frac)
	}
}

func TestSampleDrainCursor(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	sys.Run(10 * psbox.Millisecond)
	s1 := b.Sample(psbox.HWCPU, 1<<20)
	if len(s1) == 0 {
		t.Fatal("no samples drained")
	}
	s2 := b.Sample(psbox.HWCPU, 1<<20)
	if len(s2) != 0 {
		t.Fatalf("drain should not repeat samples, got %d more", len(s2))
	}
	sys.Run(10 * psbox.Millisecond)
	s3 := b.Sample(psbox.HWCPU, 1<<20)
	if len(s3) == 0 {
		t.Fatal("new samples should appear after time passes")
	}
	if s3[0].T <= s1[len(s1)-1].T {
		t.Fatal("drained samples overlap")
	}
	// Timestamps are on the meter grid.
	for _, s := range s3 {
		if int64(s.T)%int64(sys.Meter.Period()) != 0 {
			t.Fatalf("sample timestamp %v off the meter grid", s.T)
		}
	}
}

func TestSampleMaxRespected(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	sys.Run(10 * psbox.Millisecond)
	got := b.Sample(psbox.HWCPU, 7)
	if len(got) != 7 {
		t.Fatalf("got %d samples, want 7", len(got))
	}
}

func TestNoObservationOutsideBox(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	sys.Run(100 * psbox.Millisecond)
	if b.Read() != 0 {
		t.Fatal("energy accumulated before entering")
	}
	b.Enter()
	sys.Run(100 * psbox.Millisecond)
	e1 := b.Read()
	b.Leave()
	sys.Run(100 * psbox.Millisecond)
	if got := b.Read(); got != e1 {
		t.Fatalf("energy accumulated outside the box: %v → %v", e1, got)
	}
}

// §4.1 power-state virtualization on the CPU: the box must not observe a
// lingering DVFS state raised by another app (Fig. 3(c) eliminated).
func TestCPUStateVirtualization(t *testing.T) {
	observe := func(preheat bool) float64 {
		sys := psbox.NewAM57(5)
		if preheat {
			hog := sys.Kernel.NewApp("hog")
			h0 := hog.Spawn("t0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
			h1 := hog.Spawn("t1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
			sys.Run(200 * psbox.Millisecond) // governor ramps to top
			sys.Kernel.Kill(h0)
			sys.Kernel.Kill(h1)
		} else {
			sys.Run(200 * psbox.Millisecond)
		}
		app := sys.Kernel.NewApp("a")
		app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		b.Enter()
		sys.Run(20 * psbox.Millisecond)
		return b.Read()
	}
	cold := observe(false)
	afterBusy := observe(true)
	diff := math.Abs(afterBusy-cold) / cold
	if diff > 0.05 {
		t.Fatalf("lingering state leaked into the box: cold %v vs after-busy %v (%.1f%%)", cold, afterBusy, diff*100)
	}
}

func TestGPUBoxObservation(t *testing.T) {
	sys := psbox.NewAM57(2)
	app := sys.Kernel.NewApp("render")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e5},
		psbox.SubmitAccel{Dev: "gpu", Kind: "frame", Work: 4000, DynW: 0.6},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
		psbox.Sleep{D: 12 * psbox.Millisecond},
	))
	other := sys.Kernel.NewApp("tri")
	other.Spawn("t", 1, psbox.Loop(
		psbox.Compute{Cycles: 1e5},
		psbox.SubmitAccel{Dev: "gpu", Kind: "tri", Work: 20000, DynW: 0.8},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 1},
	))
	b := sys.Sandbox.MustCreate(app, psbox.HWGPU)
	b.Enter()
	sys.Run(2 * psbox.Second)
	if b.Read() <= 0 {
		t.Fatal("no GPU energy observed")
	}
	// Throughput continues for both.
	if sys.Kernel.Accel("gpu").Completed(app.ID) == 0 ||
		sys.Kernel.Accel("gpu").Completed(other.ID) == 0 {
		t.Fatal("both apps should retire GPU commands")
	}
}

func TestWiFiBoxObservation(t *testing.T) {
	sys := psbox.NewBeagleBone(2)
	app := sys.Kernel.NewApp("browser")
	sock := app.OpenSocket()
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e5},
		psbox.Send{Socket: sock, Bytes: 3000},
		psbox.AwaitNet{MaxBacklog: 0},
		psbox.Sleep{D: 50 * psbox.Millisecond},
	))
	other := sys.Kernel.NewApp("scp")
	sock2 := other.OpenSocket()
	other.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e5},
		psbox.Send{Socket: sock2, Bytes: 12000},
		psbox.AwaitNet{MaxBacklog: 12000},
	))
	b := sys.Sandbox.MustCreate(app, psbox.HWWiFi)
	b.Enter()
	sys.Run(3 * psbox.Second)
	if b.Read() <= 0 {
		t.Fatal("no WiFi energy observed")
	}
	if sys.Kernel.Net().SentBytes(app.ID) == 0 || sys.Kernel.Net().SentBytes(other.ID) == 0 {
		t.Fatal("both apps should transmit")
	}
}

func TestMultiScopeBoxReadsSum(t *testing.T) {
	sys := psbox.NewAM57(4)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 1e6},
		psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 2000, DynW: 0.5},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
	))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU, psbox.HWGPU)
	b.Enter()
	sys.Run(500 * psbox.Millisecond)
	total := b.Read()
	parts := b.ReadScope(psbox.HWCPU) + b.ReadScope(psbox.HWGPU)
	if math.Abs(total-parts) > 1e-9 {
		t.Fatalf("total %v != sum of scopes %v", total, parts)
	}
	if b.ReadScope(psbox.HWGPU) <= 0 {
		t.Fatal("GPU scope observed nothing")
	}
}

func TestReenterAccumulates(t *testing.T) {
	sys := psbox.NewAM57(6)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	b.Enter()
	sys.Run(100 * psbox.Millisecond)
	b.Leave()
	e1 := b.Read()
	sys.Run(100 * psbox.Millisecond)
	b.Enter()
	sys.Run(100 * psbox.Millisecond)
	e2 := b.Read()
	if e2 <= e1 {
		t.Fatalf("re-entered box should accumulate: %v → %v", e1, e2)
	}
	if b.Enters() != 2 {
		t.Fatalf("enters = %d", b.Enters())
	}
}

func TestUnboundScopePanics(t *testing.T) {
	sys := psbox.NewAM57(1)
	app := sys.Kernel.NewApp("a")
	b := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	for _, f := range []func(){
		func() { b.ReadScope(psbox.HWGPU) },
		func() { b.Sample(psbox.HWGPU, 10) },
		func() { b.SamplesBetween(psbox.HWGPU, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
