// Package core implements the power sandbox (psbox) principal of §3: the
// only way for an app to observe power. A Box encloses one app, binds to a
// set of hardware metering scopes, and exposes a virtual power meter whose
// readings are insulated from concurrent apps — their only possible
// contribution is idle power. The kernel-side enforcement (spatial and
// temporal resource balloons, loan billing) lives in internal/kernel; this
// package owns the box lifecycle, the virtual meters, and the CPU
// power-state virtualization.
package core

import (
	"fmt"
	"sort"

	"psbox/internal/hw/cpu"
	"psbox/internal/hw/power"
	"psbox/internal/kernel"
	"psbox/internal/meter"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// HW names a bindable hardware scope.
type HW string

// The hardware scopes of the paper's two platforms, plus the §7 extension
// scopes.
const (
	HWCPU  HW = "cpu"
	HWGPU  HW = "gpu"
	HWDSP  HW = "dsp"
	HWWiFi HW = "wifi"

	// HWDisplay (§7(1)): OLED power is additive per pixel with no
	// lingering state, so the sandbox observes its exact contribution
	// directly — no balloons needed.
	HWDisplay HW = "display"

	// HWGPS (§7(2)): operating power is concurrency-independent and
	// revealed directly; off/suspended (and others' acquisitions) are
	// hidden behind the off power, avoiding both a per-sandbox cold
	// restart and a usage side channel.
	HWGPS HW = "gps"

	// HWDRAM (§7(4)): DIMM power follows the aggregate access stream. In
	// this model the CPU is the only DRAM master, so the CPU's spatial
	// balloons already bound the stream: the scope requires HWCPU in the
	// same sandbox, and its meter is resident exactly when the CPU
	// balloon is.
	HWDRAM HW = "dram"
)

// Manager owns all power sandboxes of one simulated system and routes the
// kernel's residency events to them. It is the OS-side psbox service.
type Manager struct {
	k *kernel.Kernel
	m *meter.Meter

	boxes map[int]*Box // appID → box (one box per app)

	// othersCPUState is the CPU power state shared by everything outside
	// the currently resident sandbox (§4.1: one virtual copy per psbox
	// plus one for the rest).
	othersCPUState cpu.GovState
	cpuSaved       bool

	// DisableStateVirt turns off CPU power-state virtualization; the
	// ablation study uses it to show the Fig. 3(c) lingering-state leak
	// returning into sandbox observations.
	DisableStateVirt bool

	// resident tracks which app (if any) currently holds each scope's
	// balloon; exclViolations records every instant the exclusivity
	// invariant broke, for the Checker to drain.
	resident       map[HW]int
	exclViolations []string

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes sandbox lifecycle and residency events to a bus.
func (mgr *Manager) SetBus(b *obs.Bus) { mgr.bus = b }

// NewManager builds the psbox service over a kernel and its meter.
func NewManager(k *kernel.Kernel, m *meter.Meter) *Manager {
	mgr := &Manager{k: k, m: m, boxes: make(map[int]*Box), resident: make(map[HW]int)}
	k.OnCPUResident(mgr.onCPUResident)
	for _, dev := range k.AccelNames() {
		name := dev
		k.OnAccelResident(name, func(appID int, r bool) { mgr.onDevResident(HW(name), appID, r) })
	}
	// The WiFi scope needs no residency routing for metering: its virtual
	// meter reads the per-sandbox virtual NIC (§5), which by construction
	// sees only the enclosed app's frames and tail. The balloon events
	// still feed the exclusivity invariant.
	k.OnNetResident(func(appID int, r bool) { mgr.trackResidency(HWWiFi, appID, r) })
	return mgr
}

// trackResidency maintains the balloon-exclusivity invariant record: a
// scope's balloon must never be held by two apps at once.
func (mgr *Manager) trackResidency(h HW, appID int, r bool) {
	if r {
		mgr.bus.Instant(obs.CatBox, "resident-begin", appID, 1, "", string(h))
	} else {
		mgr.bus.Instant(obs.CatBox, "resident-end", appID, 0, "", string(h))
	}
	cur, held := mgr.resident[h]
	if r {
		if held && cur != appID {
			mgr.exclViolations = append(mgr.exclViolations, fmt.Sprintf(
				"exclusivity: app %d became resident on %s at %v while app %d still holds it",
				appID, h, mgr.k.Engine().Now(), cur))
		}
		mgr.resident[h] = appID
		return
	}
	if held && cur == appID {
		delete(mgr.resident, h)
	}
}

// takeExclusivityViolations drains the recorded exclusivity violations.
func (mgr *Manager) takeExclusivityViolations() []string {
	v := mgr.exclViolations
	mgr.exclViolations = nil
	return v
}

// Box is one power sandbox (Listing 1): created around an app, bound to
// hardware scopes, entered and left at the app's liberty.
type Box struct {
	mgr *Manager
	app *kernel.App
	hw  []HW

	entered bool
	enters  uint64
	vmeters map[HW]*VirtualMeter

	// cpuState is the box's virtual CPU power state (§4.1), restored at
	// every spatial-balloon residency.
	cpuState cpu.GovState

	// Virtual DVFS governor: the sandbox's operating point must follow the
	// load of *its* vertical environment, not the co-runners'. Its
	// utilization signal is the box's residency fraction per governor
	// window — during residency the box's busiest core is busy, outside it
	// the box's environment is idle.
	cpuResident   bool
	cpuResSince   sim.Time
	cpuResAccum   sim.Duration
	cpuGovArm     sim.Handle
	cpuLastDemand sim.Duration
}

// Create builds a psbox for app bound to the given hardware scopes
// (psbox_create). Each app has at most one box; the box starts exited.
func (mgr *Manager) Create(app *kernel.App, hw ...HW) (*Box, error) {
	if len(hw) == 0 {
		return nil, fmt.Errorf("psbox: need at least one hardware scope")
	}
	if _, dup := mgr.boxes[app.ID]; dup {
		return nil, fmt.Errorf("psbox: app %s already has a sandbox", app.Name)
	}
	seen := map[HW]bool{}
	b := &Box{mgr: mgr, app: app, vmeters: make(map[HW]*VirtualMeter)}
	for _, h := range hw {
		if seen[h] {
			return nil, fmt.Errorf("psbox: duplicate scope %q", h)
		}
		seen[h] = true
		idle, err := mgr.idlePower(h)
		if err != nil {
			return nil, err
		}
		if !mgr.m.HasRail(string(h)) {
			return nil, fmt.Errorf("psbox: scope %q has no metered rail", h)
		}
		// A dropout on the scope's DAQ channel blinds every observation
		// derived from it — including the virtualized per-app rails, which
		// are reconstructed from the same samples.
		scope := string(h)
		gaps := func(a, bnd sim.Time) []meter.Window { return mgr.m.Dropouts(scope, a, bnd) }
		switch h {
		case HWWiFi:
			// The sandbox observes its own virtual NIC rail; it is
			// "resident" on that rail for all entered time.
			b.vmeters[h] = newVirtualMeter(mgr.k.Net().VirtualRail(app.ID), idle, mgr.m.Period(), gaps)
		case HWDisplay:
			// Exact per-app attribution (no entanglement to insulate).
			b.vmeters[h] = newVirtualMeter(mgr.k.Display().OwnerRail(app.ID), idle, mgr.m.Period(), gaps)
		case HWGPS:
			// The observable-power rail already applies the §7 hiding
			// rule for off/suspended state.
			b.vmeters[h] = newVirtualMeter(mgr.k.GPS().OwnerRail(app.ID), idle, mgr.m.Period(), gaps)
		default:
			b.vmeters[h] = newVirtualMeter(mgr.m.Rail(string(h)), idle, mgr.m.Period(), gaps)
		}
		b.hw = append(b.hw, h)
	}
	sort.Slice(b.hw, func(i, j int) bool { return b.hw[i] < b.hw[j] })
	if seen[HWDRAM] && !seen[HWCPU] {
		return nil, fmt.Errorf("psbox: the dram scope requires the cpu scope in the same sandbox")
	}
	b.cpuState = cpu.GovState{FreqIdx: mgr.k.CPU().Config().InitialFreqIdx}
	mgr.boxes[app.ID] = b
	return b, nil
}

// MustCreate is Create for statically valid arguments.
func (mgr *Manager) MustCreate(app *kernel.App, hw ...HW) *Box {
	b, err := mgr.Create(app, hw...)
	if err != nil {
		panic(err)
	}
	return b
}

func (mgr *Manager) idlePower(h HW) (power.Watts, error) {
	switch h {
	case HWCPU:
		return mgr.k.CPU().IdlePower(), nil
	case HWWiFi:
		if mgr.k.Net() == nil {
			return 0, fmt.Errorf("psbox: no NIC attached")
		}
		return mgr.k.Net().NIC().IdlePower(), nil
	case HWDisplay:
		if mgr.k.Display() == nil {
			return 0, fmt.Errorf("psbox: no display attached")
		}
		return 0, nil // an app showing nothing contributes nothing
	case HWGPS:
		if mgr.k.GPS() == nil {
			return 0, fmt.Errorf("psbox: no GPS attached")
		}
		return mgr.k.GPS().IdlePower(), nil
	case HWDRAM:
		if mgr.k.DRAM() == nil {
			return 0, fmt.Errorf("psbox: no DRAM channel attached")
		}
		return mgr.k.DRAM().IdlePower(), nil
	default:
		if !mgr.k.HasAccel(string(h)) {
			return 0, fmt.Errorf("psbox: unknown hardware scope %q", h)
		}
		return mgr.k.Accel(string(h)).Device().IdlePower(), nil
	}
}

// Box returns an app's sandbox, nil if none.
func (mgr *Manager) Box(appID int) *Box { return mgr.boxes[appID] }

// Boxes lists every sandbox in ascending app-ID order.
func (mgr *Manager) Boxes() []*Box {
	ids := make([]int, 0, len(mgr.boxes))
	for id := range mgr.boxes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Box, 0, len(ids))
	for _, id := range ids {
		out = append(out, mgr.boxes[id])
	}
	return out
}

// onCPUResident handles spatial-balloon residency: power-state
// virtualization plus virtual-meter bracketing.
func (mgr *Manager) onCPUResident(appID int, resident bool) {
	mgr.trackResidency(HWCPU, appID, resident)
	b, ok := mgr.boxes[appID]
	if !ok {
		return
	}
	now := mgr.k.Engine().Now()
	c := mgr.k.CPU()
	if !mgr.DisableStateVirt {
		if resident {
			mgr.othersCPUState = c.State()
			mgr.cpuSaved = true
			c.Restore(b.cpuState)
			// While the balloon is resident the box's virtual governor
			// owns the operating point; the hardware governor must not
			// adjust it from entangled utilization.
			c.SuspendGovernor()
		} else {
			b.cpuState = c.State()
			c.ResumeGovernor()
			if mgr.cpuSaved {
				c.Restore(mgr.othersCPUState)
			}
		}
	}
	// Residency accounting feeds the virtual governor.
	if resident {
		b.cpuResident = true
		b.cpuResSince = now
	} else if b.cpuResident {
		b.cpuResident = false
		b.cpuResAccum += now.Sub(b.cpuResSince)
	}
	if vm, bound := b.vmeters[HWCPU]; bound {
		vm.setResident(now, resident)
	}
	// The DRAM scope rides the CPU balloon: while it is open, all memory
	// traffic belongs to the sandbox.
	if vm, bound := b.vmeters[HWDRAM]; bound {
		vm.setResident(now, resident)
	}
}

// onDevResident handles temporal-balloon residency on accelerators and the
// NIC (their drivers already virtualize the device power state).
func (mgr *Manager) onDevResident(h HW, appID int, resident bool) {
	mgr.trackResidency(h, appID, resident)
	b, ok := mgr.boxes[appID]
	if !ok {
		return
	}
	if vm, bound := b.vmeters[h]; bound {
		vm.setResident(mgr.k.Engine().Now(), resident)
	}
}

// App returns the enclosed app.
func (b *Box) App() *kernel.App { return b.app }

// HW lists the bound scopes in stable order.
func (b *Box) HW() []HW { return b.hw }

// Entered reports whether the app is currently inside its sandbox.
func (b *Box) Entered() bool { return b.entered }

// Enter activates the sandbox (psbox_enter): the kernel starts enforcing
// resource-balloon boundaries for the app on every bound scope, and the
// virtual power meter starts producing observations.
func (b *Box) Enter() {
	if b.entered {
		return
	}
	b.entered = true
	b.enters++
	b.mgr.bus.Instant(obs.CatBox, "enter", b.app.ID, int64(b.enters), "", b.app.Name)
	b.mgr.bus.Count("box.enters", b.app.ID, "", 1)
	now := b.mgr.k.Engine().Now()
	for _, h := range b.hw {
		b.vmeters[h].enter(now)
		switch h {
		case HWWiFi, HWDisplay, HWGPS:
			// Per-app virtual/attribution rails: resident across the
			// entire entered span; no balloons involved.
			b.vmeters[h].setResident(now, true)
		}
	}
	// Activate enforcement last: activation may open a balloon immediately,
	// and the meters must be listening by then.
	for _, h := range b.hw {
		switch h {
		case HWCPU:
			if !b.mgr.DisableStateVirt {
				b.armVirtualGovernor()
			}
			b.mgr.k.Scheduler().ActivateGroup(b.app.ID)
		case HWWiFi:
			b.mgr.k.Net().BoxEnter(b.app.ID)
		case HWDisplay, HWGPS:
			// No enforcement needed: these scopes are entanglement-free
			// (§7), the attribution rails are exact by construction.
		case HWDRAM:
			// Enforced by the CPU scope's spatial balloons (required at
			// Create).
		default:
			b.mgr.k.Accel(string(h)).BoxEnter(b.app.ID)
		}
	}
}

// Leave deactivates the sandbox (psbox_leave): enforcement stops, the app
// runs at full speed again, and the virtual meter stops accumulating.
// Observations already collected remain readable; the app's adaptation
// decisions remain valid because its vertical environment was preserved.
func (b *Box) Leave() {
	if !b.entered {
		return
	}
	for _, h := range b.hw {
		switch h {
		case HWCPU:
			b.mgr.k.Scheduler().DeactivateGroup(b.app.ID)
		case HWWiFi:
			b.mgr.k.Net().BoxLeave(b.app.ID)
		case HWDisplay, HWGPS, HWDRAM:
			// Nothing to tear down.
		default:
			b.mgr.k.Accel(string(h)).BoxLeave(b.app.ID)
		}
	}
	now := b.mgr.k.Engine().Now()
	for _, h := range b.hw {
		b.vmeters[h].leave(now)
	}
	if b.cpuGovArm != (sim.Handle{}) {
		b.mgr.k.Engine().Cancel(b.cpuGovArm)
		b.cpuGovArm = sim.Handle{}
	}
	b.cpuResAccum = 0
	b.entered = false
	b.mgr.bus.Instant(obs.CatBox, "leave", b.app.ID, int64(b.enters), "", b.app.Name)
}

// armVirtualGovernor starts the box's virtual DVFS governor, paced like
// the hardware one.
func (b *Box) armVirtualGovernor() {
	cfg := b.mgr.k.CPU().Config()
	if cfg.GovernorWindow <= 0 {
		return
	}
	b.cpuLastDemand = b.app.TotalDemand()
	b.cpuGovArm = b.mgr.k.Engine().After(cfg.GovernorWindow, b.virtualGovTick)
}

// virtualGovTick evaluates the utilization of the box's vertical
// environment over the closing window and steps its virtual operating
// point, mirroring the ondemand policy. The signal reconstructs what the
// governor would have seen with the app alone: busy = the balloon's
// residency; idle = the app's *voluntary* idle only. Time the app spent
// runnable-but-unscheduled (demand − residency) is squeezed out — a
// saturating app looks 100% utilized no matter how little CPU the
// scheduler granted it, while a frame-paced app keeps its duty cycle.
func (b *Box) virtualGovTick(now sim.Time) {
	b.cpuGovArm = sim.Handle{}
	if !b.entered {
		return
	}
	c := b.mgr.k.CPU()
	cfg := c.Config()
	res := b.cpuResAccum
	if b.cpuResident {
		res += now.Sub(b.cpuResSince)
		b.cpuResSince = now
	}
	b.cpuResAccum = 0
	demand := b.app.TotalDemand()
	dDelta := demand - b.cpuLastDemand
	b.cpuLastDemand = demand
	wait := dDelta - res // involuntary waiting
	if wait < 0 {
		wait = 0
	}
	denom := cfg.GovernorWindow - wait
	var util float64
	if denom <= 0 {
		util = 1
	} else {
		util = res.Seconds() / denom.Seconds()
	}
	cur := b.cpuState.FreqIdx
	if b.cpuResident {
		cur = c.FreqIdx() // the live state is the box's while resident
	}
	switch {
	case util > cfg.UpThreshold && cur < c.TopFreqIdx():
		cur++
	case util < cfg.DownThreshold && cur > 0:
		cur--
	}
	b.mgr.bus.Instant(obs.CatBox, "virtual-gov", b.app.ID, int64(cur), "", b.app.Name)
	if b.cpuResident {
		if cur != c.FreqIdx() {
			c.SetFreqIdx(cur)
		}
	} else {
		b.cpuState.FreqIdx = cur
	}
	b.armVirtualGovernor()
}

// Read returns the accumulated energy observed by the box across all bound
// scopes (psbox_read): exact integration of the virtual power meter over
// all entered time.
func (b *Box) Read() power.Joules {
	now := b.mgr.k.Engine().Now()
	var e power.Joules
	for _, h := range b.hw {
		e += b.vmeters[h].Energy(now)
	}
	return e
}

// ReadDetail splits the box's observation (psbox_read) into DAQ-backed
// energy, degraded-mode estimated energy, and the number of meter dropout
// gaps the estimate bridged. est and gaps are zero in a healthy run; when
// the DAQ dropped samples, Read() = direct + est stays monotone and the
// caller can see exactly how much of it is model-based.
func (b *Box) ReadDetail() (direct, est power.Joules, gaps int) {
	now := b.mgr.k.Engine().Now()
	for _, h := range b.hw {
		d, e, g := b.vmeters[h].EnergyDetail(now)
		direct += d
		est += e
		gaps += g
	}
	return direct, est, gaps
}

// Degraded reports whether any part of the box's observation so far was
// estimated across meter dropout windows rather than DAQ-backed.
func (b *Box) Degraded() bool {
	_, _, gaps := b.ReadDetail()
	return gaps > 0
}

// ReadScope returns the accumulated energy of one bound scope.
func (b *Box) ReadScope(h HW) power.Joules {
	vm, ok := b.vmeters[h]
	if !ok {
		panic(fmt.Sprintf("psbox: scope %q not bound", h))
	}
	return vm.Energy(b.mgr.k.Engine().Now())
}

// Sample drains up to max new timestamped samples of one bound scope since
// the previous Sample call (psbox_sample). Timestamps come from the same
// clock the app reads via clock_gettime, so power maps onto software
// activity at the meter's resolution.
func (b *Box) Sample(h HW, max int) []power.Sample {
	vm, ok := b.vmeters[h]
	if !ok {
		panic(fmt.Sprintf("psbox: scope %q not bound", h))
	}
	return vm.Drain(b.mgr.k.Engine().Now(), max)
}

// SamplesBetween returns the virtual meter's samples of one scope over a
// time range, for offline analysis in experiments.
func (b *Box) SamplesBetween(h HW, from, to sim.Time) []power.Sample {
	vm, ok := b.vmeters[h]
	if !ok {
		panic(fmt.Sprintf("psbox: scope %q not bound", h))
	}
	return vm.SamplesBetween(from, to, nil)
}

// Enters reports how many times the box has been entered.
func (b *Box) Enters() uint64 { return b.enters }
