package core

import (
	"math"
	"testing"
	"testing/quick"

	"psbox/internal/hw/power"
	"psbox/internal/sim"
)

const us = sim.Microsecond

func newVMFixture() (*sim.Engine, *power.Rail, *VirtualMeter) {
	eng := sim.NewEngine()
	rail := power.NewRail(eng, "r", 2.0)
	vm := newVirtualMeter(rail, 0.5, 10*us, nil)
	return eng, rail, vm
}

func TestVMeterIdleFillOnly(t *testing.T) {
	eng, _, vm := newVMFixture()
	vm.enter(eng.Now())
	eng.RunFor(1 * sim.Millisecond)
	// Never resident: pure idle fill at 0.5 W.
	if got := vm.Energy(eng.Now()); math.Abs(got-0.5*0.001) > 1e-12 {
		t.Fatalf("energy = %v", got)
	}
	s := vm.SamplesBetween(0, eng.Now(), nil)
	if len(s) != 100 {
		t.Fatalf("samples = %d", len(s))
	}
	for _, x := range s {
		if x.W != 0.5 {
			t.Fatalf("idle sample = %v", x.W)
		}
	}
}

func TestVMeterResidencySplicesRail(t *testing.T) {
	eng, rail, vm := newVMFixture()
	vm.enter(eng.Now())
	eng.RunFor(1 * sim.Millisecond)
	vm.setResident(eng.Now(), true)
	rail.Set(3.0)
	eng.RunFor(1 * sim.Millisecond)
	vm.setResident(eng.Now(), false)
	rail.Set(7.0) // others' power after residency: must NOT be observed
	eng.RunFor(1 * sim.Millisecond)
	want := 0.5*0.001 + 3.0*0.001 + 0.5*0.001
	if got := vm.Energy(eng.Now()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy = %v want %v", got, want)
	}
	s := vm.SamplesBetween(0, eng.Now(), nil)
	var saw3, saw7 bool
	for _, x := range s {
		if x.W == 3.0 {
			saw3 = true
		}
		if x.W == 7.0 {
			saw7 = true
		}
	}
	if !saw3 || saw7 {
		t.Fatalf("sample splice wrong: saw3=%v saw7=%v", saw3, saw7)
	}
}

func TestVMeterNoAccumulationOutside(t *testing.T) {
	eng, _, vm := newVMFixture()
	eng.RunFor(1 * sim.Millisecond) // not entered
	if vm.Energy(eng.Now()) != 0 {
		t.Fatal("energy before enter")
	}
	vm.enter(eng.Now())
	eng.RunFor(1 * sim.Millisecond)
	vm.leave(eng.Now())
	e := vm.Energy(eng.Now())
	eng.RunFor(5 * sim.Millisecond)
	if vm.Energy(eng.Now()) != e {
		t.Fatal("energy accumulated while left")
	}
	if got := len(vm.SamplesBetween(0, eng.Now(), nil)); got != 100 {
		t.Fatalf("samples outside entered spans: %d", got)
	}
}

func TestVMeterDoubleTransitionsAreNoOps(t *testing.T) {
	eng, _, vm := newVMFixture()
	vm.enter(eng.Now())
	vm.enter(eng.Now())
	vm.setResident(eng.Now(), false) // already false
	eng.RunFor(1 * sim.Millisecond)
	vm.setResident(eng.Now(), true)
	vm.setResident(eng.Now(), true)
	eng.RunFor(1 * sim.Millisecond)
	vm.leave(eng.Now())
	vm.leave(eng.Now())
	want := 0.5*0.001 + 2.0*0.001
	if got := vm.Energy(eng.Now()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy = %v want %v", got, want)
	}
}

func TestVMeterDrainCursorSkipsGaps(t *testing.T) {
	eng, _, vm := newVMFixture()
	vm.enter(eng.Now())
	eng.RunFor(500 * us)
	got := vm.Drain(eng.Now(), 1<<20)
	if len(got) != 50 {
		t.Fatalf("first drain = %d", len(got))
	}
	vm.leave(eng.Now())
	eng.RunFor(500 * us)
	vm.enter(eng.Now())
	eng.RunFor(500 * us)
	got = vm.Drain(eng.Now(), 1<<20)
	// Only the re-entered span yields samples; the gap is silent.
	if len(got) != 50 {
		t.Fatalf("post-gap drain = %d", len(got))
	}
	for _, s := range got {
		if s.T < sim.Time(1000*us) {
			t.Fatalf("sample from the gap: %v", s.T)
		}
	}
	if vm.Drain(eng.Now(), 10) != nil {
		t.Fatal("drain should be empty immediately after")
	}
}

// Property: energy equals the idle-fill baseline plus the rail-vs-idle
// difference integrated over resident spans only, for random transition
// scripts.
func TestQuickVMeterEnergyDecomposition(t *testing.T) {
	f := func(seed uint64, script []uint8) bool {
		eng := sim.NewEngine()
		rail := power.NewRail(eng, "r", 1.0)
		vm := newVirtualMeter(rail, 0.25, 10*us, nil)
		r := sim.NewRand(seed)
		vm.enter(eng.Now())

		var residentEnergy float64 // exact rail integral over resident spans
		var residentTime, enteredTime sim.Duration
		resident := false
		var resStart sim.Time
		entered := true
		var entStart sim.Time

		steps := 0
		for _, op := range script {
			if steps >= 20 {
				break
			}
			steps++
			d := sim.Duration(r.Intn(900)+100) * us
			eng.RunFor(d)
			rail.Set(float64(r.Intn(5)) + 0.5)
			switch op % 3 {
			case 0: // toggle residency (only meaningful while entered)
				if entered {
					if resident {
						residentEnergy += rail.EnergyBetween(resStart, eng.Now())
						residentTime += eng.Now().Sub(resStart)
					} else {
						resStart = eng.Now()
					}
					// mirror into the meter AFTER bookkeeping
					resident = !resident
					if resident {
						resStart = eng.Now()
					}
					vm.setResident(eng.Now(), resident)
				}
			case 1:
				if entered {
					if resident {
						residentEnergy += rail.EnergyBetween(resStart, eng.Now())
						residentTime += eng.Now().Sub(resStart)
						resident = false
					}
					enteredTime += eng.Now().Sub(entStart)
					entered = false
					vm.leave(eng.Now())
				}
			case 2:
				if !entered {
					entered = true
					entStart = eng.Now()
					vm.enter(eng.Now())
				}
			}
		}
		eng.RunFor(300 * us)
		if resident {
			residentEnergy += rail.EnergyBetween(resStart, eng.Now())
			residentTime += eng.Now().Sub(resStart)
		}
		if entered {
			enteredTime += eng.Now().Sub(entStart)
		}
		want := residentEnergy + 0.25*(enteredTime-residentTime).Seconds()
		got := vm.Energy(eng.Now())
		return math.Abs(got-want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
