package core_test

import (
	"math"
	"testing"

	psbox "psbox"
)

// Multiple concurrent sandboxes: balloons serialize per rail, every box's
// observation stays insulated, and costs land on each box separately.

func TestTwoCPUBoxesBothConsistent(t *testing.T) {
	type result struct{ a, b float64 }
	run := func(boxBoth bool) result {
		sys := psbox.NewAM57(61)
		mk := func(name string, burst float64, period psbox.Duration) *psbox.App {
			app := sys.Kernel.NewApp(name)
			app.Spawn("t", 0, psbox.Loop(
				psbox.Compute{Cycles: burst},
				psbox.Sleep{D: period},
			))
			return app
		}
		a := mk("a", 2e6, 8*psbox.Millisecond)
		b := mk("b", 4e6, 12*psbox.Millisecond)
		boxA := sys.Sandbox.MustCreate(a, psbox.HWCPU)
		boxA.Enter()
		var boxB *psbox.Box
		if boxBoth {
			boxB = sys.Sandbox.MustCreate(b, psbox.HWCPU)
			boxB.Enter()
		}
		sys.Run(2 * psbox.Second)
		r := result{a: boxA.Read()}
		if boxB != nil {
			r.b = boxB.Read()
		}
		return r
	}
	solo := run(false)
	both := run(true)
	// A's observation is invariant to B also sandboxing itself.
	if diff := math.Abs(both.a-solo.a) / solo.a; diff > 0.05 {
		t.Fatalf("box A shifted %.1f%% when B boxed too", diff*100)
	}
	if both.b <= 0 {
		t.Fatal("box B observed nothing")
	}
}

func TestTwoBoxesNeverResidentTogether(t *testing.T) {
	sys := psbox.NewAM57(62)
	var apps [2]*psbox.App
	for i := range apps {
		apps[i] = sys.Kernel.NewApp("app")
		apps[i].Spawn("t", i, psbox.Loop(
			psbox.Compute{Cycles: 2e6},
			psbox.Sleep{D: 5 * psbox.Millisecond},
		))
	}
	resident := map[int]bool{}
	violations := 0
	sys.Kernel.OnCPUResident(func(appID int, r bool) {
		resident[appID] = r
		n := 0
		for _, v := range resident {
			if v {
				n++
			}
		}
		if n > 1 {
			violations++
		}
	})
	for _, a := range apps {
		sys.Sandbox.MustCreate(a, psbox.HWCPU).Enter()
	}
	sys.Run(2 * psbox.Second)
	if violations != 0 {
		t.Fatalf("%d overlapping residencies", violations)
	}
	for _, a := range apps {
		if !resident[a.ID] && sys.Sandbox.Box(a.ID).Read() == 0 {
			t.Fatal("a box never got residency")
		}
	}
}

func TestTwoGPUBoxesShareDevice(t *testing.T) {
	sys := psbox.NewAM57(63)
	mk := func() *psbox.App {
		app := sys.Kernel.NewApp("g")
		app.Spawn("t", 0, psbox.Loop(
			psbox.Compute{Cycles: 3e5},
			psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 2000, DynW: 0.5},
			psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
			psbox.Sleep{D: 10 * psbox.Millisecond},
		))
		return app
	}
	a, b := mk(), mk()
	boxA := sys.Sandbox.MustCreate(a, psbox.HWGPU)
	boxB := sys.Sandbox.MustCreate(b, psbox.HWGPU)
	boxA.Enter()
	boxB.Enter()
	sys.Run(2 * psbox.Second)
	drv := sys.Kernel.Accel("gpu")
	if drv.Completed(a.ID) == 0 || drv.Completed(b.ID) == 0 {
		t.Fatal("both boxed apps must progress")
	}
	if boxA.Read() <= 0 || boxB.Read() <= 0 {
		t.Fatal("both boxes must observe energy")
	}
	// Rough symmetry: identical apps observe similar energy.
	ratio := boxA.Read() / boxB.Read()
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("asymmetric observations: %v", ratio)
	}
}

func TestMixedScopesAcrossApps(t *testing.T) {
	sys := psbox.NewBeagleBone(64)
	a := sys.Kernel.NewApp("net")
	sock := a.OpenSocket()
	a.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 2e5},
		psbox.Send{Socket: sock, Bytes: 2000},
		psbox.AwaitNet{MaxBacklog: 0},
		psbox.Sleep{D: 40 * psbox.Millisecond},
	))
	b := sys.Kernel.NewApp("cpu")
	b.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	boxA := sys.Sandbox.MustCreate(a, psbox.HWWiFi)
	boxB := sys.Sandbox.MustCreate(b, psbox.HWCPU)
	boxA.Enter()
	boxB.Enter()
	sys.Run(2 * psbox.Second)
	if boxA.Read() <= 0 || boxB.Read() <= 0 {
		t.Fatal("different-scope boxes must coexist")
	}
	if sys.Kernel.Net().SentBytes(a.ID) == 0 {
		t.Fatal("net app stalled")
	}
}
