package core

import (
	"math"
	"testing"

	"psbox/internal/hw/power"
	"psbox/internal/meter"
	"psbox/internal/sim"
)

// newDegradedFixture wires a virtual meter to a real DAQ so injected
// dropout windows flow through the gaps callback, as Box.Create does.
func newDegradedFixture() (*sim.Engine, *power.Rail, *meter.Meter, *VirtualMeter) {
	eng := sim.NewEngine()
	rail := power.NewRail(eng, "r", 2.0)
	m := meter.New(eng, 10*us)
	m.AddRail(rail)
	vm := newVirtualMeter(rail, 0.5, 10*us, func(a, b sim.Time) []meter.Window {
		return m.Dropouts("r", a, b)
	})
	return eng, rail, m, vm
}

func TestVMeterDegradedHoldsLastPowerAcrossGap(t *testing.T) {
	eng, rail, m, vm := newDegradedFixture()
	vm.enter(eng.Now())
	vm.setResident(eng.Now(), true)
	eng.RunFor(1 * sim.Millisecond)
	rail.Set(3.0)
	m.InjectDropout("r", sim.Time(2000*us), sim.Time(4000*us))
	eng.RunFor(1500 * us)
	rail.Set(9.0) // mid-gap: the DAQ never sees this
	eng.RunFor(2500 * us)

	direct, est, gaps := vm.EnergyDetail(eng.Now())
	if gaps != 1 {
		t.Fatalf("gaps = %d, want 1", gaps)
	}
	// Direct: 2 W over [0, 1ms), 3 W over [1ms, 2ms), 9 W over [4ms, 5ms).
	wantDirect := 2.0*0.001 + 3.0*0.001 + 9.0*0.001
	if math.Abs(direct-wantDirect) > 1e-12 {
		t.Fatalf("direct = %v want %v", direct, wantDirect)
	}
	// Estimate: the last DAQ-visible power (3 W) held across the 2 ms gap.
	if math.Abs(est-3.0*0.002) > 1e-12 {
		t.Fatalf("est = %v want %v", est, 3.0*0.002)
	}
}

func TestVMeterDegradedEnergyStaysMonotone(t *testing.T) {
	eng, rail, m, vm := newDegradedFixture()
	vm.enter(eng.Now())
	vm.setResident(eng.Now(), true)
	m.InjectDropout("r", sim.Time(500*us), sim.Time(2500*us))
	prev := vm.Energy(eng.Now())
	for i := 0; i < 40; i++ {
		eng.RunFor(100 * us)
		rail.Set(float64(i%5) + 0.5) // churn, including inside the gap
		got := vm.Energy(eng.Now())
		if got < prev {
			t.Fatalf("energy went backwards at %v: %v -> %v", eng.Now(), prev, got)
		}
		prev = got
	}
}

func TestVMeterDegradedSamplesHoldValue(t *testing.T) {
	eng, rail, m, vm := newDegradedFixture()
	vm.enter(eng.Now())
	vm.setResident(eng.Now(), true)
	eng.RunFor(1 * sim.Millisecond)
	rail.Set(4.0)
	m.InjectDropout("r", sim.Time(2000*us), sim.Time(3000*us))
	eng.RunFor(3 * sim.Millisecond)

	s := vm.SamplesBetween(0, eng.Now(), nil)
	if len(s) != 400 {
		t.Fatalf("samples = %d, want 400 over 4 ms", len(s))
	}
	for _, x := range s {
		inGap := x.T >= sim.Time(2000*us) && x.T < sim.Time(3000*us)
		switch {
		case x.T < sim.Time(1000*us) && x.W != 2.0:
			t.Fatalf("pre-change sample %v = %v", x.T, x.W)
		case inGap && x.W != 4.0:
			t.Fatalf("gap sample %v = %v, want the 4 W hold", x.T, x.W)
		case !inGap && x.T >= sim.Time(1000*us) && x.W != 4.0:
			t.Fatalf("post-change sample %v = %v", x.T, x.W)
		}
	}
}

func TestVMeterDropoutOutsideResidencyIsInvisible(t *testing.T) {
	eng, _, m, vm := newDegradedFixture()
	vm.enter(eng.Now()) // entered but never resident: pure idle fill
	m.InjectDropout("r", sim.Time(1000*us), sim.Time(2000*us))
	eng.RunFor(3 * sim.Millisecond)
	direct, est, gaps := vm.EnergyDetail(eng.Now())
	if est != 0 || gaps != 0 {
		t.Fatalf("idle fill flagged a DAQ gap: est=%v gaps=%d", est, gaps)
	}
	if math.Abs(direct-0.5*0.003) > 1e-12 {
		t.Fatalf("direct = %v", direct)
	}
}
