package core_test

import (
	"testing"

	psbox "psbox"
)

// Failure injection: the sandbox machinery must survive tasks dying at
// arbitrary points — mid-balloon, mid-drain, while blocked on a device.

func TestKillBoxedTaskMidBalloon(t *testing.T) {
	sys := psbox.NewAM57(51)
	app := sys.Kernel.NewApp("victim")
	tk := app.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	other := sys.Kernel.NewApp("other")
	other.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	sys.Run(100 * psbox.Millisecond)
	sys.Kernel.Kill(tk) // dies inside (or between) coscheduling windows
	base := other.CPUTime()
	sys.Run(500 * psbox.Millisecond)
	// The survivor inherits the whole machine.
	if got := (other.CPUTime() - base).Seconds(); got < 0.45 {
		t.Fatalf("survivor got only %vs of the last 0.5s", got)
	}
	// The box stops accumulating once its app is gone.
	e := box.Read()
	sys.Run(200 * psbox.Millisecond)
	if box.Read() < e {
		t.Fatal("box energy went backwards")
	}
}

func TestKillTaskBlockedOnAccelerator(t *testing.T) {
	sys := psbox.NewAM57(52)
	app := sys.Kernel.NewApp("a")
	tk := app.Spawn("t", 0, psbox.Loop(
		psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 50000, DynW: 0.5},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
		psbox.Compute{Cycles: 1e5},
	))
	box := sys.Sandbox.MustCreate(app, psbox.HWGPU)
	box.Enter()
	sys.Run(20 * psbox.Millisecond) // command in flight, task blocked
	sys.Kernel.Kill(tk)
	sys.Run(2 * psbox.Second) // the orphaned command must still retire
	if sys.Kernel.Accel("gpu").Backlog(app.ID) != 0 {
		t.Fatal("orphaned command never drained")
	}
	// Other apps are unaffected afterwards.
	other := sys.Kernel.NewApp("b")
	other.Spawn("t", 1, psbox.Sequence(
		psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 1000, DynW: 0.5},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
	))
	sys.Run(1 * psbox.Second)
	if sys.Kernel.Accel("gpu").Completed(other.ID) != 1 {
		t.Fatal("device unusable after orphan")
	}
}

func TestLeaveWhileTaskBlockedOnDevice(t *testing.T) {
	sys := psbox.NewBeagleBone(53)
	app := sys.Kernel.NewApp("a")
	sock := app.OpenSocket()
	app.Spawn("t", 0, psbox.Loop(
		psbox.Send{Socket: sock, Bytes: 20000},
		psbox.AwaitNet{MaxBacklog: 0},
		psbox.Sleep{D: 30 * psbox.Millisecond},
	))
	box := sys.Sandbox.MustCreate(app, psbox.HWWiFi)
	box.Enter()
	sys.Run(15 * psbox.Millisecond) // frame on the air inside the balloon
	box.Leave()
	sys.Run(1 * psbox.Second)
	if sys.Kernel.Net().SentBytes(app.ID) == 0 {
		t.Fatal("transfer stalled after leave")
	}
	box.Enter()
	sys.Run(1 * psbox.Second)
	if !box.Entered() {
		t.Fatal("re-enter failed")
	}
}

func TestExitWholeAppWhileBoxed(t *testing.T) {
	sys := psbox.NewAM57(54)
	app := sys.Kernel.NewApp("a")
	// All tasks exit naturally while the box is entered.
	app.Spawn("t0", 0, psbox.Sequence(psbox.Compute{Cycles: 5e6}))
	app.Spawn("t1", 1, psbox.Sequence(psbox.Compute{Cycles: 5e6}))
	other := sys.Kernel.NewApp("b")
	other.Spawn("t", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
	box.Enter()
	sys.Run(1 * psbox.Second)
	for _, tk := range app.Tasks() {
		if !tk.Dead() {
			t.Fatal("tasks should have exited")
		}
	}
	// The empty box is inert; leaving and re-entering is harmless.
	box.Leave()
	box.Enter()
	sys.Run(100 * psbox.Millisecond)
}

func TestRapidEnterLeaveChurn(t *testing.T) {
	sys := psbox.NewAM57(55)
	app := sys.Kernel.NewApp("a")
	app.Spawn("t", 0, psbox.Loop(
		psbox.Compute{Cycles: 5e5},
		psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 800, DynW: 0.4},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 0},
	))
	other := sys.Kernel.NewApp("b")
	other.Spawn("t", 1, psbox.Loop(
		psbox.Compute{Cycles: 5e5},
		psbox.SubmitAccel{Dev: "gpu", Kind: "k", Work: 2000, DynW: 0.6},
		psbox.AwaitAccel{Dev: "gpu", MaxBacklog: 1},
	))
	box := sys.Sandbox.MustCreate(app, psbox.HWCPU, psbox.HWGPU)
	for i := 0; i < 50; i++ {
		box.Enter()
		sys.Run(7 * psbox.Millisecond)
		box.Leave()
		sys.Run(3 * psbox.Millisecond)
	}
	if sys.Kernel.Accel("gpu").Completed(app.ID) == 0 ||
		sys.Kernel.Accel("gpu").Completed(other.ID) == 0 {
		t.Fatal("churn stalled the device")
	}
	if box.Enters() != 50 {
		t.Fatalf("enters = %d", box.Enters())
	}
}
