// Package model implements model-based power metering, the classic
// alternative to direct measurement that §2.2 examines: a linear model
// regressed from software-visible activity signals (per-core utilization,
// operating point) onto measured rail power — in the spirit of
// self-constructive modeling systems (refs [26], [82], [94]).
//
// The package exists to demonstrate §2.2's two claims: a well-fitted model
// can track the rail closely on its training distribution, yet (i) it
// degrades on operating conditions absent from training, and (ii) however
// accurate, its output is *system* power — the entanglement of §2.3 is
// untouched, which is why psbox insulates at the resource-multiplexing
// level instead.
package model

import (
	"fmt"
	"math"
)

// Sample is one training/evaluation observation: feature vector plus the
// measured watts.
type Sample struct {
	Features []float64
	Watts    float64
}

// Linear is a fitted linear power model: watts = Intercept + Coef·x.
type Linear struct {
	Names     []string
	Coef      []float64
	Intercept float64
}

// Fit performs ordinary least squares via the normal equations with
// Gaussian elimination (partial pivoting). It needs at least one more
// sample than features.
func Fit(names []string, data []Sample) (*Linear, error) {
	k := len(names)
	if k == 0 {
		return nil, fmt.Errorf("model: need at least one feature")
	}
	if len(data) <= k {
		return nil, fmt.Errorf("model: %d samples cannot fit %d features", len(data), k)
	}
	for i, s := range data {
		if len(s.Features) != k {
			return nil, fmt.Errorf("model: sample %d has %d features, want %d", i, len(s.Features), k)
		}
	}
	// Design matrix with a leading intercept column: solve (XᵀX)β = Xᵀy.
	n := k + 1
	ata := make([][]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n+1) // augmented with Xᵀy
	}
	for _, s := range data {
		row := make([]float64, n)
		row[0] = 1
		copy(row[1:], s.Features)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
			ata[i][n] += row[i] * s.Watts
		}
	}
	beta, err := solve(ata)
	if err != nil {
		return nil, err
	}
	m := &Linear{Names: append([]string(nil), names...), Intercept: beta[0]}
	m.Coef = append(m.Coef, beta[1:]...)
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented matrix.
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
				best = r
			}
		}
		if math.Abs(a[best][col]) < 1e-12 {
			return nil, fmt.Errorf("model: singular design matrix (collinear or constant feature)")
		}
		a[col], a[best] = a[best], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Predict evaluates the model on one feature vector.
func (m *Linear) Predict(features []float64) float64 {
	if len(features) != len(m.Coef) {
		panic(fmt.Sprintf("model: predict with %d features, want %d", len(features), len(m.Coef)))
	}
	w := m.Intercept
	for i, f := range features {
		w += m.Coef[i] * f
	}
	return w
}

// MAE reports the mean absolute error over a data set.
func (m *Linear) MAE(data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	var sum float64
	for _, s := range data {
		sum += math.Abs(m.Predict(s.Features) - s.Watts)
	}
	return sum / float64(len(data))
}

// MAPE reports the mean absolute percentage error over a data set.
func (m *Linear) MAPE(data []Sample) float64 {
	n := 0
	var sum float64
	for _, s := range data {
		if s.Watts <= 0 {
			continue
		}
		sum += math.Abs(m.Predict(s.Features)-s.Watts) / s.Watts
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) * 100
}

// R2 reports the coefficient of determination over a data set.
func (m *Linear) R2(data []Sample) float64 {
	if len(data) == 0 {
		return 0
	}
	var mean float64
	for _, s := range data {
		mean += s.Watts
	}
	mean /= float64(len(data))
	var ssRes, ssTot float64
	for _, s := range data {
		d := s.Watts - m.Predict(s.Features)
		ssRes += d * d
		ssTot += (s.Watts - mean) * (s.Watts - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

func (m *Linear) String() string {
	s := fmt.Sprintf("P = %.4f", m.Intercept)
	for i, c := range m.Coef {
		s += fmt.Sprintf(" %+.4f·%s", c, m.Names[i])
	}
	return s
}
