package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	psbox "psbox"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

func TestFitRecoversExactLinearLaw(t *testing.T) {
	// P = 0.8 + 1.3·u0 + 0.9·u1
	var data []Sample
	for _, u0 := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, u1 := range []float64{0, 0.5, 1} {
			data = append(data, Sample{
				Features: []float64{u0, u1},
				Watts:    0.8 + 1.3*u0 + 0.9*u1,
			})
		}
	}
	m, err := Fit([]string{"u0", "u1"}, data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-0.8) > 1e-9 ||
		math.Abs(m.Coef[0]-1.3) > 1e-9 ||
		math.Abs(m.Coef[1]-0.9) > 1e-9 {
		t.Fatalf("fit = %v", m)
	}
	if m.MAE(data) > 1e-9 || m.R2(data) < 1-1e-9 {
		t.Fatalf("exact law: MAE=%v R2=%v", m.MAE(data), m.R2(data))
	}
	if !strings.Contains(m.String(), "u0") {
		t.Fatal("String missing feature names")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("no features should fail")
	}
	if _, err := Fit([]string{"x"}, []Sample{{Features: []float64{1}, Watts: 1}}); err == nil {
		t.Fatal("too few samples should fail")
	}
	if _, err := Fit([]string{"x"}, []Sample{
		{Features: []float64{1, 2}, Watts: 1},
		{Features: []float64{1}, Watts: 1},
	}); err == nil {
		t.Fatal("ragged features should fail")
	}
	// Constant feature ⇒ singular design matrix.
	if _, err := Fit([]string{"x"}, []Sample{
		{Features: []float64{2}, Watts: 1},
		{Features: []float64{2}, Watts: 2},
		{Features: []float64{2}, Watts: 3},
	}); err == nil {
		t.Fatal("collinear design should fail")
	}
}

func TestPredictArityPanics(t *testing.T) {
	m := &Linear{Names: []string{"x"}, Coef: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

// Property: OLS never fits worse (in squared error) than the mean
// predictor: R² ≥ 0 on training data.
func TestQuickFitBeatsMean(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		var data []Sample
		for i := 0; i < 40; i++ {
			x := []float64{r.Float64(), r.Float64()}
			w := 0.5 + 2*x[0] + 0.2*x[1] + 0.1*(r.Float64()-0.5)
			data = append(data, Sample{Features: x, Watts: w})
		}
		m, err := Fit([]string{"a", "b"}, data)
		if err != nil {
			return false
		}
		return m.R2(data) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The §2.2 demonstration: a model fitted on one workload tracks its
// training distribution well but degrades out of distribution, while
// direct measurement (the rail itself) is exact by construction.
func TestModelDegradesOutOfDistribution(t *testing.T) {
	collect := func(seed uint64, wl string, saturate bool) []Sample {
		sys := psbox.NewAM57(seed)
		workload.Install(sys.Kernel, workload.Catalog()[wl](2, saturate))
		sys.Run(200 * sim.Millisecond) // warm up
		return CollectCPU(sys, 2*sim.Second, 5*sim.Millisecond)
	}
	train := collect(1, "bodytrack", false)
	m, err := Fit(CPUFeatureNames(2), train)
	if err != nil {
		t.Fatal(err)
	}
	trainErr := m.MAPE(train)
	if trainErr > 10 {
		t.Fatalf("model cannot even track its training workload: %.1f%%", trainErr)
	}
	// Different workload mix, different DVFS pattern.
	test := collect(2, "dedup", true)
	testErr := m.MAPE(test)
	if testErr < trainErr {
		t.Fatalf("out-of-distribution error (%.1f%%) should exceed training error (%.1f%%)",
			testErr, trainErr)
	}
}

func TestCollectCPUShape(t *testing.T) {
	sys := psbox.NewAM57(3)
	workload.Install(sys.Kernel, workload.Calib3D(2, false))
	data := CollectCPU(sys, 500*sim.Millisecond, 10*sim.Millisecond)
	if len(data) != 50 {
		t.Fatalf("windows = %d", len(data))
	}
	for _, s := range data {
		if len(s.Features) != 3 {
			t.Fatalf("features = %v", s.Features)
		}
		if s.Watts <= 0 {
			t.Fatal("non-positive window power")
		}
		for _, f := range s.Features[:2] {
			if f < 0 || f > 1 {
				t.Fatalf("utilization out of range: %v", f)
			}
		}
	}
}
