package model

import (
	psbox "psbox"
	"psbox/internal/sim"
)

// CPUFeatureNames are the software-visible signals a kernel-level model
// regresses on: per-core busy fractions and the DVFS operating point.
func CPUFeatureNames(cores int) []string {
	names := make([]string, 0, cores+1)
	for i := 0; i < cores; i++ {
		names = append(names, "util"+string(rune('0'+i)))
	}
	return append(names, "freq_ghz")
}

// CollectCPU samples a running system's CPU rail against its
// software-visible activity: per-core occupancy within each window (from
// the usage recorder) plus the operating point observed at the window end.
// It advances the simulation by span.
func CollectCPU(sys *psbox.System, span sim.Duration, window sim.Duration) []Sample {
	cores := sys.Kernel.CPU().Cores()
	type win struct {
		busy []float64
		freq float64
	}
	var wins []win
	start := sys.Now()
	n := int(span / window)
	// Mark window boundaries: occupancy comes from the recorder afterwards,
	// frequency is snapshotted live at each boundary.
	freqAt := make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i
		sys.Eng.After(window*sim.Duration(i+1), func(sim.Time) {
			freqAt[idx] = sys.Kernel.CPU().FreqMHz() / 1000
		})
	}
	sys.Run(span)

	// Re-play the recorded occupancy spans into per-window busy fractions.
	// The recorder is per rail, not per core; spread occupancy across
	// cores by order of appearance within the window (the model only needs
	// total busy signal; per-core split is a convention).
	busy := make([][]float64, n)
	for i := range busy {
		busy[i] = make([]float64, cores)
	}
	for _, s := range sys.Recorders["cpu"].Spans() {
		if s.End <= start {
			continue
		}
		lo := s.Start
		if lo < start {
			lo = start
		}
		for t := lo; t < s.End; {
			w := int(t.Sub(start) / window)
			if w >= n {
				break
			}
			wEnd := start.Add(window * sim.Duration(w+1))
			hi := s.End
			if hi > wEnd {
				hi = wEnd
			}
			frac := hi.Sub(t).Seconds() / window.Seconds()
			// Fill the least-loaded core slot (occupancies of concurrent
			// spans land on distinct cores).
			min := 0
			for c := 1; c < cores; c++ {
				if busy[w][c] < busy[w][min] {
					min = c
				}
			}
			busy[w][min] += frac
			t = hi
		}
	}
	for i := 0; i < n; i++ {
		wins = append(wins, win{busy: busy[i], freq: freqAt[i]})
	}

	out := make([]Sample, 0, n)
	for i, w := range wins {
		a := start.Add(window * sim.Duration(i))
		b := a.Add(window)
		feat := make([]float64, 0, cores+1)
		for _, u := range w.busy {
			if u > 1 {
				u = 1
			}
			feat = append(feat, u)
		}
		feat = append(feat, w.freq)
		out = append(out, Sample{
			Features: feat,
			Watts:    sys.Meter.Energy("cpu", a, b) / window.Seconds(),
		})
	}
	return out
}
