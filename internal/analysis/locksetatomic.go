package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"psbox/internal/analysis/cfg"
)

// LockSetAtomic polices the packages that escaped noconcurrency — the
// ones that legitimately use host concurrency — with three checks:
//
//  1. Guard inference: a struct field whose accesses mostly happen while a
//     mutex field of the same struct is held is inferred to be guarded by
//     that mutex (strict majority over at least two accesses); each access
//     that does not hold the inferred guard is reported. Accesses on an
//     unpublished receiver — a local freshly built from a composite
//     literal in the same function — are exempt, the usual constructor
//     pattern.
//  2. sync.WaitGroup.Add inside a spawned goroutine races the spawner's
//     Wait and is reported; Add belongs before the go statement.
//  3. Mixed access: a cell touched through sync/atomic functions anywhere
//     in the package must never be read or written plainly — atomic and
//     plain access to the same cell is exactly the data race the atomics
//     were bought to prevent. Typed atomics (atomic.Int64 and friends)
//     cannot be accessed plainly and need no check.
//
// The lockset analysis is a forward must-analysis over the statement CFG:
// Lock/RLock adds the mutex cell, Unlock/RUnlock removes it, joins
// intersect, and a Lock behind a short-circuit condition does not count.
// Deferred unlocks run at function exit and do not release within the
// body. Each function literal is analyzed as its own unit, since its body
// runs under its caller's — often another goroutine's — lockset, not the
// spawner's.
var LockSetAtomic = &Analyzer{
	Name: "locksetatomic",
	Doc: `within packages that use host concurrency, infer which mutex
guards which struct fields (majority of accesses hold it), then report
accesses without the guard, sync.WaitGroup.Add inside the spawned
goroutine, and mixed atomic/plain access to the same cell.`,
	Run: runLockSetAtomic,
}

// lsFieldKey names one struct field cell: the declaring named type plus
// the field.
type lsFieldKey struct {
	tn    *types.TypeName
	field string
}

// lsAccess is one plain read or write of a struct field.
type lsAccess struct {
	pos    token.Pos
	key    lsFieldKey
	held   map[string]bool // sibling mutex fields held at the access
	exempt bool            // unpublished constructor-local receiver
}

func runLockSetAtomic(pass *Pass) {
	if !hasHostConcurrency(pass.Files) {
		return
	}
	masks := spawnMasks(pass.Prog)

	// Pass 1: cells accessed through sync/atomic package functions, and
	// the &cell argument expressions (excluded from the plain-access walk).
	atomicFields := make(map[lsFieldKey]token.Pos)
	atomicVars := make(map[types.Object]token.Pos)
	atomicArgs := make(map[ast.Expr]bool)
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		collectAtomicOps(pass, fd, atomicFields, atomicVars, atomicArgs)
	})

	// Pass 2: plain field accesses with their locksets, plus the
	// WaitGroup.Add placement check.
	var accesses []lsAccess
	forEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		collectAccesses(pass, fd, atomicArgs, &accesses)
		checkWaitGroupAdd(pass, fd, masks)
		reportPlainAtomicVarUses(pass, fd, atomicVars, atomicArgs)
	})

	// Guard inference: per field, the mutex held at the strict majority of
	// non-exempt accesses (ties broken by name for determinism).
	totals := make(map[lsFieldKey]int)
	counts := make(map[lsFieldKey]map[string]int)
	for _, a := range accesses {
		if a.exempt {
			continue
		}
		totals[a.key]++
		for m := range a.held {
			if counts[a.key] == nil {
				counts[a.key] = make(map[string]int)
			}
			counts[a.key][m]++
		}
	}
	guards := make(map[lsFieldKey]string)
	guardN := make(map[lsFieldKey]int)
	for key, byMutex := range counts {
		names := make([]string, 0, len(byMutex))
		for m := range byMutex {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			if n := byMutex[m]; n > guardN[key] {
				guards[key], guardN[key] = m, n
			}
		}
		if n := guardN[key]; n < 2 || n*2 <= totals[key] {
			delete(guards, key)
			delete(guardN, key)
		}
	}

	for _, a := range accesses {
		if !a.exempt {
			if m, ok := guards[a.key]; ok && !a.held[m] {
				pass.Reportf(a.pos,
					"field %s.%s is guarded by %s.%s on %d of %d accesses but is accessed here without holding it",
					a.key.tn.Name(), a.key.field, a.key.tn.Name(), m, guardN[a.key], totals[a.key])
			}
		}
		if ap, ok := atomicFields[a.key]; ok {
			pass.Reportf(a.pos,
				"plain access to %s.%s, which is accessed with sync/atomic at line %d; mixed atomic and plain access to the same cell is racy",
				a.key.tn.Name(), a.key.field, pass.Fset.Position(ap).Line)
		}
	}
}

// hasHostConcurrency reports whether the package spawns goroutines or
// imports the sync packages — the gate that keeps this analyzer out of the
// single-threaded simulator tree.
func hasHostConcurrency(files []*ast.File) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && (p == "sync" || p == "sync/atomic") {
				return true
			}
		}
		spawns := false
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				spawns = true
			}
			return !spawns
		})
		if spawns {
			return true
		}
	}
	return false
}

func forEachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// collectAtomicOps records every cell passed by address to a sync/atomic
// function (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&flag), ...).
func collectAtomicOps(pass *Pass, fd *ast.FuncDecl, fields map[lsFieldKey]token.Pos, vars map[types.Object]token.Pos, args map[ast.Expr]bool) {
	forEachCall(fd.Body, func(call *ast.CallExpr) {
		name, ok := qualifiedName(pass.Info, call.Fun, "sync/atomic")
		if !ok || len(call.Args) == 0 {
			return
		}
		switch {
		case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
			strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
			strings.HasPrefix(name, "CompareAndSwap"):
		default:
			return
		}
		arg := call.Args[0]
		args[arg] = true
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		switch target := ast.Unparen(un.X).(type) {
		case *ast.SelectorExpr:
			if key, ok := fieldKeyOf(pass, target); ok {
				if _, seen := fields[key]; !seen {
					fields[key] = call.Pos()
				}
			}
		case *ast.Ident:
			if o := pass.Info.Uses[target]; o != nil {
				if _, seen := vars[o]; !seen {
					vars[o] = call.Pos()
				}
			}
		}
	})
}

// fieldKeyOf resolves a selector to the (named type, field) cell it
// addresses, for types declared in the analyzed package. sync-typed
// fields (mutexes, wait groups, typed atomics) are infrastructure, not
// guarded data, and resolve to nothing.
func fieldKeyOf(pass *Pass, sel *ast.SelectorExpr) (lsFieldKey, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return lsFieldKey{}, false
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok || syncSideType(fieldVar.Type()) {
		return lsFieldKey{}, false
	}
	tn := namedOf(s.Recv())
	if tn == nil || tn.Pkg() != pass.Pkg {
		return lsFieldKey{}, false
	}
	return lsFieldKey{tn: tn, field: fieldVar.Name()}, true
}

// namedOf unwraps pointers and aliases to a named type's name object.
func namedOf(t types.Type) *types.TypeName {
	for i := 0; i < 8; i++ {
		t = types.Unalias(t)
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// syncSideType reports whether a type belongs to sync or sync/atomic —
// synchronization infrastructure rather than guarded data.
func syncSideType(t types.Type) bool {
	tn := namedOf(t)
	if tn == nil || tn.Pkg() == nil {
		return false
	}
	p := tn.Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// collectAccesses walks fd and each function literal inside it as separate
// lockset units (a literal's body runs under its caller's lockset, not its
// definition site's) and records every plain struct-field access with the
// mutex fields held at it.
func collectAccesses(pass *Pass, fd *ast.FuncDecl, atomicArgs map[ast.Expr]bool, out *[]lsAccess) {
	exempt := constructorLocals(pass.Info, fd)
	units := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit.Body)
		}
		return true
	})
	for _, body := range units {
		g := cfg.New(body)
		entry := lockStates(pass.Info, g)
		for _, b := range g.Blocks {
			held := cloneCells(entry[b])
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.DeferStmt); ok {
					continue // deferred unlocks release at exit, not here
				}
				recordAccesses(pass, n, held, exempt, atomicArgs, out)
				applyLockOps(pass.Info, n, held)
			}
		}
	}
}

// lockStates computes the must-held lockset at each block's entry: forward
// flow, intersection at joins, starting empty at Entry.
func lockStates(info *types.Info, g *cfg.Graph) map[*cfg.Block]map[gorCell]bool {
	in := make(map[*cfg.Block]map[gorCell]bool, len(g.Blocks))
	in[g.Entry] = map[gorCell]bool{}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := cloneCells(in[b])
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			applyLockOps(info, n, out)
		}
		for _, s := range b.Succs {
			cur, seen := in[s]
			if !seen {
				in[s] = cloneCells(out)
				work = append(work, s)
				continue
			}
			changed := false
			for c := range cur {
				if !out[c] {
					delete(cur, c)
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	return in
}

func cloneCells(m map[gorCell]bool) map[gorCell]bool {
	out := make(map[gorCell]bool, len(m))
	for c := range m {
		out[c] = true
	}
	return out
}

// applyLockOps updates the held set with the node's Lock/Unlock calls. A
// lock acquired behind a short-circuit condition is not a sure
// acquisition; a conditional unlock still kills (must-analysis rounds
// toward "not held").
func applyLockOps(info *types.Info, n ast.Node, held map[gorCell]bool) {
	cfg.CallsIn(n, func(call *ast.CallExpr, conditional bool) {
		cell, locks, ok := mutexOp(info, call)
		if !ok {
			return
		}
		if locks {
			if !conditional {
				held[cell] = true
			}
		} else {
			delete(held, cell)
		}
	})
}

// mutexOp recognizes sync.Mutex/RWMutex Lock/RLock (locks=true) and
// Unlock/RUnlock (locks=false) calls and resolves the mutex cell.
func mutexOp(info *types.Info, call *ast.CallExpr) (gorCell, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return gorCell{}, false, false
	}
	var locks bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return gorCell{}, false, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return gorCell{}, false, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return gorCell{}, false, false
	}
	cell, ok := gorCellOf(info, sel.X)
	if !ok {
		return gorCell{}, false, false
	}
	return cell, locks, true
}

// recordAccesses collects the node's plain struct-field accesses with the
// sibling mutex fields held at that point. Function literals are their own
// lockset units and atomic-call arguments their own access class; both are
// skipped here.
func recordAccesses(pass *Pass, n ast.Node, held map[gorCell]bool, exempt map[types.Object]bool, atomicArgs map[ast.Expr]bool, out *[]lsAccess) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := x.(ast.Expr); ok && atomicArgs[e] {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key, ok := fieldKeyOf(pass, sel)
		if !ok {
			return true
		}
		base, ok := gorCellOf(pass.Info, sel.X)
		if !ok {
			return true
		}
		guards := make(map[string]bool)
		for hc := range held {
			if hc.root != base.root {
				continue
			}
			if rest, ok := strings.CutPrefix(hc.path, base.path+"."); ok && !strings.Contains(rest, ".") {
				guards[rest] = true
			}
		}
		*out = append(*out, lsAccess{
			pos:    sel.Pos(),
			key:    key,
			held:   guards,
			exempt: exempt[base.root],
		})
		return true
	})
}

// constructorLocals collects locals assigned from a composite literal (or
// its address) inside fd: receivers still under construction, not yet
// published to any other goroutine.
func constructorLocals(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || !compositeAlloc(rhs) {
			return
		}
		if o := info.Defs[id]; o != nil {
			set[o] = true
		} else if o := info.Uses[id]; o != nil {
			set[o] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					mark(lhs, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
	return set
}

func compositeAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// checkWaitGroupAdd reports sync.WaitGroup.Add calls inside spawned
// goroutine bodies: by the time the goroutine runs Add, the spawner may
// already be past Wait.
func checkWaitGroupAdd(pass *Pass, fd *ast.FuncDecl, masks map[*types.Func]uint64) {
	for _, site := range spawnSitesIn(pass.Info, fd.Body, masks) {
		for _, lit := range site.lits {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				s, ok := pass.Info.Selections[sel]
				if !ok {
					return true
				}
				if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					pass.Reportf(call.Pos(),
						"sync.WaitGroup.Add inside the spawned goroutine races the spawner's Wait; call Add before the go statement")
				}
				return true
			})
		}
	}
}

// reportPlainAtomicVarUses flags plain identifier uses of variables that
// are elsewhere accessed through sync/atomic functions.
func reportPlainAtomicVarUses(pass *Pass, fd *ast.FuncDecl, atomicVars map[types.Object]token.Pos, atomicArgs map[ast.Expr]bool) {
	if len(atomicVars) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && atomicArgs[e] {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		o := pass.Info.Uses[id]
		if o == nil {
			return true
		}
		if ap, ok := atomicVars[o]; ok {
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed with sync/atomic at line %d; mixed atomic and plain access to the same cell is racy",
				id.Name, pass.Fset.Position(ap).Line)
		}
		return true
	})
}
