package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/cfg"
	"psbox/internal/analysis/dataflow"
)

// UnbilledEnergy enforces the energy-accounting pairing contract: a rail
// power-state transition (Rail.Set / Rail.Adjust in internal/hw/*) must be
// post-dominated by a call into internal/account on every path to return —
// the lock/unlock shape, with the transition as the lock and billing as
// the unlock. A billing call in a deferred statement covers every exit;
// paths that provably panic are vacuously paired.
//
// The check is interprocedural in both directions. A helper that changes
// rail power without billing *exposes* the obligation to its callers, so a
// call to it counts as a transition there; a callee that bills on every
// one of its own paths counts as a billing site at its call sites. Only
// functions that themselves participate in billing (some path reaches
// internal/account) are held to the pairing rule: psbox's hw components
// deliberately leave billing to kernel accounting callbacks, so a
// component that never bills merely floats the obligation upward instead
// of being flagged. Calls on the short-circuited side of && / || may not
// execute and therefore never count as the billing half of a pair.
var UnbilledEnergy = &Analyzer{
	Name: "unbilledenergy",
	Doc: `flag rail power-state transitions (internal/hw Rail.Set/Adjust)
that are not post-dominated by a billing call into internal/account on
every path to return, in functions that participate in billing.`,
	Run: runUnbilledEnergy,
}

func isBillingCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	return pkg != nil &&
		(pkg.Path() == "psbox/internal/account" || strings.HasPrefix(pkg.Path(), "psbox/internal/account/"))
}

// isRailTransition matches the power-state mutators of internal/hw's Rail.
func isRailTransition(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasPrefix(pkg.Path(), "psbox/internal/hw") {
		return false
	}
	if fn.Name() != "Set" && fn.Name() != "Adjust" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rail"
}

// ubSum is one function's bottom-up summary.
type ubSum struct {
	mayBill     bool // some call chain reaches internal/account
	alwaysBills bool // every entry→exit path passes a billing call
	exposes     bool // contains a transition unbilled on some following path
}

// ubSite is one transition call site that is not billed on every path out
// of its function.
type ubSite struct {
	call *ast.CallExpr
	desc string
}

// ubFacts is the full per-function analysis; transfer keeps only the
// comparable summary, the reporting pass also reads the sites.
type ubFacts struct {
	sum   ubSum
	sites []ubSite
}

func ubSummaries(prog *Program) map[*types.Func]ubSum {
	v := prog.Fact("unbilledenergy.sums", func() any {
		g := prog.CallGraph()
		return dataflow.Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) ubSum) ubSum {
			return ubAnalyze(n.Pkg.Info, g, n.Decl, get).sum
		}, func(a, b ubSum) bool { return a == b })
	})
	return v.(map[*types.Func]ubSum)
}

// ubAnalyze classifies every statement of fd as billing and/or
// transitioning, then runs a greatest-fixpoint must-analysis over the CFG:
// billedFrom(b) holds when every path from the start of block b to the
// exit passes a non-conditional billing statement.
func ubAnalyze(info *types.Info, g *callgraph.Graph, fd *ast.FuncDecl, get func(*types.Func) ubSum) ubFacts {
	var facts ubFacts
	graph := cfg.New(fd.Body)

	type siteAt struct {
		block *cfg.Block
		idx   int
		call  *ast.CallExpr
		desc  string
	}
	var sites []siteAt
	billingIdx := make(map[*cfg.Block][]int)

	classify := func(call *ast.CallExpr, conditional bool, b *cfg.Block, idx int) {
		callee := callgraph.StaticCallee(info, call)
		if callee == nil {
			return
		}
		billing := isBillingCallee(callee)
		transition := isRailTransition(callee)
		desc := funcDesc(callee)
		if !billing && !transition && g.Node(callee) != nil {
			s := get(callee)
			if s.mayBill {
				facts.sum.mayBill = true
			}
			if s.alwaysBills {
				billing = true
			}
			if s.exposes {
				transition = true
				desc = "call to " + desc + " (which changes rail power)"
			}
		}
		if billing {
			facts.sum.mayBill = true
			if !conditional && b != nil {
				billingIdx[b] = append(billingIdx[b], idx)
			}
		}
		if transition && b != nil {
			sites = append(sites, siteAt{block: b, idx: idx, call: call, desc: desc})
		}
	}

	for _, b := range graph.Blocks {
		for idx, node := range b.Nodes {
			b, idx := b, idx
			cfg.CallsIn(node, func(call *ast.CallExpr, conditional bool) {
				classify(call, conditional, b, idx)
			})
		}
	}

	// Deferred billing runs on every exit, normal or panicking, so it
	// pairs every transition in the function.
	deferredBills := false
	for _, d := range graph.Defers {
		callee := callgraph.StaticCallee(info, d)
		if callee == nil {
			continue
		}
		if isBillingCallee(callee) || (g.Node(callee) != nil && get(callee).alwaysBills) {
			deferredBills = true
			facts.sum.mayBill = true
		} else if g.Node(callee) != nil && get(callee).mayBill {
			facts.sum.mayBill = true
		}
	}
	for _, d := range graph.Defers {
		callee := callgraph.StaticCallee(info, d)
		if callee == nil {
			continue
		}
		// A transition hidden in a defer still creates an obligation.
		transition := isRailTransition(callee) || (g.Node(callee) != nil && get(callee).exposes)
		if transition && !deferredBills {
			facts.sum.exposes = true
		}
	}

	// billedFrom: must-analysis, greatest fixpoint. Blocks containing a
	// non-conditional billing statement and provably-panicking blocks are
	// vacuously true; the exit is false; everything else is the AND of
	// its successors.
	billedFrom := make(map[*cfg.Block]bool, len(graph.Blocks))
	for _, b := range graph.Blocks {
		billedFrom[b] = true
	}
	billedFrom[graph.Exit] = false
	for changed := true; changed; {
		changed = false
		for _, b := range graph.Blocks {
			if b == graph.Exit || b.Panics || len(billingIdx[b]) > 0 {
				continue
			}
			v := len(b.Succs) > 0
			for _, s := range b.Succs {
				v = v && billedFrom[s]
			}
			if v != billedFrom[b] {
				billedFrom[b] = v
				changed = true
			}
		}
	}
	facts.sum.alwaysBills = deferredBills || billedFrom[graph.Entry]

	for _, s := range sites {
		if deferredBills || s.block.Panics {
			continue
		}
		paired := false
		for _, j := range billingIdx[s.block] {
			if j > s.idx {
				paired = true
				break
			}
		}
		if !paired {
			paired = len(s.block.Succs) > 0
			for _, succ := range s.block.Succs {
				paired = paired && billedFrom[succ]
			}
		}
		if !paired {
			facts.sum.exposes = true
			facts.sites = append(facts.sites, ubSite{call: s.call, desc: s.desc})
		}
	}
	return facts
}

func runUnbilledEnergy(pass *Pass) {
	// The account package is the billing implementation itself; holding
	// its internals to the pairing rule would be circular.
	if isBillingPkg(pass.PkgPath) {
		return
	}
	sums := ubSummaries(pass.Prog)
	g := pass.Prog.CallGraph()
	get := func(fn *types.Func) ubSum { return sums[fn] }
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			facts := ubAnalyze(pass.Info, g, fd, get)
			if !facts.sum.mayBill {
				// No billing anywhere in reach: the obligation floats to
				// the caller via the exposes summary instead.
				continue
			}
			for _, s := range facts.sites {
				pass.Reportf(s.call.Pos(),
					"rail power transition (%s) is not billed on every path to return; pair it with a call into psbox/internal/account, or bill in a defer", s.desc)
			}
		}
	}
}

func isBillingPkg(path string) bool {
	return path == "psbox/internal/account" || strings.HasPrefix(path, "psbox/internal/account/")
}
