package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
)

// TestModuleIsLintClean runs the full suite over the real module — the
// same work `go run ./cmd/psbox-lint ./...` does in CI — and demands zero
// findings. Every violation must be fixed or carry a reasoned
// //psbox:allow-* directive.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "psbox" {
		t.Fatalf("expected module psbox at ../.., got %q", loader.Module)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	prog := analysis.NewProgram(pkgs)
	for _, pkg := range pkgs {
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if analysis.InScope(a, pkg.Path) {
				suite = append(suite, a)
			}
		}
		for _, d := range analysis.RunAnalyzersProgram(prog, pkg, suite) {
			t.Errorf("%s", d)
		}
	}
}
