package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// A TextEdit is one machine-applicable replacement of a byte range in a
// file: the half-open span [Start, End) is replaced with New. An
// insertion has Start == End.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"` // byte offset
	End   int    `json:"end"`   // byte offset, exclusive
	New   string `json:"new"`
}

// A SuggestedFix is one self-contained remediation for a diagnostic: a
// short imperative message and the edits that implement it. Fixes must be
// conservative — applying one removes the diagnostic without changing
// behavior (sorted-keys loops, missing encode lines) or records an
// explicit reviewable waiver (directive stubs).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// edit converts a position pair into a TextEdit against the pass's
// FileSet.
func (p *Pass) edit(from, to token.Pos, text string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{File: start.Filename, Start: start.Offset, End: end.Offset, New: text}
}

// insert builds a pure insertion at pos.
func (p *Pass) insert(pos token.Pos, text string) TextEdit {
	return p.edit(pos, pos, text)
}

// sourceFile returns the raw bytes of a file of the analyzed program,
// memoized program-wide. Fix builders use it to replicate indentation and
// splice original statement text; a read failure degrades to "no fix",
// never to a bad edit.
func (p *Pass) sourceFile(filename string) []byte {
	key := "source:" + filename
	v := p.Prog.Fact(key, func() any {
		data, err := os.ReadFile(filename)
		if err != nil {
			return []byte(nil)
		}
		return data
	})
	return v.([]byte)
}

// lineStart returns the byte offset of the start of the line holding pos,
// and the line's leading whitespace, read from the original source.
func (p *Pass) lineStart(pos token.Pos) (int, string, bool) {
	position := p.Fset.Position(pos)
	src := p.sourceFile(position.Filename)
	if src == nil || position.Offset > len(src) {
		return 0, "", false
	}
	start := position.Offset - (position.Column - 1)
	if start < 0 || start > len(src) {
		return 0, "", false
	}
	indent := src[start:]
	n := 0
	for n < len(indent) && (indent[n] == ' ' || indent[n] == '\t') {
		n++
	}
	return start, string(indent[:n]), true
}

// directiveStubFix builds the "record a reviewable waiver" fix: a
// //psbox:allow-<analyzer> line with a TODO reason inserted directly
// above the offending line, indented to match. The TODO reason satisfies
// the directive grammar (a reason is present) while flagging itself for
// review.
func (p *Pass) directiveStubFix(pos token.Pos) []SuggestedFix {
	start, indent, ok := p.lineStart(pos)
	if !ok {
		return nil
	}
	position := p.Fset.Position(pos)
	line := fmt.Sprintf("%s//psbox:allow-%s TODO: justify this exception\n", indent, p.Analyzer.Name)
	return []SuggestedFix{{
		Message: fmt.Sprintf("add a reasoned //psbox:allow-%s directive", p.Analyzer.Name),
		Edits:   []TextEdit{{File: position.Filename, Start: start, End: start, New: line}},
	}}
}

// Report records a finding with optional suggested fixes unless an allow
// directive covers it.
func (p *Pass) Report(pos token.Pos, msg string, fixes ...SuggestedFix) {
	if p.allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  msg,
		Fixes:    fixes,
	})
}

// Fixes flattens the suggested fixes of a diagnostic set in order.
func Fixes(diags []Diagnostic) []SuggestedFix {
	var out []SuggestedFix
	for _, d := range diags {
		out = append(out, d.Fixes...)
	}
	return out
}

// ApplyFixes computes the result of applying every suggested fix of diags
// to the affected files. Edits are deduplicated (two analyzers proposing
// the identical edit collapse to one) and applied in deterministic file
// and offset order; of two distinct overlapping edits the earlier-sorted
// one wins and the loser is dropped with a note. Returns the new content
// of each changed file and human-readable notes about dropped edits.
func ApplyFixes(diags []Diagnostic, read func(string) ([]byte, error)) (map[string][]byte, []string, error) {
	byFile := make(map[string][]TextEdit)
	for _, fix := range Fixes(diags) {
		for _, e := range fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	out := make(map[string][]byte, len(byFile))
	var notes []string
	for _, f := range files {
		edits := byFile[f]
		sort.Slice(edits, func(i, j int) bool {
			a, b := edits[i], edits[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.End != b.End {
				return a.End < b.End
			}
			return a.New < b.New
		})
		// Dedupe identical edits, then drop overlaps.
		applied := edits[:0]
		for _, e := range edits {
			if n := len(applied); n > 0 {
				prev := applied[n-1]
				if prev == e {
					continue
				}
				if e.Start < prev.End || (e.Start == prev.Start && prev.Start == prev.End && e.Start == e.End) {
					notes = append(notes, fmt.Sprintf("%s: dropped edit at %d-%d overlapping an earlier fix", f, e.Start, e.End))
					continue
				}
			}
			applied = append(applied, e)
		}
		src, err := read(f)
		if err != nil {
			return nil, nil, fmt.Errorf("applying fixes: %w", err)
		}
		var buf []byte
		last := 0
		bad := false
		for _, e := range applied {
			if e.Start < last || e.End > len(src) || e.Start > e.End {
				notes = append(notes, fmt.Sprintf("%s: dropped edit at %d-%d outside the file", f, e.Start, e.End))
				bad = true
				continue
			}
			buf = append(buf, src[last:e.Start]...)
			buf = append(buf, e.New...)
			last = e.End
		}
		buf = append(buf, src[last:]...)
		_ = bad
		if string(buf) != string(src) {
			out[f] = buf
		}
	}
	return out, notes, nil
}

// UnifiedDiff renders a line-based unified diff between two versions of
// one file, with the conventional ---/+++ header. Deterministic for fixed
// inputs; returns "" when the contents match.
func UnifiedDiff(name string, oldSrc, newSrc []byte) string {
	if string(oldSrc) == string(newSrc) {
		return ""
	}
	a := splitLines(string(oldSrc))
	b := splitLines(string(newSrc))

	// LCS table over lines.
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	type op struct {
		kind byte // ' ', '-', '+'
		line string
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', a[i]})
			i++
		default:
			ops = append(ops, op{'+', b[j]})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{'-', a[i]})
	}
	for ; j < m; j++ {
		ops = append(ops, op{'+', b[j]})
	}

	// Group into hunks with up to 3 context lines.
	const ctx = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", name, name)
	k := 0
	oldLine, newLine := 1, 1
	for k < len(ops) {
		if ops[k].kind == ' ' {
			oldLine++
			newLine++
			k++
			continue
		}
		// Hunk start: back up for context.
		start := k
		lead := 0
		for start > 0 && lead < ctx && ops[start-1].kind == ' ' {
			start--
			lead++
		}
		// Extend to cover changes separated by <= 2*ctx context lines.
		end := k
		gap := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				gap++
				if gap > 2*ctx {
					break
				}
			} else {
				gap = 0
			}
			end++
		}
		// Trim trailing context beyond ctx lines.
		trail := 0
		for end > 0 && ops[end-1].kind == ' ' {
			trail++
			end--
		}
		if trail > ctx {
			trail = ctx
		}
		end += trail

		hunkOldStart := oldLine - lead
		hunkNewStart := newLine - lead
		oldCount, newCount := 0, 0
		for _, o := range ops[start:end] {
			switch o.kind {
			case ' ':
				oldCount++
				newCount++
			case '-':
				oldCount++
			case '+':
				newCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", hunkOldStart, oldCount, hunkNewStart, newCount)
		for _, o := range ops[start:end] {
			sb.WriteByte(o.kind)
			sb.WriteString(o.line)
			sb.WriteByte('\n')
			switch o.kind {
			case ' ':
				oldLine++
				newLine++
			case '-':
				oldLine++
			case '+':
				newLine++
			}
		}
		k = end
	}
	return sb.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
