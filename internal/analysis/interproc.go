package analysis

import (
	"go/ast"
	"go/types"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/dataflow"
)

// This file holds the plumbing shared by the interprocedural analyzers
// (walltaint, unbilledenergy, maporderflow): parameter seeding for the
// dataflow engine, call walking, and the generic per-path flow summaries
// (which parameters reach the return value at which access paths, and
// which labels a function stores through its pointer-like parameters)
// that maporderflow and walltaint map helper calls through.

// seedFunc seeds every parameter of a declared function with its position
// label, receiver first, matching the position convention of
// dataflow.ArgLabels. Unnamed parameters still occupy a position.
func seedFunc(info *types.Info, fd *ast.FuncDecl) map[types.Object]dataflow.Labels {
	seed := make(map[types.Object]dataflow.Labels)
	for i, o := range paramObjs(info, fd) {
		if o != nil {
			seed[o] = dataflow.Param(i)
		}
	}
	return seed
}

// paramObjs lists a function's parameter objects by position, receiver
// first; unnamed parameters hold a nil entry but keep their position.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Recv != nil {
		var recv types.Object
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				recv = info.Defs[name]
			}
		}
		out = append(out, recv)
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// storableParam reports whether writes through a parameter object escape
// to the caller: pointer-like types (pointer, map, slice, channel,
// interface) share storage across the call boundary; value parameters are
// copies.
func storableParam(o types.Object) bool {
	if o == nil || o.Type() == nil {
		return false
	}
	switch o.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// summarize extracts the per-path flow summary of one analyzed function:
// return paths plus store effects through pointer-like parameters.
func summarize(a *dataflow.Analysis, info *types.Info, fd *ast.FuncDecl) dataflow.Summary {
	params := paramObjs(info, fd)
	return a.Summarize(params, func(i int) bool { return storableParam(params[i]) })
}

// paramPositions counts the parameter positions a function binds, receiver
// included.
func paramPositions(fd *ast.FuncDecl) int {
	n := 0
	if fd.Recv != nil {
		n++
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// paramMask returns the bitset of every parameter position of fd.
func paramMask(fd *ast.FuncDecl) uint64 {
	n := paramPositions(fd)
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// forEachCall visits every call expression in body in source order,
// function literals included — the engine models closures, so a sink call
// inside a captured func is as real as one at the top level.
func forEachCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// funcDesc renders pkg.Name or pkg.Type.Name for diagnostics.
func funcDesc(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + name
	}
	return name
}

// flowSummaries computes, once per program, each function's per-path flow
// summary: which parameter positions flow into its return values at which
// access paths, and which labels it stores through pointer-like
// parameters. maporderflow maps values through helper calls with it;
// callees outside the program fall back to the engine's conservative
// default at the call site.
func flowSummaries(prog *Program) map[*types.Func]dataflow.Summary {
	v := prog.Fact("flowsum", func() any {
		g := prog.CallGraph()
		return dataflow.Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) dataflow.Summary) dataflow.Summary {
			info := n.Pkg.Info
			hooks := dataflow.Hooks{
				Call: func(call *ast.CallExpr, args *dataflow.CallArgs) (dataflow.Value, bool) {
					callee := callgraph.StaticCallee(info, call)
					if callee == nil || g.Node(callee) == nil {
						return nil, false
					}
					return get(callee).Apply(args), true
				},
			}
			a := dataflow.Run(info, n.Decl.Body, seedFunc(info, n.Decl), hooks)
			return summarize(a, info, n.Decl)
		}, dataflow.Summary.Equal)
	})
	return v.(map[*types.Func]dataflow.Summary)
}
