package analysis

import (
	"go/ast"
	"go/types"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/dataflow"
)

// This file holds the plumbing shared by the interprocedural analyzers
// (walltaint, unbilledenergy, maporderflow): parameter seeding for the
// dataflow engine, call walking, and the generic "which parameters flow to
// the return value" summary that maporderflow maps helper calls through.

// seedFunc seeds every parameter of a declared function with its position
// label, receiver first, matching the position convention of
// dataflow.ArgLabels. Unnamed parameters still occupy a position.
func seedFunc(info *types.Info, fd *ast.FuncDecl) map[types.Object]dataflow.Labels {
	seed := make(map[types.Object]dataflow.Labels)
	pos := 0
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				seed[info.Defs[name]] = dataflow.Param(pos)
			}
		}
		pos = 1
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			pos++
			continue
		}
		for _, name := range field.Names {
			seed[info.Defs[name]] = dataflow.Param(pos)
			pos++
		}
	}
	return seed
}

// paramPositions counts the parameter positions a function binds, receiver
// included.
func paramPositions(fd *ast.FuncDecl) int {
	n := 0
	if fd.Recv != nil {
		n++
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

// paramMask returns the bitset of every parameter position of fd.
func paramMask(fd *ast.FuncDecl) uint64 {
	n := paramPositions(fd)
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// forEachCall visits every call expression in body in source order,
// skipping function literals (opaque to the dataflow engine).
func forEachCall(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// funcDesc renders pkg.Name or pkg.Type.Name for diagnostics.
func funcDesc(fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + name
	}
	return name
}

// flowSummaries computes, once per program, which parameter positions of
// each function flow into its return values. maporderflow maps values
// through helper calls with it; callees outside the program fall back to
// the engine's conservative default at the call site.
func flowSummaries(prog *Program) map[*types.Func]dataflow.Labels {
	v := prog.Fact("flowsum", func() any {
		g := prog.CallGraph()
		return dataflow.Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) dataflow.Labels) dataflow.Labels {
			info := n.Pkg.Info
			hooks := dataflow.Hooks{
				Call: func(call *ast.CallExpr, arg func(int) dataflow.Labels) (dataflow.Labels, bool) {
					callee := callgraph.StaticCallee(info, call)
					if callee == nil || g.Node(callee) == nil {
						return dataflow.Labels{}, false
					}
					return mapThroughSummary(get(callee), arg), true
				},
			}
			return dataflow.Run(info, n.Decl.Body, seedFunc(info, n.Decl), hooks).Return()
		})
	})
	return v.(map[*types.Func]dataflow.Labels)
}

// mapThroughSummary applies a callee's return summary at a call site:
// source kinds pass through unconditionally, and each parameter bit pulls
// in the labels of the matching argument position.
func mapThroughSummary(sum dataflow.Labels, arg func(int) dataflow.Labels) dataflow.Labels {
	l := dataflow.Labels{Kinds: sum.Kinds}
	for i := 0; i < 64; i++ {
		if sum.Params&(1<<uint(i)) != 0 {
			l = l.Union(arg(i))
		}
	}
	return l
}
