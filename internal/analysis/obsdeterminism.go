package analysis

import (
	"go/ast"
)

// obsPrintFuncs are the fmt functions that write to a stream. Pure
// formatters (Sprintf, Errorf, ...) stay legal: they produce values, not
// side-channel output.
var obsPrintFuncs = map[string]bool{
	"Print":    true,
	"Printf":   true,
	"Println":  true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// ObsDeterminism forbids ad-hoc printing and logging inside instrumented
// internal packages. Those packages report through the observability bus
// (spans, instants, metrics) or return errors; a stray fmt.Printf or
// log.Printf is invisible to the trace, breaks byte-identical canonical
// reports, and in the log package's case stamps host wall-clock time into
// output. Renderers that exist to write reports take an io.Writer and are
// exempted with an explicit //psbox:allow-obsdeterminism directive.
var ObsDeterminism = &Analyzer{
	Name: "obsdeterminism",
	Doc: `forbid fmt.Print/Printf/Println/Fprint/Fprintf/Fprintln and any
log package use inside instrumented internal packages: subsystem state
changes must be reported through the observability bus (obs.Bus events and
metrics) so traces and canonical reports stay deterministic.`,
	Run: runObsDeterminism,
}

func runObsDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := qualifiedName(pass.Info, sel, "fmt"); ok && obsPrintFuncs[name] {
				pass.Reportf(n.Pos(),
					"fmt.%s writes outside the observability bus; emit an obs event or metric, or return the text", name)
				return true
			}
			if name, ok := qualifiedName(pass.Info, sel, "log"); ok {
				pass.Reportf(n.Pos(),
					"log.%s bypasses the observability bus and stamps host time; emit an obs event or metric instead", name)
			}
			return true
		})
	}
}
