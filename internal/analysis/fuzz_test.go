package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"testing"
)

var directiveNameRe = regexp.MustCompile(`^[a-z]+$`)

// FuzzDirectiveScan feeds arbitrary Go sources through the directive
// scanner and checks its structural invariants: it never panics, bare
// directives are reported at valid positions, parsed entries carry
// well-formed names, ordered extents, and sane line spans, and every
// directive covers at least its own position — the property the
// staleallows deletion fix and the suppression logic both lean on.
// The committed seed corpus lives in testdata/fuzz/FuzzDirectiveScan.
func FuzzDirectiveScan(f *testing.F) {
	seeds := []string{
		"package p\n\nfunc f() {\n\t//psbox:allow-maporder tolerance-checked aggregate\n\tgo f()\n}\n",
		"package p\n\nfunc f() {\n\t//psbox:allow-noconcurrency\n}\n",
		"//psbox:allow-nowallclock header waiver for the whole file\npackage p\n",
		"package p\n\nvar x = 1 //psbox:allow-energyaccum trailing form\n",
		"package p\n\nfunc f(a, b int) {\n\t//psbox:allow-nowallclock wrapped statement\n\tg(a,\n\t\tb)\n}\nfunc g(a, b int) {}\n",
		"package p\n\n//psbox:allow-UPPER names must be lower case\n//psbox:allow-maporder\t\ttabs as separator\n",
		"package p\n// not a directive: //psbox:allow-x inside a comment body\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil || file == nil {
			t.Skip()
		}
		dirs := scanDirectives(fset, []*ast.File{file}, func(pos token.Pos, msg string) {
			if !pos.IsValid() {
				t.Errorf("bare-directive report at invalid position (msg %q)", msg)
			}
			if msg == "" {
				t.Error("bare-directive report with empty message")
			}
		})
		for filename, fd := range dirs {
			if filename == "" {
				t.Error("directives keyed by empty filename")
			}
			for _, e := range fd.entries {
				if !directiveNameRe.MatchString(e.name) {
					t.Errorf("entry name %q escaped the directive grammar", e.name)
				}
				if e.end < e.pos {
					t.Errorf("entry extent inverted: %v > %v", e.pos, e.end)
				}
				if !e.fileScope && e.line < 1 {
					t.Errorf("non-header entry with line %d", e.line)
				}
				if e.span != [2]int{} && e.span[0] > e.span[1] {
					t.Errorf("entry span inverted: %v", e.span)
				}
				if e.used {
					t.Error("entries must start unused")
				}
				p := &Pass{Analyzer: &Analyzer{Name: e.name}, Fset: fset, directives: dirs}
				if !p.allowedFor(e.name, e.pos) {
					t.Errorf("directive at %v does not cover its own position", fset.Position(e.pos))
				}
				e.used = false // undo the probe's marking
			}
		}
	})
}
