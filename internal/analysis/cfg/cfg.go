// Package cfg builds per-function control-flow graphs over the Go AST.
//
// The graph is statement-granular: every block holds the simple statements
// and branch-condition expressions that execute unconditionally once the
// block is entered, in execution order, and edges carry the branching
// structure of if/for/range/switch/select plus goto, labeled break and
// continue, and fallthrough. Three constructs get special treatment
// because the must-pair analyses built on top care about them:
//
//   - return statements edge to the single Exit block;
//   - a statement-position call to panic (or os.Exit, log.Fatal*,
//     runtime.Goexit, testing's FailNow-alikes are out of scope here)
//     terminates its block with Panics=true and no successors: paths that
//     die do not reach Exit and must-pair obligations on them are vacuous;
//   - defer statements are collected into Graph.Defers, since a deferred
//     call runs on every exit (normal or panicking) and therefore
//     post-dominates everything.
//
// Function literals are opaque: their bodies are not part of the enclosing
// function's paths, so the builder does not descend into them. Short-circuit
// operands (&&, ||) are NOT split into blocks; callers that need
// may/must precision below statement granularity handle ast.BinaryExpr
// nesting themselves (see ConditionalCalls).
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes with a common set of
// successors.
type Block struct {
	Index  int
	Nodes  []ast.Node // simple statements and condition expressions, in order
	Succs  []*Block
	Panics bool // block terminates the goroutine (panic/os.Exit); no successors
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // every return and normal fall-off edges here
	Blocks []*Block
	Defers []*ast.CallExpr // deferred calls, which run on every exit
}

// New builds the graph for a function body. A nil body (declaration
// without definition) yields a two-block graph with Entry wired to Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	for _, pg := range b.gotos {
		if tgt := b.labels[pg.label]; tgt != nil {
			pg.from.Succs = append(pg.from.Succs, tgt)
		}
	}
	return b.g
}

type breakTarget struct {
	label string
	brk   *Block // break destination
	cont  *Block // continue destination; nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block
	stack  []breakTarget
	labels map[string]*Block
	gotos  []pendingGoto
	// label pending on the next loop/switch statement, for labeled
	// break/continue.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur→to (if cur can fall through) and is a no-op for
// terminated blocks.
func (b *builder) jump(to *Block) {
	if b.cur == nil || b.cur.Panics {
		return
	}
	b.cur.Succs = append(b.cur.Succs, to)
}

// startUnreachable parks the builder on a fresh, edgeless block for
// statements following return/panic/goto.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminates reports whether an expression statement's call never returns.
func terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln" || fun.Sel.Name == "Panic" || fun.Sel.Name == "Panicf" || fun.Sel.Name == "Panicln"):
				return true
			}
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminates(call) {
			b.cur.Panics = true
			b.startUnreachable()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.startUnreachable()

	case *ast.DeferStmt:
		b.add(s) // the arguments are evaluated here
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		target := b.newBlock()
		b.jump(target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()

		b.cur = b.newBlock()
		condBlk.Succs = append(condBlk.Succs, b.cur)
		b.stmt(s.Body)
		b.jump(after)

		if s.Else != nil {
			b.cur = b.newBlock()
			condBlk.Succs = append(condBlk.Succs, b.cur)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, after)
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.cur = body
		b.push(label, after, post)
		b.stmt(s.Body)
		b.pop()
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // the ranged expression is evaluated once, up front
		head := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		head.Succs = append(head.Succs, after) // possibly-empty collection
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.cur = body
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.push(label, after, head)
		b.stmt(s.Body)
		b.pop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.cases(label, s.Body, func(c *ast.CaseClause) ([]ast.Stmt, bool) {
			for _, e := range c.List {
				b.add(e) // case expressions are evaluated in the dispatch block
			}
			return c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.cases(label, s.Body, func(c *ast.CaseClause) ([]ast.Stmt, bool) {
			return c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.cur
		after := b.newBlock()
		b.push(label, after, nil)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			b.cur = b.newBlock()
			dispatch.Succs = append(dispatch.Succs, b.cur)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.pop()
		b.cur = after

	default:
		// Assign, IncDec, Decl, Send, Go, Empty: straight-line.
		b.add(s)
	}
}

// cases builds the shared switch/type-switch shape: each clause hangs off
// the dispatch block, fallthrough chains clause bodies, and a missing
// default wires dispatch straight to the join.
func (b *builder) cases(label string, body *ast.BlockStmt, clause func(*ast.CaseClause) ([]ast.Stmt, bool)) {
	dispatch := b.cur
	after := b.newBlock()
	b.push(label, after, nil)
	hasDefault := false
	// First pass creates every clause's entry block so fallthrough can
	// target the next clause.
	entries := make([]*Block, len(body.List))
	bodies := make([][]ast.Stmt, len(body.List))
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		stmts, isDefault := clause(cc)
		if isDefault {
			hasDefault = true
		}
		entries[i] = b.newBlock()
		bodies[i] = stmts
		dispatch.Succs = append(dispatch.Succs, entries[i])
	}
	for i := range entries {
		b.cur = entries[i]
		fell := false
		for _, st := range bodies[i] {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fell = true
				break
			}
			b.stmt(st)
		}
		if fell && i+1 < len(entries) {
			b.jump(entries[i+1])
		} else {
			b.jump(after)
		}
	}
	b.pop()
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	b.cur = after
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) push(label string, brk, cont *Block) {
	b.stack = append(b.stack, breakTarget{label: label, brk: brk, cont: cont})
}

func (b *builder) pop() { b.stack = b.stack[:len(b.stack)-1] }

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.stack) - 1; i >= 0; i-- {
			t := b.stack[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.jump(t.brk)
				break
			}
		}
		b.startUnreachable()
	case token.CONTINUE:
		for i := len(b.stack) - 1; i >= 0; i-- {
			t := b.stack[i]
			if t.cont == nil {
				continue // switch/select: continue skips to the enclosing loop
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.jump(t.cont)
				break
			}
		}
		b.startUnreachable()
	case token.GOTO:
		if s.Label != nil && b.cur != nil && !b.cur.Panics {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.startUnreachable()
	}
	// FALLTHROUGH is consumed by the switch builder.
}

// CallsIn invokes fn for every call expression nested in a block node, in
// source order, without descending into function literals (their bodies are
// not on the enclosing function's paths). conditional is true when the call
// sits under the right operand of a short-circuit && or ||, i.e. it may be
// skipped even though its statement executes.
func CallsIn(n ast.Node, fn func(call *ast.CallExpr, conditional bool)) {
	callsIn(n, false, fn)
}

func callsIn(n ast.Node, cond bool, fn func(*ast.CallExpr, bool)) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		return
	case *ast.BinaryExpr:
		if x.Op == token.LAND || x.Op == token.LOR {
			callsIn(x.X, cond, fn)
			callsIn(x.Y, true, fn)
			return
		}
	case *ast.CallExpr:
		fn(x, cond)
		callsIn(x.Fun, cond, fn)
		for _, a := range x.Args {
			callsIn(a, cond, fn)
		}
		return
	}
	// Generic traversal over the node's immediate children.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return true
		}
		callsIn(c, cond, fn)
		return false
	})
}
