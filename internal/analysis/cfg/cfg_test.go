package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"testing"
)

// parse returns the body of the first function declaration in src.
func parse(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in src")
	return nil
}

// reach walks the graph from Entry and reports which blocks are reachable.
func reach(g *Graph) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// callNames collects the call idents appearing in a block's nodes.
func callNames(b *Block) []string {
	var out []string
	for _, n := range b.Nodes {
		CallsIn(n, func(c *ast.CallExpr, _ bool) {
			if id, ok := c.Fun.(*ast.Ident); ok {
				out = append(out, id.Name)
			}
		})
	}
	return out
}

// mustReach reports whether every path from b to Exit passes a call named
// name — the must-pair skeleton the analyzers build on.
func mustReach(g *Graph, from *Block, name string) bool {
	must := make(map[*Block]bool)
	for _, b := range g.Blocks {
		must[b] = true
	}
	must[g.Exit] = false
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if b == g.Exit {
				continue
			}
			v := false
			for _, c := range callNames(b) {
				if c == name {
					v = true
				}
			}
			if !v {
				if len(b.Succs) == 0 {
					v = b.Panics // dying paths satisfy vacuously
				} else {
					v = true
					for _, s := range b.Succs {
						if !must[s] {
							v = false
						}
					}
				}
			}
			if v != must[b] {
				must[b] = v
				changed = true
			}
		}
	}
	return must[from]
}

func TestStraightLine(t *testing.T) {
	g := New(parse(t, `func f() { a(); b() }`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("b must be on every path")
	}
}

func TestIfElseJoin(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		a()
		if x { b() } else { c() }
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("b is conditional, not on every path")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("d joins both arms")
	}
}

func TestIfWithoutElseSkips(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		if x { b() }
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("no-else if must have a skip edge")
	}
}

func TestEarlyReturnBreaksMust(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		a()
		if x { return }
		b()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("early return bypasses b")
	}
}

func TestPanicPathIsVacuous(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		if x { panic("boom") }
		b()
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("the panicking path never reaches Exit; b must-pair on live paths")
	}
	var panics bool
	for _, blk := range g.Blocks {
		if blk.Panics {
			panics = true
			if len(blk.Succs) != 0 {
				t.Error("panic block must not have successors")
			}
		}
	}
	if !panics {
		t.Error("no block marked Panics")
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		if x { os.Exit(1) }
		b()
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("os.Exit path should be vacuous")
	}
}

func TestForLoopCanSkipBody(t *testing.T) {
	g := New(parse(t, `func f(n int) {
		for i := 0; i < n; i++ { b() }
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("loop body may run zero times")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("d follows the loop on every path")
	}
}

func TestRangeCanBeEmpty(t *testing.T) {
	g := New(parse(t, `func f(xs []int) {
		for range xs { b() }
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("range body may run zero times")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("d follows the range")
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		for {
			if x { break }
			b()
		}
		d()
	}`))
	if !mustReach(g, g.Entry, "d") {
		t.Error("the only path to Exit goes through break then d")
	}
}

func TestLabeledBreak(t *testing.T) {
	g := New(parse(t, `func f(xs []int, x bool) {
	outer:
		for range xs {
			for {
				if x { break outer }
				b()
			}
		}
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("b sits under two conditions")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("labeled break still funnels into d")
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	g := New(parse(t, `func f(x int) {
		switch x {
		case 1:
			b()
		case 2:
			b()
		}
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("switch without default can skip every case")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("d joins all cases")
	}
}

func TestSwitchWithDefaultCovers(t *testing.T) {
	g := New(parse(t, `func f(x int) {
		switch x {
		case 1:
			b()
		default:
			b()
		}
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("every clause calls b and a default exists")
	}
}

func TestFallthroughChains(t *testing.T) {
	g := New(parse(t, `func f(x int) {
		switch x {
		case 1:
			a()
			fallthrough
		default:
			b()
		}
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("case 1 falls through into default's b")
	}
}

func TestTypeSwitch(t *testing.T) {
	g := New(parse(t, `func f(x any) {
		switch x.(type) {
		case int:
			b()
		default:
			b()
		}
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("type switch with default covering all clauses")
	}
}

func TestSelectClauses(t *testing.T) {
	g := New(parse(t, `func f(c chan int) {
		select {
		case <-c:
			b()
		case c <- 1:
			b()
		}
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("both comm clauses call b; select blocks until one fires")
	}
}

func TestSelectWithDefault(t *testing.T) {
	// Every arm — both comm clauses and the default — calls b, so b is
	// reached on every path.
	g := New(parse(t, `func f(c chan int) {
		select {
		case <-c:
			b()
		default:
			b()
		}
	}`))
	if !mustReach(g, g.Entry, "b") {
		t.Error("both the comm clause and the default call b")
	}
	// An empty default arm makes the select non-blocking: the comm
	// clause's call is optional.
	g = New(parse(t, `func f(c chan int) {
		select {
		case <-c:
			b()
		default:
		}
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("the empty default arm skips b")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("all select arms fall through to d")
	}
}

func TestGoInsideDefer(t *testing.T) {
	// A goroutine spawned from a deferred function literal: the literal's
	// body is opaque to this function's flow, but the defer itself is
	// collected — the shape the spawn-site discovery walks into.
	g := New(parse(t, `func f() {
		defer func() {
			go b()
		}()
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("calls inside the deferred literal's goroutine are not this function's flow")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("the defer statement falls through to d")
	}
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 collected defer, got %d", len(g.Defers))
	}
	if _, ok := g.Defers[0].Fun.(*ast.FuncLit); !ok {
		t.Errorf("deferred call should be the function literal, got %T", g.Defers[0].Fun)
	}
}

func TestGotoForward(t *testing.T) {
	g := New(parse(t, `func f(x bool) {
		if x { goto done }
		b()
	done:
		d()
	}`))
	if mustReach(g, g.Entry, "b") {
		t.Error("goto bypasses b")
	}
	if !mustReach(g, g.Entry, "d") {
		t.Error("both paths land on the label")
	}
}

func TestDefersCollected(t *testing.T) {
	g := New(parse(t, `func f() {
		defer cleanup()
		if x() { return }
		b()
	}`))
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 defer, got %d", len(g.Defers))
	}
	if id, ok := g.Defers[0].Fun.(*ast.Ident); !ok || id.Name != "cleanup" {
		t.Errorf("wrong deferred call: %v", g.Defers[0].Fun)
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	g := New(parse(t, `func f() {
		g := func() { hidden() }
		g()
	}`))
	for _, b := range g.Blocks {
		for _, name := range callNames(b) {
			if name == "hidden" {
				t.Error("calls inside func literals are not on the enclosing function's paths")
			}
		}
	}
}

func TestShortCircuitConditional(t *testing.T) {
	body := parse(t, `func f(x bool) bool { return x && pay() }`)
	g := New(body)
	var conds []bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			CallsIn(n, func(c *ast.CallExpr, cond bool) {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "pay" {
					conds = append(conds, cond)
				}
			})
		}
	}
	if len(conds) != 1 || !conds[0] {
		t.Errorf("pay() under && RHS must be flagged conditional: %v", conds)
	}
}

func TestEveryReachableBlockTerminates(t *testing.T) {
	src := `func f(x bool, xs []int) {
		defer d()
		for i, v := range xs {
			switch {
			case x:
				continue
			default:
				if v > i { break }
			}
			a()
		}
		if x { panic("no") }
	}`
	g := New(parse(t, src))
	seen := reach(g)
	if !seen[g.Exit] {
		t.Error("exit unreachable")
	}
	for b := range seen {
		if len(b.Succs) == 0 && b != g.Exit && !b.Panics {
			t.Errorf("reachable block %d dangles with no successors", b.Index)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Error("nil body must wire Entry→Exit")
	}
}

// TestStress builds graphs for every function in this very file, checking
// the no-dangling invariant at scale.
func TestStress(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", srcOfSelf(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := New(fd.Body)
		for b := range reach(g) {
			if len(b.Succs) == 0 && b != g.Exit && !b.Panics {
				t.Errorf("%s: reachable block %d dangles", fd.Name.Name, b.Index)
			}
		}
	}
}

func srcOfSelf(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("cfg_test.go")
	if err != nil {
		t.Skip("source not available")
	}
	return string(data)
}
