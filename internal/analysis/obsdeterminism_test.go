package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestObsDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ObsDeterminism, "obsdeterminism")
}

func TestObsDeterminismScope(t *testing.T) {
	in := []string{
		"psbox/internal/sim",
		"psbox/internal/kernel/sched",
		"psbox/internal/hw/cpu",
		"psbox/internal/meter",
		"psbox/internal/faults",
		"psbox/internal/core",
		"psbox/internal/sandbox",
	}
	for _, p := range in {
		if !analysis.InScope(analysis.ObsDeterminism, p) {
			t.Errorf("%s should be in obsdeterminism scope", p)
		}
	}
	out := []string{
		"psbox",
		"psbox/internal/obs",
		"psbox/internal/trace",
		"psbox/internal/scenario",
		"psbox/internal/simulator", // prefix of a scoped path must not leak
		"psbox/cmd/psbox-trace",
	}
	for _, p := range out {
		if analysis.InScope(analysis.ObsDeterminism, p) {
			t.Errorf("%s should be out of obsdeterminism scope", p)
		}
	}
}
