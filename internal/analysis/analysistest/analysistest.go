// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying one or more expected findings annotates itself:
//
//	out = append(out, k) // want `append to out inside range over map`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match the message of exactly one finding reported
// on that line; findings without a matching want, and wants without a
// matching finding, fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"psbox/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package under root (GOPATH-style: the package's
// import path is its directory relative to root) and applies the analyzer,
// comparing findings against the fixtures' want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, path := range pkgs {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		check(t, pkg, diags)
	}
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, arg := range args {
					pat, err := unquoteArg(arg)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, arg, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

func unquoteArg(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	u, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("unquote: %w", err)
	}
	return u, nil
}
