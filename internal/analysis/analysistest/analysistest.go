// Package analysistest runs an analyzer over fixture packages and checks
// its findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying one or more expected findings annotates itself:
//
//	out = append(out, k) // want `append to out inside range over map`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match the message of exactly one finding reported
// on that line; findings without a matching want, and wants without a
// matching finding, fail the test.
//
// Suggested fixes are asserted through golden files: when a fixture file
// has a sibling named <file>.golden, the result of applying every fix the
// analyzer attached to that file's findings must match it byte for byte.
// A fixture without a golden sibling has its fixes applied but not
// checked.
package analysistest

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"psbox/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package under root (GOPATH-style: the package's
// import path is its directory relative to root) and applies the analyzer,
// comparing findings against the fixtures' want comments. A pattern ending
// in "/..." expands to every package in that subtree, so a multi-package
// fixture — a package plus the helpers it imports — is analyzed as one
// program: the analyzer sees every loaded package (fixture helpers and
// stub packages at real psbox import paths included) through the program's
// call graph, and want comments are checked in each expanded package.
func Run(t testing.TB, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	var targets []*analysis.Package
	for _, pattern := range pkgs {
		for _, path := range expand(t, root, pattern) {
			pkg, err := loader.Load(path)
			if err != nil {
				t.Fatalf("loading fixture %q: %v", path, err)
			}
			targets = append(targets, pkg)
		}
	}
	// The program spans everything the loader has pulled in, so imported
	// helper and stub packages resolve in the call graph.
	prog := analysis.NewProgram(loader.Loaded())
	for _, pkg := range targets {
		diags := analysis.RunAnalyzersProgram(prog, pkg, []*analysis.Analyzer{a})
		check(t, pkg, diags)
		checkFixes(t, pkg, diags)
	}
}

// checkFixes applies every suggested fix of the package's findings and
// compares the result against <file>.golden siblings where they exist.
func checkFixes(t testing.TB, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	fixed, _, err := analysis.ApplyFixes(diags, os.ReadFile)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		want, err := os.ReadFile(name + ".golden")
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatalf("reading golden for %s: %v", name, err)
		}
		got, ok := fixed[name]
		if !ok {
			if got, err = os.ReadFile(name); err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Errorf("applied fixes for %s diverge from %s.golden:\n%s",
				filepath.Base(name), filepath.Base(name), analysis.UnifiedDiff(name, want, got))
		}
	}
}

// expand resolves one package pattern: either a literal import path or a
// "prefix/..." subtree walk returning every directory under root/prefix
// that holds non-test Go files, in sorted order.
func expand(t testing.TB, root, pattern string) []string {
	prefix, ok := strings.CutSuffix(pattern, "/...")
	if !ok {
		return []string{pattern}
	}
	base := filepath.Join(root, filepath.FromSlash(prefix))
	var paths []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				paths = append(paths, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("expanding fixture pattern %q: %v", pattern, err)
	}
	if len(paths) == 0 {
		t.Fatalf("fixture pattern %q matched no packages", pattern)
	}
	sort.Strings(paths)
	return paths
}

func check(t testing.TB, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllString(rest, -1)
				if len(args) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, arg := range args {
					pat, err := unquoteArg(arg)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", pos, arg, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

func unquoteArg(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	u, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("unquote: %w", err)
	}
	return u, nil
}
