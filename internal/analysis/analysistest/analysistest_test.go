package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeTB captures Fatalf so tests can assert on harness failures without
// failing themselves. Fatalf must stop the caller the way testing.T does,
// so it panics with a sentinel the test recovers.
type fakeTB struct {
	testing.TB
	fatal string
}

type fatalSentinel struct{}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Fatalf(format string, args ...any) {
	f.fatal = fmt.Sprintf(format, args...)
	panic(fatalSentinel{})
}

// runExpand drives expand through a fakeTB, reporting whether it called
// Fatalf and with what message.
func runExpand(root, pattern string) (paths []string, fatal string) {
	f := &fakeTB{}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fatalSentinel); !ok {
				panic(r)
			}
			fatal = f.fatal
		}
	}()
	paths = expand(f, root, pattern)
	return paths, ""
}

func writeFixtureTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestExpandSubtreePattern(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{
		"fix/a/a.go":              "package a\n",
		"fix/a/deep/d.go":         "package deep\n",
		"fix/b/b.go":              "package b\n",
		"fix/empty/.keep":         "",
		"fix/only_test/x_test.go": "package only_test\n",
	})
	paths, fatal := runExpand(root, "fix/...")
	if fatal != "" {
		t.Fatalf("unexpected Fatalf: %s", fatal)
	}
	want := []string{"fix/a", "fix/a/deep", "fix/b"}
	if len(paths) != len(want) {
		t.Fatalf("expand = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("expand = %v, want %v (sorted, test-only and empty dirs skipped)", paths, want)
		}
	}
}

func TestExpandLiteralPatternPassesThrough(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{"p/p.go": "package p\n"})
	paths, fatal := runExpand(root, "p")
	if fatal != "" || len(paths) != 1 || paths[0] != "p" {
		t.Fatalf("expand = %v (fatal %q), want [p]", paths, fatal)
	}
}

func TestExpandEmptyPatternFails(t *testing.T) {
	root := writeFixtureTree(t, map[string]string{"fix/empty/.keep": ""})
	_, fatal := runExpand(root, "fix/...")
	if !strings.Contains(fatal, `matched no packages`) {
		t.Fatalf("empty subtree must fail the test, got fatal %q", fatal)
	}
	_, fatal = runExpand(root, "nosuchdir/...")
	if fatal == "" {
		t.Fatal("pattern over a missing directory must fail the test")
	}
}
