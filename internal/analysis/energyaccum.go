package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
)

// energyName matches identifiers that by convention hold energy totals.
var energyName = regexp.MustCompile(`(?i)(energy|joule|charge)`)

// EnergyAccum flags direct `+=`/`-=` into energy-named accumulators
// outside the approved integration helpers. Energy in psbox is the
// integral of piecewise-constant power; summing ad-hoc `power × dt`
// products with raw float addition drifts from the exact segment
// integrator in internal/meter and internal/core/vmeter.go, and two code
// paths that integrate the same rail then disagree in the last bits —
// which the byte-determinism diff turns into a hard failure. Accumulations
// that are genuinely sums of already-integrated window energies escape
// with:
//
//	//psbox:allow-energyaccum <reason>
var EnergyAccum = &Analyzer{
	Name: "energyaccum",
	Doc: `flag direct += / -= into fields or variables named *energy*,
*joule*, or *charge* outside internal/meter and internal/core/vmeter.go;
all energy totals must go through the exact piecewise-constant integrator.`,
	Run: runEnergyAccum,
}

// energyExempt reports whether a file hosts the approved integrators.
func energyExempt(filename string) bool {
	slash := filepath.ToSlash(filename)
	return strings.Contains(slash, "internal/meter/") ||
		strings.HasSuffix(slash, "core/vmeter.go")
}

func runEnergyAccum(pass *Pass) {
	for _, f := range pass.Files {
		if energyExempt(pass.Filename(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) {
				return true
			}
			lhs := as.Lhs[0]
			name := targetName(lhs)
			if name == "" || !energyName.MatchString(name) {
				return true
			}
			pass.Reportf(as.Pos(),
				"direct accumulation into %s: energy totals must come from the piecewise-constant integrator (internal/meter, core/vmeter.go)", exprText(lhs))
			return true
		})
	}
}

// targetName extracts the identifier that names the assigned storage: the
// field for a selector, the base array/map for an index expression, the
// identifier itself otherwise.
func targetName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return targetName(x.X)
	case *ast.ParenExpr:
		return targetName(x.X)
	case *ast.StarExpr:
		return targetName(x.X)
	default:
		return ""
	}
}
