package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineConfine enforces the ownership discipline the fleet layer's
// determinism rests on: a confined value (a *psbox.System, a snapshot
// encoder/decoder, the obs bus, scenario RNG state — the seed list plus
// any type marked //psbox:confined) may be reachable from at most one
// goroutine at a time. Spawning a goroutine that captures a confined value
// — through a closure free variable, a call argument, or a bound method
// receiver — hands the value to that goroutine; a channel send does the
// same. After a handoff the spawner must not touch the value again, and no
// two live goroutines may capture the same value.
//
// The model is positional, not flow-sensitive: a spawner that provably
// rejoins the goroutine (wg.Wait, reading a done channel) before reusing
// the value is still reported and needs a reasoned
// //psbox:allow-goroutineconfine directive — see DESIGN.md rule 12 for
// the soundness caveats.
var GoroutineConfine = &Analyzer{
	Name: "goroutineconfine",
	Doc: `confined types (System, snapshot encoders/decoders, the obs bus,
scenario RNG state, //psbox:confined-marked types) must be reachable from
at most one goroutine at a time; channel send transfers ownership, and a
value captured by two live goroutines or reused by the spawner after
handoff is reported with the spawn site and the offending path.`,
	Run: runGoroutineConfine,
}

// A handoff is one ownership transfer out of the current function: a
// confined value captured by a spawned goroutine or sent on a channel.
type handoff struct {
	cap   capture
	node  ast.Node // the go statement, spawning call, or send statement
	pos   token.Pos
	spawn bool // goroutine capture; false = channel send
}

func runGoroutineConfine(pass *Pass) {
	set := confinedTypeSet(pass.Prog)
	if len(set) == 0 {
		return
	}
	masks := spawnMasks(pass.Prog)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkConfinement(pass, set, masks, fd)
		}
	}
}

func checkConfinement(pass *Pass, set map[*types.TypeName]bool, masks map[*types.Func]uint64, fd *ast.FuncDecl) {
	pkgScope := pass.Pkg.Scope()
	sites := spawnSitesIn(pass.Info, fd.Body, masks)

	var hs []handoff
	spawnedLits := make(map[*ast.FuncLit]bool)
	for _, site := range sites {
		for _, l := range site.lits {
			spawnedLits[l] = true
		}
		caps := confinedCaptures(pass.Info, set, pkgScope, site)
		for _, c := range caps {
			hs = append(hs, handoff{cap: c, node: site.node, pos: site.pos, spawn: true})
		}
		// A spawn inside a loop capturing a value declared outside the loop
		// puts one value in every iteration's goroutine: two live goroutines
		// as soon as the second iteration starts.
		if loop := enclosingLoop(fd.Body, site.node); loop != nil {
			for _, c := range caps {
				if v := c.cell.root; v.Pos() < loop.Pos() || v.Pos() >= loop.End() {
					pass.Reportf(site.pos,
						"goroutine spawned in a loop captures confined %s %s declared outside the loop; every iteration's goroutine shares it",
						confinedDesc(c.tn), c.cell.describe())
				}
			}
		}
	}

	// Channel sends of confined values transfer ownership too. Sends inside
	// a spawned goroutine's body are that goroutine's own handoffs, not the
	// spawner's.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && spawnedLits[lit] {
			return false
		}
		s, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		sendSite := spawnSite{node: s, srcs: []ast.Expr{s.Value}}
		for _, c := range confinedCaptures(pass.Info, set, pkgScope, sendSite) {
			hs = append(hs, handoff{cap: c, node: s, pos: s.Pos()})
		}
		return true
	})
	if len(hs) == 0 {
		return
	}
	for i := 1; i < len(hs); i++ { // keep source order across the two walks
		for j := i; j > 0 && hs[j].pos < hs[j-1].pos; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}

	// Rule 1: the same confined cell handed off twice — captured by two
	// goroutines, or sent away again after an earlier transfer.
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	for j := range hs {
		for i := 0; i < j; i++ {
			if hs[i].node == hs[j].node || !cellsOverlap(hs[i].cap.cell, hs[j].cap.cell) {
				continue
			}
			if hs[i].spawn && hs[j].spawn {
				pass.Reportf(hs[j].pos,
					"confined %s %s is captured by two goroutines (spawned at line %d and line %d); a confined value may be reachable from at most one goroutine",
					confinedDesc(hs[j].cap.tn), hs[j].cap.cell.describe(), line(hs[i].pos), line(hs[j].pos))
			} else {
				pass.Reportf(hs[j].pos,
					"confined %s %s is handed off at line %d after its ownership was already transferred at line %d",
					confinedDesc(hs[j].cap.tn), hs[j].cap.cell.describe(), line(hs[j].pos), line(hs[i].pos))
			}
			break
		}
	}

	// Rule 2: the spawner touching a confined value after handing it off.
	// Uses inside spawned goroutine bodies are the new owner's; the handoff
	// constructs themselves were judged above.
	handoffNode := make(map[ast.Node]bool, len(hs))
	for _, h := range hs {
		handoffNode[h.node] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && spawnedLits[lit] {
			return false
		}
		if handoffNode[n] {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return true
		}
		tn := confinedOf(set, tv.Type)
		if tn == nil {
			return true
		}
		cell, ok := gorCellOf(pass.Info, e)
		if !ok {
			return true
		}
		for _, h := range hs {
			if e.Pos() < h.node.End() || !cellsOverlap(cell, h.cap.cell) {
				continue
			}
			if h.spawn {
				pass.Reportf(e.Pos(),
					"confined %s %s is used by the spawner after being handed to the goroutine spawned at line %d; the handoff transferred ownership",
					confinedDesc(tn), cell.describe(), line(h.pos))
			} else {
				pass.Reportf(e.Pos(),
					"confined %s %s is used after being sent away on a channel at line %d; a channel send transfers ownership",
					confinedDesc(tn), cell.describe(), line(h.pos))
			}
			return false
		}
		return true
	})
}

// enclosingLoop returns the innermost for/range statement within body that
// contains the node, or nil.
func enclosingLoop(body *ast.BlockStmt, n ast.Node) ast.Stmt {
	var best ast.Stmt
	ast.Inspect(body, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			s := x.(ast.Stmt)
			if s.Pos() <= n.Pos() && n.End() <= s.End() {
				if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
					best = s
				}
			}
		}
		return true
	})
	return best
}
