package analysis

import (
	"bytes"
	"fmt"
)

// StaleAllows reports //psbox:allow-* directives that no longer suppress
// any diagnostic. A waiver is a standing debt: when the offending code is
// later fixed or deleted, the directive left behind silently pre-approves
// a future regression at that site. This check runs the debt ledger the
// other direction — every directive must still be paying for something.
//
// Staleness is only meaningful after the whole suite has run against the
// same package: a directive is "used" when it suppressed at least one
// finding (or exempted a field from a contract, as allow-snapshotstate
// does for both snapshot analyzers) during this run. StaleAllows must
// therefore be appended LAST to the analyzer list, and only alongside the
// full suite — running it after a single analyzer would flag every other
// analyzer's legitimate directives. Only directives naming a known
// analyzer are judged; malformed names are already reported by the
// directive scanner.
var StaleAllows = &Analyzer{
	Name: "staleallows",
	Doc: `flag //psbox:allow-* directives that suppressed no finding in a
full-suite run; the suggested fix deletes the dead directive. Must run
last, after every analyzer it audits.`,
	Run: runStaleAllows,
}

func runStaleAllows(pass *Pass) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		fd := pass.directives[filename]
		if fd == nil {
			continue
		}
		for _, e := range fd.entries {
			if e.used || !known[e.name] {
				continue
			}
			pass.Report(e.pos,
				fmt.Sprintf("//psbox:allow-%s directive suppresses nothing; remove it", e.name),
				pass.deleteDirectiveFix(e)...)
		}
	}
}

// deleteDirectiveFix builds the edit removing a stale directive: the whole
// line when the comment stands alone, just the comment text when it trails
// code on a shared line.
func (p *Pass) deleteDirectiveFix(e *directiveEntry) []SuggestedFix {
	start, indent, ok := p.lineStart(e.pos)
	if !ok {
		return nil
	}
	position := p.Fset.Position(e.pos)
	src := p.sourceFile(position.Filename)
	from, to := position.Offset, p.Fset.Position(e.end).Offset
	if position.Column-1 == len(indent) {
		// The directive owns its line: delete it entirely, newline included.
		from = start
		if nl := bytes.IndexByte(src[to:], '\n'); nl >= 0 {
			to += nl + 1
		}
	} else {
		// Trailing comment: strip it and the spaces separating it from code.
		for from > 0 && (src[from-1] == ' ' || src[from-1] == '\t') {
			from--
		}
	}
	if to > len(src) {
		return nil
	}
	return []SuggestedFix{{
		Message: "delete the stale directive",
		Edits:   []TextEdit{{File: position.Filename, Start: from, End: to, New: ""}},
	}}
}
