package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestNoMathRand(t *testing.T) {
	// The sim fixture checks the per-file exemption: rand.go may import
	// math/rand, its sibling clock.go may not.
	analysistest.Run(t, "testdata/src", analysis.NoMathRand, "nomathrand", "sim")
}
