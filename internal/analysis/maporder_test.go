package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapOrder, "maporder")
}
