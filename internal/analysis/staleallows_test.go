package analysis_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"psbox/internal/analysis"
)

// TestStaleAllows runs the full suite plus the staleallows audit over a
// fixture mixing live and dead directives: only the dead ones are
// flagged, and their deletion fixes restore the golden. analysistest is
// not usable here — staleness is defined relative to a full-suite run,
// and a single-analyzer pass would flag every other analyzer's
// legitimate directives.
func TestStaleAllows(t *testing.T) {
	loader, err := analysis.NewLoader("testdata/src")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load("staleallows")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	prog := analysis.NewProgram(loader.Loaded())
	diags := analysis.RunAnalyzersProgram(prog, pkg, append(analysis.All(), analysis.StaleAllows))

	var got []string
	for _, d := range diags {
		if d.Analyzer != "staleallows" {
			t.Errorf("unexpected non-stale finding: %s", d)
			continue
		}
		got = append(got, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	want := []string{
		"3: //psbox:allow-maporder directive suppresses nothing; remove it",
		"14: //psbox:allow-nowallclock directive suppresses nothing; remove it",
		"19: //psbox:allow-energyaccum directive suppresses nothing; remove it",
	}
	if !slices.Equal(got, want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}

	fixed, notes, err := analysis.ApplyFixes(diags, os.ReadFile)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(notes) != 0 {
		t.Errorf("unexpected apply notes: %v", notes)
	}
	fixture := filepath.Join("testdata", "src", "staleallows", "a.go")
	abs, err := filepath.Abs(fixture)
	if err != nil {
		t.Fatal(err)
	}
	var content []byte
	for name, data := range fixed {
		if name == fixture || name == abs || filepath.Base(name) == "a.go" {
			content = data
		}
	}
	if content == nil {
		t.Fatalf("no fixed content for %s (fixed files: %d)", fixture, len(fixed))
	}
	golden, err := os.ReadFile(fixture + ".golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(content, golden) {
		t.Errorf("deletion fixes diverge from golden:\n%s", analysis.UnifiedDiff("a.go", golden, content))
	}
}
