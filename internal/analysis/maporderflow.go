package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/dataflow"
)

// MapOrderFlow is the dataflow upgrade of maporder's accumulation rule.
// maporder catches the syntactic form (sum += v inside a range over a
// map); this analyzer runs the taint engine to catch the same
// order-sensitive float/complex/string accumulation when it is routed
// through intermediate locals (tmp := v * w; sum = sum + tmp) or through
// helper calls, including helpers in other packages, resolved through the
// program's parameter-to-return flow summaries.
//
// The rule: inside a range over a map, a plain assignment to an
// accumulator declared outside the loop is flagged when its right-hand
// side derives from both the loop's iteration variables and the
// accumulator's own previous value — the read-modify-write cycle whose
// result depends on visit order. Reading only the loop variables
// (min/max-style tracking: best = v) or only the accumulator (sum =
// sum * 2) stays legal, as do reductions through the order-insensitive
// min/max builtins and math.Min/math.Max. Op-assigns remain maporder's
// territory and are not re-reported here.
var MapOrderFlow = &Analyzer{
	Name: "maporderflow",
	Doc: `flag order-sensitive float/complex/string accumulation inside
range-over-map loops when the flow is routed through intermediate locals
or helper calls rather than a direct op-assign.`,
	Run: runMapOrderFlow,
}

// mofLoopKind is the Kinds bit marking "derived from this loop's
// iteration variables".
const mofLoopKind = 0

func runMapOrderFlow(pass *Pass) {
	flow := flowSummaries(pass.Prog)
	g := pass.Prog.CallGraph()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.Info.Types[rng.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRangeFlow(pass, g, flow, rng)
					}
				}
				return true
			})
		}
	}
}

// mofAccumulator reports whether a type can accumulate order-sensitively:
// float addition is non-associative and string concatenation is
// order-dependent; integer sums are exact and stay legal.
func mofAccumulator(t types.Type) (string, bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch {
	case basic.Info()&(types.IsFloat|types.IsComplex) != 0:
		return "float", true
	case basic.Info()&types.IsString != 0:
		return "string", true
	}
	return "", false
}

func checkMapRangeFlow(pass *Pass, g *callgraph.Graph, flow map[*types.Func]dataflow.Summary, rng *ast.RangeStmt) {
	info := pass.Info

	// Candidate accumulators: float/complex/string variables declared
	// outside the loop and plainly assigned inside its body. Each gets a
	// private Param bit as its identity through the engine.
	candBit := make(map[types.Object]int)
	var cands []types.Object
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := objOf(info, root)
			if obj == nil || declaredWithin(obj, rng) {
				continue
			}
			// Only flag writes to the variable itself; indexed writes
			// keyed by a loop variable are per-key and order-free.
			if _, isIdent := lhs.(*ast.Ident); !isIdent {
				continue
			}
			if _, ok := mofAccumulator(obj.Type()); !ok {
				continue
			}
			if _, seen := candBit[obj]; !seen && len(cands) < 64 {
				candBit[obj] = len(cands)
				cands = append(cands, obj)
			}
		}
		return true
	})
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Pos() < cands[j].Pos() })
	for i, o := range cands {
		candBit[o] = i
	}

	// Seed: this loop's key/value carry the loop kind; each accumulator
	// carries its identity bit.
	seed := make(map[types.Object]dataflow.Labels)
	if k := rootIdent(rng.Key); k != nil {
		if o := objOf(info, k); o != nil {
			seed[o] = dataflow.Kind(mofLoopKind)
		}
	}
	if rng.Value != nil {
		if v := rootIdent(rng.Value); v != nil {
			if o := objOf(info, v); o != nil {
				seed[o] = dataflow.Kind(mofLoopKind)
			}
		}
	}
	for o, bit := range candBit {
		seed[o] = seed[o].Union(dataflow.Param(bit))
	}

	hooks := dataflow.Hooks{
		Call: func(call *ast.CallExpr, args *dataflow.CallArgs) (dataflow.Value, bool) {
			if mofOrderFree(info, call) {
				// min/max reductions are commutative and exact: the
				// result no longer depends on visit order.
				var l dataflow.Labels
				np := args.NumParams()
				for i := 0; i < np; i++ {
					l = l.Union(args.Labels(i))
				}
				l.Kinds = 0
				out := dataflow.Value{}
				if !l.Empty() {
					out[""] = l
				}
				return out, true
			}
			callee := callgraph.StaticCallee(info, call)
			if callee == nil || g.Node(callee) == nil {
				return nil, false
			}
			return flow[callee].Apply(args), true
		},
	}
	// The engine runs over the loop body only: the read-modify-write
	// cycle being hunted lives entirely inside the loop, and scoping out
	// the rest of the function keeps the surrounding code's writes from
	// feeding the accumulator's identity back into the container being
	// ranged over.
	a := dataflow.Run(info, rng.Body, seed, hooks)

	reported := make(map[types.Object]bool)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(info, id)
			bit, isCand := candBit[obj]
			if !isCand || reported[obj] {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			} else {
				continue
			}
			l := a.Expr(rhs)
			if l.Kinds&(1<<mofLoopKind) == 0 || l.Params&(1<<uint(bit)) == 0 {
				continue
			}
			reported[obj] = true
			kind, _ := mofAccumulator(obj.Type())
			pass.Reportf(as.Pos(),
				"%s accumulation into %s depends on map iteration order (value flows through intermediates back into %s); iterate sorted keys", kind, id.Name, id.Name)
		}
		return true
	})
}

// mofOrderFree matches the builtin min/max and math.Min/math.Max calls
// whose results are independent of reduction order.
func mofOrderFree(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name() == "min" || b.Name() == "max"
		}
	case *ast.SelectorExpr:
		if name, ok := qualifiedName(info, fun, "math"); ok {
			return name == "Min" || name == "Max"
		}
	}
	return false
}
