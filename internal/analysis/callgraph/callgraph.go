// Package callgraph builds a cross-package call graph over a set of
// type-checked packages, for the interprocedural analyzers in
// internal/analysis.
//
// Edges come from two resolution strategies:
//
//   - static dispatch: calls whose callee is a named function or a method
//     on a concrete receiver resolve to exactly one node;
//   - method-set resolution: a call through an interface fans out to the
//     corresponding method of every named type in the analyzed program
//     whose method set implements that interface;
//   - bound-method values: a method value on a concrete receiver (s.run
//     used as a value, handed to a spawn helper or stored for later) adds
//     an edge to the bound method, since referencing it is the only way it
//     can later be invoked through the otherwise-unresolved func value.
//
// Calls through function values (fields, parameters, closures) and via
// reflection are not resolved; analyses treat such call sites
// conservatively. The graph is deterministic: nodes appear in (package,
// file, declaration) order and SCCs in bottom-up (callee-before-caller)
// order, so fixpoints over it converge to identical results on every run.
package callgraph

import (
	"go/ast"
	"go/types"
)

// A Package is one type-checked package of the program under analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Node is one declared function or method with a body in the program.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*Node // deduplicated callees, first-call order
}

// A Graph is the whole-program call graph.
type Graph struct {
	nodes map[*types.Func]*Node
	order []*Node
}

// Node returns the graph node for fn, or nil when fn has no body in the
// analyzed program (stdlib, interface method, external).
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node in deterministic declaration order.
func (g *Graph) Nodes() []*Node { return g.order }

// Build constructs the call graph. pkgs must already be type-checked and
// are visited in the given order, so callers should pass a deterministically
// sorted slice.
func Build(pkgs []*Package) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*Node)}

	// Pass 1: one node per declared function body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}

	// Concrete named types of the program, in deterministic order, for
	// interface method-set resolution.
	var concrete []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			concrete = append(concrete, t)
		}
	}

	// Pass 2: edges.
	for _, n := range g.order {
		seen := make(map[*Node]bool)
		add := func(callee *Node) {
			if callee != nil && !seen[callee] {
				seen[callee] = true
				n.Out = append(n.Out, callee)
			}
		}
		// Selector expressions that are a call's Fun are dispatch, handled
		// below; any other MethodVal selector is a bound-method value.
		callFuns := make(map[ast.Expr]bool)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				callFuns[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if fn := StaticCallee(n.Pkg.Info, x); fn != nil {
					add(g.nodes[fn])
					return true
				}
				if iface, name := interfaceCall(n.Pkg.Info, x); iface != nil {
					for _, t := range concrete {
						impl := implementer(t, iface, name)
						if impl != nil {
							add(g.nodes[impl])
						}
					}
				}
			case *ast.SelectorExpr:
				if !callFuns[x] {
					add(g.nodes[BoundMethod(n.Pkg.Info, x)])
				}
			}
			return true
		})
	}
	return g
}

// StaticCallee resolves a call expression to the single declared function
// or method it invokes, or nil for interface calls, calls through function
// values, type conversions, and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return nil // dynamic dispatch
				}
				return fn.Origin()
			}
			return nil
		}
		// Package-qualified function: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// BoundMethod resolves a method-value expression — a selector like s.run
// used as a value rather than called — to the concrete declared method it
// binds, or nil for non-selectors, field selections, and interface
// receivers (whose binding is dynamic).
func BoundMethod(info *types.Info, e ast.Expr) *types.Func {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal || types.IsInterface(s.Recv()) {
		return nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// interfaceCall reports the interface type and method name of a dynamic
// method call, or (nil, "").
func interfaceCall(info *types.Info, call *ast.CallExpr) (*types.Interface, string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return nil, ""
	}
	if !types.IsInterface(sel.Recv()) {
		return nil, ""
	}
	iface, ok := sel.Recv().Underlying().(*types.Interface)
	if !ok {
		return nil, ""
	}
	return iface, fun.Sel.Name
}

// implementer returns T's (or *T's) declared method name when T implements
// iface, unwrapping any wrapper to the original declared *types.Func.
func implementer(t types.Type, iface *types.Interface, name string) *types.Func {
	ptr := types.NewPointer(t)
	if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(ptr, true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// SCCs returns the strongly connected components of the graph in bottom-up
// order: every component appears before any component that calls into it,
// so a summary fixpoint can run callees-first. Within a component, nodes
// keep declaration order.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan's algorithm; with Out-edges pointing caller→callee it emits
	// sink (callee) components first, which is exactly bottom-up.
	type state struct {
		index, low int
		onStack    bool
	}
	st := make(map[*Node]*state, len(g.order))
	var stack []*Node
	var out [][]*Node
	next := 0

	var strong func(*Node)
	strong = func(v *Node) {
		sv := &state{index: next, low: next, onStack: true}
		next++
		st[v] = sv
		stack = append(stack, v)
		for _, w := range v.Out {
			sw, seen := st[w]
			if !seen {
				strong(w)
				if st[w].low < sv.low {
					sv.low = st[w].low
				}
			} else if sw.onStack {
				if sw.index < sv.low {
					sv.low = sw.index
				}
			}
		}
		if sv.low == sv.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				st[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			// Restore declaration order within the component for
			// deterministic fixpoint iteration.
			reverse(comp)
			out = append(out, comp)
		}
	}
	for _, v := range g.order {
		if _, seen := st[v]; !seen {
			strong(v)
		}
	}
	return out
}

func reverse(ns []*Node) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
}
