package callgraph

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check type-checks a set of fake packages (path → source), resolving
// imports among them, and returns them in the given order.
func check(t *testing.T, order []string, srcs map[string]string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	built := make(map[string]*Package)
	var imp func(path string) (*types.Package, error)
	std := importer.ForCompiler(fset, "source", nil)
	imp = func(path string) (*types.Package, error) {
		if p, ok := built[path]; ok {
			return p.Types, nil
		}
		src, ok := srcs[path]
		if !ok {
			return std.Import(path)
		}
		f, err := parser.ParseFile(fset, path+"/a.go", src, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Types:      make(map[ast.Expr]types.TypeAndValue),
		}
		conf := types.Config{Importer: importerFunc(imp)}
		tp, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			return nil, fmt.Errorf("check %s: %w", path, err)
		}
		built[path] = &Package{Path: path, Files: []*ast.File{f}, Types: tp, Info: info}
		return tp, nil
	}
	var out []*Package
	for _, p := range order {
		if _, err := imp(p); err != nil {
			t.Fatal(err)
		}
		out = append(out, built[p])
	}
	return out
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// find returns the node whose function has the given package path and name
// (method names as "T.m").
func find(t *testing.T, g *Graph, pkg, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Pkg.Path != pkg {
			continue
		}
		got := n.Fn.Name()
		if recv := n.Fn.Type().(*types.Signature).Recv(); recv != nil {
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				got = named.Obj().Name() + "." + got
			}
		}
		if got == name {
			return n
		}
	}
	t.Fatalf("no node %s.%s", pkg, name)
	return nil
}

func calls(a, b *Node) bool {
	for _, o := range a.Out {
		if o == b {
			return true
		}
	}
	return false
}

func TestStaticAndCrossPackageEdges(t *testing.T) {
	pkgs := check(t, []string{"b", "a"}, map[string]string{
		"b": `package b
func Helper() int { return leaf() }
func leaf() int   { return 1 }
`,
		"a": `package a
import "b"
func Top() int { return b.Helper() }
`,
	})
	g := Build(pkgs)
	top := find(t, g, "a", "Top")
	helper := find(t, g, "b", "Helper")
	leaf := find(t, g, "b", "leaf")
	if !calls(top, helper) {
		t.Error("missing cross-package edge a.Top → b.Helper")
	}
	if !calls(helper, leaf) {
		t.Error("missing intra-package edge b.Helper → b.leaf")
	}
	if calls(top, leaf) {
		t.Error("Top does not call leaf directly")
	}
}

func TestMethodEdges(t *testing.T) {
	pkgs := check(t, []string{"m"}, map[string]string{
		"m": `package m
type T struct{}
func (t *T) Do()   { t.helper() }
func (t *T) helper() {}
func Use(t *T)     { t.Do() }
`,
	})
	g := Build(pkgs)
	use := find(t, g, "m", "Use")
	do := find(t, g, "m", "T.Do")
	helper := find(t, g, "m", "T.helper")
	if !calls(use, do) || !calls(do, helper) {
		t.Error("static method edges missing")
	}
}

func TestBoundMethodValueEdge(t *testing.T) {
	// A method value handed to a spawn helper (spawn(s.run), go s.run())
	// never appears as a call's Fun, but referencing it is the only way it
	// can later run — the graph records the edge to the bound method.
	pkgs := check(t, []string{"m"}, map[string]string{
		"m": `package m
type S struct{}
func (s *S) run()     {}
func (s *S) helper()  {}
func spawn(f func())  { go f() }
func Use(s *S)        { spawn(s.run) }
func Call(s *S)       { s.helper() }
`,
	})
	g := Build(pkgs)
	use := find(t, g, "m", "Use")
	run := find(t, g, "m", "S.run")
	call := find(t, g, "m", "Call")
	helper := find(t, g, "m", "S.helper")
	if !calls(use, run) {
		t.Error("missing bound-method edge Use → S.run for the method value spawn(s.run)")
	}
	if !calls(use, find(t, g, "m", "spawn")) {
		t.Error("missing static edge Use → spawn")
	}
	// A plain method call must stay a single dispatch edge, not double up
	// through the bound-method path.
	if n := len(call.Out); n != 1 || !calls(call, helper) {
		t.Errorf("Call should have exactly the dispatch edge to S.helper, got %d edges", n)
	}
}

func TestInterfaceFanOut(t *testing.T) {
	pkgs := check(t, []string{"i", "impl", "use"}, map[string]string{
		"i": `package i
type Doer interface{ Do() }
`,
		"impl": `package impl
type A struct{}
func (A) Do() {}
type B struct{}
func (*B) Do() {}
type NotDoer struct{}
func (NotDoer) Other() {}
`,
		"use": `package use
import (
	"i"
	"impl"
)
func Run(d i.Doer) { d.Do() }
var _ = impl.A{}
`,
	})
	g := Build(pkgs)
	run := find(t, g, "use", "Run")
	aDo := find(t, g, "impl", "A.Do")
	bDo := find(t, g, "impl", "B.Do")
	other := find(t, g, "impl", "NotDoer.Other")
	if !calls(run, aDo) || !calls(run, bDo) {
		t.Error("interface call must fan out to every implementing method in the program")
	}
	if calls(run, other) {
		t.Error("NotDoer does not implement Doer")
	}
}

func TestFuncValueUnresolved(t *testing.T) {
	pkgs := check(t, []string{"fv"}, map[string]string{
		"fv": `package fv
func Target() {}
func Run(f func()) { f() }
var _ = Target
`,
	})
	g := Build(pkgs)
	run := find(t, g, "fv", "Run")
	if len(run.Out) != 0 {
		t.Errorf("call through a func value must stay unresolved, got %d edges", len(run.Out))
	}
}

func TestSCCBottomUp(t *testing.T) {
	pkgs := check(t, []string{"s"}, map[string]string{
		"s": `package s
func A() { B() }
func B() { C(); B() }
func C() {}
func M1() { M2() }
func M2() { M1() }
`,
	})
	g := Build(pkgs)
	sccs := g.SCCs()
	pos := make(map[*Node]int)
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n] = i
		}
	}
	a := find(t, g, "s", "A")
	b := find(t, g, "s", "B")
	c := find(t, g, "s", "C")
	m1 := find(t, g, "s", "M1")
	m2 := find(t, g, "s", "M2")
	if !(pos[c] < pos[b] && pos[b] < pos[a]) {
		t.Errorf("bottom-up order violated: C=%d B=%d A=%d", pos[c], pos[b], pos[a])
	}
	if pos[m1] != pos[m2] {
		t.Error("mutually recursive M1/M2 must share a component")
	}
	if !calls(b, b) {
		t.Error("self-edge B→B missing")
	}
}

func TestDeterministicOrder(t *testing.T) {
	srcs := map[string]string{
		"d": `package d
type I interface{ M() }
type X struct{}
func (X) M() {}
type Y struct{}
func (Y) M() {}
func Go(i I) { i.M() }
`,
	}
	var prev []string
	for run := 0; run < 5; run++ {
		g := Build(check(t, []string{"d"}, srcs))
		var names []string
		for _, n := range g.Nodes() {
			names = append(names, n.Fn.Name())
			for _, o := range n.Out {
				names = append(names, "→"+o.Fn.Name())
			}
		}
		if prev != nil {
			if len(names) != len(prev) {
				t.Fatalf("node/edge count changed between runs: %v vs %v", prev, names)
			}
			for i := range names {
				if names[i] != prev[i] {
					t.Fatalf("order changed between runs at %d: %v vs %v", i, prev, names)
				}
			}
		}
		prev = names
	}
}
