package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestSnapshotState(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.SnapshotState, "snapshotstate")
}
