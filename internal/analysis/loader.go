package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the tree under
// analysis.
type Package struct {
	Path  string // import path ("psbox/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// fingerprint hashes the package's buildable file names and contents;
	// the cache revalidates against it instead of assuming sources never
	// change under a live process (psbox-lint -fix edits them mid-process).
	fingerprint string
}

// A Loader parses and type-checks packages rooted at a directory. Imports
// inside the tree are resolved recursively from source; everything else is
// resolved through the standard library's source importer, so the loader
// needs no export data and no tooling beyond GOROOT.
type Loader struct {
	Fset *token.FileSet
	Root string // absolute module root directory
	// Module is the tree's import-path prefix ("psbox"). When empty,
	// import paths are taken relative to Root (GOPATH-style fixture
	// layout, used by the analysistest harness).
	Module string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	// deps records each loaded package's direct local imports, so a
	// content change invalidates its importers transitively (their cached
	// types.Package objects reference the replaced dependency's types).
	deps map[string]map[string]bool
	// fresh marks packages revalidated since the current NewLoader call;
	// it bounds revalidation to one content hash per package per run.
	fresh map[string]bool
	// stack is the chain of packages currently type-checking, so Import
	// knows which package a local dependency edge belongs to.
	stack []string
}

// Process-wide load-once cache. psbox-lint and the analysis tests load the
// same trees over and over (once per analyzer suite, once per benchmark
// iteration); parsing is cheap but type-checking the transitive standard
// library from source is not, so one FileSet, one stdlib importer, and one
// Loader per root are shared for the life of the process. The tool is
// single-threaded by design (see noconcurrency), so the maps need no
// locking. Cached packages are revalidated by content hash at each
// NewLoader boundary: a package whose files changed — psbox-lint -fix
// edits sources mid-process — is re-typechecked, together with every
// package that imports it.
var (
	sharedFset     = token.NewFileSet()
	sharedStd      types.Importer
	loaderCache    = make(map[string]*Loader)
	typeCheckCount int
)

// TypeCheckCount reports how many package type-checks this process has
// performed. BenchmarkLintAll uses it to show the cache holds the count
// flat across iterations.
func TypeCheckCount() int { return typeCheckCount }

// NewLoader returns the loader for the module rooted at dir, creating it
// on first use and returning the same cached instance — with all packages
// it has already type-checked — on every later call. The module path is
// read from go.mod; a tree without one is treated as fixture layout.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if l, ok := loaderCache[abs]; ok {
		// A NewLoader call is a run boundary: sources may have changed
		// since the previous run, so cached packages must revalidate
		// their content fingerprints once more.
		l.fresh = make(map[string]bool)
		return l, nil
	}
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	l := &Loader{
		Fset:    sharedFset,
		Root:    abs,
		std:     sharedStd,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		deps:    make(map[string]map[string]bool),
		fresh:   make(map[string]bool),
	}
	if data, err := os.ReadFile(filepath.Join(abs, "go.mod")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if rest, ok := strings.CutPrefix(line, "module "); ok {
				l.Module = strings.TrimSpace(rest)
				break
			}
		}
	}
	loaderCache[abs] = l
	return l, nil
}

// Loaded returns every package this loader has type-checked so far, in
// sorted import-path order.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, p := range paths {
		out[i] = l.pkgs[p]
	}
	return out
}

// dirFor maps an import path inside the tree to its directory.
func (l *Loader) dirFor(path string) string {
	if l.Module == "" {
		return filepath.Join(l.Root, filepath.FromSlash(path))
	}
	if path == l.Module {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// local reports whether an import path belongs to the tree under analysis.
func (l *Loader) local(path string) bool {
	if l.Module == "" {
		// Fixture layout: anything that resolves to an existing
		// directory under Root is local.
		st, err := os.Stat(l.dirFor(path))
		return err == nil && st.IsDir()
	}
	return path == l.Module || strings.HasPrefix(path, l.Module+"/")
}

// Import implements types.Importer over both halves of the world.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.local(path) {
		if n := len(l.stack); n > 0 {
			importer := l.stack[n-1]
			if l.deps[importer] == nil {
				l.deps[importer] = make(map[string]bool)
			}
			l.deps[importer][path] = true
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFingerprint hashes the names and contents of a directory's buildable
// Go files; two loads of an unchanged package hash identically.
func (l *Loader) dirFingerprint(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// validate revalidates a cached package against the current source tree:
// its own files must hash to the cached fingerprint and every local
// dependency must itself validate (a re-typechecked dependency means this
// package's cached types reference dead objects). A failed validation
// evicts the package and, transitively, its importers.
func (l *Loader) validate(path string) bool {
	pkg, ok := l.pkgs[path]
	if !ok {
		return false
	}
	if l.fresh[path] {
		return true
	}
	fp, err := l.dirFingerprint(l.dirFor(path))
	if err != nil || fp != pkg.fingerprint {
		l.invalidate(path)
		return false
	}
	for d := range l.deps[path] {
		if !l.validate(d) {
			// invalidate(d) has already evicted this package too.
			return false
		}
	}
	l.fresh[path] = true
	return true
}

// invalidate evicts a package and every cached package that transitively
// imports it.
func (l *Loader) invalidate(path string) {
	removed := map[string]bool{path: true}
	delete(l.pkgs, path)
	delete(l.fresh, path)
	for changed := true; changed; {
		changed = false
		for p := range l.pkgs {
			for d := range l.deps[p] {
				if removed[d] {
					delete(l.pkgs, p)
					delete(l.fresh, p)
					removed[p] = true
					changed = true
					break
				}
			}
		}
	}
}

// Load parses and type-checks one package by import path, memoized with
// content-hash revalidation.
func (l *Loader) Load(path string) (*Package, error) {
	if l.validate(path) {
		return l.pkgs[path], nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Hash and parse the same bytes, so the recorded fingerprint is
	// exactly what was type-checked even if the file changes mid-load.
	h := sha256.New()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), data,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	typeCheckCount++
	l.deps[path] = nil // rebuilt below via Import during the check
	l.stack = append(l.stack, path)
	tpkg, err := conf.Check(path, l.Fset, files, info)
	l.stack = l.stack[:len(l.stack)-1]
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, fingerprint: hex.EncodeToString(h.Sum(nil))}
	l.pkgs[path] = pkg
	l.fresh[path] = true
	return pkg, nil
}

// LoadAll loads every package in the tree, in sorted import-path order.
// Directories named testdata, hidden directories, and directories with no
// non-test Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				ip := l.Module
				if rel != "." {
					if ip != "" {
						ip += "/"
					}
					ip += filepath.ToSlash(rel)
				}
				paths = append(paths, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
