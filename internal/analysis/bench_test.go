package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"psbox/internal/analysis"
)

// lintModule runs the full in-scope suite over every package of the tree
// rooted at root — the same work one psbox-lint invocation does.
func lintModule(tb testing.TB, root string) int {
	tb.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		tb.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		tb.Fatal(err)
	}
	prog := analysis.NewProgram(pkgs)
	findings := 0
	for _, pkg := range pkgs {
		var suite []*analysis.Analyzer
		for _, a := range analysis.All() {
			if analysis.InScope(a, pkg.Path) {
				suite = append(suite, a)
			}
		}
		findings += len(analysis.RunAnalyzersProgram(prog, pkg, suite))
	}
	return findings
}

// BenchmarkLintAll measures repeated whole-module lint runs. The loader's
// process-wide cache means only the first iteration pays for type-checking;
// the typechecks/op metric makes the cache benefit visible — it tends to
// zero as b.N grows, where an uncached loader would hold it constant at
// the full package count.
func BenchmarkLintAll(b *testing.B) {
	before := analysis.TypeCheckCount()
	for i := 0; i < b.N; i++ {
		lintModule(b, "../..")
	}
	b.ReportMetric(float64(analysis.TypeCheckCount()-before)/float64(b.N), "typechecks/op")
}

// TestLoaderCacheIsSharedAcrossInvocations proves the load-once contract:
// a second NewLoader for the same root returns the same instance, and a
// second LoadAll performs zero additional type-checks.
func TestLoaderCacheIsSharedAcrossInvocations(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module cachedemo\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "leaf")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leaf.go"), []byte("package leaf\n\nfunc Leaf() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	first, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.LoadAll(); err != nil {
		t.Fatal(err)
	}
	checked := analysis.TypeCheckCount()
	if checked == 0 {
		t.Fatal("first LoadAll performed no type-checks")
	}

	second, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("NewLoader for the same root must return the cached instance")
	}
	pkgs, err := second.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "cachedemo/leaf" {
		t.Fatalf("unexpected packages: %v", pkgs)
	}
	if got := analysis.TypeCheckCount(); got != checked {
		t.Errorf("second LoadAll re-type-checked: count went %d -> %d", checked, got)
	}
	if loaded := second.Loaded(); len(loaded) != 1 || loaded[0] != pkgs[0] {
		t.Errorf("Loaded() must return the cached package objects")
	}
}
