package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestEnergyAccum(t *testing.T) {
	// internal/meter is the approved-integrator exemption fixture.
	analysistest.Run(t, "testdata/src", analysis.EnergyAccum, "energyaccum", "internal/meter")
}
