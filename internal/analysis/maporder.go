package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops whose body does order-sensitive
// work: Go randomizes map iteration order per run, so anything the loop
// emits in iteration order diverges between two identically-seeded runs.
//
// Order-sensitive work is:
//
//   - appending to a slice declared outside the loop, unless the enclosing
//     function later sorts that slice (the collect-keys-then-sort idiom);
//   - writing output (fmt.Print/Fprint family, Write* methods);
//   - scheduling sim events (After/At/Schedule on a sim Engine);
//   - accumulating into an outer float or string: float addition is not
//     associative, so the total depends on visit order.
//
// Pure reductions that are order-independent — integer sums, min/max
// tracking, per-key map writes (m[k] += ...) — stay legal.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flag order-sensitive work (appends without a sort, output writes,
sim-event scheduling, float/string accumulation) inside range-over-map
loops, where iteration order is randomized per run.`,
	Run: runMapOrder,
}

var outputMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

var fmtOutputFuncs = map[string]bool{
	"Print":    true,
	"Printf":   true,
	"Println":  true,
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

var scheduleMethods = map[string]bool{
	"After":    true,
	"At":       true,
	"Schedule": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		// Track the innermost enclosing function so the sorted-later
		// check can scan its whole body.
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
				// Popped lazily: enclosingFunc walks from the end and
				// checks position containment, so stale entries are
				// harmless.
			case *ast.RangeStmt:
				if isMapRange(pass, n) {
					checkMapRange(pass, n, enclosingFunc(funcs, n))
				}
			}
			return true
		})
	}
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// enclosingFunc returns the innermost recorded function whose span
// contains the range statement.
func enclosingFunc(funcs []ast.Node, rng *ast.RangeStmt) ast.Node {
	for i := len(funcs) - 1; i >= 0; i-- {
		fn := funcs[i]
		if fn.Pos() <= rng.Pos() && rng.End() <= fn.End() {
			return fn
		}
	}
	return nil
}

// rootIdent strips selectors, indexes, parens, and derefs down to the
// base identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via either Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether an object's declaration lies inside the
// node span (loop-local variables, including the range key and value).
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}

// mentionsLoopVar reports whether the expression references any variable
// declared inside the range statement.
func mentionsLoopVar(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if declaredWithin(objOf(pass.Info, id), rng) {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, n, rng, fn)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func checkAssign(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, fn ast.Node) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		// Plain assignment: only the append-to-outer-slice idiom leaks
		// order (out = append(out, k)).
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			root := rootIdent(as.Lhs[i])
			if root == nil {
				continue
			}
			obj := objOf(pass.Info, root)
			if obj == nil || declaredWithin(obj, rng) {
				continue
			}
			if sortedInFunc(pass, fn, obj) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append to %s inside range over map records iteration order; sort %s afterwards or iterate sorted keys", root.Name, root.Name)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Op-assign accumulation: order-dependent when the accumulator
		// is a float (non-associative addition) or string (concatenation
		// order) living outside the loop. Per-key writes indexed by a
		// loop variable are order-independent and stay legal.
		lhs := as.Lhs[0]
		tv, ok := pass.Info.Types[lhs]
		if !ok || tv.Type == nil {
			return
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&(types.IsFloat|types.IsComplex|types.IsString) == 0 {
			return
		}
		if idx, ok := lhs.(*ast.IndexExpr); ok && mentionsLoopVar(pass, idx.Index, rng) {
			return
		}
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := objOf(pass.Info, root)
		if obj == nil || declaredWithin(obj, rng) {
			return
		}
		kind := "float"
		if basic.Info()&types.IsString != 0 {
			kind = "string"
		}
		pass.Report(as.Pos(),
			fmt.Sprintf("%s accumulation into %s inside range over map depends on iteration order; iterate sorted keys", kind, exprText(lhs)),
			sortedKeysFix(pass, rng, fn)...)
	}
}

// sortedKeysFix rewrites a range-over-map loop into the
// collect-keys/sort/iterate idiom, splicing the original body unchanged:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//	for _, k := range keys {
//		v := m[k]
//		...original body...
//	}
//
// Offered only for the simple forms where the rewrite is provably safe: a
// `:=` range over a plain map identifier with string keys, named key
// variable, identifier (or omitted) value variable, a free `keys` name in
// the enclosing function, and an import block that can absorb "sort".
func sortedKeysFix(pass *Pass, rng *ast.RangeStmt, fn ast.Node) []SuggestedFix {
	if rng.Tok != token.DEFINE {
		return nil
	}
	mapIdent, ok := rng.X.(*ast.Ident)
	if !ok {
		return nil
	}
	tv, ok := pass.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return nil
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	if kb, ok := mt.Key().Underlying().(*types.Basic); !ok || kb.Kind() != types.String {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	valName := ""
	if rng.Value != nil {
		v, ok := rng.Value.(*ast.Ident)
		if !ok {
			return nil
		}
		if v.Name != "_" {
			valName = v.Name
		}
	}
	if fn == nil || identUsed(fn, "keys") {
		return nil
	}
	file := fileAt(pass, rng.Pos())
	if file == nil {
		return nil
	}
	importEdit, ok := ensureImport(pass, file, "sort")
	if !ok {
		return nil
	}
	_, ind, ok := pass.lineStart(rng.Pos())
	if !ok {
		return nil
	}
	src := pass.sourceFile(pass.Fset.Position(rng.Pos()).Filename)
	lb := pass.Fset.Position(rng.Body.Lbrace).Offset
	rb := pass.Fset.Position(rng.Body.Rbrace).Offset
	if src == nil || lb+1 >= rb || rb > len(src) {
		return nil
	}
	body := string(src[lb+1 : rb])
	m := mapIdent.Name
	var sb strings.Builder
	fmt.Fprintf(&sb, "keys := make([]string, 0, len(%s))\n", m)
	fmt.Fprintf(&sb, "%sfor %s := range %s {\n", ind, key.Name, m)
	fmt.Fprintf(&sb, "%s\tkeys = append(keys, %s)\n", ind, key.Name)
	fmt.Fprintf(&sb, "%s}\n", ind)
	fmt.Fprintf(&sb, "%ssort.Strings(keys)\n", ind)
	fmt.Fprintf(&sb, "%sfor _, %s := range keys {", ind, key.Name)
	if valName != "" {
		fmt.Fprintf(&sb, "\n%s\t%s := %s[%s]", ind, valName, m, key.Name)
	}
	sb.WriteString(body)
	sb.WriteString("}")
	edits := []TextEdit{pass.edit(rng.Pos(), rng.End(), sb.String())}
	if importEdit != nil {
		edits = append(edits, *importEdit)
	}
	return []SuggestedFix{{Message: "iterate the map in sorted key order", Edits: edits}}
}

// identUsed reports whether any identifier named name appears in the node.
func identUsed(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// fileAt returns the pass file containing pos.
func fileAt(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}

// ensureImport returns the edit inserting path into the file's import
// block in sorted position — nil when the import already exists — or
// ok=false when the file has no parenthesized block to extend (the
// single-import form is not rewritten).
func ensureImport(pass *Pass, f *ast.File, path string) (*TextEdit, bool) {
	quoted := `"` + path + `"`
	for _, imp := range f.Imports {
		if imp.Path.Value == quoted {
			return nil, true
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if !gd.Lparen.IsValid() {
			continue
		}
		insertAt := gd.Rparen
		for _, spec := range gd.Specs {
			if spec.(*ast.ImportSpec).Path.Value > quoted {
				insertAt = spec.Pos()
				break
			}
		}
		start, _, ok := pass.lineStart(insertAt)
		if !ok {
			return nil, false
		}
		pos := pass.Fset.Position(insertAt)
		return &TextEdit{File: pos.Filename, Start: start, End: start, New: "\t" + quoted + "\n"}, true
	}
	return nil, false
}

func checkCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if n, ok := qualifiedName(pass.Info, sel, "fmt"); ok {
		if fmtOutputFuncs[n] {
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over map emits output in iteration order; iterate sorted keys", n)
		}
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok && pkgNameOf(pass.Info, id) != "" {
		return // other package-qualified call, not a method
	}
	if outputMethods[name] {
		pass.Reportf(call.Pos(),
			"%s inside range over map emits output in iteration order; iterate sorted keys", name)
		return
	}
	if scheduleMethods[name] && isEngineReceiver(pass, sel.X) {
		pass.Reportf(call.Pos(),
			"sim event scheduled inside range over map: event sequence numbers will follow iteration order; iterate sorted keys")
	}
}

// isEngineReceiver reports whether an expression is (a pointer to) a named
// type called Engine — the sim engine, in either the real tree or fixtures.
func isEngineReceiver(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// sortedInFunc reports whether the enclosing function contains a
// sort.* / slices.Sort* call whose argument is rooted at obj — the
// collect-then-sort idiom that makes map-order appends deterministic.
func sortedInFunc(pass *Pass, fn ast.Node, obj types.Object) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		pkg, okq := "", false
		if id, ok := sel.X.(*ast.Ident); ok {
			pkg = pkgNameOf(pass.Info, id)
			okq = pkg == "sort" || (pkg == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		}
		if !okq {
			return !found
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && objOf(pass.Info, root) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprText renders a short source-ish form of an assignable expression for
// diagnostics.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	default:
		return "expression"
	}
}
