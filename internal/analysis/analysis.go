// Package analysis implements psbox's static determinism and
// energy-accounting checks as a small self-contained analyzer framework.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer holds a name, a doc string, and a Run function over a
// type-checked package — but is built only on the standard library so the
// module stays dependency-free. Seven analyzers enforce the simulator's
// determinism, checkpoint, and observability contracts (see DESIGN.md
// §"Determinism contract", §"Checkpoint/restore" and §"Observability"):
//
//	nowallclock    — no time.Now/Sleep/Since/After inside internal/
//	nomathrand     — no math/rand outside internal/sim/rand.go
//	noconcurrency  — no goroutines, channels, or sync in sim packages
//	maporder       — no order-sensitive work inside map-range loops
//	energyaccum    — no ad-hoc += into energy/joule/charge accumulators
//	snapshotstate  — no stateful fields missing from Snapshot/Restore
//	obsdeterminism — no fmt.Fprint*/log.* in instrumented packages
//
// A finding can be suppressed with an explicit, reasoned directive on the
// offending line (or the line above, or file-wide in the header):
//
//	//psbox:allow-<analyzer> <reason>
//
// The reason is mandatory: a bare directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-paragraph description of the rule
	Run  func(*Pass)
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	diags      *[]Diagnostic
	directives map[string]*fileDirectives // keyed by filename
}

// fileDirectives records the //psbox:allow-* lines of one file.
type fileDirectives struct {
	fileScope map[string]bool // analyzer name → allowed for whole file
	lines     map[string]map[int]bool
}

var directiveRe = regexp.MustCompile(`^//psbox:allow-([a-z]+)(?:\s+(.*))?$`)

// scanDirectives indexes every allow directive in the package and reports
// directives that omit the mandatory reason.
func scanDirectives(fset *token.FileSet, files []*ast.File, report func(token.Pos, string)) map[string]*fileDirectives {
	out := make(map[string]*fileDirectives)
	for _, f := range files {
		fd := &fileDirectives{
			fileScope: make(map[string]bool),
			lines:     make(map[string]map[int]bool),
		}
		out[fset.Position(f.Pos()).Filename] = fd
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("psbox:allow-%s directive requires a reason", name))
					continue
				}
				if c.Pos() < f.Package {
					// Header comment: the whole file is exempt.
					fd.fileScope[name] = true
					continue
				}
				if fd.lines[name] == nil {
					fd.lines[name] = make(map[int]bool)
				}
				fd.lines[name][fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// allowed reports whether an analyzer finding at pos is covered by a
// directive on the same line, the line above, or the file header.
func (p *Pass) allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	fd := p.directives[position.Filename]
	if fd == nil {
		return false
	}
	if fd.fileScope[p.Analyzer.Name] {
		return true
	}
	lines := fd.lines[p.Analyzer.Name]
	return lines[position.Line] || lines[position.Line-1]
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the file a node was parsed from.
func (p *Pass) Filename(n ast.Node) string {
	return p.Fset.Position(n.Pos()).Filename
}

// All is the complete suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoWallClock, NoMathRand, NoConcurrency, MapOrder, EnergyAccum, SnapshotState, ObsDeterminism}
}

// obsInstrumented are the package subtrees that emit on the observability
// bus; obsdeterminism polices exactly these. The obs package itself (the
// reporting layer, which writes canonical reports to caller-supplied
// io.Writers) and cmd tools (whose whole job is printing) stay out of
// scope.
var obsInstrumented = []string{
	"psbox/internal/sim",
	"psbox/internal/kernel",
	"psbox/internal/hw",
	"psbox/internal/meter",
	"psbox/internal/faults",
	"psbox/internal/core",
}

// InScope reports whether an analyzer applies to a package, per the
// determinism contract in DESIGN.md: nowallclock covers only
// psbox/internal/... (cmd tools may legitimately report host time) and
// obsdeterminism only the instrumented subtrees that emit on the
// observability bus; every other analyzer covers the whole module, with
// their file-level exemptions (sim/rand.go, internal/meter,
// core/vmeter.go) and allow directives as the only escape hatches.
func InScope(a *Analyzer, pkgPath string) bool {
	switch a.Name {
	case "nowallclock":
		return strings.HasPrefix(pkgPath, "psbox/internal")
	case "obsdeterminism":
		for _, p := range obsInstrumented {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
	return true
}

// RunAnalyzers applies each analyzer to the package and returns the
// findings sorted by position. Malformed allow directives are reported
// once per package under the pseudo-analyzer name "directive".
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	dirs := scanDirectives(pkg.Fset, pkg.Files, func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "directive",
			Message:  msg,
		})
	})
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			PkgPath:    pkg.Path,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			diags:      &diags,
			directives: dirs,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// qualifiedCall matches expressions of the form pkg.Name where pkg is an
// import of pkgPath, returning the selected name.
func qualifiedName(info *types.Info, e ast.Expr, pkgPath string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkgNameOf(info, id) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
