// Package analysis implements psbox's static determinism and
// energy-accounting checks as a small self-contained analyzer framework.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer holds a name, a doc string, and a Run function over a
// type-checked package — but is built only on the standard library so the
// module stays dependency-free. Thirteen analyzers enforce the simulator's
// determinism, checkpoint, billing, and observability contracts (see
// DESIGN.md §"Determinism contract", §"Checkpoint/restore" and
// §"Observability"):
//
//	nowallclock    — no time.Now/Sleep/Since/After inside internal/
//	nomathrand     — no math/rand outside internal/sim/rand.go
//	noconcurrency  — no goroutines, channels, or sync in sim packages
//	maporder       — no order-sensitive work inside map-range loops
//	energyaccum    — no ad-hoc += into energy/joule/charge accumulators
//	snapshotstate  — no stateful fields missing from Snapshot/Restore
//	obsdeterminism — no fmt.Fprint*/log.* in instrumented packages
//	walltaint      — no wall-clock/env/pid-derived values reaching sim
//	                 state, snapshot writers, or obs events (whole-program)
//	unbilledenergy — rail power transitions must be billed into
//	                 internal/account on every path (whole-program)
//	maporderflow   — maporder's float-accumulation rule through locals
//	                 and helper calls (whole-program)
//	goroutineconfine — confined values (System, snapshot codecs, obs bus,
//	                 scenario RNG) reachable from at most one goroutine;
//	                 channel send transfers ownership (whole-program)
//	locksetatomic  — in host-concurrency packages, inferred mutex/field
//	                 guards are held on every access; no WaitGroup.Add in
//	                 the spawned goroutine; no mixed atomic/plain access
//
// The interprocedural analyzers consult a whole-program view —
// the cross-package call graph and bottom-up function summaries — carried
// by a Program and shared across analyzers through its fact cache.
//
// A finding can be suppressed with an explicit, reasoned directive on the
// offending line (or the line above, or file-wide in the header). A
// directive on the line above a statement that wraps across several lines
// covers the whole statement, so findings reported on a continuation line
// are suppressed too:
//
//	//psbox:allow-<analyzer> <reason>
//
// The reason is mandatory: a bare directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"psbox/internal/analysis/callgraph"
)

// An Analyzer is one named static check.
type Analyzer struct {
	Name string // short lower-case identifier, used in directives and output
	Doc  string // one-paragraph description of the rule
	Run  func(*Pass)
}

// A Diagnostic is one finding, positioned in the analyzed source. Fixes,
// when present, are machine-applicable remediations (see ApplyFixes).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package. Prog is
// the whole program the package was loaded as a part of; intraprocedural
// analyzers ignore it, interprocedural ones pull the call graph and shared
// summary tables from it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	diags      *[]Diagnostic
	directives map[string]*fileDirectives // keyed by filename
}

// A Program is the package set of one lint run. It owns the expensive
// whole-program artifacts — the cross-package call graph and the
// interprocedural analyzers' bottom-up summary tables — so each is built
// once per run instead of once per package.
type Program struct {
	Pkgs []*Package // deterministic import-path order

	cg    *callgraph.Graph
	facts map[string]any
}

// NewProgram wraps an already-loaded package set.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs, facts: make(map[string]any)}
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *callgraph.Graph {
	if p.cg == nil {
		cgPkgs := make([]*callgraph.Package, len(p.Pkgs))
		for i, pkg := range p.Pkgs {
			cgPkgs[i] = &callgraph.Package{Path: pkg.Path, Files: pkg.Files, Types: pkg.Types, Info: pkg.Info}
		}
		p.cg = callgraph.Build(cgPkgs)
	}
	return p.cg
}

// Fact memoizes a whole-program computation under key. The first caller's
// build result is handed to every later caller, so an analyzer that runs
// once per package computes its summary table once per program.
func (p *Program) Fact(key string, build func() any) any {
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := build()
	p.facts[key] = v
	return v
}

// A directiveEntry is one //psbox:allow-* comment, with everything needed
// to decide coverage and — after a full-suite run — staleness. used flips
// when the directive suppresses (or exempts) at least one finding.
type directiveEntry struct {
	name      string    // analyzer the directive waives
	pos, end  token.Pos // the comment's own extent
	line      int
	fileScope bool // header directive: whole file exempt
	// span is the line range of a multi-line statement the directive
	// heads, so a finding on a continuation line is suppressed too; zero
	// when the directive covers only its own and the next line.
	span [2]int
	used bool
}

// fileDirectives records the //psbox:allow-* lines of one file.
type fileDirectives struct {
	entries []*directiveEntry
}

var directiveRe = regexp.MustCompile(`^//psbox:allow-([a-z]+)(?:\s+(.*))?$`)

// scanDirectives indexes every allow directive in the package and reports
// directives that omit the mandatory reason.
func scanDirectives(fset *token.FileSet, files []*ast.File, report func(token.Pos, string)) map[string]*fileDirectives {
	out := make(map[string]*fileDirectives)
	for _, f := range files {
		fd := &fileDirectives{}
		out[fset.Position(f.Pos()).Filename] = fd
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					report(c.Pos(), fmt.Sprintf("psbox:allow-%s directive requires a reason", name))
					continue
				}
				e := &directiveEntry{name: name, pos: c.Pos(), end: c.End()}
				if c.Pos() < f.Package {
					// Header comment: the whole file is exempt.
					e.fileScope = true
				} else {
					e.line = fset.Position(c.Pos()).Line
					if from, to, ok := stmtSpanAt(fset, f, e.line); ok && to > from {
						e.span = [2]int{from, to}
					}
				}
				fd.entries = append(fd.entries, e)
			}
		}
	}
	return out
}

// stmtSpanAt returns the line range of the innermost statement a directive
// at line covers: the statement beginning on the directive's own line or
// on the line directly below. For statements that carry a body (if, for,
// switch, select), coverage stops at the opening brace so a directive
// above a control statement never silences the body.
func stmtSpanAt(fset *token.FileSet, f *ast.File, line int) (int, int, bool) {
	var best ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		start := fset.Position(s.Pos()).Line
		if start != line && start != line+1 {
			return true
		}
		if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
			best = s
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	return fset.Position(best.Pos()).Line, fset.Position(stmtCoverageEnd(best)).Line, true
}

// stmtCoverageEnd is the last position a directive on a statement's first
// line speaks for.
func stmtCoverageEnd(s ast.Stmt) token.Pos {
	switch s := s.(type) {
	case *ast.IfStmt:
		return s.Body.Lbrace
	case *ast.ForStmt:
		return s.Body.Lbrace
	case *ast.RangeStmt:
		return s.Body.Lbrace
	case *ast.SwitchStmt:
		return s.Body.Lbrace
	case *ast.TypeSwitchStmt:
		return s.Body.Lbrace
	case *ast.SelectStmt:
		return s.Body.Lbrace
	case *ast.BlockStmt:
		return s.Lbrace
	case *ast.LabeledStmt:
		return stmtCoverageEnd(s.Stmt)
	}
	return s.End()
}

// allowed reports whether an analyzer finding at pos is covered by a
// directive on the same line, the line above, the spanned lines of the
// statement the directive heads, or the file header.
func (p *Pass) allowed(pos token.Pos) bool {
	return p.allowedFor(p.Analyzer.Name, pos)
}

// allowedFor is allowed for an explicit directive name — used where one
// analyzer honors another's waivers (snapshotdrift inherits
// allow-snapshotstate field exemptions). Every matching directive is
// marked used, which is what the staleallows check consumes after a
// full-suite run.
func (p *Pass) allowedFor(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	fd := p.directives[position.Filename]
	if fd == nil {
		return false
	}
	hit := false
	for _, e := range fd.entries {
		if e.name != name {
			continue
		}
		if e.fileScope ||
			e.line == position.Line || e.line == position.Line-1 ||
			(e.span[1] > 0 && position.Line >= e.span[0] && position.Line <= e.span[1]) {
			e.used = true
			hit = true
		}
	}
	return hit
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the file a node was parsed from.
func (p *Pass) Filename(n ast.Node) string {
	return p.Fset.Position(n.Pos()).Filename
}

// All is the complete suite in stable order. walltaint, unbilledenergy,
// maporderflow, and goroutineconfine are interprocedural; when run through
// RunAnalyzers' single-package wrapper they see a one-package program and
// degrade to intraprocedural checking.
func All() []*Analyzer {
	return []*Analyzer{NoWallClock, NoMathRand, NoConcurrency, MapOrder, EnergyAccum, SnapshotState, SnapshotDrift, ObsDeterminism, WallTaint, UnbilledEnergy, MapOrderFlow, GoroutineConfine, LockSetAtomic}
}

// obsInstrumented are the package subtrees that emit on the observability
// bus; obsdeterminism polices exactly these. The obs package itself (the
// reporting layer, which writes canonical reports to caller-supplied
// io.Writers) and cmd tools (whose whole job is printing) stay out of
// scope.
var obsInstrumented = []string{
	"psbox/internal/sim",
	"psbox/internal/kernel",
	"psbox/internal/hw",
	"psbox/internal/meter",
	"psbox/internal/faults",
	"psbox/internal/core",
	"psbox/internal/sandbox",
}

// InScope reports whether an analyzer applies to a package, per the
// determinism contract in DESIGN.md: nowallclock covers only
// psbox/internal/... (cmd tools may legitimately report host time) and
// obsdeterminism only the instrumented subtrees that emit on the
// observability bus; every other analyzer covers the whole module, with
// their file-level exemptions (sim/rand.go, internal/meter,
// core/vmeter.go) and allow directives as the only escape hatches.
func InScope(a *Analyzer, pkgPath string) bool {
	switch a.Name {
	case "nowallclock", "walltaint", "unbilledenergy":
		// cmd tools may legitimately read host time and environment; the
		// simulator tree may not, directly or through any call chain.
		return strings.HasPrefix(pkgPath, "psbox/internal")
	case "obsdeterminism":
		for _, p := range obsInstrumented {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
	return true
}

// RunAnalyzers applies each analyzer to the package as a one-package
// program. Interprocedural analyzers see no callees beyond the package;
// use RunAnalyzersProgram for whole-program precision.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAnalyzersProgram(NewProgram([]*Package{pkg}), pkg, analyzers)
}

// RunAnalyzersProgram applies each analyzer to one package of prog and
// returns the findings sorted by position. Malformed allow directives are
// reported once per package under the pseudo-analyzer name "directive".
func RunAnalyzersProgram(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	dirs := scanDirectives(pkg.Fset, pkg.Files, func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "directive",
			Message:  msg,
		})
	})
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			PkgPath:    pkg.Path,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Prog:       prog,
			diags:      &diags,
			directives: dirs,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// qualifiedCall matches expressions of the form pkg.Name where pkg is an
// import of pkgPath, returning the selected name.
func qualifiedName(info *types.Info, e ast.Expr, pkgPath string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkgNameOf(info, id) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
