// Package psbox is the fixture stub of the real top-level simulator
// package: just enough surface for the goroutineconfine fixtures to
// type-check (the analyzer's confined-type seed list matches by package
// path and type name, so the stub must live at the real import path).
package psbox

// System is one single-threaded simulator instance; confined by contract
// to at most one goroutine at a time.
type System struct{ NowNS int64 }

// Run advances the simulation by d nanoseconds.
func (s *System) Run(d int64) {}
