// Package snapshot is the fixture stub of the real checkpoint wire-format
// package: just enough surface for the snapshotstate analyzer fixtures to
// type-check (the analyzer matches parameter types by package path and
// type name, so the stub must live at the real import path).
package snapshot

// Encoder appends canonical big-endian fields to a checkpoint section.
type Encoder struct{ buf []byte }

func (e *Encoder) U64(v uint64)  {}
func (e *Encoder) I64(v int64)   {}
func (e *Encoder) F64(v float64) {}
func (e *Encoder) Bool(v bool)   {}
func (e *Encoder) Str(s string)  {}
func (e *Encoder) Len(n int)     {}

// Decoder reads a checkpoint section back.
type Decoder struct {
	buf []byte
	off int
}

func (d *Decoder) U64() uint64 { return 0 }

// Verify re-encodes live state and byte-compares it with the decoder's
// remaining payload.
func Verify(dec *Decoder, live func(*Encoder)) error { return nil }
