// Package sim is the fixture stub of the deterministic simulator core.
// For walltaint it is a sink package, and a host-state read inside it is a
// violation at the read itself — even where nowallclock has been waved off
// with a directive.
package sim

import "time"

// Engine is the fixture's virtual-time engine.
type Engine struct{ now int64 }

// Sync smuggles the host clock into the virtual clock.
func (e *Engine) Sync() {
	//psbox:allow-nowallclock fixture: the directive excuses the read, not the flow
	e.now = time.Now().UnixNano() // want `wall-clock time read inside psbox/internal/sim`
}

// Advance moves virtual time forward deterministically; legal.
func (e *Engine) Advance(d int64) {
	e.now += d
}
