// Package power is the fixture stub of the real rail model: unbilledenergy
// matches Rail.Set/Rail.Adjust by package path, receiver type name, and
// method name, so the stub must live at the real import path.
package power

// Rail is one supply rail whose draw the sandbox meters.
type Rail struct{ w float64 }

// Set moves the rail to an absolute power draw.
func (r *Rail) Set(w float64) { r.w = w }

// Adjust moves the rail by a delta.
func (r *Rail) Adjust(d float64) { r.w = r.w + d }

// Load reads the rail without changing state; not a transition.
func (r *Rail) Load() float64 { return r.w }
