// Package obs is the fixture stub of the real observability bus: just
// enough surface for the walltaint fixtures to type-check (the analyzer
// treats every function in this import path as a deterministic-state sink,
// so the stub must live at the real import path).
package obs

// Emit records one named sample on the deterministic event bus.
func Emit(name string, v int64) {}

// Annotate attaches a free-form label to the current trace span.
func Annotate(key, value string) {}
