// Package account is the fixture stub of the real energy-billing ledger:
// unbilledenergy recognizes any call into this import path as the billing
// half of a transition/billing pair.
package account

// Bill charges owner for joules of rail energy.
func Bill(owner int, joules float64) {}

// Recorder is the callback-style billing surface.
type Recorder struct{}

// Record charges owner for the span's metered energy.
func (r *Recorder) Record(owner int, joules float64) {}
