package a

import "time"

// Types and constants from package time are fine: they carry no host state.
var window = 5 * time.Millisecond
var epoch = time.Unix(0, 0)

func bad() time.Duration {
	t := time.Now()              // want `time\.Now reads the host wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host wall clock`
	_ = time.Since(t)            // want `time\.Since reads the host wall clock`
	_ = time.After(window)       // want `time\.After reads the host wall clock`
	_ = time.NewTimer(window)    // want `time\.NewTimer reads the host wall clock`
	return time.Until(epoch)     // want `time\.Until reads the host wall clock`
}

func allowed() {
	//psbox:allow-nowallclock host-side profiling helper, never on the sim path
	_ = time.Now()
}
