// Package a mixes live and dead waivers for the staleallows check.
//
//psbox:allow-maporder file-wide waiver left over from a deleted loop
package a

import "time"

func used() time.Time {
	//psbox:allow-nowallclock host-side profiling helper, not on the sim path
	return time.Now()
}

func staleLine() int {
	//psbox:allow-nowallclock the clock read below was removed in a refactor
	return 1
}

func staleTrailing() (n int) {
	n = 2 //psbox:allow-energyaccum accumulator was renamed away
	return n
}
