package a

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Pure formatting is legal: values, not output.
func format(n int) string {
	s := fmt.Sprintf("n=%d", n)
	_ = fmt.Errorf("bad n %d", n)
	return s
}

func bad(w io.Writer) {
	fmt.Println("state changed")                   // want `fmt\.Println writes outside the observability bus`
	fmt.Printf("freq=%d\n", 600)                   // want `fmt\.Printf writes outside the observability bus`
	fmt.Print("x")                                 // want `fmt\.Print writes outside the observability bus`
	fmt.Fprintf(w, "owner=%d\n", 1)                // want `fmt\.Fprintf writes outside the observability bus`
	fmt.Fprintln(os.Stderr, "oops")                // want `fmt\.Fprintln writes outside the observability bus`
	fmt.Fprint(w, "y")                             // want `fmt\.Fprint writes outside the observability bus`
	log.Printf("watchdog fired")                   // want `log\.Printf bypasses the observability bus`
	log.Println("reset")                           // want `log\.Println bypasses the observability bus`
	_ = log.New(os.Stderr, "psbox", log.LstdFlags) // want `log\.New bypasses the observability bus` `log\.LstdFlags bypasses the observability bus`
}

func allowed(w io.Writer) {
	//psbox:allow-obsdeterminism report renderer, writes a caller-supplied io.Writer
	fmt.Fprintf(w, "canonical report line\n")
}
