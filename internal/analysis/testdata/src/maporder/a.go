package a

import (
	"fmt"
	"sort"
	"strings"
)

// Engine stands in for the sim engine: receiver type name is what the
// analyzer keys on.
type Engine struct{}

func (e *Engine) After(d int, fn func()) {}
func (e *Engine) At(t int, fn func())    {}

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map records iteration order`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: legal
	}
	sort.Strings(keys)
	return keys
}

func appendThenSliceSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sort.Slice also counts
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func printOutput(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map emits output`
	}
}

func builderOutput(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over map emits output`
	}
}

func schedule(m map[string]int, eng *Engine) {
	for _, v := range m {
		eng.After(v, func() {}) // want `sim event scheduled inside range over map`
	}
}

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation into total inside range over map`
	}
	return total
}

func stringAccum(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string accumulation into s inside range over map`
	}
	return s
}

func intSumLegal(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer sums are order-independent: legal
	}
	return n
}

func minTrackLegal(m map[int]float64) float64 {
	min := -1.0
	for _, v := range m {
		if min < 0 || v < min {
			min = v // plain assignment, order-independent result: legal
		}
	}
	return min
}

func perKeyLegal(src map[string]float64, acc map[string]float64) {
	for k, v := range src {
		acc[k] += v // per-key accumulation indexed by the loop var: legal
	}
}

func loopLocalLegal(m map[string][]float64) {
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v // accumulator lives inside the loop: legal
		}
		_ = s
	}
}

func allowedAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//psbox:allow-maporder tolerance-checked aggregate, compared with an epsilon
		total += v
	}
	return total
}
