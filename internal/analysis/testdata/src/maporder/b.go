// b.go exercises the sorted-keys suggested fix in a file that does not
// yet import "sort": the fix must add the import to the block.
package a

import (
	"strings"
)

func join(m map[string]string) string {
	var out string
	for k, v := range m {
		out += strings.ToUpper(k) + v // want `string accumulation into out inside range over map`
	}
	return out
}
