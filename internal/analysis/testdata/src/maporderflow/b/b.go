// Package b holds cross-package helpers for the maporderflow fixtures.
package b

// Add is a float accumulator step hidden behind a call.
func Add(a, c float64) float64 {
	return a + c
}

// Fresh ignores its inputs; the result carries no flow.
func Fresh(a, c float64) float64 {
	return 0
}
