// Package a exercises maporderflow: order-sensitive accumulation inside a
// range over a map is flagged even when routed through intermediate
// locals or helper calls — the flows maporder's syntactic rule misses.
package a

import (
	"math"

	"maporderflow/b"
)

// The accumulation hides behind an intermediate local.
func ViaLocal(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		t := v * 2
		sum = sum + t // want `float accumulation into sum depends on map iteration order`
	}
	return sum
}

// The accumulation hides behind a helper call in another package.
func ViaHelper(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = b.Add(sum, v) // want `float accumulation into sum depends on map iteration order`
	}
	return sum
}

// String concatenation order is observable too.
func Concat(m map[string]string) string {
	out := ""
	for k := range m {
		line := k + ";"
		out = out + line // want `string accumulation into out depends on map iteration order`
	}
	return out
}

// Min/max tracking reads the loop value without folding the accumulator
// back in: order-free, legal.
func MinTrack(m map[string]float64) float64 {
	best := -1.0
	for _, v := range m {
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// The min builtin is commutative and exact: legal.
func MinBuiltin(m map[string]float64) float64 {
	lo := math.Inf(1)
	for _, v := range m {
		lo = min(lo, v)
	}
	return lo
}

// math.Max likewise.
func MaxMath(m map[string]float64) float64 {
	hi := math.Inf(-1)
	for _, v := range m {
		hi = math.Max(hi, v)
	}
	return hi
}

// Integer sums are exact in any order: legal.
func IntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n = n + v
	}
	return n
}

// A helper that drops its inputs breaks the cycle: legal.
func ViaFresh(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = b.Fresh(sum, v)
	}
	return sum
}

// Scaling the accumulator without reading the loop variables is
// order-free: legal.
func Rescale(m map[string]float64, factor float64) float64 {
	total := 1.0
	for range m {
		total = total * factor
	}
	return total
}
