// This file is a facade layer serving live clients; host concurrency is
// deliberate and documented.
//
//psbox:allow-noconcurrency daemon facade: real clients arrive on OS threads
package a

func daemonLoop() {
	stop := make(chan struct{})
	go func() {
		<-stop
	}()
	close(stop)
}
