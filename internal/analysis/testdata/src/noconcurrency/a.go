package a

import (
	"sync"        // want `import of sync: locking implies concurrency`
	"sync/atomic" // want `import of sync/atomic: locking implies concurrency`
)

var mu sync.Mutex
var n atomic.Int64

func bad() {
	ch := make(chan int, 1) // want `make\(chan \.\.\.\): channels are forbidden`
	go sender(ch)           // want `go statement: deterministic packages are single-threaded`
	ch <- 1                 // want `channel send: use direct calls or sim events`
	<-ch                    // want `channel receive: use direct calls or sim events`
	for v := range ch {     // want `range over channel: channels are forbidden`
		_ = v
	}
	select {} // want `select statement: event ordering must come from the sim engine`
}

func sender(ch chan int) {
	ch <- 2 // want `channel send: use direct calls or sim events`
}

func allowedStatement(ch chan int) {
	//psbox:allow-noconcurrency test harness drains asynchronously off the sim thread
	go sender(ch)
}
