// Package b holds cross-package helpers for the walltaint fixtures: one
// that forwards its argument into deterministic state, one that mints a
// tainted value, and one that swallows its argument.
package b

import (
	"time"

	"psbox/internal/obs"
)

// Forward relays a metric into the obs bus; its v parameter is a
// transitive sink.
func Forward(name string, v int64) {
	obs.Emit(name, v)
}

// Stamp mints a wall-clock value; its return carries the taint.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Drop uses its argument locally and never sinks it.
func Drop(name string, v int64) int64 {
	return v + int64(len(name))
}

// Cache is a heap way-station: a setter parks a value in one field, a
// getter retrieves it later. The setter's store effect and the getter's
// read are per-field facts in the cross-package summaries.
type Cache struct {
	stamp int64
	count int64
}

// SetStamp stores v into the stamp field — a heap store effect through
// the pointer receiver.
func (c *Cache) SetStamp(v int64) {
	c.stamp = v
}

// Stamp reads the stamp field back.
func (c *Cache) Stamp() int64 {
	return c.stamp
}

// Bump touches only the count field.
func (c *Cache) Bump() {
	c.count++
}
