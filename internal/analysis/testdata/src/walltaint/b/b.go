// Package b holds cross-package helpers for the walltaint fixtures: one
// that forwards its argument into deterministic state, one that mints a
// tainted value, and one that swallows its argument.
package b

import (
	"time"

	"psbox/internal/obs"
)

// Forward relays a metric into the obs bus; its v parameter is a
// transitive sink.
func Forward(name string, v int64) {
	obs.Emit(name, v)
}

// Stamp mints a wall-clock value; its return carries the taint.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Drop uses its argument locally and never sinks it.
func Drop(name string, v int64) int64 {
	return v + int64(len(name))
}
