// Package a exercises walltaint: host-dependent values must not reach
// deterministic-state packages, directly or through helpers.
package a

import (
	"fmt"
	"os"
	"time"

	"psbox/internal/obs"
	"walltaint/b"
)

// Direct flow into a sink package.
func Direct() {
	t := time.Now().UnixNano()
	obs.Emit("t", t) // want `wall-clock time flows into obs.Emit`
}

// Laundering through stdlib calls keeps the taint.
func Laundered() {
	s := fmt.Sprintf("%d", os.Getpid())
	n := int64(len(s))
	obs.Emit("pid", n) // want `process id flows into obs.Emit`
}

// Cross-package: the helper lives in another package and forwards its
// argument into obs.
func ViaHelper() {
	t := time.Now().UnixNano()
	b.Forward("t", t) // want `wall-clock time flows into b.Forward, which forwards it into deterministic state`
}

// Cross-package: the taint arrives through a helper's return value.
func ViaReturn() {
	obs.Emit("t", b.Stamp()) // want `wall-clock time flows into obs.Emit`
}

// Environment values are a distinct source kind.
func Env() {
	home := os.Getenv("HOME")
	obs.Emit("len", int64(len(home))) // want `process-environment value flows into obs.Emit`
}

// %p formatting leaks ASLR-randomized addresses.
func PtrFmt(x *int) {
	s := fmt.Sprintf("%p", x)
	obs.Emit("addr", int64(len(s))) // want `pointer-formatted address flows into obs.Emit`
}

// Sim-provided values are clean; emitting them is the intended use.
func SimTime(now int64) {
	obs.Emit("sim", now)
}

// A host read that never reaches a sink is nowallclock's business, not
// walltaint's.
func HostLocal() int64 {
	t := time.Now().UnixNano()
	return b.Drop("t", t)
}

// %d formatting of a clean value stays clean.
func CleanFmt(v int64) {
	obs.Annotate("v", fmt.Sprintf("%d", v))
}
