// Package a exercises walltaint: host-dependent values must not reach
// deterministic-state packages, directly or through helpers.
package a

import (
	"fmt"
	"os"
	"time"

	"psbox/internal/obs"
	"walltaint/b"
)

// Direct flow into a sink package.
func Direct() {
	t := time.Now().UnixNano()
	obs.Emit("t", t) // want `wall-clock time flows into obs.Emit`
}

// Laundering through stdlib calls keeps the taint.
func Laundered() {
	s := fmt.Sprintf("%d", os.Getpid())
	n := int64(len(s))
	obs.Emit("pid", n) // want `process id flows into obs.Emit`
}

// Cross-package: the helper lives in another package and forwards its
// argument into obs.
func ViaHelper() {
	t := time.Now().UnixNano()
	b.Forward("t", t) // want `wall-clock time flows into b.Forward, which forwards it into deterministic state`
}

// Cross-package: the taint arrives through a helper's return value.
func ViaReturn() {
	obs.Emit("t", b.Stamp()) // want `wall-clock time flows into obs.Emit`
}

// Environment values are a distinct source kind.
func Env() {
	home := os.Getenv("HOME")
	obs.Emit("len", int64(len(home))) // want `process-environment value flows into obs.Emit`
}

// %p formatting leaks ASLR-randomized addresses.
func PtrFmt(x *int) {
	s := fmt.Sprintf("%p", x)
	obs.Emit("addr", int64(len(s))) // want `pointer-formatted address flows into obs.Emit`
}

// Sim-provided values are clean; emitting them is the intended use.
func SimTime(now int64) {
	obs.Emit("sim", now)
}

// A host read that never reaches a sink is nowallclock's business, not
// walltaint's.
func HostLocal() int64 {
	t := time.Now().UnixNano()
	return b.Drop("t", t)
}

// %d formatting of a clean value stays clean.
func CleanFmt(v int64) {
	obs.Annotate("v", fmt.Sprintf("%d", v))
}

// The taint survives a heap round-trip: the cross-package setter parks it
// in a struct field, the getter retrieves it. A variable-granularity
// engine whose summaries carried only return labels missed this leak
// entirely — SetStamp returns nothing.
func HeapRoundTrip() {
	var c b.Cache
	c.SetStamp(time.Now().UnixNano())
	obs.Emit("t", c.Stamp()) // want `wall-clock time flows into obs.Emit`
}

// Writing taint into one field does not implicate its sibling: reading
// meta.count after tainting meta.stamp is clean. The old
// field-insensitive engine labeled all of m on the first write and
// flagged this — pinned here as a fixed false positive.
type meta struct {
	stamp int64
	count int64
}

func SiblingField() {
	var m meta
	m.stamp = time.Now().UnixNano()
	m.count++
	obs.Emit("n", m.count)
}

// And the tainted field itself still reports, so the sibling's silence
// above is precision, not blindness.
func TaintedField() {
	var m meta
	m.stamp = time.Now().UnixNano()
	obs.Emit("t", m.stamp) // want `wall-clock time flows into obs.Emit`
}

// A closure smuggles the taint into a captured variable. Previously
// missed: function literal bodies were opaque to the engine.
func ViaClosure() {
	var t int64
	grab := func() { t = time.Now().UnixNano() }
	grab()
	obs.Emit("t", t) // want `wall-clock time flows into obs.Emit`
}
