package a

import "math/rand" // want `import of math/rand: use the seeded sim\.Rand`

func roll() int { return rand.Intn(6) }
