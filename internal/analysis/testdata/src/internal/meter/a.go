// Package meter sits at a path containing internal/meter/: the approved
// integrator, exempt from energyaccum wholesale.
package meter

type rail struct{ energyJ float64 }

func (r *rail) integrate(w, dt float64) {
	r.energyJ += w * dt // exempt: this is the integrator itself
}
