// Package b holds cross-package helpers for the unbilledenergy fixtures.
package b

import "psbox/internal/hw/power"

// Ramp changes rail power without billing: callers inherit the obligation
// through the exposes summary.
func Ramp(r *power.Rail, w float64) {
	r.Set(w)
}

// Probe only reads the rail; no obligation.
func Probe(r *power.Rail) float64 {
	return r.Load()
}
