// Package a exercises unbilledenergy: every rail power transition must be
// post-dominated by a billing call into psbox/internal/account, in any
// function that participates in billing.
package a

import (
	"psbox/internal/account"
	"psbox/internal/hw/power"
	"unbilledenergy/b"
)

// Billed on the only path: legal.
func Paired(r *power.Rail, w float64) {
	r.Set(w)
	account.Bill(1, w)
}

// The early return skips billing.
func Branchy(r *power.Rail, w float64, fast bool) {
	r.Set(w) // want `rail power transition \(power\.Rail\.Set\) is not billed on every path`
	if fast {
		return
	}
	account.Bill(1, w)
}

// A deferred billing call covers every exit: legal.
func Deferred(r *power.Rail, w float64, fast bool) {
	defer account.Bill(1, w)
	r.Set(w)
	if fast {
		return
	}
	r.Adjust(-w)
}

// No billing anywhere in reach: the obligation floats to the caller via
// the exposes summary instead of being flagged here.
func Exposes(r *power.Rail, w float64) {
	r.Set(w)
}

// Cross-package: the transition happens inside b.Ramp, the missing branch
// is here.
func ViaHelper(r *power.Rail, w float64, fast bool) {
	b.Ramp(r, w) // want `rail power transition \(call to b\.Ramp \(which changes rail power\)\) is not billed on every path`
	if fast {
		return
	}
	account.Bill(1, w)
}

// Cross-package, billed on every path: legal.
func ViaHelperPaired(r *power.Rail, w float64) {
	b.Ramp(r, w)
	account.Bill(1, w)
}

// A callee that always bills counts as the billing half.
func PairedViaHelper(r *power.Rail, w float64) {
	r.Set(w)
	settle(w)
}

func settle(w float64) {
	account.Bill(1, w)
}

// A provably panicking path is vacuously paired; the surviving path bills.
func PanicPath(r *power.Rail, w float64, bad bool) {
	r.Set(w)
	if bad {
		panic("rail fault")
	}
	account.Bill(1, w)
}

// Billing on the short-circuited side of && may never run and does not
// count as the pairing half.
func CondBill(r *power.Rail, w float64, ok bool) {
	r.Set(w) // want `rail power transition \(power\.Rail\.Set\) is not billed on every path`
	_ = ok && settleOK(w)
}

func settleOK(w float64) bool {
	account.Bill(1, w)
	return true
}

// Reading the rail is not a transition.
func ReadOnly(r *power.Rail) float64 {
	v := b.Probe(r)
	account.Bill(1, v)
	return v
}
