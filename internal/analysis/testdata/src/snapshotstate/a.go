// Package snapshotstate holds fixtures for the snapshotstate analyzer.
package snapshotstate

import "psbox/internal/snapshot"

// Delegate carries its own snapshot method; fields of this type in other
// snapshotted structs are covered by delegation.
type Delegate struct {
	count uint64
}

func (d *Delegate) Snapshot(enc *snapshot.Encoder) { enc.U64(d.count) }

// Machine is snapshotted (Snapshot/Restore with Encoder/Decoder params).
type Machine struct {
	id      int64
	name    string
	skipped uint64 // want `field skipped of snapshotted struct Machine is not referenced`

	hook func(int) // func-typed: wiring, exempt

	sub   *Delegate            // delegated, exempt
	table map[string]*Delegate // delegated through the map value, exempt

	//psbox:allow-snapshotstate construction-time wiring, rebuilt by replay
	cfg struct{ limit int }

	missing int64 // want `field missing of snapshotted struct Machine is not referenced`
}

func (m *Machine) Snapshot(enc *snapshot.Encoder) {
	enc.I64(m.id)
	enc.Str(m.name)
	m.sub.Snapshot(enc)
}

func (m *Machine) Restore(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, m.Snapshot)
}

// helper is part of the snapshot machinery because it lives in the same
// file: fields it references count as covered.
func helper(enc *snapshot.Encoder, m *Machine) {
	for k := range m.table {
		enc.Str(k)
	}
}

// lowercase is detected through an unexported method with a Decoder
// parameter — the method name does not matter, only the signature.
type lowercase struct {
	kept    int64
	dropped int64 // want `field dropped of snapshotted struct lowercase is not referenced`
}

func (l *lowercase) restore(dec *snapshot.Decoder) error {
	_ = l.kept
	return nil
}

// Plain has no snapshot methods: not snapshotted, nothing to report.
type Plain struct {
	anything int
	whatever func()
}
