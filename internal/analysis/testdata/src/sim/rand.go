package sim

// This file's path ends in sim/rand.go: the one blessed home of the
// stdlib generator, so its import is exempt.
import "math/rand"

func stream(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
