package sim

import "math/rand" // want `import of math/rand: use the seeded sim\.Rand`

// Same package, different file: the exemption is per-file, not per-package.
func roll2() int { return rand.Intn(6) }
