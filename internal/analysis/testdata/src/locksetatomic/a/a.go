// Package a exercises locksetatomic: majority-inferred mutex/field
// guards (including through deferred unlocks and RWMutexes), the
// constructor exemption, WaitGroup.Add placement, and mixed atomic/plain
// access to fields and package-level variables.
package a

import (
	"sync"
	"sync/atomic"
)

// counter.n is held under mu on two of three accesses — the majority
// infers counter.mu as its guard.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// A deferred unlock releases at exit, not mid-body: the access below it
// still counts as guarded.
func (c *counter) incrDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) peek() int {
	return c.n // want `field counter\.n is guarded by counter\.mu on 2 of 3 accesses but is accessed here without holding it`
}

// Clean: a receiver still under construction is unpublished — no guard
// needed, and the access does not dilute the majority.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// RWMutex: RLock counts as holding the guard too.
type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (t *table) get(k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

func (t *table) size() int {
	return len(t.m) // want `field table\.m is guarded by table\.mu on 2 of 3 accesses but is accessed here without holding it`
}

// A goroutine body runs under its own lockset, not the spawner's: the
// spawner's Lock does not cover the literal's access.
type shared struct {
	mu  sync.Mutex
	val int
}

func (s *shared) set(v int) {
	s.mu.Lock()
	s.val = v
	s.mu.Unlock()
}

func (s *shared) setTwice(v int) {
	s.mu.Lock()
	s.val = v
	s.mu.Unlock()
	go func() {
		s.val = v + 1 // want `field shared\.val is guarded by shared\.mu on 2 of 3 accesses but is accessed here without holding it`
	}()
}

// Add inside the goroutine races the spawner's Wait.
func addInside(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `sync\.WaitGroup\.Add inside the spawned goroutine races the spawner's Wait; call Add before the go statement`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Clean: Add before the spawn, Done inside.
func addBefore(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// gauge.v is written atomically and read plainly — the race the atomics
// were meant to prevent.
type gauge struct {
	v int64
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.v, 1)
}

func (g *gauge) read() int64 {
	return g.v // want `plain access to gauge\.v, which is accessed with sync/atomic at line \d+; mixed atomic and plain access to the same cell is racy`
}

// Same rule for package-level variables.
var hits int64

func recordHit() {
	atomic.AddInt64(&hits, 1)
}

func hitCount() int64 {
	return hits // want `plain access to hits, which is accessed with sync/atomic at line \d+; mixed atomic and plain access to the same cell is racy`
}
