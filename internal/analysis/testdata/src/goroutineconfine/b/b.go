// Package b provides spawn helpers for the goroutineconfine fixtures: Go
// spawns directly, Chain through one more hop, so the fixtures exercise
// the transitive spawn-mask fixpoint over the call graph.
package b

// Go runs f on its own goroutine.
func Go(f func()) { go f() }

// Chain forwards to Go: a wrapper of a wrapper of a go statement.
func Chain(f func()) { Go(f) }
