// Package a exercises goroutineconfine: seed-listed (*psbox.System) and
// marker-declared (Engine) confined values captured by goroutines or sent
// on channels, plus the clean ownership-transfer patterns the analyzer
// must accept.
package a

import (
	"psbox"

	"goroutineconfine/b"
)

// Engine is confined by marker rather than by the seed list.
//
//psbox:confined
type Engine struct{ steps int }

// Step advances the engine.
func (e *Engine) Step() { e.steps++ }

// Two goroutines capturing the same System: the second spawn is the
// violation.
func twoCaptures() {
	sys := &psbox.System{}
	go func() { sys.Run(1) }()
	go func() { sys.Run(2) }() // want `confined psbox\.System sys is captured by two goroutines \(spawned at line \d+ and line \d+\)`
}

// One syntactic spawn site, but inside a loop over a value declared
// outside it: every iteration's goroutine shares the System.
func spawnInLoop(n int) {
	sys := &psbox.System{}
	for i := 0; i < n; i++ {
		go func() { sys.Run(1) }() // want `goroutine spawned in a loop captures confined psbox\.System sys declared outside the loop`
	}
}

// The spawner keeps using the System after the method-value spawn handed
// it to the goroutine.
func useAfterHandoff() {
	sys := &psbox.System{}
	go sys.Run(1)
	sys.Run(2) // want `confined psbox\.System sys is used by the spawner after being handed to the goroutine spawned at line \d+`
}

// A channel send transfers ownership; the spawner must not touch the
// value afterwards.
func sendAway(ch chan *psbox.System) {
	sys := &psbox.System{}
	ch <- sys
	sys.Run(1) // want `confined psbox\.System sys is used after being sent away on a channel at line \d+`
}

// Handing off twice: spawned, then sent away again.
func spawnThenSend(ch chan *psbox.System) {
	sys := &psbox.System{}
	go sys.Run(1)
	ch <- sys // want `confined psbox\.System sys is handed off at line \d+ after its ownership was already transferred at line \d+`
}

// Captured through a spawn helper instead of a go statement.
func viaHelper() {
	e := &Engine{}
	b.Go(func() { e.Step() })
	e.Step() // want `confined a\.Engine e is used by the spawner after being handed to the goroutine spawned at line \d+`
}

// The transitive helper chain still counts as spawning.
func viaChain() {
	e := &Engine{}
	b.Chain(func() { e.Step() })
	b.Chain(func() { e.Step() }) // want `confined a\.Engine e is captured by two goroutines \(spawned at line \d+ and line \d+\)`
}

// A bound method value handed to a spawn helper captures its receiver.
func methodValue() {
	e := &Engine{}
	b.Go(e.Step)
	e.steps = 0 // want `confined a\.Engine e is used by the spawner after being handed to the goroutine spawned at line \d+`
}

// A go statement inside a deferred function literal is still a spawn site.
func spawnInDefer() {
	sys := &psbox.System{}
	defer func() { go sys.Run(1) }()
	go sys.Run(2) // want `confined psbox\.System sys is captured by two goroutines \(spawned at line \d+ and line \d+\)`
}

// Clean: each iteration's goroutine builds its own System — the
// per-attempt-construction pattern the fleet layer uses.
func perAttempt(n int) {
	for i := 0; i < n; i++ {
		go func() {
			sys := &psbox.System{}
			sys.Run(int64(i))
		}()
	}
}

// Clean: uses complete before the send; the transfer is the last touch.
func useThenSend(ch chan *psbox.System) {
	sys := &psbox.System{}
	sys.Run(1)
	ch <- sys
}

// Clean: receiving from a channel takes ownership.
func receiveOwnership(ch chan *psbox.System) {
	sys := <-ch
	sys.Run(1)
}
