// Package fleetbug reproduces a real bug shape from the fleet
// supervisor's retry loop: a System built once before the loop and
// captured by every attempt's goroutine, so a timed-out attempt's
// still-running goroutine and the retry's fresh goroutine share one
// simulator — exactly the cross-goroutine capture the shard watchdog
// narrowly avoids by rebuilding per attempt (superviseFixed).
package fleetbug

import "psbox"

type result struct{ ok bool }

// supervise is the buggy shape: one System outlives every retry.
func supervise(build func() *psbox.System, attempts int) result {
	sys := build()
	done := make(chan result, 1)
	for try := 0; try < attempts; try++ {
		go func() { // want `goroutine spawned in a loop captures confined psbox\.System sys declared outside the loop`
			sys.Run(1)
			done <- result{ok: true}
		}()
		select {
		case r := <-done:
			return r
		default:
		}
	}
	return result{}
}

// superviseFixed builds the System inside the attempt goroutine, so a
// hung attempt's goroutine owns its own simulator and the retry starts
// clean.
func superviseFixed(build func() *psbox.System, attempts int) result {
	done := make(chan result, 1)
	for try := 0; try < attempts; try++ {
		go func() {
			sys := build()
			sys.Run(1)
			done <- result{ok: true}
		}()
		select {
		case r := <-done:
			return r
		default:
		}
	}
	return result{}
}
