package a

type meterState struct {
	energyJ float64
	chargeC float64
	total   float64
}

func integrate(s *meterState, p, dt float64) {
	s.energyJ += p * dt // want `direct accumulation into s\.energyJ`
	s.chargeC -= p      // want `direct accumulation into s\.chargeC`
	s.total += p * dt   // name does not match: legal (maporder catches order bugs)
}

func buckets(energy []float64, jouleSum *float64, e float64) {
	energy[0] += e // want `direct accumulation into energy\[\.\.\.\]`
	*jouleSum += e // want `direct accumulation into \*jouleSum`
}

func allowed(s *meterState, e float64) {
	//psbox:allow-energyaccum summing already-integrated per-window shares
	s.energyJ += e
}
