// Package snapshotdrift holds fixtures for the snapshotdrift analyzer:
// per-method checkpoint coverage, where snapshotstate's whole-file
// granularity is not enough.
package snapshotdrift

import "psbox/internal/snapshot"

// Sub carries its own snapshot method; fields of this type elsewhere are
// covered by delegation and stay exempt.
type Sub struct {
	count uint64
}

func (s *Sub) Snapshot(enc *snapshot.Encoder) { enc.U64(s.count) }

// Twin is the replay-twin shape used throughout the simulator: Snapshot
// encodes every stateful field, Restore re-runs Snapshot against the
// decoded payload via Verify — so Restore inherits Snapshot's coverage
// and the type is clean.
type Twin struct {
	id    int64
	name  string
	sub   *Sub      // delegated
	hook  func(int) // wiring
	limit int       `psbox:"config"`

	//psbox:allow-snapshotstate construction-time wiring, rebuilt by replay
	cfg struct{ budget int }
}

func (t *Twin) Snapshot(enc *snapshot.Encoder) {
	enc.I64(t.id)
	enc.Str(t.name)
	t.sub.Snapshot(enc)
}

func (t *Twin) Restore(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, t.Snapshot)
}

// Drifted is exactly the gap snapshotstate cannot see: the skew field is
// referenced by a helper in this file, so the whole-file check passes,
// but the Snapshot method itself never encodes it — the checkpoint is
// missing the state.
type Drifted struct {
	kept int64
	skew int64 // want `field skew of snapshotted struct Drifted is not encoded by its Encoder-taking methods`
}

func (d *Drifted) Snapshot(enc *snapshot.Encoder) {
	enc.I64(d.kept)
}

func (d *Drifted) Restore(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, d.Snapshot)
}

// touchSkew references the drifted field outside the snapshot methods;
// it must not count as coverage.
func touchSkew(d *Drifted) int64 { return d.skew }

// Split has hand-written decode logic instead of a replay twin. The
// encoder side covers both fields; the decoder side reads only one, so
// the other is restored from garbage after a crash.
type Split struct {
	a uint64
	b uint64 // want `field b of snapshotted struct Split is not read back by its Decoder-taking methods`
}

func (s *Split) Snapshot(enc *snapshot.Encoder) {
	enc.U64(s.a)
	enc.U64(s.b)
}

func (s *Split) Restore(dec *snapshot.Decoder) error {
	s.a = dec.U64()
	return nil
}

// Helper coverage: an Encoder-taking helper method participates in the
// encoding side, so fields it covers are complete even though the
// entry-point Snapshot never mentions them.
type Chunked struct {
	head uint64
	tail uint64
}

func (c *Chunked) Snapshot(enc *snapshot.Encoder) {
	enc.U64(c.head)
	c.snapshotTail(enc)
}

func (c *Chunked) snapshotTail(enc *snapshot.Encoder) {
	enc.U64(c.tail)
}

func (c *Chunked) Restore(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, c.Snapshot)
}

// DecOnly is detected through a Decoder-taking method alone; fields it
// never reads are flagged on the decoder half.
type DecOnly struct {
	kept    int64
	dropped int64 // want `field dropped of snapshotted struct DecOnly is not read back by its Decoder-taking methods`
}

func (l *DecOnly) restore(dec *snapshot.Decoder) error {
	l.kept = int64(dec.U64())
	return nil
}

// Waived: a reasoned snapshotdrift directive silences the finding
// without touching the snapshotstate waiver.
type Waived struct {
	kept int64
	//psbox:allow-snapshotdrift derived cache, rebuilt on first use after restore
	cache int64
}

func (w *Waived) Snapshot(enc *snapshot.Encoder) {
	enc.I64(w.kept)
}

func (w *Waived) Restore(dec *snapshot.Decoder) error {
	return snapshot.Verify(dec, w.Snapshot)
}

// Plain has no snapshot methods: nothing to check.
type Plain struct {
	anything int
}
