package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// NoConcurrency forbids goroutines, channel operations, and the sync
// packages in the simulator's deterministic packages. The discrete-event
// engine is single-threaded by design: every interleaving decision must be
// an explicit, seeded simulation event, never a scheduler race. Layers
// that legitimately need host concurrency (a daemon serving real clients)
// escape with:
//
//	//psbox:allow-noconcurrency <reason>
var NoConcurrency = &Analyzer{
	Name: "noconcurrency",
	Doc: `forbid go statements, channel makes/sends/receives/selects, and
sync / sync/atomic imports in deterministic packages; host concurrency
makes event interleaving depend on the OS scheduler instead of the seed.`,
	Run: runNoConcurrency,
}

func runNoConcurrency(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				pass.Reportf(imp.Pos(),
					"import of %s: locking implies concurrency, which the single-threaded sim engine forbids", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement: deterministic packages are single-threaded; schedule a sim event instead")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send: use direct calls or sim events, not channels")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive: use direct calls or sim events, not channels")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement: event ordering must come from the sim engine, not channel readiness")
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, ok := n.Args[0].(*ast.ChanType); ok {
						pass.Reportf(n.Pos(), "make(chan ...): channels are forbidden in deterministic packages")
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel: channels are forbidden in deterministic packages")
					}
				}
			}
			return true
		})
	}
}
