package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
)

// SnapshotDrift upgrades the checkpoint contract from "has snapshot
// methods that mention the field somewhere in the file" (snapshotstate)
// to "the methods are complete": for every type with signature-detected
// Snapshot/Restore machinery — methods taking a
// *psbox/internal/snapshot.Encoder or *Decoder — each stateful field must
// be referenced by the encoding methods themselves, and by the decoding
// methods. A field that snapshotstate accepts because a helper in the
// same file touches it, but that the Snapshot method never encodes, is
// exactly the drift that breaks the replay-twin contract when a
// crash-and-resume run restores from a checkpoint missing that state.
//
// Coverage is per direction. Encoder coverage is the union of field
// references across every Encoder-taking method of the type (delegating
// helpers that also take the Encoder count). Decoder coverage is the
// union across Decoder-taking methods, and a decoding method that
// references an encoding method of the same type — the replay-twin
// pattern, RestoreSnapshot(dec) = snapshot.Verify(dec, c.Snapshot) —
// imports the encoder side's coverage, because Verify re-runs Snapshot
// against the decoded payload.
//
// Stateful fields exclude what the checkpoint legitimately skips:
// func-typed fields (wiring, rebuilt by scenario reconstruction), fields
// whose element type carries its own snapshot machinery (back-pointers
// and sub-components covered by delegation), fields tagged
// `psbox:"config"`, and fields under a reasoned
// //psbox:allow-snapshotstate directive (one waiver covers both
// analyzers: a field excused from the checkpoint contract has no
// completeness obligation either).
var SnapshotDrift = &Analyzer{
	Name: "snapshotdrift",
	Doc: `flag stateful fields of snapshotted structs that the
Encoder-taking methods never encode or the Decoder-taking methods never
restore; per-method coverage, with replay-twin Restore methods inheriting
the Snapshot side's coverage.`,
	Run: runSnapshotDrift,
}

// snapMethod is one Encoder- or Decoder-taking method of a type.
type snapMethod struct {
	decl *ast.FuncDecl
	enc  bool // takes *snapshot.Encoder
	dec  bool // takes *snapshot.Decoder
}

// snapRecv resolves a method declaration to its named receiver type when
// the method participates in snapshot machinery.
func snapRecv(info *types.Info, fd *ast.FuncDecl) (*types.Named, *types.Signature) {
	if fd.Recv == nil {
		return nil, nil
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, nil
	}
	return named, sig
}

// sigSnapDirections reports which snapshot halves a signature binds.
func sigSnapDirections(sig *types.Signature) (enc, dec bool) {
	for i := 0; i < sig.Params().Len(); i++ {
		p, ok := sig.Params().At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := p.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "psbox/internal/snapshot" {
			continue
		}
		switch obj.Name() {
		case "Encoder":
			enc = true
		case "Decoder":
			dec = true
		}
	}
	return enc, dec
}

// configTagged reports whether a struct field is tagged `psbox:"config"`
// — configuration replayed from the scenario, not checkpointed state.
func configTagged(tag string) bool {
	return reflect.StructTag(tag).Get("psbox") == "config"
}

// encCall renders the Encoder method call that writes one basic-typed
// value, with the narrowing-free conversion the wire format expects, or
// "" when the type has no single-call encoding.
func encCall(t types.Type, val string) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case b.Kind() == types.Uint64:
		return "U64(" + val + ")"
	case b.Info()&types.IsUnsigned != 0:
		return "U64(uint64(" + val + "))"
	case b.Kind() == types.Int64:
		return "I64(" + val + ")"
	case b.Info()&types.IsInteger != 0:
		return "I64(int64(" + val + "))"
	case b.Kind() == types.Float64:
		return "F64(" + val + ")"
	case b.Info()&types.IsFloat != 0:
		return "F64(float64(" + val + "))"
	case b.Kind() == types.Bool:
		return "Bool(" + val + ")"
	case b.Kind() == types.String:
		return "Str(" + val + ")"
	}
	return ""
}

// encodeLineFix builds the edit appending `enc.X(recv.field)` as the last
// line of an Encoder-taking method body. Requires named receiver and
// encoder parameters, a basic-typed field, and the closing brace on its
// own line.
func (p *Pass) encodeLineFix(m *ast.FuncDecl, field *types.Var) []SuggestedFix {
	if m.Recv == nil || len(m.Recv.List) == 0 || len(m.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := m.Recv.List[0].Names[0].Name
	if recv == "_" {
		return nil
	}
	encName := ""
	for _, pf := range m.Type.Params.List {
		for _, nm := range pf.Names {
			def := p.Info.Defs[nm]
			if def == nil {
				continue
			}
			ptr, ok := def.Type().(*types.Pointer)
			if !ok {
				continue
			}
			named, ok := ptr.Elem().(*types.Named)
			if ok && named.Obj().Name() == "Encoder" && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "psbox/internal/snapshot" {
				encName = nm.Name
			}
		}
	}
	if encName == "" || encName == "_" {
		return nil
	}
	call := encCall(field.Type(), recv+"."+field.Name())
	if call == "" {
		return nil
	}
	start, ind, ok := p.lineStart(m.Body.Rbrace)
	if !ok {
		return nil
	}
	if bracePos := p.Fset.Position(m.Body.Rbrace); bracePos.Column-1 != len(ind) {
		return nil // single-line body: the brace shares its line with code
	}
	line := fmt.Sprintf("%s\t%s.%s\n", ind, encName, call)
	filename := p.Fset.Position(m.Body.Rbrace).Filename
	return []SuggestedFix{{
		Message: fmt.Sprintf("encode %s in %s", field.Name(), m.Name.Name),
		Edits:   []TextEdit{{File: filename, Start: start, End: start, New: line}},
	}}
}

func runSnapshotDrift(pass *Pass) {
	// Collect every snapshot method per named struct type in this package.
	methods := make(map[*types.Named][]snapMethod)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			named, sig := snapRecv(pass.Info, fd)
			if named == nil {
				continue
			}
			enc, dec := sigSnapDirections(sig)
			if !enc && !dec {
				continue
			}
			methods[named] = append(methods[named], snapMethod{decl: fd, enc: enc, dec: dec})
		}
	}
	if len(methods) == 0 {
		return
	}

	for named, ms := range methods {
		st := named.Underlying().(*types.Struct)

		// Per-direction field coverage, plus the set of same-type methods
		// each decoding method references (for replay-twin inheritance).
		encCover := make(map[types.Object]bool)
		decCover := make(map[types.Object]bool)
		encMethods := make(map[types.Object]bool)
		for _, m := range ms {
			if m.enc {
				if obj := pass.Info.Defs[m.decl.Name]; obj != nil {
					encMethods[obj] = true
				}
			}
		}
		decDelegates := false
		for _, m := range ms {
			ast.Inspect(m.decl.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				use := pass.Info.Uses[id]
				if v, ok := use.(*types.Var); ok && v.IsField() {
					if m.enc {
						encCover[v] = true
					}
					if m.dec {
						decCover[v] = true
					}
				}
				if m.dec && use != nil && encMethods[use] {
					// The decoding method re-runs an encoding method of
					// the same type (replay-twin Verify): everything the
					// encoder side covers is read back here.
					decDelegates = true
				}
				return true
			})
		}
		if decDelegates {
			for v := range encCover {
				decCover[v] = true
			}
		}

		hasEnc, hasDec := false, false
		for _, m := range ms {
			hasEnc = hasEnc || m.enc
			hasDec = hasDec || m.dec
		}

		// The first Encoder-taking method in declaration order is where a
		// suggested fix appends a missing encode line.
		var firstEnc *ast.FuncDecl
		for _, m := range ms {
			if m.enc && (firstEnc == nil || m.decl.Pos() < firstEnc.Pos()) {
				firstEnc = m.decl
			}
		}

		// Deterministic field order; one finding names the field and the
		// missing half.
		type miss struct {
			field   *types.Var
			half    string
			encMiss bool
		}
		var misses []miss
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" || exemptField(field.Type()) || configTagged(st.Tag(i)) {
				continue
			}
			if pass.allowedFor(SnapshotState.Name, field.Pos()) {
				continue
			}
			if hasEnc && !encCover[field] {
				misses = append(misses, miss{field, "encoded by its Encoder-taking methods", true})
				continue
			}
			if hasDec && !decCover[field] {
				misses = append(misses, miss{field, "read back by its Decoder-taking methods", false})
			}
		}
		sort.Slice(misses, func(i, j int) bool { return misses[i].field.Pos() < misses[j].field.Pos() })
		for _, m := range misses {
			// An encoder-side miss of a basic-typed field has a mechanical
			// remedy: append the encode call to the first Snapshot method
			// (replay-twin Restore then re-reads it for free). Everything
			// else falls back to a reviewable waiver stub.
			var fixes []SuggestedFix
			if m.encMiss && firstEnc != nil {
				fixes = pass.encodeLineFix(firstEnc, m.field)
			}
			if fixes == nil {
				fixes = pass.directiveStubFix(m.field.Pos())
			}
			pass.Report(m.field.Pos(),
				fmt.Sprintf("field %s of snapshotted struct %s is not %s; checkpoint state has drifted from the struct",
					m.field.Name(), named.Obj().Name(), m.half),
				fixes...)
		}
	}
}
