package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestMapOrderFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.MapOrderFlow, "maporderflow/...")
}
