package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestNoConcurrency(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.NoConcurrency, "noconcurrency")
}
