package analysis

import (
	"fmt"
	"go/ast"
)

// wallClockFuncs are the package-level time functions that read or wait on
// the host's wall clock. Types and constants (time.Duration,
// time.Millisecond) stay legal: they carry no nondeterminism.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock forbids reading the host wall clock in deterministic
// packages. All simulated time must flow through the sim engine's virtual
// clock (sim.Engine.Now / After / At), or two seeded runs stop being
// byte-identical.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: `forbid time.Now, time.Since, time.Until, time.Sleep, time.After,
time.AfterFunc, time.Tick, time.NewTimer and time.NewTicker: deterministic
packages must take time from the sim engine's virtual clock.`,
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := qualifiedName(pass.Info, sel, "time")
			if !ok || !wallClockFuncs[name] {
				return true
			}
			// The only machine-safe remediation is an explicit waiver:
			// routing through the virtual clock needs an Engine in scope,
			// which no rewrite can conjure.
			pass.Report(n.Pos(),
				fmt.Sprintf("time.%s reads the host wall clock; use the sim engine's virtual clock (Engine.Now/After/At)", name),
				pass.directiveStubFix(n.Pos())...)
			return true
		})
	}
}
