package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"psbox/internal/analysis/callgraph"
)

// checkFn type-checks one package and returns the named function plus the
// info needed to run the engine.
func checkPkg(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p/a.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

func fn(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func seedParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]Labels {
	seed := make(map[types.Object]Labels)
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			seed[info.Defs[name]] = Param(i)
			i++
		}
	}
	return seed
}

func objByName(info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	var found types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				found = o
				return false
			}
		}
		return true
	})
	return found
}

func TestLocalPropagation(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(a, b int) int {
	x := a
	y := x + 1
	z := b
	_ = z
	return y
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("return depends only on a (param 0); got %+v", got)
	}
	if z := objByName(info, fd, "z"); a.Of(z) != Param(1) {
		t.Errorf("z carries b's label; got %+v", a.Of(z))
	}
}

func TestConversionAndCompositePropagate(t *testing.T) {
	f, info := checkPkg(t, `package p
type w struct{ v int64 }
func f(a int) w {
	u := int64(a)
	return w{v: u}
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("conversion + composite literal must propagate; got %+v", got)
	}
}

func TestUnknownCallConservative(t *testing.T) {
	f, info := checkPkg(t, `package p
import "strings"
func f(a string) string {
	return strings.ToUpper(a)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("unknown calls default to arg→result propagation; got %+v", got)
	}
}

func TestCallHookOverrides(t *testing.T) {
	f, info := checkPkg(t, `package p
func launder(s string) string { return s }
func f(a string) string {
	return launder(a)
}`)
	fd := fn(t, f, "f")
	// A hook that models launder as label-killing.
	hooks := Hooks{Call: func(call *ast.CallExpr, arg func(int) Labels) (Labels, bool) {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "launder" {
			return Labels{}, true
		}
		return Labels{}, false
	}}
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); !got.Empty() {
		t.Errorf("hook must override the default; got %+v", got)
	}
}

func TestSourceHook(t *testing.T) {
	f, info := checkPkg(t, `package p
func now() int64 { return 0 }
func f() int64 {
	t := now()
	u := t * 2
	return u
}`)
	fd := fn(t, f, "f")
	hooks := Hooks{Source: func(call *ast.CallExpr) Labels {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "now" {
			return Kind(0)
		}
		return Labels{}
	}}
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); got.Kinds != 1 {
		t.Errorf("source label must survive arithmetic; got %+v", got)
	}
}

func TestRangeOverLabeledCollection(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(xs []int) int {
	for _, v := range xs {
		return v
	}
	return 0
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("range element inherits the collection's labels; got %+v", got)
	}
}

func TestFieldInsensitiveStructWrite(t *testing.T) {
	f, info := checkPkg(t, `package p
type s struct{ a, b int }
func f(x int) int {
	var v s
	v.a = x
	return v.b
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("field-insensitivity: writing v.a labels all of v; got %+v", got)
	}
}

func TestFuncLitOpaque(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(a int) int {
	g := func() int { return a }
	_ = g
	return 0
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); !got.Empty() {
		t.Errorf("closure flows are out of scope; got %+v", got)
	}
}

func TestVariadicFoldsIntoLastParam(t *testing.T) {
	f, info := checkPkg(t, `package p
func sink(prefix string, vals ...int) {}
func f(a, b int) {
	sink("x", a, b)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	call := findCall(fd, "sink")
	if call == nil {
		t.Fatal("no sink call")
	}
	want := Param(0).Union(Param(1))
	if got := a.ArgLabels(call, 1); got != want {
		t.Errorf("variadic position must union a and b: got %+v want %+v", got, want)
	}
	if got := a.ArgLabels(call, 0); !got.Empty() {
		t.Errorf("the prefix argument is unlabeled: %+v", got)
	}
	if n := a.NumParams(call); n != 2 {
		t.Errorf("sink binds 2 positions, got %d", n)
	}
}

// findCall locates the first call whose callee name matches name.
func findCall(fd *ast.FuncDecl, name string) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				found = call
				return false
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

func TestMethodReceiverIsPositionZero(t *testing.T) {
	f, info := checkPkg(t, `package p
type r struct{ n int }
func (x r) m(y int) {}
func f(a r, b int) {
	a.m(b)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	call := findCall(fd, "m")
	if call == nil {
		t.Fatal("no method call")
	}
	if recv, arg1 := a.ArgLabels(call, 0), a.ArgLabels(call, 1); recv != Param(0) || arg1 != Param(1) {
		t.Errorf("receiver=%+v arg=%+v", recv, arg1)
	}
	if n := a.NumParams(call); n != 2 {
		t.Errorf("receiver + 1 param = 2 positions, got %d", n)
	}
}

func TestFixpointRecursion(t *testing.T) {
	// Summaries over a mutually recursive pair must converge: odd/even
	// both propagate their parameter to the return.
	fset := token.NewFileSet()
	src := `package p
func odd(n int) int {
	if n == 0 { return 0 }
	return even(n - 1)
}
func even(n int) int {
	if n == 0 { return n }
	return odd(n - 1)
}`
	f, err := parser.ParseFile(fset, "p/a.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	tp, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &callgraph.Package{Path: "p", Files: []*ast.File{f}, Types: tp, Info: info}
	g := callgraph.Build([]*callgraph.Package{pkg})

	type sum struct{ ret Labels }
	sums := Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) sum) sum {
		seed := make(map[types.Object]Labels)
		i := 0
		for _, field := range n.Decl.Type.Params.List {
			for _, name := range field.Names {
				seed[info.Defs[name]] = Param(i)
				i++
			}
		}
		hooks := Hooks{Call: func(call *ast.CallExpr, arg func(int) Labels) (Labels, bool) {
			callee := callgraph.StaticCallee(info, call)
			if callee == nil {
				return Labels{}, false
			}
			s := get(callee)
			var l Labels
			for j := 0; j < 64; j++ {
				if s.ret.Params&(1<<uint(j)) != 0 {
					l = l.Union(arg(j))
				}
			}
			l.Kinds |= s.ret.Kinds
			return l, true
		}}
		a := Run(info, n.Decl.Body, seed, hooks)
		return sum{ret: a.Return()}
	})
	for _, n := range g.Nodes() {
		if got := sums[n.Fn].ret; got != Param(0) {
			t.Errorf("%s: recursion fixpoint should yield param0→return, got %+v", n.Fn.Name(), got)
		}
	}
}
