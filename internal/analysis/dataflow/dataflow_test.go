package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"psbox/internal/analysis/callgraph"
)

// checkPkg type-checks one package and returns the file plus the info
// needed to run the engine.
func checkPkg(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p/a.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

func fn(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func seedParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]Labels {
	seed := make(map[types.Object]Labels)
	i := 0
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				seed[info.Defs[name]] = Param(i)
				i++
			}
		}
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			seed[info.Defs[name]] = Param(i)
			i++
		}
	}
	return seed
}

func objByName(info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	var found types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				found = o
				return false
			}
		}
		return true
	})
	return found
}

func TestLocalPropagation(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(a, b int) int {
	x := a
	y := x + 1
	z := b
	_ = z
	return y
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("return depends only on a (param 0); got %+v", got)
	}
	if z := objByName(info, fd, "z"); a.Of(z) != Param(1) {
		t.Errorf("z carries b's label; got %+v", a.Of(z))
	}
}

func TestConversionAndCompositePropagate(t *testing.T) {
	f, info := checkPkg(t, `package p
type w struct{ v int64 }
func f(a int) w {
	u := int64(a)
	return w{v: u}
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("conversion + composite literal must propagate; got %+v", got)
	}
	// And field-sensitively: the label lives at .v, not at the root.
	rv := a.ReturnValue()
	if rv[".v"] != Param(0) || !rv[""].Empty() {
		t.Errorf("composite literal places labels per-field; got %v", rv)
	}
}

func TestUnknownCallConservative(t *testing.T) {
	f, info := checkPkg(t, `package p
import "strings"
func f(a string) string {
	return strings.ToUpper(a)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("unknown calls default to arg→result propagation; got %+v", got)
	}
}

func TestCallHookOverrides(t *testing.T) {
	f, info := checkPkg(t, `package p
func launder(s string) string { return s }
func f(a string) string {
	return launder(a)
}`)
	fd := fn(t, f, "f")
	// A hook that models launder as label-killing.
	hooks := Hooks{Call: func(call *ast.CallExpr, args *CallArgs) (Value, bool) {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "launder" {
			return Value{}, true
		}
		return nil, false
	}}
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); !got.Empty() {
		t.Errorf("hook must override the default; got %+v", got)
	}
}

func TestSourceHook(t *testing.T) {
	f, info := checkPkg(t, `package p
func now() int64 { return 0 }
func f() int64 {
	t := now()
	u := t * 2
	return u
}`)
	fd := fn(t, f, "f")
	hooks := Hooks{Source: func(call *ast.CallExpr) Labels {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "now" {
			return Kind(0)
		}
		return Labels{}
	}}
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); got.Kinds != 1 {
		t.Errorf("source label must survive arithmetic; got %+v", got)
	}
}

func TestRangeOverLabeledCollection(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(xs []int) int {
	for _, v := range xs {
		return v
	}
	return 0
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("range element inherits the collection's labels; got %+v", got)
	}
}

func TestFieldSensitiveStructWrite(t *testing.T) {
	// Writing v.a must not label the sibling v.b — the PR 5 engine's
	// signature imprecision, inverted and pinned here.
	f, info := checkPkg(t, `package p
type s struct{ a, b int }
func f(x int) int {
	var v s
	v.a = x
	return v.b
}
func g(x int) int {
	var v s
	v.a = x
	return v.a
}
func h(x int) int {
	var v s
	v.a = x
	return v.a + v.b
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); !got.Empty() {
		t.Errorf("sibling field must stay unlabeled; got %+v", got)
	}
	gd := fn(t, f, "g")
	ag := Run(info, gd.Body, seedParams(info, gd), Hooks{})
	if got := ag.Return(); got != Param(0) {
		t.Errorf("the written field itself carries the label; got %+v", got)
	}
	hd := fn(t, f, "h")
	ah := Run(info, hd.Body, seedParams(info, hd), Hooks{})
	if got := ah.Return(); got != Param(0) {
		t.Errorf("mixed read carries only the written field's label; got %+v", got)
	}
}

func TestWholeObjectWriteCoversFields(t *testing.T) {
	// Labels on all of v (v = w assignment from a labeled struct value
	// with root-level labels) must be visible when reading any field.
	f, info := checkPkg(t, `package p
type s struct{ a, b int }
func f(w s) int {
	v := w
	return v.b
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("whole-object labels cover every field; got %+v", got)
	}
}

func TestNestedPathAndDepthCap(t *testing.T) {
	f, info := checkPkg(t, `package p
type inner struct{ x, y int }
type outer struct{ in inner; other int }
func f(p int) int {
	var o outer
	o.in.x = p
	return o.in.x
}
func g(p int) int {
	var o outer
	o.in.x = p
	return o.in.y
}
func h(p int) int {
	var o outer
	o.in.x = p
	return o.other
}`)
	for _, tc := range []struct {
		name string
		want Labels
	}{
		{"f", Param(0)}, // exact path read
		{"g", Labels{}}, // sibling leaf stays clean
		{"h", Labels{}}, // sibling subtree stays clean
	} {
		fd := fn(t, f, tc.name)
		a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
		if got := a.Return(); got != tc.want {
			t.Errorf("%s: got %+v want %+v", tc.name, got, tc.want)
		}
	}
}

func TestDepthCapTruncatesConservatively(t *testing.T) {
	// Four segments exceed MaxPathDepth=3: the write truncates to the
	// 3-segment prefix, so the exact read still sees it (conservative),
	// and so does a sibling below the truncation point (the precision
	// cost of bounding paths).
	f, info := checkPkg(t, `package p
type l4 struct{ v, w int }
type l3 struct{ d l4 }
type l2 struct{ c l3 }
type l1 struct{ b l2 }
func f(p int) int {
	var o l1
	o.b.c.d.v = p
	return o.b.c.d.v
}
func g(p int) int {
	var o l1
	o.b.c.d.v = p
	return o.b.c.d.w
}`)
	for _, name := range []string{"f", "g"} {
		fd := fn(t, f, name)
		a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
		if got := a.Return(); got != Param(0) {
			t.Errorf("%s: truncated write must still be observed; got %+v", name, got)
		}
	}
	// The truncated cell sits at depth 3.
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	o := objByName(info, fd, "o")
	paths := a.Paths(o)
	if len(paths) != 1 || paths[0] != ".b.c.d" {
		t.Errorf("write beyond the cap truncates to its prefix; got %v", paths)
	}
}

func TestIndexCollapsesToElementSlot(t *testing.T) {
	f, info := checkPkg(t, `package p
func f(p int) int {
	m := map[string]int{}
	m["k"] = p
	return m["other"]
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("all elements share one summary slot; got %+v", got)
	}
}

func TestPointerIsPathTransparent(t *testing.T) {
	f, info := checkPkg(t, `package p
type s struct{ a, b int }
func f(x int) int {
	var v s
	p := &v
	p.a = x
	return v.a
}
func g(x int) int {
	var v s
	p := &v
	p.a = x
	return v.b
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("write through pointer reaches the pointee's field; got %+v", got)
	}
	gd := fn(t, f, "g")
	ag := Run(info, gd.Body, seedParams(info, gd), Hooks{})
	if got := ag.Return(); !got.Empty() {
		t.Errorf("pointer write keeps field precision; got %+v", got)
	}
}

func TestClosureCaptureWritePropagates(t *testing.T) {
	// The PR 5 engine skipped FuncLit bodies entirely; a taint smuggled
	// through a captured variable was invisible. Pinned as fixed.
	f, info := checkPkg(t, `package p
func f(a int) int {
	var x int
	g := func() { x = a }
	g()
	return x
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); got != Param(0) {
		t.Errorf("write to a captured variable inside a closure must propagate; got %+v", got)
	}
}

func TestFuncLitReturnStaysInside(t *testing.T) {
	// A return statement inside a literal is the literal's return, not
	// the enclosing function's.
	f, info := checkPkg(t, `package p
func f(a int) int {
	g := func() int { return a }
	_ = g
	return 0
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	if got := a.Return(); !got.Empty() {
		t.Errorf("funclit returns must not count as outer returns; got %+v", got)
	}
}

func TestCallArgsStoreModelsSetter(t *testing.T) {
	// A hook replaying a callee's store effect (put writes its second
	// argument into the first argument's .val field) must land the label
	// in the caller's cell — the heap round-trip the old engine missed.
	f, info := checkPkg(t, `package p
type box struct{ val, other int }
func put(b *box, v int) {}
func f(x int) int {
	var b box
	put(&b, x)
	return b.val
}
func g(x int) int {
	var b box
	put(&b, x)
	return b.other
}`)
	hooks := Hooks{Call: func(call *ast.CallExpr, args *CallArgs) (Value, bool) {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "put" {
			args.Store(0, ".val", args.Labels(1))
			return Value{}, true
		}
		return nil, false
	}}
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); got != Param(0) {
		t.Errorf("store effect must reach the argument's field; got %+v", got)
	}
	gd := fn(t, f, "g")
	ag := Run(info, gd.Body, seedParams(info, gd), hooks)
	if got := ag.Return(); !got.Empty() {
		t.Errorf("store effect must not leak to sibling fields; got %+v", got)
	}
}

func TestArgLabelsAreFieldPrecise(t *testing.T) {
	// Passing s.clean to a sink carries only s.clean's labels, not the
	// labels of its tainted sibling.
	f, info := checkPkg(t, `package p
type s struct{ dirty, clean int }
func sink(v int) {}
func f(x int) {
	var v s
	v.dirty = x
	sink(v.clean)
	sink(v.dirty)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	var calls []*ast.CallExpr
	ast.Inspect(fd, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "sink" {
				calls = append(calls, c)
			}
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("want 2 sink calls, got %d", len(calls))
	}
	if got := a.ArgLabels(calls[0], 0); !got.Empty() {
		t.Errorf("sink(v.clean) must be unlabeled; got %+v", got)
	}
	if got := a.ArgLabels(calls[1], 0); got != Param(0) {
		t.Errorf("sink(v.dirty) must carry the taint; got %+v", got)
	}
}

func TestVariadicFoldsIntoLastParam(t *testing.T) {
	f, info := checkPkg(t, `package p
func sink(prefix string, vals ...int) {}
func f(a, b int) {
	sink("x", a, b)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	call := findCall(fd, "sink")
	if call == nil {
		t.Fatal("no sink call")
	}
	want := Param(0).Union(Param(1))
	if got := a.ArgLabels(call, 1); got != want {
		t.Errorf("variadic position must union a and b: got %+v want %+v", got, want)
	}
	if got := a.ArgLabels(call, 0); !got.Empty() {
		t.Errorf("the prefix argument is unlabeled: %+v", got)
	}
	if n := a.NumParams(call); n != 2 {
		t.Errorf("sink binds 2 positions, got %d", n)
	}
}

// findCall locates the first call whose callee name matches name.
func findCall(fd *ast.FuncDecl, name string) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				found = call
				return false
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

func TestMethodReceiverIsPositionZero(t *testing.T) {
	f, info := checkPkg(t, `package p
type r struct{ n int }
func (x r) m(y int) {}
func f(a r, b int) {
	a.m(b)
}`)
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	call := findCall(fd, "m")
	if call == nil {
		t.Fatal("no method call")
	}
	if recv, arg1 := a.ArgLabels(call, 0), a.ArgLabels(call, 1); recv != Param(0) || arg1 != Param(1) {
		t.Errorf("receiver=%+v arg=%+v", recv, arg1)
	}
	if n := a.NumParams(call); n != 2 {
		t.Errorf("receiver + 1 param = 2 positions, got %d", n)
	}
}

func TestSummarizeRecordsStores(t *testing.T) {
	// put stores its value parameter into the receiver's .val field: the
	// summary must carry a Stores entry for param 0 at ".val" labeled
	// Param(1), and no self-bit store at the receiver root.
	f, info := checkPkg(t, `package p
type box struct{ val, other int }
func (b *box) put(v int) {
	b.val = v
}`)
	fd := fn(t, f, "put")
	a := Run(info, fd.Body, seedParams(info, fd), Hooks{})
	recv := info.Defs[fd.Recv.List[0].Names[0]]
	v := objByName(info, fd, "v")
	_ = v
	sum := a.Summarize([]types.Object{recv, objOfParam(info, fd, 0)}, func(i int) bool { return i == 0 })
	if got := sum.Stores[StoreKey{Param: 0, Path: ".val"}]; got != Param(1) {
		t.Errorf("store summary must record param1 → recv.val; got %+v (stores %v)", got, sum.Stores)
	}
	if _, ok := sum.Stores[StoreKey{Param: 0, Path: ""}]; ok {
		t.Errorf("the seed self-bit must not appear as a store effect: %v", sum.Stores)
	}
	if len(sum.Ret) != 0 {
		t.Errorf("put returns nothing; got %v", sum.Ret)
	}
}

// objOfParam returns the i-th declared (non-receiver) parameter object.
func objOfParam(info *types.Info, fd *ast.FuncDecl, i int) types.Object {
	n := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if n == i {
				return info.Defs[name]
			}
			n++
		}
	}
	return nil
}

func TestSummaryApplyRoundTrip(t *testing.T) {
	// Apply replays a setter summary at a call site: the caller's local
	// gains the taint at exactly the stored path.
	f, info := checkPkg(t, `package p
type box struct{ val, other int }
func put(b *box, v int) {}
func get(b *box) int { return 0 }
func f(x int) int {
	var b box
	put(&b, x)
	return get(&b)
}`)
	putSum := Summary{Stores: map[StoreKey]Labels{{Param: 0, Path: ".val"}: Param(1)}}
	getSum := Summary{Ret: map[string]Labels{"": Param(0)}}
	hooks := Hooks{Call: func(call *ast.CallExpr, args *CallArgs) (Value, bool) {
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return nil, false
		}
		switch id.Name {
		case "put":
			return putSum.Apply(args), true
		case "get":
			return getSum.Apply(args), true
		}
		return nil, false
	}}
	fd := fn(t, f, "f")
	a := Run(info, fd.Body, seedParams(info, fd), hooks)
	if got := a.Return(); got != Param(0) {
		t.Errorf("taint must survive the heap round-trip via summaries; got %+v", got)
	}
}

func TestSummaryEqual(t *testing.T) {
	a := Summary{Ret: map[string]Labels{".v": Param(0)}}
	b := Summary{Ret: map[string]Labels{".v": Param(0)}}
	c := Summary{Ret: map[string]Labels{".v": Param(1)}}
	d := Summary{Ret: map[string]Labels{".v": Param(0)}, Stores: map[StoreKey]Labels{{Param: 0, Path: ".x"}: Kind(1)}}
	if !a.Equal(b) {
		t.Error("identical summaries must compare equal")
	}
	if a.Equal(c) || a.Equal(d) || d.Equal(a) {
		t.Error("differing summaries must compare unequal")
	}
	if !(Summary{}).Equal(Summary{}) {
		t.Error("zero summaries are equal")
	}
}

func TestValueSelectAndPrefix(t *testing.T) {
	v := Value{"": Kind(0), ".a": Param(0), ".a.b": Param(1), ".c": Param(2)}
	got := v.Select(".a")
	if got[""] != Kind(0).Union(Param(0)) {
		t.Errorf("Select root: whole-object + exact-path labels; got %v", got)
	}
	if got[".b"] != Param(1) {
		t.Errorf("Select must rebase subpaths; got %v", got)
	}
	if _, ok := got[".c"]; ok {
		t.Errorf("sibling paths must be dropped; got %v", got)
	}
	p := Value{"": Param(0), ".x": Param(1)}.Prefixed(".f")
	if p[".f"] != Param(0) || p[".f.x"] != Param(1) {
		t.Errorf("Prefixed must rebase under the segment; got %v", p)
	}
	deep := Value{".a.b.c": Param(0)}.Prefixed(".f")
	if deep[".f.a.b"] != Param(0) {
		t.Errorf("Prefixed beyond the cap truncates; got %v", deep)
	}
}

func TestTruncPath(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{".a", ".a"},
		{".a.b.c", ".a.b.c"},
		{".a.b.c.d", ".a.b.c"},
		{".a.[].c.d.e", ".a.[].c"},
	} {
		if got := truncPath(tc.in); got != tc.want {
			t.Errorf("truncPath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if strings.Count(truncPath(".a.b.c.d"), ".") != MaxPathDepth {
		t.Error("cap must hold exactly MaxPathDepth segments")
	}
}

func TestFixpointRecursion(t *testing.T) {
	// Summaries over a mutually recursive pair must converge: odd/even
	// both propagate their parameter to the return.
	fset := token.NewFileSet()
	src := `package p
func odd(n int) int {
	if n == 0 { return 0 }
	return even(n - 1)
}
func even(n int) int {
	if n == 0 { return n }
	return odd(n - 1)
}`
	f, err := parser.ParseFile(fset, "p/a.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	tp, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &callgraph.Package{Path: "p", Files: []*ast.File{f}, Types: tp, Info: info}
	g := callgraph.Build([]*callgraph.Package{pkg})

	sums := Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) Summary) Summary {
		seed := make(map[types.Object]Labels)
		var params []types.Object
		i := 0
		for _, field := range n.Decl.Type.Params.List {
			for _, name := range field.Names {
				seed[info.Defs[name]] = Param(i)
				params = append(params, info.Defs[name])
				i++
			}
		}
		hooks := Hooks{Call: func(call *ast.CallExpr, args *CallArgs) (Value, bool) {
			callee := callgraph.StaticCallee(info, call)
			if callee == nil {
				return nil, false
			}
			return get(callee).Apply(args), true
		}}
		a := Run(info, n.Decl.Body, seed, hooks)
		return a.Summarize(params, func(int) bool { return false })
	}, Summary.Equal)
	for _, n := range g.Nodes() {
		if got := flattenRet(sums[n.Fn]); got != Param(0) {
			t.Errorf("%s: recursion fixpoint should yield param0→return, got %+v", n.Fn.Name(), got)
		}
	}
}

func flattenRet(s Summary) Labels {
	var l Labels
	for _, m := range s.Ret {
		l = l.Union(m)
	}
	return l
}
