// Package dataflow provides the value-flow machinery shared by the
// interprocedural analyzers: an access-path taint engine that runs over
// one function at a time, and a bottom-up summary fixpoint that runs a
// per-function transfer over the call graph in callee-before-caller order.
//
// The engine is flow-insensitive within a function (a cell's label set is
// the union over all its assignments) but *field-sensitive*: labels live
// in cells keyed by (root object, access path), where a path is a bounded
// chain of field selections with map/slice/array elements collapsed into
// one summary slot. Writing wall-clock taint into x.a therefore no longer
// labels x.b, and a taint stored into one field of a heap object survives
// the round-trip through a setter/getter pair with per-field precision at
// the boundaries of the analyzed program. Function literals are traversed,
// so flows through captured closure variables are tracked; pointers are
// path-transparent (a value and a pointer to it share cells), which
// over-approximates aliasing in the usual sound direction.
//
// Remaining deliberate over-approximations: at call boundaries a
// parameter's labels map through summaries at whole-argument granularity
// (per-field precision is kept for return paths and for heap store
// effects, not for which sub-path of an argument flowed); paths deeper
// than MaxPathDepth truncate to their prefix; and calls through function
// values stay unresolved and fall back to "result inherits every argument
// label". The analyzers built on top police contracts where a false
// positive is a reviewable directive and a false negative is a silent
// nondeterminism bug, so every approximation rounds toward reporting.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"psbox/internal/analysis/callgraph"
)

// Labels is an element of the taint lattice: two bitsets whose meaning
// each analyzer chooses. walltaint uses Kinds for wall-clock/env/pid/%p
// sources and Params for "flows from parameter i"; maporderflow uses Kinds
// bit 0 for "derived from the loop" and Params for accumulator identity.
type Labels struct {
	Kinds  uint64
	Params uint64
}

// Union returns the least upper bound of two label sets.
func (l Labels) Union(m Labels) Labels {
	return Labels{Kinds: l.Kinds | m.Kinds, Params: l.Params | m.Params}
}

// Empty reports whether no label is set.
func (l Labels) Empty() bool { return l.Kinds == 0 && l.Params == 0 }

// Param returns the label set carrying just parameter bit i (capped at 64
// parameters; beyond that flows are dropped, never invented).
func Param(i int) Labels {
	if i < 0 || i >= 64 {
		return Labels{}
	}
	return Labels{Params: 1 << uint(i)}
}

// Kind returns the label set carrying just source-kind bit i.
func Kind(i int) Labels {
	if i < 0 || i >= 64 {
		return Labels{}
	}
	return Labels{Kinds: 1 << uint(i)}
}

// MaxPathDepth bounds access-path length in segments. A write deeper than
// the cap truncates to its MaxPathDepth-segment prefix, which a read at
// any depth below that prefix still observes (prefix cells cover their
// whole subtree), so truncation loses precision, never flows.
const MaxPathDepth = 3

// ElemSeg is the path segment summarizing every element of a map, slice,
// array, or channel. All elements share one cell: index expressions are
// not distinguished.
const ElemSeg = ".[]"

// A Value is the per-path label map of one expression or cell tree. The
// empty path "" labels the whole value; ".f" labels field f; ".f.[]"
// labels the elements of the collection in field f. Values are built
// fresh by every operation — never alias one into engine state.
type Value map[string]Labels

// join adds labels at path, truncating to MaxPathDepth.
func (v Value) join(path string, l Labels) {
	if l.Empty() {
		return
	}
	v[truncPath(path)] = v[truncPath(path)].Union(l)
}

// Flatten unions every path's labels: the labels of "any part of" the
// value.
func (v Value) Flatten() Labels {
	var l Labels
	for _, m := range v {
		l = l.Union(m)
	}
	return l
}

// Select projects the value through one path segment: reading x.f from
// x's value keeps the ".f" subtree (rebased) plus the whole-value labels
// at "" (a label on all of x covers every field).
func (v Value) Select(seg string) Value {
	out := make(Value, len(v))
	for p, l := range v {
		switch {
		case p == "":
			out.join("", l)
		case p == seg:
			out.join("", l)
		default:
			if rest, ok := strings.CutPrefix(p, seg); ok && strings.HasPrefix(rest, ".") {
				out.join(rest, l)
			}
		}
	}
	return out
}

// Prefixed rebases every path under seg: the value of an expression being
// written into field f lands in the ".f" subtree.
func (v Value) Prefixed(seg string) Value {
	out := make(Value, len(v))
	for p, l := range v {
		out.join(seg+p, l)
	}
	return out
}

// truncPath caps a path at MaxPathDepth segments. Every segment starts
// with '.', and field names cannot contain '.', so segment count is the
// dot count.
func truncPath(path string) string {
	depth := 0
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		depth++
		if depth > MaxPathDepth {
			return path[:i]
		}
	}
	return path
}

// fieldSeg renders a field-selection path segment.
func fieldSeg(name string) string { return "." + name }

// CallArgs is the engine's view of one call site, handed to the Call
// hook: per-position argument labels (receiver first for methods,
// variadic arguments folded into the last position) and a Store effect
// for callee summaries that write through pointer-like parameters.
type CallArgs struct {
	a     *Analysis
	exprs [][]ast.Expr
}

// NumParams reports how many parameter positions the call binds (receiver
// included for methods).
func (c *CallArgs) NumParams() int { return len(c.exprs) }

// Labels returns the flattened labels of the value bound to position i.
func (c *CallArgs) Labels(i int) Labels { return c.Value(i).Flatten() }

// Value returns the per-path labels of the value bound to position i.
func (c *CallArgs) Value(i int) Value {
	out := Value{}
	if i < 0 || i >= len(c.exprs) {
		return out
	}
	for _, e := range c.exprs[i] {
		for p, l := range c.a.ExprValue(e) {
			out.join(p, l)
		}
	}
	return out
}

// Store joins labels into path under the cell the position-i argument
// roots in — the caller-side effect of a callee that writes through a
// pointer-like parameter. Arguments with no addressable root (call
// results, literals) drop the store.
func (c *CallArgs) Store(i int, path string, l Labels) {
	if l.Empty() || i < 0 || i >= len(c.exprs) {
		return
	}
	for _, e := range c.exprs[i] {
		for _, ref := range c.a.lvals(e) {
			c.a.joinCell(ref.obj, ref.path+path, l)
		}
	}
}

// Hooks parameterizes the engine with analyzer-specific transfer
// functions.
type Hooks struct {
	// Source returns the labels a call expression introduces out of thin
	// air (time.Now, os.Getenv, ...). May be nil.
	Source func(call *ast.CallExpr) Labels
	// Call maps argument labels through a call, typically by applying a
	// callee summary via Summary.Apply. Returning handled=false applies
	// the conservative default: the union of the receiver's and every
	// argument's labels flows, flattened, to the result.
	Call func(call *ast.CallExpr, args *CallArgs) (ret Value, handled bool)
}

// A cellRef addresses one cell subtree: the path under an object's tree.
type cellRef struct {
	obj  types.Object
	path string
}

// Analysis holds the per-function fixpoint result.
type Analysis struct {
	info    *types.Info
	hooks   Hooks
	cells   map[types.Object]Value
	aliases map[types.Object][]cellRef
	ret     Value
	body    *ast.BlockStmt
	changed bool
}

// Run computes label cells for every local object of fn's body, starting
// from the seed map (typically parameters and analyzer-chosen roots,
// seeded at the whole-object path). The seed map is not mutated. Function
// literal bodies are traversed, so writes to captured variables
// propagate; returns inside literals do not count toward the outer
// function's return labels.
func Run(info *types.Info, body *ast.BlockStmt, seed map[types.Object]Labels, hooks Hooks) *Analysis {
	a := &Analysis{
		info:    info,
		hooks:   hooks,
		cells:   make(map[types.Object]Value, len(seed)),
		aliases: make(map[types.Object][]cellRef),
		body:    body,
	}
	for o, l := range seed {
		a.joinCell(o, "", l)
	}
	if body == nil {
		return a
	}
	for {
		a.changed = false
		a.propagate()
		if !a.changed {
			break
		}
	}
	// Return labels: every return expression outside function literals,
	// per-path.
	a.ret = Value{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				for p, l := range a.ExprValue(e) {
					a.ret.join(p, l)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return a
}

// Return reports the flattened labels reaching the function's return
// values.
func (a *Analysis) Return() Labels { return a.ret.Flatten() }

// ReturnValue reports the per-path labels reaching the function's return
// values.
func (a *Analysis) ReturnValue() Value {
	out := Value{}
	for p, l := range a.ret {
		out.join(p, l)
	}
	return out
}

// Of reports the flattened labels of one object across all its paths.
func (a *Analysis) Of(o types.Object) Labels {
	var l Labels
	for _, m := range a.cells[o] {
		l = l.Union(m)
	}
	return l
}

// OfPath reports the labels observable at one access path of an object:
// the path's own cell, every prefix cell (a label on the whole object
// covers each field), and every extension cell (a label anywhere inside
// x.f is visible when reading all of x.f).
func (a *Analysis) OfPath(o types.Object, path string) Labels {
	var l Labels
	for p, m := range a.cells[o] {
		if covers(p, path) || covers(path, p) {
			l = l.Union(m)
		}
	}
	return l
}

// covers reports whether a cell at path p speaks for a read at path q:
// p == q or p is a proper segment-prefix of q.
func covers(p, q string) bool {
	if p == q {
		return true
	}
	rest, ok := strings.CutPrefix(q, p)
	return ok && strings.HasPrefix(rest, ".")
}

// joinCell adds labels into one cell, flagging the pass dirty on growth.
func (a *Analysis) joinCell(o types.Object, path string, l Labels) {
	if o == nil || l.Empty() {
		return
	}
	path = truncPath(path)
	v := a.cells[o]
	if v == nil {
		v = Value{}
		a.cells[o] = v
	}
	old := v[path]
	nw := old.Union(l)
	if nw != old {
		v[path] = nw
		a.changed = true
	}
}

// propagate performs one monotone pass over the body (function literals
// included).
func (a *Analysis) propagate() {
	ast.Inspect(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			a.assign(n)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					} else {
						continue
					}
					a.write(a.defOrUse(name), "", a.ExprValue(rhs))
				}
			}
		case *ast.RangeStmt:
			// Ranging over a labeled collection labels the elements: the
			// value variable sees the element subtree, the key the
			// flattened collection (keys are not tracked separately).
			v := a.ExprValue(n.X)
			if k := rootObj(a.info, n.Key); k != nil {
				a.joinCell(k, "", v.Flatten())
			}
			if val := rootObj(a.info, n.Value); val != nil {
				a.write(val, "", v.Select(ElemSeg))
			}
		case *ast.TypeSwitchStmt:
			var x ast.Expr
			switch as := n.Assign.(type) {
			case *ast.AssignStmt:
				if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			case *ast.ExprStmt:
				if ta, ok := ast.Unparen(as.X).(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			}
			if x != nil {
				v := a.ExprValue(x)
				for _, cl := range n.Body.List {
					a.write(a.info.Implicits[cl], "", v)
				}
			}
		case *ast.ExprStmt:
			// Evaluate bare calls so their hook store effects (a setter
			// writing taint into a receiver field) land even though no
			// assignment consumes the result.
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				a.ExprValue(call)
			}
		case *ast.DeferStmt:
			a.ExprValue(n.Call)
		case *ast.GoStmt:
			a.ExprValue(n.Call)
		}
		return true
	})
}

// write joins a whole Value under an object's path.
func (a *Analysis) write(o types.Object, base string, v Value) {
	if o == nil {
		return
	}
	for p, l := range v {
		a.joinCell(o, base+p, l)
	}
}

func (a *Analysis) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		// Op-assign (+=, -=, ...): scalar result; the flattened RHS joins
		// the LHS cell. The accumulator keeps its old labels
		// (flow-insensitive, no kill).
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			for _, ref := range a.lvals(as.Lhs[0]) {
				a.joinCell(ref.obj, ref.path, a.ExprValue(as.Rhs[0]).Flatten())
			}
		}
		return
	}
	// Multi-value call on the right: every left-hand side receives the
	// call's full value (per-position tuple structure is not tracked).
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		v := a.ExprValue(as.Rhs[0])
		for _, lhs := range as.Lhs {
			for _, ref := range a.lvals(lhs) {
				a.write(ref.obj, ref.path, v)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		a.recordAlias(lhs, as.Rhs[i])
		for _, ref := range a.lvals(lhs) {
			a.write(ref.obj, ref.path, a.ExprValue(as.Rhs[i]))
		}
	}
}

// recordAlias makes a plain `p := &v` (or a copy of such a pointer,
// `q := p`) resolve writes through p onto v's cells — the
// path-transparency that lets a taint stored through a pointer surface
// when the pointee is read directly. Reassigning a pointer accumulates
// targets (join, no kill), rounding toward reporting.
func (a *Analysis) recordAlias(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	o := a.defOrUse(id)
	if o == nil {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			for _, ref := range a.lvals(r.X) {
				a.addAlias(o, ref)
			}
		}
	case *ast.Ident:
		ro := a.defOrUse(r)
		for _, ref := range a.aliases[ro] {
			a.addAlias(o, ref)
		}
	}
}

func (a *Analysis) addAlias(o types.Object, ref cellRef) {
	if ref.obj == o || ref.obj == nil {
		return
	}
	for _, ex := range a.aliases[o] {
		if ex == ref {
			return
		}
	}
	a.aliases[o] = append(a.aliases[o], ref)
	a.changed = true
}

func (a *Analysis) defOrUse(id *ast.Ident) types.Object {
	if o := a.info.Defs[id]; o != nil {
		return o
	}
	return a.info.Uses[id]
}

// lvals resolves an assignable expression to the cell subtrees it
// addresses: x → {(x, "")} (or its alias targets when x is a tracked
// pointer), x.f → base + ".f", x[i] → base + ".[]"; *x, &x, and (x) are
// transparent. Package-qualified selectors (globals) and expressions with
// no addressable root resolve to nothing.
func (a *Analysis) lvals(e ast.Expr) []cellRef {
	switch x := e.(type) {
	case *ast.Ident:
		o := a.defOrUse(x)
		if o == nil {
			return nil
		}
		if _, isPkg := o.(*types.PkgName); isPkg {
			return nil
		}
		if refs := a.aliases[o]; len(refs) > 0 {
			return refs
		}
		return []cellRef{{obj: o}}
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
				return nil
			}
		}
		return extendRefs(a.lvals(x.X), fieldSeg(x.Sel.Name))
	case *ast.IndexExpr:
		return extendRefs(a.lvals(x.X), ElemSeg)
	case *ast.ParenExpr:
		return a.lvals(x.X)
	case *ast.StarExpr:
		return a.lvals(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return a.lvals(x.X)
		}
	}
	return nil
}

func extendRefs(refs []cellRef, seg string) []cellRef {
	if len(refs) == 0 {
		return nil
	}
	out := make([]cellRef, len(refs))
	for i, r := range refs {
		out[i] = cellRef{obj: r.obj, path: r.path + seg}
	}
	return out
}

// valueAt reads the Value visible at one cell subtree: the subtree's own
// cells rebased to the root, plus any prefix cell covering it.
func (a *Analysis) valueAt(ref cellRef) Value {
	out := Value{}
	for p, l := range a.cells[ref.obj] {
		switch {
		case p == ref.path:
			out.join("", l)
		case covers(ref.path, p):
			out.join(p[len(ref.path):], l)
		case covers(p, ref.path):
			out.join("", l)
		}
	}
	return out
}

// rootObj resolves an assignable expression to the object whose storage it
// roots in, ignoring the path.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := info.Defs[x]; o != nil {
				return o
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Expr evaluates the flattened labels of an expression under the current
// cell state.
func (a *Analysis) Expr(e ast.Expr) Labels { return a.ExprValue(e).Flatten() }

// ExprValue evaluates the per-path labels of an expression under the
// current cell state.
func (a *Analysis) ExprValue(e ast.Expr) Value {
	switch e := e.(type) {
	case nil:
		return Value{}
	case *ast.Ident:
		out := Value{}
		o := a.defOrUse(e)
		if o == nil {
			return out
		}
		for p, l := range a.cells[o] {
			out.join(p, l)
		}
		// A tracked pointer also reads its targets' cells: after
		// p := &v, p.f sees what v.f holds.
		for _, ref := range a.aliases[o] {
			for p, l := range a.valueAt(ref) {
				out.join(p, l)
			}
		}
		return out
	case *ast.BasicLit, *ast.FuncLit:
		return Value{}
	case *ast.ParenExpr:
		return a.ExprValue(e.X)
	case *ast.StarExpr:
		return a.ExprValue(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.ExprValue(e.X) // &x shares x's cells (path-transparent)
		}
		return flat(a.ExprValue(e.X))
	case *ast.BinaryExpr:
		out := flat(a.ExprValue(e.X))
		out.join("", a.ExprValue(e.Y).Flatten())
		return out
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
				return Value{} // pkg.Name: a global, unlabeled by default
			}
		}
		return a.ExprValue(e.X).Select(fieldSeg(e.Sel.Name))
	case *ast.IndexExpr:
		return a.ExprValue(e.X).Select(ElemSeg)
	case *ast.IndexListExpr:
		return a.ExprValue(e.X)
	case *ast.SliceExpr:
		return a.ExprValue(e.X) // slicing preserves element structure
	case *ast.TypeAssertExpr:
		return a.ExprValue(e.X)
	case *ast.CompositeLit:
		return a.composite(e)
	case *ast.CallExpr:
		return a.call(e)
	default:
		return Value{}
	}
}

// flat collapses a value to its flattened labels at the root path.
func flat(v Value) Value {
	out := Value{}
	out.join("", v.Flatten())
	return out
}

// composite evaluates a composite literal per-field: S{a: x} places x's
// labels in the ".a" subtree, slice/map literals place element labels in
// ".[]", and unkeyed struct literals resolve positions through the type.
func (a *Analysis) composite(e *ast.CompositeLit) Value {
	out := Value{}
	var st *types.Struct
	if tv, ok := a.info.Types[e]; ok && tv.Type != nil {
		st, _ = tv.Type.Underlying().(*types.Struct)
	}
	for i, el := range e.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if st != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for p, l := range a.ExprValue(kv.Value).Prefixed(fieldSeg(id.Name)) {
						out.join(p, l)
					}
					continue
				}
			}
			// Map literal (or unresolvable key): key labels flatten into
			// the element slot alongside the value's subtree.
			out.join(ElemSeg, a.ExprValue(kv.Key).Flatten())
			for p, l := range a.ExprValue(kv.Value).Prefixed(ElemSeg) {
				out.join(p, l)
			}
			continue
		}
		seg := ElemSeg
		if st != nil && i < st.NumFields() {
			seg = fieldSeg(st.Field(i).Name())
		}
		for p, l := range a.ExprValue(el).Prefixed(seg) {
			out.join(p, l)
		}
	}
	return out
}

func (a *Analysis) call(call *ast.CallExpr) Value {
	// A conversion T(x) passes x's value through unchanged, field
	// structure included.
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.ExprValue(call.Args[0])
		}
		return Value{}
	}
	out := Value{}
	if a.hooks.Source != nil {
		out.join("", a.hooks.Source(call))
	}
	if a.hooks.Call != nil {
		args := &CallArgs{a: a, exprs: a.paramExprs(call)}
		if ret, handled := a.hooks.Call(call, args); handled {
			for p, l := range ret {
				out.join(p, l)
			}
			return out
		}
	}
	// Conservative default: everything flowing in may flow out,
	// flattened. This is what makes laundering a wall-clock value through
	// fmt.Sprintf or strings.TrimSpace still count as tainted.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out.join("", a.ExprValue(sel.X).Flatten())
	}
	for _, arg := range call.Args {
		out.join("", a.ExprValue(arg).Flatten())
	}
	return out
}

// ArgLabels returns the flattened labels of the value bound to callee
// parameter position i: position 0 is the method receiver when the call's
// callee is a method, and every variadic argument folds into the final
// position. Field selections in argument expressions resolve precisely:
// passing s.clean carries only s.clean's cells, not its siblings'.
func (a *Analysis) ArgLabels(call *ast.CallExpr, i int) Labels {
	args := &CallArgs{a: a, exprs: a.paramExprs(call)}
	return args.Labels(i)
}

// NumParams reports how many parameter positions the call binds (receiver
// included for methods).
func (a *Analysis) NumParams(call *ast.CallExpr) int { return len(a.paramExprs(call)) }

// paramExprs groups a call's receiver and argument expressions by callee
// parameter position.
func (a *Analysis) paramExprs(call *ast.CallExpr) [][]ast.Expr {
	var out [][]ast.Expr
	sig := calleeSignature(a.info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := a.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, []ast.Expr{sel.X})
		}
	}
	if sig == nil {
		for _, arg := range call.Args {
			out = append(out, []ast.Expr{arg})
		}
		return out
	}
	np := sig.Params().Len()
	recv := len(out) // 1 when a receiver entry is present
	for i, arg := range call.Args {
		slot := i
		if sig.Variadic() && slot >= np-1 {
			slot = np - 1
		}
		slot += recv
		if slot < len(out) {
			out[slot] = append(out[slot], arg)
		} else {
			out = append(out, []ast.Expr{arg})
		}
	}
	return out
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// A StoreKey addresses one heap store effect of a function: labels
// written into the Path subtree of the parameter at position Param.
type StoreKey struct {
	Param int
	Path  string
}

// A Summary is one function's bottom-up interprocedural fact set: which
// labels reach each access path of its return values, and which labels it
// stores through pointer-like parameters (the heap effects a caller must
// replay on its own cells). Params bits inside the labels refer to the
// function's own parameter positions and are resolved to argument labels
// at each call site by Apply.
type Summary struct {
	Ret    map[string]Labels
	Stores map[StoreKey]Labels
}

// Equal reports whether two summaries carry identical facts.
func (s Summary) Equal(o Summary) bool {
	if len(s.Ret) != len(o.Ret) || len(s.Stores) != len(o.Stores) {
		return false
	}
	for p, l := range s.Ret {
		if o.Ret[p] != l {
			return false
		}
	}
	for k, l := range s.Stores {
		if o.Stores[k] != l {
			return false
		}
	}
	return true
}

// Apply maps a summary through one call site: store effects replay onto
// the caller's argument cells, and the returned Value carries the
// summary's per-path return labels with parameter bits resolved to the
// matching arguments' labels.
func (s Summary) Apply(args *CallArgs) Value {
	for k, l := range s.Stores {
		args.Store(k.Param, k.Path, resolveParams(l, args))
	}
	out := Value{}
	for p, l := range s.Ret {
		out.join(p, resolveParams(l, args))
	}
	return out
}

// resolveParams substitutes each parameter bit with the flattened labels
// of the matching argument position; kind bits pass through.
func resolveParams(l Labels, args *CallArgs) Labels {
	out := Labels{Kinds: l.Kinds}
	for i := 0; i < 64 && i < args.NumParams(); i++ {
		if l.Params&(1<<uint(i)) != 0 {
			out = out.Union(args.Labels(i))
		}
	}
	return out
}

// Summarize extracts a function's Summary from its completed analysis.
// params lists the function's parameter objects by position (receiver
// first); storable reports whether writes through position i escape to
// the caller (pointer-like types: pointer receiver/parameter, map, slice,
// channel, interface).
func (a *Analysis) Summarize(params []types.Object, storable func(i int) bool) Summary {
	sum := Summary{Ret: map[string]Labels{}, Stores: map[StoreKey]Labels{}}
	for p, l := range a.ret {
		if !l.Empty() {
			sum.Ret[p] = l
		}
	}
	for i, o := range params {
		if o == nil || !storable(i) {
			continue
		}
		for p, l := range a.cells[o] {
			if p == "" {
				// Drop the seed's own identity bit: a parameter trivially
				// "contains" itself, which is not a store effect.
				l.Params &^= Param(i).Params
			}
			if !l.Empty() {
				sum.Stores[StoreKey{Param: i, Path: p}] = l
			}
		}
	}
	if len(sum.Ret) == 0 {
		sum.Ret = nil
	}
	if len(sum.Stores) == 0 {
		sum.Stores = nil
	}
	return sum
}

// Paths lists an object's populated cell paths in sorted order (testing
// and diagnostics).
func (a *Analysis) Paths(o types.Object) []string {
	var out []string
	for p, l := range a.cells[o] {
		if !l.Empty() {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Fixpoint computes one summary per function by running transfer over the
// call graph bottom-up, iterating each strongly connected component until
// its summaries stabilize under equal. get returns the current summary of
// a callee (the zero S before its first computation), so recursive and
// mutually recursive groups converge from below.
func Fixpoint[S any](g *callgraph.Graph, transfer func(n *callgraph.Node, get func(*types.Func) S) S, equal func(a, b S) bool) map[*types.Func]S {
	out := make(map[*types.Func]S, len(g.Nodes()))
	get := func(fn *types.Func) S { return out[fn] }
	for _, comp := range g.SCCs() {
		// Non-recursive singleton: one pass suffices.
		recursive := len(comp) > 1
		if !recursive {
			n := comp[0]
			for _, o := range n.Out {
				if o == n {
					recursive = true
					break
				}
			}
		}
		for round := 0; ; round++ {
			changed := false
			for _, n := range comp {
				s := transfer(n, get)
				if !equal(s, out[n.Fn]) {
					out[n.Fn] = s
					changed = true
				}
			}
			if !recursive || !changed || round > 64 {
				break
			}
		}
	}
	return out
}
