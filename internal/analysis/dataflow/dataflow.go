// Package dataflow provides the value-flow machinery shared by the
// interprocedural analyzers: a small label-set taint engine that runs over
// one function at a time, and a bottom-up summary fixpoint that runs a
// per-function transfer over the call graph in callee-before-caller order.
//
// The engine is flow-insensitive within a function (a variable's label set
// is the union over all its assignments) and field-insensitive (writing a
// labeled value into a struct labels the whole struct). That
// over-approximates real flows — deliberately, since the analyzers built
// on top police contracts where a false positive is a reviewable directive
// and a false negative is a silent nondeterminism bug. Function literals
// are opaque: flows through captured closures are a documented soundness
// caveat (DESIGN.md §"Whole-program checks").
package dataflow

import (
	"go/ast"
	"go/types"

	"psbox/internal/analysis/callgraph"
)

// Labels is an element of the taint lattice: two bitsets whose meaning
// each analyzer chooses. walltaint uses Kinds for wall-clock/env/pid/%p
// sources and Params for "flows from parameter i"; maporderflow uses Kinds
// bit 0 for "derived from the loop" and Params for accumulator identity.
type Labels struct {
	Kinds  uint64
	Params uint64
}

// Union returns the least upper bound of two label sets.
func (l Labels) Union(m Labels) Labels {
	return Labels{Kinds: l.Kinds | m.Kinds, Params: l.Params | m.Params}
}

// Empty reports whether no label is set.
func (l Labels) Empty() bool { return l.Kinds == 0 && l.Params == 0 }

// Param returns the label set carrying just parameter bit i (capped at 64
// parameters; beyond that flows are dropped, never invented).
func Param(i int) Labels {
	if i < 0 || i >= 64 {
		return Labels{}
	}
	return Labels{Params: 1 << uint(i)}
}

// Kind returns the label set carrying just source-kind bit i.
func Kind(i int) Labels {
	if i < 0 || i >= 64 {
		return Labels{}
	}
	return Labels{Kinds: 1 << uint(i)}
}

// Hooks parameterizes the engine with analyzer-specific transfer
// functions.
type Hooks struct {
	// Source returns the labels a call expression introduces out of thin
	// air (time.Now, os.Getenv, ...). May be nil.
	Source func(call *ast.CallExpr) Labels
	// Call maps argument labels through a call. arg(i) yields the labels
	// of the i-th callee parameter position (receiver first for methods,
	// variadic arguments folded into the last position). Returning
	// handled=false applies the conservative default: the union of the
	// receiver's and every argument's labels flows to the result.
	Call func(call *ast.CallExpr, arg func(int) Labels) (ret Labels, handled bool)
}

// Analysis holds the per-function fixpoint result.
type Analysis struct {
	info  *types.Info
	hooks Hooks
	obj   map[types.Object]Labels
	ret   Labels
	body  *ast.BlockStmt
}

// Run computes label sets for every local object of fn's body, starting
// from the seed map (typically parameters and analyzer-chosen roots).
// The seed map is not mutated.
func Run(info *types.Info, body *ast.BlockStmt, seed map[types.Object]Labels, hooks Hooks) *Analysis {
	a := &Analysis{
		info:  info,
		hooks: hooks,
		obj:   make(map[types.Object]Labels, len(seed)),
		body:  body,
	}
	for o, l := range seed {
		a.obj[o] = a.obj[o].Union(l)
	}
	if body == nil {
		return a
	}
	for {
		if !a.propagate() {
			break
		}
	}
	// Return labels: every return expression plus named results (bare
	// returns read them).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				a.ret = a.ret.Union(a.Expr(e))
			}
		}
		return true
	})
	return a
}

// Return reports the labels reaching the function's return values.
func (a *Analysis) Return() Labels { return a.ret }

// Of reports the labels of one object.
func (a *Analysis) Of(o types.Object) Labels { return a.obj[o] }

// propagate performs one monotone pass over the body; it reports whether
// any object's label set grew.
func (a *Analysis) propagate() bool {
	changed := false
	join := func(o types.Object, l Labels) {
		if o == nil || l.Empty() {
			return
		}
		old := a.obj[o]
		nw := old.Union(l)
		if nw != old {
			a.obj[o] = nw
			changed = true
		}
	}
	ast.Inspect(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // opaque; see package comment
		case *ast.AssignStmt:
			a.assign(n, join)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						join(a.defOrUse(name), a.Expr(vs.Values[i]))
					} else if len(vs.Values) == 1 {
						join(a.defOrUse(name), a.Expr(vs.Values[0]))
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a labeled collection labels the elements.
			l := a.Expr(n.X)
			if k := rootObj(a.info, n.Key); k != nil {
				join(k, l)
			}
			if v := rootObj(a.info, n.Value); v != nil {
				join(v, l)
			}
		case *ast.TypeSwitchStmt:
			var x ast.Expr
			switch as := n.Assign.(type) {
			case *ast.AssignStmt:
				if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			case *ast.ExprStmt:
				if ta, ok := ast.Unparen(as.X).(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			}
			if x != nil {
				l := a.Expr(x)
				for _, cl := range n.Body.List {
					join(a.info.Implicits[cl], l)
				}
			}
		}
		return true
	})
	return changed
}

func (a *Analysis) assign(as *ast.AssignStmt, join func(types.Object, Labels)) {
	// Multi-value call on the right: every left-hand side receives the
	// call's labels.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		l := a.Expr(as.Rhs[0])
		for _, lhs := range as.Lhs {
			join(rootObj(a.info, lhs), l)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		join(rootObj(a.info, lhs), a.Expr(as.Rhs[i]))
	}
}

func (a *Analysis) defOrUse(id *ast.Ident) types.Object {
	if o := a.info.Defs[id]; o != nil {
		return o
	}
	return a.info.Uses[id]
}

// rootObj resolves an assignable expression to the object whose storage it
// roots in: x, x.f, x[i], *x, (x) all root in x. Writing a labeled value
// anywhere inside x labels all of x (field-insensitivity).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := info.Defs[x]; o != nil {
				return o
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			// Package-qualified selector roots in nothing local.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Expr evaluates the labels of an expression under the current object map.
func (a *Analysis) Expr(e ast.Expr) Labels {
	switch e := e.(type) {
	case nil:
		return Labels{}
	case *ast.Ident:
		if o := a.defOrUse(e); o != nil {
			return a.obj[o]
		}
		return Labels{}
	case *ast.BasicLit, *ast.FuncLit:
		return Labels{}
	case *ast.ParenExpr:
		return a.Expr(e.X)
	case *ast.StarExpr:
		return a.Expr(e.X)
	case *ast.UnaryExpr:
		return a.Expr(e.X)
	case *ast.BinaryExpr:
		return a.Expr(e.X).Union(a.Expr(e.Y))
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
				return Labels{} // pkg.Name: a global, unlabeled by default
			}
		}
		return a.Expr(e.X)
	case *ast.IndexExpr:
		return a.Expr(e.X)
	case *ast.IndexListExpr:
		return a.Expr(e.X)
	case *ast.SliceExpr:
		return a.Expr(e.X)
	case *ast.TypeAssertExpr:
		return a.Expr(e.X)
	case *ast.CompositeLit:
		var l Labels
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				l = l.Union(a.Expr(kv.Key)).Union(a.Expr(kv.Value))
			} else {
				l = l.Union(a.Expr(el))
			}
		}
		return l
	case *ast.CallExpr:
		return a.call(e)
	default:
		return Labels{}
	}
}

func (a *Analysis) call(call *ast.CallExpr) Labels {
	// A conversion T(x) passes x's labels through unchanged.
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.Expr(call.Args[0])
		}
		return Labels{}
	}
	var l Labels
	if a.hooks.Source != nil {
		l = l.Union(a.hooks.Source(call))
	}
	if a.hooks.Call != nil {
		if ret, handled := a.hooks.Call(call, func(i int) Labels { return a.ArgLabels(call, i) }); handled {
			return l.Union(ret)
		}
	}
	// Conservative default: everything flowing in may flow out. This is
	// what makes laundering a wall-clock value through fmt.Sprintf or
	// strings.TrimSpace still count as tainted.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		l = l.Union(a.Expr(sel.X))
	}
	for _, arg := range call.Args {
		l = l.Union(a.Expr(arg))
	}
	return l
}

// ArgLabels returns the labels of the value bound to callee parameter
// position i: position 0 is the method receiver when the call's callee is
// a method, and every variadic argument folds into the final position.
func (a *Analysis) ArgLabels(call *ast.CallExpr, i int) Labels {
	exprs := a.paramExprs(call)
	if i < 0 || i >= len(exprs) {
		return Labels{}
	}
	var l Labels
	for _, e := range exprs[i] {
		l = l.Union(a.Expr(e))
	}
	return l
}

// NumParams reports how many parameter positions the call binds (receiver
// included for methods).
func (a *Analysis) NumParams(call *ast.CallExpr) int { return len(a.paramExprs(call)) }

// paramExprs groups a call's receiver and argument expressions by callee
// parameter position.
func (a *Analysis) paramExprs(call *ast.CallExpr) [][]ast.Expr {
	var out [][]ast.Expr
	sig := calleeSignature(a.info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := a.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, []ast.Expr{sel.X})
		}
	}
	if sig == nil {
		for _, arg := range call.Args {
			out = append(out, []ast.Expr{arg})
		}
		return out
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		slot := i
		if sig.Variadic() && slot >= np-1 {
			slot = np - 1
		}
		slot += len(out) - i // shift past the receiver entry, if present
		if slot < len(out) {
			out[slot] = append(out[slot], arg)
		} else {
			out = append(out, []ast.Expr{arg})
		}
	}
	return out
}

func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// Fixpoint computes one summary per function by running transfer over the
// call graph bottom-up, iterating each strongly connected component until
// its summaries stabilize. get returns the current summary of a callee
// (the zero S before its first computation), so recursive and mutually
// recursive groups converge from below. equal decides stabilization.
func Fixpoint[S comparable](g *callgraph.Graph, transfer func(n *callgraph.Node, get func(*types.Func) S) S) map[*types.Func]S {
	out := make(map[*types.Func]S, len(g.Nodes()))
	get := func(fn *types.Func) S { return out[fn] }
	for _, comp := range g.SCCs() {
		// Non-recursive singleton: one pass suffices.
		recursive := len(comp) > 1
		if !recursive {
			n := comp[0]
			for _, o := range n.Out {
				if o == n {
					recursive = true
					break
				}
			}
		}
		for round := 0; ; round++ {
			changed := false
			for _, n := range comp {
				s := transfer(n, get)
				if s != out[n.Fn] {
					out[n.Fn] = s
					changed = true
				}
			}
			if !recursive || !changed || round > 64 {
				break
			}
		}
	}
	return out
}
