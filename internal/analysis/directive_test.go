package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"psbox/internal/analysis"
)

// writeFixture lays out a throwaway GOPATH-style tree and loads pkg from it.
func loadFixture(t *testing.T, pkg, src string) *analysis.Package {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, pkg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.Load(pkg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBareDirectiveIsReported(t *testing.T) {
	pkg := loadFixture(t, "p", `package p

func f() {
	//psbox:allow-noconcurrency
	go f()
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoConcurrency})
	var haveDirective, haveGo bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			haveDirective = strings.Contains(d.Message, "requires a reason")
		case "noconcurrency":
			haveGo = true
		}
	}
	if !haveDirective {
		t.Errorf("bare directive not reported: %v", diags)
	}
	if !haveGo {
		t.Errorf("bare directive must not suppress the finding it precedes: %v", diags)
	}
}

func TestDirectiveOnSameLineSuppresses(t *testing.T) {
	pkg := loadFixture(t, "p", `package p

func f() {
	go f() //psbox:allow-noconcurrency fire-and-forget host logging
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoConcurrency})
	if len(diags) != 0 {
		t.Errorf("same-line directive did not suppress: %v", diags)
	}
}

func TestDirectiveCoversWrappedStatement(t *testing.T) {
	// The finding sits on a continuation line of the statement the
	// directive heads; the directive must still cover it.
	pkg := loadFixture(t, "p", `package p

import "time"

func report(a, b time.Time) {}

func f() {
	//psbox:allow-nowallclock operator-facing banner timestamps
	report(
		time.Now(),
		time.Now())
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoWallClock})
	if len(diags) != 0 {
		t.Errorf("directive above a wrapped call must cover its continuation lines: %v", diags)
	}
}

func TestDirectiveOnFirstLineCoversWrappedStatement(t *testing.T) {
	pkg := loadFixture(t, "p", `package p

import "time"

func report(a, b time.Time) {}

func f() {
	report( //psbox:allow-nowallclock operator-facing banner timestamps
		time.Now(),
		time.Now())
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoWallClock})
	if len(diags) != 0 {
		t.Errorf("same-line directive on a wrapped call must cover its continuation lines: %v", diags)
	}
}

func TestDirectiveStopsAtControlBody(t *testing.T) {
	// A directive above a control statement speaks for its (possibly
	// wrapped) header only, never for the body.
	pkg := loadFixture(t, "p", `package p

import "time"

func cond(a, b bool) bool { return a && b }

func f(a, b bool) {
	//psbox:allow-nowallclock excuses the condition only
	if cond(a,
		b) {
		_ = time.Now()
	}
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoWallClock})
	if len(diags) != 1 {
		t.Errorf("directive above an if must stop at the opening brace, want 1 finding: %v", diags)
	}
}

func TestDirectiveDoesNotLeakAcrossAnalyzers(t *testing.T) {
	pkg := loadFixture(t, "p", `package p

import "time"

func f() {
	//psbox:allow-noconcurrency wrong analyzer name for this finding
	_ = time.Now()
}
`)
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{analysis.NoWallClock})
	if len(diags) != 1 {
		t.Errorf("directive for another analyzer must not suppress nowallclock: %v", diags)
	}
}
