package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// fakeRead serves in-memory file contents to ApplyFixes.
func fakeRead(files map[string]string) func(string) ([]byte, error) {
	return func(name string) ([]byte, error) {
		s, ok := files[name]
		if !ok {
			return nil, fmt.Errorf("no such file: %s", name)
		}
		return []byte(s), nil
	}
}

func diagWithEdits(edits ...TextEdit) Diagnostic {
	return Diagnostic{Fixes: []SuggestedFix{{Message: "fix", Edits: edits}}}
}

func TestApplyFixesBasic(t *testing.T) {
	files := map[string]string{"a.go": "hello world\n"}
	diags := []Diagnostic{diagWithEdits(TextEdit{File: "a.go", Start: 6, End: 11, New: "psbox"})}
	out, notes, err := ApplyFixes(diags, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Errorf("notes = %v", notes)
	}
	if got := string(out["a.go"]); got != "hello psbox\n" {
		t.Errorf("applied = %q", got)
	}
}

func TestApplyFixesOrdersAndMerges(t *testing.T) {
	// Edits arrive out of order and across two files; insertions and a
	// replacement interleave.
	files := map[string]string{
		"b.go": "1234567890",
		"a.go": "abcdef",
	}
	diags := []Diagnostic{
		diagWithEdits(TextEdit{File: "b.go", Start: 5, End: 5, New: "+"}),
		diagWithEdits(TextEdit{File: "a.go", Start: 4, End: 6, New: "EF"}),
		diagWithEdits(TextEdit{File: "a.go", Start: 0, End: 1, New: "A"}),
	}
	out, _, err := ApplyFixes(diags, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out["a.go"]); got != "AbcdEF" {
		t.Errorf("a.go = %q", got)
	}
	if got := string(out["b.go"]); got != "12345+67890" {
		t.Errorf("b.go = %q", got)
	}
}

func TestApplyFixesDedupesIdenticalEdits(t *testing.T) {
	// Two diagnostics proposing the same edit (the maporder rewrite when a
	// loop body holds two accumulations) must collapse to one application.
	files := map[string]string{"a.go": "x"}
	e := TextEdit{File: "a.go", Start: 0, End: 1, New: "y"}
	out, notes, err := ApplyFixes([]Diagnostic{diagWithEdits(e), diagWithEdits(e)}, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Errorf("dedupe should not produce notes: %v", notes)
	}
	if got := string(out["a.go"]); got != "y" {
		t.Errorf("applied = %q", got)
	}
}

func TestApplyFixesDropsOverlaps(t *testing.T) {
	files := map[string]string{"a.go": "abcdef"}
	diags := []Diagnostic{
		diagWithEdits(TextEdit{File: "a.go", Start: 0, End: 4, New: "W"}),
		diagWithEdits(TextEdit{File: "a.go", Start: 2, End: 6, New: "Z"}),
	}
	out, notes, err := ApplyFixes(diags, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "overlapping") {
		t.Fatalf("notes = %v, want one overlap note", notes)
	}
	if got := string(out["a.go"]); got != "Wef" {
		t.Errorf("applied = %q", got)
	}
}

func TestApplyFixesDropsCompetingInsertions(t *testing.T) {
	// Two distinct insertions at the same offset would apply in an
	// arbitrary-looking nesting; the engine keeps the first in sort order.
	files := map[string]string{"a.go": "ab"}
	diags := []Diagnostic{
		diagWithEdits(TextEdit{File: "a.go", Start: 1, End: 1, New: "X"}),
		diagWithEdits(TextEdit{File: "a.go", Start: 1, End: 1, New: "Y"}),
	}
	out, notes, err := ApplyFixes(diags, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 {
		t.Fatalf("notes = %v, want one drop note", notes)
	}
	if got := string(out["a.go"]); got != "aXb" {
		t.Errorf("applied = %q", got)
	}
}

func TestApplyFixesNoChangeOmitsFile(t *testing.T) {
	files := map[string]string{"a.go": "same"}
	diags := []Diagnostic{diagWithEdits(TextEdit{File: "a.go", Start: 0, End: 0, New: ""})}
	out, _, err := ApplyFixes(diags, fakeRead(files))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("no-op edits must not report the file as changed: %v", out)
	}
}

func TestUnifiedDiffShape(t *testing.T) {
	oldSrc := []byte("a\nb\nc\nd\ne\nf\ng\n")
	newSrc := []byte("a\nb\nc\nD\ne\nf\ng\n")
	diff := UnifiedDiff("t.go", oldSrc, newSrc)
	want := "--- t.go\n+++ t.go\n@@ -1,7 +1,7 @@\n a\n b\n c\n-d\n+D\n e\n f\n g\n"
	if diff != want {
		t.Errorf("diff = %q, want %q", diff, want)
	}
	if UnifiedDiff("t.go", oldSrc, oldSrc) != "" {
		t.Error("identical contents must diff to empty")
	}
}

func TestUnifiedDiffIsDeterministic(t *testing.T) {
	oldSrc := []byte(strings.Repeat("ctx\n", 10) + "old\n" + strings.Repeat("mid\n", 10) + "tail\n")
	newSrc := []byte(strings.Repeat("ctx\n", 10) + "new\n" + strings.Repeat("mid\n", 10) + "tail2\n")
	first := UnifiedDiff("t.go", oldSrc, newSrc)
	for i := 0; i < 5; i++ {
		if got := UnifiedDiff("t.go", oldSrc, newSrc); got != first {
			t.Fatalf("diff not byte-stable on run %d", i)
		}
	}
	if !strings.Contains(first, "-old") || !strings.Contains(first, "+new") {
		t.Errorf("diff missing changed lines:\n%s", first)
	}
}
