package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestGoroutineConfine(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.GoroutineConfine,
		"goroutineconfine/...", "psbox")
}
