package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestLockSetAtomic(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.LockSetAtomic, "locksetatomic/...")
}
