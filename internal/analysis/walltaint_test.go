package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestWallTaint(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.WallTaint, "walltaint/...", "psbox/internal/sim")
}
