package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestUnbilledEnergy(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.UnbilledEnergy, "unbilledenergy/...")
}
