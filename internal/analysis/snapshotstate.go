package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotState flags stateful fields of snapshotted structs that their
// Snapshot/Restore machinery never references. A struct is "snapshotted"
// when it has a method — any name, exported or not — taking a
// *psbox/internal/snapshot.Encoder or *Decoder parameter; from then on
// every field is part of the checkpoint contract: a field added later but
// not encoded silently drops state from the checkpoint, and the byte
// divergence only surfaces when a crash-and-resume run happens to disturb
// it. The analyzer exempts fields that cannot or need not be encoded
// directly:
//
//   - func-typed fields (closures are wiring, rebuilt by scenario
//     reconstruction), and
//   - fields whose element type itself has an Encoder/Decoder-taking
//     method (the field is covered by delegation).
//
// Everything else must either appear in a file holding the struct's
// snapshot methods, or carry a reasoned directive:
//
//	//psbox:allow-snapshotstate <reason>
var SnapshotState = &Analyzer{
	Name: "snapshotstate",
	Doc: `flag fields of snapshotted structs (structs with a method taking a
*psbox/internal/snapshot.Encoder or *Decoder) that are not referenced in
any file containing those methods; unencoded fields silently fall out of
the checkpoint contract.`,
	Run: runSnapshotState,
}

// isSnapEncDec reports whether t is *snapshot.Encoder or *snapshot.Decoder.
func isSnapEncDec(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "psbox/internal/snapshot" &&
		(obj.Name() == "Encoder" || obj.Name() == "Decoder")
}

// hasSnapParam reports whether the signature takes an Encoder or Decoder.
func hasSnapParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isSnapEncDec(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// elemType strips pointers, slices, arrays, maps, and channels down to
// the field's element type (for maps, the value type).
func elemType(t types.Type) types.Type {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Map:
			t = x.Elem()
		case *types.Chan:
			t = x.Elem()
		default:
			return t
		}
	}
}

// exemptField reports whether a field needs no direct reference: func
// typed, or delegated to an element type with its own snapshot method.
func exemptField(t types.Type) bool {
	e := elemType(t)
	if _, ok := e.Underlying().(*types.Signature); ok {
		return true
	}
	named, ok := e.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && hasSnapParam(sig) {
			return true
		}
	}
	return false
}

func runSnapshotState(pass *Pass) {
	// Map each snapshotted struct type to the files holding its snapshot
	// methods. Whole files, not just method bodies: the per-package
	// convention keeps snapshot code (including helpers like tagged-union
	// encoders) in one snapshot.go, and a field referenced by any code in
	// those files is part of the checkpoint machinery.
	snapFiles := make(map[*types.Named][]*ast.File)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || !hasSnapParam(sig) {
				continue
			}
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				continue
			}
			files := snapFiles[named]
			if len(files) == 0 || files[len(files)-1] != f {
				snapFiles[named] = append(files, f)
			}
		}
	}
	if len(snapFiles) == 0 {
		return
	}

	// Field objects referenced per file (both bare identifiers and
	// selector fields resolve through Info.Uses).
	fileRefs := make(map[*ast.File]map[types.Object]bool)
	refsOf := func(f *ast.File) map[types.Object]bool {
		if refs, ok := fileRefs[f]; ok {
			return refs
		}
		refs := make(map[types.Object]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok && v.IsField() {
				refs[v] = true
			}
			return true
		})
		fileRefs[f] = refs
		return refs
	}

	for named, files := range snapFiles {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if exemptField(field.Type()) {
				continue
			}
			referenced := false
			for _, f := range files {
				if refsOf(f)[field] {
					referenced = true
					break
				}
			}
			if referenced {
				continue
			}
			pass.Reportf(field.Pos(),
				"field %s of snapshotted struct %s is not referenced by its Snapshot/Restore machinery; encode it or annotate why replay reconstructs it",
				field.Name(), named.Obj().Name())
		}
	}
}
