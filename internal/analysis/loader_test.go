package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"psbox/internal/analysis"
)

// writeTree lays a file map out under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoaderCacheInvalidatesExactly proves the cache's content-hash
// contract from both sides: an unchanged tree re-typechecks nothing, a
// changed file re-typechecks exactly the changed package plus its
// importers — identified both by type-check count and by cached-object
// identity — and an untouched sibling keeps its cached package. mtime
// plays no part, so edits landing within one clock tick (psbox-lint -fix
// rewriting a file mid-process) still invalidate.
func TestLoaderCacheInvalidatesExactly(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":         "module cachehash\n\ngo 1.22\n",
		"base/base.go":   "package base\n\nfunc V() int { return 1 }\n",
		"top/top.go":     "package top\n\nimport \"cachehash/base\"\n\nfunc T() int { return base.V() }\n",
		"other/other.go": "package other\n\nfunc O() int { return 0 }\n",
	})

	load := func() map[string]*analysis.Package {
		t.Helper()
		loader, err := analysis.NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]*analysis.Package, len(pkgs))
		for _, p := range pkgs {
			out[p.Path] = p
		}
		return out
	}

	first := load()
	if len(first) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(first))
	}
	baseline := analysis.TypeCheckCount()

	// Unchanged tree: revalidation is pure hashing, zero type-checks.
	second := load()
	if got := analysis.TypeCheckCount(); got != baseline {
		t.Errorf("unchanged reload re-typechecked: %d -> %d", baseline, got)
	}
	for path, p := range first {
		if second[path] != p {
			t.Errorf("unchanged reload replaced cached package %s", path)
		}
	}

	// Leaf change: exactly the changed package re-typechecks.
	writeTree(t, root, map[string]string{
		"other/other.go": "package other\n\nfunc O() int { return 2 }\n",
	})
	third := load()
	if got := analysis.TypeCheckCount(); got != baseline+1 {
		t.Errorf("leaf change re-typechecked %d packages, want exactly 1", got-baseline)
	}
	if third["cachehash/other"] == first["cachehash/other"] {
		t.Error("changed package was not re-typechecked")
	}
	if third["cachehash/base"] != first["cachehash/base"] || third["cachehash/top"] != first["cachehash/top"] {
		t.Error("untouched packages lost their cached objects")
	}
	baseline = analysis.TypeCheckCount()

	// Dependency change: the package and its importer re-typecheck; the
	// sibling stays cached.
	writeTree(t, root, map[string]string{
		"base/base.go": "package base\n\nfunc V() int { return 7 }\n",
	})
	fourth := load()
	if got := analysis.TypeCheckCount(); got != baseline+2 {
		t.Errorf("dependency change re-typechecked %d packages, want exactly 2 (base and top)", got-baseline)
	}
	if fourth["cachehash/base"] == third["cachehash/base"] {
		t.Error("changed dependency was not re-typechecked")
	}
	if fourth["cachehash/top"] == third["cachehash/top"] {
		t.Error("importer of changed dependency kept stale types")
	}
	if fourth["cachehash/other"] != third["cachehash/other"] {
		t.Error("sibling of changed dependency was needlessly re-typechecked")
	}
}
