package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/dataflow"
)

// WallTaint is the interprocedural upgrade of nowallclock: instead of
// flagging where a host-dependent value is *read*, it flags where one
// *arrives* — in sim state, snapshot writers, or obs events. A read behind
// an //psbox:allow-nowallclock directive is still a taint source here: the
// directive excuses the read (say, for operator-facing logging), never the
// flow into deterministic state.
//
// Sources are wall-clock reads (time.Now/Since/Until), the process
// environment (os.Getenv and friends), process ids (os.Getpid/Getppid),
// and pointer-formatted strings (a fmt.Sprint* with a %p verb — addresses
// differ per run under ASLR). Taint propagates through locals, arithmetic,
// conversions, composite literals, struct fields (field-sensitively: taint
// in x.a does not implicate x.b), captured closure variables, unknown
// calls (laundering through fmt.Sprintf stays tainted), and — via
// bottom-up call-graph summaries with per-path return and heap-store
// facts — through helper functions in other packages, including setters
// that park the taint in a struct field and getters that retrieve it
// later. Sinks are the parameters of every function in a
// deterministic-state package, so passing a tainted value into one
// directly, or into any helper that forwards it there, is reported at the
// call site.
var WallTaint = &Analyzer{
	Name: "walltaint",
	Doc: `flag host-dependent values (wall-clock time, environment, pids,
%p-formatted addresses) flowing into sim state, snapshot writers, or obs
events, directly or through helper calls in other packages.`,
	Run: runWallTaint,
}

// wallTaintSinkPkgs are the deterministic-state package subtrees whose
// inputs must be host-independent.
var wallTaintSinkPkgs = []string{
	"psbox/internal/sim",
	"psbox/internal/snapshot",
	"psbox/internal/obs",
}

func isWallTaintSinkPkg(path string) bool {
	for _, p := range wallTaintSinkPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Source kinds, one bit each in Labels.Kinds.
const (
	wtWallClock = iota
	wtEnv
	wtPid
	wtPtrFmt
)

var wallTaintKindNames = [...]string{
	"wall-clock time",
	"process-environment value",
	"process id",
	"pointer-formatted address",
}

func wallTaintKindList(kinds uint64) string {
	var parts []string
	for i, name := range wallTaintKindNames {
		if kinds&(1<<uint(i)) != 0 {
			parts = append(parts, name)
		}
	}
	return strings.Join(parts, ", ")
}

// wallTaintSource labels the calls that mint host-dependent values.
func wallTaintSource(info *types.Info, call *ast.CallExpr) dataflow.Labels {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return dataflow.Labels{}
	}
	if name, ok := qualifiedName(info, sel, "time"); ok {
		switch name {
		case "Now", "Since", "Until":
			return dataflow.Kind(wtWallClock)
		}
		return dataflow.Labels{}
	}
	if name, ok := qualifiedName(info, sel, "os"); ok {
		switch name {
		case "Getenv", "LookupEnv", "Environ", "ExpandEnv":
			return dataflow.Kind(wtEnv)
		case "Getpid", "Getppid":
			return dataflow.Kind(wtPid)
		}
		return dataflow.Labels{}
	}
	if name, ok := qualifiedName(info, sel, "fmt"); ok && strings.HasPrefix(name, "Sprint") {
		for _, arg := range call.Args {
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			if strings.Contains(constant.StringVal(tv.Value), "%p") {
				return dataflow.Kind(wtPtrFmt)
			}
		}
	}
	return dataflow.Labels{}
}

// wallTaintSum is one function's bottom-up summary: which source kinds
// and parameter positions reach its return values (per access path) or
// get stored through its pointer-like parameters (the setter half of a
// heap round-trip), and which parameter positions reach a
// deterministic-state sink inside it (transitively).
type wallTaintSum struct {
	flow dataflow.Summary
	sink uint64
}

func (s wallTaintSum) equal(o wallTaintSum) bool {
	return s.sink == o.sink && s.flow.Equal(o.flow)
}

func wallTaintSummaries(prog *Program) map[*types.Func]wallTaintSum {
	v := prog.Fact("walltaint.sums", func() any {
		g := prog.CallGraph()
		return dataflow.Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) wallTaintSum) wallTaintSum {
			info := n.Pkg.Info
			a := wallTaintAnalyze(g, info, n.Decl, get)
			sum := wallTaintSum{flow: summarize(a, info, n.Decl)}
			if isWallTaintSinkPkg(n.Pkg.Path) {
				// Every parameter of a deterministic-state function is
				// itself a sink.
				sum.sink = paramMask(n.Decl)
			}
			forEachCall(n.Decl.Body, func(call *ast.CallExpr) {
				mask := wallTaintSinkMask(g, info, call, get)
				if mask == 0 {
					return
				}
				np := a.NumParams(call)
				for i := 0; i < np && i < 64; i++ {
					if mask&(1<<uint(i)) != 0 {
						sum.sink |= a.ArgLabels(call, i).Params
					}
				}
			})
			return sum
		}, wallTaintSum.equal)
	})
	return v.(map[*types.Func]wallTaintSum)
}

// wallTaintSinkMask reports which argument positions of a call land in
// deterministic state: all of them for a direct call into a sink package,
// the callee's summarized sink positions otherwise.
func wallTaintSinkMask(g *callgraph.Graph, info *types.Info, call *ast.CallExpr, get func(*types.Func) wallTaintSum) uint64 {
	callee := callgraph.StaticCallee(info, call)
	if callee == nil {
		return 0
	}
	if pkg := callee.Pkg(); pkg != nil && isWallTaintSinkPkg(pkg.Path()) {
		return ^uint64(0)
	}
	if g.Node(callee) == nil {
		return 0
	}
	return get(callee).sink
}

// wallTaintAnalyze runs the taint engine over one function body with
// sources enabled and known callees mapped through their summaries.
func wallTaintAnalyze(g *callgraph.Graph, info *types.Info, fd *ast.FuncDecl, get func(*types.Func) wallTaintSum) *dataflow.Analysis {
	hooks := dataflow.Hooks{
		Source: func(call *ast.CallExpr) dataflow.Labels { return wallTaintSource(info, call) },
		Call: func(call *ast.CallExpr, args *dataflow.CallArgs) (dataflow.Value, bool) {
			callee := callgraph.StaticCallee(info, call)
			if callee == nil || g.Node(callee) == nil {
				// Unknown callee (stdlib, func value): conservative
				// default, so laundering keeps the taint.
				return nil, false
			}
			// Apply replays the callee's heap stores onto the argument
			// cells (a setter parks taint in the caller's struct field)
			// and maps its per-path return facts to argument labels.
			return get(callee).flow.Apply(args), true
		},
	}
	return dataflow.Run(info, fd.Body, seedFunc(info, fd), hooks)
}

func runWallTaint(pass *Pass) {
	sums := wallTaintSummaries(pass.Prog)
	g := pass.Prog.CallGraph()
	get := func(fn *types.Func) wallTaintSum { return sums[fn] }
	inSink := isWallTaintSinkPkg(pass.PkgPath)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := wallTaintAnalyze(g, pass.Info, fd, get)
			forEachCall(fd.Body, func(call *ast.CallExpr) {
				if inSink {
					// Inside a deterministic-state package a source read
					// is the violation itself: the value is born next to
					// the state it must not touch.
					if l := wallTaintSource(pass.Info, call); !l.Empty() {
						pass.Reportf(call.Pos(),
							"%s read inside %s: deterministic-state packages must not observe host state", wallTaintKindList(l.Kinds), pass.PkgPath)
						return
					}
				}
				mask := wallTaintSinkMask(g, pass.Info, call, get)
				if mask == 0 {
					return
				}
				np := a.NumParams(call)
				var kinds uint64
				for i := 0; i < np && i < 64; i++ {
					if mask&(1<<uint(i)) != 0 {
						kinds |= a.ArgLabels(call, i).Kinds
					}
				}
				if kinds == 0 {
					return
				}
				callee := callgraph.StaticCallee(pass.Info, call)
				desc := funcDesc(callee)
				if pkg := callee.Pkg(); pkg == nil || !isWallTaintSinkPkg(pkg.Path()) {
					desc += ", which forwards it into deterministic state"
				}
				pass.Reportf(call.Pos(),
					"%s flows into %s; sim state, snapshots, and obs events must be host-independent", wallTaintKindList(kinds), desc)
			})
		}
	}
}
