package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
)

// NoMathRand forbids math/rand (and math/rand/v2) everywhere except the
// seeded simulation PRNG in internal/sim/rand.go. The stdlib generator's
// stream is not guaranteed stable across Go releases and its global
// functions are process-seeded, so any use outside sim.Rand silently
// breaks run-to-run and toolchain-to-toolchain reproducibility.
var NoMathRand = &Analyzer{
	Name: "nomathrand",
	Doc: `forbid importing math/rand outside internal/sim/rand.go: all
simulated randomness must come from the seeded, version-stable sim.Rand.`,
	Run: runNoMathRand,
}

// randExempt reports whether a file is the one blessed home of the PRNG.
func randExempt(filename string) bool {
	return strings.HasSuffix(filepath.ToSlash(filename), "sim/rand.go")
}

func runNoMathRand(pass *Pass) {
	for _, f := range pass.Files {
		if randExempt(pass.Filename(f)) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: use the seeded sim.Rand (internal/sim/rand.go) so random streams are reproducible across runs and Go versions", path)
			}
		}
	}
}
