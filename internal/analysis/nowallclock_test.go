package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.NoWallClock, "nowallclock")
}
