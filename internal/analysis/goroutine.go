package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"psbox/internal/analysis/callgraph"
	"psbox/internal/analysis/dataflow"
)

// This file holds the goroutine model shared by the host-concurrency
// analyzers (goroutineconfine, locksetatomic): spawn-site discovery — `go`
// statements plus function values handed to spawn helpers, found through a
// bottom-up fixpoint over the call graph — and the capture analysis that
// computes, for each spawned goroutine, the confined values it can reach
// through closure free variables, call arguments, and bound receivers,
// addressed as the same (root object, access path) cells the dataflow
// engine uses.

// confinedSeed lists the types that are confined by contract: each may be
// reachable from at most one goroutine at a time (DESIGN.md §"Concurrency
// contracts"). The paths name the real module's packages; the analysistest
// fixtures provide stubs at the same import paths.
var confinedSeed = map[string][]string{
	"psbox":                   {"System"},
	"psbox/internal/snapshot": {"Encoder", "Decoder"},
	"psbox/internal/obs":      {"Bus"},
	"psbox/internal/sim":      {"Rand"},
}

// confinedMarker is the comment marker that declares a type confined in
// addition to the seed list:
//
//	//psbox:confined
//	type Engine struct{ ... }
const confinedMarker = "//psbox:confined"

// confinedTypeSet computes, once per program, the set of confined type
// names: the seed list resolved against the loaded packages, plus every
// type whose declaration carries a //psbox:confined marker (on the type
// spec, its doc group, or the enclosing type decl).
func confinedTypeSet(prog *Program) map[*types.TypeName]bool {
	v := prog.Fact("goroutine.confined", func() any {
		set := make(map[*types.TypeName]bool)
		for _, pkg := range prog.Pkgs {
			for _, name := range confinedSeed[pkg.Path] {
				if tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
					set[tn] = true
				}
			}
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					gd, ok := d.(*ast.GenDecl)
					if !ok || gd.Tok != token.TYPE {
						continue
					}
					declMarked := confinedComment(gd.Doc)
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if declMarked || confinedComment(ts.Doc) || confinedComment(ts.Comment) {
							if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
								set[tn] = true
							}
						}
					}
				}
			}
		}
		return set
	})
	return v.(map[*types.TypeName]bool)
}

func confinedComment(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == confinedMarker || strings.HasPrefix(c.Text, confinedMarker+" ") {
			return true
		}
	}
	return false
}

// confinedOf reports the confined type name a value of type t gives access
// to, unwrapping pointers (a *System reaches the System), or nil.
func confinedOf(set map[*types.TypeName]bool, t types.Type) *types.TypeName {
	for i := 0; i < 8; i++ {
		t = types.Unalias(t)
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if tn := named.Obj(); set[tn] {
		return tn
	}
	return nil
}

// confinedDesc renders a confined type for diagnostics: pkg.Name.
func confinedDesc(tn *types.TypeName) string {
	if pkg := tn.Pkg(); pkg != nil {
		return pkg.Name() + "." + tn.Name()
	}
	return tn.Name()
}

// A gorCell addresses one value the way the dataflow engine does: the
// access path under a root object ("st" + ".sys" is the sys field of st).
type gorCell struct {
	root types.Object
	path string
}

// describe renders the offending path for diagnostics ("st.sys").
func (c gorCell) describe() string { return c.root.Name() + c.path }

// pathCovers reports whether a cell at path p speaks for path q: p == q or
// p is a proper segment-prefix of q.
func pathCovers(p, q string) bool {
	if p == q {
		return true
	}
	rest, ok := strings.CutPrefix(q, p)
	return ok && strings.HasPrefix(rest, ".")
}

// cellsOverlap reports whether two cells can address the same storage:
// same root, one path covering the other.
func cellsOverlap(a, b gorCell) bool {
	return a.root == b.root && (pathCovers(a.path, b.path) || pathCovers(b.path, a.path))
}

// gorCellOf resolves an expression to the cell it addresses, mirroring the
// dataflow engine's lvals: selectors extend the path, indexing collapses
// to the element slot, and *x / &x / (x) are transparent.
func gorCellOf(info *types.Info, e ast.Expr) (gorCell, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := info.Defs[x]
		if o == nil {
			o = info.Uses[x]
		}
		if o == nil {
			return gorCell{}, false
		}
		if _, isPkg := o.(*types.PkgName); isPkg {
			return gorCell{}, false
		}
		return gorCell{root: o}, true
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return gorCell{}, false
			}
		}
		base, ok := gorCellOf(info, x.X)
		if !ok {
			return gorCell{}, false
		}
		return gorCell{root: base.root, path: base.path + "." + x.Sel.Name}, true
	case *ast.IndexExpr:
		base, ok := gorCellOf(info, x.X)
		if !ok {
			return gorCell{}, false
		}
		return gorCell{root: base.root, path: base.path + dataflow.ElemSeg}, true
	case *ast.StarExpr:
		return gorCellOf(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return gorCellOf(info, x.X)
		}
	}
	return gorCell{}, false
}

// spawnMasks computes, once per program, which function-typed parameter
// positions of each function end up spawned on a goroutine — directly
// (`go f()`) or by forwarding to another spawn helper. The bottom-up
// fixpoint makes discovery transitive, so a funclit handed to a wrapper of
// a wrapper of `go f()` still counts as spawned.
func spawnMasks(prog *Program) map[*types.Func]uint64 {
	v := prog.Fact("goroutine.spawnmasks", func() any {
		g := prog.CallGraph()
		return dataflow.Fixpoint(g, func(n *callgraph.Node, get func(*types.Func) uint64) uint64 {
			info := n.Pkg.Info
			index := make(map[types.Object]int)
			for i, o := range paramObjs(info, n.Decl) {
				if o != nil {
					index[o] = i
				}
			}
			var mask uint64
			markParam := func(e ast.Expr) {
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					return
				}
				if i, ok := index[info.Uses[id]]; ok && i < 64 {
					mask |= 1 << uint(i)
				}
			}
			ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.GoStmt:
					markParam(x.Call.Fun)
				case *ast.CallExpr:
					callee := callgraph.StaticCallee(info, x)
					if callee == nil || g.Node(callee) == nil {
						return true
					}
					cm := get(callee)
					if cm == 0 {
						return true
					}
					for pos, arg := range callPositionArgs(info, x) {
						if pos < 64 && cm&(1<<uint(pos)) != 0 {
							markParam(arg)
						}
					}
				}
				return true
			})
			return mask
		}, func(a, b uint64) bool { return a == b })
	})
	return v.(map[*types.Func]uint64)
}

// callPositionArgs lists a call's argument expressions by callee parameter
// position, receiver first for method calls.
func callPositionArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// A spawnSite is one place a goroutine starts: a go statement, or a call
// handing a function value to a spawn helper.
type spawnSite struct {
	node ast.Node   // the go statement or spawning call, span included
	pos  token.Pos  // report anchor
	srcs []ast.Expr // expressions the goroutine can reach, in spawner scope
	lits []*ast.FuncLit
}

// spawnSitesIn discovers every spawn site in a function body, go
// statements inside deferred funclits included. For `go s.run()` the bound
// receiver is a reachable source; for `go f()` of a named function, the
// arguments are; for spawn-helper calls, each spawned argument value is.
func spawnSitesIn(info *types.Info, body *ast.BlockStmt, masks map[*types.Func]uint64) []spawnSite {
	// A go statement's call is the spawn itself, not an extra helper site.
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if g, ok := x.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	var sites []spawnSite
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			site := spawnSite{node: x, pos: x.Pos()}
			switch fun := ast.Unparen(x.Call.Fun).(type) {
			case *ast.FuncLit:
				site.lits = append(site.lits, fun)
				site.srcs = append(site.srcs, fun)
			case *ast.SelectorExpr:
				if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
					site.srcs = append(site.srcs, fun.X) // bound receiver
				}
			}
			site.srcs = append(site.srcs, x.Call.Args...)
			sites = append(sites, site)
		case *ast.CallExpr:
			if goCalls[x] {
				return true
			}
			callee := callgraph.StaticCallee(info, x)
			if callee == nil {
				return true
			}
			m := masks[callee]
			if m == 0 {
				return true
			}
			site := spawnSite{node: x, pos: x.Pos()}
			for pos, arg := range callPositionArgs(info, x) {
				if pos >= 64 || m&(1<<uint(pos)) == 0 {
					continue
				}
				site.srcs = append(site.srcs, arg)
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					site.lits = append(site.lits, lit)
				}
			}
			if len(site.srcs) > 0 {
				sites = append(sites, site)
			}
		}
		return true
	})
	return sites
}

// A capture is one confined value a spawned goroutine can reach.
type capture struct {
	cell gorCell
	tn   *types.TypeName
	pos  token.Pos // the reaching expression, for fixture-precise reports
}

// confinedCaptures lists the confined cells a spawn site's goroutine can
// reach from its spawner: every confined-typed expression inside the
// site's source expressions whose root is a function-scoped variable owned
// by the spawner. Values declared inside the spawn construct itself (a
// System built inside the goroutine's own body) belong to the goroutine
// and are not captures — that is the per-attempt-construction clean
// pattern. Package-level state is out of scope here (globals are shared by
// construction and policed by noconcurrency's package gates).
func confinedCaptures(info *types.Info, set map[*types.TypeName]bool, pkgScope *types.Scope, site spawnSite) []capture {
	var caps []capture
	seen := make(map[gorCell]bool)
	for _, src := range site.srcs {
		ast.Inspect(src, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[e]
			if !ok || tv.Type == nil {
				return true
			}
			tn := confinedOf(set, tv.Type)
			if tn == nil {
				return true
			}
			cell, ok := gorCellOf(info, e)
			if !ok || !spawnerOwned(cell.root, pkgScope, site.node) {
				return true
			}
			if !seen[cell] {
				seen[cell] = true
				caps = append(caps, capture{cell: cell, tn: tn, pos: e.Pos()})
			}
			return false // the outermost confined expression is the capture
		})
	}
	return caps
}

// spawnerOwned reports whether an object is a function-scoped variable
// declared outside the spawn construct — i.e. storage the spawner owns and
// the goroutine reaches by capture.
func spawnerOwned(o types.Object, pkgScope *types.Scope, spawn ast.Node) bool {
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == nil || v.Parent() == pkgScope {
		return false
	}
	return v.Pos() < spawn.Pos() || v.Pos() >= spawn.End()
}
