package analysis_test

import (
	"testing"

	"psbox/internal/analysis"
	"psbox/internal/analysis/analysistest"
)

func TestSnapshotDrift(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.SnapshotDrift, "snapshotdrift")
}
