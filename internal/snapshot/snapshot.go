// Package snapshot implements psbox's versioned, deterministic
// checkpoint/restore encoding (DESIGN.md §"Checkpoint/restore").
//
// A checkpoint is a canonical byte string: a fixed header (magic "PSBX",
// format version), an ordered list of labelled sections — one per stateful
// layer of the simulated stack — and a CRC-32 trailer over everything
// before it. Every multi-byte integer is big-endian and fixed-width;
// floats are their IEEE-754 bit patterns; strings and byte blobs are
// length-prefixed. Two systems in the same state therefore encode to the
// same bytes, and byte comparison of checkpoints IS state comparison.
//
// Restore follows the replay-twin contract (DESIGN.md): a checkpoint is
// never "applied" to a live system. The caller deterministically rebuilds
// the scenario, replays it to the checkpoint instant, and each section's
// Restore re-encodes the live state and byte-compares it against the
// checkpoint payload, failing loudly at the first divergence. Applying
// state would silently mask replay divergence; verification makes the
// restore guarantee checkable.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
)

// Magic opens every checkpoint.
const Magic = "PSBX"

// Version is the current wire-format version. Bump on any encoding change;
// Restore rejects checkpoints from other versions.
const Version uint16 = 1

// An Encoder builds one section's canonical payload. Encoders are
// single-goroutine: interleaved appends would scramble the wire format.
//
//psbox:confined
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Data returns the encoded bytes so far.
func (e *Encoder) Data() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends 1 or 0.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Len appends a non-negative count as uint32. Collections are always
// count-prefixed; a negative count is a caller bug.
func (e *Encoder) Len(n int) {
	if n < 0 || int64(n) > math.MaxUint32 {
		panic(fmt.Sprintf("snapshot: collection length %d out of range", n))
	}
	e.U32(uint32(n))
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.Len(len(s))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Len(len(b))
	e.buf = append(e.buf, b...)
}

// A Decoder reads one section's payload back. Errors are sticky: after the
// first underflow every further read returns zero values and Err reports
// the failure. Like the Encoder, a Decoder belongs to one goroutine: the
// read cursor and sticky error are unsynchronized.
//
//psbox:confined
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps payload bytes.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err reports the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left unread.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Rest consumes and returns every unread byte.
func (d *Decoder) Rest() []byte {
	b := d.buf[d.off:]
	d.off = len(d.buf)
	return b
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 {
		d.err = fmt.Errorf("snapshot: negative length %d at offset %d", n, d.off)
		return nil
	}
	if d.Remaining() < n {
		d.err = fmt.Errorf("snapshot: truncated payload: need %d bytes at offset %d, have %d", n, d.off, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	return string(b)
}

// Blob reads a length-prefixed byte slice.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// A Snapshotter is one stateful layer: Snapshot writes its canonical
// encoding; Restore checks a checkpoint payload against the layer's live
// state per the replay-twin contract (usually one Verify call).
type Snapshotter interface {
	Snapshot(*Encoder)
	Restore(*Decoder) error
}

// Verify is the standard Restore body: re-encode the live state with live
// and byte-compare it against the remaining checkpoint payload, reporting
// the first diverging offset.
func Verify(dec *Decoder, live func(*Encoder)) error {
	want := dec.Rest()
	enc := NewEncoder()
	live(enc)
	got := enc.Data()
	if bytes.Equal(want, got) {
		return nil
	}
	off := firstDiff(want, got)
	return fmt.Errorf("live state diverges from checkpoint at byte %d (checkpoint %d bytes, live %d bytes)",
		off, len(want), len(got))
}

// VerifyFunc adapts a Snapshot function into the standard verify-only
// Restore, for layers registered as a function pair.
func VerifyFunc(live func(*Encoder)) func(*Decoder) error {
	return func(dec *Decoder) error { return Verify(dec, live) }
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

type section struct {
	label   string
	snap    func(*Encoder)
	restore func(*Decoder) error
}

// A Registry is the ordered list of a system's stateful layers. The
// registration order is part of the wire format: Checkpoint emits sections
// in it, and Restore requires the checkpoint's section list to match it
// exactly.
type Registry struct {
	secs   []section
	labels map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{labels: make(map[string]bool)} }

// Add registers one layer under a unique label.
func (r *Registry) Add(label string, s Snapshotter) {
	r.AddFuncs(label, s.Snapshot, s.Restore)
}

// AddFuncs registers a layer given as a function pair — for types whose
// Restore name is taken by an existing API (hardware power-state restore).
func (r *Registry) AddFuncs(label string, snap func(*Encoder), restore func(*Decoder) error) {
	if r.labels[label] {
		panic(fmt.Sprintf("snapshot: duplicate section label %q", label))
	}
	r.labels[label] = true
	r.secs = append(r.secs, section{label: label, snap: snap, restore: restore})
}

// Labels lists the registered section labels in order.
func (r *Registry) Labels() []string {
	out := make([]string, len(r.secs))
	for i, s := range r.secs {
		out[i] = s.label
	}
	return out
}

// Checkpoint encodes every registered section into one framed, checksummed
// checkpoint.
func (r *Registry) Checkpoint() []byte {
	e := NewEncoder()
	e.buf = append(e.buf, Magic...)
	e.U16(Version)
	e.Len(len(r.secs))
	for _, s := range r.secs {
		body := NewEncoder()
		s.snap(body)
		e.Str(s.label)
		e.Blob(body.Data())
	}
	e.U32(crc32.ChecksumIEEE(e.buf))
	return e.Data()
}

// A Section is one decoded checkpoint section.
type Section struct {
	Label   string
	Payload []byte
}

// Parse validates a checkpoint's framing — magic, version, CRC — and
// returns its sections.
func Parse(data []byte) ([]Section, error) {
	if len(data) < len(Magic)+2+4+4 {
		return nil, fmt.Errorf("snapshot: checkpoint too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.BigEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch: trailer %08x, computed %08x", got, want)
	}
	d := NewDecoder(body)
	if string(d.take(len(Magic))) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic")
	}
	if v := d.U16(); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads version %d", v, Version)
	}
	n := int(d.U32())
	// Every section costs at least 8 framing bytes (the label and payload
	// length prefixes), which bounds how many the remaining body can hold.
	// Checking before the preallocation keeps a hostile count field from
	// sizing an allocation the data could never fill.
	if maxSecs := d.Remaining() / 8; n > maxSecs {
		return nil, fmt.Errorf("snapshot: section count %d exceeds what %d remaining bytes can frame", n, d.Remaining())
	}
	secs := make([]Section, 0, n)
	for i := 0; i < n; i++ {
		label := d.Str()
		payload := d.Blob()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: section %d: %w", i, err)
		}
		secs = append(secs, Section{Label: label, Payload: payload})
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after %d sections", d.Remaining(), n)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return secs, nil
}

// Restore checks a checkpoint against the registered layers: framing and
// CRC first, then the section list (labels and order must match the
// registry exactly), then each layer's Restore against its payload.
func (r *Registry) Restore(data []byte) error {
	secs, err := Parse(data)
	if err != nil {
		return err
	}
	if len(secs) != len(r.secs) {
		return fmt.Errorf("snapshot: checkpoint has %d sections, registry has %d", len(secs), len(r.secs))
	}
	for i, s := range secs {
		reg := r.secs[i]
		if s.Label != reg.label {
			return fmt.Errorf("snapshot: section %d is %q, registry expects %q", i, s.Label, reg.label)
		}
		if err := reg.restore(NewDecoder(s.Payload)); err != nil {
			return fmt.Errorf("snapshot: section %q: %w", s.Label, err)
		}
	}
	return nil
}

// Diff describes where two checkpoints first diverge, section by section —
// the lockstep divergence detector's failure report. It returns "" when
// the checkpoints are byte-identical.
func Diff(a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	sa, errA := Parse(a)
	sb, errB := Parse(b)
	if errA != nil || errB != nil {
		return fmt.Sprintf("checkpoints differ and at least one is unparseable (a: %v, b: %v)", errA, errB)
	}
	labels := make(map[string]bool)
	var order []string
	index := func(secs []Section) map[string][]byte {
		m := make(map[string][]byte)
		for _, s := range secs {
			m[s.Label] = s.Payload
			if !labels[s.Label] {
				labels[s.Label] = true
				order = append(order, s.Label)
			}
		}
		return m
	}
	ma, mb := index(sa), index(sb)
	sort.Strings(order)
	for _, label := range order {
		pa, oka := ma[label]
		pb, okb := mb[label]
		switch {
		case !oka:
			return fmt.Sprintf("section %q present only in second checkpoint", label)
		case !okb:
			return fmt.Sprintf("section %q present only in first checkpoint", label)
		case !bytes.Equal(pa, pb):
			return fmt.Sprintf("section %q diverges at byte %d (%d vs %d bytes)",
				label, firstDiff(pa, pb), len(pa), len(pb))
		}
	}
	return "checkpoints differ only in framing (section order or count)"
}

// WriteFile writes a checkpoint to disk.
func WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// ReadFile reads a checkpoint back and validates its framing and CRC, so a
// torn or corrupted file is rejected before any restore is attempted.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, err := Parse(data); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return data, nil
}
