package snapshot

import (
	"hash/crc32"
	"path/filepath"
	"strings"
	"testing"
)

func crc32ChecksumForTest(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func TestEncodeDecodeRoundtrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.U16(65500)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(3.5)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Blob([]byte{1, 2, 3})

	d := NewDecoder(e.Data())
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U16(); got != 65500 {
		t.Errorf("U16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("F64 = %g", got)
	}
	if got := d.Bool(); !got {
		t.Errorf("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Errorf("Bool = true, want false")
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Blob(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Blob = %v", got)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	if got := d.U64(); got != 0 {
		t.Errorf("underflow U64 = %d, want 0", got)
	}
	if d.Err() == nil {
		t.Fatal("expected sticky error after underflow")
	}
	// Every further read stays zero-valued without panicking.
	if d.U8() != 0 || d.Str() != "" || d.F64() != 0 {
		t.Error("reads after error must return zero values")
	}
}

type fakeLayer struct {
	value uint64
	text  string
}

func (f *fakeLayer) Snapshot(e *Encoder) {
	e.U64(f.value)
	e.Str(f.text)
}

func (f *fakeLayer) Restore(d *Decoder) error { return Verify(d, f.Snapshot) }

func buildRegistry(a, b *fakeLayer) *Registry {
	r := NewRegistry()
	r.Add("layer/a", a)
	r.Add("layer/b", b)
	return r
}

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	a := &fakeLayer{value: 11, text: "alpha"}
	b := &fakeLayer{value: 22, text: "beta"}
	r := buildRegistry(a, b)
	ckpt := r.Checkpoint()

	// Same state verifies.
	if err := r.Restore(ckpt); err != nil {
		t.Fatalf("Restore of identical state: %v", err)
	}
	// Determinism: re-encoding yields identical bytes.
	if Diff(ckpt, r.Checkpoint()) != "" {
		t.Fatal("two checkpoints of the same state differ")
	}
	// Diverged state fails with the section named.
	b.value = 23
	err := r.Restore(ckpt)
	if err == nil {
		t.Fatal("Restore of diverged state succeeded")
	}
	if !strings.Contains(err.Error(), `"layer/b"`) {
		t.Errorf("error does not name the diverging section: %v", err)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	r := buildRegistry(&fakeLayer{value: 1}, &fakeLayer{value: 2})
	ckpt := r.Checkpoint()

	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := Parse(flipped); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corrupted checkpoint: err = %v, want CRC mismatch", err)
	}

	short := ckpt[:4]
	if _, err := Parse(short); err == nil {
		t.Error("truncated checkpoint parsed")
	}

	// Wrong version must be rejected even with a valid CRC.
	body := append([]byte(nil), ckpt[:len(ckpt)-4]...)
	body[4], body[5] = 0xff, 0xfe
	e := &Encoder{buf: body}
	e.U32(crc32ChecksumForTest(body))
	if _, err := Parse(e.Data()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version checkpoint: err = %v, want version rejection", err)
	}
}

func TestDiffNamesDivergingSection(t *testing.T) {
	a1 := &fakeLayer{value: 1, text: "x"}
	b1 := &fakeLayer{value: 2, text: "y"}
	c1 := buildRegistry(a1, b1).Checkpoint()

	a2 := &fakeLayer{value: 1, text: "x"}
	b2 := &fakeLayer{value: 2, text: "z"}
	c2 := buildRegistry(a2, b2).Checkpoint()

	d := Diff(c1, c2)
	if !strings.Contains(d, `"layer/b"`) {
		t.Errorf("Diff = %q, want it to name layer/b", d)
	}
	if Diff(c1, c1) != "" {
		t.Error("Diff of identical checkpoints not empty")
	}
}

func TestRestoreRejectsSectionMismatch(t *testing.T) {
	full := buildRegistry(&fakeLayer{}, &fakeLayer{}).Checkpoint()
	partial := NewRegistry()
	partial.Add("layer/a", &fakeLayer{})
	if err := partial.Restore(full); err == nil {
		t.Error("section-count mismatch accepted")
	}
	renamed := NewRegistry()
	renamed.Add("layer/a", &fakeLayer{})
	renamed.Add("layer/c", &fakeLayer{})
	if err := renamed.Restore(full); err == nil {
		t.Error("section-label mismatch accepted")
	}
}

func TestFileRoundtripValidatesCRC(t *testing.T) {
	r := buildRegistry(&fakeLayer{value: 5}, &fakeLayer{value: 6})
	ckpt := r.Checkpoint()
	path := filepath.Join(t.TempDir(), "ckpt.psbx")
	if err := WriteFile(path, ckpt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if Diff(ckpt, back) != "" {
		t.Error("file roundtrip changed bytes")
	}

	torn := append([]byte(nil), ckpt[:len(ckpt)-3]...)
	if err := WriteFile(path, torn); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("torn checkpoint file accepted")
	}
}

func TestVerifyReportsOffset(t *testing.T) {
	enc := NewEncoder()
	enc.U64(100)
	enc.U64(200)
	dec := NewDecoder(enc.Data())
	err := Verify(dec, func(e *Encoder) { e.U64(100); e.U64(201) })
	if err == nil {
		t.Fatal("Verify of diverged state succeeded")
	}
	if !strings.Contains(err.Error(), "byte 15") {
		t.Errorf("err = %v, want divergence at byte 15", err)
	}
}
