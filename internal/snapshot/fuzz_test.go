package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzCheckpoint builds the well-formed two-section checkpoint the fuzz
// targets mutate away from.
func fuzzCheckpoint() ([]byte, *Registry) {
	r := buildRegistry(&fakeLayer{value: 11, text: "alpha"}, &fakeLayer{value: 22, text: "beta"})
	return r.Checkpoint(), r
}

// resealCRC recomputes a mutated checkpoint's trailer so the mutation
// reaches the framing decoder instead of dying at the CRC gate.
func resealCRC(data []byte) []byte {
	if len(data) < 4 {
		return data
	}
	out := append([]byte(nil), data...)
	binary.BigEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(out[:len(out)-4]))
	return out
}

// FuzzRestore feeds arbitrary bytes through the full hostile-input
// surface — Parse, Registry.Restore, Diff, and each section's payload
// decoder. The contract under fuzz: malformed input may only ever return
// an error. No panic, no runtime fault, and no allocation sized by an
// unvalidated length field.
func FuzzRestore(f *testing.F) {
	valid, _ := fuzzCheckpoint()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(valid[:len(valid)/2])          // truncated mid-section
	f.Add(valid[:len(valid)-1])          // missing one trailer byte
	f.Add(bytes.Repeat(valid, 2))        // trailing garbage with a stale CRC
	f.Add(resealCRC(valid[:len(valid)])) // identity reseal

	// A hostile section count with a valid CRC: claims 2^32-1 sections in
	// a body that can frame none. This is the seed that must hit the
	// count-vs-remaining guard, not a giant preallocation.
	hostile := append([]byte(Magic), 0, 1) // version 1
	hostile = binary.BigEndian.AppendUint32(hostile, 0xffffffff)
	f.Add(resealCRC(append(hostile, 0, 0, 0, 0)))

	// An oversized string length inside an otherwise valid frame.
	overlong := append([]byte(nil), valid[:len(valid)-4]...)
	binary.BigEndian.PutUint32(overlong[len(Magic)+2+4:], 0x7fffffff)
	f.Add(resealCRC(append(overlong, 0, 0, 0, 0)))

	f.Fuzz(func(t *testing.T, data []byte) {
		secs, err := Parse(data)
		if err != nil && secs != nil {
			t.Fatal("Parse returned sections alongside an error")
		}
		if err == nil {
			// A successful parse must be stable and re-frameable.
			again, err2 := Parse(data)
			if err2 != nil {
				t.Fatalf("second Parse of accepted input failed: %v", err2)
			}
			if len(again) != len(secs) {
				t.Fatalf("Parse is nondeterministic: %d then %d sections", len(secs), len(again))
			}
		}

		// Restore against a live registry: errors only, never a panic,
		// regardless of what the payload decoders read.
		valid, reg := fuzzCheckpoint()
		_ = reg.Restore(data)

		// Diff in both positions, including unparseable inputs.
		_ = Diff(data, valid)
		_ = Diff(valid, data)
		_ = Diff(data, data)

		// Drain a raw decoder over the input the way section decoders do:
		// sticky errors must hold, reads past the end must return zeros.
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			switch d.U8() % 5 {
			case 0:
				d.U64()
			case 1:
				d.Str()
			case 2:
				d.Blob()
			case 3:
				d.F64()
			case 4:
				d.U16()
			}
		}
	})
}
