package kernel

import (
	"fmt"

	"psbox/internal/hw/accelhw"
	"psbox/internal/hw/display"
	"psbox/internal/kernel/sched"
	"psbox/internal/sim"
)

// maxActionsPerInstant bounds zero-time program loops; a program that
// issues this many non-blocking actions without computing is livelocked.
const maxActionsPerInstant = 10000

// onRunTask is the scheduler's context-switch-in callback: start (or
// resume) executing the task's current compute burst.
func (k *Kernel) onRunTask(core int, st *sched.Task) {
	t, ok := k.tasks[st]
	if !ok {
		panic(fmt.Sprintf("kernel: scheduler ran unknown task %s", st.Name))
	}
	k.runTaskCB(core, t)
}

// onStopTask is the context-switch-out callback.
func (k *Kernel) onStopTask(core int, st *sched.Task) {
	t, ok := k.tasks[st]
	if !ok {
		panic(fmt.Sprintf("kernel: scheduler stopped unknown task %s", st.Name))
	}
	k.stopTaskCB(core, t)
}

func (k *Kernel) runTaskCB(core int, t *Task) {
	k.cpu.SetCoreBusy(core, true)
	k.running[core] = t
	t.core = core
	t.runStart = k.eng.Now()
	t.runRate = k.cpu.CyclesPerSecond()
	if k.mem != nil {
		k.mem.SetCoreStream(core, t.memGBs)
	}
	if t.remaining <= 0 {
		// No burst in progress: fetch the next actions now.
		k.advance(t)
		return
	}
	k.armCompletion(t)
}

func (k *Kernel) stopTaskCB(core int, t *Task) {
	if k.running[core] != t {
		panic(fmt.Sprintf("kernel: core %d stop for %s but running %v", core, t.Name, k.running[core]))
	}
	now := k.eng.Now()
	if t.compArm != (sim.Handle{}) {
		k.eng.Cancel(t.compArm)
		t.compArm = sim.Handle{}
	}
	elapsed := now.Sub(t.runStart).Seconds()
	t.remaining -= elapsed * t.runRate
	if t.remaining < 0 {
		t.remaining = 0
	}
	if k.cpuUsage != nil && now > t.runStart {
		k.cpuUsage(t.app.ID, core, t.runStart, now)
	}
	k.running[core] = nil
	t.core = -1
	k.cpu.SetCoreBusy(core, false)
	if k.mem != nil {
		k.mem.SetCoreStream(core, 0)
	}
}

func (k *Kernel) onCoreIdle(core int) {
	k.cpu.SetCoreBusy(core, false)
}

// armCompletion schedules the end of the task's current compute burst.
func (k *Kernel) armCompletion(t *Task) {
	if t.compArm != (sim.Handle{}) {
		k.eng.Cancel(t.compArm)
	}
	durNs := int64(t.remaining / t.runRate * 1e9)
	if durNs < 1 {
		durNs = 1
	}
	tt := t
	t.compArm = k.eng.After(sim.Duration(durNs), func(sim.Time) {
		tt.compArm = sim.Handle{}
		now := k.eng.Now()
		tt.remaining -= now.Sub(tt.runStart).Seconds() * tt.runRate
		if tt.remaining < 1e-3 {
			tt.remaining = 0
		}
		if k.cpuUsage != nil && now > tt.runStart {
			k.cpuUsage(tt.app.ID, tt.core, tt.runStart, now)
		}
		tt.runStart = now
		if tt.remaining > 0 {
			// Numeric residue: keep running.
			k.armCompletion(tt)
			return
		}
		k.advance(tt)
	})
}

// onFreqChange recomputes every running task's burst completion at the new
// execution rate.
func (k *Kernel) onFreqChange(oldIdx, newIdx int) {
	now := k.eng.Now()
	for _, t := range k.running {
		if t == nil {
			continue
		}
		elapsed := now.Sub(t.runStart).Seconds()
		t.remaining -= elapsed * t.runRate
		if t.remaining < 0 {
			t.remaining = 0
		}
		if k.cpuUsage != nil && now > t.runStart {
			k.cpuUsage(t.app.ID, t.core, t.runStart, now)
		}
		t.runStart = now
		t.runRate = k.cpu.CyclesPerSecond()
		if t.compArm != (sim.Handle{}) {
			k.armCompletion(t)
		}
	}
}

// advance fetches and executes the task's next actions until one consumes
// time (Compute), blocks (waits, sleep), or exits. The task is on a CPU.
func (k *Kernel) advance(t *Task) {
	for i := 0; ; i++ {
		if i >= maxActionsPerInstant {
			panic(fmt.Sprintf("kernel: task %s issued %d actions without computing — livelocked program", t.Name, i))
		}
		switch a := t.prog.Next(t.env).(type) {
		case Compute:
			if a.Cycles <= 0 {
				panic(fmt.Sprintf("kernel: task %s computed non-positive cycles", t.Name))
			}
			if a.MemGBs < 0 {
				panic(fmt.Sprintf("kernel: task %s with negative memory bandwidth", t.Name))
			}
			t.remaining = a.Cycles
			t.memGBs = a.MemGBs
			t.runStart = k.eng.Now()
			t.runRate = k.cpu.CyclesPerSecond()
			if k.mem != nil {
				k.mem.SetCoreStream(t.core, t.memGBs)
			}
			k.armCompletion(t)
			return
		case SubmitAccel:
			drv := k.Accel(a.Dev)
			drv.Submit(t.app.ID, &accelhw.Command{Kind: a.Kind, Work: a.Work, DynW: a.DynW})
		case SubmitAccelAs:
			if _, ok := k.apps[a.OnBehalfOf]; !ok {
				panic(fmt.Sprintf("kernel: task %s delegating for unknown app %d", t.Name, a.OnBehalfOf))
			}
			drv := k.Accel(a.Dev)
			drv.Submit(a.OnBehalfOf, &accelhw.Command{Kind: a.Kind, Work: a.Work, DynW: a.DynW})
		case AwaitAccel:
			drv := k.Accel(a.Dev)
			if drv.Backlog(t.app.ID) <= a.MaxBacklog {
				continue
			}
			t.waitDev = a.Dev
			t.waitMax = a.MaxBacklog
			t.app.demandDelta(-1)
			k.sch.Block(t.st)
			return
		case Send:
			if a.Socket < 0 || a.Socket >= len(t.app.sockets) {
				panic(fmt.Sprintf("kernel: task %s sending on unknown socket %d", t.Name, a.Socket))
			}
			k.net.Send(t.app.sockets[a.Socket], a.Bytes)
		case SetTxLevel:
			k.net.SetTxLevel(t.app.ID, a.Level)
		case SetDisplayRegion:
			if k.disp == nil {
				panic(fmt.Sprintf("kernel: task %s drawing with no display attached", t.Name))
			}
			k.disp.SetRegion(display.Region{Owner: t.app.ID, Pixels: a.Pixels, Luminance: a.Luminance})
		case AcquireGPS:
			if k.gpsDev == nil {
				panic(fmt.Sprintf("kernel: task %s acquiring absent GPS", t.Name))
			}
			k.gpsDev.Acquire(t.app.ID)
		case ReleaseGPS:
			k.gpsDev.Release(t.app.ID)
		case AwaitNet:
			if k.net.Backlog(t.app.ID) <= a.MaxBacklog {
				continue
			}
			t.waitNet = true
			t.waitMax = a.MaxBacklog
			t.app.demandDelta(-1)
			k.sch.Block(t.st)
			return
		case Sleep:
			if a.D <= 0 {
				continue
			}
			t.app.demandDelta(-1)
			k.sch.Block(t.st)
			tt := t
			t.sleepArm = k.eng.After(a.D, func(sim.Time) {
				tt.sleepArm = sim.Handle{}
				if !tt.dead {
					tt.app.demandDelta(+1)
					k.sch.Wake(tt.st)
				}
			})
			return
		case Exit:
			t.dead = true
			t.app.demandDelta(-1)
			k.sch.Exit(t.st)
			return
		default:
			panic(fmt.Sprintf("kernel: task %s returned unknown action %T", t.Name, a))
		}
	}
}

// checkAccelWaiters wakes tasks whose accelerator-backlog condition now
// holds.
func (k *Kernel) checkAccelWaiters(dev string, appID int) {
	app, ok := k.apps[appID]
	if !ok {
		return
	}
	drv := k.accels[dev]
	for _, t := range app.tasks {
		if t.dead || t.waitDev != dev {
			continue
		}
		if drv.Backlog(appID) <= t.waitMax {
			t.waitDev = ""
			t.app.demandDelta(+1)
			k.sch.Wake(t.st)
		}
	}
}

// checkNetWaiters wakes tasks whose unsent-bytes condition now holds.
func (k *Kernel) checkNetWaiters(appID int) {
	app, ok := k.apps[appID]
	if !ok {
		return
	}
	for _, t := range app.tasks {
		if t.dead || !t.waitNet {
			continue
		}
		if k.net.Backlog(appID) <= t.waitMax {
			t.waitNet = false
			t.app.demandDelta(+1)
			k.sch.Wake(t.st)
		}
	}
}

// Kill terminates a task from outside (failure injection in tests).
func (k *Kernel) Kill(t *Task) {
	if t.dead {
		return
	}
	t.dead = true
	if t.sleepArm != (sim.Handle{}) {
		k.eng.Cancel(t.sleepArm)
		t.sleepArm = sim.Handle{}
	}
	if t.st.State() == sched.StateRunnable || t.st.State() == sched.StateRunning {
		t.app.demandDelta(-1)
	}
	k.sch.Exit(t.st)
}
