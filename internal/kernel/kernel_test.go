package kernel

import (
	"math"
	"testing"

	"psbox/internal/hw/accelhw"
	"psbox/internal/hw/cpu"
	"psbox/internal/hw/nic"
	"psbox/internal/kernel/accel"
	"psbox/internal/kernel/netsched"
	"psbox/internal/sim"
)

// testSystem assembles a minimal platform: 2-core CPU (pinned frequency
// unless stated), GPU-like accelerator, and a NIC.
type testSystem struct {
	eng *sim.Engine
	cpu *cpu.CPU
	k   *Kernel
	gpu *accel.Driver
	net *netsched.Driver
}

func newTestSystem(t *testing.T, governor bool) *testSystem {
	eng := sim.NewEngine()
	ccfg := cpu.DefaultConfig()
	if !governor {
		ccfg.GovernorWindow = 0
		ccfg.InitialFreqIdx = 3
	}
	c := cpu.MustNew(eng, ccfg)
	k := New(eng, Config{CPU: c, Seed: 42})
	dev := accelhw.MustNew(eng, accelhw.Config{
		Name: "gpu", Slots: 2, FreqsMHz: []float64{450},
		WorkPerSecAtTop: 1e6, ShareFactor: 0.9, IdleW: 0.25,
	})
	gpu := accel.New(eng, dev, accel.Callbacks{})
	k.AttachAccel("gpu", gpu)
	n := nic.MustNew(eng, nic.DefaultConfig())
	nd := netsched.NewWithConfig(eng, netsched.Config{DrainSettle: 5 * sim.Millisecond}, n, netsched.Callbacks{})
	k.AttachNet(nd)
	return &testSystem{eng: eng, cpu: c, k: k, gpu: gpu, net: nd}
}

func TestComputeConsumesTimeAtFrequency(t *testing.T) {
	s := newTestSystem(t, false) // pinned at 1500 MHz
	app := s.k.NewApp("a")
	var done sim.Time
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		if done != 0 {
			return Exit{}
		}
		done = -1
		return Compute{Cycles: 15e6} // 10ms at 1.5 GHz
	}))
	prog := ProgramFunc(nil)
	_ = prog
	s.eng.RunFor(50 * sim.Millisecond)
	if got := app.CPUTime(); got < 9900*sim.Microsecond || got > 10100*sim.Microsecond {
		t.Fatalf("cpu time = %v, want ≈10ms", got)
	}
}

func TestFrequencyChangeStretchesCompute(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	issued := false
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		if issued {
			return Exit{}
		}
		issued = true
		return Compute{Cycles: 15e6}
	}))
	// Halfway through, drop to 600 MHz: the remaining 7.5e6 cycles take
	// 12.5ms, so completion lands at t=17.5ms.
	s.eng.RunFor(5 * sim.Millisecond)
	s.cpu.SetFreqIdx(0)
	s.eng.RunFor(12 * sim.Millisecond)
	if app.Tasks()[0].Dead() {
		t.Fatal("finished early despite the slower clock")
	}
	s.eng.RunFor(1 * sim.Millisecond)
	if !app.Tasks()[0].Dead() {
		t.Fatal("should have finished by 18ms")
	}
}

func TestSleepWakesExactly(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	var phases []sim.Time
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		phases = append(phases, env.Now())
		switch len(phases) {
		case 1:
			return Sleep{D: 10 * sim.Millisecond}
		case 2:
			return Exit{}
		}
		return Exit{}
	}))
	s.eng.RunFor(50 * sim.Millisecond)
	if len(phases) != 2 {
		t.Fatalf("phases = %v", phases)
	}
	if got := phases[1].Sub(phases[0]); got != 10*sim.Millisecond {
		t.Fatalf("slept %v", got)
	}
}

func TestAccelSubmitAndAwait(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	step := 0
	var doneAt sim.Time
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		step++
		switch step {
		case 1:
			return SubmitAccel{Dev: "gpu", Kind: "draw", Work: 10000, DynW: 0.5} // 10ms
		case 2:
			return AwaitAccel{Dev: "gpu", MaxBacklog: 0}
		case 3:
			doneAt = env.Now()
			return Exit{}
		}
		return Exit{}
	}))
	s.eng.RunFor(50 * sim.Millisecond)
	if s.gpu.Completed(app.ID) != 1 {
		t.Fatal("command not completed")
	}
	if doneAt < sim.Time(10*sim.Millisecond) {
		t.Fatalf("await returned at %v, before completion", doneAt)
	}
	if doneAt > sim.Time(11*sim.Millisecond) {
		t.Fatalf("await returned late: %v", doneAt)
	}
}

func TestNetSendAndAwait(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	sock := app.OpenSocket()
	step := 0
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		step++
		switch step {
		case 1:
			return Send{Socket: sock, Bytes: 25000} // 10ms airtime
		case 2:
			return AwaitNet{MaxBacklog: 0}
		case 3:
			env.Count("transfers", 1)
			return Exit{}
		}
		return Exit{}
	}))
	s.eng.RunFor(100 * sim.Millisecond)
	if s.net.SentBytes(app.ID) != 25000 {
		t.Fatalf("sent = %d", s.net.SentBytes(app.ID))
	}
	if app.Counter("transfers") != 1 {
		t.Fatal("await never returned")
	}
}

func TestGovernorRampsUnderComputeLoad(t *testing.T) {
	s := newTestSystem(t, true) // governor active, starts at 600 MHz
	app := s.k.NewApp("a")
	app.Spawn("hog0", 0, Loop(Compute{Cycles: 1e6}))
	app.Spawn("hog1", 1, Loop(Compute{Cycles: 1e6}))
	s.eng.RunFor(300 * sim.Millisecond)
	if s.cpu.FreqIdx() != s.cpu.TopFreqIdx() {
		t.Fatalf("freq idx = %d after sustained load", s.cpu.FreqIdx())
	}
}

func TestCountersAndRand(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	app.Spawn("t", 0, ProgramFunc(func(env *Env) Action {
		if app.Counter("iters") >= 5 {
			return Exit{}
		}
		env.Count("iters", 1)
		return Compute{Cycles: float64(env.Rand.Jitter(1e6, 0.2))}
	}))
	s.eng.RunFor(100 * sim.Millisecond)
	if app.Counter("iters") != 5 {
		t.Fatalf("iters = %v", app.Counter("iters"))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (sim.Duration, float64) {
		s := newTestSystem(t, true)
		a := s.k.NewApp("a")
		b := s.k.NewApp("b")
		a.Spawn("t", 0, Loop(Compute{Cycles: 2e6}, Sleep{D: 1 * sim.Millisecond}))
		b.Spawn("t", 0, Loop(Compute{Cycles: 5e6}))
		s.eng.RunFor(500 * sim.Millisecond)
		return a.CPUTime(), s.cpu.Rail().EnergyBetween(0, s.eng.Now())
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", t1, e1, t2, e2)
	}
}

func TestLivelockedProgramPanics(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic")
		}
	}()
	app.Spawn("bad", 0, ProgramFunc(func(env *Env) Action {
		return Send{Socket: -99, Bytes: 1} // would panic anyway, use sleep0
	}))
	// A program that never computes nor blocks:
	app2 := s.k.NewApp("b")
	sock := app2.OpenSocket()
	app2.Spawn("livelock", 0, ProgramFunc(func(env *Env) Action {
		return Send{Socket: sock, Bytes: 1}
	}))
	s.eng.RunFor(10 * sim.Millisecond)
}

func TestKillStopsTask(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	tk := app.Spawn("t", 0, Loop(Compute{Cycles: 1e6}))
	s.eng.RunFor(10 * sim.Millisecond)
	s.k.Kill(tk)
	base := tk.CPUTime()
	s.eng.RunFor(10 * sim.Millisecond)
	if tk.CPUTime() != base || !tk.Dead() {
		t.Fatal("killed task kept running")
	}
	s.k.Kill(tk) // idempotent
}

func TestCPUUsageRecorderSeesAllBusyTime(t *testing.T) {
	s := newTestSystem(t, false)
	var recorded sim.Duration
	s.k.SetCPUUsageRecorder(func(owner, core int, start, end sim.Time) {
		recorded += end.Sub(start)
	})
	app := s.k.NewApp("a")
	app.Spawn("t", 0, Loop(Compute{Cycles: 1.5e6}, Sleep{D: 1 * sim.Millisecond}))
	s.eng.RunFor(100 * sim.Millisecond)
	busy := app.CPUTime()
	if math.Abs(float64(recorded-busy)) > float64(sim.Millisecond) {
		t.Fatalf("recorded %v vs cpu time %v", recorded, busy)
	}
}

func TestTwoAppsShareCoreViaPrograms(t *testing.T) {
	s := newTestSystem(t, false)
	a := s.k.NewApp("a")
	b := s.k.NewApp("b")
	a.Spawn("t", 0, Loop(Compute{Cycles: 1e6}))
	b.Spawn("t", 0, Loop(Compute{Cycles: 1e6}))
	s.eng.RunFor(1 * sim.Second)
	ra := a.CPUTime().Seconds()
	rb := b.CPUTime().Seconds()
	if ra < 0.45 || ra > 0.55 || rb < 0.45 || rb > 0.55 {
		t.Fatalf("shares %v/%v", ra, rb)
	}
}

func TestAppValidation(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	if s.k.App(app.ID) != app {
		t.Fatal("App lookup failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown app should panic")
			}
		}()
		s.k.App(999)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown accel should panic")
			}
		}()
		s.k.Accel("npu")
	}()
}

func TestAppDemandAccounting(t *testing.T) {
	s := newTestSystem(t, false)
	app := s.k.NewApp("a")
	// Busy 2ms, sleep 8ms: demand ≈ busy time only (no contention).
	app.Spawn("t", 0, Loop(Compute{Cycles: 3e6}, Sleep{D: 8 * sim.Millisecond}))
	s.eng.RunFor(1 * sim.Second)
	demand := app.TotalDemand().Seconds()
	busy := app.CPUTime().Seconds()
	if demand < busy-0.01 || demand > busy+0.05 {
		t.Fatalf("uncontended demand %v should track busy %v", demand, busy)
	}
	// A pair of hogs on one core: each is always runnable (demand = wall
	// time) but executes only half of it.
	hogA := s.k.NewApp("hogA")
	ta := hogA.Spawn("h", 1, Loop(Compute{Cycles: 1e6}))
	hogB := s.k.NewApp("hogB")
	hogB.Spawn("h", 1, Loop(Compute{Cycles: 1e6}))
	s.eng.RunFor(1 * sim.Second)
	if d := hogA.TotalDemand().Seconds(); d < 0.99 {
		t.Fatalf("hog demand %v should be the full second", d)
	}
	if b := ta.CPUTime().Seconds(); b < 0.45 || b > 0.55 {
		t.Fatalf("hog busy %v should be about half", b)
	}
}

func TestAttachmentValidation(t *testing.T) {
	s := newTestSystem(t, false)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate accel should panic")
			}
		}()
		s.k.AttachAccel("gpu", s.gpu)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate NIC should panic")
			}
		}()
		s.k.AttachNet(s.net)
	}()
	if !s.k.HasAccel("gpu") || s.k.HasAccel("npu") {
		t.Fatal("HasAccel wrong")
	}
	if len(s.k.AccelNames()) != 1 {
		t.Fatal("AccelNames wrong")
	}
	if s.k.Engine() != s.eng || s.k.CPU() != s.cpu || s.k.Scheduler() == nil {
		t.Fatal("accessors wrong")
	}
}

func TestOpenSocketWithoutNICPanics(t *testing.T) {
	eng := sim.NewEngine()
	ccfg := cpu.DefaultConfig()
	k := New(eng, Config{CPU: cpu.MustNew(eng, ccfg), Seed: 1})
	app := k.NewApp("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	app.OpenSocket()
}

func TestAppsListedInOrder(t *testing.T) {
	s := newTestSystem(t, false)
	a := s.k.NewApp("first")
	b := s.k.NewApp("second")
	apps := s.k.Apps()
	if len(apps) != 2 || apps[0] != a || apps[1] != b {
		t.Fatalf("apps = %v", apps)
	}
}
