package accel

import (
	"testing"
	"testing/quick"

	"psbox/internal/hw/accelhw"
	"psbox/internal/sim"
)

// TestQuickWorkConservationWithBoxes: under random submit patterns and
// random box enter/leave, every submitted command eventually completes and
// total retired work matches total submitted work.
func TestQuickWorkConservationWithBoxes(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		fx := newFixture(t, devCfg())
		r := sim.NewRand(seed)
		submitted := map[int]float64{}
		// Random box membership for apps 1..3.
		for app := 1; app <= 3; app++ {
			if r.Intn(2) == 0 {
				fx.drv.BoxEnter(app)
			}
		}
		n := 0
		for _, v := range raw {
			if n >= 40 {
				break
			}
			n++
			app := int(v)%3 + 1
			work := float64(v%20) + 1
			at := sim.Duration(r.Intn(200)) * sim.Millisecond
			fx.eng.After(at, func(sim.Time) {
				submitted[app] += work
				fx.drv.Submit(app, &accelhw.Command{Kind: "k", Work: work, DynW: 0.2})
			})
		}
		// Random leave/enter churn.
		for i := 0; i < 4; i++ {
			app := r.Intn(3) + 1
			at := sim.Duration(50+r.Intn(150)) * sim.Millisecond
			if i%2 == 0 {
				fx.eng.After(at, func(sim.Time) { fx.drv.BoxLeave(app) })
			} else {
				fx.eng.After(at, func(sim.Time) { fx.drv.BoxEnter(app) })
			}
		}
		fx.eng.RunFor(5 * sim.Second)
		for app := 1; app <= 3; app++ {
			got := fx.drv.WorkDone(app)
			want := submitted[app]
			if got < want-1e-6 || got > want+1e-6 {
				return false
			}
			if fx.drv.Backlog(app) != 0 {
				return false
			}
		}
		return fx.dev.Busy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResidencyNeverOverlapsOthers: whenever a box is resident, the
// device holds only that box's commands, for random workloads.
func TestQuickResidencyNeverOverlapsOthers(t *testing.T) {
	f := func(seed uint64) bool {
		fx := newFixture(t, devCfg())
		r := sim.NewRand(seed)
		fx.drv.BoxEnter(1)
		fx.feeder(1, float64(3+r.Intn(10)), 2)
		fx.feeder(2, float64(5+r.Intn(15)), 3)
		ok := true
		resident := false
		fx.drv.cbs.BoxResident = func(app int, res bool) { resident = res }
		var poll func(sim.Time)
		poll = func(sim.Time) {
			if resident {
				for _, c := range fx.dev.InFlight() {
					if c.Owner != 1 {
						ok = false
					}
				}
			}
			fx.eng.After(200*sim.Microsecond, poll)
		}
		fx.eng.After(200*sim.Microsecond, poll)
		fx.eng.RunFor(1 * sim.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBoxLeaveInEveryPhase: tearing the sandbox down must be safe no
// matter which balloon phase it lands in.
func TestBoxLeaveInEveryPhase(t *testing.T) {
	for _, leaveAt := range []sim.Duration{
		0,                    // before anything dispatched
		1 * sim.Millisecond,  // drain-others (other's 20ms cmd in flight)
		25 * sim.Millisecond, // serve
		60 * sim.Millisecond, // after balloon closed
	} {
		fx := newFixture(t, devCfg())
		fx.submit(2, 20) // 20ms
		fx.drv.BoxEnter(1)
		fx.submit(1, 10)
		fx.eng.RunFor(leaveAt)
		fx.drv.BoxLeave(1)
		fx.eng.RunFor(2 * sim.Second)
		if fx.drv.Backlog(1) != 0 || fx.drv.Backlog(2) != 0 {
			t.Fatalf("leaveAt=%v: backlogs stuck", leaveAt)
		}
		if fx.drv.Phase() != PhaseNone {
			t.Fatalf("leaveAt=%v: phase %v", leaveAt, fx.drv.Phase())
		}
		// The system keeps working afterwards.
		fx.submit(1, 5)
		fx.submit(2, 5)
		fx.eng.RunFor(1 * sim.Second)
		if fx.drv.Backlog(1) != 0 || fx.drv.Backlog(2) != 0 {
			t.Fatalf("leaveAt=%v: post-leave service broken", leaveAt)
		}
	}
}

// TestReenterAfterLeave: the box can cycle enter/leave arbitrarily.
func TestReenterAfterLeave(t *testing.T) {
	fx := newFixture(t, devCfg())
	fx.feeder(1, 5, 2)
	fx.feeder(2, 5, 2)
	for i := 0; i < 10; i++ {
		fx.drv.BoxEnter(1)
		fx.eng.RunFor(50 * sim.Millisecond)
		fx.drv.BoxLeave(1)
		fx.eng.RunFor(50 * sim.Millisecond)
	}
	if fx.drv.WorkDone(1) == 0 || fx.drv.WorkDone(2) == 0 {
		t.Fatal("cycling stalled the device")
	}
}
