package accel

import (
	"fmt"
	"sort"

	"psbox/internal/hw/accelhw"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// WatchdogConfig tunes the kernel watchdog over one accelerator: the
// recovery path for wedged devices (a GPU ring that stops retiring
// commands, a DSP kernel stuck in an infinite loop).
type WatchdogConfig struct {
	// Timeout is the per-command execution deadline (the Linux DRM job
	// timeout, in spirit): if the oldest executing command has held its
	// slot this long without completing, the watchdog declares the device
	// hung, resets it, and resubmits the orphaned commands. It must exceed
	// the worst-case legitimate command latency, or healthy slow commands
	// will be reset in a livelock.
	Timeout sim.Duration

	// BackoffBase is the resubmission delay after a command's first abort;
	// it doubles per retry of the same command, capped at BackoffCap.
	BackoffBase sim.Duration
	BackoffCap  sim.Duration

	// MaxRetries bounds resubmissions per command; beyond it the command is
	// dropped (the app's backlog shrinks as if it completed, but nothing is
	// billed for it and no work is credited).
	MaxRetries int
}

// DefaultWatchdogConfig mirrors the conservative deadlines of real GPU
// job watchdogs: long enough that a slow command at the lowest operating
// point finishes comfortably, short enough that an app blocked on a
// wedged device recovers quickly.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		Timeout:     250 * sim.Millisecond,
		BackoffBase: 2 * sim.Millisecond,
		BackoffCap:  32 * sim.Millisecond,
		MaxRetries:  5,
	}
}

func (c WatchdogConfig) validate() error {
	if c.Timeout <= 0 {
		return fmt.Errorf("accel watchdog: Timeout must be positive")
	}
	if c.BackoffBase <= 0 || c.BackoffCap < c.BackoffBase {
		return fmt.Errorf("accel watchdog: need 0 < BackoffBase <= BackoffCap")
	}
	if c.MaxRetries < 1 {
		return fmt.Errorf("accel watchdog: MaxRetries must be at least 1")
	}
	return nil
}

// EnableWatchdog arms the execution-deadline watchdog. It may be called
// before any commands flow; a zero-config driver runs without one.
func (d *Driver) EnableWatchdog(cfg WatchdogConfig) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	d.wd = &cfg
	d.armWatchdog()
}

// WatchdogResets reports how many times the watchdog reset the device.
func (d *Driver) WatchdogResets() uint64 { return d.wdResets }

// Resubmits reports how many orphaned commands the watchdog requeued.
func (d *Driver) Resubmits() uint64 { return d.wdResubmits }

// DroppedCommands reports commands abandoned after exhausting MaxRetries.
func (d *Driver) DroppedCommands() uint64 { return d.wdDropped }

// feedWatchdog re-evaluates the watchdog deadline after a dispatch or a
// completion changed what is executing.
func (d *Driver) feedWatchdog() {
	d.armWatchdog()
}

// oldestExec returns the start time of the oldest executing command;
// ok=false when nothing is executing. (Ring entries have not started, but
// whenever the ring is non-empty something is executing ahead of it, so
// the oldest executing command covers them.)
func (d *Driver) oldestExec() (sim.Time, bool) {
	n := d.dev.Executing()
	if n == 0 {
		return 0, false
	}
	exec := d.dev.InFlight()[:n]
	oldest := exec[0].Started
	for _, c := range exec[1:] {
		if c.Started < oldest {
			oldest = c.Started
		}
	}
	return oldest, true
}

func (d *Driver) armWatchdog() {
	if d.wd == nil || d.wdArm != (sim.Handle{}) {
		return
	}
	oldest, ok := d.oldestExec()
	if !ok {
		return
	}
	d.wdArm = d.eng.At(oldest.Add(d.wd.Timeout), d.watchdogTick)
}

func (d *Driver) watchdogTick(now sim.Time) {
	d.wdArm = sim.Handle{}
	if d.wd == nil {
		return
	}
	oldest, ok := d.oldestExec()
	if !ok {
		return
	}
	if now.Sub(oldest) < d.wd.Timeout {
		// The command this deadline was armed for completed; track the new
		// oldest instead.
		d.armWatchdog()
		return
	}
	d.recoverDevice(now)
}

// recoverDevice is the watchdog bark: reset the wedged device, bill the
// wasted occupancy to the owning apps (a sandboxed owner pays for its own
// hang — retry energy is confined exactly like any other energy), and
// resubmit the orphaned commands with capped exponential backoff.
func (d *Driver) recoverDevice(now sim.Time) {
	aborted := d.dev.Reset()
	d.wdResets++
	d.bus.Instant(obs.CatAccel, "wd-reset", 0, int64(len(aborted)), d.dev.Config().Name, d.dev.Config().Name)
	d.bus.Count("accel.wd_resets", 0, d.dev.Config().Name, 1)
	touched := map[int]bool{}
	for _, cmd := range aborted {
		a := d.app(cmd.Owner)
		a.inflight--
		touched[cmd.Owner] = true
		// The slot-time the command held until the reset was burned for
		// nothing; charge it in the usual occupancy currency.
		a.vr += now.Sub(cmd.Dispatched).Seconds()
		cmd.Retries++
		if cmd.Retries > d.wd.MaxRetries {
			d.wdDropped++
			d.bus.Instant(obs.CatAccel, "wd-drop", cmd.Owner, int64(cmd.ID), d.dev.Config().Name, cmd.Kind)
			d.bus.Count("accel.wd_dropped", cmd.Owner, d.dev.Config().Name, 1)
			continue
		}
		backoff := backoffFor(cmd.Retries, d.wd.BackoffBase, d.wd.BackoffCap)
		d.wdResubmits++
		d.bus.Instant(obs.CatAccel, "wd-resubmit", cmd.Owner, int64(cmd.ID), d.dev.Config().Name, cmd.Kind)
		d.bus.Count("accel.wd_resubmits", cmd.Owner, d.dev.Config().Name, 1)
		cc := cmd
		d.eng.After(backoff, func(sim.Time) { d.requeue(cc) })
	}
	d.pump()
	if d.cbs.BacklogChange != nil {
		owners := make([]int, 0, len(touched))
		for id := range touched {
			owners = append(owners, id)
		}
		sort.Ints(owners)
		for _, id := range owners {
			d.cbs.BacklogChange(id)
		}
	}
	d.armWatchdog()
}

// backoffFor is the resubmission delay schedule: the first retry waits
// base, each further retry doubles it, capped at limit. The schedule is
// part of the deterministic replay surface — the golden-sequence test
// pins it, since any change shifts every requeue event in every trace.
func backoffFor(retries int, base, limit sim.Duration) sim.Duration {
	backoff := base
	for r := 1; r < retries && backoff < limit; r++ {
		backoff *= 2
	}
	if backoff > limit {
		backoff = limit
	}
	return backoff
}

// requeue returns an aborted command to its owner's pending queue once its
// backoff expires, in original submission (ID) order so retried commands do
// not jump ahead of their successors.
func (d *Driver) requeue(cmd *accelhw.Command) {
	a := d.app(cmd.Owner)
	i := 0
	for i < len(a.pending) && a.pending[i].ID < cmd.ID {
		i++
	}
	a.pending = append(a.pending, nil)
	copy(a.pending[i+1:], a.pending[i:])
	a.pending[i] = cmd
	d.pump()
}
