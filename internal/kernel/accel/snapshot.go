package accel

import (
	"sort"

	"psbox/internal/snapshot"
)

func (a *appState) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(a.id))
	enc.F64(a.vr)
	enc.Bool(a.boxed)
	enc.I64(int64(a.state.FreqIdx))
	enc.U64(a.completed)
	enc.F64(a.workDone)
	enc.I64(int64(a.latencySum))
	enc.U64(a.latencyN)
	enc.I64(int64(a.inflight))
	enc.Len(len(a.pending))
	for _, c := range a.pending {
		c.Snapshot(enc)
	}
}

// Snapshot encodes the driver: balloon phase machine, credit floor,
// watchdog state, and every app's credit, backlog and virtual power
// state (sorted by app ID).
func (d *Driver) Snapshot(enc *snapshot.Encoder) {
	enc.U8(uint8(d.phase))
	if d.activeBox == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(d.activeBox.id))
	}
	enc.I64(int64(d.othersState.FreqIdx))
	enc.I64(int64(d.lastBill))
	enc.U64(d.graceArm.Seq())
	enc.F64(d.minVrFloor)
	enc.U64(d.nextCmdID)
	enc.Bool(d.wd != nil)
	if d.wd != nil {
		enc.I64(int64(d.wd.Timeout))
		enc.I64(int64(d.wd.BackoffBase))
		enc.I64(int64(d.wd.BackoffCap))
		enc.I64(int64(d.wd.MaxRetries))
	}
	enc.U64(d.wdArm.Seq())
	enc.U64(d.wdResets)
	enc.U64(d.wdResubmits)
	enc.U64(d.wdDropped)
	enc.Bool(d.BillDrainIdleOnly)
	ids := make([]int, 0, len(d.apps))
	for id := range d.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		d.apps[id].snapshot(enc)
	}
}

// Restore verifies the live driver against a checkpoint section.
func (d *Driver) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, d.Snapshot) }
