package accel

import (
	"testing"

	"psbox/internal/sim"
)

// TestBackoffGoldenSchedule pins the watchdog's resubmission delays for
// the default config: 2 ms doubling to a 32 ms ceiling. These delays
// position every requeue event in the engine's queue, so the sequence is
// part of the deterministic replay surface — a change here invalidates
// every trace and checkpoint golden in the repo.
func TestBackoffGoldenSchedule(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	want := []sim.Duration{
		2 * sim.Millisecond,  // retry 1
		4 * sim.Millisecond,  // retry 2
		8 * sim.Millisecond,  // retry 3
		16 * sim.Millisecond, // retry 4
		32 * sim.Millisecond, // retry 5
		32 * sim.Millisecond, // retry 6: capped
		32 * sim.Millisecond, // retry 7: stays capped
	}
	for i, w := range want {
		if got := backoffFor(i+1, cfg.BackoffBase, cfg.BackoffCap); got != w {
			t.Errorf("retry %d: backoff %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffProperties(t *testing.T) {
	base, limit := 3*sim.Millisecond, 20*sim.Millisecond
	prev := sim.Duration(0)
	for retry := 1; retry <= 10; retry++ {
		got := backoffFor(retry, base, limit)
		if got < base || got > limit {
			t.Errorf("retry %d: backoff %v outside [%v, %v]", retry, got, base, limit)
		}
		if got < prev {
			t.Errorf("retry %d: backoff %v shrank from %v", retry, got, prev)
		}
		prev = got
	}
	// A non-power-of-two cap still truncates exactly at the cap.
	if got := backoffFor(4, base, limit); got != limit {
		t.Errorf("capped backoff = %v, want the 20 ms cap (3→6→12→24 overshoots)", got)
	}
	// Retry 0 and negative retries behave like the first retry: base.
	for _, r := range []int{0, -1} {
		if got := backoffFor(r, base, limit); got != base {
			t.Errorf("retry %d: backoff %v, want base %v", r, got, base)
		}
	}
}
