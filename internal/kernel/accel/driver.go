// Package accel implements the kernel-side accelerator driver of §4.2: a
// fair (CFS-in-spirit) command scheduler over an asynchronous device,
// augmented with psbox temporal resource balloons realized as the paper's
// five-phase protocol — drain-others, flush-psbox, serve-psbox,
// drain-psbox, flush-others — with the lost sharing opportunity billed to
// the sandboxed app and the device's operating power state virtualized per
// sandbox.
package accel

import (
	"fmt"
	"sort"

	"psbox/internal/hw/accelhw"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Phase is the temporal-balloon phase the driver is in.
type Phase int

const (
	// PhaseNone: no balloon active; ordinary fair multiplexing.
	PhaseNone Phase = iota
	// PhaseDrainOthers: holding back all requests until in-flight commands
	// of other apps complete (§4.2 phase 1).
	PhaseDrainOthers
	// PhaseServe: flushing and serving the sandboxed app exclusively
	// (§4.2 phases 2–3).
	PhaseServe
	// PhaseDrainBox: draining the sandboxed app's outstanding commands
	// before handing the device back (§4.2 phase 4; phase 5, flushing
	// others, happens at the transition out).
	PhaseDrainBox
)

func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseDrainOthers:
		return "drain-others"
	case PhaseServe:
		return "serve"
	case PhaseDrainBox:
		return "drain-box"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Callbacks connect the driver to the kernel and the psbox layer. All may
// be nil.
type Callbacks struct {
	// BacklogChange fires whenever an app's backlog (pending + in-flight)
	// may have shrunk; the kernel re-checks tasks waiting on the device.
	BacklogChange func(appID int)
	// BoxResident fires when a sandbox's exclusive service span begins or
	// ends; the psbox virtual meter reads the device rail only inside it.
	BoxResident func(appID int, resident bool)
	// Usage reports one command's execution span for accounting (the
	// baseline comparator consumes these).
	Usage func(owner int, start, end sim.Time)
}

type appState struct {
	id       int
	vr       float64 // scheduling credit: slot-seconds of device usage
	pending  []*accelhw.Command
	inflight int
	boxed    bool
	state    accelhw.FreqState // virtual power state while boxed

	completed  uint64
	workDone   float64
	latencySum sim.Duration
	latencyN   uint64
}

// graceDelay bounds how long a credit-ineligible sandbox waits for
// momentarily idle competitors before its balloon may open anyway. Without
// this gate a balloon would open in every sub-millisecond gap between
// serial competitors' requests, and the whole-device billing could never
// space balloons out — the confinement of §6.3 would collapse.
const graceDelay = 2 * sim.Millisecond

// Driver multiplexes apps over one accelerator device.
type Driver struct {
	eng *sim.Engine
	dev *accelhw.Device
	//psbox:allow-snapshotstate wiring: callback closures installed at construction
	cbs  Callbacks
	apps map[int]*appState

	phase       Phase
	activeBox   *appState
	othersState accelhw.FreqState
	lastBill    sim.Time
	graceArm    sim.Handle

	minVrFloor float64
	nextCmdID  uint64

	// Watchdog state (nil wd: disabled). The deadline is per executing
	// command: the oldest one must complete within wd.Timeout of starting.
	wd          *WatchdogConfig
	wdArm       sim.Handle
	wdResets    uint64
	wdResubmits uint64
	wdDropped   uint64

	// BillDrainIdleOnly switches drain-others billing to the paper's
	// literal "unutilized portion" rule; see settleBalloonBill. Exposed
	// for the ablation bench.
	BillDrainIdleOnly bool

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes the driver's trace events and metrics to a bus. Command
// spans carry the device rail name so they join with meter samples.
func (d *Driver) SetBus(b *obs.Bus) { d.bus = b }

// phaseKinds pre-renders the phase-instant kinds so emission never
// formats strings.
var phaseKinds = [...]string{"phase-none", "phase-drain-others", "phase-serve", "phase-drain-box"}

// setPhase is the single phase-transition choke point: every balloon
// phase change emits one instant carrying the new phase.
func (d *Driver) setPhase(p Phase) {
	if d.phase == p {
		return
	}
	d.phase = p
	owner := 0
	if d.activeBox != nil {
		owner = d.activeBox.id
	}
	d.bus.Instant(obs.CatAccel, phaseKinds[p], owner, int64(p), d.dev.Config().Name, d.dev.Config().Name)
}

// New wires a driver to dev and installs its completion interrupt handler.
func New(eng *sim.Engine, dev *accelhw.Device, cbs Callbacks) *Driver {
	d := &Driver{
		eng:  eng,
		dev:  dev,
		cbs:  cbs,
		apps: make(map[int]*appState),
	}
	dev.OnComplete(d.onComplete)
	return d
}

// Device exposes the underlying hardware model.
func (d *Driver) Device() *accelhw.Device { return d.dev }

// Callbacks returns the currently installed callbacks.
func (d *Driver) Callbacks() Callbacks { return d.cbs }

// SetCallbacks replaces the driver's callbacks; the kernel uses this to
// interpose its own routing when the driver is attached.
func (d *Driver) SetCallbacks(cbs Callbacks) { d.cbs = cbs }

// SetUsage installs just the usage recorder, preserving other callbacks.
func (d *Driver) SetUsage(fn func(owner int, start, end sim.Time)) { d.cbs.Usage = fn }

// Phase reports the current balloon phase.
func (d *Driver) Phase() Phase { return d.phase }

func (d *Driver) app(id int) *appState {
	a, ok := d.apps[id]
	if !ok {
		a = &appState{id: id, vr: d.minVrFloor, state: accelhw.FreqState{FreqIdx: d.dev.Config().InitialFreqIdx}}
		d.apps[id] = a
	}
	return a
}

// Submit hands a command to the driver on behalf of app owner. Kind, Work
// and DynW must be set by the caller; the driver assigns the ID and
// timestamps.
func (d *Driver) Submit(owner int, cmd *accelhw.Command) {
	if cmd.Work <= 0 {
		panic(fmt.Sprintf("accel %s: submit with non-positive work", d.dev.Config().Name))
	}
	d.nextCmdID++
	cmd.ID = d.nextCmdID
	cmd.Owner = owner
	cmd.Submitted = d.eng.Now()
	d.bus.Instant(obs.CatAccel, "submit", owner, int64(cmd.ID), d.dev.Config().Name, cmd.Kind)
	d.bus.Count("accel.submitted", owner, d.dev.Config().Name, 1)
	a := d.app(owner)
	if len(a.pending) == 0 && a.inflight == 0 {
		// Returning from idle: no credit hoarding (cf. CFS min_vruntime).
		if a.vr < d.minVrFloor {
			a.vr = d.minVrFloor
		}
	}
	a.pending = append(a.pending, cmd)
	d.pump()
}

// Backlog reports an app's pending plus in-flight command count.
func (d *Driver) Backlog(appID int) int {
	a, ok := d.apps[appID]
	if !ok {
		return 0
	}
	return len(a.pending) + a.inflight
}

// Completed reports how many commands an app has retired.
func (d *Driver) Completed(appID int) uint64 {
	if a, ok := d.apps[appID]; ok {
		return a.completed
	}
	return 0
}

// WorkDone reports the total work units an app has retired.
func (d *Driver) WorkDone(appID int) float64 {
	if a, ok := d.apps[appID]; ok {
		return a.workDone
	}
	return 0
}

// MeanDispatchLatency reports an app's mean submit→dispatch latency — the
// §6.2 command-dispatch latency metric. Zero appID aggregates all apps.
func (d *Driver) MeanDispatchLatency(appID int) sim.Duration {
	var sum sim.Duration
	var n uint64
	for id, a := range d.apps {
		if appID != 0 && id != appID {
			continue
		}
		sum += a.latencySum
		n += a.latencyN
	}
	if n == 0 {
		return 0
	}
	return sim.Duration(int64(sum) / int64(n))
}

// VRuntime exposes an app's scheduling credit for tests and traces.
func (d *Driver) VRuntime(appID int) float64 {
	if a, ok := d.apps[appID]; ok {
		return a.vr
	}
	return 0
}

// BoxEnter encloses an app: from now on its commands execute only inside
// temporal balloons, and the device's operating power state is virtualized
// for it, starting from the device's initial (cold) operating point.
func (d *Driver) BoxEnter(appID int) {
	a := d.app(appID)
	if a.boxed {
		return
	}
	a.boxed = true
	a.state = accelhw.FreqState{FreqIdx: d.dev.Config().InitialFreqIdx}
	d.pump()
}

// BoxLeave dissolves an app's sandbox on this device. If its balloon is
// active it is torn down; in-flight commands finish as ordinary work.
func (d *Driver) BoxLeave(appID int) {
	a, ok := d.apps[appID]
	if !ok || !a.boxed {
		return
	}
	if d.activeBox == a {
		d.settleBalloonBill()
		if d.phase == PhaseServe || d.phase == PhaseDrainBox {
			a.state = d.dev.State()
			d.dev.Restore(d.othersState)
			if d.cbs.BoxResident != nil {
				d.cbs.BoxResident(appID, false)
			}
		}
		d.setPhase(PhaseNone)
		d.activeBox = nil
	}
	a.boxed = false
	d.pump()
}

// onComplete is the device interrupt handler.
func (d *Driver) onComplete(cmd *accelhw.Command) {
	d.feedWatchdog()
	a := d.app(cmd.Owner)
	a.inflight--
	a.completed++
	a.workDone += cmd.Work
	d.bus.Span(obs.CatAccel, "exec", cmd.Owner, int64(cmd.ID), d.dev.Config().Name, cmd.Kind, cmd.Started)
	d.bus.Count("accel.completed", cmd.Owner, d.dev.Config().Name, 1)
	if d.cbs.Usage != nil {
		// The baseline comparator gets execution spans (ring wait
		// excluded): the paper implements the prior accounting mechanism
		// "favorably", tracking usage at the lowest software level.
		d.cbs.Usage(cmd.Owner, cmd.Started, cmd.Completed)
	}
	// Ordinary billing: an app pays for its own occupancy. Inside balloon
	// phases 2–4 the sandboxed app pays wall-clock for the whole device
	// instead (settleBalloonBill), so its own completions bill nothing
	// extra here.
	if !(d.activeBox == a && (d.phase == PhaseServe || d.phase == PhaseDrainBox)) {
		a.vr += cmd.Completed.Sub(cmd.Dispatched).Seconds()
	}
	d.pump()
	if d.cbs.BacklogChange != nil {
		d.cbs.BacklogChange(cmd.Owner)
	}
}

// refreshFloor advances the newcomer credit floor to the minimum credit of
// unboxed apps that currently compete. Boxed apps are excluded: their
// credit is inflated by balloon billing, and letting it drag the floor up
// would catapult returning apps past them — erasing the very charge that
// confines the sandbox's cost.
func (d *Driver) refreshFloor() {
	min := -1.0
	for _, a := range d.apps {
		if a.boxed || (len(a.pending) == 0 && a.inflight == 0) {
			continue
		}
		if min < 0 || a.vr < min {
			min = a.vr
		}
	}
	if min > d.minVrFloor {
		d.minVrFloor = min
	}
}

// pickPending returns the minimum-credit app with pending commands,
// optionally restricted to boxed/unboxed apps. Ties break by app ID for
// determinism.
func (d *Driver) pickPending(boxed bool) *appState {
	ids := make([]int, 0, len(d.apps))
	for id := range d.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var best *appState
	for _, id := range ids {
		a := d.apps[id]
		if a.boxed != boxed || len(a.pending) == 0 {
			continue
		}
		if best == nil || a.vr < best.vr {
			best = a
		}
	}
	return best
}

// minOtherCredit reports the minimum credit among non-box apps with
// demand; ok=false when none compete.
func (d *Driver) minOtherCredit() (float64, bool) {
	var min float64
	found := false
	for _, a := range d.apps {
		if a == d.activeBox || len(a.pending) == 0 && a.inflight == 0 {
			continue
		}
		if !found || a.vr < min {
			min = a.vr
			found = true
		}
	}
	return min, found
}

// settleBalloonBill charges balloon wall-time to the sandboxed app since
// the last settlement: the entire device during serve/drain-box (§4.2:
// "bills the usage of entire accelerator to App"), and — by default — the
// entire device during drain-others as well. The paper bills only the
// *unutilized* portion during draining; we deliberately over-approximate
// it to the full device because the driver only observes utilization at
// completion events, and because the stronger charge is what makes the
// §6.3 confinement robust. BillDrainIdleOnly selects the paper's literal
// rule for the ablation study.
func (d *Driver) settleBalloonBill() {
	now := d.eng.Now()
	dt := now.Sub(d.lastBill).Seconds()
	d.lastBill = now
	if dt <= 0 || d.activeBox == nil {
		return
	}
	width := d.dev.ExecWidth()
	switch d.phase {
	case PhaseDrainOthers:
		n := width
		if d.BillDrainIdleOnly {
			n = width - d.dev.Executing()
		}
		if n > 0 {
			d.activeBox.vr += float64(n) * dt
		}
	case PhaseServe, PhaseDrainBox:
		d.activeBox.vr += float64(width) * dt
	}
}

// dispatch sends one pending command of a to the device.
func (d *Driver) dispatch(a *appState) {
	cmd := a.pending[0]
	a.pending = a.pending[1:]
	a.inflight++
	d.dev.Dispatch(cmd)
	a.latencySum += cmd.Dispatched.Sub(cmd.Submitted)
	a.latencyN++
	d.bus.Instant(obs.CatAccel, "dispatch", cmd.Owner, int64(cmd.ID), d.dev.Config().Name, cmd.Kind)
	d.bus.Observe("accel.dispatch_latency", cmd.Owner, d.dev.Config().Name, cmd.Dispatched.Sub(cmd.Submitted))
	d.feedWatchdog()
}

// pump advances the driver's scheduling state machine. It is invoked after
// every submit, completion, and box transition.
func (d *Driver) pump() {
	d.settleBalloonBill()
	d.refreshFloor()
	switch d.phase {
	case PhaseNone:
		d.pumpNone()
	case PhaseDrainOthers:
		if d.dev.Busy() == 0 {
			d.beginServe()
		}
	case PhaseServe:
		d.pumpServe()
	case PhaseDrainBox:
		if d.activeBox.inflight == 0 {
			d.closeBalloon()
		}
	}
}

func (d *Driver) pumpNone() {
	// Work-conserving fair multiplexing: whenever the device can accept a
	// command (execution slot or ring entry), dispatch from the
	// minimum-credit app. Commands of different apps freely overlap and
	// queue behind each other in the hardware ring — exactly the Fig. 3(b)
	// entanglement and the §6.3 "excessive draining time" that balloons
	// must later pay for.
	for d.dev.FreeSlots() > 0 {
		other := d.pickPending(false)
		box := d.pickPending(true)
		// Fair choice among principals; a sandboxed app competes with its
		// balloon-inclusive credit.
		if box != nil && (other == nil || box.vr <= other.vr) {
			if other == nil && !d.boxDeserves(box) {
				// Competitors are between requests but ahead on credit:
				// hold the balloon back (briefly) rather than seizing the
				// device and making their next requests eat a drain.
				d.armGrace()
			} else {
				d.openBalloon(box)
				return
			}
		}
		if other == nil {
			return
		}
		d.dispatch(other)
	}
}

// boxDeserves reports whether the sandbox's credit is minimal among all
// known apps, demand or not.
func (d *Driver) boxDeserves(box *appState) bool {
	for _, a := range d.apps {
		if a == box || a.boxed {
			continue
		}
		if box.vr > a.vr {
			return false
		}
	}
	return true
}

// armGrace schedules the starvation backstop: if nobody else has produced
// demand by then, the waiting sandbox gets the device regardless of credit.
func (d *Driver) armGrace() {
	if d.graceArm != (sim.Handle{}) {
		return
	}
	d.graceArm = d.eng.After(graceDelay, func(sim.Time) {
		d.graceArm = sim.Handle{}
		if d.phase != PhaseNone {
			return
		}
		box := d.pickPending(true)
		if box == nil {
			return
		}
		// Competitors woke up in the meantime (pending or still executing):
		// their next completion or submission re-drives admission; the
		// backstop only covers a fully silent device.
		for _, a := range d.apps {
			if a != box && !a.boxed && (len(a.pending) > 0 || a.inflight > 0) {
				d.pump()
				return
			}
		}
		d.openBalloon(box)
	})
}

func (d *Driver) openBalloon(a *appState) {
	d.activeBox = a
	d.lastBill = d.eng.Now()
	if d.dev.Busy() == 0 {
		d.beginServe()
		return
	}
	d.setPhase(PhaseDrainOthers) // phase 1: hold everything back
}

func (d *Driver) beginServe() {
	d.settleBalloonBill()
	d.setPhase(PhaseServe)
	// Power-state virtualization (§4.1): stash the shared state, restore
	// the sandbox's own operating point.
	d.othersState = d.dev.State()
	d.dev.Restore(d.activeBox.state)
	if d.cbs.BoxResident != nil {
		d.cbs.BoxResident(d.activeBox.id, true)
	}
	d.pumpServe()
}

func (d *Driver) pumpServe() {
	a := d.activeBox
	// Phase 2–3: flush the sandbox's backlog and serve it exclusively.
	for d.dev.FreeSlots() > 0 && len(a.pending) > 0 {
		d.dispatch(a)
	}
	if len(a.pending) == 0 && a.inflight == 0 {
		// The sandbox went idle: pay-as-you-go says hand the device back.
		d.closeBalloon()
		return
	}
	// Phase 4 trigger: the scheduling policy decides others deserve the
	// device once the sandbox's credit is no longer minimal.
	if min, ok := d.minOtherCredit(); ok && a.vr > min {
		d.setPhase(PhaseDrainBox)
		if a.inflight == 0 {
			d.closeBalloon()
		}
	}
}

// closeBalloon is the phase-5 transition: save the sandbox's virtual power
// state, restore the shared one, end residency, and flush others.
func (d *Driver) closeBalloon() {
	d.settleBalloonBill()
	a := d.activeBox
	a.state = d.dev.State()
	d.dev.Restore(d.othersState)
	d.setPhase(PhaseNone)
	d.activeBox = nil
	if d.cbs.BoxResident != nil {
		d.cbs.BoxResident(a.id, false)
	}
	d.pumpNone()
}
