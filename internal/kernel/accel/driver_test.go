package accel

import (
	"testing"

	"psbox/internal/hw/accelhw"
	"psbox/internal/sim"
)

func devCfg() accelhw.Config {
	return accelhw.Config{
		Name:            "dev",
		Slots:           2,
		FreqsMHz:        []float64{1000},
		WorkPerSecAtTop: 1000, // 1 work unit per ms per slot
		ShareFactor:     1.0,  // no contention stretch: easy arithmetic
		IdleW:           0.25,
		InitialFreqIdx:  0,
	}
}

type fixture struct {
	eng *sim.Engine
	dev *accelhw.Device
	drv *Driver

	resident map[int]bool
	usage    []struct {
		owner      int
		start, end sim.Time
	}
}

func newFixture(t *testing.T, cfg accelhw.Config) *fixture {
	f := &fixture{eng: sim.NewEngine(), resident: map[int]bool{}}
	f.dev = accelhw.MustNew(f.eng, cfg)
	f.drv = New(f.eng, f.dev, Callbacks{
		BoxResident: func(app int, r bool) { f.resident[app] = r },
		Usage: func(owner int, s, e sim.Time) {
			f.usage = append(f.usage, struct {
				owner      int
				start, end sim.Time
			}{owner, s, e})
		},
	})
	return f
}

func (f *fixture) submit(owner int, work float64) {
	f.drv.Submit(owner, &accelhw.Command{Kind: "k", Work: work, DynW: 0.5})
}

// feeder keeps an app's backlog topped up to depth, modelling a saturating
// workload.
func (f *fixture) feeder(owner int, work float64, depth int) {
	var top func(sim.Time)
	top = func(sim.Time) {
		for f.drv.Backlog(owner) < depth {
			f.submit(owner, work)
		}
		f.eng.After(500*sim.Microsecond, top)
	}
	top(0)
}

func TestSingleAppDispatchesImmediately(t *testing.T) {
	f := newFixture(t, devCfg())
	f.submit(1, 10)
	if f.dev.Busy() != 1 {
		t.Fatal("command not dispatched")
	}
	f.eng.RunFor(15 * sim.Millisecond)
	if f.drv.Completed(1) != 1 || f.drv.WorkDone(1) != 10 {
		t.Fatalf("completed=%d work=%v", f.drv.Completed(1), f.drv.WorkDone(1))
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatal("backlog should be empty")
	}
}

func TestUnboxedAppsInterleave(t *testing.T) {
	// Without psbox the driver is work-conserving: two apps' commands
	// overlap on the device — the very entanglement of Fig. 3(b).
	f := newFixture(t, devCfg())
	f.submit(1, 50)
	f.submit(2, 50)
	if f.dev.Busy() != 2 {
		t.Fatalf("busy = %d, both apps should be in flight", f.dev.Busy())
	}
	owners := map[int]bool{}
	for _, c := range f.dev.InFlight() {
		owners[c.Owner] = true
	}
	if !owners[1] || !owners[2] {
		t.Fatal("both owners should be in flight")
	}
	f.eng.RunFor(sim.Duration(sim.Second))
}

func TestFairSharingByCredit(t *testing.T) {
	f := newFixture(t, devCfg())
	f.feeder(1, 10, 4)
	f.feeder(2, 10, 4)
	f.eng.RunFor(2 * sim.Second)
	w1, w2 := f.drv.WorkDone(1), f.drv.WorkDone(2)
	ratio := w1 / w2
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("work split %v vs %v", w1, w2)
	}
}

func TestBoxedAppNeverOverlapsOthers(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.BoxEnter(1)
	f.feeder(1, 5, 3)
	f.feeder(2, 8, 3)
	f.feeder(3, 12, 3)
	overlap := 0
	var poll func(sim.Time)
	poll = func(sim.Time) {
		hasBox, hasOther := false, false
		for _, c := range f.dev.InFlight() {
			if c.Owner == 1 {
				hasBox = true
			} else {
				hasOther = true
			}
		}
		if hasBox && hasOther {
			overlap++
		}
		f.eng.After(100*sim.Microsecond, poll)
	}
	f.eng.After(100*sim.Microsecond, poll)
	f.eng.RunFor(2 * sim.Second)
	if overlap != 0 {
		t.Fatalf("boxed commands overlapped others at %d instants", overlap)
	}
	if f.drv.WorkDone(1) == 0 || f.drv.WorkDone(2) == 0 || f.drv.WorkDone(3) == 0 {
		t.Fatal("all apps should make progress")
	}
}

func TestResidencyBracketsBoxService(t *testing.T) {
	f := newFixture(t, devCfg())
	f.submit(2, 20) // other app's long command in flight
	f.drv.BoxEnter(1)
	f.submit(1, 5)
	// Balloon opens: drain-others first.
	if f.drv.Phase() != PhaseDrainOthers {
		t.Fatalf("phase = %v, want drain-others", f.drv.Phase())
	}
	if f.resident[1] {
		t.Fatal("resident before drain completed")
	}
	f.eng.RunFor(21 * sim.Millisecond) // other command (20ms) drains
	if !f.resident[1] && f.drv.Phase() != PhaseNone {
		t.Fatalf("after drain: phase=%v resident=%v", f.drv.Phase(), f.resident[1])
	}
	f.eng.RunFor(10 * sim.Millisecond)
	// Box command (5ms) done, box idle → balloon closed.
	if f.resident[1] {
		t.Fatal("residency should end when the box goes idle")
	}
	if f.drv.Completed(1) != 1 {
		t.Fatal("box command should have completed")
	}
}

func TestDrainBillsIdleSlotsToBox(t *testing.T) {
	f := newFixture(t, devCfg())
	f.submit(2, 20) // 20ms on one slot; the other slot idles during drain
	f.drv.BoxEnter(1)
	f.submit(1, 1)
	vrBefore := f.drv.VRuntime(1)
	f.eng.RunFor(25 * sim.Millisecond)
	// During the 20ms drain one slot was idle → ≥0.020 slot-seconds billed
	// to the box, plus whole-device billing while serving.
	gained := f.drv.VRuntime(1) - vrBefore
	if gained < 0.020 {
		t.Fatalf("box billed only %v slot-seconds", gained)
	}
}

func TestConfinementUnderExtremeContention(t *testing.T) {
	// §6.3 robustness: a light boxed app (browser) co-runs with a
	// saturating one (triangle). The boxed app's throughput collapses
	// (drain overhead) while the saturating app keeps nearly all of its
	// solo throughput.
	cfg := devCfg()
	run := func(boxed bool) (browser, triangle float64) {
		f := newFixture(t, cfg)
		if boxed {
			f.drv.BoxEnter(1)
		}
		// Browser: a short command every 3 ms (light).
		var tick func(sim.Time)
		tick = func(sim.Time) {
			if f.drv.Backlog(1) < 2 {
				f.submit(1, 1)
			}
			f.eng.After(3*sim.Millisecond, tick)
		}
		tick(0)
		// Triangle: long saturating commands.
		f.feeder(2, 30, 4)
		f.eng.RunFor(3 * sim.Second)
		return f.drv.WorkDone(1), f.drv.WorkDone(2)
	}
	b0, t0 := run(false)
	b1, t1 := run(true)
	if b1 >= b0 {
		t.Fatalf("boxed browser should lose throughput: %v → %v", b0, b1)
	}
	lossTriangle := 1 - t1/t0
	if lossTriangle > 0.05 {
		t.Fatalf("triangle lost %.1f%% — not confined", lossTriangle*100)
	}
}

func TestStateVirtualizationPerBox(t *testing.T) {
	cfg := devCfg()
	cfg.FreqsMHz = []float64{500, 1000}
	cfg.InitialFreqIdx = 0
	f := newFixture(t, cfg)
	f.drv.BoxEnter(1)
	// Others crank the device to the top operating point.
	f.dev.Restore(accelhw.FreqState{FreqIdx: 1})
	f.submit(2, 100)
	f.eng.RunFor(200 * sim.Millisecond)
	if f.dev.FreqIdx() != 1 {
		t.Fatal("setup: others should be at top frequency")
	}
	// The box's first service starts from its own virtual state (cold),
	// not the lingering one — eliminating Fig. 3(c) on the accelerator.
	f.submit(1, 1)
	if f.dev.FreqIdx() != 0 {
		t.Fatalf("device freq %d during box service, want the box's virtual 0", f.dev.FreqIdx())
	}
	f.eng.RunFor(10 * sim.Millisecond)
	// After the balloon closes, the shared state is restored.
	if f.dev.FreqIdx() != 1 {
		t.Fatalf("shared state not restored: freq %d", f.dev.FreqIdx())
	}
}

func TestDispatchLatencyGrowsWithBalloons(t *testing.T) {
	cfg := devCfg()
	run := func(boxed bool) sim.Duration {
		f := newFixture(t, cfg)
		if boxed {
			f.drv.BoxEnter(1)
		}
		var tick func(sim.Time)
		tick = func(sim.Time) {
			if f.drv.Backlog(1) < 2 {
				f.submit(1, 1)
			}
			f.eng.After(5*sim.Millisecond, tick)
		}
		tick(0)
		f.feeder(2, 15, 3)
		f.eng.RunFor(2 * sim.Second)
		return f.drv.MeanDispatchLatency(1)
	}
	unboxed, boxed := run(false), run(true)
	if boxed <= unboxed {
		t.Fatalf("boxed dispatch latency %v should exceed unboxed %v", boxed, unboxed)
	}
}

func TestBoxLeaveMidServiceRestoresSharing(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.BoxEnter(1)
	f.submit(1, 50)
	if f.drv.Phase() != PhaseServe {
		t.Fatalf("phase = %v", f.drv.Phase())
	}
	f.eng.RunFor(5 * sim.Millisecond)
	f.drv.BoxLeave(1)
	if f.drv.Phase() != PhaseNone || f.resident[1] {
		t.Fatal("leave should tear down the balloon")
	}
	f.submit(2, 10)
	if f.dev.Busy() != 2 {
		t.Fatal("after leave, commands should interleave again")
	}
	f.eng.RunFor(sim.Duration(sim.Second))
}

func TestBoxLeaveDuringDrainOthers(t *testing.T) {
	f := newFixture(t, devCfg())
	f.submit(2, 20)
	f.drv.BoxEnter(1)
	f.submit(1, 5)
	if f.drv.Phase() != PhaseDrainOthers {
		t.Fatal("setup: want drain-others")
	}
	f.drv.BoxLeave(1)
	if f.drv.Phase() != PhaseNone {
		t.Fatal("leave should cancel the pending balloon")
	}
	if f.dev.Busy() != 2 {
		t.Fatal("the ex-box command should dispatch normally now")
	}
	f.eng.RunFor(sim.Duration(sim.Second))
}

func TestUsageCallbackSpans(t *testing.T) {
	f := newFixture(t, devCfg())
	f.submit(1, 10)
	f.eng.RunFor(15 * sim.Millisecond)
	if len(f.usage) != 1 {
		t.Fatalf("usage records = %d", len(f.usage))
	}
	u := f.usage[0]
	if u.owner != 1 || u.end.Sub(u.start) != 10*sim.Millisecond {
		t.Fatalf("usage = %+v", u)
	}
}

func TestBacklogChangeCallback(t *testing.T) {
	f := newFixture(t, devCfg())
	var changes []int
	f.drv.cbs.BacklogChange = func(app int) { changes = append(changes, app) }
	f.submit(1, 5)
	f.submit(1, 5)
	f.eng.RunFor(50 * sim.Millisecond)
	if len(changes) != 2 {
		t.Fatalf("backlog changes = %v", changes)
	}
}

func TestSubmitZeroWorkPanics(t *testing.T) {
	f := newFixture(t, devCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.submit(1, 0)
}

func TestNewcomerGetsNoCreditHoard(t *testing.T) {
	f := newFixture(t, devCfg())
	f.feeder(1, 10, 4)
	f.eng.RunFor(1 * sim.Second)
	// App 2 arrives late; it must not starve app 1 by replaying the past.
	f.feeder(2, 10, 4)
	base1 := f.drv.WorkDone(1)
	f.eng.RunFor(1 * sim.Second)
	gained1 := f.drv.WorkDone(1) - base1
	gained2 := f.drv.WorkDone(2)
	ratio := gained2 / gained1
	if ratio > 1.3 {
		t.Fatalf("latecomer got %.2f× the incumbent's share", ratio)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseNone.String() != "none" || PhaseDrainOthers.String() != "drain-others" ||
		PhaseServe.String() != "serve" || PhaseDrainBox.String() != "drain-box" ||
		Phase(9).String() != "phase(9)" {
		t.Fatal("phase strings wrong")
	}
}
