package accel

import (
	"testing"

	"psbox/internal/sim"
)

func wdCfg() WatchdogConfig {
	return WatchdogConfig{
		Timeout:     50 * sim.Millisecond,
		BackoffBase: 1 * sim.Millisecond,
		BackoffCap:  8 * sim.Millisecond,
		MaxRetries:  3,
	}
}

func TestWatchdogRecoversHungCommand(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.EnableWatchdog(wdCfg())
	f.submit(1, 10) // 10 ms of work
	if !f.dev.InjectHang() {
		t.Fatal("expected a command to wedge")
	}
	f.eng.RunFor(40 * sim.Millisecond)
	if f.drv.Completed(1) != 0 || f.drv.WatchdogResets() != 0 {
		t.Fatal("watchdog fired before its deadline")
	}
	f.eng.RunFor(100 * sim.Millisecond)
	if f.drv.WatchdogResets() != 1 {
		t.Fatalf("resets = %d, want 1", f.drv.WatchdogResets())
	}
	if f.drv.Resubmits() != 1 {
		t.Fatalf("resubmits = %d, want 1", f.drv.Resubmits())
	}
	// The resubmitted command runs clean and completes.
	if f.drv.Completed(1) != 1 {
		t.Fatalf("completed = %d, want 1", f.drv.Completed(1))
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatalf("backlog = %d after recovery", f.drv.Backlog(1))
	}
	if f.dev.Hung() != 0 || f.dev.Resets() != 1 {
		t.Fatalf("device hung=%d resets=%d", f.dev.Hung(), f.dev.Resets())
	}
}

func TestWatchdogDoesNotResetHealthySlowTraffic(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.EnableWatchdog(wdCfg())
	// Each command takes 40 ms < the 50 ms deadline; a steady stream must
	// never trip the watchdog.
	f.feeder(1, 40, 2)
	f.eng.RunFor(500 * sim.Millisecond)
	if f.drv.WatchdogResets() != 0 {
		t.Fatalf("watchdog reset healthy device %d times", f.drv.WatchdogResets())
	}
	if f.drv.Completed(1) == 0 {
		t.Fatal("no commands completed")
	}
}

func TestWatchdogCatchesHangBehindLiveTraffic(t *testing.T) {
	// Two execution slots: one wedges, the other keeps completing. The
	// per-command deadline must still catch the wedged one.
	cfg := devCfg()
	cfg.Slots = 4
	cfg.ExecWidth = 2
	f := newFixture(t, cfg)
	f.drv.EnableWatchdog(wdCfg())
	f.submit(1, 500) // will wedge
	if !f.dev.InjectHang() {
		t.Fatal("expected a command to wedge")
	}
	f.feeder(2, 5, 2) // healthy 5 ms commands keep slot 2 cycling
	f.eng.RunFor(200 * sim.Millisecond)
	if f.drv.WatchdogResets() == 0 {
		t.Fatal("hang hidden behind live traffic was never recovered")
	}
	if f.dev.Hung() != 0 {
		t.Fatal("wedged command still in the device")
	}
}

func TestWatchdogBillsWastedOccupancyToOwner(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.EnableWatchdog(wdCfg())
	f.submit(1, 10)
	f.dev.InjectHang()
	before := f.drv.VRuntime(1)
	f.eng.RunFor(60 * sim.Millisecond) // watchdog barks at 50 ms
	if f.drv.WatchdogResets() != 1 {
		t.Fatalf("resets = %d", f.drv.WatchdogResets())
	}
	// The owner paid for the ~50 ms its hung command held the slot, on top
	// of whatever the clean rerun bills.
	if got := f.drv.VRuntime(1) - before; got < 0.050 {
		t.Fatalf("wasted occupancy billed %.4f slot-seconds, want >= 0.050", got)
	}
}

func TestWatchdogDropsCommandAfterMaxRetries(t *testing.T) {
	f := newFixture(t, devCfg())
	cfg := wdCfg()
	f.drv.EnableWatchdog(cfg)
	f.submit(1, 10)
	f.dev.InjectHang()
	// Re-wedge the device every time the command is redispatched: the
	// command hangs on every retry and must eventually be dropped.
	var rewedge func(sim.Time)
	rewedge = func(sim.Time) {
		if f.dev.Executing() > 0 && f.dev.Hung() == 0 {
			f.dev.InjectHang()
		}
		f.eng.After(sim.Millisecond, rewedge)
	}
	f.eng.After(sim.Millisecond, rewedge)
	f.eng.RunFor(2 * sim.Second)
	if f.drv.DroppedCommands() != 1 {
		t.Fatalf("dropped = %d, want 1", f.drv.DroppedCommands())
	}
	// MaxRetries resets happened (initial hang + retries), then the driver
	// gave up and the backlog cleared.
	if f.drv.WatchdogResets() != uint64(cfg.MaxRetries)+1 {
		t.Fatalf("resets = %d, want %d", f.drv.WatchdogResets(), cfg.MaxRetries+1)
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatalf("backlog = %d after drop", f.drv.Backlog(1))
	}
}

func TestWatchdogBackoffDelaysResubmission(t *testing.T) {
	f := newFixture(t, devCfg())
	f.drv.EnableWatchdog(wdCfg())
	f.submit(1, 10)
	f.dev.InjectHang()
	f.eng.RunFor(50 * sim.Millisecond) // bark fires exactly now
	if f.drv.WatchdogResets() != 1 {
		t.Fatalf("resets = %d", f.drv.WatchdogResets())
	}
	// First retry backs off BackoffBase = 1 ms before redispatch.
	if f.dev.Busy() != 0 {
		t.Fatal("command redispatched with no backoff")
	}
	f.eng.RunFor(2 * sim.Millisecond)
	if f.dev.Busy() != 1 {
		t.Fatal("command not redispatched after backoff")
	}
}
