package netsched

import (
	"testing"

	"psbox/internal/hw/nic"
	"psbox/internal/sim"
)

func nicCfg() nic.Config {
	return nic.Config{
		Name:              "wifi",
		LinkBytesPerSec:   1e6, // 1 byte/µs
		PerPacketOverhead: 100 * sim.Microsecond,
		PSMW:              0.03,
		ActiveW:           []float64{0.8},
		TailW:             0.35,
		TailTimeout:       50 * sim.Millisecond,
	}
}

type fixture struct {
	eng      *sim.Engine
	n        *nic.NIC
	drv      *Driver
	resident map[int]bool
}

func newFixture(t *testing.T) *fixture {
	f := &fixture{eng: sim.NewEngine(), resident: map[int]bool{}}
	f.n = nic.MustNew(f.eng, nicCfg())
	f.drv = New(f.eng, f.n, Callbacks{
		BoxResident: func(app int, r bool) { f.resident[app] = r },
	})
	return f
}

// feeder keeps a socket's buffer topped up, modelling a bulk transfer.
func (f *fixture) feeder(s *Socket, pkt int, depth int) {
	var top func(sim.Time)
	top = func(sim.Time) {
		for s.QueuedBytes() < depth*pkt {
			f.drv.Send(s, pkt)
		}
		f.eng.After(200*sim.Microsecond, top)
	}
	top(0)
}

func TestSinglePacketLifecycle(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	f.drv.Send(s, 900) // 1ms airtime
	if !f.n.Busy() {
		t.Fatal("packet should be on the air immediately")
	}
	f.eng.RunFor(2 * sim.Millisecond)
	if f.drv.SentBytes(1) != 900 || f.drv.SentPackets(1) != 1 {
		t.Fatalf("sent = %d bytes %d pkts", f.drv.SentBytes(1), f.drv.SentPackets(1))
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatal("backlog should drain")
	}
}

func TestFIFOWithinApp(t *testing.T) {
	f := newFixture(t)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(1)
	f.drv.Send(s1, 900)
	f.drv.Send(s2, 400)
	f.drv.Send(s1, 400)
	f.eng.RunFor(10 * sim.Millisecond)
	if f.drv.SentPackets(1) != 3 {
		t.Fatalf("sent %d packets", f.drv.SentPackets(1))
	}
}

func TestByteFairSharing(t *testing.T) {
	f := newFixture(t)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(2)
	f.feeder(s1, 1400, 4)
	f.feeder(s2, 700, 4) // smaller packets, same byte entitlement
	f.eng.RunFor(2 * sim.Second)
	b1, b2 := float64(f.drv.SentBytes(1)), float64(f.drv.SentBytes(2))
	if r := b1 / b2; r < 0.85 || r > 1.18 {
		t.Fatalf("byte split %v vs %v (ratio %v)", b1, b2, r)
	}
}

func TestBoxedPacketsNeverInterleaveMidBalloon(t *testing.T) {
	f := newFixture(t)
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(2)
	f.feeder(s1, 500, 3)
	f.feeder(s2, 1400, 3)
	// While resident, only box frames may be on the air.
	violations := 0
	var poll func(sim.Time)
	poll = func(sim.Time) {
		if f.resident[1] && f.n.Busy() {
			// Busy during residency must be the box's frame: check via
			// accounting — others' inflight should be zero.
			for id, a := range f.drv.apps {
				if id != 1 && a.inflight > 0 {
					violations++
				}
			}
		}
		f.eng.After(100*sim.Microsecond, poll)
	}
	f.eng.After(100*sim.Microsecond, poll)
	f.eng.RunFor(2 * sim.Second)
	if violations != 0 {
		t.Fatalf("%d interleaving violations", violations)
	}
	if f.drv.SentBytes(1) == 0 || f.drv.SentBytes(2) == 0 {
		t.Fatal("both apps should transmit")
	}
}

func TestLostOpportunityDiscountsBoxCredit(t *testing.T) {
	f := newFixture(t)
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(2)
	// Other app has a backlog the balloon blocks.
	f.drv.Send(s2, 1400)
	f.drv.Send(s2, 1400)
	f.eng.RunFor(5 * sim.Millisecond) // other's packets go out (box idle)
	vr0 := f.drv.VRuntime(1)
	f.drv.Send(s2, 1400)
	f.drv.Send(s2, 1400) // queued behind the in-flight one
	f.drv.Send(s1, 500)  // box claims a balloon
	f.eng.RunFor(20 * sim.Millisecond)
	gained := f.drv.VRuntime(1) - vr0
	// Box must be billed more than its own 500 bytes: the blocked backlog
	// is charged on top.
	if gained <= 500 {
		t.Fatalf("box billed only %v byte-credits", gained)
	}
}

func TestNICStateVirtualizationIsolatesTail(t *testing.T) {
	f := newFixture(t)
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(2)
	vrail := f.drv.VirtualRail(1)
	cfg := f.n.Config()
	// Other app transmits, leaving the NIC in its tail state. The box's
	// virtual NIC must not see any of it.
	f.drv.Send(s2, 900)
	f.eng.RunFor(2 * sim.Millisecond)
	if f.n.Mode() != nic.ModeTail {
		t.Fatal("setup: NIC should be in tail")
	}
	if vrail.Power() != cfg.PSMW {
		t.Fatalf("virtual NIC leaked the other app's tail: %v W", vrail.Power())
	}
	// Box frame: after the drain settle it goes out; the virtual NIC shows
	// active power, then the box's OWN tail, then PSM.
	f.drv.Send(s1, 500) // 0.6ms airtime after the 12ms settle
	f.eng.RunFor(12*sim.Millisecond + 300*sim.Microsecond)
	if vrail.Power() != cfg.ActiveW[0] {
		t.Fatalf("virtual NIC should be active, %v W", vrail.Power())
	}
	f.eng.RunFor(2 * sim.Millisecond) // frame lands; balloon closes
	if vrail.Power() != cfg.TailW {
		t.Fatalf("virtual NIC should be in the box's own tail, %v W", vrail.Power())
	}
	if f.resident[1] {
		t.Fatal("balloon should close when the box goes idle")
	}
	f.eng.RunFor(cfg.TailTimeout + sim.Millisecond)
	if vrail.Power() != cfg.PSMW {
		t.Fatalf("virtual tail should have expired, %v W", vrail.Power())
	}
}

func TestResidencyCallbacksBalanced(t *testing.T) {
	f := newFixture(t)
	var events []bool
	f.drv.cbs.BoxResident = func(app int, r bool) { events = append(events, r) }
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	s2 := f.drv.NewSocket(2)
	f.feeder(s2, 1400, 2)
	for i := 0; i < 5; i++ {
		f.drv.Send(s1, 300)
		f.eng.RunFor(100 * sim.Millisecond)
	}
	f.eng.RunFor(200 * sim.Millisecond)
	if len(events) < 4 || len(events)%2 != 0 {
		t.Fatalf("events = %v", events)
	}
	for i, r := range events {
		if r != (i%2 == 0) {
			t.Fatalf("events must alternate: %v", events)
		}
	}
}

func TestQueueingLatencyGrowsWithBalloons(t *testing.T) {
	run := func(boxed bool) sim.Duration {
		f := newFixture(t)
		if boxed {
			f.drv.BoxEnter(1)
		}
		s1 := f.drv.NewSocket(1)
		s2 := f.drv.NewSocket(2)
		f.feeder(s2, 1400, 3)
		var tick func(sim.Time)
		tick = func(sim.Time) {
			f.drv.Send(s1, 300)
			f.eng.After(20*sim.Millisecond, tick)
		}
		tick(0)
		f.eng.RunFor(2 * sim.Second)
		return f.drv.MeanQueueingLatency(1)
	}
	unboxed, boxed := run(false), run(true)
	if boxed <= unboxed {
		t.Fatalf("boxed latency %v should exceed unboxed %v", boxed, unboxed)
	}
}

func TestBoxLeaveMidFlight(t *testing.T) {
	f := newFixture(t)
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	f.drv.Send(s1, 20000) // ~20ms on the air after the ~12ms drain settle
	f.eng.RunFor(15 * sim.Millisecond)
	if !f.resident[1] {
		t.Fatal("balloon should be open")
	}
	f.drv.BoxLeave(1)
	f.eng.RunFor(20 * sim.Millisecond) // frame lands ~17ms later
	if f.resident[1] {
		t.Fatal("residency should have ended at frame completion")
	}
	if f.drv.Phase() != PhaseNone {
		t.Fatalf("phase = %v", f.drv.Phase())
	}
	// Normal service resumes.
	s2 := f.drv.NewSocket(2)
	f.drv.Send(s2, 500)
	f.eng.RunFor(5 * sim.Millisecond)
	if f.drv.SentBytes(2) != 500 {
		t.Fatal("post-leave transmission failed")
	}
}

func TestBoxLeaveDuringDrain(t *testing.T) {
	f := newFixture(t)
	s2 := f.drv.NewSocket(2)
	f.drv.Send(s2, 5000) // in flight
	f.drv.BoxEnter(1)
	s1 := f.drv.NewSocket(1)
	f.drv.Send(s1, 500)
	if f.drv.Phase() != PhaseDrain {
		t.Fatalf("phase = %v, want drain", f.drv.Phase())
	}
	f.drv.BoxLeave(1)
	if f.drv.Phase() != PhaseNone {
		t.Fatal("leave should cancel the reservation")
	}
	f.eng.RunFor(20 * sim.Millisecond)
	if f.drv.SentBytes(1) != 500 {
		t.Fatal("ex-box packet should transmit normally")
	}
}

func TestSendValidation(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.drv.Send(s, 0)
}

func TestPhaseString(t *testing.T) {
	if PhaseNone.String() != "none" || PhaseDrain.String() != "drain" ||
		PhaseServe.String() != "serve" || Phase(7).String() != "phase(7)" {
		t.Fatal("phase strings wrong")
	}
}
