package netsched

import (
	"sort"

	"psbox/internal/hw/nic"
	"psbox/internal/snapshot"
)

func encodeNICState(enc *snapshot.Encoder, s nic.State) {
	enc.I64(int64(s.TxLevel))
	enc.U8(uint8(s.Mode))
	enc.I64(int64(s.TailRemaining))
}

func (s *Socket) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(s.ID))
	enc.I64(int64(s.Owner))
	enc.I64(int64(s.queuedBytes))
	enc.Len(len(s.queue))
	for _, p := range s.queue {
		p.Snapshot(enc)
	}
}

func (a *appState) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(a.id))
	enc.F64(a.vr)
	enc.Bool(a.boxed)
	encodeNICState(enc, a.state)
	a.vrail.Snapshot(enc)
	enc.U64(a.vtailArm.Seq())
	enc.U64(a.sentBytes)
	enc.U64(a.sentPackets)
	enc.I64(int64(a.inflight))
	enc.I64(int64(a.retrying))
	enc.I64(int64(a.latencySum))
	enc.U64(a.latencyN)
	enc.I64(int64(a.balloonBacklog))
}

// Snapshot encodes the packet scheduler: balloon phase machine, socket
// buffers (creation order), and every app's credit, counters and virtual
// NIC state machine (sorted by app ID).
func (d *Driver) Snapshot(enc *snapshot.Encoder) {
	enc.U64(d.settleArm.Seq())
	enc.U64(d.graceArm.Seq())
	enc.U8(uint8(d.phase))
	if d.activeBox == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(d.activeBox.id))
	}
	enc.Bool(d.closing)
	encodeNICState(enc, d.othersState)
	enc.I64(int64(d.balloonAt))
	enc.Bool(d.balloonBlocked)
	enc.F64(d.minVrFloor)
	enc.I64(int64(d.nextSockID))
	enc.U64(d.nextPktID)
	if d.curSock == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(d.curSock.ID))
	}
	enc.U64(d.linkRetries)
	enc.Len(len(d.socks))
	for _, s := range d.socks {
		s.snapshot(enc)
	}
	ids := make([]int, 0, len(d.apps))
	for id := range d.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		d.apps[id].snapshot(enc)
	}
}

// Restore verifies the live scheduler against a checkpoint section.
func (d *Driver) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, d.Snapshot) }
