package netsched

import (
	"testing"

	"psbox/internal/sim"
)

// TestRetryBackoffGoldenSchedule pins the retransmission delays for the
// default config: 5 ms doubling to an 80 ms ceiling (the BeagleBone/
// WiLink8 calibration of §6.2). The delays position every requeue event
// in the engine's queue, so the sequence is part of the deterministic
// replay surface — a change here invalidates every trace and checkpoint
// golden in the repo.
func TestRetryBackoffGoldenSchedule(t *testing.T) {
	cfg := DefaultConfig()
	want := []sim.Duration{
		5 * sim.Millisecond,  // retry 1
		10 * sim.Millisecond, // retry 2
		20 * sim.Millisecond, // retry 3
		40 * sim.Millisecond, // retry 4
		80 * sim.Millisecond, // retry 5
		80 * sim.Millisecond, // retry 6: capped
		80 * sim.Millisecond, // retry 7: stays capped
	}
	for i, w := range want {
		if got := backoffFor(i+1, cfg.RetryBackoff, cfg.RetryBackoffCap); got != w {
			t.Errorf("retry %d: backoff %v, want %v", i+1, got, w)
		}
	}
}

// TestRetryBackoffDegenerateConfigs covers the shapes NewWithConfig can
// normalize to: cap below base (clamped to base by validation) and a cap
// equal to base (every retry waits the same).
func TestRetryBackoffDegenerateConfigs(t *testing.T) {
	base := 5 * sim.Millisecond
	for retry := 1; retry <= 4; retry++ {
		if got := backoffFor(retry, base, base); got != base {
			t.Errorf("cap==base, retry %d: backoff %v, want %v", retry, got, base)
		}
	}
}
