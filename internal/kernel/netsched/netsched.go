// Package netsched implements the kernel's wireless packet scheduler of
// §4.2: byte-fair queueing over per-socket buffers, augmented with psbox
// temporal balloons (packet draining phases, per-sandbox virtualized NIC
// power state, and credit discounts for the transmission opportunities the
// balloon denied to other apps).
package netsched

import (
	"fmt"
	"sort"

	"psbox/internal/hw/nic"
	"psbox/internal/hw/power"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Phase is the balloon phase of the packet scheduler.
type Phase int

const (
	// PhaseNone: ordinary byte-fair multiplexing.
	PhaseNone Phase = iota
	// PhaseDrain: waiting for the in-flight frame before opening the
	// balloon.
	PhaseDrain
	// PhaseServe: transmitting only the sandboxed app's packets.
	PhaseServe
)

func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseDrain:
		return "drain"
	case PhaseServe:
		return "serve"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config tunes the packet scheduler.
type Config struct {
	// DrainSettle models the quiescing delay at balloon opening observed
	// on the paper's platform (§6.2): WiLink firmware batches completion
	// notifications and the wimpy CPU adds interrupt latency, so the
	// driver only trusts the medium to be clear this long after the last
	// completion. It is the dominant WiFi latency cost of psbox.
	DrainSettle sim.Duration

	// Quantum is the byte credit a balloon may overdraw before the
	// scheduler hands the NIC back. Without it, byte-fair alternation
	// would split every balloon after a frame or two, re-paying the drain
	// settle each time.
	Quantum int

	// Grace bounds how long a credit-ineligible sandbox waits for
	// momentarily idle competitors before its balloon opens anyway (the
	// starvation backstop of the balloon admission gate).
	Grace sim.Duration

	// RetryBackoff is the retransmission delay after a frame fails on a
	// link flap; it doubles per retry of the same frame, capped at
	// RetryBackoffCap. The failed airtime is still billed to the owner.
	RetryBackoff    sim.Duration
	RetryBackoffCap sim.Duration
}

// DefaultConfig mirrors the BeagleBone/WiLink8 behaviour of §6.2.
func DefaultConfig() Config {
	return Config{
		DrainSettle:     12 * sim.Millisecond,
		Quantum:         8192,
		Grace:           5 * sim.Millisecond,
		RetryBackoff:    5 * sim.Millisecond,
		RetryBackoffCap: 80 * sim.Millisecond,
	}
}

// Callbacks connect the scheduler to the kernel and psbox layers.
type Callbacks struct {
	// BacklogChange fires when an app's unsent byte count shrinks.
	BacklogChange func(appID int)
	// BoxResident brackets a sandbox's exclusive NIC service.
	BoxResident func(appID int, resident bool)
	// Usage reports one frame's airtime span for accounting.
	Usage func(owner int, start, end sim.Time)
}

// Socket is one app's transmission endpoint with its own kernel buffer
// (the paper holds packets back "in per-socket buffers instead of a global
// queue").
type Socket struct {
	ID    int
	Owner int

	queue       []*nic.Packet
	queuedBytes int
}

// QueuedBytes reports bytes buffered in the socket.
func (s *Socket) QueuedBytes() int { return s.queuedBytes }

type appState struct {
	id    int
	vr    float64 // scheduling credit: total byte cost charged
	boxed bool
	state nic.State // virtualized NIC power state while boxed

	// The virtual NIC (§5: "drive an independent state machine for each
	// psbox"): a per-sandbox power-state machine whose rail the sandbox's
	// virtual power meter reads. It sees only this app's frames — active
	// power during their airtime, this app's own tail afterwards, PSM
	// otherwise — so concurrent apps cannot contribute anything beyond
	// idle power, and no physical tail-holding is needed.
	vrail    *power.Rail
	vtailArm sim.Handle

	sentBytes   uint64
	sentPackets uint64
	inflight    int // bytes on the air
	retrying    int // bytes lost to a link flap, waiting out retry backoff

	latencySum sim.Duration
	latencyN   uint64

	// balloonBacklog tracks bytes this (non-boxed) app had buffered while
	// a balloon was open — the lost opportunities charged to the box.
	balloonBacklog int
}

// Driver is the packet scheduler over one NIC.
type Driver struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg Config
	n   *nic.NIC
	//psbox:allow-snapshotstate wiring: callback closures installed at construction
	cbs   Callbacks
	socks []*Socket
	apps  map[int]*appState

	settleArm sim.Handle
	graceArm  sim.Handle

	phase          Phase
	activeBox      *appState
	closing        bool // balloon teardown deferred to frame completion
	othersState    nic.State
	balloonAt      sim.Time
	balloonBlocked bool // another app had demand during the balloon

	minVrFloor float64
	nextSockID int
	nextPktID  uint64

	// Link-flap recovery: the socket whose frame is on the air (for
	// requeueing on failure) and the retransmission counter.
	curSock     *Socket
	linkRetries uint64

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes the packet scheduler's trace events and metrics to a bus.
// Transmission spans carry the NIC rail name so they join with meter
// samples.
func (d *Driver) SetBus(b *obs.Bus) { d.bus = b }

// netPhaseKinds pre-renders the phase-instant kinds so emission never
// formats strings.
var netPhaseKinds = [...]string{"phase-none", "phase-drain", "phase-serve"}

// setPhase is the single phase-transition choke point: every balloon
// phase change emits one instant carrying the new phase.
func (d *Driver) setPhase(p Phase) {
	if d.phase == p {
		return
	}
	d.phase = p
	owner := 0
	if d.activeBox != nil {
		owner = d.activeBox.id
	}
	d.bus.Instant(obs.CatNet, netPhaseKinds[p], owner, int64(p), d.n.Config().Name, d.n.Config().Name)
}

// New wires a driver to the NIC.
func New(eng *sim.Engine, n *nic.NIC, cbs Callbacks) *Driver {
	return NewWithConfig(eng, DefaultConfig(), n, cbs)
}

// NewWithConfig wires a driver with explicit tuning. Zero-valued fields
// fall back to their defaults.
func NewWithConfig(eng *sim.Engine, cfg Config, n *nic.NIC, cbs Callbacks) *Driver {
	def := DefaultConfig()
	if cfg.Quantum == 0 {
		cfg.Quantum = def.Quantum
	}
	if cfg.Grace == 0 {
		cfg.Grace = def.Grace
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = def.RetryBackoff
	}
	if cfg.RetryBackoffCap == 0 {
		cfg.RetryBackoffCap = def.RetryBackoffCap
	}
	if cfg.RetryBackoffCap < cfg.RetryBackoff {
		cfg.RetryBackoffCap = cfg.RetryBackoff
	}
	d := &Driver{
		eng:  eng,
		cfg:  cfg,
		n:    n,
		cbs:  cbs,
		apps: make(map[int]*appState),
	}
	n.OnComplete(d.onComplete)
	n.OnIdle(func() { d.pump() }) // tail expiry advances balloon state
	n.OnTxFail(d.onTxFail)
	n.OnLinkUp(func() { d.pump() }) // link recovery resumes dispatching
	return d
}

// NIC exposes the underlying hardware model.
func (d *Driver) NIC() *nic.NIC { return d.n }

// Callbacks returns the currently installed callbacks.
func (d *Driver) Callbacks() Callbacks { return d.cbs }

// SetCallbacks replaces the driver's callbacks; the kernel uses this to
// interpose its own routing when the driver is attached.
func (d *Driver) SetCallbacks(cbs Callbacks) { d.cbs = cbs }

// SetUsage installs just the usage recorder, preserving other callbacks.
func (d *Driver) SetUsage(fn func(owner int, start, end sim.Time)) { d.cbs.Usage = fn }

// Phase reports the balloon phase.
func (d *Driver) Phase() Phase { return d.phase }

func (d *Driver) app(id int) *appState {
	a, ok := d.apps[id]
	if !ok {
		a = &appState{id: id, vr: d.minVrFloor, state: nic.State{Mode: nic.ModePSM}}
		d.apps[id] = a
	}
	return a
}

// NewSocket opens a transmission socket for an app.
func (d *Driver) NewSocket(owner int) *Socket {
	d.nextSockID++
	s := &Socket{ID: d.nextSockID, Owner: owner}
	d.socks = append(d.socks, s)
	d.app(owner) // materialize
	return s
}

// Send deposits a packet into the socket's kernel buffer.
func (d *Driver) Send(s *Socket, bytes int) {
	if bytes <= 0 {
		panic("netsched: empty packet")
	}
	a := d.app(s.Owner)
	if d.Backlog(s.Owner) == 0 {
		if a.vr < d.minVrFloor {
			a.vr = d.minVrFloor
		}
	}
	d.nextPktID++
	p := &nic.Packet{ID: d.nextPktID, Owner: s.Owner, Bytes: bytes, Enqueued: d.eng.Now()}
	s.queue = append(s.queue, p)
	s.queuedBytes += bytes
	if d.activeBox != nil && s.Owner != d.activeBox.id {
		d.balloonBlocked = true
	}
	d.pump()
}

// Backlog reports an app's unsent bytes (buffered, on the air, or waiting
// out a link-flap retry backoff).
func (d *Driver) Backlog(appID int) int {
	total := 0
	for _, s := range d.socks {
		if s.Owner == appID {
			total += s.queuedBytes
		}
	}
	if a, ok := d.apps[appID]; ok {
		total += a.inflight + a.retrying
	}
	return total
}

// SentBytes reports an app's completed transmission volume.
func (d *Driver) SentBytes(appID int) uint64 {
	if a, ok := d.apps[appID]; ok {
		return a.sentBytes
	}
	return 0
}

// SentPackets reports an app's completed frame count.
func (d *Driver) SentPackets(appID int) uint64 {
	if a, ok := d.apps[appID]; ok {
		return a.sentPackets
	}
	return 0
}

// MeanQueueingLatency reports an app's mean enqueue→dispatch delay, the
// §6.2 WiFi latency metric. Zero appID aggregates all apps.
func (d *Driver) MeanQueueingLatency(appID int) sim.Duration {
	var sum sim.Duration
	var n uint64
	for id, a := range d.apps {
		if appID != 0 && id != appID {
			continue
		}
		sum += a.latencySum
		n += a.latencyN
	}
	if n == 0 {
		return 0
	}
	return sim.Duration(int64(sum) / int64(n))
}

// VRuntime exposes an app's byte credit for tests.
func (d *Driver) VRuntime(appID int) float64 {
	if a, ok := d.apps[appID]; ok {
		return a.vr
	}
	return 0
}

// SetTxLevel selects an app's transmission power level. For an unboxed app
// this programs the shared hardware directly — the last writer wins, which
// is exactly the lingering-state entanglement of §2.3: another app's
// frames then go out at this level too. For a boxed app the level becomes
// part of its virtualized power state, applied only inside its balloons.
func (d *Driver) SetTxLevel(appID, level int) {
	a := d.app(appID)
	a.state.TxLevel = level
	if !a.boxed || (d.activeBox == a && d.phase == PhaseServe) {
		d.n.SetTxLevel(level)
	}
	if !a.boxed {
		// The shared state now carries this level; remember it for the
		// next balloon restore.
		d.othersState.TxLevel = level
	}
}

// VirtualRail returns (creating on demand) the app's virtual-NIC power
// rail; the psbox layer reads it as the app's WiFi power observation.
func (d *Driver) VirtualRail(appID int) *power.Rail {
	a := d.app(appID)
	if a.vrail == nil {
		a.vrail = power.NewRail(d.eng, fmt.Sprintf("wifi-vnic-%d", appID), d.n.Config().PSMW)
	}
	return a.vrail
}

// vnicActive drives the app's virtual NIC into the active state for one of
// its frames.
func (d *Driver) vnicActive(a *appState) {
	if a.vrail == nil {
		return
	}
	if a.vtailArm != (sim.Handle{}) {
		d.eng.Cancel(a.vtailArm)
		a.vtailArm = sim.Handle{}
	}
	a.vrail.Set(d.n.Config().ActiveW[a.state.TxLevel])
}

// vnicTail moves the app's virtual NIC into its own tail state, decaying
// to PSM after the power-save timeout.
func (d *Driver) vnicTail(a *appState) {
	if a.vrail == nil {
		return
	}
	cfg := d.n.Config()
	a.vrail.Set(cfg.TailW)
	a.vtailArm = d.eng.After(cfg.TailTimeout, func(sim.Time) {
		a.vtailArm = sim.Handle{}
		a.vrail.Set(cfg.PSMW)
	})
}

// BoxEnter encloses an app's NIC usage in temporal balloons and gives it a
// virtual NIC power state starting from PSM.
func (d *Driver) BoxEnter(appID int) {
	a := d.app(appID)
	if a.boxed {
		return
	}
	a.boxed = true
	a.state = nic.State{Mode: nic.ModePSM, TxLevel: a.state.TxLevel}
	d.VirtualRail(appID) // materialize the virtual NIC
	d.pump()
}

// BoxLeave dissolves the sandbox on the NIC. If the box's balloon is open
// with a frame on the air, teardown completes at that frame's completion
// (the power-state swap needs a quiet medium).
func (d *Driver) BoxLeave(appID int) {
	a, ok := d.apps[appID]
	if !ok || !a.boxed {
		return
	}
	a.boxed = false
	if d.activeBox != a {
		d.pump()
		return
	}
	switch d.phase {
	case PhaseDrain:
		// Balloon never opened; just cancel the reservation.
		if d.settleArm != (sim.Handle{}) {
			d.eng.Cancel(d.settleArm)
			d.settleArm = sim.Handle{}
		}
		d.setPhase(PhaseNone)
		d.activeBox = nil
		d.pump()
	case PhaseServe:
		if d.n.Busy() {
			d.closing = true // finish at frame completion
			return
		}
		d.closeBalloon()
	}
}

func (d *Driver) onComplete(p *nic.Packet) {
	a := d.app(p.Owner)
	a.inflight -= p.Bytes
	a.sentBytes += uint64(p.Bytes)
	a.sentPackets++
	d.bus.Span(obs.CatNet, "tx", p.Owner, int64(p.Bytes), d.n.Config().Name, "", p.Dispatched)
	d.bus.Count("net.sent_bytes", p.Owner, d.n.Config().Name, int64(p.Bytes))
	if d.cbs.Usage != nil {
		d.cbs.Usage(p.Owner, p.Dispatched, p.Completed)
	}
	// Byte-fair billing: credit burned equals bytes sent.
	a.vr += float64(p.Bytes)
	d.vnicTail(a)
	d.pump()
	if d.cbs.BacklogChange != nil {
		d.cbs.BacklogChange(p.Owner)
	}
}

// refreshFloor advances the newcomer credit floor to the minimum credit of
// unboxed apps with demand. Boxed apps are excluded: their balloon-billed
// credit must not drag the floor up, or returning apps would catapult past
// them and erase the confinement charge.
func (d *Driver) refreshFloor() {
	min := -1.0
	for id, a := range d.apps {
		if a.boxed || d.Backlog(id) == 0 {
			continue
		}
		if min < 0 || a.vr < min {
			min = a.vr
		}
	}
	if min > d.minVrFloor {
		d.minVrFloor = min
	}
}

// headSocket returns the socket whose head packet the app should send next
// (oldest head first).
func (d *Driver) headSocket(appID int) *Socket {
	var best *Socket
	for _, s := range d.socks {
		if s.Owner != appID || len(s.queue) == 0 {
			continue
		}
		if best == nil || s.queue[0].Enqueued < best.queue[0].Enqueued {
			best = s
		}
	}
	return best
}

// pickQueued returns the minimum-credit app with buffered packets,
// restricted to boxed or unboxed apps.
func (d *Driver) pickQueued(boxed bool) *appState {
	ids := make([]int, 0, len(d.apps))
	for id := range d.apps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var best *appState
	for _, id := range ids {
		a := d.apps[id]
		if a.boxed != boxed || d.headSocket(id) == nil {
			continue
		}
		if best == nil || a.vr < best.vr {
			best = a
		}
	}
	return best
}

func (d *Driver) minOtherCredit() (float64, bool) {
	var min float64
	found := false
	for id, a := range d.apps {
		if a == d.activeBox || d.Backlog(id) == 0 {
			continue
		}
		if !found || a.vr < min {
			min = a.vr
			found = true
		}
	}
	return min, found
}

func (d *Driver) transmit(a *appState, s *Socket) {
	p := s.queue[0]
	s.queue = s.queue[1:]
	s.queuedBytes -= p.Bytes
	a.inflight += p.Bytes
	d.curSock = s
	d.n.Transmit(p)
	d.vnicActive(a)
	a.latencySum += p.Dispatched.Sub(p.Enqueued)
	a.latencyN++
	d.bus.Instant(obs.CatNet, "tx-begin", p.Owner, int64(p.ID), d.n.Config().Name, "")
	d.bus.Observe("net.queueing_latency", p.Owner, d.n.Config().Name, p.Dispatched.Sub(p.Enqueued))
}

// LinkRetries reports how many transmissions failed on link flaps and were
// requeued for retransmission.
func (d *Driver) LinkRetries() uint64 { return d.linkRetries }

// onTxFail is the transmission-failure interrupt handler: the link dropped
// with the frame on the air. The burned airtime is billed to the owner in
// byte-credit (the radio spent the energy either way; under a balloon the
// sandbox's confinement charge keeps covering it), the frame returns to the
// head of its socket after a capped exponential backoff, and its own tail
// is reflected on the owner's virtual NIC just like a completed frame.
func (d *Driver) onTxFail(p *nic.Packet) {
	a := d.app(p.Owner)
	a.inflight -= p.Bytes
	a.retrying += p.Bytes
	a.vr += float64(p.Bytes)
	d.vnicTail(a)
	s := d.curSock
	d.curSock = nil
	p.Retries++
	d.linkRetries++
	d.bus.Instant(obs.CatNet, "tx-retry", p.Owner, int64(p.ID), d.n.Config().Name, "")
	d.bus.Count("net.link_retries", p.Owner, d.n.Config().Name, 1)
	backoff := backoffFor(p.Retries, d.cfg.RetryBackoff, d.cfg.RetryBackoffCap)
	pp, ss := p, s
	d.eng.After(backoff, func(sim.Time) { d.requeue(pp, ss) })
	d.pump()
	if d.cbs.BacklogChange != nil {
		d.cbs.BacklogChange(p.Owner)
	}
}

// backoffFor is the retransmission delay schedule: the first retry waits
// base, each further retry doubles it, capped at limit. Pinned by the
// golden-sequence test — the schedule is part of the deterministic replay
// surface, so changing it shifts every retransmission in every trace.
func backoffFor(retries int, base, limit sim.Duration) sim.Duration {
	backoff := base
	for r := 1; r < retries && backoff < limit; r++ {
		backoff *= 2
	}
	if backoff > limit {
		backoff = limit
	}
	return backoff
}

// requeue returns a failed frame to the head of its socket once its retry
// backoff expires.
func (d *Driver) requeue(p *nic.Packet, s *Socket) {
	d.app(p.Owner).retrying -= p.Bytes
	s.queue = append([]*nic.Packet{p}, s.queue...)
	s.queuedBytes += p.Bytes
	if d.activeBox != nil && s.Owner != d.activeBox.id {
		d.balloonBlocked = true
	}
	d.pump()
}

// settleLostOpportunity closes out the balloon's billing: the bytes other
// apps could have transmitted during the balloon — the sharing the balloon
// denied them — discount the sandboxed app's credit (§4.2). When any other
// app had packets buffered during the balloon, the denial equals the
// link's full capacity over the balloon span (their producers were blocked
// on backpressure, so their momentary queue depth under-counts demand).
func (d *Driver) settleLostOpportunity() {
	if d.activeBox == nil {
		return
	}
	blocked := d.balloonBlocked
	for _, s := range d.socks {
		if s.Owner != d.activeBox.id && s.queuedBytes > 0 {
			blocked = true
		}
	}
	if !blocked {
		return
	}
	span := d.eng.Now().Sub(d.balloonAt).Seconds()
	d.activeBox.vr += span * d.n.Config().LinkBytesPerSec
}

// pump advances the scheduling state machine.
func (d *Driver) pump() {
	d.refreshFloor()
	switch d.phase {
	case PhaseNone:
		d.pumpNone()
	case PhaseDrain:
		d.armSettle()
	case PhaseServe:
		d.pumpServe()
	}
}

// armSettle schedules the end of the drain phase: the medium must stay
// quiet for DrainSettle before the balloon opens.
func (d *Driver) armSettle() {
	if d.n.Busy() || d.settleArm != (sim.Handle{}) {
		return
	}
	d.settleArm = d.eng.After(d.cfg.DrainSettle, func(sim.Time) {
		d.settleArm = sim.Handle{}
		if d.phase == PhaseDrain && !d.n.Busy() {
			d.beginServe()
		}
	})
}

func (d *Driver) pumpNone() {
	other := d.pickQueued(false)
	box := d.pickQueued(true)
	if box != nil && (other == nil || box.vr <= other.vr) {
		if other == nil && !d.boxDeserves(box) {
			// Competitors are between sends but ahead on credit: hold the
			// balloon back briefly instead of making their next frames eat
			// a drain settle.
			d.armGrace()
			return
		}
		// Fair policy picks the sandbox: reserve the balloon now. If a
		// frame is on the air, phase 1 (drain) holds everything back until
		// it lands.
		d.activeBox = box
		d.balloonAt = d.eng.Now()
		d.balloonBlocked = false
		d.setPhase(PhaseDrain)
		d.armSettle()
		return
	}
	if other == nil || d.n.Busy() || !d.n.LinkUp() {
		return
	}
	d.transmit(other, d.headSocket(other.id))
}

// boxDeserves reports whether the sandbox's credit is minimal among all
// known apps, demand or not.
func (d *Driver) boxDeserves(box *appState) bool {
	for _, a := range d.apps {
		if a == box || a.boxed {
			continue
		}
		if box.vr > a.vr {
			return false
		}
	}
	return true
}

// armGrace schedules the starvation backstop for a waiting sandbox.
func (d *Driver) armGrace() {
	if d.graceArm != (sim.Handle{}) {
		return
	}
	d.graceArm = d.eng.After(d.cfg.Grace, func(sim.Time) {
		d.graceArm = sim.Handle{}
		if d.phase != PhaseNone {
			return
		}
		box := d.pickQueued(true)
		if box == nil || d.pickQueued(false) != nil {
			d.pump()
			return
		}
		d.activeBox = box
		d.balloonAt = d.eng.Now()
		d.balloonBlocked = false
		d.setPhase(PhaseDrain)
		d.armSettle()
	})
}

func (d *Driver) beginServe() {
	// Order matters: residency must be announced before the state restore,
	// because restoring can re-enter the pump (tail expiry callbacks) and
	// start transmitting immediately.
	d.setPhase(PhaseServe)
	d.othersState = d.n.State()
	if d.cbs.BoxResident != nil {
		d.cbs.BoxResident(d.activeBox.id, true)
	}
	d.n.Restore(d.activeBox.state)
	d.pumpServe()
}

func (d *Driver) pumpServe() {
	a := d.activeBox
	if d.n.Busy() {
		return
	}
	if d.closing {
		d.closeBalloon()
		return
	}
	s := d.headSocket(a.id)
	if s == nil {
		// The box went idle: hand the NIC back. Its tail energy is tracked
		// by its virtual NIC, so there is no need to hold the physical
		// device hostage through the tail; the driver simply reprograms
		// the power-save timer when it restores the shared state.
		d.closeBalloon()
		return
	}
	// Hand the NIC back once the box's credit exceeds the fair minimum by
	// a full service quantum (drain-psbox is implicit: one frame at a
	// time, and we only get here with the air clear).
	if min, ok := d.minOtherCredit(); ok && a.vr > min+float64(d.cfg.Quantum) {
		d.closeBalloon()
		return
	}
	if !d.n.LinkUp() {
		return // hold the balloon; retries resume when the link returns
	}
	d.transmit(a, s)
}

func (d *Driver) closeBalloon() {
	a := d.activeBox
	d.settleLostOpportunity()
	// Clear balloon state and end residency before the restore: restoring
	// the shared power state can re-enter the pump via NIC callbacks.
	d.setPhase(PhaseNone)
	d.activeBox = nil
	d.closing = false
	if d.cbs.BoxResident != nil {
		d.cbs.BoxResident(a.id, false)
	}
	a.state = d.n.State()
	d.n.Restore(d.othersState)
	d.pumpNone()
}
