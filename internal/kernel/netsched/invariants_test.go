package netsched

import (
	"testing"
	"testing/quick"

	"psbox/internal/sim"
)

// TestQuickBytesConservation: under random send patterns and box churn,
// every enqueued byte is eventually transmitted exactly once.
func TestQuickBytesConservation(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		fx := newFixture(t)
		r := sim.NewRand(seed)
		socks := map[int]*Socket{
			1: fx.drv.NewSocket(1),
			2: fx.drv.NewSocket(2),
			3: fx.drv.NewSocket(3),
		}
		if r.Intn(2) == 0 {
			fx.drv.BoxEnter(1)
		}
		sent := map[int]uint64{}
		n := 0
		for _, v := range raw {
			if n >= 30 {
				break
			}
			n++
			app := int(v)%3 + 1
			bytes := int(v)*7 + 100
			at := sim.Duration(r.Intn(300)) * sim.Millisecond
			fx.eng.After(at, func(sim.Time) {
				sent[app] += uint64(bytes)
				fx.drv.Send(socks[app], bytes)
			})
		}
		for i := 0; i < 3; i++ {
			app := r.Intn(3) + 1
			at := sim.Duration(50+r.Intn(250)) * sim.Millisecond
			if i%2 == 0 {
				fx.eng.After(at, func(sim.Time) { fx.drv.BoxLeave(app) })
			} else {
				fx.eng.After(at, func(sim.Time) { fx.drv.BoxEnter(app) })
			}
		}
		fx.eng.RunFor(10 * sim.Second)
		for app := 1; app <= 3; app++ {
			if fx.drv.SentBytes(app) != sent[app] || fx.drv.Backlog(app) != 0 {
				return false
			}
		}
		return !fx.n.Busy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVirtualNICOnlySeesOwner: the per-sandbox virtual NIC never
// shows active power while another app's frame is on the air.
func TestQuickVirtualNICOnlySeesOwner(t *testing.T) {
	f := func(seed uint64) bool {
		fx := newFixture(t)
		r := sim.NewRand(seed)
		fx.drv.BoxEnter(1)
		s1 := fx.drv.NewSocket(1)
		s2 := fx.drv.NewSocket(2)
		fx.feeder(s2, 1200+r.Intn(400), 3)
		var box func(sim.Time)
		box = func(sim.Time) {
			fx.drv.Send(s1, 300+r.Intn(500))
			fx.eng.After(sim.Duration(30+r.Intn(80))*sim.Millisecond, box)
		}
		box(0)
		vrail := fx.drv.VirtualRail(1)
		cfg := fx.n.Config()
		ok := true
		var poll func(sim.Time)
		poll = func(sim.Time) {
			if vrail.Power() == cfg.ActiveW[0] {
				// Claimed active: the box itself must have a frame on air.
				if a, found := fx.drv.apps[1]; !found || a.inflight == 0 {
					ok = false
				}
			}
			fx.eng.After(150*sim.Microsecond, poll)
		}
		fx.eng.After(150*sim.Microsecond, poll)
		fx.eng.RunFor(1 * sim.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBoxLeaveInEveryNetPhase: teardown is safe in every balloon phase.
func TestBoxLeaveInEveryNetPhase(t *testing.T) {
	for _, leaveAt := range []sim.Duration{
		0,                     // reservation just made (drain)
		6 * sim.Millisecond,   // mid drain settle
		14 * sim.Millisecond,  // serving, frame on air
		300 * sim.Millisecond, // long after
	} {
		fx := newFixture(t)
		s1 := fx.drv.NewSocket(1)
		s2 := fx.drv.NewSocket(2)
		fx.drv.BoxEnter(1)
		fx.drv.Send(s1, 3000)
		fx.drv.Send(s2, 2000)
		fx.eng.RunFor(leaveAt)
		fx.drv.BoxLeave(1)
		fx.eng.RunFor(2 * sim.Second)
		if fx.drv.Backlog(1) != 0 || fx.drv.Backlog(2) != 0 {
			t.Fatalf("leaveAt=%v: backlog stuck", leaveAt)
		}
		if fx.drv.Phase() != PhaseNone {
			t.Fatalf("leaveAt=%v: phase %v", leaveAt, fx.drv.Phase())
		}
		fx.drv.Send(s1, 400)
		fx.eng.RunFor(1 * sim.Second)
		if fx.drv.Backlog(1) != 0 {
			t.Fatalf("leaveAt=%v: post-leave service broken", leaveAt)
		}
	}
}
