package netsched

import (
	"testing"

	"psbox/internal/sim"
)

func TestLinkFlapRetransmitsLostPacket(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	f.drv.Send(s, 900) // 1 ms airtime
	if !f.n.Busy() {
		t.Fatal("packet should be on the air")
	}
	f.eng.RunFor(200 * sim.Microsecond)
	f.n.SetLink(false) // mid-flight: the frame is lost
	if f.drv.SentBytes(1) != 0 {
		t.Fatal("lost frame counted as sent")
	}
	if f.drv.Backlog(1) == 0 {
		t.Fatal("lost frame must return to the backlog")
	}
	f.eng.RunFor(10 * sim.Millisecond)
	f.n.SetLink(true)
	f.eng.RunFor(20 * sim.Millisecond)
	if f.drv.SentBytes(1) != 900 || f.drv.SentPackets(1) != 1 {
		t.Fatalf("after recovery sent = %d bytes %d pkts",
			f.drv.SentBytes(1), f.drv.SentPackets(1))
	}
	if f.drv.LinkRetries() != 1 {
		t.Fatalf("retries = %d, want 1", f.drv.LinkRetries())
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatal("backlog should drain after retransmit")
	}
}

func TestLinkFlapWhileIdleIsHarmless(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	f.n.SetLink(false)
	f.n.SetLink(true)
	f.drv.Send(s, 900)
	f.eng.RunFor(5 * sim.Millisecond)
	if f.drv.SentPackets(1) != 1 || f.drv.LinkRetries() != 0 {
		t.Fatalf("sent=%d retries=%d", f.drv.SentPackets(1), f.drv.LinkRetries())
	}
}

func TestLinkDownHoldsTransmissionUntilRecovery(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	f.n.SetLink(false)
	f.drv.Send(s, 900) // queued while down: must not panic, must not transmit
	f.eng.RunFor(30 * sim.Millisecond)
	if f.n.Busy() || f.drv.SentPackets(1) != 0 {
		t.Fatal("transmitted into a dead link")
	}
	f.n.SetLink(true)
	f.eng.RunFor(5 * sim.Millisecond)
	if f.drv.SentPackets(1) != 1 {
		t.Fatal("queued packet not sent after link recovery")
	}
}

func TestLinkFlapBurnedAirtimeIsBilled(t *testing.T) {
	f := newFixture(t)
	s1 := f.drv.NewSocket(1)
	before := f.drv.VRuntime(1)
	f.drv.Send(s1, 900)
	f.eng.RunFor(500 * sim.Microsecond)
	f.n.SetLink(false)
	// The lost frame's airtime was burned for nothing; the owner pays its
	// byte cost anyway, exactly like any other occupancy.
	if got := f.drv.VRuntime(1) - before; got < 900 {
		t.Fatalf("burned airtime billed %v bytes, want >= 900", got)
	}
	f.eng.RunFor(2 * sim.Millisecond)
	f.n.SetLink(true)
	f.eng.RunFor(20 * sim.Millisecond)
	if f.drv.SentPackets(1) != 1 {
		t.Fatal("retransmit did not complete")
	}
}

func TestRepeatedFlapsBackOff(t *testing.T) {
	f := newFixture(t)
	s := f.drv.NewSocket(1)
	f.drv.Send(s, 900) // 1 ms airtime
	// Kill the same frame on three consecutive attempts. The retry backoff
	// doubles each time (5, 10, 20 ms by default), so each retransmission
	// starts later than the last; losing it mid-air each time must keep
	// counting retries without losing the frame.
	down := func() {
		if !f.n.Busy() {
			t.Fatal("expected a retransmission on the air")
		}
		f.n.SetLink(false)
		f.eng.RunFor(sim.Millisecond)
		f.n.SetLink(true)
	}
	f.eng.RunFor(300 * sim.Microsecond)
	down()                               // retry 1: backoff 5 ms
	f.eng.RunFor(4500 * sim.Microsecond) // retransmission mid-air again
	down()                               // retry 2: backoff 10 ms
	f.eng.RunFor(9500 * sim.Microsecond) // retransmission mid-air again
	down()                               // retry 3: backoff 20 ms
	f.eng.RunFor(100 * sim.Millisecond)  // let the final attempt land
	if f.n.Flaps() != 3 {
		t.Fatalf("flaps = %d, want 3", f.n.Flaps())
	}
	if f.drv.LinkRetries() != 3 {
		t.Fatalf("retries = %d, want 3", f.drv.LinkRetries())
	}
	if f.drv.SentPackets(1) != 1 {
		t.Fatalf("sent = %d packets after flaps", f.drv.SentPackets(1))
	}
	if f.drv.Backlog(1) != 0 {
		t.Fatal("backlog stuck after repeated flaps")
	}
}
