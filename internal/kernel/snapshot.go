package kernel

import (
	"sort"

	"psbox/internal/snapshot"
)

func (t *Task) snapshot(enc *snapshot.Encoder) {
	enc.Str(t.Name)
	enc.I64(int64(t.st.ID))
	enc.F64(t.remaining)
	enc.F64(t.memGBs)
	enc.I64(int64(t.core))
	enc.I64(int64(t.runStart))
	enc.F64(t.runRate)
	enc.U64(t.compArm.Seq())
	enc.Str(t.waitDev)
	enc.Bool(t.waitNet)
	enc.I64(int64(t.waitMax))
	enc.U64(t.sleepArm.Seq())
	enc.Bool(t.dead)
	t.env.Rand.Snapshot(enc)
}

func (a *App) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(a.ID))
	enc.Str(a.Name)
	names := make([]string, 0, len(a.counters))
	for name := range a.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	enc.Len(len(names))
	for _, name := range names {
		enc.Str(name)
		enc.F64(a.counters[name])
	}
	a.rand.Snapshot(enc)
	enc.I64(int64(a.demandCount))
	enc.I64(int64(a.demandSince))
	enc.I64(int64(a.demandAccum))
	enc.Len(len(a.sockets))
	for _, s := range a.sockets {
		enc.I64(int64(s.ID))
	}
	enc.Len(len(a.tasks))
	for _, t := range a.tasks {
		t.snapshot(enc)
	}
}

// Snapshot encodes the kernel: its randomness stream, the attached
// accelerator names, every app (creation order) with its tasks, and the
// per-core running task identity.
func (k *Kernel) Snapshot(enc *snapshot.Encoder) {
	k.rand.Snapshot(enc)
	enc.Len(len(k.accelKeys))
	for _, name := range k.accelKeys {
		enc.Str(name)
	}
	enc.I64(int64(k.nextApp))
	enc.Len(len(k.appList))
	for _, a := range k.appList {
		a.snapshot(enc)
	}
	enc.Len(len(k.running))
	for _, t := range k.running {
		if t == nil {
			enc.I64(-1)
		} else {
			enc.I64(int64(t.st.ID))
		}
	}
}

// Restore verifies the live kernel against a checkpoint section.
func (k *Kernel) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, k.Snapshot) }
