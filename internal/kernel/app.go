package kernel

import (
	"fmt"

	"psbox/internal/kernel/netsched"
	"psbox/internal/kernel/sched"
	"psbox/internal/sim"
)

// App is a principal: one application consisting of one or more tasks —
// the unit a power sandbox encloses.
type App struct {
	ID   int
	Name string

	k        *Kernel
	tasks    []*Task
	sockets  []*netsched.Socket
	counters map[string]float64
	rand     *sim.Rand

	// CPU demand accounting: time with at least one runnable-or-running
	// task. The psbox virtual governor uses it to separate voluntary idle
	// (the app sleeps) from involuntary waiting (runnable but not
	// scheduled) when reconstructing the app's solo utilization.
	demandCount int
	demandSince sim.Time
	demandAccum sim.Duration
}

// demandDelta adjusts the count of runnable tasks, folding the elapsed
// demand stretch first.
func (a *App) demandDelta(d int) {
	now := a.k.eng.Now()
	if a.demandCount > 0 {
		a.demandAccum += now.Sub(a.demandSince)
	}
	a.demandCount += d
	if a.demandCount < 0 {
		panic(fmt.Sprintf("kernel: app %s demand count went negative", a.Name))
	}
	a.demandSince = now
}

// TotalDemand reports the accumulated time the app had runnable work.
func (a *App) TotalDemand() sim.Duration {
	d := a.demandAccum
	if a.demandCount > 0 {
		d += a.k.eng.Now().Sub(a.demandSince)
	}
	return d
}

// NewApp registers an application. The name is suffixed with the app ID so
// co-running instances of the same program stay distinguishable.
func (k *Kernel) NewApp(name string) *App {
	k.nextApp++
	a := &App{
		ID:       k.nextApp,
		Name:     fmt.Sprintf("%s#%d", name, k.nextApp),
		k:        k,
		counters: make(map[string]float64),
		rand:     sim.NewRand(k.rand.Uint64()),
	}
	k.apps[a.ID] = a
	k.appList = append(k.appList, a)
	k.bus.NameOwner(a.ID, a.Name)
	return a
}

// App returns a registered app by ID.
func (k *Kernel) App(id int) *App {
	a, ok := k.apps[id]
	if !ok {
		panic(fmt.Sprintf("kernel: no app %d", id))
	}
	return a
}

// FindApp returns a registered app, or nil when no app has that ID.
func (k *Kernel) FindApp(id int) *App { return k.apps[id] }

// Kernel returns the owning kernel.
func (a *App) Kernel() *Kernel { return a.k }

// Counter reads a throughput counter.
func (a *App) Counter(name string) float64 { return a.counters[name] }

// SetCounter overwrites a throughput counter. The sandbox supervisor uses
// it to seed a restarted incarnation with the preserve_data state its
// predecessor had accumulated, so the app resumes rather than replays.
func (a *App) SetCounter(name string, v float64) { a.counters[name] = v }

// Counters returns the app's throughput counters as a fresh map.
func (a *App) Counters() map[string]float64 {
	out := make(map[string]float64, len(a.counters))
	for k, v := range a.counters {
		out[k] = v
	}
	return out
}

// Tasks lists the app's tasks.
func (a *App) Tasks() []*Task { return a.tasks }

// Alive reports whether the app still has a live task. An app that has
// not spawned any tasks yet counts as alive: it has not exited, it merely
// has not started.
func (a *App) Alive() bool {
	if len(a.tasks) == 0 {
		return true
	}
	for _, t := range a.tasks {
		if !t.dead {
			return true
		}
	}
	return false
}

// CPUTime reports the app's total on-CPU time.
func (a *App) CPUTime() sim.Duration {
	var total sim.Duration
	for _, t := range a.tasks {
		total += t.st.CPUTime()
	}
	return total
}

// OpenSocket creates a transmission socket on the attached NIC and returns
// its index for use in Send actions.
func (a *App) OpenSocket() int {
	if a.k.net == nil {
		panic(fmt.Sprintf("kernel: app %s opening socket with no NIC attached", a.Name))
	}
	a.sockets = append(a.sockets, a.k.net.NewSocket(a.ID))
	return len(a.sockets) - 1
}

// Task is a kernel thread executing a Program.
type Task struct {
	Name string

	app *App
	st  *sched.Task
	//psbox:allow-snapshotstate programs are closures; replay re-creates them identically from the scenario
	prog Program
	env  *Env

	// Execution state of the current Compute action.
	remaining float64 // cycles left
	memGBs    float64 // DRAM bandwidth of the current burst
	core      int     // -1 when off-CPU
	runStart  sim.Time
	runRate   float64 // cycles/s at which the current stretch executes
	compArm   sim.Handle

	// Wait state.
	waitDev  string // non-empty: waiting on accelerator backlog
	waitNet  bool
	waitMax  int
	sleepArm sim.Handle
	dead     bool
}

// App returns the owning app.
func (t *Task) App() *App { return t.app }

// CPUTime reports the task's on-CPU time.
func (t *Task) CPUTime() sim.Duration { return t.st.CPUTime() }

// Dead reports whether the task has exited.
func (t *Task) Dead() bool { return t.dead }

// Spawn creates a task pinned to core running prog and makes it runnable.
func (a *App) Spawn(name string, core int, prog Program) *Task {
	t := &Task{
		Name: fmt.Sprintf("%s/%s", a.Name, name),
		app:  a,
		st:   a.k.sch.NewTask(a.ID, fmt.Sprintf("%s/%s", a.Name, name), core, 0),
		prog: prog,
		core: -1,
	}
	t.env = &Env{k: a.k, app: a, task: t, Rand: sim.NewRand(a.rand.Uint64())}
	a.tasks = append(a.tasks, t)
	a.k.tasks[t.st] = t
	// The task begins with an empty current action; its first Next() is
	// fetched when it first gets the CPU.
	t.remaining = 0
	a.demandDelta(+1)
	a.k.sch.Wake(t.st)
	return t
}

// Env is the execution environment handed to programs.
type Env struct {
	k    *Kernel
	app  *App
	task *Task

	// Rand is the task's private deterministic randomness.
	Rand *sim.Rand
}

// Now reports simulated time.
func (e *Env) Now() sim.Time { return e.k.eng.Now() }

// App returns the owning app.
func (e *Env) App() *App { return e.app }

// Kernel returns the kernel.
func (e *Env) Kernel() *Kernel { return e.k }

// Count adds n to one of the app's throughput counters.
func (e *Env) Count(name string, n float64) { e.app.counters[name] += n }
