// Package kernel is the simulated operating system: it owns the hardware
// models, the CPU scheduler, the accelerator and packet-scheduler drivers,
// and executes application programs — sequences of compute bursts, device
// submissions, and waits — under the scheduler's control.
package kernel

import (
	"psbox/internal/sim"
)

// Action is one step of an application program. A task must be on a CPU to
// issue actions: compute costs CPU time; submissions are issued instantly
// between computes (their CPU cost is part of the program's compute
// bursts); waits block the task.
type Action interface{ isAction() }

// Compute consumes CPU cycles. Wall time depends on the cluster's current
// DVFS operating point. MemGBs is the DRAM bandwidth the burst streams
// while executing (0 for cache-resident code); it drives the §7(4) DRAM
// power model when a DRAM channel is attached.
type Compute struct {
	Cycles float64
	MemGBs float64
}

// SubmitAccel asynchronously enqueues a command on an accelerator (GPU or
// DSP). The task continues immediately.
type SubmitAccel struct {
	Dev  string // driver name, e.g. "gpu", "dsp"
	Kind string // command type; same kind ⇒ same power signature
	Work float64
	DynW float64 // dynamic watts while executing (at top frequency)
}

// SubmitAccelAs enqueues an accelerator command on behalf of another app
// (§7 "Userspace OS daemon"): a trusted daemon that multiplexes client
// requests — an Android-style render or media server — must tag its
// submissions with the requesting client so that resource balloons and
// power attribution respect the client's psbox boundaries. The kernel
// would gate this capability; here any task may delegate.
type SubmitAccelAs struct {
	Dev        string
	Kind       string
	Work       float64
	DynW       float64
	OnBehalfOf int // client app ID charged and insulated for this command
}

// AwaitAccel blocks until the app's backlog (pending + in-flight commands)
// on the device is at most MaxBacklog.
type AwaitAccel struct {
	Dev        string
	MaxBacklog int
}

// Send deposits bytes into one of the app's sockets. Non-blocking.
type Send struct {
	Socket int // index into the app's sockets
	Bytes  int
}

// AwaitNet blocks until the app's unsent bytes are at most MaxBacklog.
type AwaitNet struct {
	MaxBacklog int
}

// SetTxLevel programs the app's NIC transmission power level (§4.2:
// transmission modes are part of the NIC's virtualizable power state).
// Non-blocking.
type SetTxLevel struct {
	Level int
}

// SetDisplayRegion updates what the app currently shows on the attached
// panel (§7(1)). Non-blocking.
type SetDisplayRegion struct {
	Pixels    int
	Luminance float64
}

// AcquireGPS opens the attached receiver for the app (§7(2)); the first
// user triggers a cold start. Non-blocking (fixes arrive asynchronously).
type AcquireGPS struct{}

// ReleaseGPS drops the app's hold on the receiver.
type ReleaseGPS struct{}

// Sleep blocks the task for a duration.
type Sleep struct {
	D sim.Duration
}

// Exit terminates the task.
type Exit struct{}

func (Compute) isAction()          {}
func (SubmitAccel) isAction()      {}
func (SubmitAccelAs) isAction()    {}
func (AwaitAccel) isAction()       {}
func (Send) isAction()             {}
func (SetTxLevel) isAction()       {}
func (SetDisplayRegion) isAction() {}
func (AcquireGPS) isAction()       {}
func (ReleaseGPS) isAction()       {}
func (AwaitNet) isAction()         {}
func (Sleep) isAction()            {}
func (Exit) isAction()             {}

// Program drives one task. Next is called when the previous action
// completes; the returned action executes next. Programs may inspect and
// use the environment (time, randomness, counters, the psbox API).
type Program interface {
	Next(env *Env) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(env *Env) Action

// Next implements Program.
func (f ProgramFunc) Next(env *Env) Action { return f(env) }

// Loop builds a program that repeats a fixed slice of actions forever.
func Loop(actions ...Action) Program {
	i := 0
	return ProgramFunc(func(*Env) Action {
		a := actions[i%len(actions)]
		i++
		return a
	})
}

// Sequence builds a program that runs the actions once, then exits.
func Sequence(actions ...Action) Program {
	i := 0
	return ProgramFunc(func(*Env) Action {
		if i >= len(actions) {
			return Exit{}
		}
		a := actions[i]
		i++
		return a
	})
}
