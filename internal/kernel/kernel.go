package kernel

import (
	"fmt"
	"sort"

	"psbox/internal/hw/cpu"
	"psbox/internal/hw/display"
	"psbox/internal/hw/dram"
	"psbox/internal/hw/gps"
	"psbox/internal/kernel/accel"
	"psbox/internal/kernel/netsched"
	"psbox/internal/kernel/sched"
	"psbox/internal/obs"
	"psbox/internal/sim"
)

// Config assembles a kernel over pre-built hardware models.
type Config struct {
	CPU   *cpu.CPU
	Sched sched.Config

	// Seed feeds the deterministic randomness handed to programs.
	Seed uint64
}

// Kernel is the simulated OS instance.
type Kernel struct {
	eng  *sim.Engine
	cpu  *cpu.CPU
	sch  *sched.Scheduler
	rand *sim.Rand

	accels    map[string]*accel.Driver
	accelKeys []string
	net       *netsched.Driver
	disp      *display.Display
	gpsDev    *gps.GPS
	mem       *dram.DRAM

	apps    map[int]*App
	appList []*App
	nextApp int
	tasks   map[*sched.Task]*Task
	running []*Task // per core

	cpuResidentHooks   []func(appID int, resident bool)
	accelResidentHooks map[string][]func(appID int, resident bool)
	netResidentHooks   []func(appID int, resident bool)

	// cpuUsage records per-core occupancy spans for the accounting layer.
	cpuUsage func(owner, core int, start, end sim.Time)

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
}

// SetBus routes kernel-level events to a bus and feeds it the owner-name
// table as apps are created. Subsystem drivers get their own SetBus calls
// from the wiring layer.
func (k *Kernel) SetBus(b *obs.Bus) {
	k.bus = b
	for _, a := range k.appList {
		b.NameOwner(a.ID, a.Name)
	}
}

// New builds a kernel over the given CPU. Accelerators and the NIC are
// attached afterwards with AttachAccel/AttachNet, before apps start.
func New(eng *sim.Engine, cfg Config) *Kernel {
	if cfg.CPU == nil {
		panic("kernel: need a CPU")
	}
	if cfg.Sched.Cores == 0 {
		cfg.Sched = sched.DefaultConfig(cfg.CPU.Cores())
	}
	if cfg.Sched.Cores != cfg.CPU.Cores() {
		panic("kernel: scheduler core count must match the CPU")
	}
	k := &Kernel{
		eng:                eng,
		cpu:                cfg.CPU,
		rand:               sim.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15),
		accels:             make(map[string]*accel.Driver),
		accelResidentHooks: make(map[string][]func(int, bool)),
		apps:               make(map[int]*App),
		tasks:              make(map[*sched.Task]*Task),
		running:            make([]*Task, cfg.CPU.Cores()),
	}
	k.sch = sched.New(eng, cfg.Sched, sched.Callbacks{
		RunTask:       k.onRunTask,
		StopTask:      k.onStopTask,
		CoreIdle:      k.onCoreIdle,
		GroupResident: k.onCPUResident,
	})
	k.cpu.OnFreqChange(k.onFreqChange)
	return k
}

// Engine exposes the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// CPU exposes the CPU model.
func (k *Kernel) CPU() *cpu.CPU { return k.cpu }

// Scheduler exposes the CPU scheduler.
func (k *Kernel) Scheduler() *sched.Scheduler { return k.sch }

// AttachAccel registers an accelerator driver under a name ("gpu", "dsp").
func (k *Kernel) AttachAccel(name string, d *accel.Driver) {
	if _, dup := k.accels[name]; dup {
		panic(fmt.Sprintf("kernel: accelerator %q already attached", name))
	}
	k.accels[name] = d
	k.accelKeys = append(k.accelKeys, name)
	sort.Strings(k.accelKeys)
	d.SetCallbacks(accel.Callbacks{
		BacklogChange: func(appID int) { k.checkAccelWaiters(name, appID) },
		BoxResident: func(appID int, r bool) {
			for _, fn := range k.accelResidentHooks[name] {
				fn(appID, r)
			}
		},
		Usage: d.Callbacks().Usage,
	})
}

// AttachNet registers the packet scheduler.
func (k *Kernel) AttachNet(d *netsched.Driver) {
	if k.net != nil {
		panic("kernel: NIC already attached")
	}
	k.net = d
	d.SetCallbacks(netsched.Callbacks{
		BacklogChange: k.checkNetWaiters,
		BoxResident: func(appID int, r bool) {
			for _, fn := range k.netResidentHooks {
				fn(appID, r)
			}
		},
		Usage: d.Callbacks().Usage,
	})
}

// Accel returns a named accelerator driver.
func (k *Kernel) Accel(name string) *accel.Driver {
	d, ok := k.accels[name]
	if !ok {
		panic(fmt.Sprintf("kernel: no accelerator %q", name))
	}
	return d
}

// HasAccel reports whether a named accelerator is attached.
func (k *Kernel) HasAccel(name string) bool {
	_, ok := k.accels[name]
	return ok
}

// AccelNames lists attached accelerators in stable order.
func (k *Kernel) AccelNames() []string { return k.accelKeys }

// EnableAccelWatchdogs arms the completion-deadline watchdog on every
// attached accelerator driver.
func (k *Kernel) EnableAccelWatchdogs(cfg accel.WatchdogConfig) {
	for _, name := range k.accelKeys {
		k.accels[name].EnableWatchdog(cfg)
	}
}

// Net returns the packet scheduler; nil if no NIC is attached.
func (k *Kernel) Net() *netsched.Driver { return k.net }

// AttachDisplay registers the panel (§7 extension scope).
func (k *Kernel) AttachDisplay(d *display.Display) {
	if k.disp != nil {
		panic("kernel: display already attached")
	}
	k.disp = d
}

// Display returns the panel; nil if absent.
func (k *Kernel) Display() *display.Display { return k.disp }

// AttachGPS registers the receiver (§7 extension scope).
func (k *Kernel) AttachGPS(g *gps.GPS) {
	if k.gpsDev != nil {
		panic("kernel: GPS already attached")
	}
	k.gpsDev = g
}

// GPS returns the receiver; nil if absent.
func (k *Kernel) GPS() *gps.GPS { return k.gpsDev }

// AttachDRAM registers the memory channel (§7(4) extension scope).
func (k *Kernel) AttachDRAM(d *dram.DRAM) {
	if k.mem != nil {
		panic("kernel: DRAM already attached")
	}
	k.mem = d
}

// DRAM returns the memory channel; nil if absent.
func (k *Kernel) DRAM() *dram.DRAM { return k.mem }

// Apps lists the registered apps in creation order.
func (k *Kernel) Apps() []*App { return k.appList }

// OnCPUResident registers a hook for CPU spatial-balloon residency; the
// psbox layer uses it for metering and power-state virtualization.
func (k *Kernel) OnCPUResident(fn func(appID int, resident bool)) {
	k.cpuResidentHooks = append(k.cpuResidentHooks, fn)
}

// OnAccelResident registers a hook for a device's temporal-balloon
// residency.
func (k *Kernel) OnAccelResident(dev string, fn func(appID int, resident bool)) {
	k.accelResidentHooks[dev] = append(k.accelResidentHooks[dev], fn)
}

// OnNetResident registers a hook for NIC balloon residency.
func (k *Kernel) OnNetResident(fn func(appID int, resident bool)) {
	k.netResidentHooks = append(k.netResidentHooks, fn)
}

// SetCPUUsageRecorder installs the accounting recorder for per-core
// occupancy spans.
func (k *Kernel) SetCPUUsageRecorder(fn func(owner, core int, start, end sim.Time)) {
	k.cpuUsage = fn
}

func (k *Kernel) onCPUResident(appID int, resident bool) {
	for _, fn := range k.cpuResidentHooks {
		fn(appID, resident)
	}
}
