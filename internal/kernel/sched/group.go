package sched

import (
	"fmt"

	"psbox/internal/obs"
	"psbox/internal/sim"
)

// groupEntity is the per-core scheduling entity of a psbox group, analogous
// to a cgroup's per-core sched_entity (§4.2: "a psbox has a set of
// scheduling entities {E}, one entity on each core").
type groupEntity struct {
	grp  *Group
	core int

	vr   sim.Duration
	loan sim.Duration
	want bool // wants out: needs a(n extra) loan to keep its core

	onCPU   bool
	running *Task   // group task on CPU (nil ⇒ forced idle)
	queue   []*Task // runnable, not-running group tasks on this core
}

func (g *groupEntity) vrun() sim.Duration     { return g.vr }
func (g *groupEntity) addVrun(d sim.Duration) { g.vr += d }
func (g *groupEntity) entityName() string {
	return fmt.Sprintf("psbox-app%d/core%d", g.grp.AppID, g.core)
}

// Group is the CPU-side representation of one power sandbox: the container
// of per-core entities, coscheduled as a spatial resource balloon.
type Group struct {
	AppID     int
	entities  []*groupEntity
	active    bool
	resident  bool
	announced bool // GroupResident(true) fired: every core has switched

	// Gang mode (§7 alternative): fixed periodic reservation instead of
	// demand-driven windows with loans.
	gang      bool
	gangCfg   GangConfig
	gangTimer sim.Handle

	pendingIPI []sim.Handle // per-core remote schedule-in events

	// Metrics.
	residentTime sim.Duration
	residentAt   sim.Time
	windows      uint64
	loanSettled  sim.Duration
}

// Resident reports whether the group's coscheduling window is open.
func (g *Group) Resident() bool { return g.resident }

// Windows reports how many coscheduling windows have completed.
func (g *Group) Windows() uint64 { return g.windows }

// ResidentTime reports accumulated coscheduling time.
func (g *Group) ResidentTime() sim.Duration { return g.residentTime }

// LoanSettled reports the total loan volume settled at window ends — the
// cost charged to the sandboxed app for its lost sharing opportunities.
func (g *Group) LoanSettled() sim.Duration { return g.loanSettled }

// EntityVRuntime exposes a per-core entity vruntime for tests and traces.
func (g *Group) EntityVRuntime(core int) sim.Duration { return g.entities[core].vr }

// ActivateGroup encloses appID's tasks in a psbox group: from now on they
// execute only inside coscheduled spatial balloons. Returns the group.
func (s *Scheduler) ActivateGroup(appID int) *Group {
	g, ok := s.groups[appID]
	if !ok {
		g = &Group{AppID: appID}
		for c := 0; c < s.cfg.Cores; c++ {
			g.entities = append(g.entities, &groupEntity{grp: g, core: c})
		}
		g.pendingIPI = make([]sim.Handle, s.cfg.Cores)
		s.groups[appID] = g
	}
	if g.active {
		return g
	}
	g.active = true
	// Fair (re)entry: an entity starts no earlier than the local minimum,
	// so a stale low vruntime from a previous window is not an advantage.
	for _, ge := range g.entities {
		if min := s.minVrun(ge.core); ge.vr < min {
			ge.vr = min
		}
	}
	// Move the app's tasks into the group.
	for _, t := range s.tasks {
		if t.AppID != appID || t.state == StateDead {
			continue
		}
		ge := g.entities[t.Core]
		t.ge = ge
		switch t.state {
		case StateRunning:
			s.bill(t.Core)
			s.stopCurrent(t.Core)
			t.state = StateRunnable
			ge.queue = append(ge.queue, t)
		case StateRunnable:
			if s.isParked(t) {
				continue // stays parked; delivered into the group on gate open
			}
			if !s.dequeue(t.Core, t) {
				panic(fmt.Sprintf("sched: runnable task %s missing from rq", t.Name))
			}
			ge.queue = append(ge.queue, t)
		}
	}
	for _, ge := range g.entities {
		if len(ge.queue) > 0 {
			s.enqueue(ge.core, ge)
		}
	}
	for c := 0; c < s.cfg.Cores; c++ {
		s.maybePreempt(c)
		if s.cores[c].cur == nil {
			s.reschedule(c)
		}
	}
	return g
}

// DeactivateGroup dissolves appID's group: tasks return to ordinary
// per-core scheduling, carrying the group's accrued disadvantage with them.
func (s *Scheduler) DeactivateGroup(appID int) {
	g, ok := s.groups[appID]
	if !ok || !g.active {
		return
	}
	// Mark inactive first so the window closed below cannot instantly
	// re-open from endCosched's own rescheduling.
	g.active = false
	if g.resident {
		s.endCosched(g)
	}
	for _, ge := range g.entities {
		s.dequeue(ge.core, ge)
		ge.queue = ge.queue[:0]
	}
	for _, t := range s.tasks {
		if t.AppID != appID || t.ge == nil {
			continue
		}
		ge := t.ge
		t.ge = nil
		// The loan repayment landed on the entity; the tasks inherit it so
		// leaving the box does not discard the charge.
		if t.vr < ge.vr {
			t.vr = ge.vr
		}
		if t.state == StateRunnable && !s.isParked(t) {
			s.enqueue(t.Core, t)
		}
	}
	for c := 0; c < s.cfg.Cores; c++ {
		s.maybePreempt(c)
		if s.cores[c].cur == nil {
			s.reschedule(c)
		}
	}
}

// beginCosched opens a coscheduling window for g, initiated by initCore
// having picked g's entity (§4.2 steps 1–2). The initiating core switches
// immediately; the others are shot down by IPI after IPIDelay.
func (s *Scheduler) beginCosched(g *Group, initCore int) {
	if s.residentGroup() != nil {
		panic("sched: coscheduling window while another group is resident")
	}
	g.resident = true
	s.resident = g
	g.residentAt = s.eng.Now()
	g.windows++
	s.shootdowns++
	s.bus.Instant(obs.CatSched, "cosched-begin", g.AppID, int64(initCore), s.rail, "")
	s.bus.Count("sched.shootdowns", 0, s.rail, 1)
	s.bus.Count("sched.cosched_windows", g.AppID, s.rail, 1)
	ge := g.entities[initCore]
	s.cores[initCore].cur = ge
	ge.onCPU = true
	ge.loan = s.initialLoan(ge)
	s.groupPickLocal(ge)
	for c := 0; c < s.cfg.Cores; c++ {
		if c == initCore {
			continue
		}
		// The remote entity must not be independently schedulable while the
		// IPI is in flight.
		s.dequeue(c, g.entities[c])
		core := c
		g.pendingIPI[c] = s.eng.After(s.cfg.IPIDelay, func(sim.Time) {
			s.remoteScheduleIn(g, core)
		})
	}
	s.checkAnnounce(g)
}

// checkAnnounce fires GroupResident(true) once the balloon boundary is
// fully established — i.e., every core has switched to the group's entity.
// Power observation starts here: during IPI transit other apps are still
// winding down, so their activity must not reach the sandbox's meter.
func (s *Scheduler) checkAnnounce(g *Group) {
	if g.announced || !g.resident {
		return
	}
	for _, ge := range g.entities {
		if !ge.onCPU {
			return
		}
	}
	g.announced = true
	s.bus.Instant(obs.CatSched, "group-resident", g.AppID, 1, s.rail, "")
	if s.cbs.GroupResident != nil {
		s.cbs.GroupResident(g.AppID, true)
	}
}

// initialLoan computes Δ for an entity being scheduled in: the credit gap
// to the most favorable competing entity on its core (§4.2 step 2).
func (s *Scheduler) initialLoan(ge *groupEntity) sim.Duration {
	best, ok := s.minOtherVrun(ge.core, ge.grp)
	if !ok || ge.vr <= best {
		return 0
	}
	return ge.vr - best
}

// remoteScheduleIn is the IPI handler on a shot-down core (§4.2 step 2).
func (s *Scheduler) remoteScheduleIn(g *Group, core int) {
	g.pendingIPI[core] = sim.Handle{}
	if !g.resident {
		return // window ended before the IPI landed
	}
	c := s.cores[core]
	s.bill(core)
	if prev := c.curTask; prev != nil {
		s.stopCurrent(core)
		s.enqueue(core, prev)
	}
	c.cur = g.entities[core]
	ge := g.entities[core]
	ge.onCPU = true
	ge.loan = s.initialLoan(ge)
	s.groupPickLocal(ge)
	s.checkAnnounce(g)
}

// residentGroup returns the group currently holding a coscheduling window,
// nil if none. Spatial balloons occupy every core, so at most one window is
// open at a time.
func (s *Scheduler) residentGroup() *Group { return s.resident }

// groupPickLocal chooses what an on-CPU entity executes: the minimum-
// vruntime queued group task, or forced idle when the app has nothing
// runnable on this core.
func (s *Scheduler) groupPickLocal(ge *groupEntity) {
	if ge.running != nil {
		return
	}
	best := -1
	for i, t := range ge.queue {
		if best < 0 || t.vr < ge.queue[best].vr {
			best = i
		}
	}
	if best < 0 {
		s.goIdle(ge.core)
		return
	}
	t := ge.queue[best]
	ge.queue = append(ge.queue[:best], ge.queue[best+1:]...)
	ge.running = t
	s.bus.Instant(obs.CatSched, "group-pick", t.AppID, int64(ge.core), s.rail, t.Name)
	s.runTask(ge.core, t)
}

// groupTaskWake handles a wakeup of a task whose app is sandboxed.
func (s *Scheduler) groupTaskWake(t *Task) {
	ge := t.ge
	if ge.grp.resident && ge.onCPU && ge.running == nil {
		// A forced-idle core inside the balloon picks the waker up at once.
		ge.running = t
		s.bill(ge.core)
		s.runTask(ge.core, t)
		return
	}
	ge.queue = append(ge.queue, t)
	if !ge.grp.resident {
		if !s.contains(ge.core, ge) {
			s.enqueue(ge.core, ge)
		}
		s.maybePreempt(ge.core)
	}
}

func (s *Scheduler) contains(core int, e rqe) bool {
	for _, x := range s.cores[core].rq {
		if x == e {
			return true
		}
	}
	return false
}

// groupTaskBlock handles blocking of a sandboxed task.
func (s *Scheduler) groupTaskBlock(t *Task) {
	ge := t.ge
	g := ge.grp
	if t.state == StateRunning {
		s.bill(ge.core)
		s.stopCurrent(ge.core)
		t.state = StateBlocked
		if s.groupHasRunnable(g) {
			s.groupPickLocal(ge)
		} else if g.resident && !g.gang {
			// Demand windows close when the app goes idle; a gang's
			// reservation holds (and wastes) its slot regardless.
			s.endCosched(g)
		}
		return
	}
	// Runnable: remove from its entity queue.
	for i, q := range ge.queue {
		if q == t {
			ge.queue = append(ge.queue[:i], ge.queue[i+1:]...)
			break
		}
	}
	t.state = StateBlocked
	if !g.resident && len(ge.queue) == 0 {
		s.dequeue(ge.core, ge)
	}
}

// groupHasRunnable reports whether any task of g is runnable or running.
func (s *Scheduler) groupHasRunnable(g *Group) bool {
	for _, ge := range g.entities {
		if ge.running != nil || len(ge.queue) > 0 {
			return true
		}
	}
	return false
}

// groupTick accrues loans and closes the window when every contested
// core's entity would need a(n extra) loan to continue (§4.2 steps 3–4).
// Entities on cores with no competing work are indifferent: they neither
// need loans nor veto the window's end — otherwise a single uncontested
// core would hold the balloon open forever and starve competitors on the
// other cores.
func (s *Scheduler) groupTick() {
	g := s.residentGroup()
	if g == nil || g.gang {
		return // gang windows are bounded by their timer, not by loans
	}
	allOn, allWant, anyContested := true, true, false
	for _, ge := range g.entities {
		if !ge.onCPU {
			allOn = false
			continue
		}
		best, ok := s.minOtherVrun(ge.core, g)
		if !ok {
			ge.want = false
			continue
		}
		anyContested = true
		if ge.vr > best {
			if need := ge.vr - best; need > ge.loan {
				ge.loan = need
			}
			ge.want = true
		} else {
			ge.want = false
			allWant = false
		}
	}
	if allOn && anyContested && allWant {
		s.endCosched(g)
	}
}

// groupLocalTick applies within-balloon preemption among the app's own
// tasks on one core.
func (s *Scheduler) groupLocalTick(ge *groupEntity) {
	if ge.running == nil {
		s.groupPickLocal(ge)
		return
	}
	best := -1
	for i, t := range ge.queue {
		if best < 0 || t.vr < ge.queue[best].vr {
			best = i
		}
	}
	if best >= 0 && ge.queue[best].vr+s.cfg.Granularity < ge.running.vr {
		prev := ge.running
		s.stopCurrent(ge.core)
		ge.queue = append(ge.queue, prev)
		s.groupPickLocal(ge)
	}
}

// endCosched closes g's window: settles loans by even redistribution
// (§4.2 step 5) and resumes ordinary scheduling on every core.
func (s *Scheduler) endCosched(g *Group) {
	if !g.resident {
		return
	}
	for c := 0; c < s.cfg.Cores; c++ {
		s.bill(c)
	}
	// Loan repayment (§4.2 step 5): beyond the runtime already billed while
	// coscheduled (including forced idle), the group pays back the loans
	// that let its entities jump their queues. The total is split evenly
	// across the per-core entities for long-term fairness over all cores.
	// This extra charge is what disadvantages the sandboxed app in future
	// competition and confines the balloon's cost to it.
	var total sim.Duration
	for _, ge := range g.entities {
		total += ge.loan
	}
	if g.gang {
		total = 0 // fixed reservations carry no loans to repay
	}
	share := sim.Duration(int64(total) / int64(s.cfg.Cores))
	for _, ge := range g.entities {
		if !s.cfg.DisableLoanRepayment {
			ge.vr += share
		}
		ge.loan = 0
		ge.want = false
	}
	g.loanSettled += total
	for c, h := range g.pendingIPI {
		if h != (sim.Handle{}) {
			s.eng.Cancel(h)
			g.pendingIPI[c] = sim.Handle{}
		}
	}
	g.resident = false
	s.resident = nil
	g.residentTime += s.eng.Now().Sub(g.residentAt)
	s.shootdowns++
	s.bus.Span(obs.CatSched, "cosched", g.AppID, int64(total), s.rail, "", g.residentAt)
	s.bus.Count("sched.shootdowns", 0, s.rail, 1)
	for _, ge := range g.entities {
		if !ge.onCPU {
			continue
		}
		c := s.cores[ge.core]
		if c.curTask != nil {
			t := c.curTask
			s.stopCurrent(ge.core)
			ge.queue = append(ge.queue, t)
		}
		c.cur = nil
		ge.onCPU = false
	}
	if g.active {
		for _, ge := range g.entities {
			if len(ge.queue) > 0 && !s.contains(ge.core, ge) {
				s.enqueue(ge.core, ge)
			}
		}
	}
	if g.announced {
		g.announced = false
		s.bus.Instant(obs.CatSched, "group-resident", g.AppID, 0, s.rail, "")
		if s.cbs.GroupResident != nil {
			s.cbs.GroupResident(g.AppID, false)
		}
	}
	for c := 0; c < s.cfg.Cores; c++ {
		if s.cores[c].cur == nil {
			s.reschedule(c)
		}
	}
}
