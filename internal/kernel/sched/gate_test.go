package sched

import (
	"testing"

	"psbox/internal/sim"
)

// TestGateParksRunningHog: closing a gate takes the app's running task off
// the CPU and the competitor inherits the core; opening it resumes sharing.
func TestGateParksRunningHog(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "gated", 0, 0)
	b := h.hog(2, "free", 0, 0)
	h.eng.RunFor(100 * sim.Millisecond)

	h.s.SetAppGate(1, false)
	if a.State() != StateRunnable {
		t.Fatalf("gated hog state = %v, want runnable (parked)", a.State())
	}
	if !h.s.Gated(1) {
		t.Fatal("Gated(1) = false after close")
	}
	beforeA, beforeB := a.CPUTime(), b.CPUTime()
	h.eng.RunFor(100 * sim.Millisecond)
	if a.CPUTime() != beforeA {
		t.Fatalf("gated hog ran %v while parked", a.CPUTime()-beforeA)
	}
	if got := b.CPUTime() - beforeB; got < 99*sim.Millisecond {
		t.Fatalf("free hog got only %v of the gated window", got)
	}

	h.s.SetAppGate(1, true)
	beforeA = a.CPUTime()
	h.eng.RunFor(200 * sim.Millisecond)
	if got := a.CPUTime() - beforeA; got < 80*sim.Millisecond || got > 120*sim.Millisecond {
		t.Fatalf("reopened hog share = %v of 200ms, want ≈half", got)
	}
}

// TestGateParksWakes: a periodic task waking behind a closed gate parks
// instead of running, and all parked wakes deliver on open.
func TestGateParksWakes(t *testing.T) {
	h := newHarness(t, 1)
	p := h.periodic(1, "p", 0, 1*sim.Millisecond, 4*sim.Millisecond)
	h.eng.RunFor(20 * sim.Millisecond)

	h.s.SetAppGate(1, false)
	h.eng.RunFor(50 * sim.Millisecond)
	// The task either blocked mid-sleep (then woke parked) or was parked
	// while runnable; either way it must not have run.
	if p.State() == StateRunning {
		t.Fatal("gated periodic task is running")
	}
	before := p.CPUTime()
	h.eng.RunFor(50 * sim.Millisecond)
	if p.CPUTime() != before {
		t.Fatal("gated periodic task accumulated CPU time")
	}

	h.s.SetAppGate(1, true)
	h.eng.RunFor(50 * sim.Millisecond)
	if p.CPUTime() == before {
		t.Fatal("periodic task never resumed after gate opened")
	}
}

// TestGateDutyCycle: a 25% duty cycle (5ms open / 15ms closed) confines a
// hog to roughly a quarter of the core while a competitor absorbs the rest.
func TestGateDutyCycle(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "throttled", 0, 0)
	b := h.hog(2, "free", 0, 0)
	const period = 20 * sim.Millisecond
	const open = 5 * sim.Millisecond
	var cycle func(sim.Time)
	cycle = func(sim.Time) {
		h.s.SetAppGate(1, false)
		h.eng.After(period-open, func(sim.Time) {
			h.s.SetAppGate(1, true)
			h.eng.After(open, cycle)
		})
	}
	h.eng.After(open, cycle)
	h.eng.RunFor(2 * sim.Second)
	sa, sb := shareOf(a, 2*sim.Second), shareOf(b, 2*sim.Second)
	// The throttled hog gets at most half of each open slice (it shares
	// with b) ⇒ ≈12.5%; b gets the rest.
	if sa > 0.16 {
		t.Fatalf("throttled share = %v, want ≤ duty-bounded ≈0.125", sa)
	}
	if sb < 0.80 {
		t.Fatalf("free share = %v, want ≥0.80", sb)
	}
}

// TestGateBlockAndExitWhileParked: blocking or exiting a parked task must
// remove it from the parked list, not leave a phantom delivery behind.
func TestGateBlockAndExitWhileParked(t *testing.T) {
	h := newHarness(t, 1)
	a := h.s.NewTask(1, "a", 0, 0)
	b := h.s.NewTask(1, "b", 0, 0)
	h.s.Wake(a)
	h.s.Wake(b)
	h.s.SetAppGate(1, false)
	if !h.s.isParked(a) || !h.s.isParked(b) {
		t.Fatal("both tasks should be parked")
	}
	h.s.Block(a)
	if a.State() != StateBlocked || h.s.isParked(a) {
		t.Fatalf("blocked parked task: state=%v parked=%v", a.State(), h.s.isParked(a))
	}
	h.s.Exit(b)
	if b.State() != StateDead || h.s.isParked(b) {
		t.Fatalf("exited parked task: state=%v parked=%v", b.State(), h.s.isParked(b))
	}
	h.s.SetAppGate(1, true) // must not deliver anything
	h.eng.RunFor(10 * sim.Millisecond)
	if a.CPUTime() != 0 || b.CPUTime() != 0 {
		t.Fatal("phantom delivery of blocked/exited task")
	}
	// The blocked task wakes normally now that the gate is open.
	h.s.Wake(a)
	h.eng.RunFor(10 * sim.Millisecond)
	if a.CPUTime() == 0 {
		t.Fatal("woken task did not run after gate reopened")
	}
}

// TestGateClosesBalloonWindow: gating a boxed app ends its coscheduling
// window (nothing runnable inside) and the competitor reclaims the cores.
func TestGateClosesBalloonWindow(t *testing.T) {
	h := newHarness(t, 2)
	a0 := h.hog(1, "boxed0", 0, 0)
	h.hog(1, "boxed1", 1, 0)
	free := h.hog(2, "free", 0, 0)
	g := h.s.ActivateGroup(1)
	h.eng.RunFor(100 * sim.Millisecond)
	if g.Windows() == 0 {
		t.Fatal("balloon never opened")
	}

	h.s.SetAppGate(1, false)
	if g.Resident() {
		t.Fatal("window still resident after gating the app")
	}
	beforeFree, beforeA := free.CPUTime(), a0.CPUTime()
	h.eng.RunFor(100 * sim.Millisecond)
	if a0.CPUTime() != beforeA {
		t.Fatal("gated boxed task ran")
	}
	if free.CPUTime()-beforeFree < 99*sim.Millisecond {
		t.Fatal("competitor did not reclaim the core")
	}

	h.s.SetAppGate(1, true)
	windows := g.Windows()
	h.eng.RunFor(100 * sim.Millisecond)
	if g.Windows() <= windows {
		t.Fatal("balloon windows did not resume after gate opened")
	}
}

// TestGateActivateDeactivateWhileParked: box membership changes while the
// app is gated must neither panic nor double-deliver parked tasks.
func TestGateActivateDeactivateWhileParked(t *testing.T) {
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	h.hog(2, "free", 0, 0)
	h.eng.RunFor(20 * sim.Millisecond)

	h.s.SetAppGate(1, false)
	h.s.ActivateGroup(1) // parked task joins the group but stays parked
	if !h.s.isParked(a) {
		t.Fatal("task left parked list on ActivateGroup")
	}
	h.eng.RunFor(20 * sim.Millisecond)
	h.s.DeactivateGroup(1) // and leaves it without being enqueued
	if !h.s.isParked(a) {
		t.Fatal("task left parked list on DeactivateGroup")
	}
	before := a.CPUTime()
	h.eng.RunFor(20 * sim.Millisecond)
	if a.CPUTime() != before {
		t.Fatal("parked task ran during box churn")
	}
	h.s.SetAppGate(1, true)
	h.eng.RunFor(40 * sim.Millisecond)
	if a.CPUTime() == before {
		t.Fatal("task never resumed after churn + gate open")
	}
}

// TestGateIdempotent: double close and double open are no-ops.
func TestGateIdempotent(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "a", 0, 0)
	h.s.SetAppGate(1, false)
	h.s.SetAppGate(1, false)
	if n := len(h.s.parked); n != 1 {
		t.Fatalf("parked list has %d entries after double close", n)
	}
	h.s.SetAppGate(1, true)
	h.s.SetAppGate(1, true)
	h.eng.RunFor(10 * sim.Millisecond)
	if a.CPUTime() == 0 {
		t.Fatal("task did not run after double open")
	}
}
