// Package sched implements the simulated kernel's multicore CPU scheduler:
// a CFS-like fair scheduler (per-core runqueues ordered by virtual runtime)
// extended with the paper's §4.2 psbox mechanisms — spatial resource
// balloons realized as coscheduled group entities, IPI task shootdown, and
// scheduling loans that charge lost sharing opportunities to the sandboxed
// app.
package sched

import (
	"fmt"

	"psbox/internal/obs"
	"psbox/internal/sim"
)

// DefaultWeight is the scheduling weight of an ordinary task (cf. the CFS
// weight of nice-0 tasks).
const DefaultWeight = 1024

// State is a task's scheduling state.
type State int

const (
	// StateBlocked: not runnable (sleeping or waiting on I/O).
	StateBlocked State = iota
	// StateRunnable: waiting on a runqueue.
	StateRunnable
	// StateRunning: currently executing on a core.
	StateRunning
	// StateDead: exited.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateBlocked:
		return "blocked"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Task is one schedulable thread. Tasks have static core affinity (the
// simulated platforms have two cores and the workloads pin their threads,
// as the paper's benchmarks effectively do).
type Task struct {
	ID     int
	AppID  int
	Name   string
	Core   int
	Weight int64

	vr      sim.Duration
	state   State
	ge      *groupEntity // non-nil while the app's psbox group is active
	started sim.Time     // when it last went on-CPU

	// cpuTime accumulates actual execution time, for throughput/usage
	// reporting.
	cpuTime sim.Duration
}

// VRuntime reports the task's weighted virtual runtime.
func (t *Task) VRuntime() sim.Duration { return t.vr }

// State reports the scheduling state.
func (t *Task) State() State { return t.state }

// CPUTime reports total on-CPU time consumed.
func (t *Task) CPUTime() sim.Duration { return t.cpuTime }

// Config tunes the scheduler.
type Config struct {
	Cores int

	// Tick is the scheduler tick period (Linux: 1–10 ms).
	Tick sim.Duration

	// Granularity is the minimum vruntime lead a waiting entity needs to
	// preempt at a tick, bounding context-switch churn.
	Granularity sim.Duration

	// WakeupBonus caps how far behind the runqueue minimum a waking
	// sleeper may be placed (CFS sleeper fairness).
	WakeupBonus sim.Duration

	// IPIDelay is the latency of a task-shootdown inter-processor
	// interrupt; remote cores join/leave a coscheduling window this much
	// later. This is the "tens of µs" scheduling-latency cost of §6.2.
	IPIDelay sim.Duration

	// DisableLoanRepayment turns off the §4.2 step-5 loan settlement.
	// Only the ablation study uses this: without repayment the sandboxed
	// app does not pay for its lost sharing opportunities and the Fig. 8
	// confinement degrades.
	DisableLoanRepayment bool
}

// DefaultConfig mirrors a CFS-like configuration on an embedded dual-core.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:       cores,
		Tick:        1 * sim.Millisecond,
		Granularity: 500 * sim.Microsecond,
		WakeupBonus: 2 * sim.Millisecond,
		IPIDelay:    15 * sim.Microsecond,
	}
}

// Callbacks connect the scheduler to the kernel's execution engine and to
// the psbox layer. All callbacks may be nil.
type Callbacks struct {
	// RunTask fires when a core starts executing t.
	RunTask func(core int, t *Task)
	// StopTask fires when a core stops executing t (preemption, block,
	// exit, or balloon switch).
	StopTask func(core int, t *Task)
	// CoreIdle fires when a core goes idle — including forced idle inside
	// a spatial balloon, which is precisely what lowers the power in the
	// paper's Fig. 7(b).
	CoreIdle func(core int)
	// GroupResident fires when a psbox group's coscheduling window begins
	// (resident=true) or ends. The psbox core uses it for residency
	// tracking and power-state virtualization.
	GroupResident func(appID int, resident bool)
}

type coreState struct {
	id       int
	rq       []rqe // runnable, not-running entities
	cur      rqe   // nil when idle
	curTask  *Task // task actually executing (nil under forced idle or idle)
	lastBill sim.Time
}

// rqe is a runqueue entity: either a plain task or a psbox group entity.
type rqe interface {
	vrun() sim.Duration
	addVrun(d sim.Duration)
	entityName() string
}

func (t *Task) vrun() sim.Duration     { return t.vr }
func (t *Task) addVrun(d sim.Duration) { t.vr += d }
func (t *Task) entityName() string     { return t.Name }

// Scheduler is the multicore CPU scheduler.
type Scheduler struct {
	eng *sim.Engine
	//psbox:allow-snapshotstate construction-time config; identical by scenario reconstruction under the replay-twin contract
	cfg Config
	//psbox:allow-snapshotstate wiring: callback closures installed at construction
	cbs      Callbacks
	cores    []*coreState
	groups   map[int]*Group
	tasks    []*Task
	resident *Group // the group holding the open coscheduling window
	nextID   int

	// Throttle gates (the psbox budget-enforcement hook): while an app's
	// gate is closed its tasks are parked — runnable in the kernel's eyes
	// but withheld from every runqueue — so the sandbox manager can
	// duty-cycle an over-budget app off the CPU without touching its
	// program state. parked keeps park order, which is the delivery order
	// when the gate reopens.
	gated  map[int]bool
	parked []*Task

	// Metrics.
	ctxSwitches  uint64
	shootdowns   uint64
	wakeLatTotal sim.Duration
	wakeLatCount uint64
	wakePending  map[*Task]sim.Time

	// Observability (nil-safe; the bus snapshots itself).
	bus *obs.Bus
	//psbox:allow-snapshotstate observability wiring installed at construction, not replayed state
	rail string
}

// SetBus routes the scheduler's trace events and metrics to a bus. rail
// names the CPU power rail so run spans join with meter samples in the
// attribution timeline.
func (s *Scheduler) SetBus(b *obs.Bus, rail string) {
	s.bus = b
	s.rail = rail
}

// New builds a scheduler and arms its tick.
func New(eng *sim.Engine, cfg Config, cbs Callbacks) *Scheduler {
	if cfg.Cores <= 0 {
		panic("sched: need at least one core")
	}
	if cfg.Tick <= 0 {
		panic("sched: need a positive tick")
	}
	s := &Scheduler{
		eng:         eng,
		cfg:         cfg,
		cbs:         cbs,
		groups:      make(map[int]*Group),
		wakePending: make(map[*Task]sim.Time),
		gated:       make(map[int]bool),
	}
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, &coreState{id: i, lastBill: eng.Now()})
	}
	eng.After(cfg.Tick, s.tick)
	return s
}

// NewTask registers a new task pinned to core, initially blocked. Call
// Wake to make it runnable.
func (s *Scheduler) NewTask(appID int, name string, core int, weight int64) *Task {
	if core < 0 || core >= s.cfg.Cores {
		panic(fmt.Sprintf("sched: core %d out of range", core))
	}
	if weight <= 0 {
		weight = DefaultWeight
	}
	s.nextID++
	t := &Task{
		ID:     s.nextID,
		AppID:  appID,
		Name:   name,
		Core:   core,
		Weight: weight,
		state:  StateBlocked,
		vr:     s.minVrun(core), // start at the local minimum, like fork
	}
	if g, ok := s.groups[appID]; ok && g.active {
		t.ge = g.entities[core]
	}
	s.tasks = append(s.tasks, t)
	return t
}

// ContextSwitches reports the total number of context switches performed.
func (s *Scheduler) ContextSwitches() uint64 { return s.ctxSwitches }

// Shootdowns reports how many coscheduling shootdown rounds occurred.
func (s *Scheduler) Shootdowns() uint64 { return s.shootdowns }

// MeanWakeupLatency reports the mean delay between Wake and first
// execution, the §6.2 scheduling-latency metric.
func (s *Scheduler) MeanWakeupLatency() sim.Duration {
	if s.wakeLatCount == 0 {
		return 0
	}
	return sim.Duration(int64(s.wakeLatTotal) / int64(s.wakeLatCount))
}

// minVrun reports the smallest vruntime among entities on core (runnable or
// running); zero if the core is empty.
func (s *Scheduler) minVrun(core int) sim.Duration {
	c := s.cores[core]
	var best sim.Duration
	have := false
	consider := func(e rqe) {
		if e == nil {
			return
		}
		if !have || e.vrun() < best {
			best = e.vrun()
			have = true
		}
	}
	for _, e := range c.rq {
		consider(e)
	}
	consider(c.cur)
	if !have {
		return 0
	}
	return best
}

// minOtherVrun reports the smallest vruntime among runnable entities on
// core excluding a group's entity; the bool is false when there is no
// competitor. Used for loan computation.
func (s *Scheduler) minOtherVrun(core int, g *Group) (sim.Duration, bool) {
	c := s.cores[core]
	var best sim.Duration
	have := false
	for _, e := range c.rq {
		if ge, ok := e.(*groupEntity); ok && ge.grp == g {
			continue
		}
		if !have || e.vrun() < best {
			best = e.vrun()
			have = true
		}
	}
	return best, have
}

// bill charges CPU time since the core's last billing point to whatever is
// running there: the task (if any) and, under a balloon, the group entity —
// including forced-idle time, which is exactly how the kernel "bills all
// the resource occupied by the balloons to App" (§4.1).
func (s *Scheduler) bill(core int) {
	c := s.cores[core]
	now := s.eng.Now()
	d := now.Sub(c.lastBill)
	c.lastBill = now
	if d <= 0 {
		return
	}
	if c.curTask != nil {
		c.curTask.cpuTime += d
		c.curTask.vr += weighted(d, c.curTask.Weight)
	}
	if ge, ok := c.cur.(*groupEntity); ok {
		ge.vr += weighted(d, DefaultWeight)
	}
}

func weighted(d sim.Duration, weight int64) sim.Duration {
	return sim.Duration(int64(d) * DefaultWeight / weight)
}

// enqueue puts e on core's runqueue.
func (s *Scheduler) enqueue(core int, e rqe) {
	c := s.cores[core]
	for _, x := range c.rq {
		if x == e {
			panic(fmt.Sprintf("sched: %s already enqueued on core %d", e.entityName(), core))
		}
	}
	c.rq = append(c.rq, e)
}

// dequeue removes e from core's runqueue; reports whether it was present.
func (s *Scheduler) dequeue(core int, e rqe) bool {
	c := s.cores[core]
	for i, x := range c.rq {
		if x == e {
			c.rq = append(c.rq[:i], c.rq[i+1:]...)
			return true
		}
	}
	return false
}

// pickMin returns the minimum-vruntime entity on core's runqueue, nil if
// empty. While a spatial balloon is resident, other groups' entities are
// not eligible: a balloon occupies every core, so windows serialize.
func (s *Scheduler) pickMin(core int) rqe {
	c := s.cores[core]
	var best rqe
	for _, e := range c.rq {
		if ge, isGroup := e.(*groupEntity); isGroup {
			// Gang windows come only from the reservation timer; loan
			// windows only when no other balloon is open and initiation is
			// credit-eligible.
			if ge.grp.gang || s.resident != nil || !s.groupMayInitiate(ge) {
				continue
			}
		}
		if best == nil || e.vrun() < best.vrun() {
			best = e
		}
	}
	return best
}

// groupMayInitiate reports whether ge may open a coscheduling window from
// its core. From a contested core, winning the min-vruntime pick suffices
// (the paper's rule: the balloon borrows loans for the remote cores). From
// an uncontested core, the group must be loan-free on every contested core
// — otherwise an empty core would re-open the window the instant it
// closed, starving competitors elsewhere.
func (s *Scheduler) groupMayInitiate(ge *groupEntity) bool {
	if _, contested := s.minOtherVrun(ge.core, ge.grp); contested {
		return true
	}
	for _, other := range ge.grp.entities {
		if other == ge {
			continue
		}
		if best, ok := s.minOtherVrun(other.core, ge.grp); ok && other.vr > best {
			return false
		}
	}
	return true
}

// Wake makes t runnable and may preempt. Waking a dead or already-runnable
// task panics: the kernel must not double-wake.
func (s *Scheduler) Wake(t *Task) {
	switch t.state {
	case StateDead:
		panic(fmt.Sprintf("sched: waking dead task %s", t.Name))
	case StateRunnable, StateRunning:
		panic(fmt.Sprintf("sched: waking %s task %s", t.state, t.Name))
	}
	t.state = StateRunnable
	s.wakePending[t] = s.eng.Now()
	// Sleeper fairness: do not let a long sleeper monopolize the CPU, and
	// do not punish it for having slept.
	if min := s.minVrun(t.Core); t.vr < min-sim.Duration(s.cfg.WakeupBonus) {
		t.vr = min - sim.Duration(s.cfg.WakeupBonus)
	}
	if s.gated[t.AppID] {
		// A wake behind a closed gate parks: the task becomes runnable but
		// is delivered to its runqueue only when the gate reopens.
		s.parked = append(s.parked, t)
		return
	}
	if t.ge != nil {
		s.groupTaskWake(t)
		return
	}
	s.enqueue(t.Core, t)
	s.maybePreempt(t.Core)
}

// isParked reports whether t is currently withheld by a closed gate.
func (s *Scheduler) isParked(t *Task) bool {
	for _, p := range s.parked {
		if p == t {
			return true
		}
	}
	return false
}

// unpark removes t from the parked list; reports whether it was parked.
func (s *Scheduler) unpark(t *Task) bool {
	for i, p := range s.parked {
		if p == t {
			s.parked = append(s.parked[:i], s.parked[i+1:]...)
			return true
		}
	}
	return false
}

// Gated reports whether an app's throttle gate is closed.
func (s *Scheduler) Gated(appID int) bool { return s.gated[appID] }

// SetAppGate opens or closes an app's throttle gate. Closing parks every
// runnable or running task of the app (running ones are context-switched
// out first, preserving their burst progress) and closes the app's
// coscheduling window if it held one; new wakes park until the gate
// reopens. Opening delivers the parked tasks back to their runqueues in
// park order. Parked time counts as involuntary waiting in the app's
// demand accounting — exactly like losing the CPU to competition — so the
// virtual governor's utilization signal stays honest under throttling.
// Both directions are idempotent.
func (s *Scheduler) SetAppGate(appID int, open bool) {
	if open {
		if !s.gated[appID] {
			return
		}
		delete(s.gated, appID)
		kept := s.parked[:0]
		var deliver []*Task
		for _, t := range s.parked {
			if t.AppID == appID {
				deliver = append(deliver, t)
			} else {
				kept = append(kept, t)
			}
		}
		s.parked = kept
		// Fair re-entry, exactly as in ActivateGroup: vruntime froze while
		// parked, so without the clamp a reopened app would "catch up" its
		// entire parked time at the competitors' expense — turning the
		// throttle into a deferral instead of a confinement.
		if g, ok := s.groups[appID]; ok && g.active {
			for _, ge := range g.entities {
				if min := s.minVrun(ge.core); ge.vr < min {
					ge.vr = min
				}
			}
		}
		for _, t := range deliver {
			if min := s.minVrun(t.Core); t.vr < min {
				t.vr = min
			}
			if t.ge != nil {
				s.groupTaskWake(t)
				continue
			}
			s.enqueue(t.Core, t)
			s.maybePreempt(t.Core)
		}
		return
	}
	if s.gated[appID] {
		return
	}
	s.gated[appID] = true
	for _, t := range s.tasks {
		if t.AppID != appID {
			continue
		}
		switch t.state {
		case StateRunning:
			s.bill(t.Core)
			s.stopCurrent(t.Core) // leaves the task runnable, not requeued
			s.parked = append(s.parked, t)
		case StateRunnable:
			if t.ge != nil {
				ge := t.ge
				for i, q := range ge.queue {
					if q == t {
						ge.queue = append(ge.queue[:i], ge.queue[i+1:]...)
						break
					}
				}
			} else {
				s.dequeue(t.Core, t)
			}
			s.parked = append(s.parked, t)
		}
	}
	if g, ok := s.groups[appID]; ok && g.active {
		if g.resident && !g.gang && !s.groupHasRunnable(g) {
			// Demand windows close when the app has nothing runnable; a
			// gang's reservation holds its slot regardless, forcing idle.
			s.endCosched(g)
		} else if !g.resident {
			for _, ge := range g.entities {
				if len(ge.queue) == 0 {
					s.dequeue(ge.core, ge)
				}
			}
		}
	}
	for c := 0; c < s.cfg.Cores; c++ {
		if s.cores[c].cur == nil {
			s.reschedule(c)
		}
	}
}

// Block transitions the running or runnable task t to blocked.
func (s *Scheduler) Block(t *Task) {
	switch t.state {
	case StateBlocked:
		panic(fmt.Sprintf("sched: blocking blocked task %s", t.Name))
	case StateDead:
		panic(fmt.Sprintf("sched: blocking dead task %s", t.Name))
	}
	delete(s.wakePending, t)
	if s.unpark(t) {
		// A parked task sits in no runqueue and no entity queue; blocking it
		// is pure bookkeeping.
		t.state = StateBlocked
		return
	}
	if t.ge != nil {
		s.groupTaskBlock(t)
		return
	}
	c := s.cores[t.Core]
	if c.curTask == t {
		s.bill(t.Core)
		s.stopCurrent(t.Core)
		t.state = StateBlocked
		s.reschedule(t.Core)
		return
	}
	s.dequeue(t.Core, t)
	t.state = StateBlocked
}

// Exit removes t permanently.
func (s *Scheduler) Exit(t *Task) {
	if t.state == StateDead {
		return
	}
	if t.state == StateBlocked {
		t.state = StateDead
		return
	}
	s.Block(t)
	t.state = StateDead
}

// stopCurrent takes the running task (if any) off core's CPU without
// requeueing it. Callers decide where it goes next. The group entity (if
// resident) stays current.
func (s *Scheduler) stopCurrent(core int) {
	c := s.cores[core]
	if c.curTask == nil {
		return
	}
	t := c.curTask
	c.curTask = nil
	s.bus.Span(obs.CatSched, "run", t.AppID, int64(core), s.rail, t.Name, t.started)
	if t.state == StateRunning {
		t.state = StateRunnable
	}
	if ge, ok := c.cur.(*groupEntity); ok {
		if ge.running == t {
			ge.running = nil
		}
	} else {
		c.cur = nil
	}
	if s.cbs.StopTask != nil {
		s.cbs.StopTask(core, t)
	}
}

// runTask puts t on core's CPU.
func (s *Scheduler) runTask(core int, t *Task) {
	c := s.cores[core]
	if c.curTask != nil {
		panic(fmt.Sprintf("sched: core %d already running %s", core, c.curTask.Name))
	}
	// Close the core's billing period before the switch: otherwise the
	// incoming task would be charged for the idle (or balloon) gap since
	// the previous billing point.
	s.bill(core)
	t.state = StateRunning
	t.started = s.eng.Now()
	c.curTask = t
	s.ctxSwitches++
	s.bus.Instant(obs.CatSched, "switch", t.AppID, int64(core), s.rail, t.Name)
	s.bus.Count("sched.ctx_switches", 0, s.rail, 1)
	if at, ok := s.wakePending[t]; ok {
		lat := s.eng.Now().Sub(at)
		s.wakeLatTotal += lat
		s.wakeLatCount++
		delete(s.wakePending, t)
		s.bus.Observe("sched.wake_latency", t.AppID, "", lat)
	}
	if s.cbs.RunTask != nil {
		s.cbs.RunTask(core, t)
	}
}

// goIdle marks the core idle (cur may remain a resident group entity,
// representing forced idle inside a balloon).
func (s *Scheduler) goIdle(core int) {
	if s.cbs.CoreIdle != nil {
		s.cbs.CoreIdle(core)
	}
}

// reschedule picks what to run next on core after the CPU became free.
func (s *Scheduler) reschedule(core int) {
	c := s.cores[core]
	if ge, ok := c.cur.(*groupEntity); ok && ge.grp.resident {
		// Inside a balloon: pick within the group or force idle.
		s.groupPickLocal(ge)
		return
	}
	if c.cur != nil {
		return // still running something
	}
	next := s.pickMin(core)
	if next == nil {
		s.goIdle(core)
		return
	}
	s.startEntity(core, next)
}

// startEntity dispatches a runqueue entity onto the CPU.
func (s *Scheduler) startEntity(core int, e rqe) {
	c := s.cores[core]
	s.dequeue(core, e)
	switch v := e.(type) {
	case *Task:
		c.cur = v
		s.runTask(core, v)
	case *groupEntity:
		s.beginCosched(v.grp, core)
	default:
		panic("sched: unknown entity type")
	}
}

// maybePreempt re-evaluates core after a wakeup: an idle core always picks
// up work; a busy core is preempted when the waiting minimum leads by more
// than the granularity.
func (s *Scheduler) maybePreempt(core int) {
	c := s.cores[core]
	if ge, ok := c.cur.(*groupEntity); ok && ge.grp.resident {
		return // balloons are never preempted mid-window by outsiders
	}
	if c.cur == nil {
		s.reschedule(core)
		return
	}
	best := s.pickMin(core)
	if best == nil {
		return
	}
	s.bill(core)
	if best.vrun()+s.cfg.Granularity < c.cur.vrun() {
		prev := c.curTask
		s.stopCurrent(core)
		if prev != nil {
			s.enqueue(core, prev)
		}
		s.startEntity(core, best)
	}
}

// tick is the periodic scheduler interrupt, aligned across cores.
func (s *Scheduler) tick(now sim.Time) {
	for core := range s.cores {
		s.bill(core)
	}
	// Group bookkeeping first: loans accrue and coscheduling windows close
	// on ticks.
	s.groupTick()
	for core := range s.cores {
		c := s.cores[core]
		if ge, ok := c.cur.(*groupEntity); ok && ge.grp.resident {
			s.groupLocalTick(ge)
			continue
		}
		if c.cur == nil {
			s.reschedule(core)
			continue
		}
		best := s.pickMin(core)
		if best != nil && best.vrun()+s.cfg.Granularity < c.cur.vrun() {
			prev := c.curTask
			s.stopCurrent(core)
			if prev != nil {
				s.enqueue(core, prev)
			}
			s.startEntity(core, best)
		}
	}
	s.eng.After(s.cfg.Tick, s.tick)
}
