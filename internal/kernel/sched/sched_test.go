package sched

import (
	"testing"

	"psbox/internal/sim"
)

// harness drives the scheduler the way the kernel's execution engine does:
// it gives each task a behavior (run for a burst, then sleep) and converts
// Run/Stop callbacks into timed Block/Wake calls.
type harness struct {
	t   *testing.T
	eng *sim.Engine
	s   *Scheduler

	behaviors map[*Task]*behavior
	onCore    map[int]*Task
	idleSince map[int]sim.Time
	idleTotal map[int]sim.Duration
	resident  map[int]bool // appID → resident
}

type behavior struct {
	burst sim.Duration // full burst length; 0 ⇒ run forever (CPU hog)
	sleep sim.Duration

	remaining sim.Duration
	blockArm  sim.Handle
	runSince  sim.Time
}

func newHarness(t *testing.T, cores int) *harness {
	h := &harness{
		t:         t,
		eng:       sim.NewEngine(),
		behaviors: make(map[*Task]*behavior),
		onCore:    make(map[int]*Task),
		idleSince: make(map[int]sim.Time),
		idleTotal: make(map[int]sim.Duration),
		resident:  make(map[int]bool),
	}
	cbs := Callbacks{
		RunTask:       h.runTask,
		StopTask:      h.stopTask,
		CoreIdle:      h.coreIdle,
		GroupResident: func(app int, r bool) { h.resident[app] = r },
	}
	h.s = New(h.eng, DefaultConfig(cores), cbs)
	return h
}

func (h *harness) runTask(core int, t *Task) {
	if prev, ok := h.onCore[core]; ok && prev != nil {
		h.t.Fatalf("core %d: RunTask(%s) while %s still on", core, t.Name, prev.Name)
	}
	h.onCore[core] = t
	if since, ok := h.idleSince[core]; ok {
		h.idleTotal[core] += h.eng.Now().Sub(since)
		delete(h.idleSince, core)
	}
	b := h.behaviors[t]
	if b == nil {
		return
	}
	b.runSince = h.eng.Now()
	if b.burst == 0 {
		return // hog: never blocks
	}
	if b.remaining == 0 {
		b.remaining = b.burst
	}
	tt := t
	b.blockArm = h.eng.After(b.remaining, func(sim.Time) {
		b.blockArm = sim.Handle{}
		b.remaining = 0
		h.s.Block(tt)
		h.eng.After(b.sleep, func(sim.Time) { h.s.Wake(tt) })
	})
}

func (h *harness) stopTask(core int, t *Task) {
	if h.onCore[core] != t {
		h.t.Fatalf("core %d: StopTask(%s) but %v is on", core, t.Name, h.onCore[core])
	}
	h.onCore[core] = nil
	h.idleSince[core] = h.eng.Now()
	b := h.behaviors[t]
	if b == nil || b.burst == 0 {
		return
	}
	if b.blockArm != (sim.Handle{}) {
		h.eng.Cancel(b.blockArm)
		b.blockArm = sim.Handle{}
		b.remaining -= h.eng.Now().Sub(b.runSince)
		if b.remaining < 0 {
			b.remaining = 0
		}
	}
}

func (h *harness) coreIdle(core int) {
	if cur := h.onCore[core]; cur != nil {
		h.t.Fatalf("core %d: CoreIdle while %s on", core, cur.Name)
	}
	if _, ok := h.idleSince[core]; !ok {
		h.idleSince[core] = h.eng.Now()
	}
}

// hog creates an always-runnable task.
func (h *harness) hog(app int, name string, core int, weight int64) *Task {
	t := h.s.NewTask(app, name, core, weight)
	h.behaviors[t] = &behavior{}
	h.s.Wake(t)
	return t
}

// periodic creates a task running burst then sleeping.
func (h *harness) periodic(app int, name string, core int, burst, sleep sim.Duration) *Task {
	t := h.s.NewTask(app, name, core, 0)
	h.behaviors[t] = &behavior{burst: burst, sleep: sleep}
	h.s.Wake(t)
	return t
}

func shareOf(t *Task, span sim.Duration) float64 {
	return float64(t.CPUTime()) / float64(span)
}

func TestSingleTaskRunsImmediately(t *testing.T) {
	h := newHarness(t, 1)
	tk := h.hog(1, "solo", 0, 0)
	h.eng.RunFor(100 * sim.Millisecond)
	if got := shareOf(tk, 100*sim.Millisecond); got < 0.999 {
		t.Fatalf("solo share = %v", got)
	}
	if tk.State() != StateRunning {
		t.Fatalf("state = %v", tk.State())
	}
}

func TestTwoHogsShareFairly(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 0, 0)
	h.eng.RunFor(1 * sim.Second)
	sa, sb := shareOf(a, sim.Second), shareOf(b, sim.Second)
	if sa < 0.45 || sa > 0.55 || sb < 0.45 || sb > 0.55 {
		t.Fatalf("shares: a=%v b=%v", sa, sb)
	}
}

func TestWeightedSharing(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "heavy", 0, 2*DefaultWeight)
	b := h.hog(2, "light", 0, DefaultWeight)
	h.eng.RunFor(3 * sim.Second)
	ratio := float64(a.CPUTime()) / float64(b.CPUTime())
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weighted ratio = %v, want ≈2", ratio)
	}
}

func TestThreeHogsShareFairly(t *testing.T) {
	h := newHarness(t, 1)
	tasks := []*Task{
		h.hog(1, "a", 0, 0),
		h.hog(2, "b", 0, 0),
		h.hog(3, "c", 0, 0),
	}
	h.eng.RunFor(3 * sim.Second)
	for _, tk := range tasks {
		s := shareOf(tk, 3*sim.Second)
		if s < 0.30 || s > 0.37 {
			t.Fatalf("%s share = %v", tk.Name, s)
		}
	}
}

func TestCoresAreIndependent(t *testing.T) {
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 1, 0)
	h.eng.RunFor(500 * sim.Millisecond)
	if shareOf(a, 500*sim.Millisecond) < 0.999 || shareOf(b, 500*sim.Millisecond) < 0.999 {
		t.Fatal("each core should run its own hog full-time")
	}
}

func TestPeriodicTaskPreemptsHog(t *testing.T) {
	h := newHarness(t, 1)
	hog := h.hog(1, "hog", 0, 0)
	p := h.periodic(2, "periodic", 0, 2*sim.Millisecond, 8*sim.Millisecond)
	h.eng.RunFor(1 * sim.Second)
	// The periodic task demands 20%; it should get close to that, and the
	// hog should absorb the rest.
	sp := shareOf(p, sim.Second)
	if sp < 0.17 || sp > 0.22 {
		t.Fatalf("periodic share = %v want ≈0.2", sp)
	}
	if sh := shareOf(hog, sim.Second); sh < 0.75 {
		t.Fatalf("hog share = %v", sh)
	}
}

func TestWakeupLatencyIsBounded(t *testing.T) {
	h := newHarness(t, 1)
	h.hog(1, "hog", 0, 0)
	h.periodic(2, "p", 0, 1*sim.Millisecond, 9*sim.Millisecond)
	h.eng.RunFor(1 * sim.Second)
	lat := h.s.MeanWakeupLatency()
	if lat > 3*sim.Millisecond {
		t.Fatalf("mean wakeup latency = %v", lat)
	}
	if lat == 0 {
		t.Fatal("no wakeup latency recorded")
	}
}

func TestBlockWakeLifecyclePanics(t *testing.T) {
	h := newHarness(t, 1)
	tk := h.s.NewTask(1, "x", 0, 0)
	// Waking a blocked task is fine; double wake must panic.
	h.s.Wake(tk)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double wake should panic")
			}
		}()
		h.s.Wake(tk)
	}()
	h.s.Block(tk)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double block should panic")
			}
		}()
		h.s.Block(tk)
	}()
	h.s.Exit(tk)
	if tk.State() != StateDead {
		t.Fatal("exit should kill")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("waking the dead should panic")
			}
		}()
		h.s.Wake(tk)
	}()
}

func TestExitRunningTask(t *testing.T) {
	h := newHarness(t, 1)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 0, 0)
	h.eng.RunFor(100 * sim.Millisecond)
	h.s.Exit(a)
	at := a.CPUTime()
	h.eng.RunFor(100 * sim.Millisecond)
	if a.CPUTime() != at {
		t.Fatal("dead task accumulated CPU time")
	}
	if shareOf(b, 200*sim.Millisecond) < 0.70 {
		t.Fatalf("survivor share = %v", shareOf(b, 200*sim.Millisecond))
	}
}

func TestStateStrings(t *testing.T) {
	if StateBlocked.String() != "blocked" || StateRunnable.String() != "runnable" ||
		StateRunning.String() != "running" || StateDead.String() != "dead" ||
		State(9).String() != "state(9)" {
		t.Fatal("state strings wrong")
	}
}
