package sched

import (
	"fmt"
	"sort"

	"psbox/internal/snapshot"
)

func (t *Task) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(t.ID))
	enc.I64(int64(t.AppID))
	enc.Str(t.Name)
	enc.I64(int64(t.Core))
	enc.I64(t.Weight)
	enc.I64(int64(t.vr))
	enc.U8(uint8(t.state))
	enc.I64(int64(t.started))
	enc.I64(int64(t.cpuTime))
}

// encodeRqe writes a runqueue entity as a tagged identity: plain tasks by
// task ID, group entities by (app ID, core).
func encodeRqe(enc *snapshot.Encoder, e rqe) {
	switch x := e.(type) {
	case nil:
		enc.U8(0)
	case *Task:
		enc.U8(1)
		enc.I64(int64(x.ID))
	case *groupEntity:
		enc.U8(2)
		enc.I64(int64(x.grp.AppID))
		enc.I64(int64(x.core))
	default:
		panic(fmt.Sprintf("sched: unknown rqe type %T", e))
	}
}

func (c *coreState) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(c.id))
	enc.Len(len(c.rq))
	for _, e := range c.rq {
		encodeRqe(enc, e)
	}
	encodeRqe(enc, c.cur)
	if c.curTask == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(c.curTask.ID))
	}
	enc.I64(int64(c.lastBill))
}

func (ge *groupEntity) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(ge.core))
	enc.I64(int64(ge.vr))
	enc.I64(int64(ge.loan))
	enc.Bool(ge.want)
	enc.Bool(ge.onCPU)
	if ge.running == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(ge.running.ID))
	}
	enc.Len(len(ge.queue))
	for _, t := range ge.queue {
		enc.I64(int64(t.ID))
	}
}

func (g *Group) snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(g.AppID))
	enc.Bool(g.active)
	enc.Bool(g.resident)
	enc.Bool(g.announced)
	enc.Bool(g.gang)
	enc.I64(int64(g.gangCfg.Period))
	enc.I64(int64(g.gangCfg.Slot))
	enc.U64(g.gangTimer.Seq())
	enc.Len(len(g.pendingIPI))
	for _, h := range g.pendingIPI {
		enc.U64(h.Seq())
	}
	enc.I64(int64(g.residentTime))
	enc.I64(int64(g.residentAt))
	enc.U64(g.windows)
	enc.I64(int64(g.loanSettled))
	enc.Len(len(g.entities))
	for _, ge := range g.entities {
		ge.snapshot(enc)
	}
}

// Snapshot encodes the scheduler: every task (creation order), every
// core's runqueue, every psbox group (sorted by app ID), the resident
// group, and the scheduling metrics.
func (s *Scheduler) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(s.nextID))
	enc.U64(s.ctxSwitches)
	enc.U64(s.shootdowns)
	enc.I64(int64(s.wakeLatTotal))
	enc.U64(s.wakeLatCount)
	pend := make([]*Task, 0, len(s.wakePending))
	for t := range s.wakePending {
		pend = append(pend, t)
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].ID < pend[j].ID })
	enc.Len(len(pend))
	for _, t := range pend {
		enc.I64(int64(t.ID))
		enc.I64(int64(s.wakePending[t]))
	}
	enc.Len(len(s.tasks))
	for _, t := range s.tasks {
		t.snapshot(enc)
	}
	enc.Len(len(s.cores))
	for _, c := range s.cores {
		c.snapshot(enc)
	}
	ids := make([]int, 0, len(s.groups))
	for id := range s.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Len(len(ids))
	for _, id := range ids {
		s.groups[id].snapshot(enc)
	}
	if s.resident == nil {
		enc.I64(-1)
	} else {
		enc.I64(int64(s.resident.AppID))
	}
	gated := make([]int, 0, len(s.gated))
	for id := range s.gated {
		gated = append(gated, id)
	}
	sort.Ints(gated)
	enc.Len(len(gated))
	for _, id := range gated {
		enc.I64(int64(id))
	}
	enc.Len(len(s.parked))
	for _, t := range s.parked {
		enc.I64(int64(t.ID)) // park order is delivery order; encode as-is
	}
}

// Restore verifies the live scheduler against a checkpoint section.
func (s *Scheduler) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, s.Snapshot) }
