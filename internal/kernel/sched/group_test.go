package sched

import (
	"testing"

	"psbox/internal/sim"
)

// occupancyTracker records, per instant, which app occupies each core, so
// tests can assert balloon exclusivity.
type occupancyTracker struct {
	h        *harness
	overlaps int // instants where a boxed app and another app co-ran
	boxed    int
}

func (o *occupancyTracker) check() {
	if !o.h.resident[o.boxed] {
		// During IPI transit the balloon boundary is not yet established
		// and residency has not been announced; power observation has not
		// started, so other apps winding down is by design.
		return
	}
	boxedOn, otherOn := false, false
	for _, t := range o.h.onCore {
		if t == nil {
			continue
		}
		if t.AppID == o.boxed {
			boxedOn = true
		} else {
			otherOn = true
		}
	}
	if boxedOn && otherOn {
		o.overlaps++
	}
}

func TestGroupExclusivity(t *testing.T) {
	// The core psbox guarantee: once app 1 is sandboxed, no instant has
	// app 1 and another app running simultaneously on the two cores.
	h := newHarness(t, 2)
	h.hog(1, "boxed0", 0, 0)
	h.hog(1, "boxed1", 1, 0)
	h.hog(2, "other0", 0, 0)
	h.hog(2, "other1", 1, 0)
	h.eng.RunFor(100 * sim.Millisecond)
	h.s.ActivateGroup(1)
	tr := &occupancyTracker{h: h, boxed: 1}
	var poll func(sim.Time)
	poll = func(sim.Time) {
		tr.check()
		h.eng.After(100*sim.Microsecond, poll)
	}
	h.eng.After(100*sim.Microsecond, poll)
	h.eng.RunFor(1 * sim.Second)
	if tr.overlaps != 0 {
		t.Fatalf("boxed app co-ran with others at %d sampled instants", tr.overlaps)
	}
}

func TestGroupForcedIdle(t *testing.T) {
	// A single-threaded boxed app on a dual-core: while its window is open
	// the second core must be forced idle (nobody runs there).
	h := newHarness(t, 2)
	boxed := h.hog(1, "boxed", 0, 0)
	h.hog(2, "other0", 0, 0)
	h.hog(2, "other1", 1, 0)
	h.s.ActivateGroup(1)
	violations := 0
	var poll func(sim.Time)
	poll = func(sim.Time) {
		if h.resident[1] && h.onCore[0] == boxed && h.onCore[1] != nil {
			violations++
		}
		h.eng.After(50*sim.Microsecond, poll)
	}
	h.eng.After(50*sim.Microsecond, poll)
	h.eng.RunFor(1 * sim.Second)
	if violations != 0 {
		t.Fatalf("core 1 ran someone during %d sampled balloon instants", violations)
	}
	if boxed.CPUTime() == 0 {
		t.Fatal("boxed task never ran")
	}
}

func TestGroupAloneRunsFullSpeed(t *testing.T) {
	// The pay-as-you-go promise: with no competition, the sandboxed app
	// keeps (almost) the whole machine.
	h := newHarness(t, 2)
	a0 := h.hog(1, "a0", 0, 0)
	a1 := h.hog(1, "a1", 1, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	if shareOf(a0, sim.Second) < 0.99 || shareOf(a1, sim.Second) < 0.99 {
		t.Fatalf("alone-in-box shares: %v %v", shareOf(a0, sim.Second), shareOf(a1, sim.Second))
	}
	if !h.resident[1] {
		t.Fatal("group should be resident the whole time")
	}
}

// The headline fairness property (Fig. 8): when one of three identical
// apps sandboxes itself, it alone loses throughput; the others keep at
// least their previous share.
func TestGroupConfinesThroughputLoss(t *testing.T) {
	run := func(boxed bool) [3]sim.Duration {
		h := newHarness(t, 2)
		var tasks [3][2]*Task
		for app := 0; app < 3; app++ {
			tasks[app][0] = h.hog(app+1, "t0", 0, 0)
			tasks[app][1] = h.hog(app+1, "t1", 1, 0)
		}
		h.eng.RunFor(200 * sim.Millisecond)
		var base [3]sim.Duration
		for i := range tasks {
			base[i] = tasks[i][0].CPUTime() + tasks[i][1].CPUTime()
		}
		if boxed {
			h.s.ActivateGroup(1)
		}
		h.eng.RunFor(2 * sim.Second)
		var got [3]sim.Duration
		for i := range tasks {
			got[i] = tasks[i][0].CPUTime() + tasks[i][1].CPUTime() - base[i]
		}
		return got
	}
	before := run(false)
	after := run(true)

	// Unboxed: all three get ≈1/3 of 2 cores over 2s ≈ 1.33s.
	for i, d := range before {
		if d < sim.Duration(float64(before[0])*0.9) || d > sim.Duration(float64(before[0])*1.1) {
			t.Fatalf("unboxed shares unequal: app %d got %v", i+1, d)
		}
	}
	// Boxed app must lose noticeably.
	lossBoxed := 1 - float64(after[0])/float64(before[0])
	if lossBoxed < 0.15 {
		t.Fatalf("boxed app lost only %.1f%%", lossBoxed*100)
	}
	// The others must not lose more than a sliver.
	for i := 1; i < 3; i++ {
		loss := 1 - float64(after[i])/float64(before[i])
		if loss > 0.03 {
			t.Fatalf("co-runner %d lost %.1f%% — loss not confined", i+1, loss*100)
		}
	}
}

func TestGroupLoanSettlement(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "a0", 0, 0)
	h.hog(1, "a1", 1, 0)
	h.hog(2, "b0", 0, 0)
	h.hog(2, "b1", 1, 0)
	g := h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	if g.Windows() == 0 {
		t.Fatal("no coscheduling windows opened")
	}
	if g.LoanSettled() == 0 {
		t.Fatal("competition should have produced loans")
	}
	if g.ResidentTime() == 0 || g.ResidentTime() > 600*sim.Millisecond {
		t.Fatalf("resident time = %v", g.ResidentTime())
	}
}

func TestGroupPeriodicAppWindowsFollowDemand(t *testing.T) {
	// A periodic boxed app opens a window per burst and leaves when it
	// sleeps; others run in between.
	h := newHarness(t, 2)
	p := h.periodic(1, "boxed", 0, 2*sim.Millisecond, 8*sim.Millisecond)
	other := h.hog(2, "other", 0, 0)
	g := h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	if g.Windows() < 50 {
		t.Fatalf("expected ≈100 windows, got %d", g.Windows())
	}
	sp := shareOf(p, sim.Second)
	if sp < 0.10 || sp > 0.25 {
		t.Fatalf("periodic boxed share = %v", sp)
	}
	if so := shareOf(other, sim.Second); so < 0.70 {
		t.Fatalf("other share = %v", so)
	}
}

func TestGroupResidencyCallbacks(t *testing.T) {
	h := newHarness(t, 2)
	h.periodic(1, "boxed", 0, 1*sim.Millisecond, 9*sim.Millisecond)
	h.hog(2, "other", 0, 0)
	var events []bool
	h.s.cbs.GroupResident = func(app int, r bool) {
		if app != 1 {
			t.Fatalf("unexpected app %d", app)
		}
		events = append(events, r)
	}
	h.s.ActivateGroup(1)
	h.eng.RunFor(200 * sim.Millisecond)
	if len(events) < 10 {
		t.Fatalf("too few residency events: %d", len(events))
	}
	for i, r := range events {
		if r != (i%2 == 0) {
			t.Fatalf("residency events must alternate, got %v", events)
		}
	}
}

func TestDeactivateRestoresNormalScheduling(t *testing.T) {
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 0, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(500 * sim.Millisecond)
	h.s.DeactivateGroup(1)
	if h.resident[1] {
		t.Fatal("deactivate should end residency")
	}
	aBase, bBase := a.CPUTime(), b.CPUTime()
	h.eng.RunFor(1 * sim.Second)
	da := float64(a.CPUTime() - aBase)
	db := float64(b.CPUTime() - bBase)
	// After leaving the box the app still carries its penalty but converges
	// back to fair sharing.
	if da/(da+db) < 0.35 || da/(da+db) > 0.55 {
		t.Fatalf("post-box share = %v", da/(da+db))
	}
}

func TestDeactivateIdempotent(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "a", 0, 0)
	h.s.DeactivateGroup(1) // never activated: no-op
	h.s.ActivateGroup(1)
	h.s.DeactivateGroup(1)
	h.s.DeactivateGroup(1)
	h.eng.RunFor(100 * sim.Millisecond)
}

func TestReactivationIsNotAnAdvantage(t *testing.T) {
	// Rapid enter/leave cycling must not let the app dodge its charges.
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 0, 0)
	var cycle func(sim.Time)
	on := false
	cycle = func(sim.Time) {
		if on {
			h.s.DeactivateGroup(1)
		} else {
			h.s.ActivateGroup(1)
		}
		on = !on
		h.eng.After(10*sim.Millisecond, cycle)
	}
	h.eng.After(10*sim.Millisecond, cycle)
	h.eng.RunFor(2 * sim.Second)
	sa, sb := shareOf(a, 2*sim.Second), shareOf(b, 2*sim.Second)
	if sa > sb {
		t.Fatalf("cycling app out-ran its competitor: %v vs %v", sa, sb)
	}
	if sb < 0.45 {
		t.Fatalf("competitor share = %v, should be at least its fair half", sb)
	}
}

func TestTaskWakeIntoResidentGroupRunsOnForcedIdleCore(t *testing.T) {
	h := newHarness(t, 2)
	a0 := h.hog(1, "a0", 0, 0)
	a1 := h.periodic(1, "a1", 1, 5*sim.Millisecond, 5*sim.Millisecond)
	h.hog(2, "b0", 0, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	if a1.CPUTime() == 0 || a0.CPUTime() == 0 {
		t.Fatal("both group tasks should make progress")
	}
	// a1 demands 50% of core 1; inside the box it should get a large part
	// of that demand whenever the window is open.
	if got := shareOf(a1, sim.Second); got < 0.10 {
		t.Fatalf("a1 share = %v", got)
	}
}

func TestNewTaskWhileGroupActiveJoinsGroup(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "a0", 0, 0)
	h.hog(2, "b0", 0, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(100 * sim.Millisecond)
	late := h.hog(1, "late", 1, 0)
	if late.ge == nil {
		t.Fatal("late task should join the active group")
	}
	h.eng.RunFor(500 * sim.Millisecond)
	if late.CPUTime() == 0 {
		t.Fatal("late group task never ran")
	}
	// Exclusivity still holds.
	tr := &occupancyTracker{h: h, boxed: 1}
	var poll func(sim.Time)
	poll = func(sim.Time) {
		tr.check()
		h.eng.After(100*sim.Microsecond, poll)
	}
	h.eng.After(100*sim.Microsecond, poll)
	h.eng.RunFor(500 * sim.Millisecond)
	if tr.overlaps != 0 {
		t.Fatalf("exclusivity violated %d times", tr.overlaps)
	}
}

func TestShootdownCountsAndIPIDelay(t *testing.T) {
	h := newHarness(t, 2)
	h.periodic(1, "boxed", 0, 1*sim.Millisecond, 9*sim.Millisecond)
	h.hog(2, "other0", 0, 0)
	h.hog(2, "other1", 1, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	if h.s.Shootdowns() < 100 {
		t.Fatalf("shootdowns = %d, expected ≥ 2 per window × ~100 windows", h.s.Shootdowns())
	}
}

func TestGroupEntityVRuntimeGrowsWithForcedIdle(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "a0", 0, 0) // single-threaded app: core 1 forced idle
	h.hog(2, "b0", 0, 0)
	h.hog(2, "b1", 1, 0)
	g := h.s.ActivateGroup(1)
	h.eng.RunFor(1 * sim.Second)
	// Core 1's entity never ran a task yet must have been billed.
	if g.EntityVRuntime(1) == 0 {
		t.Fatal("forced idle was not billed to the balloon")
	}
}

func TestExitLastGroupTaskClosesWindow(t *testing.T) {
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	h.hog(2, "b", 0, 0)
	h.s.ActivateGroup(1)
	h.eng.RunFor(100 * sim.Millisecond)
	h.s.Exit(a)
	if h.resident[1] {
		t.Fatal("window should close when the last task exits")
	}
	h.eng.RunFor(100 * sim.Millisecond)
}
