package sched

import (
	"fmt"

	"psbox/internal/sim"
)

// Gang scheduling is the paper's §7 alternative enforcement for spatial
// balloons: instead of demand-driven coscheduling windows paid for with
// loans, the sandboxed app receives a fixed, periodic reservation of all
// cores — the classic real-time-kernel mechanism ("directly supports
// executing all threads in a psbox (a gang) simultaneously and enforces
// mutual exclusion among gangs").
//
// The trade-off this file exists to expose: gang slots are reserved
// whether or not the gang has work, so an idle gang wastes whole-machine
// time that loan-based coscheduling would have returned to others; in
// exchange, the gang's residency is strictly periodic and needs no loan
// accounting.

// GangConfig describes a fixed reservation.
type GangConfig struct {
	// Period is the reservation cycle length.
	Period sim.Duration
	// Slot is the whole-machine time the gang owns each period. Must be
	// positive and less than Period.
	Slot sim.Duration
}

func (c GangConfig) validate() error {
	if c.Period <= 0 || c.Slot <= 0 || c.Slot >= c.Period {
		return fmt.Errorf("sched: gang slot must satisfy 0 < slot < period (got %v of %v)", c.Slot, c.Period)
	}
	return nil
}

// ActivateGang encloses appID's tasks in a gang with a fixed periodic
// reservation. It is mutually exclusive with ActivateGroup for the same
// app; like groups, at most one gang or group window is open at a time.
func (s *Scheduler) ActivateGang(appID int, cfg GangConfig) (*Group, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := s.ActivateGroup(appID)
	g.gang = true
	g.gangCfg = cfg
	// If demand-driven activation already opened a window, close it: gang
	// windows come only from the timer.
	if g.resident {
		s.endCosched(g)
	}
	s.scheduleGangWindow(g)
	return g, nil
}

// DeactivateGang dissolves the gang.
func (s *Scheduler) DeactivateGang(appID int) {
	g, ok := s.groups[appID]
	if !ok || !g.gang {
		return
	}
	g.gang = false
	if g.gangTimer != (sim.Handle{}) {
		s.eng.Cancel(g.gangTimer)
		g.gangTimer = sim.Handle{}
	}
	s.DeactivateGroup(appID)
}

func (s *Scheduler) scheduleGangWindow(g *Group) {
	g.gangTimer = s.eng.After(g.gangCfg.Period-g.gangCfg.Slot, func(sim.Time) {
		g.gangTimer = sim.Handle{}
		s.openGangWindow(g)
	})
}

func (s *Scheduler) openGangWindow(g *Group) {
	if !g.active || !g.gang {
		return
	}
	if s.resident != nil {
		// Another balloon holds the machine; retry shortly. Gangs are
		// mutually excluded, as are gang and loan windows.
		g.gangTimer = s.eng.After(s.cfg.Tick, func(sim.Time) {
			g.gangTimer = sim.Handle{}
			s.openGangWindow(g)
		})
		return
	}
	// Force-open from core 0: unlike demand windows, the reservation opens
	// even if the gang has nothing runnable (the slot is owned).
	c := s.cores[0]
	s.bill(0)
	if prev := c.curTask; prev != nil {
		s.stopCurrent(0)
		s.enqueue(0, prev)
	}
	s.dequeue(0, g.entities[0])
	s.beginCosched(g, 0)
	// Close exactly Slot later.
	s.eng.After(g.gangCfg.Slot, func(sim.Time) {
		if g.resident {
			s.endCosched(g)
		}
		if g.active && g.gang {
			s.scheduleGangWindow(g)
		}
	})
}
