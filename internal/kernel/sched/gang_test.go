package sched

import (
	"testing"

	"psbox/internal/sim"
)

func TestGangConfigValidation(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "a", 0, 0)
	bad := []GangConfig{
		{Period: 0, Slot: 1},
		{Period: 10 * sim.Millisecond, Slot: 0},
		{Period: 10 * sim.Millisecond, Slot: 10 * sim.Millisecond},
		{Period: 10 * sim.Millisecond, Slot: 20 * sim.Millisecond},
	}
	for _, cfg := range bad {
		if _, err := h.s.ActivateGang(1, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestGangPeriodicResidency(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "gang", 0, 0)
	h.hog(2, "other", 0, 0)
	var opens []sim.Time
	var spans []sim.Duration
	var openAt sim.Time
	h.s.cbs.GroupResident = func(app int, r bool) {
		if r {
			openAt = h.eng.Now()
			opens = append(opens, openAt)
		} else {
			spans = append(spans, h.eng.Now().Sub(openAt))
		}
	}
	cfg := GangConfig{Period: 20 * sim.Millisecond, Slot: 5 * sim.Millisecond}
	if _, err := h.s.ActivateGang(1, cfg); err != nil {
		t.Fatal(err)
	}
	h.eng.RunFor(500 * sim.Millisecond)
	if len(opens) < 20 || len(opens) > 30 {
		t.Fatalf("windows = %d, want ≈25", len(opens))
	}
	// Strictly periodic cadence (±tick for retry jitter).
	for i := 1; i < len(opens); i++ {
		gap := opens[i].Sub(opens[i-1])
		if gap < cfg.Period-2*sim.Millisecond || gap > cfg.Period+2*sim.Millisecond {
			t.Fatalf("window %d gap %v, want ≈%v", i, gap, cfg.Period)
		}
	}
	// Each window lasts the slot (announce may trail the IPI).
	for i, s := range spans {
		if s < cfg.Slot-sim.Millisecond || s > cfg.Slot+sim.Millisecond {
			t.Fatalf("window %d span %v, want ≈%v", i, s, cfg.Slot)
		}
	}
}

// The gang's defining waste: an idle gang still consumes its slot, so a
// competitor loses exactly the reservation share — unlike loan windows,
// which return idle capacity.
func TestGangWastesReservedSlots(t *testing.T) {
	measure := func(gang bool) float64 {
		h := newHarness(t, 2)
		// The sandboxed app sleeps almost always: ~2% demand.
		h.periodic(1, "idleapp", 0, 200*sim.Microsecond, 10*sim.Millisecond)
		other := h.hog(2, "other", 0, 0)
		if gang {
			if _, err := h.s.ActivateGang(1, GangConfig{
				Period: 20 * sim.Millisecond, Slot: 5 * sim.Millisecond, // 25% reserved
			}); err != nil {
				t.Fatal(err)
			}
		} else {
			h.s.ActivateGroup(1)
		}
		h.eng.RunFor(2 * sim.Second)
		return other.CPUTime().Seconds() / 2
	}
	withLoans := measure(false)
	withGang := measure(true)
	if withGang >= withLoans-0.10 {
		t.Fatalf("gang should waste ≈25%% for others: loans %v vs gang %v", withLoans, withGang)
	}
	if withGang > 0.80 {
		t.Fatalf("other share %v under a 25%% reservation", withGang)
	}
}

func TestGangExclusivity(t *testing.T) {
	h := newHarness(t, 2)
	h.hog(1, "g0", 0, 0)
	h.hog(1, "g1", 1, 0)
	h.hog(2, "o0", 0, 0)
	h.hog(2, "o1", 1, 0)
	if _, err := h.s.ActivateGang(1, GangConfig{
		Period: 10 * sim.Millisecond, Slot: 4 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	tr := &occupancyTracker{h: h, boxed: 1}
	var poll func(sim.Time)
	poll = func(sim.Time) {
		tr.check()
		h.eng.After(100*sim.Microsecond, poll)
	}
	h.eng.After(100*sim.Microsecond, poll)
	h.eng.RunFor(1 * sim.Second)
	if tr.overlaps != 0 {
		t.Fatalf("gang overlapped others at %d instants", tr.overlaps)
	}
}

func TestDeactivateGangRestoresSharing(t *testing.T) {
	h := newHarness(t, 2)
	a := h.hog(1, "a", 0, 0)
	b := h.hog(2, "b", 0, 0)
	if _, err := h.s.ActivateGang(1, GangConfig{
		Period: 10 * sim.Millisecond, Slot: 5 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.RunFor(300 * sim.Millisecond)
	h.s.DeactivateGang(1)
	if h.resident[1] {
		t.Fatal("deactivate should close the window")
	}
	aBase, bBase := a.CPUTime(), b.CPUTime()
	h.eng.RunFor(1 * sim.Second)
	da := float64(a.CPUTime() - aBase)
	db := float64(b.CPUTime() - bBase)
	share := da / (da + db)
	if share < 0.35 || share > 0.65 {
		t.Fatalf("post-gang share = %v", share)
	}
	h.s.DeactivateGang(1) // idempotent
	h.eng.RunFor(50 * sim.Millisecond)
}

func TestGangWithNoRunnableTasksHoldsSlot(t *testing.T) {
	h := newHarness(t, 2)
	// The gang app is fully blocked; the other is a hog.
	tk := h.s.NewTask(1, "blocked", 0, 0)
	_ = tk // never woken
	other := h.hog(2, "other", 0, 0)
	if _, err := h.s.ActivateGang(1, GangConfig{
		Period: 10 * sim.Millisecond, Slot: 5 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.RunFor(1 * sim.Second)
	// The other hog loses ≈ the whole reservation share.
	share := other.CPUTime().Seconds()
	if share > 0.60 {
		t.Fatalf("reservation not enforced: other got %v", share)
	}
	if share < 0.40 {
		t.Fatalf("other starved beyond the reservation: %v", share)
	}
}
