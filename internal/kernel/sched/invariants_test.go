package sched

import (
	"testing"
	"testing/quick"

	"psbox/internal/sim"
)

// The scheduler's global invariants, checked under randomized workload
// mixes and sandbox toggling.

type invHarness struct {
	*harness
	// busy[core] tracks occupancy to check conservation.
	busySince map[int]sim.Time
	busyTotal map[int]sim.Duration
}

func newInvHarness(t *testing.T, cores int) *invHarness {
	h := &invHarness{
		harness:   newHarness(t, cores),
		busySince: map[int]sim.Time{},
		busyTotal: map[int]sim.Duration{},
	}
	prevRun := h.s.cbs.RunTask
	prevStop := h.s.cbs.StopTask
	h.s.cbs.RunTask = func(core int, tk *Task) {
		prevRun(core, tk)
		h.busySince[core] = h.eng.Now()
	}
	h.s.cbs.StopTask = func(core int, tk *Task) {
		prevStop(core, tk)
		h.busyTotal[core] += h.eng.Now().Sub(h.busySince[core])
		delete(h.busySince, core)
	}
	return h
}

// TestQuickCPUTimeConservation: the sum of all tasks' CPU time can never
// exceed cores × elapsed time, and per-core occupancy equals the sum of
// its tasks' runtime.
func TestQuickCPUTimeConservation(t *testing.T) {
	f := func(seed uint64, mix []uint8) bool {
		h := newInvHarness(t, 2)
		r := sim.NewRand(seed)
		napps := 2 + r.Intn(3)
		var tasks []*Task
		for a := 0; a < napps; a++ {
			n := 1 + r.Intn(2)
			for i := 0; i < n; i++ {
				core := r.Intn(2)
				if r.Intn(2) == 0 {
					tasks = append(tasks, h.hog(a+1, "hog", core, 0))
				} else {
					burst := sim.Duration(1+r.Intn(5)) * sim.Millisecond
					sleep := sim.Duration(1+r.Intn(8)) * sim.Millisecond
					tasks = append(tasks, h.periodic(a+1, "p", core, burst, sleep))
				}
			}
		}
		// Random box toggling on app 1.
		for i, m := range mix {
			if i >= 6 {
				break
			}
			delay := sim.Duration(int(m)%40+1) * sim.Millisecond
			if i%2 == 0 {
				h.eng.After(delay*sim.Duration(i+1), func(sim.Time) { h.s.ActivateGroup(1) })
			} else {
				h.eng.After(delay*sim.Duration(i+1), func(sim.Time) { h.s.DeactivateGroup(1) })
			}
		}
		span := 500 * sim.Millisecond
		h.eng.RunFor(span)
		var total sim.Duration
		for _, tk := range tasks {
			total += tk.CPUTime()
		}
		return total <= 2*span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExclusivityUnderToggling: at any sampled instant inside an
// announced residency window, no other app shares the CPU.
func TestQuickExclusivityUnderToggling(t *testing.T) {
	f := func(seed uint64) bool {
		h := newHarness(t, 2)
		r := sim.NewRand(seed)
		h.hog(1, "a0", 0, 0)
		h.hog(1, "a1", 1, 0)
		for a := 2; a <= 3; a++ {
			h.hog(a, "b0", r.Intn(2), 0)
			h.hog(a, "b1", r.Intn(2), 0)
		}
		// Toggle the box with random cadence.
		on := false
		var toggle func(sim.Time)
		toggle = func(sim.Time) {
			if on {
				h.s.DeactivateGroup(1)
			} else {
				h.s.ActivateGroup(1)
			}
			on = !on
			h.eng.After(sim.Duration(5+r.Intn(30))*sim.Millisecond, toggle)
		}
		h.eng.After(10*sim.Millisecond, toggle)

		ok := true
		var poll func(sim.Time)
		poll = func(sim.Time) {
			if h.resident[1] {
				for _, tk := range h.onCore {
					if tk != nil && tk.AppID != 1 {
						ok = false
					}
				}
			}
			h.eng.After(250*sim.Microsecond, poll)
		}
		h.eng.After(250*sim.Microsecond, poll)
		h.eng.RunFor(700 * sim.Millisecond)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoPermanentStarvation: under a persistent sandbox, every
// runnable competitor still makes progress.
func TestQuickNoPermanentStarvation(t *testing.T) {
	f := func(seed uint64) bool {
		h := newHarness(t, 2)
		r := sim.NewRand(seed)
		boxTasks := 1 + r.Intn(2)
		for i := 0; i < boxTasks; i++ {
			h.hog(1, "boxed", i%2, 0)
		}
		others := []*Task{
			h.hog(2, "b", r.Intn(2), 0),
			h.hog(3, "c", r.Intn(2), 0),
		}
		h.s.ActivateGroup(1)
		h.eng.RunFor(1 * sim.Second)
		mid := []sim.Duration{others[0].CPUTime(), others[1].CPUTime()}
		h.eng.RunFor(1 * sim.Second)
		for i, tk := range others {
			if tk.CPUTime()-mid[i] < 50*sim.Millisecond {
				return false // starved in the second half
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResidencyEventsBalanced: GroupResident callbacks strictly
// alternate true/false under random toggling and workload churn.
func TestQuickResidencyEventsBalanced(t *testing.T) {
	f := func(seed uint64) bool {
		h := newHarness(t, 2)
		r := sim.NewRand(seed)
		h.periodic(1, "p", 0, sim.Duration(1+r.Intn(4))*sim.Millisecond,
			sim.Duration(1+r.Intn(8))*sim.Millisecond)
		h.hog(2, "hog", 0, 0)
		var events []bool
		h.s.cbs.GroupResident = func(app int, res bool) { events = append(events, res) }
		h.s.ActivateGroup(1)
		h.eng.After(sim.Duration(100+r.Intn(200))*sim.Millisecond, func(sim.Time) {
			h.s.DeactivateGroup(1)
		})
		h.eng.After(sim.Duration(400+r.Intn(100))*sim.Millisecond, func(sim.Time) {
			h.s.ActivateGroup(1)
		})
		h.eng.RunFor(700 * sim.Millisecond)
		for i, e := range events {
			if e != (i%2 == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
