package sim

import (
	"container/heap"
	"testing"
)

// TestDrainMonotonicityPanic is the regression test for Drain silently
// accepting an event stamped before the current clock — Run has always
// panicked on that corruption; Drain must too.
func TestDrainMonotonicityPanic(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.Run(20) // now = 20
	// Corrupt the queue the only way possible: bypass At's past-check and
	// push a stale item directly, as a buggy model mutating internals would.
	e.nextSeq++
	it := &item{at: 5, seq: e.nextSeq, fn: func(Time) {}}
	heap.Push(&e.queue, it)
	e.byName[it.seq] = it
	defer func() {
		if recover() == nil {
			t.Fatal("Drain executed an event from the past without panicking")
		}
	}()
	e.Drain(10)
}

func TestEngineCancelFromInsideEvent(t *testing.T) {
	e := NewEngine()
	var h2 Handle
	fired2 := false
	// Both at t=10: the first handler revokes the second before it fires.
	e.At(10, func(Time) {
		if !e.Cancel(h2) {
			t.Fatal("Cancel of a pending sibling reported not pending")
		}
	})
	h2 = e.At(10, func(Time) { fired2 = true })
	e.Run(100)
	if fired2 {
		t.Fatal("event cancelled from inside a handler still fired")
	}
}

func TestEngineCancelSelfWhileFiring(t *testing.T) {
	e := NewEngine()
	var self Handle
	self = e.At(10, func(Time) {
		// The firing event is no longer pending; cancelling it is a no-op.
		if e.Cancel(self) {
			t.Fatal("Cancel of the currently-firing event reported pending")
		}
	})
	e.Run(100)
}

func TestEveryStopTwiceFromInsideTick(t *testing.T) {
	e := NewEngine()
	n := 0
	var stop func()
	stop = e.Every(10, func(Time) {
		n++
		if n == 2 {
			stop()
			stop() // second call from inside the same tick must be a no-op
		}
	})
	e.Run(200)
	if n != 2 {
		t.Fatalf("fired %d times, want 2", n)
	}
	stop() // and again after the run, for good measure
	e.Run(400)
	if n != 2 {
		t.Fatalf("fired after stop: %d", n)
	}
}
