package sim

import (
	"sort"

	"psbox/internal/snapshot"
)

// Seq exposes the handle's event sequence number. Sequence numbers are
// allocated deterministically (one per At call), so they are stable across
// replays and safe to include in checkpoint encodings; other packages use
// Seq to encode their armed timers.
func (h Handle) Seq() uint64 { return h.seq }

// State exposes the generator's stream position for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState repositions the generator; the argument must come from State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Snapshot encodes the generator's stream position.
func (r *Rand) Snapshot(enc *snapshot.Encoder) { enc.U64(r.state) }

// Restore verifies the live stream position against a checkpoint.
func (r *Rand) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, r.Snapshot) }

// Snapshot encodes the engine: clock, sequence allocator, fired-event
// count, and the pending event set as sorted (at, seq) pairs. Event
// callbacks are closures and are deliberately not encoded — the replay-twin
// restore contract (DESIGN.md) rebuilds them by re-running the scenario,
// and the (at, seq) pairs pin the rebuilt queue to the checkpointed one.
func (e *Engine) Snapshot(enc *snapshot.Encoder) {
	enc.I64(int64(e.now))
	enc.U64(e.nextSeq)
	enc.U64(e.fired)
	pending := make([]*item, len(e.queue))
	copy(pending, e.queue)
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].at != pending[j].at {
			return pending[i].at < pending[j].at
		}
		return pending[i].seq < pending[j].seq
	})
	enc.Len(len(pending))
	for _, it := range pending {
		enc.I64(int64(it.at))
		enc.U64(it.seq)
	}
}

// Restore verifies the live engine against a checkpoint section.
func (e *Engine) Restore(dec *snapshot.Decoder) error { return snapshot.Verify(dec, e.Snapshot) }
