package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * Millisecond)
	if t1 != Time(3_000_000) {
		t.Fatalf("Add: got %d", int64(t1))
	}
	if d := t1.Sub(t0); d != 3*Millisecond {
		t.Fatalf("Sub: got %v", d)
	}
	if s := t1.Seconds(); s != 0.003 {
		t.Fatalf("Seconds: got %v", s)
	}
	if got := FromHost(2 * time.Second); got != 2*Second {
		t.Fatalf("FromHost: got %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{1500 * Millisecond, "1.500s"},
		{2 * Millisecond, "2.000ms"},
		{15 * Microsecond, "15.000µs"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d: got %q want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("clock should land on horizon, got %v", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO at same instant: %v", order)
		}
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(50, func(Time) { fired = true })
	e.Run(49)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 49 {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run(50)
	if !fired {
		t.Fatal("event at horizon should fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func(Time) { fired = true })
	if !e.Cancel(h) {
		t.Fatal("Cancel reported not pending")
	}
	if e.Cancel(h) {
		t.Fatal("double Cancel should report false")
	}
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(Handle{}) {
		t.Fatal("zero handle should not cancel")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	h := e.At(1, func(Time) {})
	e.Run(2)
	if e.Cancel(h) {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func(now Time) {
		e.After(5, func(now2 Time) { at = now2 })
	})
	e.Run(100)
	if at != 15 {
		t.Fatalf("chained event at %v, want 15", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling into the past")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineRunReentryPanics(t *testing.T) {
	e := NewEngine()
	var recovered bool
	e.At(1, func(Time) {
		defer func() { recovered = recover() != nil }()
		e.Run(10)
	})
	e.Run(10)
	if !recovered {
		t.Fatal("re-entrant Run should panic")
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine()
	n := 0
	var rearm func(Time)
	rearm = func(Time) {
		n++
		if n < 5 {
			e.After(1, rearm)
		}
	}
	e.After(1, rearm)
	if !e.Drain(100) {
		t.Fatal("finite chain should drain")
	}
	if n != 5 {
		t.Fatalf("n = %d", n)
	}

	// A self-rearming timer must hit the budget, not loop forever.
	var forever func(Time)
	forever = func(Time) { e.After(1, forever) }
	e.After(1, forever)
	if e.Drain(50) {
		t.Fatal("unbounded chain reported drained")
	}
}

func TestEnginePendingAndFired(t *testing.T) {
	e := NewEngine()
	e.At(1, func(Time) {})
	e.At(2, func(Time) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run(10)
	if e.Pending() != 0 || e.Fired() != 2 {
		t.Fatalf("Pending=%d Fired=%d", e.Pending(), e.Fired())
	}
}

func TestEngineManyEventsStressOrdering(t *testing.T) {
	e := NewEngine()
	r := NewRand(7)
	const n = 5000
	var last Time = -1
	ok := true
	for i := 0; i < n; i++ {
		at := Time(r.Int63n(1_000_000))
		e.At(at, func(now Time) {
			if now < last {
				ok = false
			}
			last = now
		})
	}
	e.Run(1_000_000)
	if !ok {
		t.Fatal("events fired out of order")
	}
	if e.Fired() != n {
		t.Fatalf("fired %d of %d", e.Fired(), n)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(1000, 0.2)
		if v < 800 || v > 1200 {
			t.Fatalf("Jitter out of bounds: %d", v)
		}
	}
	if r.Jitter(50, 0) != 50 {
		t.Fatal("zero-frac jitter must be identity")
	}
	if r.Jitter(1, 0.99) < 1 {
		t.Fatal("jitter must stay positive")
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(3)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	varr := sq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("mean = %v", mean)
	}
	if varr < 3.6 || varr > 4.4 {
		t.Fatalf("variance = %v", varr)
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(9)
	f := r.Fork()
	// Drawing from the fork must not perturb the parent's future stream
	// relative to a parent that forked but never used the fork.
	r2 := NewRand(9)
	_ = r2.Fork()
	for i := 0; i < 10; i++ {
		f.Uint64()
	}
	for i := 0; i < 10; i++ {
		if r.Uint64() != r2.Uint64() {
			t.Fatal("fork usage perturbed parent stream")
		}
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEngineMonotonicClock(t *testing.T) {
	f := func(seed uint64, raw []uint32) bool {
		e := NewEngine()
		last := Time(-1)
		mono := true
		for _, v := range raw {
			at := Time(v % 1_000_000)
			e.At(at, func(now Time) {
				if now < last {
					mono = false
				}
				last = now
			})
		}
		e.Run(1_000_000)
		return mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	n := 0
	stop := e.Every(10, func(Time) { n++ })
	e.Run(55)
	if n != 5 {
		t.Fatalf("fired %d times, want 5", n)
	}
	stop()
	stop() // idempotent
	e.Run(200)
	if n != 5 {
		t.Fatalf("fired after stop: %d", n)
	}
}

func TestEveryStopFromInside(t *testing.T) {
	e := NewEngine()
	n := 0
	var stop func()
	stop = e.Every(10, func(Time) {
		n++
		if n == 3 {
			stop()
		}
	})
	e.Run(200)
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, func(Time) {})
}
