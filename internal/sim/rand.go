package sim

// Rand is a small deterministic pseudo-random source (SplitMix64). The
// standard library's math/rand is avoided so that simulated randomness is
// stable across Go releases and trivially seedable per experiment.
// A Rand is confined to one goroutine: concurrent Next calls would make
// the draw sequence depend on scheduling.
//
//psbox:confined
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform on [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value uniform on [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform on [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns base scaled by a factor uniform on [1−frac, 1+frac].
// It is the standard way workloads add run-to-run variation.
func (r *Rand) Jitter(base int64, frac float64) int64 {
	if frac <= 0 {
		return base
	}
	f := 1 + frac*(2*r.Float64()-1)
	v := int64(float64(base) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// JitterDur is Jitter for durations.
func (r *Rand) JitterDur(base Duration, frac float64) Duration {
	return Duration(r.Jitter(int64(base), frac))
}

// Norm returns an approximately normal deviate with the given mean and
// standard deviation (Irwin–Hall sum of 12 uniforms).
func (r *Rand) Norm(mean, stddev float64) float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + stddev*(s-6)
}

// Fork derives an independent generator. Streams of a generator and its
// fork do not interleave, which keeps workload randomness stable when new
// consumers are added.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
