// Package sim provides the deterministic discrete-event simulation engine
// that underpins every hardware and kernel model in this repository.
//
// All simulated state advances inside a single Engine run loop; there is no
// goroutine-level concurrency in simulated code, which makes every
// experiment reproducible bit-for-bit given a seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated instant, measured in nanoseconds since the start of
// the simulation. It is intentionally distinct from time.Time: simulated
// clocks share no epoch with the host.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration so the familiar unit constants can be used via FromHost.
type Duration int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromHost converts a host time.Duration into a simulated Duration.
func FromHost(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the instant with microsecond precision, e.g. "1.250000s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// String renders the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}
