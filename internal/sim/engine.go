package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to fire at a simulated instant.
type Event func(now Time)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle struct {
	seq uint64
}

type item struct {
	at    Time
	seq   uint64 // tie-break: FIFO among events at the same instant
	fn    Event
	index int // heap index; -1 once popped or cancelled
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Engine is a discrete-event simulation executor. It is not safe for
// concurrent use; all simulated subsystems run inside its event loop.
type Engine struct {
	now     Time
	nextSeq uint64
	queue   eventQueue
	//psbox:allow-snapshotstate cancellation index over queue; same content, rebuilt by replay
	byName map[uint64]*item
	//psbox:allow-snapshotstate transient re-entrancy guard; true whenever a checkpoint event could observe it
	running bool
	fired   uint64

	// probe, when set, observes every probeStride-th fired event. The
	// fired counter is a pure function of the scenario, so probe firings
	// replay identically across checkpoint/restore — unlike Run-call
	// boundaries, which differ between a straight run and a resumed one.
	probe func(now Time, fired uint64)
	//psbox:allow-snapshotstate probe configuration, rewired by the rebuilt scenario, not replayed state
	probeStride uint64
}

// SetFiredProbe installs a hook invoked after every stride-th event
// fires, with the current time and cumulative fired count. A nil fn
// clears the probe. The observability layer uses this to mark engine
// progress without the engine importing it.
func (e *Engine) SetFiredProbe(stride uint64, fn func(now Time, fired uint64)) {
	if stride == 0 {
		stride = 1
	}
	e.probe = fn
	e.probeStride = stride
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{byName: make(map[uint64]*item)}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far; useful for budgeting
// and for detecting runaway models in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at instant t. Scheduling in the past panics: models
// that do so are buggy and would silently corrupt causality.
func (e *Engine) At(t Time, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.nextSeq++
	it := &item{at: t, seq: e.nextSeq, fn: fn}
	heap.Push(&e.queue, it)
	e.byName[it.seq] = it
	return Handle{seq: it.seq}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel revokes a scheduled event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or the handle is zero).
func (e *Engine) Cancel(h Handle) bool {
	it, ok := e.byName[h.seq]
	if !ok {
		return false
	}
	delete(e.byName, h.seq)
	if it.index >= 0 {
		heap.Remove(&e.queue, it.index)
	}
	return true
}

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Run executes events in timestamp order until the queue drains or the
// clock passes until (whichever is first), then advances the clock to
// until. Events scheduled exactly at until do fire.
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: Engine.Run re-entered from inside an event")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		delete(e.byName, next.seq)
		if next.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.at
		e.fired++
		if e.probe != nil && e.fired%e.probeStride == 0 {
			e.probe(e.now, e.fired)
		}
		next.fn(e.now)
	}
	if until > e.now {
		e.now = until
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.Run(e.now.Add(d)) }

// Drain runs until the event queue is empty or maxEvents have fired.
// It reports whether the queue fully drained. Models with self-rearming
// timers never drain; callers should prefer Run with a horizon.
func (e *Engine) Drain(maxEvents uint64) bool {
	if e.running {
		panic("sim: Engine.Drain re-entered from inside an event")
	}
	e.running = true
	defer func() { e.running = false }()
	start := e.fired
	for len(e.queue) > 0 {
		if e.fired-start >= maxEvents {
			return false
		}
		next := heap.Pop(&e.queue).(*item)
		delete(e.byName, next.seq)
		if next.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.at
		e.fired++
		if e.probe != nil && e.fired%e.probeStride == 0 {
			e.probe(e.now, e.fired)
		}
		next.fn(e.now)
	}
	return true
}

// Every schedules fn at a fixed period, starting one period from now. The
// returned stop function cancels future firings; it is safe to call from
// inside fn or multiple times. Periodic polling loops throughout the
// code base build on this.
func (e *Engine) Every(period Duration, fn Event) (stop func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	stopped := false
	var h Handle
	var tick Event
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			h = e.After(period, tick)
		}
	}
	h = e.After(period, tick)
	return func() {
		stopped = true
		e.Cancel(h)
	}
}
