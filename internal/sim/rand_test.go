package sim

import (
	"testing"
	"testing/quick"
)

// goldenSeed1 is the first 32 values of NewRand(1)'s Uint64 stream.
// SplitMix64 is pure 64-bit integer arithmetic, so this stream must be
// identical on every platform and every Go release: a golden mismatch
// means the generator changed, which silently invalidates every seeded
// experiment and committed report in the repo.
var goldenSeed1 = [32]uint64{
	0x910a2dec89025cc1, 0xbeeb8da1658eec67, 0xf893a2eefb32555e, 0x71c18690ee42c90b,
	0x71bb54d8d101b5b9, 0xc34d0bff90150280, 0xe099ec6cd7363ca5, 0x85e7bb0f12278575,
	0x491718de357e3da8, 0xcb435c8e74616796, 0x6775dc7701564f61, 0x9afcd44d14cf8bfe,
	0x7476cf8a4baa5dc0, 0x87b341d690d7a28a, 0x6f9b6dae6f4c57a8, 0x2ac2ce17a5794a3b,
	0xa534a6a6b7fd0b63, 0xd0bad0da572baaf1, 0xae84379630af89ee, 0xe263183773ef6508,
	0x10e2c46865e98746, 0x14d7973c5c2a449c, 0x7ef1fd0ed1548fcd, 0x1f8410633ef306ac,
	0x497305c5d1aab99f, 0x0c43407dc177b6f7, 0x83f91ca7864a7135, 0xb6b9aeef0d2df7ab,
	0x0b331645445bcd27, 0xff6c67e81909778a, 0x990cd70b12c5d084, 0x962b1967c90789ba,
}

func TestRandGoldenStream(t *testing.T) {
	r := NewRand(1)
	for i, want := range goldenSeed1 {
		if got := r.Uint64(); got != want {
			t.Fatalf("value %d of seed-1 stream: got %#016x, want %#016x", i, got, want)
		}
	}
}

// TestRandSameSeedSameStream is the property the whole determinism story
// rests on: any two generators with equal seeds produce equal streams,
// across Uint64, Intn, Float64, and Norm alike.
func TestRandSameSeedSameStream(t *testing.T) {
	same := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 256; i++ {
			switch i % 4 {
			case 0:
				if a.Uint64() != b.Uint64() {
					return false
				}
			case 1:
				if a.Intn(1000) != b.Intn(1000) {
					return false
				}
			case 2:
				if a.Float64() != b.Float64() {
					return false
				}
			case 3:
				if a.Norm(5, 2) != b.Norm(5, 2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(same, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRandDifferentSeedsDiverge guards against a degenerate generator that
// ignores its seed.
func TestRandDifferentSeedsDiverge(t *testing.T) {
	differ := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := NewRand(s1), NewRand(s2)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(differ, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRandForkDeterministicAndDistinct: forking must itself be a
// deterministic function of the parent's state, and the fork's stream must
// not track the parent's.
func TestRandForkDeterministicAndDistinct(t *testing.T) {
	a := NewRand(99)
	f1 := a.Fork()
	b := NewRand(99)
	f2 := b.Fork()
	for i := 0; i < 64; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("forking is not deterministic")
		}
	}
	c := NewRand(99)
	fork := c.Fork()
	equal := 0
	for i := 0; i < 64; i++ {
		if c.Uint64() == fork.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("fork stream tracks parent stream (%d/64 equal values)", equal)
	}
}

// TestRandJitterDeterministicProperty extends the same-seed property to
// the derived helpers used by workloads.
func TestRandJitterDeterministicProperty(t *testing.T) {
	same := func(seed uint64, base int64, frac float64) bool {
		if base <= 0 {
			base = -base + 1
		}
		frac = frac - float64(int64(frac)) // wrap into (-1, 1)
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 32; i++ {
			if a.Jitter(base, frac) != b.Jitter(base, frac) {
				return false
			}
			if a.JitterDur(Duration(base), frac) != b.JitterDur(Duration(base), frac) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(same, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
