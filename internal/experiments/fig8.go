package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/sim"
)

// Fig8Instance is one co-running instance's throughput before and after
// one instance (the boxed one) enters its psbox.
type Fig8Instance struct {
	Name      string
	Boxed     bool
	Before    float64 // units/s
	After     float64
	ChangePct float64
}

// Fig8Domain is one subplot of Fig. 8.
type Fig8Domain struct {
	Domain    string
	Unit      string
	Instances []Fig8Instance

	BoxedLossPct   float64 // throughput loss of the sandboxed instance
	WorstOtherLoss float64 // most-negative change among the others
}

// Fig8Result is the four-panel figure.
type Fig8Result struct {
	Domains []Fig8Domain
}

type fig8Scenario struct {
	domain    string
	unit      string
	platform  func(uint64) *psbox.System
	wl        string
	instances int
	scope     psbox.HW
	counter   string
	warmup    sim.Duration
	window    sim.Duration
	saturate  bool
}

func fig8Scenarios() []fig8Scenario {
	return []fig8Scenario{
		// All instances saturate: the figure is about who pays under
		// contention.
		{"cpu", "KB/s", psbox.NewAM57, "calib3d", 3, psbox.HWCPU, "kb",
			500 * sim.Millisecond, 2 * sim.Second, true},
		{"dsp", "GFLOPS", psbox.NewAM57, "sgemm", 3, psbox.HWDSP, "gflops",
			500 * sim.Millisecond, 3 * sim.Second, true},
		{"gpu", "cmds/s", psbox.NewAM57, "cube", 2, psbox.HWGPU, "cmds",
			500 * sim.Millisecond, 2 * sim.Second, true},
		{"wifi", "KB/s", psbox.NewBeagleBone, "wget", 2, psbox.HWWiFi, "bytes",
			500 * sim.Millisecond, 3 * sim.Second, true},
	}
}

// Fig8 co-runs identical saturating instances, measures per-instance
// throughput, sandboxes one, and measures again.
func Fig8(seed uint64) Fig8Result {
	var out Fig8Result
	for _, sc := range fig8Scenarios() {
		sys := sc.platform(seed)
		apps := make([]*psbox.App, sc.instances)
		for i := range apps {
			apps[i] = install(sys, sc.wl, sc.saturate)
		}
		sys.Run(sc.warmup)

		snapshot := func() []float64 {
			v := make([]float64, len(apps))
			for i, a := range apps {
				v[i] = a.Counter(sc.counter)
			}
			return v
		}
		base0 := snapshot()
		sys.Run(sc.window)
		base1 := snapshot()

		box := sys.Sandbox.MustCreate(apps[len(apps)-1], sc.scope)
		box.Enter()
		sys.Run(sc.window)
		after1 := snapshot()

		d := Fig8Domain{Domain: sc.domain, Unit: sc.unit}
		sec := sc.window.Seconds()
		scale := 1.0
		if sc.counter == "bytes" {
			scale = 1.0 / 1024
		}
		for i, a := range apps {
			inst := Fig8Instance{
				Name:   a.Name,
				Boxed:  i == len(apps)-1,
				Before: (base1[i] - base0[i]) / sec * scale,
				After:  (after1[i] - base1[i]) / sec * scale,
			}
			inst.ChangePct = pct(inst.After, inst.Before)
			d.Instances = append(d.Instances, inst)
			if inst.Boxed {
				d.BoxedLossPct = -inst.ChangePct
			} else if inst.ChangePct < d.WorstOtherLoss {
				d.WorstOtherLoss = inst.ChangePct
			}
		}
		out.Domains = append(out.Domains, d)
	}
	return out
}

func (r Fig8Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 8 — throughput of co-running instances, before and after one (*) enters psbox"))
	for _, d := range r.Domains {
		fmt.Fprintf(&b, "\n(%s, %s)\n", strings.ToUpper(d.Domain), d.Unit)
		for _, in := range d.Instances {
			star := " "
			if in.Boxed {
				star = "*"
			}
			fmt.Fprintf(&b, "  %-14s%s before %9.2f  after %9.2f  (%+6.1f%%)\n",
				in.Name, star, in.Before, in.After, in.ChangePct)
		}
		fmt.Fprintf(&b, "  boxed instance loses %.1f%%; worst co-runner change %+.1f%%\n",
			d.BoxedLossPct, d.WorstOtherLoss)
	}
	b.WriteString("\n→ only the sandboxed instance pays; co-runners keep (at least) their previous throughput\n")
	return b.String()
}
