package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/sim"
	"psbox/internal/trace"
	"psbox/internal/workload"
)

// Fig9Step is one adaptation decision of the VR renderer.
type Fig9Step struct {
	AtMs     float64
	AvgMW    float64 // renderer's psbox power over the last window
	Fidelity int
}

// Fig9Result is the §6.4 end-to-end use case: the rendering task samples
// its psbox power and trades fidelity for power against a budget.
type Fig9Result struct {
	// Budget sweep: the renderer converges to a fidelity level per budget;
	// DynamicRange is max/min of the achieved steady-state dynamic power
	// (above the platform idle floor), the paper's 8.9× figure.
	BudgetMW     []float64
	AchievedMW   []float64 // dynamic (above idle) renderer power
	FidelityAt   []int
	DynamicRange float64

	// Adaptation trace at a mid budget.
	Steps      []Fig9Step
	TracePanel string

	IdleFloorMW float64
}

// fig9Run runs the VR scenario with a given power budget (dynamic mW) and
// returns the steady-state dynamic power and fidelity, plus the step log.
func fig9Run(seed uint64, budgetMW float64) (float64, int, []Fig9Step, *psbox.System, *psbox.Box) {
	sys := psbox.NewAM57(seed)
	vr := workload.NewVR(2)
	workload.Install(sys.Kernel, vr.GestureSpec(2))
	render := workload.Install(sys.Kernel, vr.RenderSpec(2))
	box := sys.Sandbox.MustCreate(render, psbox.HWCPU)
	idle := sys.Kernel.CPU().IdlePower()

	var steps []Fig9Step
	window := 400 * sim.Millisecond
	lastEnergy := 0.0
	var control func(sim.Time)
	control = func(now sim.Time) {
		// Pay-as-you-go: the renderer is inside its box only while it
		// samples; here we keep it in the box across the run for a clean
		// trace and adapt every window.
		e := box.Read()
		avgW := (e - lastEnergy) / window.Seconds()
		lastEnergy = e
		dynMW := (avgW - idle) * 1000
		if dynMW < 0 {
			dynMW = 0
		}
		switch {
		case dynMW > budgetMW*1.05:
			vr.SetFidelity(vr.Fidelity() - 1)
		case dynMW < budgetMW*0.70:
			vr.SetFidelity(vr.Fidelity() + 1)
		}
		steps = append(steps, Fig9Step{
			AtMs: now.Seconds() * 1000, AvgMW: dynMW, Fidelity: vr.Fidelity(),
		})
		sys.Eng.After(window, control)
	}
	box.Enter()
	sys.Eng.After(window, control)
	sys.Run(6 * psbox.Second)

	// Steady state: mean dynamic power over the last 2 s.
	n := 0
	sum := 0.0
	for _, s := range steps {
		if s.AtMs >= 4000 {
			sum += s.AvgMW
			n++
		}
	}
	steady := sum / float64(n)
	return steady, vr.Fidelity(), steps, sys, box
}

// Fig9 sweeps power budgets and reports the achieved range.
func Fig9(seed uint64) Fig9Result {
	budgets := []float64{90, 200, 420, 800}
	r := Fig9Result{BudgetMW: budgets}
	var midSys *psbox.System
	var midBox *psbox.Box
	for i, budget := range budgets {
		mw, fid, steps, sys, box := fig9Run(seed, budget)
		r.AchievedMW = append(r.AchievedMW, mw)
		r.FidelityAt = append(r.FidelityAt, fid)
		if i == len(budgets)/2 {
			r.Steps = steps
			midSys, midBox = sys, box
		}
		if i == 0 {
			r.IdleFloorMW = sys.Kernel.CPU().IdlePower() * 1000
		}
	}
	min, max := r.AchievedMW[0], r.AchievedMW[0]
	for _, v := range r.AchievedMW {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > 0 {
		r.DynamicRange = max / min
	}
	if midSys != nil {
		to := midSys.Now()
		from := to - sim.Time(3*sim.Second)
		r.TracePanel = trace.Plot([]trace.Series{
			{Name: "rendering (in psbox)", Samples: trace.DownsampleSamples(
				midBox.SamplesBetween(psbox.HWCPU, from, to), from, to,
				midSys.Meter.Period(), 30*sim.Millisecond)},
			{Name: "total cpu rail", Samples: trace.DownsampleRail(
				midSys.Meter.Rail("cpu"), from, to, 30*sim.Millisecond)},
		}, from, to, 100, 10)
	}
	return r
}

func (r Fig9Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 9 + §6.4 — power-aware VR rendering via psbox"))
	fmt.Fprintf(&b, "platform idle floor: %.0f mW (dynamic power reported above it)\n\n", r.IdleFloorMW)
	fmt.Fprintf(&b, "%-12s %-14s %s\n", "budget (mW)", "achieved (mW)", "fidelity")
	for i := range r.BudgetMW {
		fmt.Fprintf(&b, "%-12.0f %-14.0f %d (%s)\n", r.BudgetMW[i], r.AchievedMW[i],
			r.FidelityAt[i], workload.VRFidelityLevels[r.FidelityAt[i]].Name)
	}
	fmt.Fprintf(&b, "\ndynamic power range achieved: %.1f×\n\n", r.DynamicRange)
	b.WriteString(r.TracePanel)
	b.WriteString("→ insulated observations keep the controller stable despite the gesture task's varying load\n")
	return b.String()
}
