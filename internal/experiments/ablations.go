package experiments

import (
	"fmt"
	"math"
	"strings"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/kernel/sched"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// Ablations probe the design choices DESIGN.md §3 calls out; they are not
// in the paper but test its mechanisms by removal.

// AblLoansResult shows what happens to Fig. 8-style fairness when the
// scheduling-loan repayment of §4.2 step 5 is disabled.
type AblLoansResult struct {
	// CoRunnerLossWithPct / WithoutPct: worst co-runner throughput loss
	// with repayment enabled and disabled.
	CoRunnerLossWithPct    float64
	CoRunnerLossWithoutPct float64
	BoxedLossWithPct       float64
	BoxedLossWithoutPct    float64
}

// AblLoans co-runs three calib3d instances, one sandboxed, with and
// without loan repayment.
func AblLoans(seed uint64) AblLoansResult {
	run := func(disable bool) (boxedLoss, worstOther float64) {
		worstOther = math.Inf(-1) // gains register as negative loss
		cfg := psbox.AM57Config(seed)
		sc := sched.DefaultConfig(cfg.CPU.Cores)
		sc.DisableLoanRepayment = disable
		cfg.Sched = &sc
		sys := psbox.NewSystem(cfg)
		var apps [3]*psbox.App
		for i := range apps {
			apps[i] = workload.Install(sys.Kernel, workload.Calib3D(2, true))
		}
		sys.Run(500 * sim.Millisecond)
		var base [3]float64
		for i, a := range apps {
			base[i] = a.Counter("kb")
		}
		sys.Run(2 * sim.Second)
		var before [3]float64
		for i, a := range apps {
			before[i] = a.Counter("kb") - base[i]
		}
		sys.Sandbox.MustCreate(apps[2], psbox.HWCPU).Enter()
		for i, a := range apps {
			base[i] = a.Counter("kb")
		}
		sys.Run(2 * sim.Second)
		for i, a := range apps {
			after := a.Counter("kb") - base[i]
			loss := (1 - after/before[i]) * 100
			if i == 2 {
				boxedLoss = loss
			} else if loss > worstOther {
				worstOther = loss
			}
		}
		return boxedLoss, worstOther
	}
	r := AblLoansResult{}
	r.BoxedLossWithPct, r.CoRunnerLossWithPct = run(false)
	r.BoxedLossWithoutPct, r.CoRunnerLossWithoutPct = run(true)
	return r
}

func (r AblLoansResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablation — scheduling-loan repayment (§4.2 step 5)"))
	fmt.Fprintf(&b, "with repayment:    boxed loses %5.1f%%, worst co-runner change %+5.1f%%\n",
		r.BoxedLossWithPct, -r.CoRunnerLossWithPct)
	fmt.Fprintf(&b, "without repayment: boxed loses %5.1f%%, worst co-runner change %+5.1f%%\n",
		r.BoxedLossWithoutPct, -r.CoRunnerLossWithoutPct)
	b.WriteString("→ with repayment the sandbox pays and co-runners inherit the freed share;\n")
	b.WriteString("  without it the sandbox free-rides on its queue-jumping loans\n")
	return b.String()
}

// AblStateVirtResult shows the Fig. 3(c) lingering-state leak returning
// into sandbox observations when CPU power-state virtualization is off.
type AblStateVirtResult struct {
	LeakWithPct    float64 // observation shift after a hot co-runner, virtualized
	LeakWithoutPct float64 // same, with virtualization disabled
}

// AblStateVirt measures a sandboxed burst's energy after an idle vs busy
// period, with and without power-state virtualization.
func AblStateVirt(seed uint64) AblStateVirtResult {
	observe := func(disable, preheat bool) float64 {
		sys := psbox.NewAM57(seed)
		sys.Sandbox.DisableStateVirt = disable
		hog := sys.Kernel.NewApp("hog")
		h0 := hog.Spawn("t0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		h1 := hog.Spawn("t1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		if !preheat {
			sys.Kernel.Kill(h0)
			sys.Kernel.Kill(h1)
		}
		sys.Run(300 * sim.Millisecond)
		if preheat {
			sys.Kernel.Kill(h0)
			sys.Kernel.Kill(h1)
			sys.Run(2 * sim.Millisecond)
		}
		app := sys.Kernel.NewApp("subject")
		app.Spawn("burst", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		box := sys.Sandbox.MustCreate(app, psbox.HWCPU)
		box.Enter()
		sys.Run(20 * sim.Millisecond)
		return box.Read()
	}
	leak := func(disable bool) float64 {
		cold := observe(disable, false)
		hot := observe(disable, true)
		return math.Abs(hot-cold) / cold * 100
	}
	return AblStateVirtResult{
		LeakWithPct:    leak(false),
		LeakWithoutPct: leak(true),
	}
}

func (r AblStateVirtResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablation — power-state virtualization (§4.1)"))
	fmt.Fprintf(&b, "observation shift after a hot co-runner, virtualized:   %5.1f%%\n", r.LeakWithPct)
	fmt.Fprintf(&b, "observation shift after a hot co-runner, unvirtualized: %5.1f%%\n", r.LeakWithoutPct)
	b.WriteString("→ without virtualization the co-runner's DVFS residue leaks into the sandbox\n")
	return b.String()
}

// AblDrainBillingResult compares the conservative full-device drain
// billing against the paper's literal idle-only rule.
type AblDrainBillingResult struct {
	BoxedLossFullPct float64
	OtherLossFullPct float64
	BoxedLossIdlePct float64
	OtherLossIdlePct float64
}

// AblDrainBilling re-runs the Fig. 8 DSP scenario under both billing
// rules.
func AblDrainBilling(seed uint64) AblDrainBillingResult {
	run := func(idleOnly bool) (boxed, worstOther float64) {
		sys := psbox.NewAM57(seed)
		sys.Kernel.Accel("dsp").BillDrainIdleOnly = idleOnly
		var apps [3]*psbox.App
		for i := range apps {
			apps[i] = workload.Install(sys.Kernel, workload.SGEMM(2, true))
		}
		sys.Run(500 * sim.Millisecond)
		var base, before [3]float64
		for i, a := range apps {
			base[i] = a.Counter("gflops")
		}
		sys.Run(3 * sim.Second)
		for i, a := range apps {
			before[i] = a.Counter("gflops") - base[i]
		}
		sys.Sandbox.MustCreate(apps[2], psbox.HWDSP).Enter()
		for i, a := range apps {
			base[i] = a.Counter("gflops")
		}
		sys.Run(3 * sim.Second)
		for i, a := range apps {
			loss := (1 - (a.Counter("gflops")-base[i])/before[i]) * 100
			if i == 2 {
				boxed = loss
			} else if loss > worstOther {
				worstOther = loss
			}
		}
		return boxed, worstOther
	}
	r := AblDrainBillingResult{}
	r.BoxedLossFullPct, r.OtherLossFullPct = run(false)
	r.BoxedLossIdlePct, r.OtherLossIdlePct = run(true)
	return r
}

func (r AblDrainBillingResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablation — drain-phase billing rule (§4.2 phase 1)"))
	fmt.Fprintf(&b, "full-device billing: boxed loses %5.1f%%, worst co-runner %5.1f%%\n",
		r.BoxedLossFullPct, r.OtherLossFullPct)
	fmt.Fprintf(&b, "idle-only billing:   boxed loses %5.1f%%, worst co-runner %5.1f%%\n",
		r.BoxedLossIdlePct, r.OtherLossIdlePct)
	b.WriteString("→ the conservative rule charges the sandbox more and shields co-runners better\n")
	return b.String()
}

// AblMeterRateResult shows that raising the metering rate does not rescue
// the baseline accounting: entanglement is structural (§2.3).
type AblMeterRateResult struct {
	PeriodsUs []float64
	DevPct    []float64 // baseline deviation of the Fig. 6 CPU scenario per rate
}

// AblMeterRate sweeps the accounting window from 1 ms down to 10 µs.
func AblMeterRate(seed uint64) AblMeterRateResult {
	r := AblMeterRateResult{}
	for _, w := range []sim.Duration{
		1 * sim.Millisecond, 100 * sim.Microsecond, 10 * sim.Microsecond,
	} {
		measure := func(co bool) float64 {
			sys := psbox.NewAM57(seed)
			victim := install(sys, "calib3d", false)
			if co {
				install(sys, "bodytrack", false)
			}
			sys.Run(3 * sim.Second)
			acc := sys.Accountant("cpu", account.PolicyUsageShare)
			acc.Window = w
			return acc.AppEnergy(victim.ID, 0, sys.Now())
		}
		alone := measure(false)
		co := measure(true)
		r.PeriodsUs = append(r.PeriodsUs, w.Microseconds())
		r.DevPct = append(r.DevPct, (co-alone)/alone*100)
	}
	return r
}

func (r AblMeterRateResult) String() string {
	var b strings.Builder
	b.WriteString(header("Ablation — metering rate vs baseline accounting (§2.3)"))
	for i := range r.PeriodsUs {
		fmt.Fprintf(&b, "window %8.0f µs: baseline deviation %+6.1f%%\n", r.PeriodsUs[i], r.DevPct[i])
	}
	b.WriteString("→ finer metering does not undo entanglement: the deviation persists at every rate\n")
	return b.String()
}
