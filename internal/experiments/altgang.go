package experiments

import (
	"fmt"
	"math"
	"strings"

	psbox "psbox"
	"psbox/internal/kernel/sched"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// AltGangResult compares the two spatial-balloon enforcement mechanisms of
// §7 "Alternative OS mechanisms": demand-driven coscheduling with
// scheduling loans (the paper's design) against a fixed gang reservation
// (the real-time-kernel alternative).
type AltGangResult struct {
	// Co-runner throughput (KB/s) under each mechanism, with the sandboxed
	// app mostly idle — the work-conservation contrast.
	OtherLoansKBs float64
	OtherGangKBs  float64

	// Sandboxed app throughput under each mechanism.
	BoxedLoansKBs float64
	BoxedGangKBs  float64

	// Residency cadence jitter (coefficient of variation of window start
	// gaps) — the predictability contrast.
	LoanJitterCV float64
	GangJitterCV float64
}

// AltGang runs a lightly loaded sandboxed app against a saturating
// co-runner under both mechanisms.
func AltGang(seed uint64) AltGangResult {
	run := func(gang bool) (boxed, other float64, jitterCV float64) {
		sys := psbox.NewAM57(seed)
		victim := workload.Install(sys.Kernel, workload.Calib3D(2, false)) // paced: mostly idle
		coRun := workload.Install(sys.Kernel, workload.Calib3D(2, true))   // saturating
		var opens []sim.Time
		sys.Kernel.OnCPUResident(func(app int, r bool) {
			if app == victim.ID && r {
				opens = append(opens, sys.Now())
			}
		})
		if gang {
			if _, err := sys.Kernel.Scheduler().ActivateGang(victim.ID, sched.GangConfig{
				Period: 20 * sim.Millisecond,
				Slot:   6 * sim.Millisecond,
			}); err != nil {
				panic(err)
			}
		} else {
			sys.Kernel.Scheduler().ActivateGroup(victim.ID)
		}
		span := 3 * sim.Second
		sys.Run(span)
		boxed = victim.Counter("kb") / span.Seconds()
		other = coRun.Counter("kb") / span.Seconds()
		// Window cadence jitter.
		if len(opens) > 2 {
			var gaps []float64
			for i := 1; i < len(opens); i++ {
				gaps = append(gaps, opens[i].Sub(opens[i-1]).Seconds())
			}
			var mean float64
			for _, g := range gaps {
				mean += g
			}
			mean /= float64(len(gaps))
			var variance float64
			for _, g := range gaps {
				variance += (g - mean) * (g - mean)
			}
			variance /= float64(len(gaps))
			jitterCV = math.Sqrt(variance) / mean
		}
		return boxed, other, jitterCV
	}
	r := AltGangResult{}
	r.BoxedLoansKBs, r.OtherLoansKBs, r.LoanJitterCV = run(false)
	r.BoxedGangKBs, r.OtherGangKBs, r.GangJitterCV = run(true)
	return r
}

func (r AltGangResult) String() string {
	var b strings.Builder
	b.WriteString(header("§7 alternative — loan coscheduling vs gang reservation"))
	fmt.Fprintf(&b, "%-22s %14s %14s %14s\n", "mechanism", "boxed KB/s", "co-runner KB/s", "window jitter")
	fmt.Fprintf(&b, "%-22s %14.1f %14.1f %13.2f\n", "coscheduling + loans",
		r.BoxedLoansKBs, r.OtherLoansKBs, r.LoanJitterCV)
	fmt.Fprintf(&b, "%-22s %14.1f %14.1f %13.2f\n", "gang reservation",
		r.BoxedGangKBs, r.OtherGangKBs, r.GangJitterCV)
	b.WriteString("→ loans are work-conserving (idle balloon time returns to others); the gang's\n")
	b.WriteString("  windows are metronomic but its reserved slots are wasted when the app idles\n")
	return b.String()
}
