package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/hw/accelhw"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// Fig3aResult quantifies spatial power entanglement on the dual-core CPU:
// doubling a solo run's power over-estimates the true duo power because
// the shared rail base is counted twice.
type Fig3aResult struct {
	SoloW           float64 // one instance, one core busy
	DuoW            float64 // two instances, both cores busy
	DoubledSoloW    float64 // the naive extrapolation of Fig. 3(a)
	OverestimatePct float64
}

// Fig3a runs one then two instances of a spin workload and compares duo
// power to the doubled solo power.
func Fig3a(seed uint64) Fig3aResult {
	measure := func(instances int) float64 {
		sys := psbox.NewAM57(seed)
		for i := 0; i < instances; i++ {
			workload.Install(sys.Kernel, workload.Spin(i))
		}
		sys.Run(500 * psbox.Millisecond)
		// Skip the governor ramp-up: measure the steady second half.
		return avgPower(sys, "cpu", sim.Time(250*sim.Millisecond), sys.Now())
	}
	r := Fig3aResult{SoloW: measure(1), DuoW: measure(2)}
	r.DoubledSoloW = 2 * r.SoloW
	r.OverestimatePct = pct(r.DoubledSoloW, r.DuoW)
	return r
}

func (r Fig3aResult) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 3(a) — spatial concurrency in hardware (2×Cortex-A15 model)"))
	fmt.Fprintf(&b, "1 instance  (core 0 busy):        %6.2f W\n", r.SoloW)
	fmt.Fprintf(&b, "2 instances (both cores busy):    %6.2f W\n", r.DuoW)
	fmt.Fprintf(&b, "1 instance doubled (extrapolated):%6.2f W\n", r.DoubledSoloW)
	fmt.Fprintf(&b, "→ extrapolation overestimates by %.1f%%: per-core power cannot be read off the shared rail\n", r.OverestimatePct)
	return b.String()
}

// Fig3bCmd is one GPU command's CPU-visible window.
type Fig3bCmd struct {
	ID         uint64
	Kind       string
	SubmitMs   float64
	CompleteMs float64
	DurationMs float64
}

// Fig3bResult shows three GPU commands whose CPU-visible windows overlap,
// with the per-window mean rail power — entangled for the overlapped pair.
type Fig3bResult struct {
	Cmds              []Fig3bCmd
	Cmd2OverlapsCmd1  bool
	SameKindDurations [2]float64 // durations of the two same-kind commands
	DurationSkewPct   float64
}

// Fig3b reproduces the paper's three-command scenario: a long command 1,
// then two identical commands 2 and 3, where command 2 overlaps command 1.
func Fig3b(seed uint64) Fig3bResult {
	eng := sim.NewEngine()
	cfg := accelhw.GPUConfig()
	cfg.InitialFreqIdx = len(cfg.FreqsMHz) - 1
	cfg.GovernorWindow = 0
	dev := accelhw.MustNew(eng, cfg)
	var done []*accelhw.Command
	dev.OnComplete(func(c *accelhw.Command) { done = append(done, c) })

	// Command 1: long type-A; commands 2 and 3: same type B. 2 is
	// submitted while 1 is still executing (pipelined), 3 after.
	c1 := &accelhw.Command{ID: 1, Kind: "A", Work: 10000, DynW: 0.7}
	c2 := &accelhw.Command{ID: 2, Kind: "B", Work: 4000, DynW: 0.6}
	c3 := &accelhw.Command{ID: 3, Kind: "B", Work: 4000, DynW: 0.6}
	dev.Dispatch(c1)
	eng.After(2*sim.Millisecond, func(sim.Time) { dev.Dispatch(c2) })
	var disp3 func(sim.Time)
	disp3 = func(sim.Time) {
		if dev.FreeSlots() > 0 && len(done) >= 2 {
			dev.Dispatch(c3)
			return
		}
		eng.After(100*sim.Microsecond, disp3)
	}
	eng.After(2*sim.Millisecond+100*sim.Microsecond, disp3)
	eng.RunFor(80 * sim.Millisecond)

	r := Fig3bResult{}
	for _, c := range []*accelhw.Command{c1, c2, c3} {
		r.Cmds = append(r.Cmds, Fig3bCmd{
			ID:         c.ID,
			Kind:       c.Kind,
			SubmitMs:   c.Dispatched.Seconds() * 1000,
			CompleteMs: c.Completed.Seconds() * 1000,
			DurationMs: c.Completed.Sub(c.Dispatched).Milliseconds(),
		})
	}
	r.Cmd2OverlapsCmd1 = c2.Dispatched < c1.Completed
	r.SameKindDurations = [2]float64{r.Cmds[1].DurationMs, r.Cmds[2].DurationMs}
	r.DurationSkewPct = pct(r.SameKindDurations[0], r.SameKindDurations[1])
	return r
}

func (r Fig3bResult) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 3(b) — blurry request boundary (PowerVR SGX544MP model)"))
	for _, c := range r.Cmds {
		fmt.Fprintf(&b, "cmd %d (type %s): dispatched %6.2f ms, completed %6.2f ms, CPU-visible duration %6.2f ms\n",
			c.ID, c.Kind, c.SubmitMs, c.CompleteMs, c.DurationMs)
	}
	fmt.Fprintf(&b, "cmd 2 overlaps cmd 1: %v\n", r.Cmd2OverlapsCmd1)
	fmt.Fprintf(&b, "→ same-type commands 2 and 3 differ by %.0f%% in CPU-visible duration; their power merges on the rail while overlapped\n",
		r.DurationSkewPct)
	return b.String()
}

// Fig3cResult quantifies lingering power state: the same burst costs more
// right after a busy period (cluster clocked high) than after idleness.
type Fig3cResult struct {
	AfterIdleMJ float64
	AfterBusyMJ float64
	ExtraPct    float64
}

// Fig3c measures a fixed burst in both contexts.
func Fig3c(seed uint64) Fig3cResult {
	measure := func(preheat bool) float64 {
		sys := psbox.NewAM57(seed)
		warm := sys.Kernel.NewApp("warmup")
		w0 := warm.Spawn("w0", 0, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		w1 := warm.Spawn("w1", 1, psbox.Loop(psbox.Compute{Cycles: 1e6}))
		if preheat {
			sys.Run(300 * psbox.Millisecond)
		} else {
			sys.Kernel.Kill(w0)
			sys.Kernel.Kill(w1)
			sys.Run(300 * psbox.Millisecond)
		}
		if preheat {
			sys.Kernel.Kill(w0)
			sys.Kernel.Kill(w1)
			sys.Run(2 * psbox.Millisecond)
		}
		app := sys.Kernel.NewApp("subject")
		app.Spawn("burst", 0, psbox.Sequence(psbox.Compute{Cycles: 12e6}))
		start := sys.Now()
		sys.Run(40 * psbox.Millisecond)
		return mj(sys.Meter.Energy("cpu", start, sys.Now()))
	}
	r := Fig3cResult{AfterIdleMJ: measure(false), AfterBusyMJ: measure(true)}
	r.ExtraPct = pct(r.AfterBusyMJ, r.AfterIdleMJ)
	return r
}

func (r Fig3cResult) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 3(c) — lingering power state (DVFS governor)"))
	fmt.Fprintf(&b, "burst after idle period: %7.2f mJ\n", r.AfterIdleMJ)
	fmt.Fprintf(&b, "burst after busy period: %7.2f mJ (%+.1f%%)\n", r.AfterBusyMJ, r.ExtraPct)
	b.WriteString("→ the same code's power depends on what ran before it\n")
	return b.String()
}
