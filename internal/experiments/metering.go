package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/model"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// MeteringResult contrasts model-based power metering with direct
// measurement (§2.2): a linear model fitted on one workload tracks its
// training distribution but degrades out of distribution — and even a
// perfect model would only reproduce the entangled *system* power.
type MeteringResult struct {
	Model        string
	TrainMAPEPct float64
	TestMAPEPct  float64
	TrainR2      float64

	// EntangledMAPEPct: the model evaluated on a co-running mix — the
	// error against the rail may stay moderate, yet the prediction is of
	// the entangled total, unusable for per-app awareness.
	EntangledMAPEPct float64
}

// Metering fits the self-constructive CPU model and evaluates it in and
// out of distribution.
func Metering(seed uint64) MeteringResult {
	collect := func(s uint64, setup func(sys *psbox.System)) []model.Sample {
		sys := psbox.NewAM57(s)
		setup(sys)
		sys.Run(200 * sim.Millisecond)
		return model.CollectCPU(sys, 2*sim.Second, 5*sim.Millisecond)
	}
	train := collect(seed, func(sys *psbox.System) {
		workload.Install(sys.Kernel, workload.Bodytrack(2, false))
	})
	m, err := model.Fit(model.CPUFeatureNames(2), train)
	if err != nil {
		panic(err)
	}
	test := collect(seed+1, func(sys *psbox.System) {
		workload.Install(sys.Kernel, workload.Dedup(2, true))
	})
	mixed := collect(seed+2, func(sys *psbox.System) {
		workload.Install(sys.Kernel, workload.Calib3D(2, false))
		workload.Install(sys.Kernel, workload.Dedup(2, false))
	})
	return MeteringResult{
		Model:            m.String(),
		TrainMAPEPct:     m.MAPE(train),
		TestMAPEPct:      m.MAPE(test),
		TrainR2:          m.R2(train),
		EntangledMAPEPct: m.MAPE(mixed),
	}
}

func (r MeteringResult) String() string {
	var b strings.Builder
	b.WriteString(header("§2.2 — model-based metering vs direct measurement"))
	fmt.Fprintf(&b, "fitted model: %s\n", r.Model)
	fmt.Fprintf(&b, "training workload error:     %5.1f%% MAPE (R²=%.3f)\n", r.TrainMAPEPct, r.TrainR2)
	fmt.Fprintf(&b, "out-of-distribution error:   %5.1f%% MAPE\n", r.TestMAPEPct)
	fmt.Fprintf(&b, "co-running mix error:        %5.1f%% MAPE\n", r.EntangledMAPEPct)
	b.WriteString("→ even where the model tracks the rail, it predicts the entangled total —\n")
	b.WriteString("  no metering method substitutes for insulating the observation itself (§2.3)\n")
	return b.String()
}
