// Package experiments contains one runner per table and figure of the
// paper's evaluation (plus the §2 motivation figures). Each runner builds
// fresh simulated systems, drives the workloads, and returns a typed
// result whose String method prints the same rows/series the paper
// reports. DESIGN.md §3 is the index.
package experiments

import (
	"fmt"
	"strings"

	psbox "psbox"
	"psbox/internal/sim"
	"psbox/internal/workload"
)

// Experiment is a named runner; Run returns a printable result.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed uint64) fmt.Stringer
}

// All lists every paper experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3a", "Fig. 3(a): spatial concurrency entangles CPU power", func(s uint64) fmt.Stringer { return Fig3a(s) }},
		{"fig3b", "Fig. 3(b): blurry request boundary on the GPU", func(s uint64) fmt.Stringer { return Fig3b(s) }},
		{"fig3c", "Fig. 3(c): lingering power state", func(s uint64) fmt.Stringer { return Fig3c(s) }},
		{"sec25", "§2.5: GPU power side channel", func(s uint64) fmt.Stringer { return Sec25(s) }},
		{"fig5", "Fig. 5: benchmark inventory", func(s uint64) fmt.Stringer { return Fig5() }},
		{"fig6", "Fig. 6: elimination of power entanglement", func(s uint64) fmt.Stringer { return Fig6(s) }},
		{"fig7", "Fig. 7: resource balloons in action", func(s uint64) fmt.Stringer { return Fig7(s) }},
		{"tab62", "§6.2: latency and throughput cost", func(s uint64) fmt.Stringer { return Tab62(s) }},
		{"fig8", "Fig. 8: confinement of throughput loss", func(s uint64) fmt.Stringer { return Fig8(s) }},
		{"tab63", "§6.3: robustness under extreme contention", func(s uint64) fmt.Stringer { return Tab63(s) }},
		{"fig9", "Fig. 9 + §6.4: power-aware VR app", func(s uint64) fmt.Stringer { return Fig9(s) }},
	}
}

// Extra lists the studies beyond the paper's artifacts: ablations of the
// psbox mechanisms and the §7 extension/limitation demonstrations.
func Extra() []Experiment {
	return []Experiment{
		{"abl-loans", "Ablation: scheduling-loan repayment off", func(s uint64) fmt.Stringer { return AblLoans(s) }},
		{"abl-statevirt", "Ablation: power-state virtualization off", func(s uint64) fmt.Stringer { return AblStateVirt(s) }},
		{"abl-drain", "Ablation: drain billing rule", func(s uint64) fmt.Stringer { return AblDrainBilling(s) }},
		{"abl-rate", "Ablation: metering-rate sweep", func(s uint64) fmt.Stringer { return AblMeterRate(s) }},
		{"ext7", "§7 extensions: display / GPS / DRAM scopes", func(s uint64) fmt.Stringer { return Ext7(s) }},
		{"lim-cell", "§7(3) limitation: cellular RRC states", func(s uint64) fmt.Stringer { return LimCellular(s) }},
		{"metering", "§2.2: model-based metering vs direct measurement", func(s uint64) fmt.Stringer { return Metering(s) }},
		{"alt-gang", "§7 alternative: gang reservation vs loan coscheduling", func(s uint64) fmt.Stringer { return AltGang(s) }},
		{"ext-daemon", "§7: psbox-aware userspace daemon", func(s uint64) fmt.Stringer { return ExtDaemon(s) }},
	}
}

// Lookup finds an experiment by ID across both registries.
func Lookup(id string) (Experiment, bool) {
	for _, e := range append(All(), Extra()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// install instantiates a catalog workload on a system.
func install(sys *psbox.System, name string, saturate bool) *psbox.App {
	f, ok := workload.Catalog()[name]
	if !ok {
		panic("experiments: unknown workload " + name)
	}
	return workload.Install(sys.Kernel, f(sys.Kernel.CPU().Cores(), saturate))
}

func pct(v, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return (v - ref) / ref * 100
}

func mj(j float64) float64 { return j * 1000 }

// header renders a section banner.
func header(title string) string {
	return fmt.Sprintf("%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// avgPower is mean watts over a span of one rail.
func avgPower(sys *psbox.System, rail string, from, to sim.Time) float64 {
	return sys.Meter.Energy(rail, from, to) / to.Sub(from).Seconds()
}
