package experiments

import (
	"math"
	"strings"
	"testing"
)

// These tests assert the *shapes* of the paper's results: who wins, in
// which direction, by roughly what factor. Absolute values are recorded in
// EXPERIMENTS.md.

func TestAllRegistryComplete(t *testing.T) {
	ids := []string{"fig3a", "fig3b", "fig3c", "sec25", "fig5", "fig6",
		"fig7", "tab62", "fig8", "tab63", "fig9"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("registry has %d entries", len(all))
	}
	for i, id := range ids {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup should fail for unknown IDs")
	}
}

func TestFig3aShape(t *testing.T) {
	r := Fig3a(1)
	if r.DuoW <= r.SoloW {
		t.Fatalf("duo %v should exceed solo %v", r.DuoW, r.SoloW)
	}
	if r.DoubledSoloW <= r.DuoW {
		t.Fatalf("doubling must overestimate: 2×solo %v vs duo %v", r.DoubledSoloW, r.DuoW)
	}
	if r.OverestimatePct < 5 {
		t.Fatalf("overestimate only %.1f%%", r.OverestimatePct)
	}
	if !strings.Contains(r.String(), "extrapolation overestimates") {
		t.Fatal("String() missing conclusion")
	}
}

func TestFig3bShape(t *testing.T) {
	r := Fig3b(1)
	if len(r.Cmds) != 3 {
		t.Fatalf("cmds = %d", len(r.Cmds))
	}
	if !r.Cmd2OverlapsCmd1 {
		t.Fatal("command 2 must overlap command 1")
	}
	// Same-type commands differ in CPU-visible duration because of the
	// overlap.
	if math.Abs(r.DurationSkewPct) < 5 {
		t.Fatalf("duration skew only %.1f%%", r.DurationSkewPct)
	}
	_ = r.String()
}

func TestFig3cShape(t *testing.T) {
	r := Fig3c(1)
	if r.AfterBusyMJ <= r.AfterIdleMJ {
		t.Fatalf("after-busy %v must exceed after-idle %v", r.AfterBusyMJ, r.AfterIdleMJ)
	}
	if r.ExtraPct < 3 {
		t.Fatalf("lingering-state effect only %.1f%%", r.ExtraPct)
	}
	_ = r.String()
}

func TestFig5Inventory(t *testing.T) {
	r := Fig5()
	if len(r.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(r.Rows))
	}
	s := r.String()
	for _, name := range []string{"bodytrack", "calib3d", "dedup", "browser",
		"magic", "cube", "triangle", "sgemm", "dgemm", "monte", "scp", "wget"} {
		if !strings.Contains(s, name) {
			t.Fatalf("inventory missing %s", name)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row.PSBox) != 2 || len(row.Baseline) != 2 {
			t.Fatalf("[%s] cells missing", row.Scope)
		}
		// The paper's headline: psbox observations stay within a few
		// percent; the baseline's shares deviate far more.
		if row.MaxPSBoxDevPct > 5.5 {
			t.Errorf("[%s] psbox deviation %.1f%% exceeds the ≈5%% bound", row.Scope, row.MaxPSBoxDevPct)
		}
		if row.MaxBaselineDevPct < 2*row.MaxPSBoxDevPct {
			t.Errorf("[%s] baseline (%.1f%%) should deviate far more than psbox (%.1f%%)",
				row.Scope, row.MaxBaselineDevPct, row.MaxPSBoxDevPct)
		}
		if row.MaxBaselineDevPct < 6 {
			t.Errorf("[%s] baseline deviation %.1f%% implausibly small", row.Scope, row.MaxBaselineDevPct)
		}
	}
	_ = r.String()
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(1)
	// Balloons drive victim/other overlap to (nearly) zero; without psbox
	// it is substantial. The small CPU residue is the IPI transit.
	if r.CPUOverlapUnboxedMs < 10 {
		t.Fatalf("unboxed CPU overlap only %.1f ms", r.CPUOverlapUnboxedMs)
	}
	if r.CPUOverlapBoxedMs > r.CPUOverlapUnboxedMs/10 {
		t.Fatalf("boxed CPU overlap %.1f ms not eliminated", r.CPUOverlapBoxedMs)
	}
	if r.DSPOverlapUnboxedMs < 100 {
		t.Fatalf("unboxed DSP overlap only %.1f ms", r.DSPOverlapUnboxedMs)
	}
	if r.DSPOverlapBoxedMs > 1 {
		t.Fatalf("boxed DSP overlap %.1f ms", r.DSPOverlapBoxedMs)
	}
	s := r.String()
	if !strings.Contains(s, "calib3d") || !strings.Contains(s, "dgemm") {
		t.Fatal("panels missing workloads")
	}
}

func TestTab62Shape(t *testing.T) {
	r := Tab62(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.LatencyDelta <= 0 {
			t.Errorf("[%s] latency delta %v should be positive", row.Domain, row.LatencyDelta)
		}
	}
	// WiFi latency grows the most (drain settles), CPU the least (IPIs).
	if r.Rows[3].LatencyDelta < r.Rows[0].LatencyDelta {
		t.Error("wifi latency delta should exceed cpu's")
	}
	_ = r.String()
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(1)
	if len(r.Domains) != 4 {
		t.Fatalf("domains = %d", len(r.Domains))
	}
	for _, d := range r.Domains {
		if d.BoxedLossPct < 10 {
			t.Errorf("[%s] boxed instance lost only %.1f%%", d.Domain, d.BoxedLossPct)
		}
		// Loss confinement: every co-runner loses far less than the boxed
		// instance.
		if -d.WorstOtherLoss > d.BoxedLossPct/1.8 {
			t.Errorf("[%s] co-runner lost %.1f%% vs boxed %.1f%% — not confined",
				d.Domain, -d.WorstOtherLoss, d.BoxedLossPct)
		}
	}
	_ = r.String()
}

func TestTab63Shape(t *testing.T) {
	r := Tab63(1)
	if r.BrowserDropFactor < 3 {
		t.Fatalf("browser dropped only %.1f× under contention", r.BrowserDropFactor)
	}
	if math.Abs(r.TriangleChangePct) > 3 {
		t.Fatalf("triangle changed %.1f%% — should be barely perturbed", r.TriangleChangePct)
	}
	_ = r.String()
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(1)
	if len(r.AchievedMW) != len(r.BudgetMW) {
		t.Fatal("sweep incomplete")
	}
	// Higher budget ⇒ at least as much power and fidelity.
	for i := 1; i < len(r.AchievedMW); i++ {
		if r.FidelityAt[i] < r.FidelityAt[i-1] {
			t.Fatalf("fidelity not monotone: %v", r.FidelityAt)
		}
	}
	if r.DynamicRange < 4 {
		t.Fatalf("dynamic range only %.1f×", r.DynamicRange)
	}
	if len(r.Steps) == 0 || r.TracePanel == "" {
		t.Fatal("trace missing")
	}
	_ = r.String()
}

func TestSec25Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Sec25(1)
	if r.Unrestricted.SuccessRate < 4*r.Unrestricted.RandomGuess {
		t.Fatalf("unrestricted attack too weak: %.2f", r.Unrestricted.SuccessRate)
	}
	if r.PSBox.SuccessRate > 2.5*r.PSBox.RandomGuess {
		t.Fatalf("psbox leaks: attacker at %.2f", r.PSBox.SuccessRate)
	}
	_ = r.String()
}
