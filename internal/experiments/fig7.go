package experiments

import (
	"fmt"
	"sort"
	"strings"

	psbox "psbox"
	"psbox/internal/account"
	"psbox/internal/sim"
	"psbox/internal/trace"
)

// Fig7Result shows resource multiplexing and the resulting rail power,
// before and after one app enters its psbox: CPU spatial balloons
// (calib3d* vs bodytrack) and DSP temporal balloons (dgemm* vs
// sgemm+monte).
type Fig7Result struct {
	CPUUnboxedPanel string
	CPUBoxedPanel   string
	DSPUnboxedPanel string
	DSPBoxedPanel   string

	// Overlap is the total time the victim's hardware occupancy overlapped
	// any other app's, per configuration — the quantity balloons drive to
	// zero.
	CPUOverlapUnboxedMs float64
	CPUOverlapBoxedMs   float64
	DSPOverlapUnboxedMs float64
	DSPOverlapBoxedMs   float64
}

// overlapMs computes the duration (ms) during which both the victim and
// any other owner have at least one active span.
func overlapMs(spans []account.Span, victim int) float64 {
	type edge struct {
		at     sim.Time
		victim bool
		delta  int
	}
	var edges []edge
	for _, s := range spans {
		edges = append(edges, edge{s.Start, s.Owner == victim, +1}, edge{s.End, s.Owner == victim, -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	var vAct, oAct int
	var last sim.Time
	var overlap sim.Duration
	for _, e := range edges {
		if vAct > 0 && oAct > 0 {
			overlap += e.at.Sub(last)
		}
		last = e.at
		if e.victim {
			vAct += e.delta
		} else {
			oAct += e.delta
		}
	}
	return overlap.Seconds() * 1000
}

// Fig7 runs both scenario pairs.
func Fig7(seed uint64) Fig7Result {
	r := Fig7Result{}

	runCPU := func(boxed bool) (string, float64) {
		sys := psbox.NewAM57(seed)
		victim := install(sys, "calib3d", false)
		install(sys, "bodytrack", false)
		if boxed {
			sys.Sandbox.MustCreate(victim, psbox.HWCPU).Enter()
		}
		sys.Run(800 * psbox.Millisecond)
		names := map[int]string{}
		for _, a := range sys.Kernel.Apps() {
			n := a.Name
			if boxed && a == victim {
				n += "*"
			}
			names[a.ID] = n
		}
		from, to := sim.Time(600*sim.Millisecond), sys.Now()
		// The recorder is per rail (no core identity), so lanes are per
		// owner: each row shows when that app occupied any core.
		g := trace.NewGantt()
		for _, s := range sys.Recorders["cpu"].Spans() {
			if s.End <= from || s.Start >= to {
				continue
			}
			g.Add(names[s.Owner], names[s.Owner], s.Start, s.End)
		}
		panel := g.Render(from, to, 100) + trace.Plot([]trace.Series{{
			Name:    "cpu power",
			Samples: trace.DownsampleRail(sys.Meter.Rail("cpu"), from, to, to.Sub(from)/100),
		}}, from, to, 100, 8)
		return panel, overlapMs(sys.Recorders["cpu"].Spans(), victim.ID)
	}

	runDSP := func(boxed bool) (string, float64) {
		sys := psbox.NewAM57(seed)
		victim := install(sys, "dgemm", false)
		install(sys, "sgemm", false)
		install(sys, "monte", false)
		if boxed {
			sys.Sandbox.MustCreate(victim, psbox.HWDSP).Enter()
		}
		sys.Run(3 * psbox.Second)
		names := map[int]string{}
		for _, a := range sys.Kernel.Apps() {
			n := a.Name
			if boxed && a == victim {
				n += "*"
			}
			names[a.ID] = n
		}
		from, to := sim.Time(1*sim.Second), sys.Now()
		g := trace.NewGantt()
		for _, s := range sys.Recorders["dsp"].Spans() {
			if s.End <= from || s.Start >= to {
				continue
			}
			g.Add(names[s.Owner], names[s.Owner], s.Start, s.End)
		}
		panel := g.Render(from, to, 100) + trace.Plot([]trace.Series{{
			Name:    "dsp power",
			Samples: trace.DownsampleRail(sys.Meter.Rail("dsp"), from, to, to.Sub(from)/100),
		}}, from, to, 100, 8)
		return panel, overlapMs(sys.Recorders["dsp"].Spans(), victim.ID)
	}

	r.CPUUnboxedPanel, r.CPUOverlapUnboxedMs = runCPU(false)
	r.CPUBoxedPanel, r.CPUOverlapBoxedMs = runCPU(true)
	r.DSPUnboxedPanel, r.DSPOverlapUnboxedMs = runDSP(false)
	r.DSPBoxedPanel, r.DSPOverlapBoxedMs = runDSP(true)
	return r
}

func (r Fig7Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 7 — resource multiplexing and rail power, without and with psbox"))
	fmt.Fprintf(&b, "\n(a) dual-core CPU w/o psbox — victim/other overlap %.1f ms\n%s", r.CPUOverlapUnboxedMs, r.CPUUnboxedPanel)
	fmt.Fprintf(&b, "\n(b) dual-core CPU w/ psbox + spatial balloons for calib3d* — overlap %.1f ms\n%s", r.CPUOverlapBoxedMs, r.CPUBoxedPanel)
	fmt.Fprintf(&b, "\n(c) DSP w/o psbox (commands overlap freely) — overlap %.1f ms\n%s", r.DSPOverlapUnboxedMs, r.DSPUnboxedPanel)
	fmt.Fprintf(&b, "\n(d) DSP w/ psbox + temporal balloons for dgemm* — overlap %.1f ms\n%s", r.DSPOverlapBoxedMs, r.DSPBoxedPanel)
	return b.String()
}
